package index

import (
	"math/rand"
	"sort"
	"testing"

	"dyndens/internal/vset"
)

func keys(nodes []*Node) []string {
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, n.Set().Key())
	}
	sort.Strings(out)
	return out
}

func TestInsertLookupEvict(t *testing.T) {
	ix := New()
	c := vset.New(1, 3, 4)
	n := ix.InsertDense(c, 2.5)
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
	if got := ix.LookupDense(c); got != n {
		t.Fatal("LookupDense did not return the inserted node")
	}
	if !n.Set().Equal(c) {
		t.Fatalf("Set() = %v, want %v", n.Set(), c)
	}
	if n.Score() != 2.5 || n.Card() != 3 {
		t.Fatalf("Score/Card = %v/%d", n.Score(), n.Card())
	}
	// Prefix {1,3} exists as an interior node but is not dense.
	if ix.LookupDense(vset.New(1, 3)) != nil {
		t.Fatal("prefix should not be dense")
	}
	if ix.Lookup(vset.New(1, 3)) == nil {
		t.Fatal("prefix node should exist")
	}
	ix.EvictDense(n)
	if ix.Len() != 0 {
		t.Fatalf("Len after evict = %d", ix.Len())
	}
	if ix.Lookup(c) != nil {
		t.Fatal("node should have been pruned")
	}
	if ix.NodeCount() != 0 {
		t.Fatalf("NodeCount after evict = %d", ix.NodeCount())
	}
	if msg := ix.Validate(); msg != "" {
		t.Fatal(msg)
	}
}

func TestEvictKeepsSharedPrefixes(t *testing.T) {
	ix := New()
	a := ix.InsertDense(vset.New(1, 3), 1)
	b := ix.InsertDense(vset.New(1, 3, 4), 2)
	ix.InsertDense(vset.New(1, 3, 5), 2)
	ix.EvictDense(b)
	if ix.LookupDense(vset.New(1, 3, 4)) != nil {
		t.Fatal("{1,3,4} should be gone")
	}
	if ix.LookupDense(vset.New(1, 3)) != a {
		t.Fatal("{1,3} should still be dense")
	}
	if ix.LookupDense(vset.New(1, 3, 5)) == nil {
		t.Fatal("{1,3,5} should still be dense")
	}
	// Evicting a dense interior node keeps the node because it has children.
	ix.EvictDense(a)
	if ix.Lookup(vset.New(1, 3)) == nil {
		t.Fatal("{1,3} node must remain while {1,3,5} exists")
	}
	if msg := ix.Validate(); msg != "" {
		t.Fatal(msg)
	}
}

func TestInsertDenseTwiceUpdatesScore(t *testing.T) {
	ix := New()
	ix.InsertDense(vset.New(2, 7), 1.0)
	n := ix.InsertDense(vset.New(2, 7), 1.5)
	if ix.Len() != 1 || n.Score() != 1.5 {
		t.Fatalf("Len=%d score=%v", ix.Len(), n.Score())
	}
}

func TestScoreMutators(t *testing.T) {
	ix := New()
	n := ix.InsertDense(vset.New(1, 2), 1.0)
	if got := ix.AddScore(n, 0.25); got != 1.25 {
		t.Fatalf("AddScore = %v", got)
	}
	ix.SetScore(n, 3)
	if n.Score() != 3 {
		t.Fatalf("SetScore result = %v", n.Score())
	}
}

func TestDenseContaining(t *testing.T) {
	ix := New()
	// Mirrors Figure 3 of the paper: dense subgraphs {1,3}, {1,3,4}, {1,3,5},
	// {3,4,5}, {4,5}.
	for _, c := range []vset.Set{
		vset.New(1, 3), vset.New(1, 3, 4), vset.New(1, 3, 5), vset.New(3, 4, 5), vset.New(4, 5),
	} {
		ix.InsertDense(c, 1)
	}
	got := keys(ix.DenseContaining(3))
	want := []string{"1,3", "1,3,4", "1,3,5", "3,4,5"}
	if len(got) != len(want) {
		t.Fatalf("DenseContaining(3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DenseContaining(3) = %v, want %v", got, want)
		}
	}
	if got := keys(ix.DenseContaining(5)); len(got) != 3 {
		t.Fatalf("DenseContaining(5) = %v", got)
	}
	if got := ix.DenseContaining(99); len(got) != 0 {
		t.Fatalf("DenseContaining(99) = %v", got)
	}
}

func TestDenseContainingEitherNoDuplicates(t *testing.T) {
	ix := New()
	sets := []vset.Set{
		vset.New(1, 3), vset.New(1, 3, 4), vset.New(1, 3, 5), vset.New(3, 4, 5),
		vset.New(4, 5), vset.New(1, 4), vset.New(2, 3),
	}
	for _, c := range sets {
		ix.InsertDense(c, 1)
	}
	got := keys(ix.DenseContainingEither(3, 4))
	// Every inserted set containing 3 or 4, exactly once.
	want := []string{"1,3", "1,3,4", "1,3,5", "1,4", "2,3", "3,4,5", "4,5"}
	if len(got) != len(want) {
		t.Fatalf("DenseContainingEither = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DenseContainingEither = %v, want %v", got, want)
		}
	}
	// Symmetric in argument order.
	if len(ix.DenseContainingEither(4, 3)) != len(want) {
		t.Fatal("DenseContainingEither not symmetric")
	}
}

func TestStarNodes(t *testing.T) {
	ix := New()
	base := ix.InsertDense(vset.New(1, 3), 5)
	star := ix.InsertStar(base)
	if star == nil || !star.IsStar() {
		t.Fatal("InsertStar failed")
	}
	if !ix.HasStar(base) || ix.StarOf(base) != star {
		t.Fatal("HasStar/StarOf inconsistent")
	}
	if star.Card() != 3 || !star.Set().Equal(vset.New(1, 3)) {
		t.Fatalf("star Card/Set = %d/%v", star.Card(), star.Set())
	}
	if ix.StarCount() != 1 {
		t.Fatalf("StarCount = %d", ix.StarCount())
	}
	if got := len(ix.StarNodes()); got != 1 {
		t.Fatalf("StarNodes len = %d", got)
	}
	// Idempotent.
	if again := ix.InsertStar(base); again != star || ix.StarCount() != 1 {
		t.Fatal("InsertStar not idempotent")
	}
	// Star nodes do not show up as dense subgraphs.
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
	for _, n := range ix.DenseContaining(1) {
		if n.IsStar() {
			t.Fatal("star node leaked into DenseContaining")
		}
	}
	ix.RemoveStar(base)
	if ix.StarCount() != 0 || ix.HasStar(base) {
		t.Fatal("RemoveStar did not remove")
	}
	if msg := ix.Validate(); msg != "" {
		t.Fatal(msg)
	}
}

func TestEvictRemovesStarChild(t *testing.T) {
	ix := New()
	base := ix.InsertDense(vset.New(2, 6), 5)
	ix.InsertStar(base)
	ix.EvictDense(base)
	if ix.StarCount() != 0 || ix.NodeCount() != 0 {
		t.Fatalf("star/node count after evict = %d/%d", ix.StarCount(), ix.NodeCount())
	}
	if msg := ix.Validate(); msg != "" {
		t.Fatal(msg)
	}
}

func TestAnnotations(t *testing.T) {
	ix := New()
	n := ix.InsertDense(vset.New(1, 2), 1)
	if _, ok := ix.Annotation(n); ok {
		t.Fatal("annotation should not exist before BeginUpdate")
	}
	ix.BeginUpdate()
	ix.Annotate(n, 2)
	if it, ok := ix.Annotation(n); !ok || it != 2 {
		t.Fatalf("Annotation = %d,%v", it, ok)
	}
	ix.BeginUpdate()
	if _, ok := ix.Annotation(n); ok {
		t.Fatal("annotation should reset at next update epoch")
	}
}

func TestForEachDenseEarlyStop(t *testing.T) {
	ix := New()
	for i := Vertex(0); i < 10; i++ {
		ix.InsertDense(vset.New(i, i+1), 1)
	}
	count := 0
	ix.ForEachDense(func(n *Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d nodes", count)
	}
	if got := len(ix.DenseNodes()); got != 10 {
		t.Fatalf("DenseNodes len = %d", got)
	}
}

// Property: a random sequence of inserts and evicts keeps the index
// consistent with a map-based model and passes Validate.
func TestRandomOperationsAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		ix := New()
		model := map[string]float64{}
		for op := 0; op < 500; op++ {
			// Random set of 2–5 vertices out of 12.
			n := 2 + rng.Intn(4)
			var c vset.Set
			for len(c) < n {
				c = c.Add(Vertex(rng.Intn(12)))
			}
			if rng.Float64() < 0.65 {
				score := rng.Float64() * 10
				ix.InsertDense(c, score)
				model[c.Key()] = score
			} else if node := ix.LookupDense(c); node != nil {
				ix.EvictDense(node)
				delete(model, c.Key())
			}
		}
		if ix.Len() != len(model) {
			t.Fatalf("trial %d: Len=%d model=%d", trial, ix.Len(), len(model))
		}
		if msg := ix.Validate(); msg != "" {
			t.Fatalf("trial %d: %s", trial, msg)
		}
		for _, node := range ix.DenseNodes() {
			want, ok := model[node.Set().Key()]
			if !ok {
				t.Fatalf("trial %d: unexpected dense %v", trial, node.Set())
			}
			if node.Score() != want {
				t.Fatalf("trial %d: score mismatch for %v", trial, node.Set())
			}
		}
		// Containment queries agree with the model.
		for u := Vertex(0); u < 12; u++ {
			got := keys(ix.DenseContaining(u))
			var want []string
			for k := range model {
				if vsetFromKeyContains(k, u) {
					want = append(want, k)
				}
			}
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("trial %d: DenseContaining(%d) size %d want %d", trial, u, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: DenseContaining(%d) mismatch", trial, u)
				}
			}
		}
	}
}

func vsetFromKeyContains(key string, u Vertex) bool {
	var c vset.Set
	cur := 0
	neg := false
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == ',' {
			v := cur
			if neg {
				v = -v
			}
			c = c.Add(Vertex(v))
			cur, neg = 0, false
			continue
		}
		if key[i] == '-' {
			neg = true
			continue
		}
		cur = cur*10 + int(key[i]-'0')
	}
	return c.Contains(u)
}
