// Package index implements the in-memory dense-subgraph index used by
// DynDens (Section 3.2.1 of the paper).
//
// Dense subgraphs are stored in a prefix tree: the path to a node is the
// sorted vertex sequence of the subgraph it represents, so heavily
// overlapping dense subgraphs share prefixes and memory. Every tree node is
// additionally linked into the inverted list of its label vertex (embedded as
// a doubly-linked list through the nodes themselves), which makes "iterate
// every dense subgraph containing vertex u" a traversal of the subtrees
// hanging off u's inverted list; because a subgraph's path visits u exactly
// once, each dense subgraph is reported exactly once.
//
// The index also supports the ImplicitTooDense optimisation (Section 3.2.3):
// a fictitious vertex '*' (lexicographically larger than every real vertex)
// whose node under a too-dense subgraph C stands for every supergraph C∪{y}
// with y disconnected from C, so that Explore-All does not have to insert
// |V| subgraphs explicitly.
package index

import (
	"math"
	"slices"

	"dyndens/internal/vset"
)

// Vertex aliases the graph vertex type.
type Vertex = vset.Vertex

// Star is the fictitious vertex used by ImplicitTooDense. It compares larger
// than any real vertex, as the paper requires.
const Star Vertex = math.MaxInt32

// Node is a prefix-tree node. A node represents the vertex set spelled out by
// the path from the root; it carries subgraph information (score, density
// bookkeeping) only when Dense() is true. Nodes are owned by the Index and
// must not be retained across Evict calls.
type Node struct {
	label    Vertex
	parent   *Node
	children map[Vertex]*Node

	dense bool
	star  bool // this node is a '*' child: it represents parent.Set() ∪ {y} for disconnected y
	score float64
	depth int // cardinality of the represented set ('*' counts as one vertex)

	// Embedded inverted-list linkage (per label vertex).
	invPrev, invNext *Node

	// iteration is the exploration-iteration annotation of Section 3.2.2,
	// valid only while epoch matches the index's current update epoch.
	iteration int
	epoch     uint64
}

// Label returns the node's vertex label (Star for star nodes).
func (n *Node) Label() Vertex { return n.label }

// Dense reports whether the node currently represents a dense subgraph.
func (n *Node) Dense() bool { return n.dense }

// IsStar reports whether this is an ImplicitTooDense '*' node.
func (n *Node) IsStar() bool { return n.star }

// Score returns the stored internal edge-weight sum of the represented
// subgraph. For star nodes this is the score of the base subgraph (adding a
// disconnected vertex does not change the score).
func (n *Node) Score() float64 { return n.score }

// Card returns the cardinality of the represented vertex set. For star nodes
// it is |base|+1.
func (n *Node) Card() int { return n.depth }

// Parent returns the parent node (nil for the root).
func (n *Node) Parent() *Node { return n.parent }

// Set reconstructs the represented vertex set by walking parent pointers.
// For star nodes the Star vertex is omitted: the result is the base set.
func (n *Node) Set() vset.Set { return n.SetInto(nil) }

// SetInto reconstructs the represented vertex set into buf, reusing its
// capacity (the engine's update loop reconstructs one affected set after
// another into the same scratch buffer). The result aliases buf's backing
// array unless it had to grow; callers that retain it past the next SetInto
// must clone it.
func (n *Node) SetInto(buf []vset.Vertex) vset.Set {
	depth := n.depth
	if n.star {
		depth--
	}
	if cap(buf) < depth {
		buf = make([]vset.Vertex, depth)
	}
	out := buf[:depth]
	i := depth - 1
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		if cur.star {
			continue
		}
		out[i] = cur.label
		i--
	}
	return vset.Set(out)
}

// Index is the dense-subgraph index. The zero value is not usable; call New.
// It is not safe for concurrent use.
type Index struct {
	root  *Node
	inv   map[Vertex]*Node // heads of per-vertex inverted lists
	epoch uint64

	denseCount int
	starCount  int
	nodeCount  int

	// membership, when installed, observes label-presence transitions: it is
	// called with (v, true) when v gains its first prefix-tree node and with
	// (v, false) when it loses its last. Star transitions are reported like
	// any other label, so membership of Star doubles as "the index holds at
	// least one ImplicitTooDense family". Sharded deployments use this to
	// maintain per-worker interest maps incrementally (scoped delivery).
	membership func(v Vertex, present bool)
}

// New returns an empty index.
func New() *Index {
	return &Index{
		root: &Node{children: make(map[Vertex]*Node)},
		inv:  make(map[Vertex]*Node),
	}
}

// SetMembershipListener installs fn as the label-presence observer (see the
// membership field). Passing nil uninstalls it. The listener is invoked
// synchronously during index mutation and must not call back into the index.
// Installing a listener on a non-empty index is allowed; the caller is then
// responsible for seeding its state from Vertices().
func (ix *Index) SetMembershipListener(fn func(v Vertex, present bool)) {
	ix.membership = fn
}

// HasVertex reports whether at least one prefix-tree node is labelled v —
// equivalently, whether v belongs to at least one indexed (dense or star)
// subgraph or a prefix path leading to one. It is the O(1) interest oracle
// behind scoped delivery: an update endpoint absent from the index (and from
// every star family) provably cannot affect any indexed subgraph.
func (ix *Index) HasVertex(v Vertex) bool {
	_, ok := ix.inv[v]
	return ok
}

// Vertices returns the sorted labels that currently have at least one
// prefix-tree node (including Star when any ImplicitTooDense family exists).
// It is intended for interest-map seeding and invariant checks, not hot paths.
func (ix *Index) Vertices() []Vertex {
	out := make([]Vertex, 0, len(ix.inv))
	for v := range ix.inv {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// Len returns the number of explicitly indexed dense subgraphs.
func (ix *Index) Len() int { return ix.denseCount }

// StarCount returns the number of ImplicitTooDense families currently stored.
func (ix *Index) StarCount() int { return ix.starCount }

// NodeCount returns the total number of prefix-tree nodes (a memory proxy).
func (ix *Index) NodeCount() int { return ix.nodeCount }

// BeginUpdate starts a new update epoch, invalidating all exploration
// iteration annotations from the previous update (Section 3.2.2).
func (ix *Index) BeginUpdate() { ix.epoch++ }

// Annotate records that node n was identified at exploration iteration it
// during the current update.
func (ix *Index) Annotate(n *Node, it int) {
	n.iteration = it
	n.epoch = ix.epoch
}

// Annotation returns the exploration iteration at which n was identified
// during the current update, and whether such an annotation exists.
func (ix *Index) Annotation(n *Node) (int, bool) {
	if n.epoch == ix.epoch && ix.epoch != 0 {
		return n.iteration, true
	}
	return 0, false
}

// Lookup returns the node representing c, or nil if no such node exists
// (dense or not).
func (ix *Index) Lookup(c vset.Set) *Node {
	cur := ix.root
	for _, v := range c {
		cur = cur.children[v]
		if cur == nil {
			return nil
		}
	}
	if cur == ix.root {
		return nil
	}
	return cur
}

// LookupDense returns the node for c if c is explicitly indexed as dense.
func (ix *Index) LookupDense(c vset.Set) *Node {
	n := ix.Lookup(c)
	if n == nil || !n.dense {
		return nil
	}
	return n
}

// HasDense reports whether c is explicitly indexed as dense.
func (ix *Index) HasDense(c vset.Set) bool { return ix.LookupDense(c) != nil }

// ensure creates (if necessary) and returns the node for c.
func (ix *Index) ensure(c vset.Set) *Node {
	cur := ix.root
	for _, v := range c {
		next := cur.children[v]
		if next == nil {
			next = ix.newChild(cur, v)
		}
		cur = next
	}
	return cur
}

func (ix *Index) newChild(parent *Node, label Vertex) *Node {
	n := &Node{
		label:    label,
		parent:   parent,
		children: make(map[Vertex]*Node),
		depth:    parent.depth + 1,
	}
	parent.children[label] = n
	ix.nodeCount++
	// Link at the head of label's inverted list.
	head := ix.inv[label]
	n.invNext = head
	if head != nil {
		head.invPrev = n
	}
	ix.inv[label] = n
	if head == nil && ix.membership != nil {
		ix.membership(label, true)
	}
	return n
}

func (ix *Index) unlink(n *Node) {
	if n.invPrev != nil {
		n.invPrev.invNext = n.invNext
	} else if ix.inv[n.label] == n {
		if n.invNext == nil {
			delete(ix.inv, n.label)
			if ix.membership != nil {
				ix.membership(n.label, false)
			}
		} else {
			ix.inv[n.label] = n.invNext
		}
	}
	if n.invNext != nil {
		n.invNext.invPrev = n.invPrev
	}
	n.invPrev, n.invNext = nil, nil
}

// InsertDense marks c as a dense subgraph with the given score, creating
// prefix-tree nodes as needed, and returns its node. If c is already dense
// only its score is updated.
func (ix *Index) InsertDense(c vset.Set, score float64) *Node {
	n := ix.ensure(c)
	if !n.dense {
		n.dense = true
		ix.denseCount++
	}
	n.score = score
	return n
}

// SetScore overwrites the stored score of a dense or star node.
func (ix *Index) SetScore(n *Node, score float64) { n.score = score }

// AddScore adds delta to the stored score of a dense or star node and returns
// the new value.
func (ix *Index) AddScore(n *Node, delta float64) float64 {
	n.score += delta
	return n.score
}

// EvictDense removes the dense marking from node n and prunes any resulting
// chain of childless, non-dense nodes (typically O(1), at worst O(|C|)).
// Any '*' child of n is removed as well: the implicit family exists only
// while its base is indexed.
func (ix *Index) EvictDense(n *Node) {
	if n == nil || !n.dense {
		return
	}
	if starChild := n.children[Star]; starChild != nil {
		ix.removeStarNode(starChild)
	}
	n.dense = false
	ix.denseCount--
	ix.prune(n)
}

func (ix *Index) prune(n *Node) {
	for n != nil && n != ix.root && !n.dense && !n.star && len(n.children) == 0 {
		parent := n.parent
		delete(parent.children, n.label)
		ix.unlink(n)
		ix.nodeCount--
		n.parent = nil
		n = parent
	}
}

// InsertStar records the ImplicitTooDense family for the dense node base:
// every supergraph base ∪ {y} with y disconnected from base. It returns the
// star node. Inserting twice is a no-op.
func (ix *Index) InsertStar(base *Node) *Node {
	if base == nil || !base.dense {
		return nil
	}
	if existing := base.children[Star]; existing != nil {
		existing.score = base.score
		return existing
	}
	n := ix.newChild(base, Star)
	n.star = true
	n.score = base.score
	ix.starCount++
	return n
}

// RemoveStar removes the ImplicitTooDense family of base, if present.
func (ix *Index) RemoveStar(base *Node) {
	if base == nil {
		return
	}
	if starChild := base.children[Star]; starChild != nil {
		ix.removeStarNode(starChild)
	}
}

func (ix *Index) removeStarNode(n *Node) {
	n.star = false
	ix.starCount--
	ix.prune(n)
}

// HasStar reports whether base has an ImplicitTooDense family.
func (ix *Index) HasStar(base *Node) bool {
	return base != nil && base.children[Star] != nil
}

// StarOf returns the star node of base, or nil.
func (ix *Index) StarOf(base *Node) *Node {
	if base == nil {
		return nil
	}
	return base.children[Star]
}

// ForEachDense calls fn for every explicitly indexed dense subgraph. If fn
// returns false, iteration stops. The index must not be mutated during the
// call; use DenseNodes for a mutation-safe snapshot.
func (ix *Index) ForEachDense(fn func(n *Node) bool) {
	ix.walk(ix.root, func(n *Node) bool {
		if n.dense {
			return fn(n)
		}
		return true
	})
}

func (ix *Index) walk(n *Node, fn func(*Node) bool) bool {
	for _, child := range n.children {
		if child.star {
			continue
		}
		if !fn(child) {
			return false
		}
		if !ix.walk(child, fn) {
			return false
		}
	}
	return true
}

// AppendDense appends a snapshot of every explicitly indexed dense node to
// dst (reusing its capacity) and returns the extended slice, each node exactly
// once. It is the whole-index counterpart of AppendDenseContaining — the
// snapshot a batched update takes once instead of once per touched vertex —
// and, like it, performs no allocations beyond dst growth.
func (ix *Index) AppendDense(dst []*Node) []*Node {
	return appendDenseSubtree(dst, ix.root, Star)
}

// DenseNodes returns a snapshot slice of all explicitly indexed dense nodes.
func (ix *Index) DenseNodes() []*Node {
	out := make([]*Node, 0, ix.denseCount)
	ix.ForEachDense(func(n *Node) bool {
		out = append(out, n)
		return true
	})
	return out
}

// appendDenseSubtree appends every dense node strictly below n to dst,
// skipping star children and any subtree rooted at a child labelled cut.
// Passing Star as cut disables the extra cut (star children are skipped
// regardless). It is a plain method recursion — no closures — so snapshot
// collection into a reused buffer performs no allocations beyond dst growth.
func appendDenseSubtree(dst []*Node, n *Node, cut Vertex) []*Node {
	for _, child := range n.children {
		if child.star || child.label == cut {
			continue
		}
		if child.dense {
			dst = append(dst, child)
		}
		dst = appendDenseSubtree(dst, child, cut)
	}
	return dst
}

// AppendDenseContaining appends a snapshot of every explicitly indexed dense
// subgraph that contains vertex u to dst (reusing its capacity) and returns
// the extended slice, each node exactly once. It traverses the subtrees
// rooted at the nodes on u's inverted list; since a set containing u has
// exactly one ancestor-or-self node labelled u, no set is visited twice.
func (ix *Index) AppendDenseContaining(dst []*Node, u Vertex) []*Node {
	for head := ix.inv[u]; head != nil; head = head.invNext {
		if head.star {
			continue
		}
		if head.dense {
			dst = append(dst, head)
		}
		dst = appendDenseSubtree(dst, head, Star)
	}
	return dst
}

// DenseContaining is AppendDenseContaining into a fresh slice.
func (ix *Index) DenseContaining(u Vertex) []*Node {
	return ix.AppendDenseContaining(nil, u)
}

// AppendDenseContainingEither appends a snapshot of every explicitly indexed
// dense subgraph containing a or b (or both) to dst, each exactly once, and
// returns the extended slice. This is the iteration Algorithm 1 performs for
// a positive edge-weight update; the traversal order follows Section 3.2.2:
// first the subtrees on b's inverted list, then the subtrees on a's list with
// descent cut at nodes labelled b (assuming a < b), so no subgraph is
// examined twice. The engine reuses one dst across updates, making the
// snapshot allocation-free in steady state.
func (ix *Index) AppendDenseContainingEither(dst []*Node, a, b Vertex) []*Node {
	if a == b {
		return ix.AppendDenseContaining(dst, a)
	}
	if a > b {
		a, b = b, a
	}
	for head := ix.inv[b]; head != nil; head = head.invNext {
		if head.star {
			continue
		}
		if head.dense {
			dst = append(dst, head)
		}
		dst = appendDenseSubtree(dst, head, Star)
	}
	// Subtrees under a's inverted list, cut whenever a node labelled b is
	// reached (those subgraphs contain b and were already collected above).
	for head := ix.inv[a]; head != nil; head = head.invNext {
		if head.star {
			continue
		}
		if head.dense {
			dst = append(dst, head)
		}
		dst = appendDenseSubtree(dst, head, b)
	}
	return dst
}

// DenseContainingEither is AppendDenseContainingEither into a fresh slice.
func (ix *Index) DenseContainingEither(a, b Vertex) []*Node {
	return ix.AppendDenseContainingEither(nil, a, b)
}

// AppendStarNodes appends a snapshot of all ImplicitTooDense star nodes to
// dst and returns the extended slice.
func (ix *Index) AppendStarNodes(dst []*Node) []*Node {
	for head := ix.inv[Star]; head != nil; head = head.invNext {
		if head.star {
			dst = append(dst, head)
		}
	}
	return dst
}

// StarNodes is AppendStarNodes into a fresh slice.
func (ix *Index) StarNodes() []*Node {
	return ix.AppendStarNodes(nil)
}

// Validate checks internal invariants (counts, linkage, depth bookkeeping).
// It is exported for tests; it returns the first violation found as a string,
// or "" if the index is consistent.
func (ix *Index) Validate() string {
	dense, stars, nodes := 0, 0, 0
	var walk func(n *Node, depth int) string
	walk = func(n *Node, depth int) string {
		for label, child := range n.children {
			nodes++
			if child.label != label {
				return "child label mismatch"
			}
			if child.parent != n {
				return "parent pointer mismatch"
			}
			if child.depth != depth+1 {
				return "depth mismatch"
			}
			if child.dense {
				dense++
			}
			if child.star {
				stars++
				if len(child.children) != 0 {
					return "star node has children"
				}
			}
			if !child.dense && !child.star && len(child.children) == 0 {
				return "dangling childless node " + child.Set().String()
			}
			if msg := walk(child, depth+1); msg != "" {
				return msg
			}
		}
		return ""
	}
	if msg := walk(ix.root, 0); msg != "" {
		return msg
	}
	if dense != ix.denseCount {
		return "dense count mismatch"
	}
	if stars != ix.starCount {
		return "star count mismatch"
	}
	if nodes != ix.nodeCount {
		return "node count mismatch"
	}
	// Inverted lists must contain exactly the nodes with each label.
	listed := 0
	for label, head := range ix.inv {
		for n := head; n != nil; n = n.invNext {
			listed++
			if n.label != label {
				return "inverted list label mismatch"
			}
			if n.invNext != nil && n.invNext.invPrev != n {
				return "inverted list back-pointer mismatch"
			}
		}
	}
	if listed != nodes {
		return "inverted list node count mismatch"
	}
	return ""
}
