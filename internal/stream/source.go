// Package stream is the ingestion layer of the DynDens pipeline: it produces
// the edge-weight update streams the engine consumes and replays them through
// an Engine into an EventSink.
//
// The paper's setting is a continuous stream of (a, b, δ) updates derived
// from entity co-occurrences in a document stream (Section 2). This package
// abstracts where that stream comes from — a file of recorded updates, a
// seeded synthetic workload generator, or any custom UpdateSource — and
// provides the Replay driver that micro-batches a source through
// Engine.Process while aggregating throughput and latency statistics.
//
// # Errors versus panics
//
// Everything that can fail at a stream seam — malformed input, an I/O error,
// a boundary hook refusing to continue (stream.ErrStopped), an invalid
// configuration — is returned as an error and propagates out of the replay
// drivers, so a crash-consistent caller (cmd/dyndens, internal/persist) can
// checkpoint, report, and resume. Panics are reserved for two cases: the
// Must* constructor variants, which exist for tests and examples with
// known-good configurations, and genuine invariant violations (a sequence
// number running backwards, use after Close) that indicate a bug in the
// caller rather than a recoverable condition of the stream.
package stream

import (
	"errors"
	"io"

	"dyndens/internal/graph"
)

// Update aliases the engine's edge-weight update type.
type Update = graph.Update

// UpdateSource produces a stream of edge-weight updates.
//
// Next returns io.EOF when the stream is exhausted; any other error is a
// malformed or failed read. Sources are pull-based and single-consumer: Next
// must not be called concurrently.
type UpdateSource interface {
	Next() (Update, error)
}

// SliceSource replays a fixed slice of updates. It is the trivial source used
// by tests and by callers that already hold the stream in memory.
type SliceSource struct {
	updates []Update
	pos     int
}

// NewSliceSource returns a source that yields the given updates in order.
func NewSliceSource(updates []Update) *SliceSource {
	return &SliceSource{updates: updates}
}

// Next implements UpdateSource.
func (s *SliceSource) Next() (Update, error) {
	if s.pos >= len(s.updates) {
		return Update{}, io.EOF
	}
	u := s.updates[s.pos]
	s.pos++
	return u, nil
}

// Rewind resets the source to the beginning of its slice.
func (s *SliceSource) Rewind() { s.pos = 0 }

// LimitSource caps an underlying source at n updates.
type LimitSource struct {
	src  UpdateSource
	left int
}

// NewLimitSource returns a source yielding at most n updates from src.
func NewLimitSource(src UpdateSource, n int) *LimitSource {
	return &LimitSource{src: src, left: n}
}

// Next implements UpdateSource.
func (s *LimitSource) Next() (Update, error) {
	if s.left <= 0 {
		return Update{}, io.EOF
	}
	u, err := s.src.Next()
	if err != nil {
		return Update{}, err
	}
	s.left--
	return u, nil
}

// Drain reads every remaining update from src into a slice. It is a helper
// for materialising finite sources (generation, tests); errors other than
// io.EOF are returned with the updates read so far.
func Drain(src UpdateSource) ([]Update, error) {
	var out []Update
	for {
		u, err := src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
		out = append(out, u)
	}
}
