package stream

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"dyndens/internal/core"
)

func TestFileSourceParsesEdgeList(t *testing.T) {
	input := `# recorded stream
1 2 0.5

2 3 -1.25
# trailing comment
10 11 3
`
	src := NewReaderSource("test", strings.NewReader(input))
	got, err := Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Update{
		{A: 1, B: 2, Delta: 0.5},
		{A: 2, B: 3, Delta: -1.25},
		{A: 10, B: 11, Delta: 3},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d updates, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("update %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next after drain = %v, want io.EOF", err)
	}
}

func TestFileSourceReportsLineOnError(t *testing.T) {
	src := NewReaderSource("bad", strings.NewReader("1 2 0.5\n1 junk 2\n"))
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := src.Next()
	if err == nil || !strings.Contains(err.Error(), "bad:2") {
		t.Fatalf("error = %v, want one mentioning bad:2", err)
	}
}

// gzipBytes compresses text with the default gzip settings.
func gzipBytes(t testing.TB, text string) []byte {
	t.Helper()
	var b bytes.Buffer
	zw := gzip.NewWriter(&b)
	if _, err := zw.Write([]byte(text)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestFileSourceGzipTransparent verifies gzip input is sniffed by magic
// number and decompressed transparently, both from a reader and from a file.
func TestFileSourceGzipTransparent(t *testing.T) {
	plain := "# compressed stream\n1 2 0.5\n\n2 3 -1.25\n"
	want := []Update{{A: 1, B: 2, Delta: 0.5}, {A: 2, B: 3, Delta: -1.25}}

	src := NewReaderSource("gz", bytes.NewReader(gzipBytes(t, plain)))
	got, err := Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("gzip reader: got %+v, want %+v", got, want)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "updates.gz")
	if err := os.WriteFile(path, gzipBytes(t, plain), 0o644); err != nil {
		t.Fatal(err)
	}
	fsrc, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fsrc.Close()
	got, err = Drain(fsrc)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("gzip file: got %+v, want %+v", got, want)
	}
}

// TestFileSourceGzipErrorsIdentifySource pins the failure modes of compressed
// input: a gzip magic number followed by garbage must fail with an error that
// names the source, not panic or be parsed as text.
func TestFileSourceGzipErrorsIdentifySource(t *testing.T) {
	for name, data := range map[string][]byte{
		"bad-header":  {0x1f, 0x8b, 0xff, 0xff},
		"truncated":   gzipBytes(t, "1 2 0.5\n")[:8],
		"corrupt-crc": append(gzipBytes(t, "1 2 0.5\n")[:20], 0, 0, 0, 0),
	} {
		src := NewReaderSource("gzbad", bytes.NewReader(data))
		_, err := Drain(src)
		if err == nil || errors.Is(err, io.EOF) {
			t.Errorf("%s: Drain accepted corrupt gzip input", name)
			continue
		}
		if !strings.Contains(err.Error(), "gzbad") {
			t.Errorf("%s: error %v does not identify the source", name, err)
		}
	}
}

func TestWriteUpdatesRoundTrips(t *testing.T) {
	updates := []Update{{A: 1, B: 2, Delta: 0.125}, {A: 3, B: 4, Delta: -2}}
	var b strings.Builder
	if n, err := WriteUpdates(&b, updates); err != nil || n != 2 {
		t.Fatalf("WriteUpdates = %d, %v", n, err)
	}
	got, err := Drain(NewReaderSource("roundtrip", strings.NewReader(b.String())))
	if err != nil {
		t.Fatal(err)
	}
	for i := range updates {
		if got[i] != updates[i] {
			t.Errorf("update %d: got %+v, want %+v", i, got[i], updates[i])
		}
	}
}

func TestSyntheticDeterministicAndBounded(t *testing.T) {
	cfg := SynthConfig{Vertices: 50, Updates: 200, Seed: 7, Skew: 1.5, NegativeFraction: 0.2}
	a, err := Drain(MustSynthetic(cfg))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Drain(MustSynthetic(cfg))
	if len(a) != 200 {
		t.Fatalf("generated %d updates, want 200", len(a))
	}
	negatives := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
		u := a[i]
		if u.A == u.B {
			t.Fatalf("self-loop generated: %+v", u)
		}
		if u.A < 0 || int(u.A) >= cfg.Vertices || u.B < 0 || int(u.B) >= cfg.Vertices {
			t.Fatalf("vertex out of range: %+v", u)
		}
		if u.Delta == 0 {
			t.Fatalf("zero delta generated: %+v", u)
		}
		if u.Delta < 0 {
			negatives++
		}
	}
	if negatives == 0 || negatives == len(a) {
		t.Fatalf("negative mix degenerate: %d/%d", negatives, len(a))
	}
}

func TestSyntheticSeedChangesStream(t *testing.T) {
	a, _ := Drain(MustSynthetic(SynthConfig{Vertices: 50, Updates: 100, Seed: 1}))
	b, _ := Drain(MustSynthetic(SynthConfig{Vertices: 50, Updates: 100, Seed: 2}))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := NewSynthetic(SynthConfig{Vertices: 1}); err == nil {
		t.Error("want error for 1 vertex")
	}
	if _, err := NewSynthetic(SynthConfig{Vertices: 10, NegativeFraction: 1}); err == nil {
		t.Error("want error for negative fraction 1")
	}
}

func TestLimitSource(t *testing.T) {
	src := NewLimitSource(MustSynthetic(SynthConfig{Vertices: 10, Seed: 3}), 5)
	got, err := Drain(src)
	if err != nil || len(got) != 5 {
		t.Fatalf("Drain = %d updates, %v; want 5, nil", len(got), err)
	}
}

func TestReplayBatchingAndStats(t *testing.T) {
	src := MustSynthetic(SynthConfig{Vertices: 20, Updates: 105, Seed: 11, NegativeFraction: 0.3})
	eng := core.MustNew(core.Config{T: 1.5, Nmax: 4})
	var sink core.CountingSink
	r := NewReplay(src, eng, &sink)

	for !r.Done() {
		n, err := r.Batch(25)
		if err != nil && !errors.Is(err, io.EOF) {
			t.Fatal(err)
		}
		if n == 0 && !errors.Is(err, io.EOF) {
			t.Fatal("empty batch without EOF")
		}
	}
	st := r.Stats()
	if st.Updates != 105 {
		t.Fatalf("Updates = %d, want 105", st.Updates)
	}
	if st.Batches != 5 { // 4 full batches of 25 plus the final 5
		t.Fatalf("Batches = %d, want 5", st.Batches)
	}
	if st.Events != sink.Total() {
		t.Fatalf("stats events %d != sink total %d", st.Events, sink.Total())
	}
	if st.Elapsed <= 0 || st.UpdatesPerSecond() <= 0 {
		t.Fatalf("degenerate timing stats: %+v", st)
	}
	if st.MinBatchLatency <= 0 || st.MaxBatchLatency < st.MinBatchLatency {
		t.Fatalf("degenerate latency stats: %+v", st)
	}
	if _, err := r.Batch(1); !errors.Is(err, io.EOF) {
		t.Fatalf("Batch after exhaustion = %v, want io.EOF", err)
	}
}

func TestNewReplayNilSinkKeepsInstalledSink(t *testing.T) {
	eng := core.MustNew(core.Config{T: 3, Nmax: 4})
	var mine core.CountingSink
	eng.SetSink(&mine)
	r := NewReplay(NewSliceSource([]Update{{A: 1, B: 2, Delta: 5}}), eng, nil)
	if r.Sink() != &mine {
		t.Fatal("NewReplay(nil sink) replaced the engine's installed sink")
	}
	if _, err := r.Run(8); err != nil {
		t.Fatal(err)
	}
	if mine.Became != 1 {
		t.Fatalf("installed sink saw %d became events, want 1", mine.Became)
	}
}

func TestReplayRunMatchesSliceModeEngine(t *testing.T) {
	cfg := SynthConfig{Vertices: 15, Updates: 300, Seed: 42, NegativeFraction: 0.25}
	engineCfg := core.Config{T: 2, Nmax: 4}

	// Reference: slice-returning engine over the same stream.
	refUpdates, _ := Drain(MustSynthetic(cfg))
	ref := core.MustNew(engineCfg)
	refEvents := ref.ProcessAll(refUpdates)

	eng := core.MustNew(engineCfg)
	r := NewReplay(MustSynthetic(cfg), eng, nil)
	st, err := r.Run(32)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 300 {
		t.Fatalf("Updates = %d, want 300", st.Updates)
	}
	if int(st.Events) != refEvents {
		t.Fatalf("replay produced %d events, slice-mode reference %d", st.Events, refEvents)
	}
	refKeys := ref.OutputDenseKeys()
	gotKeys := eng.OutputDenseKeys()
	if !slices.Equal(gotKeys, refKeys) {
		t.Fatalf("output-dense sets differ: %v vs %v", gotKeys, refKeys)
	}
}

// TestFileSourceMaxBatchMarkerInterplay pins SetMaxBatch's split semantics: a
// marker immediately after a cap split closes the already-returned batch (no
// spurious empty tick), while a second consecutive marker is a genuine empty
// batch, and EOF after a cap split ends the stream cleanly.
func TestFileSourceMaxBatchMarkerInterplay(t *testing.T) {
	read := func(input string, cap int) (sizes []int) {
		src := NewReaderSource("test", strings.NewReader(input))
		src.SetMaxBatch(cap)
		for {
			b, err := src.NextBatch()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					t.Fatal(err)
				}
				return sizes
			}
			sizes = append(sizes, len(b.Updates))
		}
	}
	cases := []struct {
		input string
		cap   int
		want  []int
	}{
		// Cap fires exactly at the marker: 2 batches, not 2 + empty.
		{"1 2 1\n3 4 1\n%%\n5 6 1\n", 2, []int{2, 1}},
		// Second consecutive marker after a cap split is a real empty batch.
		{"1 2 1\n3 4 1\n%%\n%%\n5 6 1\n", 2, []int{2, 0, 1}},
		// Cap split mid-run: the remainder continues in the next batch.
		{"1 2 1\n3 4 1\n5 6 1\n", 2, []int{2, 1}},
		// EOF right after a cap split: no phantom trailing batch.
		{"1 2 1\n3 4 1\n", 2, []int{2}},
		// EOF right after an absorbed marker: also no phantom empty batch.
		{"1 2 1\n3 4 1\n%%\n", 2, []int{2}},
		// Trailing marker without a cap split still closes a final batch
		// exactly as before (marker-terminated file, one batch).
		{"1 2 1\n3 4 1\n%%\n", 0, []int{2}},
		// Uncapped: marker semantics unchanged.
		{"1 2 1\n3 4 1\n%%\n%%\n5 6 1\n", 0, []int{2, 0, 1}},
	}
	for _, tc := range cases {
		if got := read(tc.input, tc.cap); !slices.Equal(got, tc.want) {
			t.Errorf("input %q cap %d: batch sizes %v, want %v", tc.input, tc.cap, got, tc.want)
		}
	}
}
