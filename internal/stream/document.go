package stream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dyndens/internal/vset"
)

// Document is one item of the input stream the paper's system actually
// ingests (Section 2): a timestamped set of entity mentions extracted from a
// news article, blog post, or tweet. The co-occurrence Aggregator turns the
// entity pairs of each document into edge-weight updates for the engine.
type Document struct {
	// Time is the document's timestamp in abstract, non-negative time units
	// (the Aggregator's epoch length is expressed in the same units). A
	// document stream must be time-ordered: real feeds arrive in order, and
	// the fading-weight schedule is only well defined over monotone time.
	Time int64
	// Entities is the deduplicated set of entities mentioned by the document.
	// Documents with fewer than two entities contribute no co-occurrences but
	// are legal (they still advance time).
	Entities vset.Set
}

// DocumentSource produces a stream of documents. Like UpdateSource it is
// pull-based and single-consumer; Next returns io.EOF when the stream is
// exhausted.
type DocumentSource interface {
	Next() (Document, error)
}

// SliceDocSource replays a fixed slice of documents; the trivial source for
// tests and in-memory callers.
type SliceDocSource struct {
	docs []Document
	pos  int
}

// NewSliceDocSource returns a source that yields the given documents in order.
func NewSliceDocSource(docs []Document) *SliceDocSource {
	return &SliceDocSource{docs: docs}
}

// Next implements DocumentSource.
func (s *SliceDocSource) Next() (Document, error) {
	if s.pos >= len(s.docs) {
		return Document{}, io.EOF
	}
	d := s.docs[s.pos]
	s.pos++
	return d, nil
}

// Rewind resets the source to the beginning of its slice.
func (s *SliceDocSource) Rewind() { s.pos = 0 }

// DrainDocs reads every remaining document from src into a slice; errors
// other than io.EOF are returned with the documents read so far.
func DrainDocs(src DocumentSource) ([]Document, error) {
	var out []Document
	for {
		d, err := src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
		out = append(out, d)
	}
}

// DocFileSource reads documents from a text stream in the format
// `time e1 e2 ... ek`, one document per line: a non-negative integer
// timestamp followed by one or more entity identifiers. Blank lines and '#'
// comments are skipped and gzip input is decompressed transparently, exactly
// like FileSource. This is the recorded-document format written by
// `dyndens stories gen-docs`.
type DocFileSource struct {
	ls *lineScanner
}

// NewDocReaderSource wraps an io.Reader in a DocFileSource. name is used in
// error messages only.
func NewDocReaderSource(name string, r io.Reader) *DocFileSource {
	return &DocFileSource{ls: newLineScanner(name, r)}
}

// OpenDocFile opens path as a DocFileSource. The caller must Close it.
func OpenDocFile(path string) (*DocFileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s := NewDocReaderSource(path, f)
	s.ls.closer = f
	return s, nil
}

// Next implements DocumentSource.
func (s *DocFileSource) Next() (Document, error) {
	text, line, err := s.ls.nextLine()
	if err != nil {
		return Document{}, err
	}
	d, err := ParseDocument(text)
	if err != nil {
		return Document{}, fmt.Errorf("%s:%d: %w", s.ls.name, line, err)
	}
	return d, nil
}

// Close releases the underlying file and gzip reader, if any.
func (s *DocFileSource) Close() error { return s.ls.close() }

// ParseDocument parses one `time e1 e2 ... ek` line. The timestamp must be a
// non-negative integer (the fading schedule needs a well-founded epoch zero),
// each entity must be a valid vertex in [0, MaxInt32), and duplicate mentions
// collapse into the set.
func ParseDocument(text string) (Document, error) {
	fields := strings.Fields(text)
	if len(fields) < 2 {
		return Document{}, fmt.Errorf("stream: want `time e1 [e2 ...]`, got %d fields in %q", len(fields), text)
	}
	ts, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Document{}, fmt.Errorf("stream: bad timestamp %q: %w", fields[0], err)
	}
	if ts < 0 {
		return Document{}, fmt.Errorf("stream: negative timestamp %q", fields[0])
	}
	entities := make([]vset.Vertex, 0, len(fields)-1)
	for _, f := range fields[1:] {
		v, err := parseVertex(f)
		if err != nil {
			return Document{}, err
		}
		entities = append(entities, v)
	}
	return Document{Time: ts, Entities: vset.New(entities...)}, nil
}

// WriteDocuments writes documents to w in the format DocFileSource reads,
// returning the number of documents written.
func WriteDocuments(w io.Writer, docs []Document) (int, error) {
	bw := bufio.NewWriter(w)
	for i, d := range docs {
		if _, err := fmt.Fprintf(bw, "%d", d.Time); err != nil {
			return i, err
		}
		for _, e := range d.Entities {
			if _, err := fmt.Fprintf(bw, " %d", e); err != nil {
				return i, err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return i, err
		}
	}
	return len(docs), bw.Flush()
}
