package stream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"slices"

	"dyndens/internal/vset"
)

// Document is one item of the input stream the paper's system actually
// ingests (Section 2): a timestamped set of entity mentions extracted from a
// news article, blog post, or tweet. The co-occurrence Aggregator turns the
// entity pairs of each document into edge-weight updates for the engine.
type Document struct {
	// Time is the document's timestamp in abstract, non-negative time units
	// (the Aggregator's epoch length is expressed in the same units). A
	// document stream must be time-ordered: real feeds arrive in order, and
	// the fading-weight schedule is only well defined over monotone time.
	Time int64
	// Entities is the deduplicated set of entities mentioned by the document.
	// Documents with fewer than two entities contribute no co-occurrences but
	// are legal (they still advance time).
	Entities vset.Set
}

// DocumentSource produces a stream of documents. Like UpdateSource it is
// pull-based and single-consumer; Next returns io.EOF when the stream is
// exhausted. A source may reuse the returned Document's Entities backing
// array: the set is only guaranteed valid until the next Next call, so a
// consumer that retains documents must Clone the set (DrainDocs does).
type DocumentSource interface {
	Next() (Document, error)
}

// SliceDocSource replays a fixed slice of documents; the trivial source for
// tests and in-memory callers.
type SliceDocSource struct {
	docs []Document
	pos  int
}

// NewSliceDocSource returns a source that yields the given documents in order.
func NewSliceDocSource(docs []Document) *SliceDocSource {
	return &SliceDocSource{docs: docs}
}

// Next implements DocumentSource.
func (s *SliceDocSource) Next() (Document, error) {
	if s.pos >= len(s.docs) {
		return Document{}, io.EOF
	}
	d := s.docs[s.pos]
	s.pos++
	return d, nil
}

// Rewind resets the source to the beginning of its slice.
func (s *SliceDocSource) Rewind() { s.pos = 0 }

// DrainDocs reads every remaining document from src into a slice; errors
// other than io.EOF are returned with the documents read so far. Entity sets
// are cloned, so the result stays valid however the source reuses buffers.
func DrainDocs(src DocumentSource) ([]Document, error) {
	var out []Document
	for {
		d, err := src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
		d.Entities = d.Entities.Clone()
		out = append(out, d)
	}
}

// DocFileSource reads documents from a text stream in the format
// `time e1 e2 ... ek`, one document per line: a non-negative integer
// timestamp followed by one or more entity identifiers. Blank lines and '#'
// comments are skipped and gzip input is decompressed transparently, exactly
// like FileSource. This is the recorded-document format written by
// `dyndens stories gen-docs`.
type DocFileSource struct {
	ls   *lineScanner
	ents []vset.Vertex // reusable mention scratch; returned Entities alias it
}

// NewDocReaderSource wraps an io.Reader in a DocFileSource. name is used in
// error messages only.
func NewDocReaderSource(name string, r io.Reader) *DocFileSource {
	return &DocFileSource{ls: newLineScanner(name, r)}
}

// OpenDocFile opens path as a DocFileSource. The caller must Close it.
func OpenDocFile(path string) (*DocFileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s := NewDocReaderSource(path, f)
	s.ls.closer = f
	return s, nil
}

// rawDocLiner is an optional DocumentSource capability: line-oriented sources
// expose their raw unparsed document lines so the pipelined front-end's
// expansion workers can parse off the reader goroutine. The returned slice is
// valid only until the next call; line is the 1-based line number for error
// messages, prefixed with sourceName.
type rawDocLiner interface {
	rawDocLine() (text []byte, line int, err error)
	sourceName() string
}

// Next implements DocumentSource. The returned Document's entity set reuses
// a scratch buffer owned by the source — it is valid until the next Next call
// (the DocumentSource contract), which makes steady-state document reads
// allocation-free: no per-line string, no per-document mention slice.
func (s *DocFileSource) Next() (Document, error) {
	text, line, err := s.ls.nextLineBytes()
	if err != nil {
		return Document{}, err
	}
	ts, ents, err := parseDocumentInto(text, s.ents[:0])
	if err != nil {
		return Document{}, fmt.Errorf("%s:%d: %w", s.ls.name, line, err)
	}
	s.ents = ents
	return Document{Time: ts, Entities: ents}, nil
}

// rawDocLine exposes the source's next raw document line (trimmed, valid
// until the next call) so the pipelined front-end can move parsing onto
// expansion workers; see rawDocLiner.
func (s *DocFileSource) rawDocLine() ([]byte, int, error) { return s.ls.nextLineBytes() }

// sourceName implements rawDocLiner.
func (s *DocFileSource) sourceName() string { return s.ls.name }

// Close releases the underlying file and gzip reader, if any.
func (s *DocFileSource) Close() error { return s.ls.close() }

// ParseDocument parses one `time e1 e2 ... ek` line. The timestamp must be a
// non-negative integer (the fading schedule needs a well-founded epoch zero),
// each entity must be a valid vertex in [0, MaxInt32), and duplicate mentions
// collapse into the set. The returned set is freshly allocated; the zero-alloc
// form used by the streaming sources is parseDocumentInto.
func ParseDocument(text string) (Document, error) {
	ts, ents, err := parseDocumentInto([]byte(text), nil)
	if err != nil {
		return Document{}, err
	}
	return Document{Time: ts, Entities: ents}, nil
}

// parseDocumentInto parses one `time e1 e2 ... ek` line from raw bytes into
// the ents scratch buffer, returning the timestamp and the sorted, deduplicated
// entity set (which aliases ents' backing array unless it grew). It performs
// no allocations in steady state: fields are sliced in place and the numeric
// parsers are manual — strconv would escape a string copy per field.
func parseDocumentInto(text []byte, ents []vset.Vertex) (int64, vset.Set, error) {
	var ts int64
	nfields := 0
	for i := 0; i < len(text); {
		for i < len(text) && asciiSpace(text[i]) {
			i++
		}
		if i >= len(text) {
			break
		}
		j := i
		for j < len(text) && !asciiSpace(text[j]) {
			j++
		}
		field := text[i:j]
		i = j
		if nfields == 0 {
			n, ok := parseUintBytes(field)
			if !ok {
				if len(field) > 1 && field[0] == '-' {
					if _, neg := parseUintBytes(field[1:]); neg {
						return 0, nil, fmt.Errorf("stream: negative timestamp %q", field)
					}
				}
				return 0, nil, fmt.Errorf("stream: bad timestamp %q", field)
			}
			ts = n
		} else {
			n, ok := parseUintBytes(field)
			if !ok || n >= math.MaxInt32 {
				return 0, nil, fmt.Errorf("stream: bad vertex %q (want integer in [0, %d))", field, math.MaxInt32)
			}
			ents = append(ents, vset.Vertex(n))
		}
		nfields++
	}
	if nfields < 2 {
		return 0, nil, fmt.Errorf("stream: want `time e1 [e2 ...]`, got %d fields in %q", nfields, text)
	}
	slices.Sort(ents)
	w := 1
	for i := 1; i < len(ents); i++ {
		if ents[i] != ents[w-1] {
			ents[w] = ents[i]
			w++
		}
	}
	return ts, vset.Set(ents[:w]), nil
}

// asciiSpace matches the whitespace that separates fields on a scanned line
// (the scanner has already stripped the newline and outer space).
func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\v' || c == '\f' || c == '\r'
}

// parseUintBytes parses an unsigned decimal integer from b without allocating,
// reporting false on empty input, non-digits, or int64 overflow.
func parseUintBytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		if n > (math.MaxInt64-9)/10 {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}

// WriteDocuments writes documents to w in the format DocFileSource reads,
// returning the number of documents written.
func WriteDocuments(w io.Writer, docs []Document) (int, error) {
	bw := bufio.NewWriter(w)
	for i, d := range docs {
		if _, err := fmt.Fprintf(bw, "%d", d.Time); err != nil {
			return i, err
		}
		for _, e := range d.Entities {
			if _, err := fmt.Fprintf(bw, " %d", e); err != nil {
				return i, err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return i, err
		}
	}
	return len(docs), bw.Flush()
}
