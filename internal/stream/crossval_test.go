package stream

import (
	"errors"
	"fmt"
	"io"
	"maps"
	"math"
	"slices"
	"sort"
	"sync"
	"testing"

	"dyndens/internal/baseline/brute"
	"dyndens/internal/core"
	"dyndens/internal/shard"
)

// The cross-validation tests replay seeded random update streams through the
// full pipeline (synthetic source → replay → engine → sink) and, every K
// updates, check the engine against the exhaustive offline oracle:
//
//  1. the engine's expanded output-dense set (explicit entries plus
//     ImplicitTooDense family members) must equal brute.EnumerateAll, and
//  2. the result set maintained purely from sink events must equal the
//     engine's explicitly indexed output-dense set — i.e. a downstream
//     consumer that only watches the stream of Became/Ceased events holds
//     exactly the engine's view.
//
// The graphs are kept small because EnumerateAll is exponential.

const crossValInterval = 25

// eventTracker maintains an output-dense result set from sink events, the way
// a story-identification consumer would.
type eventTracker struct {
	t    *testing.T
	keys map[string]bool
}

func newEventTracker(t *testing.T) *eventTracker {
	return &eventTracker{t: t, keys: make(map[string]bool)}
}

func (tr *eventTracker) Emit(ev core.Event) {
	k := ev.Set.Key()
	switch ev.Kind {
	case core.BecameOutputDense:
		if tr.keys[k] {
			tr.t.Errorf("BecameOutputDense for already-tracked %v", ev.Set)
		}
		tr.keys[k] = true
	case core.CeasedOutputDense:
		if !tr.keys[k] {
			tr.t.Errorf("CeasedOutputDense for untracked %v", ev.Set)
		}
		delete(tr.keys, k)
	default:
		tr.t.Errorf("unknown event kind %v", ev.Kind)
	}
}

func (tr *eventTracker) sortedKeys() []string {
	return slices.Sorted(maps.Keys(tr.keys))
}

// checkAgainstOracle asserts invariant 1 above.
func checkAgainstOracle(t *testing.T, eng *core.Engine, step int) {
	t.Helper()
	cfg := eng.Config()
	oracle := brute.EnumerateAll(eng.Graph(), brute.Params{Measure: cfg.Measure, T: cfg.T, Nmax: cfg.Nmax})
	wantKeys := brute.Keys(oracle)
	var gotKeys []string
	for _, s := range eng.OutputDenseExpanded() {
		gotKeys = append(gotKeys, s.Set.Key())
	}
	sort.Strings(gotKeys)
	if !slices.Equal(gotKeys, wantKeys) {
		t.Fatalf("after %d updates: engine output-dense set %v != oracle %v", step, gotKeys, wantKeys)
	}
	if msg := eng.ValidateIndex(); msg != "" {
		t.Fatalf("after %d updates: index invalid: %s", step, msg)
	}
}

// runCrossVal replays a seeded stream through the given sink, validating
// every crossValInterval updates. checkTracker is non-nil when the sink chain
// feeds an eventTracker whose view must match the engine's.
func runCrossVal(t *testing.T, seed int64, sink core.EventSink, tracker *eventTracker) {
	t.Helper()
	src := MustSynthetic(SynthConfig{
		Vertices:         10,
		Updates:          400,
		Seed:             seed,
		NegativeFraction: 0.35,
		MeanDelta:        1.5,
	})
	eng := core.MustNew(core.Config{T: 2, Nmax: 4})
	r := NewReplay(src, eng, sink)
	step := 0
	for !r.Done() {
		n, err := r.Batch(crossValInterval)
		if err != nil && !errors.Is(err, io.EOF) {
			t.Fatal(err)
		}
		step += n
		checkAgainstOracle(t, eng, step)
		if tracker != nil {
			got := tracker.sortedKeys()
			want := eng.OutputDenseKeys()
			if !slices.Equal(got, want) {
				t.Fatalf("after %d updates: event-tracked set %v != engine explicit set %v", step, got, want)
			}
		}
	}
	if step != 400 {
		t.Fatalf("replayed %d updates, want 400", step)
	}
	if eng.Stats().Events == 0 {
		t.Fatal("stream produced no events; cross-validation exercised nothing")
	}
}

func TestCrossValThroughCollectorSink(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		tracker := newEventTracker(t)
		// Collector in front of the tracker: also assert the collected slice
		// and the tracker agree on event counts at the end.
		var collector core.CollectorSink
		runCrossVal(t, seed, core.MultiSink{&collector, tracker}, tracker)
		if collector.Len() == 0 {
			t.Fatalf("seed %d: collector saw no events", seed)
		}
	}
}

func TestCrossValThroughCountingSink(t *testing.T) {
	for seed := int64(4); seed <= 6; seed++ {
		var counter core.CountingSink
		runCrossVal(t, seed, &counter, nil)
		if counter.Became < counter.Ceased {
			t.Fatalf("seed %d: more ceased (%d) than became (%d) events", seed, counter.Ceased, counter.Became)
		}
	}
}

func TestCrossValThroughFilterSink(t *testing.T) {
	for seed := int64(7); seed <= 9; seed++ {
		// Pass-everything filter so the tracker still mirrors the engine.
		tracker := newEventTracker(t)
		filter := &core.FilterSink{Next: tracker, MinCardinality: 2}
		runCrossVal(t, seed, filter, tracker)
		if filter.Passed == 0 || filter.Dropped != 0 {
			t.Fatalf("seed %d: filter passed=%d dropped=%d, want all passed", seed, filter.Passed, filter.Dropped)
		}
	}
}

// shardedSeqCollector records the sharded engine's merged stream grouped by
// update sequence number. The merge goroutine is the only writer while the
// replay is in flight; reads happen after Flush.
type shardedSeqCollector struct {
	mu     sync.Mutex
	events map[uint64][]shard.SeqEvent
}

func (c *shardedSeqCollector) EmitSeq(ev shard.SeqEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.events == nil {
		c.events = make(map[uint64][]shard.SeqEvent)
	}
	c.events[ev.Seq] = append(c.events[ev.Seq], ev)
}

// canonEvent is the canonical per-update comparison form of one event:
// kind and subgraph identify it, the score is checked with a tolerance.
func canonEvent(ev core.Event) string {
	return fmt.Sprintf("%d|%s", ev.Kind, ev.Set.Key())
}

func sortedCanon(events []core.Event) []string {
	out := make([]string, len(events))
	for i, ev := range events {
		out[i] = canonEvent(ev)
	}
	sort.Strings(out)
	return out
}

// TestShardedConformance is the oracle-backed conformance suite for the
// sharded engine: for K ∈ {1, 2, 4} the merged event stream must be
// identical, update for update (after canonical sorting within each update),
// to the single-threaded engine's output on the same seeded stream — and
// every crossValInterval updates both must agree with brute.EnumerateAll and
// with the result set a downstream consumer tracks from the merged events.
func TestShardedConformance(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		for seed := int64(11); seed <= 13; seed++ {
			t.Run(fmt.Sprintf("K=%d/seed=%d", k, seed), func(t *testing.T) {
				updates, err := Drain(MustSynthetic(SynthConfig{
					Vertices:         10,
					Updates:          400,
					Seed:             seed,
					NegativeFraction: 0.35,
					MeanDelta:        1.5,
				}))
				if err != nil {
					t.Fatal(err)
				}

				single := core.MustNew(core.Config{T: 2, Nmax: 4})
				se := shard.MustNew(shard.Config{
					Shards:    k,
					Engine:    core.Config{T: 2, Nmax: 4},
					BatchSize: 32, // deliberately not a divisor of the interval
				})
				defer se.Close()
				var merged shardedSeqCollector
				se.SetSeqSink(&merged)

				totalSingle := 0
				for step := 0; step < len(updates); step += crossValInterval {
					end := step + crossValInterval
					if end > len(updates) {
						end = len(updates)
					}
					chunk := updates[step:end]

					// Reference: per-update events from the single engine.
					want := make(map[uint64][]core.Event)
					for i, u := range chunk {
						evs := single.Process(u)
						totalSingle += len(evs)
						if len(evs) > 0 {
							want[uint64(step+i+1)] = evs
						}
					}
					se.ProcessAll(chunk)
					se.Flush()

					// Per-update event identity for the chunk just replayed.
					for i := range chunk {
						seq := uint64(step + i + 1)
						wantEvs := want[seq]
						gotEvs := merged.events[seq]
						if len(gotEvs) != len(wantEvs) {
							t.Fatalf("update %d: sharded emitted %d events, single %d", seq, len(gotEvs), len(wantEvs))
						}
						if len(wantEvs) == 0 {
							continue
						}
						got := make([]core.Event, len(gotEvs))
						for j, sev := range gotEvs {
							if sev.Seq != seq {
								t.Fatalf("event grouped under %d carries seq %d", seq, sev.Seq)
							}
							got[j] = sev.Event
						}
						gotCanon, wantCanon := sortedCanon(got), sortedCanon(wantEvs)
						if !slices.Equal(gotCanon, wantCanon) {
							t.Fatalf("update %d: merged events %v != single engine %v", seq, gotCanon, wantCanon)
						}
						// Scores must match up to float accumulation noise.
						byKey := make(map[string]core.Event, len(wantEvs))
						for _, ev := range wantEvs {
							byKey[canonEvent(ev)] = ev
						}
						for _, ev := range got {
							ref := byKey[canonEvent(ev)]
							if math.Abs(ev.Score-ref.Score) > 1e-6 {
								t.Fatalf("update %d: score for %v diverged: %g vs %g", seq, ev.Set, ev.Score, ref.Score)
							}
						}
					}

					// Oracle checkpoint: single engine vs brute, merged-tracked
					// set vs both.
					checkAgainstOracle(t, single, end)
					gotKeys := se.OutputDenseKeys()
					wantKeys := single.OutputDenseKeys()
					if !slices.Equal(gotKeys, wantKeys) {
						t.Fatalf("after %d updates: merged-tracked set %v != single engine %v", end, gotKeys, wantKeys)
					}
				}
				if totalSingle == 0 {
					t.Fatal("stream produced no events; conformance exercised nothing")
				}
				st := se.Stats()
				if int(st.MergedEvents) != totalSingle {
					t.Fatalf("merged %d events, single engine emitted %d", st.MergedEvents, totalSingle)
				}
				if k == 1 && st.DedupedEvents != 0 {
					t.Fatalf("K=1 deduplicated %d events", st.DedupedEvents)
				}
			})
		}
	}
}

// TestShardReplayMatchesReplay drives the same seeded stream through the
// single-engine Replay and the parallel ShardReplay and checks that both
// report the same updates and events, and that the sharded path's per-shard
// accounting is coherent.
func TestShardReplayMatchesReplay(t *testing.T) {
	synth := SynthConfig{Vertices: 12, Updates: 600, Seed: 21, NegativeFraction: 0.3, MeanDelta: 1.5}
	engCfg := core.Config{T: 2, Nmax: 4}

	eng := core.MustNew(engCfg)
	refStats, err := NewReplay(MustSynthetic(synth), eng, nil).Run(64)
	if err != nil {
		t.Fatal(err)
	}

	se := shard.MustNew(shard.Config{Shards: 4, Engine: engCfg})
	defer se.Close()
	var counter core.CountingSink
	r := NewShardReplay(MustSynthetic(synth), se, &counter)
	st, err := r.Run(64)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != refStats.Updates {
		t.Fatalf("sharded replay processed %d updates, single %d", st.Updates, refStats.Updates)
	}
	if st.Events != refStats.Events {
		t.Fatalf("sharded replay merged %d events, single emitted %d", st.Events, refStats.Events)
	}
	if counter.Total() != st.Events {
		t.Fatalf("sink saw %d events, stats report %d", counter.Total(), st.Events)
	}
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("per-shard stats sized %d/%d, want 4", st.Shards, len(st.PerShard))
	}
	if st.Wall <= 0 || st.UpdatesPerSecond() <= 0 || st.BusyTotal() <= 0 {
		t.Fatalf("degenerate timing stats: %+v", st)
	}
	var raw uint64
	for _, l := range st.PerShard {
		raw += l.RawEvents
	}
	if raw < st.Events {
		t.Fatalf("raw per-shard events %d < merged %d", raw, st.Events)
	}
	if !slices.Equal(se.OutputDenseKeys(), eng.OutputDenseKeys()) {
		t.Fatalf("result sets differ: %v vs %v", se.OutputDenseKeys(), eng.OutputDenseKeys())
	}
}

// TestCrossValFilterSinkSelective checks that a genuinely selective filter
// sees exactly the engine events that satisfy its predicates.
func TestCrossValFilterSinkSelective(t *testing.T) {
	src := MustSynthetic(SynthConfig{Vertices: 10, Updates: 400, Seed: 10, NegativeFraction: 0.35, MeanDelta: 1.5})
	eng := core.MustNew(core.Config{T: 2, Nmax: 4})
	var all, filtered core.CollectorSink
	filter := &core.FilterSink{Next: &filtered, MinCardinality: 3}
	if _, err := NewReplay(src, eng, core.MultiSink{&all, filter}).Run(crossValInterval); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, ev := range all.Events() {
		if ev.Set.Len() >= 3 {
			want++
		}
	}
	if want == 0 {
		t.Fatal("stream produced no events with cardinality ≥ 3; fixture too weak")
	}
	if filtered.Len() != want {
		t.Fatalf("filter forwarded %d events, want %d", filtered.Len(), want)
	}
	for _, ev := range filtered.Events() {
		if ev.Set.Len() < 3 {
			t.Fatalf("filter leaked small event %v", ev.Set)
		}
	}
}
