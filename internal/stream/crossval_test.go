package stream

import (
	"errors"
	"io"
	"maps"
	"slices"
	"sort"
	"testing"

	"dyndens/internal/baseline/brute"
	"dyndens/internal/core"
)

// The cross-validation tests replay seeded random update streams through the
// full pipeline (synthetic source → replay → engine → sink) and, every K
// updates, check the engine against the exhaustive offline oracle:
//
//  1. the engine's expanded output-dense set (explicit entries plus
//     ImplicitTooDense family members) must equal brute.EnumerateAll, and
//  2. the result set maintained purely from sink events must equal the
//     engine's explicitly indexed output-dense set — i.e. a downstream
//     consumer that only watches the stream of Became/Ceased events holds
//     exactly the engine's view.
//
// The graphs are kept small because EnumerateAll is exponential.

const crossValInterval = 25

// eventTracker maintains an output-dense result set from sink events, the way
// a story-identification consumer would.
type eventTracker struct {
	t    *testing.T
	keys map[string]bool
}

func newEventTracker(t *testing.T) *eventTracker {
	return &eventTracker{t: t, keys: make(map[string]bool)}
}

func (tr *eventTracker) Emit(ev core.Event) {
	k := ev.Set.Key()
	switch ev.Kind {
	case core.BecameOutputDense:
		if tr.keys[k] {
			tr.t.Errorf("BecameOutputDense for already-tracked %v", ev.Set)
		}
		tr.keys[k] = true
	case core.CeasedOutputDense:
		if !tr.keys[k] {
			tr.t.Errorf("CeasedOutputDense for untracked %v", ev.Set)
		}
		delete(tr.keys, k)
	default:
		tr.t.Errorf("unknown event kind %v", ev.Kind)
	}
}

func (tr *eventTracker) sortedKeys() []string {
	return slices.Sorted(maps.Keys(tr.keys))
}

// checkAgainstOracle asserts invariant 1 above.
func checkAgainstOracle(t *testing.T, eng *core.Engine, step int) {
	t.Helper()
	cfg := eng.Config()
	oracle := brute.EnumerateAll(eng.Graph(), brute.Params{Measure: cfg.Measure, T: cfg.T, Nmax: cfg.Nmax})
	wantKeys := brute.Keys(oracle)
	var gotKeys []string
	for _, s := range eng.OutputDenseExpanded() {
		gotKeys = append(gotKeys, s.Set.Key())
	}
	sort.Strings(gotKeys)
	if !slices.Equal(gotKeys, wantKeys) {
		t.Fatalf("after %d updates: engine output-dense set %v != oracle %v", step, gotKeys, wantKeys)
	}
	if msg := eng.ValidateIndex(); msg != "" {
		t.Fatalf("after %d updates: index invalid: %s", step, msg)
	}
}

// runCrossVal replays a seeded stream through the given sink, validating
// every crossValInterval updates. checkTracker is non-nil when the sink chain
// feeds an eventTracker whose view must match the engine's.
func runCrossVal(t *testing.T, seed int64, sink core.EventSink, tracker *eventTracker) {
	t.Helper()
	src := MustSynthetic(SynthConfig{
		Vertices:         10,
		Updates:          400,
		Seed:             seed,
		NegativeFraction: 0.35,
		MeanDelta:        1.5,
	})
	eng := core.MustNew(core.Config{T: 2, Nmax: 4})
	r := NewReplay(src, eng, sink)
	step := 0
	for !r.Done() {
		n, err := r.Batch(crossValInterval)
		if err != nil && !errors.Is(err, io.EOF) {
			t.Fatal(err)
		}
		step += n
		checkAgainstOracle(t, eng, step)
		if tracker != nil {
			got := tracker.sortedKeys()
			want := eng.OutputDenseKeys()
			if !slices.Equal(got, want) {
				t.Fatalf("after %d updates: event-tracked set %v != engine explicit set %v", step, got, want)
			}
		}
	}
	if step != 400 {
		t.Fatalf("replayed %d updates, want 400", step)
	}
	if eng.Stats().Events == 0 {
		t.Fatal("stream produced no events; cross-validation exercised nothing")
	}
}

func TestCrossValThroughCollectorSink(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		tracker := newEventTracker(t)
		// Collector in front of the tracker: also assert the collected slice
		// and the tracker agree on event counts at the end.
		var collector core.CollectorSink
		runCrossVal(t, seed, core.MultiSink{&collector, tracker}, tracker)
		if collector.Len() == 0 {
			t.Fatalf("seed %d: collector saw no events", seed)
		}
	}
}

func TestCrossValThroughCountingSink(t *testing.T) {
	for seed := int64(4); seed <= 6; seed++ {
		var counter core.CountingSink
		runCrossVal(t, seed, &counter, nil)
		if counter.Became < counter.Ceased {
			t.Fatalf("seed %d: more ceased (%d) than became (%d) events", seed, counter.Ceased, counter.Became)
		}
	}
}

func TestCrossValThroughFilterSink(t *testing.T) {
	for seed := int64(7); seed <= 9; seed++ {
		// Pass-everything filter so the tracker still mirrors the engine.
		tracker := newEventTracker(t)
		filter := &core.FilterSink{Next: tracker, MinCardinality: 2}
		runCrossVal(t, seed, filter, tracker)
		if filter.Passed == 0 || filter.Dropped != 0 {
			t.Fatalf("seed %d: filter passed=%d dropped=%d, want all passed", seed, filter.Passed, filter.Dropped)
		}
	}
}

// TestCrossValFilterSinkSelective checks that a genuinely selective filter
// sees exactly the engine events that satisfy its predicates.
func TestCrossValFilterSinkSelective(t *testing.T) {
	src := MustSynthetic(SynthConfig{Vertices: 10, Updates: 400, Seed: 10, NegativeFraction: 0.35, MeanDelta: 1.5})
	eng := core.MustNew(core.Config{T: 2, Nmax: 4})
	var all, filtered core.CollectorSink
	filter := &core.FilterSink{Next: &filtered, MinCardinality: 3}
	if _, err := NewReplay(src, eng, core.MultiSink{&all, filter}).Run(crossValInterval); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, ev := range all.Events() {
		if ev.Set.Len() >= 3 {
			want++
		}
	}
	if want == 0 {
		t.Fatal("stream produced no events with cardinality ≥ 3; fixture too weak")
	}
	if filtered.Len() != want {
		t.Fatalf("filter forwarded %d events, want %d", filtered.Len(), want)
	}
	for _, ev := range filtered.Events() {
		if ev.Set.Len() < 3 {
			t.Fatalf("filter leaked small event %v", ev.Set)
		}
	}
}
