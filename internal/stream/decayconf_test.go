// The exact-vs-rescale fading conformance suite: the evidence that the O(1)
// rescaled decay representation (normalized weights + threshold units) is an
// optimization, not an approximation.
//
// The two modes realise the same mathematical object — the faded co-occurrence
// graph — in different units: exact mode stores real weights and sweeps every
// pair each epoch; rescaled mode stores w' = w/λ and moves the engine's
// threshold to T/λ instead. Uniform scaling preserves every density ratio, so
// the suite pins:
//
//   - batch structure: both modes emit identical group sequences (one decay
//     group per epoch crossing, one group per document), so batched replays
//     are tick-aligned and the story pipeline — whose records carry no floats
//     — must produce DEEP-EQUAL lifecycle records and story tables, single
//     and sharded (K ∈ {1, 4});
//   - end state: the expanded output-dense vertex sets must agree across all
//     four drive modes (exact sequential, exact batched, rescaled
//     uncoalesced, rescaled batched), and match brute.EnumerateAll on the
//     engine's own (normalized) graph;
//   - units: rescaled graph weights times λ must equal the exact graph's
//     weights, and rescaled emitted densities are real-unit (the engine
//     multiplies by λ at the emit boundary) — both to float tolerance;
//   - retirement: the lazy expiry heap must retire exactly the pairs the
//     exact sweep retires, at the same epoch, over randomized add/decay
//     schedules with multi-epoch time jumps.
package stream

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"slices"
	"testing"

	"dyndens/internal/baseline/brute"
	"dyndens/internal/core"
	"dyndens/internal/shard"
	"dyndens/internal/story"
	"dyndens/internal/vset"
)

// relClose reports |a-b| within rel·max(|a|,|b|) (or both zero).
func relClose(a, b, rel float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}

// decayConfPipeline is one full documents→stories drive of the conformance
// workload in the given mode.
type decayConfPipeline struct {
	eng     *core.Engine
	agg     *Aggregator
	tracker *story.Tracker
	stats   ReplayStats
}

func runDecayConfPipeline(t *testing.T, docCfg DocSynthConfig, aggCfg AggregatorConfig, engCfg core.Config, drive func(*Replay) (ReplayStats, error)) *decayConfPipeline {
	t.Helper()
	gen, err := NewDocSynthetic(docCfg)
	if err != nil {
		t.Fatal(err)
	}
	p := &decayConfPipeline{
		agg:     MustAggregator(gen, aggCfg),
		eng:     core.MustNew(engCfg),
		tracker: story.MustTracker(story.Config{MinCardinality: 3, Grace: 40}),
	}
	if p.stats, err = drive(NewReplay(p.agg, p.eng, p.tracker)); err != nil {
		t.Fatal(err)
	}
	p.tracker.Close(uint64(p.stats.Ticks))
	return p
}

// expandedKeys is the representation-independent result set: the expanded
// output-dense subgraphs' canonical keys, sorted.
func expandedKeys(eng *core.Engine) []string {
	var out []string
	for _, s := range eng.OutputDenseExpanded() {
		out = append(out, s.Set.Key())
	}
	slices.Sort(out)
	return out
}

// TestDecayModeConformance drives the same randomized document workload
// through the four replay modes and checks the contracts in the package
// comment. Decay 0.7 with PruneBelow defaulted retires pairs continuously,
// so the lazy heap, the threshold units, and the cancellation path are all
// exercised on every seed.
func TestDecayModeConformance(t *testing.T) {
	engCfg := core.Config{T: 6.5, Nmax: 4}
	for seed := int64(7); seed <= 9; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			docCfg := DocSynthConfig{
				BackgroundEntities: 30,
				Stories:            3,
				StorySize:          4,
				Docs:               600,
				Seed:               seed,
				BackgroundSkew:     1.1,
			}
			exactCfg := AggregatorConfig{EpochLength: 25, Decay: 0.7, DecayMode: DecayExact}
			rescaleCfg := AggregatorConfig{EpochLength: 25, Decay: 0.7, DecayMode: DecayRescale}

			exactSeq := runDecayConfPipeline(t, docCfg, exactCfg, engCfg, func(r *Replay) (ReplayStats, error) { return r.Run(64) })
			exactBat := runDecayConfPipeline(t, docCfg, exactCfg, engCfg, func(r *Replay) (ReplayStats, error) { return r.RunBatches(0, true) })
			rescaleSeq := runDecayConfPipeline(t, docCfg, rescaleCfg, engCfg, func(r *Replay) (ReplayStats, error) { return r.RunBatches(0, false) })
			rescaleBat := runDecayConfPipeline(t, docCfg, rescaleCfg, engCfg, func(r *Replay) (ReplayStats, error) { return r.RunBatches(0, true) })

			if rescaleBat.agg.Stats().ThresholdUpdates == 0 {
				t.Fatal("rescaled drive emitted no threshold units; fixture too weak")
			}
			if exactBat.agg.Stats().Retired == 0 {
				t.Fatal("workload retired no pairs; fixture too weak")
			}

			// Tick alignment: the batched modes must agree on batch structure —
			// and therefore on the float-free story lifecycle, exactly.
			if exactBat.stats.Ticks != rescaleBat.stats.Ticks {
				t.Fatalf("batched tick counts diverge: exact %d, rescale %d", exactBat.stats.Ticks, rescaleBat.stats.Ticks)
			}
			requireSameRecords(t, "exact-batched vs rescale-batched", rescaleBat.tracker, exactBat.tracker)

			// End state: expanded output-dense sets agree across all four
			// drives and match the brute oracle on each engine's own graph
			// (normalized units for the rescaled engines — the oracle scales
			// with the graph it is given).
			ref := expandedKeys(exactSeq.eng)
			if len(ref) == 0 {
				t.Fatal("no dense subgraphs at end of stream; fixture too weak")
			}
			for name, p := range map[string]*decayConfPipeline{
				"exact-batched": exactBat, "rescale-uncoalesced": rescaleSeq, "rescale-batched": rescaleBat,
			} {
				if got := expandedKeys(p.eng); !slices.Equal(got, ref) {
					t.Fatalf("%s: expanded dense set %v != exact sequential %v", name, got, ref)
				}
				cfg := p.eng.Config()
				oracle := brute.Keys(brute.EnumerateAll(p.eng.Graph(), brute.Params{Measure: cfg.Measure, T: cfg.T, Nmax: cfg.Nmax}))
				if got := expandedKeys(p.eng); !slices.Equal(got, oracle) {
					t.Fatalf("%s: expanded dense set %v != oracle %v", name, got, oracle)
				}
			}

			// Units: the rescaled engine's λ equals the aggregator's, stored
			// weights are w' = w/λ, and reported densities are real-unit.
			lambda := rescaleBat.agg.Scale()
			if got := rescaleBat.eng.DecayScale(); got != lambda {
				t.Fatalf("engine λ %v != aggregator λ %v", got, lambda)
			}
			if lambda >= 1 {
				t.Fatalf("λ = %v after %d epochs; decay never applied", lambda, rescaleBat.agg.Stats().Epochs)
			}
			exactDens := map[string]float64{}
			for _, s := range exactBat.eng.OutputDense() {
				exactDens[s.Set.Key()] = s.Density
			}
			for _, s := range rescaleBat.eng.OutputDense() {
				want, ok := exactDens[s.Set.Key()]
				if !ok {
					t.Fatalf("rescaled output-dense %s absent from exact engine", s.Set.Key())
				}
				if !relClose(s.Density, want, 1e-6) {
					t.Fatalf("density of %s: rescaled %v != exact %v", s.Set.Key(), s.Density, want)
				}
			}
			// Threshold identity: normalized T = baseT/λ.
			if got, want := rescaleBat.eng.Config().T, engCfg.T/lambda; !relClose(got, want, 1e-9) {
				t.Fatalf("normalized threshold %v != baseT/λ = %v", got, want)
			}
		})
	}
}

// TestDecayModeShardedConformance pins the sharded rescaled pipeline: the
// threshold epoch unit is broadcast to every worker as one sequenced batch,
// so K ∈ {1, 4} must reproduce the single rescaled engine's story lifecycle
// and table exactly, in both overlap policies.
func TestDecayModeShardedConformance(t *testing.T) {
	docCfg := DocSynthConfig{
		BackgroundEntities: 30,
		Stories:            3,
		StorySize:          4,
		Docs:               600,
		Seed:               7,
		BackgroundSkew:     1.1,
	}
	aggCfg := AggregatorConfig{EpochLength: 25, Decay: 0.7, DecayMode: DecayRescale}
	engCfg := core.Config{T: 6.5, Nmax: 4}
	trkCfg := story.Config{MinCardinality: 3, Grace: 40}

	ref := runDecayConfPipeline(t, docCfg, aggCfg, engCfg, func(r *Replay) (ReplayStats, error) { return r.RunBatches(0, true) })
	if ref.tracker.Stats().Born == 0 {
		t.Fatal("reference bore no stories; fixture too weak")
	}
	for _, k := range []int{1, 4} {
		for _, ov := range []shard.Overlap{shard.OverlapScoped, shard.OverlapMirror} {
			gen, err := NewDocSynthetic(docCfg)
			if err != nil {
				t.Fatal(err)
			}
			agg := MustAggregator(gen, aggCfg)
			se := shard.MustNew(shard.Config{Shards: k, Engine: engCfg, Overlap: ov})
			tracker := story.MustTracker(trkCfg)
			se.SetSeqSink(tracker)
			r := NewShardReplay(agg, se, nil)
			st, err := r.RunBatches(0, true)
			if err != nil {
				t.Fatal(err)
			}
			r.Flush()
			tracker.Close(uint64(st.Ticks))
			if st.Ticks != ref.stats.Ticks {
				t.Fatalf("K=%d %s: %d ticks, single %d", k, ov, st.Ticks, ref.stats.Ticks)
			}
			requireSameRecords(t, fmt.Sprintf("K=%d %s", k, ov), tracker, ref.tracker)
			se.Close()
		}
	}
}

// drainAggregatorBatches pulls every batch of one aggregator, handing each to
// visit with the λ in effect after the batch was formed.
func drainAggregatorBatches(t *testing.T, agg *Aggregator, visit func(b Batch, lambda float64)) {
	t.Helper()
	for {
		b, err := agg.NextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return
			}
			t.Fatal(err)
		}
		visit(b, agg.Scale())
	}
}

// TestRescaleRetirementMatchesExactSweep is the lazy-heap property test: over
// randomized document schedules — bursty pair adds, single- and multi-epoch
// time jumps, re-added pairs that invalidate heap entries — the rescaled
// aggregator must retire exactly the pairs the exact sweep retires, in the
// same epoch batch, and the surviving weights must agree in real units. Both
// sides are mirrored purely from the emitted update streams, so the test
// also pins that cancellations telescope to exact zero in each mode's own
// units.
func TestRescaleRetirementMatchesExactSweep(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var docs []Document
			now := int64(0)
			for i := 0; i < 400; i++ {
				// 60%: same epoch; 30%: next epoch; 10%: jump 2–5 epochs.
				switch r := rng.Float64(); {
				case r < 0.30:
					now += 10
				case r < 0.40:
					now += 10 * int64(2+rng.Intn(4))
				}
				a := vset.Vertex(rng.Intn(12))
				b := vset.Vertex(rng.Intn(12))
				for b == a {
					b = vset.Vertex(rng.Intn(12))
				}
				docs = append(docs, Document{Time: now, Entities: vset.New(a, b)})
			}
			cfg := AggregatorConfig{EpochLength: 10, Decay: 0.5, PruneBelow: 0.05}

			type mirror struct {
				weights map[[2]core.Vertex]float64
				batches [][]string // retired pair keys per decay batch, in emission order
			}
			drain := func(mode DecayMode) (*mirror, AggregatorStats) {
				exCfg := cfg
				exCfg.DecayMode = mode
				agg := MustAggregator(NewSliceDocSource(docs), exCfg)
				m := &mirror{weights: map[[2]core.Vertex]float64{}}
				drainAggregatorBatches(t, agg, func(b Batch, lambda float64) {
					var retired []string
					for _, u := range b.Updates {
						k := [2]core.Vertex{u.A, u.B}
						m.weights[k] += u.Delta
						if b.Decay && m.weights[k] == 0 {
							delete(m.weights, k)
							retired = append(retired, fmt.Sprintf("%d-%d", u.A, u.B))
						}
					}
					if b.Decay {
						m.batches = append(m.batches, retired)
					}
				})
				// Real units for comparison: exact λ is 1, so this is a no-op
				// there; rescaled mirrors hold normalized weights.
				for k, w := range m.weights {
					m.weights[k] = w * agg.Scale()
				}
				return m, agg.Stats()
			}

			exact, exactStats := drain(DecayExact)
			rescale, rescaleStats := drain(DecayRescale)

			if exactStats.Retired == 0 {
				t.Fatal("schedule retired no pairs; fixture too weak")
			}
			if rescaleStats.Retired != exactStats.Retired {
				t.Fatalf("retired counts diverge: rescale %d, exact %d", rescaleStats.Retired, exactStats.Retired)
			}
			if len(rescale.batches) != len(exact.batches) {
				t.Fatalf("decay batch counts diverge: rescale %d, exact %d", len(rescale.batches), len(exact.batches))
			}
			for i := range exact.batches {
				if !slices.Equal(rescale.batches[i], exact.batches[i]) {
					t.Fatalf("decay batch %d: rescale retired %v, exact retired %v", i, rescale.batches[i], exact.batches[i])
				}
			}
			if len(rescale.weights) != len(exact.weights) {
				t.Fatalf("surviving pair counts diverge: rescale %d, exact %d", len(rescale.weights), len(exact.weights))
			}
			for k, want := range exact.weights {
				if got, ok := rescale.weights[k]; !ok || !relClose(got, want, 1e-9) {
					t.Fatalf("pair %v: rescaled real weight %v != exact %v", k, rescale.weights[k], want)
				}
			}
			// The whole point: the rescaled drain touched only expiring pairs,
			// the exact sweep touched every tracked pair every epoch.
			if rescaleStats.EpochPairTouches >= exactStats.EpochPairTouches {
				t.Fatalf("rescaled touches %d not below exact sweep's %d", rescaleStats.EpochPairTouches, exactStats.EpochPairTouches)
			}
			// Each touch is either a confirmed retirement or a stale-high
			// re-key (the pair gained weight after its entry was pushed, so
			// the entry fires early once). Re-keys are bounded by pair
			// additions — amortized O(1) per update, never O(E) per epoch.
			if rescaleStats.EpochPairTouches < rescaleStats.Retired {
				t.Fatalf("rescaled touches %d below retirements %d", rescaleStats.EpochPairTouches, rescaleStats.Retired)
			}
			if extra := rescaleStats.EpochPairTouches - rescaleStats.Retired; extra > rescaleStats.PairUpdates {
				t.Fatalf("%d stale re-keys exceed %d pair additions", extra, rescaleStats.PairUpdates)
			}
		})
	}
}

// TestRescaleEpochIsO1AndAllocFree pins the tentpole's cost model: with no
// retirements due, a rescaled decay epoch touches zero per-pair state no
// matter how many pairs are tracked (EpochPairTouches stays flat) and the
// whole NextBatch cycle — epoch tick plus next document — allocates nothing
// in steady state.
func TestRescaleEpochIsO1AndAllocFree(t *testing.T) {
	// 190 tracked background pairs, all far above PruneBelow; then one doc per
	// epoch on a fixed pair so every ingest crosses an epoch boundary.
	var docs []Document
	var warm []vset.Vertex
	for v := 0; v < 20; v++ {
		warm = append(warm, vset.Vertex(v))
	}
	docs = append(docs, Document{Time: 0, Entities: vset.New(warm...)})
	const epochs = 160
	for i := 1; i <= epochs; i++ {
		docs = append(docs, Document{Time: int64(10 * i), Entities: vset.New(0, 1)})
	}
	agg := MustAggregator(NewSliceDocSource(docs), AggregatorConfig{
		EpochLength: 10, Decay: 0.99, DocWeight: 1000, PruneBelow: 1e-3, DecayMode: DecayRescale,
	})
	// Warmup: the clique doc (buffer growth) plus a few full epoch cycles
	// (decay group + document group each).
	if _, err := agg.NextBatch(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := agg.NextBatch(); err != nil {
			t.Fatal(err)
		}
	}
	touchesBefore := agg.Stats().EpochPairTouches
	allocs := testing.AllocsPerRun(50, func() {
		// One epoch tick (decay group) + one document group.
		if _, err := agg.NextBatch(); err != nil {
			t.Fatal(err)
		}
		if _, err := agg.NextBatch(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("rescaled epoch cycle performed %v allocs/run, want 0", allocs)
	}
	st := agg.Stats()
	if st.EpochPairTouches != touchesBefore {
		t.Errorf("no-retirement epochs touched %d pairs, want 0 (was %d, now %d)",
			st.EpochPairTouches-touchesBefore, touchesBefore, st.EpochPairTouches)
	}
	if st.TrackedPairs < 150 {
		t.Fatalf("only %d tracked pairs; fixture too weak for an O(1)-vs-O(E) claim", st.TrackedPairs)
	}
	if st.ThresholdUpdates == 0 {
		t.Fatal("no threshold units emitted; epochs did not tick")
	}
}

// TestRescaleRenormalization forces λ under the renormalization floor with a
// brutal per-epoch decay and checks the full pipeline survives it: the
// renorm epoch folds λ back into the stored weights (Scale returns to 1, the
// engine returns to the base threshold), and the engine's graph still agrees
// with the aggregator's weights in the new units.
func TestRescaleRenormalization(t *testing.T) {
	// Decay 1e-40 per epoch: λ crosses 1e-150 on the 4th epoch tick.
	var docs []Document
	for i := 0; i <= 8; i++ {
		docs = append(docs, Document{Time: int64(10 * i), Entities: vset.New(0, 1, 2)})
	}
	aggCfg := AggregatorConfig{EpochLength: 10, Decay: 1e-40, PruneBelow: -1, DecayMode: DecayRescale}
	agg := MustAggregator(NewSliceDocSource(docs), aggCfg)
	eng := core.MustNew(core.Config{T: 2, Nmax: 4})
	if _, err := NewReplay(agg, eng, nil).RunBatches(0, true); err != nil {
		t.Fatal(err)
	}
	st := agg.Stats()
	if st.Renorms == 0 {
		t.Fatalf("λ never underflowed: %+v (λ=%v)", st, agg.Scale())
	}
	if agg.Scale() >= 1e-150 && agg.Scale() != 1 {
		// After the last epoch λ is either freshly renormalized (1) or has
		// restarted its decline; it must never sit below the floor.
		t.Fatalf("λ = %v left below the renormalization floor", agg.Scale())
	}
	if got, want := eng.DecayScale(), agg.Scale(); got != want {
		t.Fatalf("engine λ %v != aggregator λ %v", got, want)
	}
	// Graph agreement in normalized units.
	for _, pair := range [][2]core.Vertex{{0, 1}, {0, 2}, {1, 2}} {
		want := agg.Weight(pair[0], pair[1])
		if got := eng.Graph().Weight(pair[0], pair[1]); !relClose(got, want, 1e-9) {
			t.Fatalf("edge %v: engine weight %v != aggregator %v", pair, got, want)
		}
		if want == 0 {
			t.Fatalf("pair %v lost its weight entirely", pair)
		}
	}
}
