package stream

import (
	"errors"
	"fmt"
	"io"
	"time"

	"dyndens/internal/core"
)

// Replay drives an UpdateSource through an Engine into an EventSink. It is
// the glue of the pipeline: sources know nothing about the engine, the engine
// knows nothing about where updates come from, and sinks only see results.
//
// Updates are processed in micro-batches (Batch) so that callers can
// interleave replay with queries, threshold changes, or backpressure checks,
// and so that latency is tracked at a granularity that is meaningful for a
// streaming system (per-batch, amortising the timer cost over many
// sub-microsecond updates).
type Replay struct {
	src  UpdateSource
	eng  *core.Engine
	sink core.EventSink

	startEvents uint64
	stats       ReplayStats
	done        bool
	buf         []Update // per-batch staging so source I/O stays untimed
}

// ReplayStats aggregates the work performed by a Replay.
type ReplayStats struct {
	Updates int           // updates pulled from the source and processed
	Events  uint64        // output events emitted by the engine during the replay
	Batches int           // Batch calls that processed at least one update
	Elapsed time.Duration // total time spent inside Engine.Process batches

	MinBatchLatency time.Duration // fastest non-empty batch
	MaxBatchLatency time.Duration // slowest non-empty batch
}

// UpdatesPerSecond returns the replay throughput (0 before any work).
func (s ReplayStats) UpdatesPerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Updates) / s.Elapsed.Seconds()
}

// MeanUpdateLatency returns the average processing time per update.
func (s ReplayStats) MeanUpdateLatency() time.Duration {
	if s.Updates == 0 {
		return 0
	}
	return s.Elapsed / time.Duration(s.Updates)
}

// String formats the throughput/latency summary printed by the CLI driver.
func (s ReplayStats) String() string {
	return fmt.Sprintf(
		"replay{updates=%d events=%d batches=%d elapsed=%v throughput=%.0f upd/s mean=%v batch=[%v..%v]}",
		s.Updates, s.Events, s.Batches, s.Elapsed.Round(time.Microsecond),
		s.UpdatesPerSecond(), s.MeanUpdateLatency(), s.MinBatchLatency, s.MaxBatchLatency)
}

// NewReplay wires src → eng → sink, installing sink on the engine. A nil
// sink keeps the sink already installed on the engine, if any, and otherwise
// installs a CountingSink so the engine never materialises event slices
// during replay — and, because CountingSink declares it does not retain
// Event.Set (core.SetRetainer), the engine also skips the per-event set
// clone, keeping steady-state replay allocation-free.
func NewReplay(src UpdateSource, eng *core.Engine, sink core.EventSink) *Replay {
	if sink == nil {
		if sink = eng.Sink(); sink == nil {
			sink = &core.CountingSink{}
		}
	}
	eng.SetSink(sink)
	return &Replay{
		src:         src,
		eng:         eng,
		sink:        sink,
		startEvents: eng.Stats().Events,
	}
}

// Engine returns the driven engine.
func (r *Replay) Engine() *core.Engine { return r.eng }

// Sink returns the installed sink.
func (r *Replay) Sink() core.EventSink { return r.sink }

// Done reports whether the source has been exhausted.
func (r *Replay) Done() bool { return r.done }

// Stats returns the statistics accumulated so far.
func (r *Replay) Stats() ReplayStats {
	s := r.stats
	s.Events = r.eng.Stats().Events - r.startEvents
	return s
}

// Batch pulls up to n updates from the source and processes them, returning
// the number processed. It returns io.EOF (possibly alongside a non-zero
// count) once the source is exhausted, and any source error verbatim.
//
// The batch is staged in memory before processing so that the latency
// statistics measure engine cost only, not source I/O or parsing.
func (r *Replay) Batch(n int) (int, error) {
	if r.done {
		return 0, io.EOF
	}
	if n <= 0 {
		return 0, fmt.Errorf("stream: batch size must be positive, got %d", n)
	}
	r.buf = r.buf[:0]
	var srcErr error
	for len(r.buf) < n {
		u, err := r.src.Next()
		if err != nil {
			srcErr = err
			break
		}
		r.buf = append(r.buf, u)
	}
	processed := len(r.buf)
	start := time.Now()
	for _, u := range r.buf {
		r.eng.Process(u)
	}
	elapsed := time.Since(start)
	if processed > 0 {
		r.stats.Updates += processed
		r.stats.Batches++
		r.stats.Elapsed += elapsed
		if r.stats.MinBatchLatency == 0 || elapsed < r.stats.MinBatchLatency {
			r.stats.MinBatchLatency = elapsed
		}
		if elapsed > r.stats.MaxBatchLatency {
			r.stats.MaxBatchLatency = elapsed
		}
	}
	if srcErr != nil {
		if errors.Is(srcErr, io.EOF) {
			r.done = true
			return processed, io.EOF
		}
		return processed, srcErr
	}
	return processed, nil
}

// Run drains the source in batches of batchSize and returns the final
// statistics. A source error other than io.EOF aborts the run and is
// returned with the statistics accumulated so far.
func (r *Replay) Run(batchSize int) (ReplayStats, error) {
	for {
		_, err := r.Batch(batchSize)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return r.Stats(), nil
			}
			return r.Stats(), err
		}
	}
}
