package stream

import (
	"errors"
	"fmt"
	"io"
	"time"

	"dyndens/internal/core"
)

// Replay drives an UpdateSource through an Engine into an EventSink. It is
// the glue of the pipeline: sources know nothing about the engine, the engine
// knows nothing about where updates come from, and sinks only see results.
//
// Updates are processed in micro-batches (Batch) so that callers can
// interleave replay with queries, threshold changes, or backpressure checks,
// and so that latency is tracked at a granularity that is meaningful for a
// streaming system (per-batch, amortising the timer cost over many
// sub-microsecond updates).
type Replay struct {
	src  UpdateSource
	eng  *core.Engine
	sink core.EventSink

	startEvents uint64
	stats       ReplayStats
	done        bool
	buf         []Update // per-batch staging so source I/O stays untimed
	hook        func() error
}

// SegmentStats is the throughput accounting of one batch-provenance segment
// of a replay (epoch decay bursts vs everything else). An epoch tick is N
// updates but one logical batch; reporting both keeps throughput numbers
// comparable between the sequential and coalesced modes.
type SegmentStats struct {
	Updates int           // updates in this segment
	Batches int           // source batches in this segment
	Elapsed time.Duration // engine time spent in this segment
}

// UpdatesPerSecond returns the segment throughput (0 before any work).
func (s SegmentStats) UpdatesPerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Updates) / s.Elapsed.Seconds()
}

// ReplayStats aggregates the work performed by a Replay.
type ReplayStats struct {
	Updates int    // updates pulled from the source and processed
	Events  uint64 // output events emitted by the engine during the replay
	Batches int    // read/driver batches that processed at least one update
	// Ticks counts logical engine boundaries: one per Process call in
	// sequential mode, one per coalesced ProcessBatch call in batch mode. A
	// boundary-aware sink (the story tracker) sees exactly Ticks EndUpdates.
	Ticks   int
	Elapsed time.Duration // total time spent inside the engine

	MinBatchLatency time.Duration // fastest non-empty batch
	MaxBatchLatency time.Duration // slowest non-empty batch

	// DecaySeg and OtherSeg split the replay by batch provenance when the
	// source exposes natural batches (RunBatches over a BatchSource): epoch
	// fading bursts vs document/positive batches. Both are zero for the
	// plain Run driver, whose sources carry no provenance.
	DecaySeg SegmentStats
	OtherSeg SegmentStats

	// Ingest carries the front-end's per-stage busy/stall accounting when the
	// source is a pipelined front-end (stream.Pipeline); nil otherwise. Note
	// Elapsed remains engine-only time: with a pipeline the front-end cost
	// overlaps it instead of adding to it.
	Ingest *IngestStats
}

// UpdatesPerSecond returns the replay throughput (0 before any work).
func (s ReplayStats) UpdatesPerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Updates) / s.Elapsed.Seconds()
}

// MeanUpdateLatency returns the average processing time per update.
func (s ReplayStats) MeanUpdateLatency() time.Duration {
	if s.Updates == 0 {
		return 0
	}
	return s.Elapsed / time.Duration(s.Updates)
}

// String formats the throughput/latency summary printed by the CLI driver.
// Segment lines appear only when the replay had batch provenance to split on.
func (s ReplayStats) String() string {
	out := fmt.Sprintf(
		"replay{updates=%d ticks=%d events=%d batches=%d elapsed=%v throughput=%.0f upd/s mean=%v batch=[%v..%v]}",
		s.Updates, s.Ticks, s.Events, s.Batches, s.Elapsed.Round(time.Microsecond),
		s.UpdatesPerSecond(), s.MeanUpdateLatency(), s.MinBatchLatency, s.MaxBatchLatency)
	if s.DecaySeg.Batches > 0 || s.OtherSeg.Batches > 0 {
		out += fmt.Sprintf(
			"\nsegments{decay: %d upd / %d batches / %.0f upd/s | other: %d upd / %d batches / %.0f upd/s}",
			s.DecaySeg.Updates, s.DecaySeg.Batches, s.DecaySeg.UpdatesPerSecond(),
			s.OtherSeg.Updates, s.OtherSeg.Batches, s.OtherSeg.UpdatesPerSecond())
	}
	if s.Ingest != nil {
		out += "\n" + s.Ingest.String()
	}
	return out
}

// NewReplay wires src → eng → sink, installing sink on the engine. A nil
// sink keeps the sink already installed on the engine, if any, and otherwise
// installs a CountingSink so the engine never materialises event slices
// during replay — and, because CountingSink declares it does not retain
// Event.Set (core.SetRetainer), the engine also skips the per-event set
// clone, keeping steady-state replay allocation-free.
func NewReplay(src UpdateSource, eng *core.Engine, sink core.EventSink) *Replay {
	if sink == nil {
		if sink = eng.Sink(); sink == nil {
			sink = &core.CountingSink{}
		}
	}
	eng.SetSink(sink)
	return &Replay{
		src:         src,
		eng:         eng,
		sink:        sink,
		startEvents: eng.Stats().Events,
	}
}

// SetBoundaryHook installs fn to run between driver batches in Run and
// RunBatches — the quiescent points where every handed-out update has been
// processed. Hooks are how periodic checkpointing and signal-aware stops
// plug into the drivers: a non-nil error aborts the run and is returned to
// the caller (return ErrStopped for a clean stop; the driver's statistics
// remain valid either way).
func (r *Replay) SetBoundaryHook(fn func() error) { r.hook = fn }

// Engine returns the driven engine.
func (r *Replay) Engine() *core.Engine { return r.eng }

// Sink returns the installed sink.
func (r *Replay) Sink() core.EventSink { return r.sink }

// Done reports whether the source has been exhausted.
func (r *Replay) Done() bool { return r.done }

// Stats returns the statistics accumulated so far.
func (r *Replay) Stats() ReplayStats {
	s := r.stats
	s.Events = r.eng.Stats().Events - r.startEvents
	if ir, ok := r.src.(ingestReporter); ok {
		is := ir.IngestStats()
		s.Ingest = &is
	}
	return s
}

// Batch pulls up to n updates from the source and processes them, returning
// the number processed. It returns io.EOF (possibly alongside a non-zero
// count) once the source is exhausted, and any source error verbatim.
//
// The batch is staged in memory before processing so that the latency
// statistics measure engine cost only, not source I/O or parsing.
func (r *Replay) Batch(n int) (int, error) {
	if r.done {
		return 0, io.EOF
	}
	if n <= 0 {
		return 0, fmt.Errorf("stream: batch size must be positive, got %d", n)
	}
	r.buf = r.buf[:0]
	var srcErr error
	for len(r.buf) < n {
		u, err := r.src.Next()
		if err != nil {
			srcErr = err
			break
		}
		r.buf = append(r.buf, u)
	}
	processed := len(r.buf)
	start := time.Now()
	for _, u := range r.buf {
		r.eng.Process(u)
	}
	elapsed := time.Since(start)
	if processed > 0 {
		r.stats.Updates += processed
		r.stats.Ticks += processed // one engine boundary per Process call
		r.stats.Batches++
		r.stats.Elapsed += elapsed
		if r.stats.MinBatchLatency == 0 || elapsed < r.stats.MinBatchLatency {
			r.stats.MinBatchLatency = elapsed
		}
		if elapsed > r.stats.MaxBatchLatency {
			r.stats.MaxBatchLatency = elapsed
		}
	}
	if srcErr != nil {
		if errors.Is(srcErr, io.EOF) {
			r.done = true
			return processed, io.EOF
		}
		return processed, srcErr
	}
	return processed, nil
}

// Run drains the source in batches of batchSize and returns the final
// statistics. A source error other than io.EOF aborts the run and is
// returned with the statistics accumulated so far.
func (r *Replay) Run(batchSize int) (ReplayStats, error) {
	for {
		_, err := r.Batch(batchSize)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return r.Stats(), nil
			}
			return r.Stats(), err
		}
		if r.hook != nil {
			if err := r.hook(); err != nil {
				return r.Stats(), err
			}
		}
	}
}

// RunBatches drains the source batch by batch — the source's own batches when
// it implements BatchSource (the aggregator's epoch bursts and per-document
// deltas, a marker-delimited file), fixed chunks of readBatch updates
// otherwise — and returns the final statistics, with the decay/other segment
// split populated from batch provenance.
//
// With coalesce true each batch goes through Engine.ProcessBatch: one logical
// tick, net events at the batch boundary. With coalesce false the batch's
// updates are processed one Process call at a time but timed as a group,
// which is the apples-to-apples sequential baseline for the batched mode (the
// same grouping, the same timer granularity, per-update semantics).
//
// Threshold batch units — rescaled-decay epochs — are inherently atomic: they
// go through Engine.ProcessThresholdBatch as one tick in both modes, so a
// rescaled stream replays under either coalesce setting (the setting then
// only governs document batches).
func (r *Replay) RunBatches(readBatch int, coalesce bool) (ReplayStats, error) {
	if r.done {
		return r.Stats(), nil
	}
	bs := AsBatchSource(r.src, readBatch)
	for {
		b, err := bs.NextBatch()
		if err != nil {
			r.done = errors.Is(err, io.EOF)
			if r.done {
				return r.Stats(), nil
			}
			return r.Stats(), err
		}
		start := time.Now()
		switch {
		case b.Threshold != nil:
			// Validate at the stream seam: a recovered WAL could in principle
			// hand the engine a corrupt scale, and the engine treats a bad
			// scale as a caller invariant violation (panic), not stream data.
			if err := ValidateThresholdScale(b.Threshold.Scale); err != nil {
				return r.Stats(), err
			}
			r.eng.ProcessThresholdBatch(b.Threshold.Scale, b.Updates)
		case coalesce:
			r.eng.ProcessBatch(b.Updates)
		default:
			for _, u := range b.Updates {
				r.eng.Process(u)
			}
		}
		elapsed := time.Since(start)
		r.stats.Updates += len(b.Updates)
		if coalesce || b.Threshold != nil {
			r.stats.Ticks++ // empty batches are still boundary ticks
		} else {
			r.stats.Ticks += len(b.Updates)
		}
		r.stats.Elapsed += elapsed
		seg := &r.stats.OtherSeg
		if b.Decay {
			seg = &r.stats.DecaySeg
		}
		seg.Updates += len(b.Updates)
		seg.Elapsed += elapsed
		if len(b.Updates) > 0 || b.Threshold != nil {
			// Batches counts batches that processed at least one update, like
			// the sequential driver; empty no-op ticks would skew per-batch
			// throughput derived from the stats. Threshold units count even
			// when they carry no cancellations: the threshold walk is real
			// engine work and is what the decay segment measures in rescaled
			// mode.
			r.stats.Batches++
			seg.Batches++
			if r.stats.MinBatchLatency == 0 || elapsed < r.stats.MinBatchLatency {
				r.stats.MinBatchLatency = elapsed
			}
			if elapsed > r.stats.MaxBatchLatency {
				r.stats.MaxBatchLatency = elapsed
			}
		}
		if r.hook != nil {
			if err := r.hook(); err != nil {
				return r.Stats(), err
			}
		}
	}
}
