package stream

import (
	"fmt"
	"io"
	"math/rand"

	"dyndens/internal/graph"
)

// SynthConfig configures the seeded synthetic workload generator.
type SynthConfig struct {
	// Vertices is the size of the vertex universe [0, Vertices); must be ≥ 2.
	Vertices int
	// Updates caps the stream length; 0 means unbounded (the source never
	// returns io.EOF — wrap with NewLimitSource or drive it through a bounded
	// Replay).
	Updates int
	// Seed seeds the generator; equal configs with equal seeds produce
	// identical streams.
	Seed int64
	// Skew is the Zipf exponent for endpoint selection. Values > 1 make low
	// vertex identifiers proportionally hotter, concentrating weight the way
	// entity popularity does in the paper's news streams; values ≤ 1 select
	// endpoints uniformly.
	Skew float64
	// NegativeFraction is the probability in [0, 1) that an update has a
	// negative delta (a decaying association).
	NegativeFraction float64
	// MeanDelta scales update magnitudes: |δ| is exponentially distributed
	// with this mean. Defaults to 1.
	MeanDelta float64
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.MeanDelta <= 0 {
		c.MeanDelta = 1
	}
	return c
}

// Validate reports configuration errors.
func (c SynthConfig) Validate() error {
	if c.Vertices < 2 {
		return fmt.Errorf("stream: synthetic generator needs ≥ 2 vertices, got %d", c.Vertices)
	}
	if c.NegativeFraction < 0 || c.NegativeFraction >= 1 {
		return fmt.Errorf("stream: negative fraction %v outside [0, 1)", c.NegativeFraction)
	}
	return nil
}

// SyntheticSource generates a reproducible random update stream.
type SyntheticSource struct {
	cfg     SynthConfig
	rng     *rand.Rand
	zipf    *rand.Zipf
	emitted int
}

// NewSynthetic builds a generator from cfg. It returns an error for invalid
// configurations.
func NewSynthetic(cfg SynthConfig) (*SyntheticSource, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &SyntheticSource{cfg: cfg, rng: rng}
	if cfg.Skew > 1 {
		s.zipf = rand.NewZipf(rng, cfg.Skew, 1, uint64(cfg.Vertices-1))
	}
	return s, nil
}

// MustSynthetic is NewSynthetic that panics on error; for tests and
// benchmarks with known-good configurations.
func MustSynthetic(cfg SynthConfig) *SyntheticSource {
	s, err := NewSynthetic(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Next implements UpdateSource.
func (s *SyntheticSource) Next() (Update, error) {
	if s.cfg.Updates > 0 && s.emitted >= s.cfg.Updates {
		return Update{}, io.EOF
	}
	s.emitted++
	a := s.pickVertex()
	b := s.pickVertex()
	for b == a {
		b = s.pickVertex()
	}
	delta := s.rng.ExpFloat64() * s.cfg.MeanDelta
	if delta < 1e-6 {
		delta = 1e-6
	}
	if s.cfg.NegativeFraction > 0 && s.rng.Float64() < s.cfg.NegativeFraction {
		delta = -delta
	}
	return Update{A: a, B: b, Delta: delta}, nil
}

func (s *SyntheticSource) pickVertex() graph.Vertex {
	if s.zipf != nil {
		return graph.Vertex(s.zipf.Uint64())
	}
	return graph.Vertex(s.rng.Intn(s.cfg.Vertices))
}
