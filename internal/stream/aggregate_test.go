package stream

import (
	"errors"
	"io"
	"math"
	"slices"
	"strings"
	"testing"

	"dyndens/internal/core"
	"dyndens/internal/graph"
	"dyndens/internal/vset"
)

// docs builds a document from a timestamp and mentions.
func doc(time int64, entities ...vset.Vertex) Document {
	return Document{Time: time, Entities: vset.New(entities...)}
}

// TestAggregatorEmitsPairDeltas checks the basic co-occurrence expansion: a
// document with k entities yields k(k-1)/2 positive updates in sorted order.
func TestAggregatorEmitsPairDeltas(t *testing.T) {
	agg := MustAggregator(NewSliceDocSource([]Document{doc(0, 3, 1, 2)}),
		AggregatorConfig{EpochLength: 10, DocWeight: 2})
	got, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	want := []Update{
		{A: 1, B: 2, Delta: 2},
		{A: 1, B: 3, Delta: 2},
		{A: 2, B: 3, Delta: 2},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d updates, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("update %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	st := agg.Stats()
	if st.Docs != 1 || st.PairUpdates != 3 || st.DecayUpdates != 0 || st.TrackedPairs != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAggregatorFadesOnEpochTick pins the fading schedule: crossing an epoch
// boundary emits negative deltas that take every tracked pair to
// weight·Decay^elapsed, multiple elapsed epochs compound, and documents with
// fewer than two entities still advance time.
func TestAggregatorFadesOnEpochTick(t *testing.T) {
	src := NewSliceDocSource([]Document{
		doc(0, 1, 2),
		doc(9, 1, 2),  // same epoch: weight accumulates to 2
		doc(10, 3, 4), // epoch 1: {1,2} fades to 1
		doc(35, 5),    // epoch 3: two elapsed epochs compound on {1,2} and {3,4}
	})
	agg := MustAggregator(src, AggregatorConfig{EpochLength: 10, Decay: 0.5, PruneBelow: -1})
	got, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	want := []Update{
		{A: 1, B: 2, Delta: 1},
		{A: 1, B: 2, Delta: 1},
		{A: 1, B: 2, Delta: -1}, // 2 → 1
		{A: 3, B: 4, Delta: 1},
		{A: 1, B: 2, Delta: -0.75}, // 1 → 0.25 (two epochs)
		{A: 3, B: 4, Delta: -0.75}, // 1 → 0.25
	}
	if len(got) != len(want) {
		t.Fatalf("got %d updates %+v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i].A != want[i].A || got[i].B != want[i].B || math.Abs(got[i].Delta-want[i].Delta) > 1e-12 {
			t.Errorf("update %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	st := agg.Stats()
	if st.Epochs != 3 || st.DecayUpdates != 3 || st.Retired != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if w := agg.Weight(2, 1); math.Abs(w-0.25) > 1e-12 {
		t.Fatalf("Weight(2,1) = %v, want 0.25", w)
	}
}

// TestAggregatorPrunesStalePairs checks that a pair falling below PruneBelow
// is cancelled exactly (its deltas sum to zero) and dropped from the state.
func TestAggregatorPrunesStalePairs(t *testing.T) {
	src := NewSliceDocSource([]Document{
		doc(0, 1, 2),
		doc(50, 3), // 5 epochs: 1·0.5⁵ = 0.03125 < 0.1 → retire
	})
	agg := MustAggregator(src, AggregatorConfig{EpochLength: 10, Decay: 0.5, PruneBelow: 0.1})
	got, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, u := range got {
		if u.A != 1 || u.B != 2 {
			t.Fatalf("unexpected pair in %+v", u)
		}
		sum += u.Delta
	}
	if sum != 0 {
		t.Fatalf("retired pair's deltas sum to %v, want exactly 0", sum)
	}
	st := agg.Stats()
	if st.Retired != 1 || st.TrackedPairs != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAggregatorRejectsTimeRegression pins the monotone-time requirement.
func TestAggregatorRejectsTimeRegression(t *testing.T) {
	src := NewSliceDocSource([]Document{doc(10, 1, 2), doc(5, 3, 4)})
	agg := MustAggregator(src, AggregatorConfig{EpochLength: 10})
	if _, err := Drain(agg); err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Fatalf("Drain = %v, want time-regression error", err)
	}
}

// TestAggregatorMirrorsEngineGraph is the key pipeline invariant: after
// replaying the aggregated stream, the engine graph's edge weights equal the
// aggregator's tracked weights exactly (the engine applies every delta the
// aggregator emits and nothing else, so the mirror never drifts and decay
// deltas are never clamped).
func TestAggregatorMirrorsEngineGraph(t *testing.T) {
	gen := MustDocSynthetic(DocSynthConfig{
		BackgroundEntities: 30,
		Stories:            2,
		StorySize:          4,
		Docs:               400,
		Seed:               11,
	})
	agg := MustAggregator(gen, AggregatorConfig{EpochLength: 40, Decay: 0.5, PruneBelow: 0.05})
	eng := core.MustNew(core.Config{T: 3, Nmax: 5})
	if _, err := NewReplay(agg, eng, nil).Run(64); err != nil {
		t.Fatal(err)
	}
	st := agg.Stats()
	if st.Docs != 400 || st.PairUpdates == 0 || st.DecayUpdates == 0 || st.Retired == 0 {
		t.Fatalf("workload too weak to validate the mirror: %+v", st)
	}
	checked := 0
	for a := graph.Vertex(0); a < 40; a++ {
		for b := a + 1; b < 40; b++ {
			if got, want := eng.Graph().Weight(a, b), agg.Weight(a, b); math.Abs(got-want) > 1e-9 {
				t.Fatalf("edge {%d,%d}: engine weight %v, aggregator %v", a, b, got, want)
			} else if want != 0 {
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no tracked pairs in the checked vertex range")
	}
}

// TestAggregatorDeterministic replays one document stream twice and requires
// identical update streams.
func TestAggregatorDeterministic(t *testing.T) {
	cfg := DocSynthConfig{BackgroundEntities: 20, Stories: 1, StorySize: 3, Docs: 150, Seed: 3}
	aggCfg := AggregatorConfig{EpochLength: 25, Decay: 0.5}
	a, err := Drain(MustAggregator(MustDocSynthetic(cfg), aggCfg))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Drain(MustAggregator(MustDocSynthetic(cfg), aggCfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("stream lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestAggregatorValidation(t *testing.T) {
	src := NewSliceDocSource(nil)
	bad := []AggregatorConfig{
		{EpochLength: 0},
		{EpochLength: 10, Decay: 1.5},
		{EpochLength: 10, Decay: -0.5},
		{EpochLength: 10, DocWeight: -1},
		{EpochLength: 10, DocWeight: math.Inf(1)},
	}
	for i, cfg := range bad {
		if _, err := NewAggregator(src, cfg); err == nil {
			t.Errorf("config %d (%+v) accepted, want error", i, cfg)
		}
	}
}

// TestAggregatorNextBatchGroups pins the aggregator's natural batch
// structure: each epoch tick's decay burst is one Decay batch, each
// document's positive co-occurrence deltas another, and the concatenation of
// all batches equals the per-update Next stream exactly.
func TestAggregatorNextBatchGroups(t *testing.T) {
	docs := []Document{
		{Time: 0, Entities: []vset.Vertex{1, 2, 3}},
		{Time: 10, Entities: []vset.Vertex{1, 2}},
		{Time: 60, Entities: []vset.Vertex{2, 3, 4}}, // crosses an epoch boundary: decay burst first
		{Time: 70, Entities: []vset.Vertex{9}},       // single entity: no pairs, no batch
		{Time: 130, Entities: []vset.Vertex{1, 4}},   // another boundary
	}
	cfg := AggregatorConfig{EpochLength: 50, Decay: 0.5, PruneBelow: -1}

	batched := MustAggregator(NewSliceDocSource(docs), cfg)
	var batches []Batch
	var flat []Update
	for {
		b, err := batched.NextBatch()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatal(err)
			}
			break
		}
		cp := Batch{Updates: append([]Update(nil), b.Updates...), Decay: b.Decay}
		batches = append(batches, cp)
		flat = append(flat, cp.Updates...)
	}

	sequential := MustAggregator(NewSliceDocSource(docs), cfg)
	want, err := Drain(sequential)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(flat, want) {
		t.Fatalf("batched stream %v != sequential %v", flat, want)
	}

	// Shape: doc0 pairs, doc1 pairs, decay burst, doc2 pairs, decay burst,
	// doc4 pairs (the pairless doc contributes no batch).
	wantShape := []struct {
		decay bool
		n     int
	}{
		{false, 3}, // {1,2,3}: 3 pairs
		{false, 1}, // {1,2}
		{true, 3},  // fade of the 3 tracked pairs
		{false, 3}, // {2,3,4}
		{true, 5},  // fade of all 5 tracked pairs (one elapsed epoch)
		{false, 1}, // {1,4}
	}
	if len(batches) != len(wantShape) {
		t.Fatalf("got %d batches, want %d: %+v", len(batches), len(wantShape), batches)
	}
	for i, w := range wantShape {
		if batches[i].Decay != w.decay || len(batches[i].Updates) != w.n {
			t.Errorf("batch %d: decay=%v n=%d, want decay=%v n=%d",
				i, batches[i].Decay, len(batches[i].Updates), w.decay, w.n)
		}
	}
	for _, b := range batches {
		for _, u := range b.Updates {
			if b.Decay && u.Delta >= 0 {
				t.Errorf("decay batch carries non-negative delta %+v", u)
			}
			if !b.Decay && u.Delta <= 0 {
				t.Errorf("document batch carries non-positive delta %+v", u)
			}
		}
	}
}
