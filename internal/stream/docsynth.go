package stream

import (
	"fmt"
	"io"
	"math/rand"

	"dyndens/internal/vset"
)

// DocSynthConfig configures the seeded synthetic document generator: a
// stream of entity-mention documents with a small number of planted stories
// (tight entity groups repeatedly co-mentioned over an activity window)
// buried in Zipf-distributed background chatter. It is the document-level
// counterpart of SynthConfig and the workload behind `dyndens stories`: a
// correct documents→updates→engine→story pipeline must recover exactly the
// planted groups as dense subgraphs while their stories are active.
type DocSynthConfig struct {
	// BackgroundEntities is the size of the background entity universe
	// [0, BackgroundEntities); must be ≥ 2.
	BackgroundEntities int
	// Stories is the number of planted stories. Story s owns the dedicated
	// entity range [BackgroundEntities + s·StorySize, BackgroundEntities +
	// (s+1)·StorySize), disjoint from the background and from other stories,
	// so recovery checks are unambiguous.
	Stories int
	// StorySize is the number of entities per planted story; must be ≥ 2 when
	// Stories > 0.
	StorySize int
	// Docs is the number of documents to generate; must be ≥ 1.
	Docs int
	// Seed seeds the generator; equal configs with equal seeds produce
	// identical streams.
	Seed int64
	// StoryFraction is the probability in [0, 1] that a document covers one
	// of the currently active planted stories. Defaults to 0.5; a negative
	// value requests probability 0.
	StoryFraction float64
	// StoryMentions is how many of a story's entities one story document
	// mentions. Defaults to min(3, StorySize).
	StoryMentions int
	// BackgroundMentions is how many entities a background document mentions.
	// Defaults to 3.
	BackgroundMentions int
	// BackgroundSkew is the Zipf exponent for background entity popularity;
	// values ≤ 1 select uniformly. Defaults to 1.5.
	BackgroundSkew float64
	// NoiseMentionProb is the probability that a story document additionally
	// mentions one background entity (bridging noise). Defaults to 0.25; a
	// negative value requests probability 0.
	NoiseMentionProb float64
	// StoryLifetime is each story's activity window as a fraction of the
	// stream in (0, 1]; windows are staggered evenly so stories are born and
	// fade at different points. Defaults to 0.6.
	StoryLifetime float64
	// TimePerDoc is the timestamp increment per document (document i has
	// Time = i·TimePerDoc). Defaults to 1; together with the Aggregator's
	// EpochLength it determines how many documents fall into one fading
	// epoch.
	TimePerDoc int64
}

// withDefaults fills zero fields; a negative StoryFraction or
// NoiseMentionProb explicitly requests probability 0 (the zero value means
// "default").
func (c DocSynthConfig) withDefaults() DocSynthConfig {
	if c.StoryFraction == 0 {
		c.StoryFraction = 0.5
	} else if c.StoryFraction < 0 {
		c.StoryFraction = 0
	}
	switch {
	case c.NoiseMentionProb == 0:
		c.NoiseMentionProb = 0.25
	case c.NoiseMentionProb < 0:
		c.NoiseMentionProb = 0
	}
	if c.StoryMentions == 0 {
		c.StoryMentions = 3
		if c.StorySize > 0 && c.StorySize < 3 {
			c.StoryMentions = c.StorySize
		}
	}
	if c.BackgroundMentions == 0 {
		c.BackgroundMentions = 3
	}
	if c.BackgroundSkew == 0 {
		c.BackgroundSkew = 1.5
	}
	if c.StoryLifetime == 0 {
		c.StoryLifetime = 0.6
	}
	if c.TimePerDoc == 0 {
		c.TimePerDoc = 1
	}
	return c
}

// Validate reports configuration errors.
func (c DocSynthConfig) Validate() error {
	switch {
	case c.BackgroundEntities < 2:
		return fmt.Errorf("stream: document generator needs ≥ 2 background entities, got %d", c.BackgroundEntities)
	case c.Stories < 0:
		return fmt.Errorf("stream: negative story count %d", c.Stories)
	case c.Stories > 0 && c.StorySize < 2:
		return fmt.Errorf("stream: planted stories need ≥ 2 entities, got %d", c.StorySize)
	case c.Docs < 1:
		return fmt.Errorf("stream: document count must be ≥ 1, got %d", c.Docs)
	case c.StoryFraction < 0 || c.StoryFraction > 1:
		return fmt.Errorf("stream: story fraction %v outside [0, 1]", c.StoryFraction)
	case c.Stories > 0 && (c.StoryMentions < 2 || c.StoryMentions > c.StorySize):
		return fmt.Errorf("stream: story mentions %d outside [2, %d]", c.StoryMentions, c.StorySize)
	case c.BackgroundMentions < 2:
		return fmt.Errorf("stream: background mentions %d < 2", c.BackgroundMentions)
	case c.BackgroundMentions > c.BackgroundEntities:
		return fmt.Errorf("stream: background mentions %d exceed universe %d", c.BackgroundMentions, c.BackgroundEntities)
	case c.NoiseMentionProb < 0 || c.NoiseMentionProb > 1:
		return fmt.Errorf("stream: noise mention probability %v outside [0, 1]", c.NoiseMentionProb)
	case c.StoryLifetime <= 0 || c.StoryLifetime > 1:
		return fmt.Errorf("stream: story lifetime %v outside (0, 1]", c.StoryLifetime)
	case c.TimePerDoc < 1:
		return fmt.Errorf("stream: time per document must be ≥ 1, got %d", c.TimePerDoc)
	}
	return nil
}

// PlantedStory is the ground truth for one planted story: its entity set and
// the document-index window [Start, End) during which it is active.
type PlantedStory struct {
	Entities   vset.Set
	Start, End int
}

// DocSynthetic generates a reproducible random document stream with planted
// stories. It implements DocumentSource.
type DocSynthetic struct {
	cfg     DocSynthConfig
	rng     *rand.Rand
	zipf    *rand.Zipf
	planted []PlantedStory
	emitted int
}

// NewDocSynthetic builds a generator from cfg. It returns an error for
// invalid configurations.
func NewDocSynthetic(cfg DocSynthConfig) (*DocSynthetic, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &DocSynthetic{cfg: cfg, rng: rng}
	if cfg.BackgroundSkew > 1 {
		g.zipf = rand.NewZipf(rng, cfg.BackgroundSkew, 1, uint64(cfg.BackgroundEntities-1))
	}
	g.plantStories()
	return g, nil
}

// MustDocSynthetic is NewDocSynthetic that panics on error; for tests and
// benchmarks with known-good configurations.
func MustDocSynthetic(cfg DocSynthConfig) *DocSynthetic {
	g, err := NewDocSynthetic(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// plantStories fixes each story's entity range and activity window. Windows
// all have the same length (StoryLifetime · Docs, at least 1 document) and
// their starts are spread evenly across the remaining stream, so consecutive
// stories overlap in time but are born and fade at distinct points.
func (g *DocSynthetic) plantStories() {
	c := g.cfg
	life := int(c.StoryLifetime * float64(c.Docs))
	if life < 1 {
		life = 1
	}
	for s := 0; s < c.Stories; s++ {
		start := 0
		if c.Stories > 1 {
			start = s * (c.Docs - life) / (c.Stories - 1)
		}
		base := vset.Vertex(c.BackgroundEntities + s*c.StorySize)
		entities := make([]vset.Vertex, c.StorySize)
		for i := range entities {
			entities[i] = base + vset.Vertex(i)
		}
		g.planted = append(g.planted, PlantedStory{
			Entities: vset.FromSorted(entities),
			Start:    start,
			End:      start + life,
		})
	}
}

// PlantedStories returns the ground-truth planted stories (entity sets and
// activity windows). The returned slice is shared; do not mutate it.
func (g *DocSynthetic) PlantedStories() []PlantedStory { return g.planted }

// Config returns the effective configuration (with defaults applied).
func (g *DocSynthetic) Config() DocSynthConfig { return g.cfg }

// Next implements DocumentSource.
func (g *DocSynthetic) Next() (Document, error) {
	if g.emitted >= g.cfg.Docs {
		return Document{}, io.EOF
	}
	i := g.emitted
	g.emitted++
	doc := Document{Time: int64(i) * g.cfg.TimePerDoc}

	// Story documents: a story is drawn first and falls back to background
	// chatter when it is outside its activity window, so each story's
	// document rate (StoryFraction/Stories while active) does not depend on
	// how many other stories happen to be active — which is what keeps every
	// story's co-occurrence weights in the same band for a fixed threshold.
	if g.cfg.Stories > 0 && g.rng.Float64() < g.cfg.StoryFraction {
		if p := g.planted[g.rng.Intn(g.cfg.Stories)]; p.Start <= i && i < p.End {
			mentions := make([]vset.Vertex, 0, g.cfg.StoryMentions+1)
			for _, j := range g.rng.Perm(len(p.Entities))[:g.cfg.StoryMentions] {
				mentions = append(mentions, p.Entities[j])
			}
			if g.rng.Float64() < g.cfg.NoiseMentionProb {
				mentions = append(mentions, g.pickBackground())
			}
			doc.Entities = vset.New(mentions...)
			return doc, nil
		}
	}

	mentions := make([]vset.Vertex, 0, g.cfg.BackgroundMentions)
	seen := vset.Set(nil)
	for len(mentions) < g.cfg.BackgroundMentions {
		e := g.pickBackground()
		if seen.Contains(e) {
			continue
		}
		seen = seen.Add(e)
		mentions = append(mentions, e)
	}
	doc.Entities = vset.New(mentions...)
	return doc, nil
}

func (g *DocSynthetic) pickBackground() vset.Vertex {
	if g.zipf != nil {
		return vset.Vertex(g.zipf.Uint64())
	}
	return vset.Vertex(g.rng.Intn(g.cfg.BackgroundEntities))
}
