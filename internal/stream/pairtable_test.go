package stream

import (
	"math/rand"
	"testing"
)

// TestPairTableMatchesMap drives randomized add/put/del/get traffic through
// the open-addressing table and a reference map in lockstep: contents must
// agree after every operation batch, across growth and tombstone compaction.
func TestPairTableMatchesMap(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := newPairTable()
		ref := map[pairKey]float64{}
		keyAt := func() pairKey {
			a := int32(rng.Intn(700))
			b := a + 1 + int32(rng.Intn(700))
			return makePairKey(a, b)
		}
		for op := 0; op < 60000; op++ {
			k := keyAt()
			switch r := rng.Float64(); {
			case r < 0.55:
				delta := rng.NormFloat64()
				got, existed := tab.add(k, delta)
				_, wantExisted := ref[k]
				ref[k] += delta
				if existed != wantExisted || got != ref[k] {
					t.Fatalf("seed %d op %d: add(%x) = (%v, %v), want (%v, %v)", seed, op, k, got, existed, ref[k], wantExisted)
				}
			case r < 0.70:
				v := rng.NormFloat64()
				tab.put(k, v)
				ref[k] = v
			case r < 0.90:
				got := tab.del(k)
				_, want := ref[k]
				delete(ref, k)
				if got != want {
					t.Fatalf("seed %d op %d: del(%x) = %v, want %v", seed, op, k, got, want)
				}
			default:
				got, ok := tab.get(k)
				want, wantOk := ref[k]
				if ok != wantOk || got != want {
					t.Fatalf("seed %d op %d: get(%x) = (%v, %v), want (%v, %v)", seed, op, k, got, ok, want, wantOk)
				}
			}
			if tab.len() != len(ref) {
				t.Fatalf("seed %d op %d: len = %d, want %d", seed, op, tab.len(), len(ref))
			}
		}
		// Full-content check via appendKeys: every live key, each exactly once,
		// values matching.
		keys := tab.appendKeys(nil)
		if len(keys) != len(ref) {
			t.Fatalf("seed %d: appendKeys yielded %d keys, want %d", seed, len(keys), len(ref))
		}
		seen := map[pairKey]bool{}
		for _, k := range keys {
			if seen[k] {
				t.Fatalf("seed %d: appendKeys repeated key %x", seed, k)
			}
			seen[k] = true
			got, ok := tab.get(k)
			if want, wantOk := ref[k], true; !ok || got != want || !wantOk {
				t.Fatalf("seed %d: key %x = (%v, %v), want (%v, true)", seed, k, got, ok, want)
			}
		}
	}
}

// TestPairTableTombstoneCompaction pins that heavy delete/re-insert churn at
// a fixed live size neither loses entries nor lets the table grow without
// bound (tombstone compaction keeps capacity proportional to the live count).
func TestPairTableTombstoneCompaction(t *testing.T) {
	tab := newPairTable()
	const live = 300
	for i := int32(0); i < live; i++ {
		tab.put(makePairKey(i, i+1000), float64(i))
	}
	for round := 0; round < 200; round++ {
		for i := int32(0); i < live; i++ {
			if !tab.del(makePairKey(i, i+1000)) {
				t.Fatalf("round %d: key %d missing before delete", round, i)
			}
			tab.put(makePairKey(i, i+1000), float64(round))
		}
	}
	if tab.len() != live {
		t.Fatalf("len = %d, want %d", tab.len(), live)
	}
	if cap := len(tab.keys); cap > 16*live {
		t.Fatalf("capacity %d grew unboundedly for %d live entries", cap, live)
	}
}

// TestPairTableSteadyStateZeroAlloc is the hot-path pin: once warm, the
// probe/insert/delete cycle allocates nothing (the whole point of replacing
// the runtime map).
func TestPairTableSteadyStateZeroAlloc(t *testing.T) {
	tab := newPairTable()
	for i := int32(0); i < 100; i++ {
		tab.put(makePairKey(i, i+500), 1)
	}
	i := int32(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		k := makePairKey(i%100, i%100+500)
		tab.add(k, 0.5)
		tab.get(k)
		extra := makePairKey(200+i%50, 400+i%50)
		tab.add(extra, 1)
		tab.del(extra)
		i++
	}); allocs != 0 {
		t.Fatalf("steady-state table ops allocated %.1f allocs/op, want 0", allocs)
	}
}
