// Conformance suite for the pipelined ingestion front-end: the evidence that
// stage decoupling and parallel expansion change when work happens, never
// what is emitted. Every test compares the pipeline's batch stream — updates,
// Decay flags, ThresholdUpdate units, group order — value-by-value against
// the serial reference, across worker counts, decay modes, document sources
// (in-memory and raw-line file), shard counts, and error positions.
package stream

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"dyndens/internal/core"
	"dyndens/internal/shard"
	"dyndens/internal/story"
	"dyndens/internal/vset"
)

// recordedBatch is one batch captured for deep comparison, with updates and
// threshold units copied out of the source's reused backing stores.
type recordedBatch struct {
	updates   []Update
	decay     bool
	threshold *ThresholdUpdate
}

// recordBatches drains bs, cloning every batch; the terminal error (io.EOF on
// clean streams) is returned alongside the batches read before it.
func recordBatches(bs BatchSource) ([]recordedBatch, error) {
	var out []recordedBatch
	for {
		b, err := bs.NextBatch()
		if err != nil {
			return out, err
		}
		rb := recordedBatch{updates: append([]Update(nil), b.Updates...), decay: b.Decay}
		if b.Threshold != nil {
			thr := *b.Threshold
			rb.threshold = &thr
		}
		out = append(out, rb)
	}
}

// requireSameBatches compares two recorded streams value-by-value (updates
// bit-exact: the pipeline runs the same float operations in the same order).
func requireSameBatches(t *testing.T, label string, got, want []recordedBatch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d batches, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.decay != w.decay {
			t.Fatalf("%s: batch %d decay=%v, want %v", label, i, g.decay, w.decay)
		}
		switch {
		case (g.threshold == nil) != (w.threshold == nil):
			t.Fatalf("%s: batch %d threshold presence %v, want %v", label, i, g.threshold != nil, w.threshold != nil)
		case g.threshold != nil && *g.threshold != *w.threshold:
			t.Fatalf("%s: batch %d threshold %+v, want %+v", label, i, *g.threshold, *w.threshold)
		}
		if len(g.updates) != len(w.updates) {
			t.Fatalf("%s: batch %d has %d updates, want %d", label, i, len(g.updates), len(w.updates))
		}
		for j := range w.updates {
			if g.updates[j] != w.updates[j] {
				t.Fatalf("%s: batch %d update %d = %+v, want %+v", label, i, j, g.updates[j], w.updates[j])
			}
		}
	}
}

// pipelineConfDocs is the conformance workload: randomized document sizes
// (including single-entity documents that only advance time), duplicate
// mentions, single- and multi-epoch jumps — everything that exercises epoch
// ticks, retirement, and re-keying.
func pipelineConfDocs(seed int64, n int) []Document {
	rng := rand.New(rand.NewSource(seed))
	docs := make([]Document, 0, n)
	now := int64(0)
	for i := 0; i < n; i++ {
		switch r := rng.Float64(); {
		case r < 0.30:
			now += 10
		case r < 0.38:
			now += 10 * int64(2+rng.Intn(4))
		}
		m := 1 + rng.Intn(6)
		ents := make([]vset.Vertex, 0, m)
		for j := 0; j < m; j++ {
			ents = append(ents, vset.Vertex(rng.Intn(25)))
		}
		docs = append(docs, Document{Time: now, Entities: vset.New(ents...)})
	}
	return docs
}

// serialBatches records the reference stream of the serial aggregator.
func serialBatches(t *testing.T, docs []Document, cfg AggregatorConfig) []recordedBatch {
	t.Helper()
	ref, err := recordBatches(MustAggregator(NewSliceDocSource(docs), cfg))
	if !errors.Is(err, io.EOF) {
		t.Fatalf("serial reference failed: %v", err)
	}
	return ref
}

// docsToFileSource writes docs in the recorded-document format and reopens
// them as a DocFileSource, exercising the raw-line path (workers parse).
func docsToFileSource(t *testing.T, docs []Document) *DocFileSource {
	t.Helper()
	var b strings.Builder
	if _, err := WriteDocuments(&b, docs); err != nil {
		t.Fatal(err)
	}
	return NewDocReaderSource("conf-docs", strings.NewReader(b.String()))
}

// TestParallelAggregatorMatchesSerial is the core conformance matrix:
// W ∈ {1, 2, 4} × {exact, rescale} × {in-memory source, raw-line file
// source}, batch streams deep-equal to the serial aggregator, and the final
// aggregation counters identical.
func TestParallelAggregatorMatchesSerial(t *testing.T) {
	docs := pipelineConfDocs(11, 500)
	for _, mode := range []DecayMode{DecayExact, DecayRescale} {
		cfg := AggregatorConfig{EpochLength: 10, Decay: 0.5, PruneBelow: 0.05, DecayMode: mode}
		ref := serialBatches(t, docs, cfg)
		refAgg := MustAggregator(NewSliceDocSource(docs), cfg)
		for {
			if _, err := refAgg.NextBatch(); err != nil {
				break
			}
		}
		refStats := refAgg.Stats()
		if mode == DecayRescale && refStats.ThresholdUpdates == 0 {
			t.Fatal("rescaled reference emitted no threshold units; fixture too weak")
		}
		if refStats.Retired == 0 {
			t.Fatal("workload retired no pairs; fixture too weak")
		}
		for _, workers := range []int{1, 2, 4} {
			for _, src := range []string{"slice", "file"} {
				label := fmt.Sprintf("mode=%v W=%d src=%s", mode, workers, src)
				var ds DocumentSource = NewSliceDocSource(docs)
				if src == "file" {
					ds = docsToFileSource(t, docs)
				}
				p, err := NewParallelAggregator(ds, cfg, PipelineConfig{Workers: workers, Depth: 4})
				if err != nil {
					t.Fatal(err)
				}
				got, gerr := recordBatches(p)
				if !errors.Is(gerr, io.EOF) {
					t.Fatalf("%s: pipeline failed: %v", label, gerr)
				}
				requireSameBatches(t, label, got, ref)
				if st, ok := p.AggregatorStats(); !ok || st != refStats {
					t.Fatalf("%s: aggregator stats = %+v (ok=%v), want %+v", label, st, ok, refStats)
				}
				is := p.IngestStats()
				if is.Batches != len(ref) {
					t.Fatalf("%s: ingest stats counted %d batches, want %d", label, is.Batches, len(ref))
				}
				p.Close()
			}
		}
	}
}

// TestParallelAggregatorRenormConformance pins the rarest epoch path: a decay
// factor small enough that λ underflows renormBelow forces renormalization
// passes mid-stream, which must emit identical rescale deltas through the
// pipeline.
func TestParallelAggregatorRenormConformance(t *testing.T) {
	var docs []Document
	for i := 0; i < 40; i++ {
		docs = append(docs, Document{Time: int64(i * 10), Entities: vset.New(vset.Vertex(i%6), vset.Vertex(i%6+1), vset.Vertex(i%6+2))})
	}
	cfg := AggregatorConfig{EpochLength: 10, Decay: 1e-40, PruneBelow: -1, DecayMode: DecayRescale}
	ref := serialBatches(t, docs, cfg)
	refAgg := MustAggregator(NewSliceDocSource(docs), cfg)
	for {
		if _, err := refAgg.NextBatch(); err != nil {
			break
		}
	}
	if refAgg.Stats().Renorms == 0 {
		t.Fatal("fixture never renormalized; weaken Decay further")
	}
	p, err := NewParallelAggregator(NewSliceDocSource(docs), cfg, PipelineConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, gerr := recordBatches(p)
	if !errors.Is(gerr, io.EOF) {
		t.Fatalf("pipeline failed: %v", gerr)
	}
	requireSameBatches(t, "renorm", got, ref)
}

// TestPipelinedBatchSourceMatchesSerial pins pure stage decoupling: wrapping
// any source — here the serial aggregator in both modes, and a fixed-chunked
// update stream — must reproduce its batch sequence exactly.
func TestPipelinedBatchSourceMatchesSerial(t *testing.T) {
	docs := pipelineConfDocs(13, 300)
	for _, mode := range []DecayMode{DecayExact, DecayRescale} {
		cfg := AggregatorConfig{EpochLength: 10, Decay: 0.5, PruneBelow: 0.05, DecayMode: mode}
		ref := serialBatches(t, docs, cfg)
		p := NewPipelinedBatchSource(MustAggregator(NewSliceDocSource(docs), cfg), 0, PipelineConfig{Depth: 3})
		got, gerr := recordBatches(p)
		if !errors.Is(gerr, io.EOF) {
			t.Fatalf("mode=%v: pipeline failed: %v", mode, gerr)
		}
		requireSameBatches(t, fmt.Sprintf("mode=%v", mode), got, ref)
	}

	// Fixed-size chunking of a plain update source must match AsBatchSource.
	var updates []Update
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		updates = append(updates, Update{A: vset.Vertex(rng.Intn(20)), B: vset.Vertex(20 + rng.Intn(20)), Delta: rng.NormFloat64()})
	}
	ref, err := recordBatches(AsBatchSource(NewSliceSource(updates), 64))
	if !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	p := NewPipelinedBatchSource(NewSliceSource(updates), 64, PipelineConfig{})
	got, gerr := recordBatches(p)
	if !errors.Is(gerr, io.EOF) {
		t.Fatalf("chunked pipeline failed: %v", gerr)
	}
	requireSameBatches(t, "chunked", got, ref)
}

// TestPipelineNextMatchesSerial pins the per-update view (UpdateSource): the
// cursor over the pipelined batch stream must yield the exact update sequence
// of the serial aggregator's Next.
func TestPipelineNextMatchesSerial(t *testing.T) {
	docs := pipelineConfDocs(17, 300)
	cfg := AggregatorConfig{EpochLength: 10, Decay: 0.5, PruneBelow: 0.05}
	ref, err := Drain(MustAggregator(NewSliceDocSource(docs), cfg))
	if err != nil {
		t.Fatal(err)
	}
	p, perr := NewParallelAggregator(NewSliceDocSource(docs), cfg, PipelineConfig{Workers: 2})
	if perr != nil {
		t.Fatal(perr)
	}
	got, err := Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("pipeline yielded %d updates, serial %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("update %d = %+v, want %+v", i, got[i], ref[i])
		}
	}

	// Rescaled streams are batch-structured through the pipeline too.
	rp, perr := NewParallelAggregator(NewSliceDocSource(docs), AggregatorConfig{EpochLength: 10, Decay: 0.5, DecayMode: DecayRescale}, PipelineConfig{Workers: 2})
	if perr != nil {
		t.Fatal(perr)
	}
	defer rp.Close()
	for i := 0; i < 100000; i++ {
		if _, err := rp.Next(); err != nil {
			if !errors.Is(err, ErrNeedBatch) {
				t.Fatalf("rescaled per-update error = %v, want ErrNeedBatch", err)
			}
			return
		}
	}
	t.Fatal("rescaled per-update drive never hit a threshold unit")
}

// TestPipelineReplayConformance drives the full documents→stories pipeline —
// engine, tracker, lifecycle records — with the parallel front-end against
// the serial front-end, single-engine (K=0) and sharded (K=4), in both decay
// modes. Records carry no floats, so requireSameRecords is exact.
func TestPipelineReplayConformance(t *testing.T) {
	gen, err := NewDocSynthetic(DocSynthConfig{
		BackgroundEntities: 30,
		Stories:            3,
		StorySize:          4,
		Docs:               600,
		Seed:               7,
		BackgroundSkew:     1.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := DrainDocs(gen)
	if err != nil {
		t.Fatal(err)
	}
	engCfg := core.Config{T: 6.5, Nmax: 4}
	trkCfg := story.Config{MinCardinality: 3, Grace: 40}
	for _, mode := range []DecayMode{DecayExact, DecayRescale} {
		aggCfg := AggregatorConfig{EpochLength: 25, Decay: 0.7, DecayMode: mode}

		refEng := core.MustNew(engCfg)
		refTrk := story.MustTracker(trkCfg)
		refStats, err := NewReplay(MustAggregator(NewSliceDocSource(docs), aggCfg), refEng, refTrk).RunBatches(0, true)
		if err != nil {
			t.Fatal(err)
		}
		refTrk.Close(uint64(refStats.Ticks))
		if refTrk.Stats().Born == 0 {
			t.Fatal("reference bore no stories; fixture too weak")
		}

		// K=0: single engine behind the parallel front-end.
		p, perr := NewParallelAggregator(docsToFileSource(t, docs), aggCfg, PipelineConfig{Workers: 4, Depth: 4})
		if perr != nil {
			t.Fatal(perr)
		}
		eng := core.MustNew(engCfg)
		trk := story.MustTracker(trkCfg)
		st, err := NewReplay(p, eng, trk).RunBatches(0, true)
		if err != nil {
			t.Fatal(err)
		}
		trk.Close(uint64(st.Ticks))
		if st.Ticks != refStats.Ticks || st.Updates != refStats.Updates || st.Events != refStats.Events {
			t.Fatalf("mode=%v K=0: stats (ticks=%d upd=%d ev=%d), want (%d, %d, %d)",
				mode, st.Ticks, st.Updates, st.Events, refStats.Ticks, refStats.Updates, refStats.Events)
		}
		if st.Ingest == nil || st.Ingest.Batches == 0 {
			t.Fatalf("mode=%v K=0: replay stats carry no ingest accounting: %+v", mode, st.Ingest)
		}
		requireSameRecords(t, fmt.Sprintf("mode=%v K=0", mode), trk, refTrk)

		// K=4: sharded engine behind the parallel front-end.
		sp, perr := NewParallelAggregator(NewSliceDocSource(docs), aggCfg, PipelineConfig{Workers: 2})
		if perr != nil {
			t.Fatal(perr)
		}
		se := shard.MustNew(shard.Config{Shards: 4, Engine: engCfg})
		strk := story.MustTracker(trkCfg)
		se.SetSeqSink(strk)
		sst, err := NewShardReplay(sp, se, nil).RunBatches(0, true)
		if err != nil {
			t.Fatal(err)
		}
		strk.Close(uint64(sst.Ticks))
		if sst.Ticks != refStats.Ticks {
			t.Fatalf("mode=%v K=4: %d ticks, want %d", mode, sst.Ticks, refStats.Ticks)
		}
		if sst.Ingest == nil || sst.Ingest.Batches == 0 {
			t.Fatalf("mode=%v K=4: shard replay stats carry no ingest accounting: %+v", mode, sst.Ingest)
		}
		requireSameRecords(t, fmt.Sprintf("mode=%v K=4", mode), strk, refTrk)
		se.Close()
	}
}

// TestPipelineErrorConformance pins error positioning: a mid-stream parse
// error (raw-line path) or time regression surfaces through the pipeline at
// the same batch boundary, with the same message, as through the serial
// front-end — every batch before it delivered, nothing after.
func TestPipelineErrorConformance(t *testing.T) {
	good := pipelineConfDocs(23, 60)
	var b strings.Builder
	if _, err := WriteDocuments(&b, good); err != nil {
		t.Fatal(err)
	}
	b.WriteString("100000 7 junk 9\n") // parse error past the good prefix
	input := b.String()
	cfg := AggregatorConfig{EpochLength: 10, Decay: 0.5}

	ref, refErr := recordBatches(MustAggregator(NewDocReaderSource("bad-docs", strings.NewReader(input)), cfg))
	if refErr == nil || errors.Is(refErr, io.EOF) {
		t.Fatalf("serial reference error = %v, want parse failure", refErr)
	}
	p, err := NewParallelAggregator(NewDocReaderSource("bad-docs", strings.NewReader(input)), cfg, PipelineConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, gotErr := recordBatches(p)
	if gotErr == nil || gotErr.Error() != refErr.Error() {
		t.Fatalf("pipeline error = %v, want %v", gotErr, refErr)
	}
	requireSameBatches(t, "parse-error prefix", got, ref)

	// Time regression: caught by the sequencer's ordered core, same position.
	back := append(append([]Document(nil), good[:20]...), Document{Time: good[19].Time - 1, Entities: vset.New(1, 2)})
	ref, refErr = recordBatches(MustAggregator(NewSliceDocSource(back), cfg))
	if refErr == nil || errors.Is(refErr, io.EOF) {
		t.Fatalf("serial regression error = %v, want failure", refErr)
	}
	p, err = NewParallelAggregator(NewSliceDocSource(back), cfg, PipelineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, gotErr = recordBatches(p)
	if gotErr == nil || gotErr.Error() != refErr.Error() {
		t.Fatalf("pipeline regression error = %v, want %v", gotErr, refErr)
	}
	requireSameBatches(t, "regression prefix", got, ref)
}

// TestPipelineClose pins shutdown: closing mid-stream terminates the consumer
// in bounded time and a full drain self-terminates, double-Close included.
func TestPipelineClose(t *testing.T) {
	docs := pipelineConfDocs(29, 2000)
	p, err := NewParallelAggregator(NewSliceDocSource(docs), AggregatorConfig{EpochLength: 10, Decay: 0.5}, PipelineConfig{Workers: 2, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.NextBatch(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	for i := 0; ; i++ {
		if _, err := p.NextBatch(); err != nil {
			break
		}
		if i > 100000 {
			t.Fatal("NextBatch never terminated after Close")
		}
	}
}

// TestPipelineHandoffZeroAlloc pins the consumer side of the handoff: once
// the producer has run ahead (queue deep enough to hold the whole stream, so
// the front-end goroutines finish and exit), pulling batches allocates
// nothing — the engine-side hot path pays no per-batch garbage for having a
// pipeline in front of it.
func TestPipelineHandoffZeroAlloc(t *testing.T) {
	docs := pipelineConfDocs(31, 200)
	cfg := AggregatorConfig{EpochLength: 10, Decay: 0.5}
	total := len(serialBatches(t, docs, cfg))
	p, err := NewParallelAggregator(NewSliceDocSource(docs), cfg, PipelineConfig{Workers: 2, Depth: total + 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.NextBatch(); err != nil {
		t.Fatal(err)
	}
	// Wait until every remaining batch plus the terminal item is queued: the
	// producer goroutines have then exited and cannot contribute allocations.
	want := total - 1 + 1
	for deadline := time.Now().Add(10 * time.Second); len(p.out) < want; {
		if time.Now().After(deadline) {
			t.Fatalf("producer queued %d items, want %d", len(p.out), want)
		}
		runtime.Gosched()
	}
	pulls := total - 2 // leave the terminal item unread: measure pure handoff
	if allocs := testing.AllocsPerRun(pulls-1, func() {
		if _, err := p.NextBatch(); err != nil {
			t.Fatalf("NextBatch during alloc pin: %v", err)
		}
	}); allocs != 0 {
		t.Fatalf("pipelined NextBatch allocated %.2f allocs/op, want 0", allocs)
	}
}

// FuzzParallelAggregatorMatchesSerial derives a document stream from fuzz
// bytes (entity pairs + time deltas) and checks batch-stream equality between
// the serial aggregator and a 3-worker pipeline in both decay modes.
func FuzzParallelAggregatorMatchesSerial(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 1, 9, 200, 33, 7})
	f.Add([]byte(strings.Repeat("\x05\x09", 60)))
	f.Fuzz(func(t *testing.T, data []byte) {
		var docs []Document
		now := int64(0)
		for i := 0; i+1 < len(data) && len(docs) < 300; i += 2 {
			now += int64(data[i] >> 4) // 0–15 time units per step
			ents := []vset.Vertex{vset.Vertex(data[i] % 16), vset.Vertex(data[i+1] % 16), vset.Vertex((data[i] + data[i+1]) % 16)}
			docs = append(docs, Document{Time: now, Entities: vset.New(ents...)})
		}
		if len(docs) == 0 {
			return
		}
		for _, mode := range []DecayMode{DecayExact, DecayRescale} {
			cfg := AggregatorConfig{EpochLength: 8, Decay: 0.5, PruneBelow: 0.05, DecayMode: mode}
			ref, refErr := recordBatches(MustAggregator(NewSliceDocSource(docs), cfg))
			if !errors.Is(refErr, io.EOF) {
				t.Fatalf("serial reference failed: %v", refErr)
			}
			p, err := NewParallelAggregator(NewSliceDocSource(docs), cfg, PipelineConfig{Workers: 3, Depth: 2})
			if err != nil {
				t.Fatal(err)
			}
			got, gotErr := recordBatches(p)
			if !errors.Is(gotErr, io.EOF) {
				t.Fatalf("pipeline failed: %v", gotErr)
			}
			requireSameBatches(t, mode.String(), got, ref)
		}
	})
}
