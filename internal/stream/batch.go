package stream

import (
	"errors"
	"fmt"
	"io"
)

// Batch is one coalescible group of updates: the unit Engine.ProcessBatch
// applies as a single logical tick. Sources with natural batch structure
// (the Aggregator's per-epoch decay bursts and per-document deltas, a
// FileSource with batch markers) implement BatchSource; any other
// UpdateSource can be chunked into fixed-size batches with AsBatchSource.
type Batch struct {
	Updates []Update
	// Decay marks an epoch fading burst — the aggregator's per-epoch
	// negative deltas, the segment epoch coalescing targets. Replay tracks
	// decay and non-decay batches as separate throughput segments.
	Decay bool
	// Threshold, when non-nil, marks this batch as a rescaled-decay epoch
	// unit: the Updates are the epoch's (usually empty) retirement
	// cancellations in normalized units, and the engine must additionally
	// move its output threshold to baseT/Scale — the O(1) form of fading
	// every tracked pair (see Aggregator and core.ProcessThresholdBatch).
	// Threshold batches always have Decay set.
	Threshold *ThresholdUpdate
}

// ThresholdUpdate is the payload of a rescaled-decay epoch unit. Scale is the
// cumulative decay factor λ in force after the epoch: the aggregator's stored
// weights are normalized as w' = w/λ, so the engine rescales its density
// threshold to baseT/Scale and multiplies emitted scores and densities by
// Scale to restore real (paper-semantics) units. A renormalization epoch
// resets Scale to exactly 1.
type ThresholdUpdate struct {
	Scale float64
}

// BatchSource produces a stream of update batches. NextBatch returns io.EOF
// when the stream is exhausted; empty batches are legal (a no-op tick). Like
// UpdateSource, batch sources are pull-based and single-consumer, and the
// returned Batch.Updates slice is only valid until the next NextBatch call.
type BatchSource interface {
	NextBatch() (Batch, error)
}

// AsBatchSource returns src's own batch structure when it has one, and
// otherwise wraps it so every n consecutive updates form one batch. n must be
// positive for the wrapping case.
func AsBatchSource(src UpdateSource, n int) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	return &chunkSource{src: src, n: n}
}

// chunkSource adapts a plain UpdateSource into fixed-size batches.
type chunkSource struct {
	src  UpdateSource
	n    int
	buf  []Update
	done bool
}

// NextBatch implements BatchSource. A non-positive chunk size is an error
// here (rather than a precondition on AsBatchSource) so every driver inherits
// the validation instead of each re-implementing it.
func (c *chunkSource) NextBatch() (Batch, error) {
	if c.n <= 0 {
		return Batch{}, fmt.Errorf("stream: batch size must be positive, got %d", c.n)
	}
	if c.done {
		return Batch{}, io.EOF
	}
	c.buf = c.buf[:0]
	for len(c.buf) < c.n {
		u, err := c.src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				c.done = true
				if len(c.buf) > 0 {
					return Batch{Updates: c.buf}, nil
				}
			}
			return Batch{}, err
		}
		c.buf = append(c.buf, u)
	}
	return Batch{Updates: c.buf}, nil
}
