package stream

import (
	"strings"
	"testing"
)

// TestDocFileSourceZeroAlloc pins the per-document parse cost of the
// streaming document reader: after warmup (scanner buffer, mention scratch),
// Next performs zero allocations per document — no per-line string, no
// per-document mention slice, no set copy. This is the front-end analogue of
// the engine's zero-alloc Process pin.
func TestDocFileSourceZeroAlloc(t *testing.T) {
	var b strings.Builder
	b.WriteString("# header comment\n")
	for i := 0; i < 1500; i++ {
		b.WriteString("10 3 1 4 1 5 9 2 6\n") // duplicates exercise the dedup path
	}
	src := NewDocReaderSource("alloc", strings.NewReader(b.String()))
	for i := 0; i < 50; i++ { // warm the scanner and scratch buffers
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		d, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if d.Entities.Len() != 7 {
			t.Fatalf("parsed %d entities, want 7", d.Entities.Len())
		}
	}); allocs != 0 {
		t.Fatalf("DocFileSource.Next allocated %.2f allocs/doc, want 0", allocs)
	}
}

// TestParseDocumentIntoMatchesParseDocument pins that the zero-alloc parser
// and the public allocating one accept and reject the same lines with the
// same results.
func TestParseDocumentIntoMatchesParseDocument(t *testing.T) {
	lines := []string{
		"0 1 2",
		"10 3 1 4 1 5",
		"5 7",
		"  12\t8   9  ",
		"9223372036854775807 1 2",
		"", "7", "x 1 2", "-3 1 2", "1 2 -4", "1 2147483647 3",
		"1 2 3.5", "99999999999999999999 1 2", "1 99999999999999999999",
	}
	for _, line := range lines {
		want, wantErr := ParseDocument(line)
		ts, ents, err := parseDocumentInto([]byte(line), nil)
		if (err != nil) != (wantErr != nil) {
			t.Fatalf("parseDocumentInto(%q) err = %v, ParseDocument err = %v", line, err, wantErr)
		}
		if err != nil {
			continue
		}
		if ts != want.Time || !ents.Equal(want.Entities) {
			t.Fatalf("parseDocumentInto(%q) = (%d, %v), want (%d, %v)", line, ts, ents, want.Time, want.Entities)
		}
	}
}
