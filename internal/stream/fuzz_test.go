package stream

import (
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

// FuzzFileSource feeds arbitrary bytes through the edge-list parser and
// checks its safety contract: no panics, every accepted update is
// well-formed (finite delta, vertices inside the index's valid range), and
// accepted updates survive a write→parse round trip unchanged. The seeds
// cover the interesting classes: valid lines, comments, malformed fields,
// NaN/Inf and out-of-range values, duplicate edges, pathological whitespace,
// and — because the source transparently decompresses input that starts with
// the gzip magic number — compressed payloads, bare magic bytes, and
// truncated or corrupt archives.
func FuzzFileSource(f *testing.F) {
	seeds := []string{
		"1 2 0.5\n2 3 -1.25\n",
		"# comment\n\n10 11 3\n",
		"1 2\n",
		"1 2 3 4\n",
		"a b c\n",
		"1 2 NaN\n",
		"1 2 Inf\n3 4 -Inf\n",
		"1 2 1e309\n",
		"-1 2 0.5\n",
		"2147483647 2 0.5\n",
		"99999999999 2 0.5\n",
		"1 2 0x1p-3\n",
		"1 2 0.5\r\n1 2 0.5\n1 2 -0.5\n",
		"\t 1 \t 2 \t 0.5 \t\n",
		"1 1 0.5\n",
		"0 0 0\n",
		strings.Repeat("7 8 1.5\n", 50),
		"1_0 2 0.5\n",
		"+1 +2 +0.5\n",
		// Batch boundaries: empty batches (leading, consecutive, trailing),
		// a single-pair batch, duplicate pairs within one batch, markers with
		// surrounding whitespace, and marker-like lines that must NOT parse
		// as boundaries or updates.
		"%%\n",
		"%%\n%%\n%%\n",
		"1 2 0.5\n%%\n",
		"%%\n3 4 1.5\n%%\n%%\n5 6 -1\n",
		"1 2 0.5\n1 2 0.5\n1 2 -0.25\n%%\n1 2 1\n",
		" %% \n7 8 1\n",
		"%% trailing garbage\n",
		"%%%%\n",
		"1 2 0.5 %%\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	// Gzip-framed seeds: the source sniffs the magic number and decompresses
	// transparently, so the fuzzer must also explore compressed valid input,
	// headers followed by garbage, and truncated archives.
	f.Add(gzipBytes(f, "1 2 0.5\n2 3 -1.25\n"))
	f.Add(gzipBytes(f, "# comment\n\n10 11 3\n"))
	f.Add(gzipBytes(f, "1 2 NaN\n"))
	f.Add(gzipBytes(f, "1 2 0.5\n%%\n3 4 1\n%%\n"))
	f.Add([]byte{0x1f, 0x8b})
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00, 0xde, 0xad, 0xbe, 0xef})
	f.Add(gzipBytes(f, "1 2 0.5\n")[:8])
	f.Fuzz(func(t *testing.T, data []byte) {
		src := NewReaderSource("fuzz", strings.NewReader(string(data)))
		var accepted []Update
		cleanEOF := false
		for len(accepted) < 10000 {
			u, err := src.Next()
			if err != nil {
				// io.EOF ends the stream; any other error must identify the
				// source. Either way the source must not panic.
				cleanEOF = errors.Is(err, io.EOF)
				if !cleanEOF && !strings.Contains(err.Error(), "fuzz") {
					t.Fatalf("error does not identify the source: %v", err)
				}
				break
			}
			if math.IsNaN(u.Delta) || math.IsInf(u.Delta, 0) {
				t.Fatalf("parser accepted non-finite delta: %+v", u)
			}
			if u.A < 0 || u.B < 0 || u.A == math.MaxInt32 || u.B == math.MaxInt32 {
				t.Fatalf("parser accepted vertex outside [0, MaxInt32): %+v", u)
			}
			accepted = append(accepted, u)
		}

		// Batch mode must accept exactly the same updates in the same order:
		// "%%" lines only group, never add, drop, or reorder. On malformed
		// input the batch reader stops at the same bad line, so its accepted
		// updates are a prefix of the sequential reader's (it withholds the
		// partial batch the error interrupts). When the sequential loop above
		// stopped at its 10000-update cap rather than at end of input, the
		// batch reader may legitimately read further (a marker-less file is
		// one batch), so only the common prefix is compared.
		capped := len(accepted) >= 10000
		batchSrc := NewReaderSource("fuzz", strings.NewReader(string(data)))
		var batched []Update
		batchErr := error(nil)
		for len(batched) <= len(accepted) {
			b, err := batchSrc.NextBatch()
			if err != nil {
				batchErr = err
				if !errors.Is(err, io.EOF) && !strings.Contains(err.Error(), "fuzz") {
					t.Fatalf("batch error does not identify the source: %v", err)
				}
				break
			}
			batched = append(batched, b.Updates...)
		}
		if !capped && len(batched) > len(accepted) {
			t.Fatalf("batch mode accepted %d updates, sequential %d", len(batched), len(accepted))
		}
		for i := 0; i < min(len(batched), len(accepted)); i++ {
			if batched[i] != accepted[i] {
				t.Fatalf("batch mode diverges at update %d: %+v != %+v", i, batched[i], accepted[i])
			}
		}
		if cleanEOF && !capped && errors.Is(batchErr, io.EOF) && len(batched) != len(accepted) {
			t.Fatalf("batch mode lost updates on clean input: %d != %d", len(batched), len(accepted))
		}

		if len(accepted) == 0 {
			return
		}
		// Round trip: writing the accepted updates and re-reading them must
		// reproduce them exactly (WriteUpdates uses %g, which emits the
		// shortest uniquely-parsing representation).
		var b strings.Builder
		if n, err := WriteUpdates(&b, accepted); err != nil || n != len(accepted) {
			t.Fatalf("WriteUpdates = %d, %v", n, err)
		}
		again, err := Drain(NewReaderSource("roundtrip", strings.NewReader(b.String())))
		if err != nil {
			t.Fatalf("re-parse of written updates failed: %v", err)
		}
		if len(again) != len(accepted) {
			t.Fatalf("round trip lost updates: %d -> %d", len(accepted), len(again))
		}
		for i := range accepted {
			if again[i] != accepted[i] {
				t.Fatalf("round trip changed update %d: %+v -> %+v", i, accepted[i], again[i])
			}
		}
	})
}

// TestParseUpdateRejects pins the parser's rejection classes (the cases the
// fuzz corpus seeds), so a regression fails fast without the fuzzer.
func TestParseUpdateRejects(t *testing.T) {
	bad := []string{
		"1 2",             // missing field
		"1 2 3 4",         // extra field
		"x 2 1",           // non-integer vertex
		"1 2 z",           // non-float delta
		"1 2 NaN",         // NaN poisons scores
		"1 2 Inf",         // +Inf
		"1 2 -Inf",        // -Inf
		"1 2 1e309",       // overflows to +Inf
		"-1 2 1",          // negative vertex
		"2147483647 2 1",  // the index's '*' sentinel
		"99999999999 2 1", // overflows int32
	}
	for _, line := range bad {
		if _, err := ParseUpdate(line); err == nil {
			t.Errorf("ParseUpdate(%q) accepted, want error", line)
		}
	}
	good := map[string]Update{
		"1 2 0.5":            {A: 1, B: 2, Delta: 0.5},
		"+1 +2 +0.5":         {A: 1, B: 2, Delta: 0.5},
		"1 2 0x1p-3":         {A: 1, B: 2, Delta: 0.125},
		"2147483646 0 -1e-9": {A: 2147483646, B: 0, Delta: -1e-9},
	}
	for line, want := range good {
		got, err := ParseUpdate(line)
		if err != nil {
			t.Errorf("ParseUpdate(%q) = %v, want %+v", line, err, want)
			continue
		}
		if got != want {
			t.Errorf("ParseUpdate(%q) = %+v, want %+v", line, got, want)
		}
	}
}
