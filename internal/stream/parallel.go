package stream

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"dyndens/internal/core"
	"dyndens/internal/shard"
)

// ShardReplay drives an UpdateSource through a ShardedEngine. It is the
// parallel counterpart of Replay: the source is read on the caller's
// goroutine in micro-batches and fed to the sharded engine's asynchronous
// Process, and the final statistics combine the aggregate wall-clock
// throughput with the per-shard busy-time accounting the merge layer keeps.
type ShardReplay struct {
	src UpdateSource
	se  *shard.ShardedEngine

	stats ShardReplayStats
	start time.Time
	done  bool
	buf   []Update
	hook  func() error
}

// ShardLoadStats is one shard's share of a replay. Delivered counts the work
// units the shard fully processed and Applied the units scoped delivery
// reduced to a bare graph apply (see shard.ShardLoad for the unit
// definition); under mirror delivery Applied is always 0.
type ShardLoadStats struct {
	Shard     int
	Delivered uint64
	Applied   uint64
	Busy      time.Duration // time inside the worker engine on this shard
	RawEvents uint64        // events emitted before merge deduplication
}

// DeliveryFraction returns Delivered / (Delivered + Applied), the fraction of
// this shard's work units that needed full processing.
func (l ShardLoadStats) DeliveryFraction() float64 {
	total := l.Delivered + l.Applied
	if total == 0 {
		return 0
	}
	return float64(l.Delivered) / float64(total)
}

// ShardReplayStats aggregates the work performed by a ShardReplay.
type ShardReplayStats struct {
	Shards  int
	Updates int    // updates pulled from the source and accepted
	Batches int    // read batches fed to the engine
	Events  uint64 // merged (deduplicated) events emitted downstream
	// Ticks counts merger sequence slots: one per update in per-update mode,
	// one per coalesced batch in batch mode — the final sequence number a
	// SeqSink consumer (story tracker) should be closed with.
	Ticks int
	Wall  time.Duration // wall clock from the first update to the final flush

	PerShard []ShardLoadStats

	// Ingest carries the front-end's per-stage busy/stall accounting when the
	// source is a pipelined front-end (stream.Pipeline); nil otherwise.
	Ingest *IngestStats
}

// UpdatesPerSecond returns the end-to-end replay throughput (0 before any
// work). Unlike the single-engine ReplayStats this is wall-clock throughput:
// it includes merge and channel overhead, which is the honest number for a
// concurrent pipeline.
func (s ShardReplayStats) UpdatesPerSecond() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Updates) / s.Wall.Seconds()
}

// BusyTotal returns the summed busy time across shards. BusyTotal/Wall is the
// effective parallelism of the run.
func (s ShardReplayStats) BusyTotal() time.Duration {
	var total time.Duration
	for _, l := range s.PerShard {
		total += l.Busy
	}
	return total
}

// ParallelEfficiency returns busy / (wall · K): the fraction of the
// deployment's total core-time budget actually spent inside worker engines.
// 1.0 means K cores fully busy for the whole run; the raw busy multiple
// (BusyTotal/Wall) is this times K. Scoped delivery lowers per-shard busy
// time, so a scoped run can have lower efficiency than a mirror run while
// finishing much sooner — throughput, not efficiency, is the headline.
func (s ShardReplayStats) ParallelEfficiency() float64 {
	if s.Wall <= 0 || s.Shards == 0 {
		return 0
	}
	return float64(s.BusyTotal()) / (float64(s.Wall) * float64(s.Shards))
}

// MeanDeliveryFraction returns the mean per-shard DeliveryFraction (1.0 for
// mirror delivery, ideally near 1/K plus interest overlap for scoped).
func (s ShardReplayStats) MeanDeliveryFraction() float64 {
	if len(s.PerShard) == 0 {
		return 0
	}
	var sum float64
	for _, l := range s.PerShard {
		sum += l.DeliveryFraction()
	}
	return sum / float64(len(s.PerShard))
}

// String formats the aggregate line followed by one line per shard.
func (s ShardReplayStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shard-replay{shards=%d updates=%d ticks=%d events=%d batches=%d wall=%v throughput=%.0f upd/s busy=%v eff=%.0f%% delivery=%.2f}",
		s.Shards, s.Updates, s.Ticks, s.Events, s.Batches, s.Wall.Round(time.Microsecond),
		s.UpdatesPerSecond(), s.BusyTotal().Round(time.Microsecond),
		100*s.ParallelEfficiency(), s.MeanDeliveryFraction())
	for _, l := range s.PerShard {
		fmt.Fprintf(&b, "\nshard %d: delivered=%d applied=%d (fraction=%.2f) busy=%v raw-events=%d",
			l.Shard, l.Delivered, l.Applied, l.DeliveryFraction(), l.Busy.Round(time.Microsecond), l.RawEvents)
	}
	if s.Ingest != nil {
		b.WriteString("\n" + s.Ingest.String())
	}
	return b.String()
}

// NewShardReplay wires src → sharded engine → sink, installing sink on the
// engine when non-nil. The engine must not have been fed updates yet.
func NewShardReplay(src UpdateSource, se *shard.ShardedEngine, sink core.EventSink) *ShardReplay {
	if sink != nil {
		se.SetSink(sink)
	}
	return &ShardReplay{src: src, se: se}
}

// SetBoundaryHook installs fn to run between driver batches in Run and
// RunBatches, exactly like Replay.SetBoundaryHook. The hook runs on the
// producer goroutine with updates possibly still in flight behind the merge
// barrier; a hook that needs a quiesced deployment (checkpointing) flushes
// the engine itself.
func (r *ShardReplay) SetBoundaryHook(fn func() error) { r.hook = fn }

// Engine returns the driven sharded engine.
func (r *ShardReplay) Engine() *shard.ShardedEngine { return r.se }

// Done reports whether the source has been exhausted.
func (r *ShardReplay) Done() bool { return r.done }

// Batch pulls up to n updates from the source and feeds them to the sharded
// engine, returning the number accepted. It returns io.EOF (possibly
// alongside a non-zero count) once the source is exhausted. Feeding is
// asynchronous; call Flush (or Run, which flushes) before reading results.
func (r *ShardReplay) Batch(n int) (int, error) {
	if r.done {
		return 0, io.EOF
	}
	if n <= 0 {
		return 0, fmt.Errorf("stream: batch size must be positive, got %d", n)
	}
	r.buf = r.buf[:0]
	var srcErr error
	for len(r.buf) < n {
		u, err := r.src.Next()
		if err != nil {
			srcErr = err
			break
		}
		r.buf = append(r.buf, u)
	}
	if len(r.buf) > 0 {
		if r.start.IsZero() {
			r.start = time.Now()
		}
		r.se.ProcessAll(r.buf)
		r.stats.Updates += len(r.buf)
		r.stats.Ticks += len(r.buf) // one merger sequence slot per update
		r.stats.Batches++
	}
	if srcErr != nil {
		if errors.Is(srcErr, io.EOF) {
			r.done = true
			return len(r.buf), io.EOF
		}
		return len(r.buf), srcErr
	}
	return len(r.buf), nil
}

// Flush blocks until every fed update has cleared the merge barrier and
// refreshes the statistics.
func (r *ShardReplay) Flush() {
	r.se.Flush()
	if !r.start.IsZero() {
		r.stats.Wall = time.Since(r.start)
	}
}

// Stats flushes and returns the statistics accumulated so far.
func (r *ShardReplay) Stats() ShardReplayStats {
	r.Flush()
	es := r.se.Stats()
	s := r.stats
	s.Shards = len(es.Loads)
	s.Events = es.MergedEvents
	if ir, ok := r.src.(ingestReporter); ok {
		is := ir.IngestStats()
		s.Ingest = &is
	}
	s.PerShard = make([]ShardLoadStats, len(es.Loads))
	for i, l := range es.Loads {
		s.PerShard[i] = ShardLoadStats{
			Shard:     l.Shard,
			Delivered: l.Delivered,
			Applied:   l.Applied,
			Busy:      l.Busy,
			RawEvents: l.RawEvents,
		}
	}
	return s
}

// Run drains the source in read batches of batchSize, flushes, and returns
// the final statistics. A source error other than io.EOF aborts the run and
// is returned with the statistics accumulated so far.
func (r *ShardReplay) Run(batchSize int) (ShardReplayStats, error) {
	for {
		_, err := r.Batch(batchSize)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return r.Stats(), nil
			}
			return r.Stats(), err
		}
		if r.hook != nil {
			if err := r.hook(); err != nil {
				return r.Stats(), err
			}
		}
	}
}

// RunBatches drains the source batch by batch (the source's own batches when
// it implements BatchSource, fixed chunks of readBatch updates otherwise).
// With coalesce true each whole batch ships to the sharded engine as one
// coalesced unit — one worker-channel broadcast and one merger sequence slot
// per batch instead of per update; with coalesce false the batch's updates
// are fed per-update (ProcessAll), the sequential-semantics baseline.
// Threshold batch units — rescaled-decay epochs — are inherently atomic and
// ship as one broadcast unit in both modes. Flushes and returns the final
// statistics.
func (r *ShardReplay) RunBatches(readBatch int, coalesce bool) (ShardReplayStats, error) {
	if r.done {
		return r.Stats(), nil
	}
	bs := AsBatchSource(r.src, readBatch)
	for {
		b, err := bs.NextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) {
				r.done = true
				return r.Stats(), nil
			}
			return r.Stats(), err
		}
		if r.start.IsZero() {
			r.start = time.Now()
		}
		switch {
		case b.Threshold != nil:
			// The sharded engine validates the scale producer-side (before
			// broadcasting to workers) and returns the error here rather than
			// panicking a worker goroutine — the seam a recovered WAL feeds.
			if err := r.se.ProcessThresholdBatch(b.Threshold.Scale, b.Updates); err != nil {
				return r.Stats(), err
			}
			r.stats.Ticks++
		case coalesce:
			r.se.ProcessBatch(b.Updates)
			r.stats.Ticks++ // empty batches are still boundary ticks
		default:
			r.se.ProcessAll(b.Updates)
			r.stats.Ticks += len(b.Updates)
		}
		r.stats.Updates += len(b.Updates)
		if len(b.Updates) > 0 || b.Threshold != nil {
			r.stats.Batches++
		}
		if r.hook != nil {
			if err := r.hook(); err != nil {
				return r.Stats(), err
			}
		}
	}
}
