// The batch-vs-sequential conformance suite: the oracle-backed evidence that
// epoch-coalesced batch processing is trustworthy.
//
// Batched processing reorders internal work (deltas applied up front, one
// deduplicated discovery pass, net events at the batch boundary), so the
// suite pins what must NOT change:
//
//   - the per-batch net event stream must equal the netting of the
//     sequential engine's per-update events over the same batch partition;
//   - the resulting story lifecycle records and final story table must
//     deep-equal the sequential reference driven at the same boundaries;
//   - in the exact-representation configuration (DisableImplicitTooDense,
//     where the explicit index is a pure function of the graph) the final
//     OutputDenseKeys must deep-equal the sequential engine's AND
//     brute.EnumerateAll;
//   - the sharded batched path (whole-epoch shipping) must be bit-identical
//     to the single batched engine at K ∈ {1, 2, 4};
//
// randomized over batch partitions that include empty batches and the
// duplicate pairs a mixed synthetic workload naturally repeats.
package stream

import (
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"sort"
	"sync"
	"testing"

	"dyndens/internal/baseline/brute"
	"dyndens/internal/core"
	"dyndens/internal/shard"
	"dyndens/internal/story"
)

// trackerConfig keeps grace windows short enough that stories die within the
// test streams; boundaries are batch ticks in every compared mode.
var trackerConfig = story.Config{MinJaccard: 0.5, Grace: 25}

// randomBatches partitions updates into random contiguous batches of size
// 0–8 (empty batches included).
func randomBatches(seed int64, updates []core.Update) [][]core.Update {
	rng := rand.New(rand.NewSource(seed))
	var batches [][]core.Update
	for pos := 0; pos <= len(updates); {
		n := rng.Intn(9)
		if pos+n > len(updates) {
			n = len(updates) - pos
		}
		batches = append(batches, updates[pos:pos+n])
		pos += n
		if n == 0 && pos == len(updates) {
			break
		}
	}
	return batches
}

// canonKeys is the canonical comparison form of an event group.
func canonKeys(events []core.Event) []string {
	out := make([]string, len(events))
	for i, ev := range events {
		out[i] = fmt.Sprintf("%d|%s", ev.Kind, ev.Set.Key())
	}
	sort.Strings(out)
	return out
}

// netBatcher folds a batch's sequential per-update events into the net
// transitions across the batch — the event group the batched engine promises
// to emit at the boundary.
type netBatcher struct {
	live map[string]bool
}

func newNetBatcher() *netBatcher { return &netBatcher{live: make(map[string]bool)} }

func (n *netBatcher) net(events []core.Event) []core.Event {
	before := make(map[string]bool, len(events))
	last := make(map[string]core.Event, len(events))
	for _, ev := range events {
		k := ev.Set.Key()
		if _, seen := before[k]; !seen {
			before[k] = n.live[k]
		}
		if ev.Kind == core.BecameOutputDense {
			n.live[k] = true
		} else {
			delete(n.live, k)
		}
		last[k] = ev
	}
	var out []core.Event
	for k, ev := range last {
		if before[k] != n.live[k] {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Set.Key() < out[j].Set.Key()
	})
	return out
}

// tickRecorder groups sink events by update boundary.
type tickRecorder struct {
	ticks [][]core.Event
	cur   []core.Event
}

func (r *tickRecorder) Emit(ev core.Event) { r.cur = append(r.cur, ev) }
func (r *tickRecorder) EndUpdate() {
	r.ticks = append(r.ticks, r.cur)
	r.cur = nil
}

// seqFanOut forwards the merged sequence-numbered stream to several sinks.
type seqFanOut []shard.SeqSink

func (f seqFanOut) EmitSeq(ev shard.SeqEvent) {
	for _, s := range f {
		s.EmitSeq(ev)
	}
}

// seqRecorder groups the merged stream by sequence number. The merge
// goroutine is the only writer while the replay is in flight.
type seqRecorder struct {
	mu    sync.Mutex
	bySeq map[uint64][]core.Event
}

func (r *seqRecorder) EmitSeq(ev shard.SeqEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.bySeq == nil {
		r.bySeq = make(map[uint64][]core.Event)
	}
	r.bySeq[ev.Seq] = append(r.bySeq[ev.Seq], ev.Event)
}

func (r *seqRecorder) tick(seq uint64) []core.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bySeq[seq]
}

// requireSameRecords asserts two lifecycle streams and story tables are
// deep-equal.
func requireSameRecords(t *testing.T, label string, got, want *story.Tracker) {
	t.Helper()
	if !reflect.DeepEqual(got.Records(), want.Records()) {
		t.Fatalf("%s: lifecycle records diverge:\n--- got ---\n%v\n--- want ---\n%v", label, got.Records(), want.Records())
	}
	if !reflect.DeepEqual(got.Stories(), want.Stories()) {
		t.Fatalf("%s: story tables diverge:\n--- got ---\n%v\n--- want ---\n%v", label, got.Stories(), want.Stories())
	}
}

// cliqueWarmup returns one tiny-weight update per vertex pair. Which dense
// subgraphs the engine represents EXPLICITLY (vs implicitly through
// ImplicitTooDense families, vs not yet enumerated by Explore-All) depends on
// when vertices first appear in the graph — an order the batch mode
// deliberately changes. Warming every vertex in as a shared first batch
// removes that degree of freedom, so the explicit output-dense set becomes a
// function of the graph alone and batch-vs-sequential key equality is a fair
// assertion. The ε weights shift every score identically in both engines.
func cliqueWarmup(vertices int) []core.Update {
	var out []core.Update
	for a := 0; a < vertices; a++ {
		for b := a + 1; b < vertices; b++ {
			out = append(out, core.Update{A: core.Vertex(a), B: core.Vertex(b), Delta: 1e-6})
		}
	}
	return out
}

// clampFreeStream draws a mixed update stream whose negative deltas shrink
// the current weight multiplicatively instead of subtracting an unbounded
// amount, so no edge is ever clamped to zero. Clamping removes edges, and a
// removed edge disconnects vertices — after which whether a dense
// C∪{disconnected y} is explicit or an implicit '*'-family member depends on
// processing order again (the ambiguity cliqueWarmup eliminates for vertex
// appearance). Deep key equality is asserted on clamp-free streams; clamping
// itself is pinned by the core batch tests and the semantic (brute-oracle)
// tier. Duplicate pairs occur naturally: 10 vertices, hundreds of draws.
func clampFreeStream(seed int64, vertices, n int) []core.Update {
	rng := rand.New(rand.NewSource(seed))
	weights := make(map[[2]core.Vertex]float64)
	out := make([]core.Update, 0, n)
	for i := 0; i < n; i++ {
		a := core.Vertex(rng.Intn(vertices))
		b := core.Vertex(rng.Intn(vertices))
		for b == a {
			b = core.Vertex(rng.Intn(vertices))
		}
		if a > b {
			a, b = b, a
		}
		k := [2]core.Vertex{a, b}
		var delta float64
		if w := weights[k]; w > 1e-5 && rng.Float64() < 0.35 {
			delta = -w * (0.3 + 0.6*rng.Float64()) // shrink, never to zero
		} else {
			delta = rng.ExpFloat64() * 1.5
		}
		weights[k] += delta
		out = append(out, core.Update{A: a, B: b, Delta: delta})
	}
	return out
}

// TestBatchConformance is the batch-vs-sequential property test. For every
// seed it draws a mixed workload and a random batch partition, builds the
// sequential reference (per-update Process, events netted per batch, story
// tracker driven at the same boundaries), and checks the batched single
// engine (K=0) and the whole-epoch sharded path (K ∈ {1, 2, 4}) against it:
// per-batch net events, OutputDenseKeys at every checkpoint, the brute-force
// oracle, and the story lifecycle records and final table.
func TestBatchConformance(t *testing.T) {
	const checkEvery = 10 // batches between flush-and-compare checkpoints
	engCfg := core.Config{T: 2, Nmax: 4}
	for seed := int64(31); seed <= 33; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			updates := clampFreeStream(seed, 10, 400)
			batches := append([][]core.Update{cliqueWarmup(10)}, randomBatches(seed*7, updates)...)

			// Sequential reference: per-update processing, netted per batch.
			ref := core.MustNew(engCfg)
			refTracker := story.MustTracker(trackerConfig)
			netter := newNetBatcher()
			nets := make([][]core.Event, len(batches))
			refKeys := make([][]string, len(batches))
			totalNet := 0
			var raw []core.Event
			for i, b := range batches {
				raw = raw[:0]
				for _, u := range b {
					raw = append(raw, ref.Process(u)...)
				}
				nets[i] = netter.net(raw)
				refKeys[i] = ref.OutputDenseKeys()
				totalNet += len(nets[i])
				for _, ev := range nets[i] {
					refTracker.Emit(ev)
				}
				refTracker.EndUpdate()
			}
			refTracker.Close(uint64(len(batches)))
			if totalNet == 0 {
				t.Fatal("reference produced no net events; fixture too weak")
			}

			// K=0: the batched single engine.
			bat := core.MustNew(engCfg)
			batTracker := story.MustTracker(trackerConfig)
			rec := &tickRecorder{}
			bat.SetSink(core.MultiSink{rec, batTracker})
			for i, b := range batches {
				bat.ProcessBatch(b)
				if got, want := canonKeys(rec.ticks[i]), canonKeys(nets[i]); !slices.Equal(got, want) {
					t.Fatalf("batch %d: batched events %v != sequential net %v", i, got, want)
				}
				if i%checkEvery == 0 || i == len(batches)-1 {
					if got := bat.OutputDenseKeys(); !slices.Equal(got, refKeys[i]) {
						t.Fatalf("after batch %d: batched keys %v != sequential %v", i, got, refKeys[i])
					}
					cfg := bat.Config()
					oracle := brute.Keys(brute.EnumerateAll(bat.Graph(), brute.Params{Measure: cfg.Measure, T: cfg.T, Nmax: cfg.Nmax}))
					var expanded []string
					for _, s := range bat.OutputDenseExpanded() {
						expanded = append(expanded, s.Set.Key())
					}
					slices.Sort(expanded)
					if !slices.Equal(expanded, oracle) {
						t.Fatalf("after batch %d: batched expanded set %v != oracle %v", i, expanded, oracle)
					}
				}
			}
			batTracker.Close(uint64(len(batches)))
			requireSameRecords(t, "K=0", batTracker, refTracker)

			// K ∈ {1, 2, 4}: whole-epoch shipping through the sharded engine.
			for _, k := range []int{1, 2, 4} {
				se := shard.MustNew(shard.Config{Shards: k, Engine: engCfg})
				shTracker := story.MustTracker(trackerConfig)
				shRec := &seqRecorder{}
				se.SetSeqSink(seqFanOut{shRec, shTracker})
				for i, b := range batches {
					se.ProcessBatch(b)
					if i%checkEvery == 0 || i == len(batches)-1 {
						if got := se.OutputDenseKeys(); !slices.Equal(got, refKeys[i]) {
							t.Fatalf("K=%d after batch %d: merged keys %v != sequential %v", k, i, got, refKeys[i])
						}
					}
				}
				se.Flush()
				for i := range batches {
					got, want := canonKeys(shRec.tick(uint64(i+1))), canonKeys(nets[i])
					if !slices.Equal(got, want) {
						t.Fatalf("K=%d batch %d: merged events %v != sequential net %v", k, i, got, want)
					}
				}
				shTracker.Close(uint64(len(batches)))
				requireSameRecords(t, fmt.Sprintf("K=%d", k), shTracker, refTracker)
				se.Close()
			}
		})
	}
}

// TestBatchConformanceImplicitRepresentation is the production-default tier
// (ImplicitTooDense enabled). Which dense subgraphs are explicit is then
// order-dependent, so sequential equality is asserted at the semantic level —
// the expanded output-dense set of both engines equals brute.EnumerateAll on
// the shared graph state — while the batched paths themselves must stay
// bit-identical: the sharded whole-epoch stream deep-equals the single
// batched engine's events, result set, lifecycle records, and story table.
func TestBatchConformanceImplicitRepresentation(t *testing.T) {
	engCfg := core.Config{T: 2, Nmax: 4}
	for seed := int64(41); seed <= 42; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			updates, err := Drain(MustSynthetic(SynthConfig{
				Vertices:         10,
				Updates:          400,
				Seed:             seed,
				NegativeFraction: 0.35,
				MeanDelta:        1.5,
			}))
			if err != nil {
				t.Fatal(err)
			}
			batches := randomBatches(seed*7, updates)

			seq := core.MustNew(engCfg)
			bat := core.MustNew(engCfg)
			batTracker := story.MustTracker(trackerConfig)
			rec := &tickRecorder{}
			bat.SetSink(core.MultiSink{rec, batTracker})
			for i, b := range batches {
				for _, u := range b {
					seq.Process(u)
				}
				bat.ProcessBatch(b)
				if i%10 == 0 || i == len(batches)-1 {
					cfg := bat.Config()
					oracle := brute.Keys(brute.EnumerateAll(bat.Graph(), brute.Params{Measure: cfg.Measure, T: cfg.T, Nmax: cfg.Nmax}))
					for name, eng := range map[string]*core.Engine{"batched": bat, "sequential": seq} {
						var expanded []string
						for _, s := range eng.OutputDenseExpanded() {
							expanded = append(expanded, s.Set.Key())
						}
						slices.Sort(expanded)
						if !slices.Equal(expanded, oracle) {
							t.Fatalf("after batch %d: %s expanded set %v != oracle %v", i, name, expanded, oracle)
						}
					}
				}
			}
			batTracker.Close(uint64(len(batches)))

			for _, k := range []int{1, 2, 4} {
				se := shard.MustNew(shard.Config{Shards: k, Engine: engCfg})
				shTracker := story.MustTracker(trackerConfig)
				shRec := &seqRecorder{}
				se.SetSeqSink(seqFanOut{shRec, shTracker})
				for _, b := range batches {
					se.ProcessBatch(b)
				}
				se.Flush()
				for i := range batches {
					got, want := canonKeys(shRec.tick(uint64(i+1))), canonKeys(rec.ticks[i])
					if !slices.Equal(got, want) {
						t.Fatalf("K=%d batch %d: merged events %v != single batched %v", k, i, got, want)
					}
				}
				if got, want := se.OutputDenseKeys(), bat.OutputDenseKeys(); !slices.Equal(got, want) {
					t.Fatalf("K=%d: merged keys %v != single batched %v", k, got, want)
				}
				shTracker.Close(uint64(len(batches)))
				requireSameRecords(t, fmt.Sprintf("K=%d", k), shTracker, batTracker)
				se.Close()
			}
		})
	}
}

// TestBatchedStoryPipelineShardedConformance runs the full documents→stories
// pipeline in batch mode — aggregator epoch bursts and per-document deltas
// shipped whole — and checks that every shard count produces the identical
// lifecycle stream and story table, and that the planted stories are still
// recovered. Both fading realisations are exercised: the exact per-pair
// sweep and the rescaled threshold-unit mode, whose single-engine batched
// lifecycles must additionally agree with each other (the batch groups are
// tick-aligned and story records carry no floats).
func TestBatchedStoryPipelineShardedConformance(t *testing.T) {
	docCfg := DocSynthConfig{
		BackgroundEntities: 30,
		Stories:            3,
		StorySize:          4,
		Docs:               600,
		Seed:               7,
		BackgroundSkew:     1.1,
	}
	engCfg := core.Config{T: 6.5, Nmax: 4}
	trkCfg := story.Config{MinCardinality: 3, Grace: 40} // grace in batch ticks ≈ docs

	run := func(k int, mode DecayMode) (*story.Tracker, ReplayStats, ShardReplayStats) {
		gen, err := NewDocSynthetic(docCfg)
		if err != nil {
			t.Fatal(err)
		}
		agg := MustAggregator(gen, AggregatorConfig{EpochLength: 25, Decay: 0.7, DecayMode: mode})
		tracker := story.MustTracker(trkCfg)
		if k == 0 {
			eng := core.MustNew(engCfg)
			st, err := NewReplay(agg, eng, tracker).RunBatches(0, true)
			if err != nil {
				t.Fatal(err)
			}
			tracker.Close(uint64(st.Ticks))
			return tracker, st, ShardReplayStats{}
		}
		se := shard.MustNew(shard.Config{Shards: k, Engine: engCfg})
		defer se.Close()
		se.SetSeqSink(tracker)
		r := NewShardReplay(agg, se, nil)
		st, err := r.RunBatches(0, true)
		if err != nil {
			t.Fatal(err)
		}
		r.Flush()
		tracker.Close(uint64(st.Ticks))
		return tracker, ReplayStats{}, st
	}

	var modeRefs []*story.Tracker
	for _, mode := range []DecayMode{DecayExact, DecayRescale} {
		t.Run(mode.String(), func(t *testing.T) {
			refTracker, refStats, _ := run(0, mode)
			if refStats.DecaySeg.Batches == 0 {
				t.Fatalf("batched pipeline saw no decay bursts: %+v", refStats)
			}
			if mode == DecayExact && refStats.DecaySeg.Updates == 0 {
				t.Fatalf("exact batched pipeline shipped no fade deltas: %+v", refStats)
			}
			if refStats.Ticks >= refStats.Updates {
				t.Fatalf("coalescing did not reduce ticks: %d ticks for %d updates", refStats.Ticks, refStats.Updates)
			}
			if refTracker.Stats().Born == 0 {
				t.Fatal("batched pipeline bore no stories; fixture too weak")
			}
			for _, k := range []int{1, 2, 4} {
				shTracker, _, shStats := run(k, mode)
				if shStats.Ticks != refStats.Ticks || shStats.Updates != refStats.Updates {
					t.Fatalf("K=%d: tick/update accounting diverged: %d/%d vs %d/%d",
						k, shStats.Ticks, shStats.Updates, refStats.Ticks, refStats.Updates)
				}
				requireSameRecords(t, fmt.Sprintf("K=%d", k), shTracker, refTracker)
			}
			modeRefs = append(modeRefs, refTracker)
		})
	}
	if len(modeRefs) == 2 {
		requireSameRecords(t, "rescale vs exact", modeRefs[1], modeRefs[0])
	}
}

// TestRunBatchesMatchesRun pins that the batched replay driver applies
// exactly the same updates as the sequential one (chunked fallback for plain
// sources) and reports coherent tick counts.
func TestRunBatchesMatchesRun(t *testing.T) {
	synth := SynthConfig{Vertices: 12, Updates: 500, Seed: 9, NegativeFraction: 0.3, MeanDelta: 1.5}
	engCfg := core.Config{T: 2, Nmax: 4, DisableImplicitTooDense: true}

	seqEng := core.MustNew(engCfg)
	seqStats, err := NewReplay(MustSynthetic(synth), seqEng, nil).Run(64)
	if err != nil {
		t.Fatal(err)
	}
	batEng := core.MustNew(engCfg)
	batStats, err := NewReplay(MustSynthetic(synth), batEng, nil).RunBatches(64, true)
	if err != nil {
		t.Fatal(err)
	}
	if batStats.Updates != seqStats.Updates {
		t.Fatalf("batched replay processed %d updates, sequential %d", batStats.Updates, seqStats.Updates)
	}
	if batStats.Ticks != (synth.Updates+63)/64 {
		t.Fatalf("batched ticks = %d, want %d chunks", batStats.Ticks, (synth.Updates+63)/64)
	}
	if seqStats.Ticks != seqStats.Updates {
		t.Fatalf("sequential ticks = %d, want %d (one per update)", seqStats.Ticks, seqStats.Updates)
	}
	if !slices.Equal(batEng.OutputDenseKeys(), seqEng.OutputDenseKeys()) {
		t.Fatalf("result sets diverged: %v vs %v", batEng.OutputDenseKeys(), seqEng.OutputDenseKeys())
	}
	if batEng.Stats().Batches == 0 {
		t.Fatal("batched replay drove no ProcessBatch calls")
	}
}
