package stream

// pairTable is the aggregator's weight table: an open-addressing hash table
// from packed pair keys to float64 weights, replacing the previous
// map[pairKey]float64. The Go runtime map was the last allocation and
// pointer-chasing hot spot on the document ingest path — every co-occurrence
// probe hashed through runtime.mapaccess/mapassign with bucket indirection,
// and growth allocated overflow buckets. This table keeps keys and values in
// two flat parallel slices (one cache line holds eight keys), probes with a
// strong 64-bit finalizer plus linear stepping, and is allocation-free in
// steady state for probe, insert, and delete alike; only capacity growth and
// tombstone compaction allocate, and both are amortized O(1) per insert.
//
// Key space: pairKey packs two distinct vertices a < b, so a == b keys are
// unrepresentable in the aggregation domain. That frees two sentinel words —
// key 0 (the pair {0,0}) marks an empty slot and ^0 (the pair {MaxUint32,
// MaxUint32}, outside the valid vertex range) marks a tombstone — so no
// separate metadata array is needed.
//
// Deletion uses tombstones so retirement (PruneBelow) stays O(probe) without
// the backward-shift bookkeeping; a compaction pass rehashes the live entries
// in place once tombstones exceed a quarter of the capacity, bounding the
// probe-length decay long retirement-heavy streams would otherwise suffer.
//
// Iteration order is insertion/hash dependent and deliberately unexported:
// every emission path that feeds the deterministic update stream (the exact
// sweep, lazy retirement, renormalization) orders keys explicitly, so the
// table never leaks its layout into the batch stream.
type pairTable struct {
	keys []uint64
	vals []float64
	live int // occupied, non-tombstone slots
	dead int // tombstone slots
}

const (
	ptEmpty     = uint64(0)
	ptTombstone = ^uint64(0)
	// ptMinCap is the initial capacity (power of two). 256 slots ≈ 3 KiB —
	// small enough to not matter, large enough that short streams never grow.
	ptMinCap = 256
)

// newPairTable returns an empty table ready for use.
func newPairTable() *pairTable {
	return &pairTable{keys: make([]uint64, ptMinCap), vals: make([]float64, ptMinCap)}
}

// ptHash is the splitmix64/murmur3 finalizer: full-avalanche mixing so the
// packed (a<<32 | b) structure of pair keys — low entropy in the high word
// for small vertex universes — still spreads across the whole table.
func ptHash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// len returns the number of live entries.
func (t *pairTable) len() int { return t.live }

// get returns the weight stored for k and whether it is present.
func (t *pairTable) get(k pairKey) (float64, bool) {
	mask := uint64(len(t.keys) - 1)
	for i := ptHash(uint64(k)) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case uint64(k):
			return t.vals[i], true
		case ptEmpty:
			return 0, false
		}
	}
}

// add adds delta to k's weight, inserting it if absent, and returns the new
// weight and whether the pair already existed. This is the single-probe form
// of the ingest hot path's read-modify-write.
func (t *pairTable) add(k pairKey, delta float64) (float64, bool) {
	mask := uint64(len(t.keys) - 1)
	grave := uint64(len(t.keys)) // first tombstone seen; sentinel = none
	for i := ptHash(uint64(k)) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case uint64(k):
			t.vals[i] += delta
			return t.vals[i], true
		case ptTombstone:
			if grave == uint64(len(t.keys)) {
				grave = i
			}
		case ptEmpty:
			if grave != uint64(len(t.keys)) {
				i = grave
				t.dead--
			}
			t.keys[i] = uint64(k)
			t.vals[i] = delta
			t.live++
			t.maybeGrow()
			return delta, false
		}
	}
}

// put stores v as k's weight, inserting it if absent.
func (t *pairTable) put(k pairKey, v float64) {
	mask := uint64(len(t.keys) - 1)
	grave := uint64(len(t.keys))
	for i := ptHash(uint64(k)) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case uint64(k):
			t.vals[i] = v
			return
		case ptTombstone:
			if grave == uint64(len(t.keys)) {
				grave = i
			}
		case ptEmpty:
			if grave != uint64(len(t.keys)) {
				i = grave
				t.dead--
			}
			t.keys[i] = uint64(k)
			t.vals[i] = v
			t.live++
			t.maybeGrow()
			return
		}
	}
}

// del removes k, reporting whether it was present. The slot becomes a
// tombstone; compaction reclaims tombstones once they exceed a quarter of
// the capacity.
func (t *pairTable) del(k pairKey) bool {
	mask := uint64(len(t.keys) - 1)
	for i := ptHash(uint64(k)) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case uint64(k):
			t.keys[i] = ptTombstone
			t.vals[i] = 0
			t.live--
			t.dead++
			if t.dead > len(t.keys)/4 {
				t.rehash(len(t.keys))
			}
			return true
		case ptEmpty:
			return false
		}
	}
}

// appendKeys appends every live key to buf and returns it. Order is
// layout-dependent; callers that emit must sort.
func (t *pairTable) appendKeys(buf []pairKey) []pairKey {
	for _, k := range t.keys {
		if k != ptEmpty && k != ptTombstone {
			buf = append(buf, pairKey(k))
		}
	}
	return buf
}

// maybeGrow doubles the table once live+dead occupancy passes 3/4, keeping
// probe sequences short. Growth also discards tombstones.
func (t *pairTable) maybeGrow() {
	if (t.live+t.dead)*4 >= len(t.keys)*3 {
		t.rehash(len(t.keys) * 2)
	}
}

// rehash re-inserts the live entries into a table of newCap slots (a power of
// two). With newCap == len(t.keys) this is the tombstone-compaction pass.
func (t *pairTable) rehash(newCap int) {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]uint64, newCap)
	t.vals = make([]float64, newCap)
	t.dead = 0
	mask := uint64(newCap - 1)
	for i, k := range oldKeys {
		if k == ptEmpty || k == ptTombstone {
			continue
		}
		j := ptHash(k) & mask
		for t.keys[j] != ptEmpty {
			j = (j + 1) & mask
		}
		t.keys[j] = k
		t.vals[j] = oldVals[i]
	}
}
