// The delivery-policy conformance matrix: the evidence that neighbourhood-
// scoped shard routing (shard.OverlapScoped) is an optimization, not an
// approximation. Every cell of K ∈ {1, 2, 4, 8} × {mirror, scoped} ×
// {sequential, batched} must reproduce the single engine bit for bit: the
// merged event stream update for update (tick for tick in batch mode), the
// explicit OutputDenseKeys at every checkpoint, and the story lifecycle
// records and final story table driven from the merged stream. The single
// sequential reference is itself pinned to brute.EnumerateAll at the same
// checkpoints, so the whole matrix is transitively oracle-backed.
package stream

import (
	"fmt"
	"slices"
	"testing"

	"dyndens/internal/baseline/brute"
	"dyndens/internal/core"
	"dyndens/internal/shard"
	"dyndens/internal/story"
)

// matrixOverlaps spans both delivery policies; matrixShards spans the shard
// counts the PR's scaling claims are made for.
var (
	matrixOverlaps = []shard.Overlap{shard.OverlapMirror, shard.OverlapScoped}
	matrixShards   = []int{1, 2, 4, 8}
)

func TestOverlapConformanceMatrixSequential(t *testing.T) {
	const checkEvery = 50
	engCfg := core.Config{T: 2, Nmax: 4}
	updates, err := Drain(MustSynthetic(SynthConfig{
		Vertices:         10,
		Updates:          400,
		Seed:             51,
		NegativeFraction: 0.35,
		MeanDelta:        1.5,
	}))
	if err != nil {
		t.Fatal(err)
	}

	// Single sequential reference: per-update events, checkpointed keys, an
	// oracle check per checkpoint, and a story tracker driven per update.
	ref := core.MustNew(engCfg)
	refTracker := story.MustTracker(trackerConfig)
	perSeq := make(map[uint64][]string)
	keysAt := make(map[int][]string)
	total := 0
	for i, u := range updates {
		evs := ref.Process(u)
		total += len(evs)
		if len(evs) > 0 {
			perSeq[uint64(i+1)] = canonKeys(evs)
		}
		for _, ev := range evs {
			refTracker.Emit(ev)
		}
		refTracker.EndUpdate()
		if (i+1)%checkEvery == 0 || i == len(updates)-1 {
			keysAt[i+1] = ref.OutputDenseKeys()
			cfg := ref.Config()
			oracle := brute.Keys(brute.EnumerateAll(ref.Graph(), brute.Params{Measure: cfg.Measure, T: cfg.T, Nmax: cfg.Nmax}))
			var expanded []string
			for _, s := range ref.OutputDenseExpanded() {
				expanded = append(expanded, s.Set.Key())
			}
			slices.Sort(expanded)
			if !slices.Equal(expanded, oracle) {
				t.Fatalf("after %d updates: reference expanded set %v != oracle %v", i+1, expanded, oracle)
			}
		}
	}
	refTracker.Close(uint64(len(updates)))
	if total == 0 {
		t.Fatal("reference produced no events; fixture too weak")
	}

	for _, k := range matrixShards {
		for _, ov := range matrixOverlaps {
			t.Run(fmt.Sprintf("K=%d/%s", k, ov), func(t *testing.T) {
				se := shard.MustNew(shard.Config{Shards: k, Engine: engCfg, Overlap: ov, BatchSize: 32})
				defer se.Close()
				shTracker := story.MustTracker(trackerConfig)
				rec := &seqRecorder{}
				se.SetSeqSink(seqFanOut{rec, shTracker})
				for i, u := range updates {
					se.Process(u)
					if (i+1)%checkEvery == 0 || i == len(updates)-1 {
						se.Flush()
						if got := se.OutputDenseKeys(); !slices.Equal(got, keysAt[i+1]) {
							t.Fatalf("after %d updates: merged keys %v != reference %v", i+1, got, keysAt[i+1])
						}
					}
				}
				se.Flush()
				for i := range updates {
					seq := uint64(i + 1)
					got := canonKeys(rec.tick(seq))
					want := perSeq[seq]
					if !slices.Equal(got, want) {
						t.Fatalf("update %d: merged events %v != reference %v", seq, got, want)
					}
				}
				shTracker.Close(uint64(len(updates)))
				requireSameRecords(t, fmt.Sprintf("K=%d/%s", k, ov), shTracker, refTracker)
			})
		}
	}
}

func TestOverlapConformanceMatrixBatched(t *testing.T) {
	engCfg := core.Config{T: 2, Nmax: 4}
	updates, err := Drain(MustSynthetic(SynthConfig{
		Vertices:         10,
		Updates:          400,
		Seed:             53,
		NegativeFraction: 0.35,
		MeanDelta:        1.5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	batches := randomBatches(371, updates)

	// Single batched reference: per-tick net events and a tracker driven at
	// batch boundaries. The batched single engine is itself pinned to the
	// sequential engine by TestBatchConformance; here it anchors the matrix.
	bat := core.MustNew(engCfg)
	batTracker := story.MustTracker(trackerConfig)
	rec := &tickRecorder{}
	bat.SetSink(core.MultiSink{rec, batTracker})
	for _, b := range batches {
		bat.ProcessBatch(b)
	}
	batTracker.Close(uint64(len(batches)))
	total := 0
	for _, tick := range rec.ticks {
		total += len(tick)
	}
	if total == 0 {
		t.Fatal("batched reference produced no events; fixture too weak")
	}

	for _, k := range matrixShards {
		for _, ov := range matrixOverlaps {
			t.Run(fmt.Sprintf("K=%d/%s", k, ov), func(t *testing.T) {
				se := shard.MustNew(shard.Config{Shards: k, Engine: engCfg, Overlap: ov})
				defer se.Close()
				shTracker := story.MustTracker(trackerConfig)
				shRec := &seqRecorder{}
				se.SetSeqSink(seqFanOut{shRec, shTracker})
				for _, b := range batches {
					se.ProcessBatch(b)
				}
				se.Flush()
				for i := range batches {
					got, want := canonKeys(shRec.tick(uint64(i+1))), canonKeys(rec.ticks[i])
					if !slices.Equal(got, want) {
						t.Fatalf("batch %d: merged events %v != single batched %v", i, got, want)
					}
				}
				if got, want := se.OutputDenseKeys(), bat.OutputDenseKeys(); !slices.Equal(got, want) {
					t.Fatalf("merged keys %v != single batched %v", got, want)
				}
				shTracker.Close(uint64(len(batches)))
				requireSameRecords(t, fmt.Sprintf("K=%d/%s", k, ov), shTracker, batTracker)

				// Scoped delivery must actually scope on multi-shard runs —
				// an accounting sanity check, not an output property.
				st := se.Stats()
				if ov == shard.OverlapMirror && st.MeanDeliveryFraction() != 1.0 {
					t.Fatalf("mirror delivery fraction %v, want 1.0", st.MeanDeliveryFraction())
				}
				if ov == shard.OverlapScoped && k >= 4 && st.MeanDeliveryFraction() >= 1.0 {
					t.Fatalf("scoped K=%d delivered everything; scoping inert", k)
				}
			})
		}
	}
}
