package stream

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestStatsZeroElapsedFinite pins the zero-duration guards on every derived
// throughput/ratio method: a replay whose measured duration rounds to zero
// (tiny workloads on coarse clocks) must report 0, never +Inf or NaN. The
// derived values feed bench -json via float64 fields, and non-finite floats
// make json.Marshal fail, corrupting the committed benchmark snapshots.
func TestStatsZeroElapsedFinite(t *testing.T) {
	seg := SegmentStats{Updates: 500, Elapsed: 0}
	if got := seg.UpdatesPerSecond(); got != 0 {
		t.Errorf("SegmentStats zero-elapsed throughput = %v, want 0", got)
	}

	rs := ReplayStats{Updates: 500, Elapsed: 0}
	if got := rs.UpdatesPerSecond(); got != 0 {
		t.Errorf("ReplayStats zero-elapsed throughput = %v, want 0", got)
	}
	if got := (ReplayStats{}).MeanUpdateLatency(); got != 0 {
		t.Errorf("zero-update mean latency = %v, want 0", got)
	}

	ss := ShardReplayStats{Shards: 4, Updates: 500, Wall: 0}
	if got := ss.UpdatesPerSecond(); got != 0 {
		t.Errorf("ShardReplayStats zero-wall throughput = %v, want 0", got)
	}
	if got := ss.ParallelEfficiency(); got != 0 {
		t.Errorf("zero-wall parallel efficiency = %v, want 0", got)
	}
	if got := (ShardReplayStats{}).MeanDeliveryFraction(); got != 0 {
		t.Errorf("no-shard delivery fraction = %v, want 0", got)
	}
	if got := (ShardLoadStats{}).DeliveryFraction(); got != 0 {
		t.Errorf("idle shard delivery fraction = %v, want 0", got)
	}

	// The derived values must round-trip through JSON finitely, the way the
	// bench writer embeds them.
	out, err := json.Marshal(map[string]float64{
		"updates_per_second":     rs.UpdatesPerSecond(),
		"sharded_throughput":     ss.UpdatesPerSecond(),
		"parallel_efficiency":    ss.ParallelEfficiency(),
		"mean_delivery_fraction": ss.MeanDeliveryFraction(),
	})
	if err != nil {
		t.Fatalf("marshalling zero-elapsed stats: %v", err)
	}
	var back map[string]float64
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	for k, v := range back {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Errorf("%s = %v survived marshalling non-finite", k, v)
		}
	}

	// Sanity: with a real duration the same methods report real numbers.
	rs.Elapsed = 250 * time.Millisecond
	if got := rs.UpdatesPerSecond(); got != 2000 {
		t.Errorf("throughput = %v, want 2000", got)
	}
}
