package stream

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"dyndens/internal/graph"
)

// FileSource reads edge-weight updates from a text stream in the edge-list
// format `a b delta`, one update per line: two vertex identifiers (integers)
// and a weight delta (float), separated by whitespace. Blank lines and lines
// starting with '#' are skipped, so generated files can carry a provenance
// header. This is the recorded-stream format written by `dyndens gen`.
type FileSource struct {
	name   string
	sc     *bufio.Scanner
	closer io.Closer
	line   int
}

// NewReaderSource wraps an io.Reader in a FileSource. name is used in error
// messages only.
func NewReaderSource(name string, r io.Reader) *FileSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &FileSource{name: name, sc: sc}
}

// OpenFile opens path as a FileSource. The caller must Close it.
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s := NewReaderSource(path, f)
	s.closer = f
	return s, nil
}

// Next implements UpdateSource.
func (s *FileSource) Next() (Update, error) {
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		u, err := ParseUpdate(text)
		if err != nil {
			return Update{}, fmt.Errorf("%s:%d: %w", s.name, s.line, err)
		}
		return u, nil
	}
	if err := s.sc.Err(); err != nil {
		return Update{}, fmt.Errorf("%s: %w", s.name, err)
	}
	return Update{}, io.EOF
}

// Close releases the underlying file, if any.
func (s *FileSource) Close() error {
	if s.closer == nil {
		return nil
	}
	return s.closer.Close()
}

// ParseUpdate parses one `a b delta` line. Vertices must be in [0, MaxInt32)
// — the upper bound is exclusive because MaxInt32 is the index's reserved '*'
// sentinel (index.Star) — and the delta must be a finite float: a NaN or ±Inf
// weight would silently poison every score it touches downstream.
func ParseUpdate(text string) (Update, error) {
	fields := strings.Fields(text)
	if len(fields) != 3 {
		return Update{}, fmt.Errorf("stream: want 3 fields `a b delta`, got %d in %q", len(fields), text)
	}
	a, err := parseVertex(fields[0])
	if err != nil {
		return Update{}, err
	}
	b, err := parseVertex(fields[1])
	if err != nil {
		return Update{}, err
	}
	delta, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Update{}, fmt.Errorf("stream: bad delta %q: %w", fields[2], err)
	}
	if math.IsNaN(delta) || math.IsInf(delta, 0) {
		return Update{}, fmt.Errorf("stream: non-finite delta %q", fields[2])
	}
	return Update{A: a, B: b, Delta: delta}, nil
}

func parseVertex(field string) (graph.Vertex, error) {
	v, err := strconv.ParseInt(field, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("stream: bad vertex %q: %w", field, err)
	}
	if v < 0 || v >= math.MaxInt32 {
		return 0, fmt.Errorf("stream: vertex %q outside [0, %d)", field, math.MaxInt32)
	}
	return graph.Vertex(v), nil
}

// WriteUpdates writes updates to w in the edge-list format FileSource reads,
// returning the number of updates written.
func WriteUpdates(w io.Writer, updates []Update) (int, error) {
	bw := bufio.NewWriter(w)
	for i, u := range updates {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", u.A, u.B, u.Delta); err != nil {
			return i, err
		}
	}
	return len(updates), bw.Flush()
}
