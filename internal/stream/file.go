package stream

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"dyndens/internal/graph"
)

// lineScanner is the shared line-oriented reader behind the recorded-stream
// sources (FileSource for `a b delta` updates, DocFileSource for documents).
// It skips blank lines and '#' comments, counts lines for error messages, and
// transparently decompresses gzip input: the first two bytes are sniffed for
// the gzip magic number, so `dyndens run -input updates.gz` needs no flag and
// no filename convention. The sniff is lazy — it happens on the first line
// read — which keeps the constructors infallible.
type lineScanner struct {
	name   string
	raw    io.Reader
	sc     *bufio.Scanner
	gz     *gzip.Reader
	closer io.Closer
	line   int
}

// gzip magic number (RFC 1952).
const gzipMagic0, gzipMagic1 = 0x1f, 0x8b

func newLineScanner(name string, r io.Reader) *lineScanner {
	return &lineScanner{name: name, raw: r}
}

// init sniffs the input for gzip framing and builds the scanner. It is called
// on the first nextLine; a malformed gzip header fails here.
func (ls *lineScanner) init() error {
	br := bufio.NewReader(ls.raw)
	var src io.Reader = br
	if magic, err := br.Peek(2); err == nil && magic[0] == gzipMagic0 && magic[1] == gzipMagic1 {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return fmt.Errorf("%s: gzip: %w", ls.name, err)
		}
		ls.gz = zr
		src = zr
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	ls.sc = sc
	return nil
}

// nextLineBytes returns the next non-blank, non-comment line (trimmed) and
// its 1-based line number. The returned slice aliases the scanner's buffer
// and is only valid until the next call — it is the allocation-free core the
// document hot path parses from directly. It returns io.EOF at end of input;
// read errors — including corrupt gzip payloads — are wrapped with the
// source name.
func (ls *lineScanner) nextLineBytes() ([]byte, int, error) {
	if ls.sc == nil {
		if err := ls.init(); err != nil {
			return nil, 0, err
		}
	}
	for ls.sc.Scan() {
		ls.line++
		text := bytes.TrimSpace(ls.sc.Bytes())
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		return text, ls.line, nil
	}
	if err := ls.sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("%s: %w", ls.name, err)
	}
	return nil, 0, io.EOF
}

// nextLine is nextLineBytes with an owned string result, for the update-file
// path where per-line parsing already allocates.
func (ls *lineScanner) nextLine() (string, int, error) {
	b, line, err := ls.nextLineBytes()
	if err != nil {
		return "", 0, err
	}
	return string(b), line, nil
}

// close releases the gzip reader (verifying its checksum trailer was intact
// as far as it was read) and the underlying file, if any.
func (ls *lineScanner) close() error {
	var err error
	if ls.gz != nil {
		err = ls.gz.Close()
	}
	if ls.closer != nil {
		if cerr := ls.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// BatchMarker is the batch-boundary line of the recorded-stream format: a
// line consisting of exactly "%%" ends the current batch. Markers let a
// recorded stream carry its coalescible structure (an epoch burst per batch);
// the sequential reader (Next) skips them, so marked and unmarked files
// replay identically update for update.
const BatchMarker = "%%"

// FileSource reads edge-weight updates from a text stream in the edge-list
// format `a b delta`, one update per line: two vertex identifiers (integers)
// and a weight delta (float), separated by whitespace. Blank lines and lines
// starting with '#' are skipped, so generated files can carry a provenance
// header, and gzip-compressed input is decompressed transparently (sniffed by
// magic number, not filename). This is the recorded-stream format written by
// `dyndens gen`.
//
// FileSource is also a BatchSource: NextBatch groups updates at BatchMarker
// lines ("%%"), with consecutive markers yielding legal empty batches. A file
// without markers is one single batch — chunk it with AsBatchSource over a
// plain reader if fixed-size batches are wanted instead.
type FileSource struct {
	ls       *lineScanner
	buf      []Update // NextBatch staging, reused across batches
	maxBatch int      // NextBatch size cap; 0 = unbounded (see SetMaxBatch)
	capSplit bool     // last batch ended at the cap, not at a marker
}

// SetMaxBatch bounds the size of the batches NextBatch yields: a run of more
// than n updates without a marker is split into n-sized pieces (each its own
// logical tick). It is the memory guard for batch-replaying recorded streams
// — a marker-less file is otherwise one whole-file batch buffered in memory.
// n ≤ 0 removes the cap.
func (s *FileSource) SetMaxBatch(n int) {
	if n < 0 {
		n = 0
	}
	s.maxBatch = n
}

// NewReaderSource wraps an io.Reader in a FileSource. name is used in error
// messages only.
func NewReaderSource(name string, r io.Reader) *FileSource {
	return &FileSource{ls: newLineScanner(name, r)}
}

// OpenFile opens path as a FileSource. The caller must Close it.
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s := NewReaderSource(path, f)
	s.ls.closer = f
	return s, nil
}

// Next implements UpdateSource. Batch-boundary markers are skipped, so the
// sequential view of a marked stream is simply its updates in order.
func (s *FileSource) Next() (Update, error) {
	for {
		text, line, err := s.ls.nextLine()
		if err != nil {
			return Update{}, err
		}
		if text == BatchMarker {
			continue
		}
		u, err := ParseUpdate(text)
		if err != nil {
			return Update{}, fmt.Errorf("%s:%d: %w", s.ls.name, line, err)
		}
		return u, nil
	}
}

// NextBatch implements BatchSource: updates up to the next BatchMarker line,
// the SetMaxBatch cap, or end of input form one batch. The returned slice is
// reused by the next call.
func (s *FileSource) NextBatch() (Batch, error) {
	s.buf = s.buf[:0]
	// A marker immediately after a cap split closes the batch that was
	// already returned, so it is absorbed rather than reported as a spurious
	// empty batch (a SECOND consecutive marker is a genuine empty batch).
	absorbMarker := s.capSplit
	s.capSplit = false
	consumed := false
	for {
		if s.maxBatch > 0 && len(s.buf) == s.maxBatch {
			s.capSplit = true
			return Batch{Updates: s.buf}, nil
		}
		text, line, err := s.ls.nextLine()
		if err != nil {
			if errors.Is(err, io.EOF) && consumed {
				return Batch{Updates: s.buf}, nil
			}
			return Batch{}, err
		}
		if text == BatchMarker {
			if absorbMarker && len(s.buf) == 0 {
				// Belongs to the previous (cap-split) batch: absorbing it
				// must not count as consuming input for THIS batch, or EOF
				// right after it would yield a phantom empty batch.
				absorbMarker = false
				continue
			}
			return Batch{Updates: s.buf}, nil
		}
		consumed = true
		absorbMarker = false
		u, perr := ParseUpdate(text)
		if perr != nil {
			return Batch{}, fmt.Errorf("%s:%d: %w", s.ls.name, line, perr)
		}
		s.buf = append(s.buf, u)
	}
}

// Close releases the underlying file and gzip reader, if any.
func (s *FileSource) Close() error { return s.ls.close() }

// ParseUpdate parses one `a b delta` line. Vertices must be in [0, MaxInt32)
// — the upper bound is exclusive because MaxInt32 is the index's reserved '*'
// sentinel (index.Star) — and the delta must be a finite float: a NaN or ±Inf
// weight would silently poison every score it touches downstream.
func ParseUpdate(text string) (Update, error) {
	fields := strings.Fields(text)
	if len(fields) != 3 {
		return Update{}, fmt.Errorf("stream: want 3 fields `a b delta`, got %d in %q", len(fields), text)
	}
	a, err := parseVertex(fields[0])
	if err != nil {
		return Update{}, err
	}
	b, err := parseVertex(fields[1])
	if err != nil {
		return Update{}, err
	}
	delta, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Update{}, fmt.Errorf("stream: bad delta %q: %w", fields[2], err)
	}
	if math.IsNaN(delta) || math.IsInf(delta, 0) {
		return Update{}, fmt.Errorf("stream: non-finite delta %q", fields[2])
	}
	return Update{A: a, B: b, Delta: delta}, nil
}

func parseVertex(field string) (graph.Vertex, error) {
	v, err := strconv.ParseInt(field, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("stream: bad vertex %q: %w", field, err)
	}
	if v < 0 || v >= math.MaxInt32 {
		return 0, fmt.Errorf("stream: vertex %q outside [0, %d)", field, math.MaxInt32)
	}
	return graph.Vertex(v), nil
}

// WriteUpdates writes updates to w in the edge-list format FileSource reads,
// returning the number of updates written.
func WriteUpdates(w io.Writer, updates []Update) (int, error) {
	bw := bufio.NewWriter(w)
	for i, u := range updates {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", u.A, u.B, u.Delta); err != nil {
			return i, err
		}
	}
	return len(updates), bw.Flush()
}
