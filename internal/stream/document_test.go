package stream

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"dyndens/internal/vset"
)

func TestDocFileSourceParsesDocuments(t *testing.T) {
	input := `# recorded documents
0 3 1 2

5 7 7 9
# trailing comment
10 42
`
	src := NewDocReaderSource("docs", strings.NewReader(input))
	got, err := DrainDocs(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Document{
		{Time: 0, Entities: vset.New(1, 2, 3)},
		{Time: 5, Entities: vset.New(7, 9)}, // duplicate mention collapses
		{Time: 10, Entities: vset.New(42)},  // single-entity documents are legal
	}
	if len(got) != len(want) {
		t.Fatalf("got %d documents, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Time != want[i].Time || !got[i].Entities.Equal(want[i].Entities) {
			t.Errorf("document %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next after drain = %v, want io.EOF", err)
	}
}

func TestParseDocumentRejects(t *testing.T) {
	bad := []string{
		"5",                      // no entities
		"-1 2 3",                 // negative timestamp
		"x 2 3",                  // non-integer timestamp
		"5 x",                    // non-integer entity
		"5 -1",                   // negative entity
		"5 2147483647",           // the index's '*' sentinel
		"5 99999999999",          // overflows int32
		"5 1 2147483647",         // sentinel among valid mentions
		"99999999999999999999 1", // timestamp overflows int64
	}
	for _, line := range bad {
		if _, err := ParseDocument(line); err == nil {
			t.Errorf("ParseDocument(%q) accepted, want error", line)
		}
	}
}

func TestDocFileSourceReportsLineOnError(t *testing.T) {
	src := NewDocReaderSource("bad", strings.NewReader("0 1 2\n1 junk\n"))
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := src.Next()
	if err == nil || !strings.Contains(err.Error(), "bad:2") {
		t.Fatalf("error = %v, want one mentioning bad:2", err)
	}
}

func TestWriteDocumentsRoundTrips(t *testing.T) {
	docs := []Document{
		{Time: 0, Entities: vset.New(5, 1, 9)},
		{Time: 17, Entities: vset.New(3)},
	}
	var b strings.Builder
	if n, err := WriteDocuments(&b, docs); err != nil || n != 2 {
		t.Fatalf("WriteDocuments = %d, %v", n, err)
	}
	got, err := DrainDocs(NewDocReaderSource("roundtrip", strings.NewReader(b.String())))
	if err != nil {
		t.Fatal(err)
	}
	for i := range docs {
		if got[i].Time != docs[i].Time || !got[i].Entities.Equal(docs[i].Entities) {
			t.Errorf("document %d: got %+v, want %+v", i, got[i], docs[i])
		}
	}
}

// TestDocFileSourceGzip verifies documents share the update sources' gzip
// transparency.
func TestDocFileSourceGzip(t *testing.T) {
	src := NewDocReaderSource("gz", bytes.NewReader(gzipBytes(t, "0 1 2\n3 4 5 6\n")))
	got, err := DrainDocs(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[1].Entities.Equal(vset.New(4, 5, 6)) {
		t.Fatalf("gzip documents = %+v", got)
	}
}

func TestDocSyntheticDeterministicAndPlanted(t *testing.T) {
	cfg := DocSynthConfig{
		BackgroundEntities: 40,
		Stories:            3,
		StorySize:          4,
		Docs:               300,
		Seed:               5,
	}
	g := MustDocSynthetic(cfg)
	a, err := DrainDocs(g)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := DrainDocs(MustDocSynthetic(cfg))
	if len(a) != 300 {
		t.Fatalf("generated %d documents, want 300", len(a))
	}

	planted := g.PlantedStories()
	if len(planted) != 3 {
		t.Fatalf("planted %d stories, want 3", len(planted))
	}
	storyRange := func(e vset.Vertex) int {
		if int(e) < cfg.BackgroundEntities {
			return -1
		}
		return (int(e) - cfg.BackgroundEntities) / cfg.StorySize
	}
	for s, p := range planted {
		if p.Entities.Len() != 4 {
			t.Fatalf("story %d has %d entities, want 4", s, p.Entities.Len())
		}
		for _, e := range p.Entities {
			if storyRange(e) != s {
				t.Fatalf("story %d owns out-of-range entity %d", s, e)
			}
		}
		if p.Start < 0 || p.End <= p.Start || p.End > cfg.Docs {
			t.Fatalf("story %d window [%d, %d) outside the stream", s, p.Start, p.End)
		}
	}
	if planted[0].Start != 0 || planted[2].Start <= planted[1].Start {
		t.Fatalf("story windows not staggered: %+v", planted)
	}

	storyDocs := 0
	lastTime := int64(-1)
	for i := range a {
		if a[i].Time != b[i].Time || !a[i].Entities.Equal(b[i].Entities) {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Time <= lastTime {
			t.Fatalf("non-increasing time at document %d", i)
		}
		lastTime = a[i].Time

		// Classify: a document mentioning any story entity must mention
		// entities of exactly one story, only while that story is active.
		touched := -1
		for _, e := range a[i].Entities {
			s := storyRange(e)
			if s == -1 {
				continue
			}
			if touched != -1 && touched != s {
				t.Fatalf("document %d mixes stories %d and %d: %v", i, touched, s, a[i].Entities)
			}
			touched = s
		}
		if touched >= 0 {
			storyDocs++
			p := planted[touched]
			if i < p.Start || i >= p.End {
				t.Fatalf("document %d mentions story %d outside its window [%d, %d)", i, touched, p.Start, p.End)
			}
		}
	}
	if storyDocs == 0 || storyDocs == len(a) {
		t.Fatalf("degenerate story/background mix: %d/%d", storyDocs, len(a))
	}
}

func TestDocSyntheticValidation(t *testing.T) {
	bad := []DocSynthConfig{
		{BackgroundEntities: 1, Docs: 10},
		{BackgroundEntities: 10, Docs: 0},
		{BackgroundEntities: 10, Docs: 10, Stories: 1, StorySize: 1},
		{BackgroundEntities: 10, Docs: 10, Stories: 1, StorySize: 4, StoryMentions: 5},
		{BackgroundEntities: 10, Docs: 10, StoryFraction: 1.5},
		{BackgroundEntities: 10, Docs: 10, StoryLifetime: 2},
		{BackgroundEntities: 2, Docs: 10, BackgroundMentions: 5},
	}
	for i, cfg := range bad {
		if _, err := NewDocSynthetic(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted, want error", i, cfg)
		}
	}
}
