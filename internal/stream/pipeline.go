package stream

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"dyndens/internal/vset"
)

// This file is the pipelined ingestion front-end: it decouples the
// document→update production stages from the engine that consumes them, so
// expansion of document t+1 overlaps engine processing of tick t, and — for
// document streams — fans the parse + O(m²) pair-enumeration work out to W
// expansion workers while a sequencer applies all aggregation state mutations
// in document order.
//
// The determinism contract is the whole point: a Pipeline emits the exact
// batch sequence its serial counterpart would (same updates in the same
// groups, same Decay flags, same ThresholdUpdate units, same retirement and
// renormalization order), because the sequencer drives the same Aggregator
// code (ingestExpanded + NextBatch) over expansions that are pure functions
// of each document. Parallelism changes when work happens, never what is
// emitted — the same discipline the sharded engine (PR 2/6) and coalesced
// batching (PR 5) established.
//
// Goroutines start lazily on the first NextBatch, so building a Pipeline is
// free and timing loops that wrap the first pull measure the whole pipeline.
// The handoff queue is bounded (PipelineConfig.Depth), giving backpressure:
// a slow engine stalls the producer (recorded as ProducerStall) rather than
// buffering the stream.

// PipelineConfig configures the pipelined ingestion front-end.
type PipelineConfig struct {
	// Workers is the number of parallel expansion workers for a document
	// front-end (NewParallelAggregator); ≤ 0 defaults to GOMAXPROCS. A
	// generic pipelined source (NewPipelinedBatchSource) has a single
	// producer and ignores it.
	Workers int
	// Depth bounds the engine handoff queue in batches: the front-end gets at
	// most Depth batches ahead of the engine before stalling. ≤ 0 defaults
	// to 8 — enough to ride out batch-cost jitter, small enough that the
	// buffered stream stays cache-resident.
	Depth int
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Depth <= 0 {
		c.Depth = 8
	}
	return c
}

// IngestStats is the per-stage busy/stall accounting of a pipelined
// front-end. Busy times are summed per stage (ExpandBusy across all workers),
// so on a multi-core box stage busy totals can exceed wall clock; the two
// stall counters say which side of the handoff is the bottleneck.
type IngestStats struct {
	Workers int // expansion workers (0 for a generic pipelined source)
	Depth   int // handoff queue bound, in batches
	Batches int // batches delivered to the consumer

	// SourceBusy is reader time spent pulling from the underlying source
	// (document/line reads, or the wrapped BatchSource's NextBatch).
	SourceBusy time.Duration
	// ExpandBusy is summed worker time parsing documents and enumerating
	// pair keys (zero for a generic pipelined source).
	ExpandBusy time.Duration
	// ApplyBusy is sequencer time in the sequential aggregation core: weight
	// table mutations, retirement-heap re-keys, λ ticks, batch assembly.
	ApplyBusy time.Duration
	// ProducerStall is front-end time blocked on a full handoff queue — the
	// engine is the bottleneck.
	ProducerStall time.Duration
	// ConsumerStall is consumer time blocked on an empty handoff queue — the
	// front-end is the bottleneck.
	ConsumerStall time.Duration
}

// String formats the one-line summary printed by the CLI drivers.
func (s IngestStats) String() string {
	return fmt.Sprintf("ingest{workers=%d depth=%d batches=%d source=%v expand=%v apply=%v prod-stall=%v cons-stall=%v}",
		s.Workers, s.Depth, s.Batches,
		s.SourceBusy.Round(time.Microsecond), s.ExpandBusy.Round(time.Microsecond),
		s.ApplyBusy.Round(time.Microsecond),
		s.ProducerStall.Round(time.Microsecond), s.ConsumerStall.Round(time.Microsecond))
}

// ingestReporter is implemented by sources that carry pipeline stage stats;
// the replay drivers probe for it when assembling their final statistics.
type ingestReporter interface {
	IngestStats() IngestStats
}

// outItem is one handoff-queue entry: a batch with its updates copied into a
// pipeline-owned buffer and its threshold unit captured by value (the serial
// aggregator reuses both backing stores per document, so handing out aliases
// across the queue would tear). A terminal item carries err instead.
type outItem struct {
	updates []Update
	decay   bool
	hasThr  bool
	thr     ThresholdUpdate
	err     error
}

// expandJob is one document moving through the parallel front-end. All
// slices are job-owned scratch reused across the job pool.
type expandJob struct {
	seq    uint64
	parsed bool   // time/ents already populated by the reader (non-raw source)
	raw    []byte // unparsed line (raw-capable sources); workers parse it
	line   int
	time   int64
	ents   []vset.Vertex
	pairs  []pairKey
	err    error // terminal source error (io.EOF) or a parse error
}

// Pipeline is a bounded, backpressure-safe ingestion front-end. It is an
// UpdateSource and a BatchSource, so it slots into Replay/ShardReplay (and
// AsBatchSource) wherever the serial source did; it is single-consumer, like
// every source in this package. Construct one with NewPipelinedBatchSource
// (stage decoupling only: any source, one producer goroutine) or
// NewParallelAggregator (document expansion fanned out to W workers).
//
// Batches returned by NextBatch are valid until the next NextBatch call,
// matching the BatchSource contract. Close releases the goroutines; it is
// safe (and cheap) to call even if the stream was fully drained, after which
// the pipeline shuts down by itself.
type Pipeline struct {
	cfg  PipelineConfig
	ring int    // parallel mode: reorder ring size = max in-flight documents
	boot func() // producer bootstrap, run once on first pull
	once sync.Once

	out       chan outItem
	free      chan []Update // recycled update buffers
	quit      chan struct{}
	closeOnce sync.Once

	// parallel-aggregator plumbing (nil in generic mode)
	jobs    chan *expandJob
	results chan *expandJob
	jobPool chan *expandJob
	tokens  chan struct{} // in-flight document bound, pre-filled with ring

	// consumer-side state (single consumer; no locking needed)
	cur      outItem
	thrStore ThresholdUpdate // re-materialized per batch so &thrStore is stable until the next pull
	nextBuf  []Update        // Next() cursor over the current batch
	nextPos  int
	err      error
	done     bool

	sourceBusy atomic.Int64
	expandBusy atomic.Int64
	applyBusy  atomic.Int64
	prodStall  atomic.Int64
	consStall  atomic.Int64
	batches    atomic.Int64
	aggStats   atomic.Pointer[AggregatorStats]
}

func newPipeline(cfg PipelineConfig) *Pipeline {
	return &Pipeline{
		cfg:  cfg,
		out:  make(chan outItem, cfg.Depth),
		free: make(chan []Update, cfg.Depth+2),
		quit: make(chan struct{}),
	}
}

// NewPipelinedBatchSource wraps src so its batches are produced on a
// dedicated goroutine and handed to the consumer through a bounded queue:
// pure stage decoupling, preserving the source's exact batch sequence
// (updates, Decay flags, threshold units). src is chunked into readBatch-
// sized batches unless it is already a BatchSource, exactly as the replay
// drivers would (AsBatchSource). The source is read only from the producer
// goroutine, so a source that is not safe for concurrent use is fine.
func NewPipelinedBatchSource(src UpdateSource, readBatch int, cfg PipelineConfig) *Pipeline {
	cfg = cfg.withDefaults()
	cfg.Workers = 0 // single producer; workers are a parallel-aggregator concept
	p := newPipeline(cfg)
	bs := AsBatchSource(src, readBatch)
	p.boot = func() {
		go pprof.Do(context.Background(), pprof.Labels("stage", "source"), func(context.Context) {
			p.runSource(bs)
		})
	}
	return p
}

// NewParallelAggregator builds the parallel document front-end: a reader
// goroutine pulls documents (raw lines, for line-oriented sources like
// DocFileSource, moving even the parse off the reader), cfg.Workers expansion
// workers parse and enumerate pair keys concurrently, and a sequencer applies
// the sequential aggregation core in document order and emits the batch
// stream. The emitted stream is identical to MustAggregator(docs,
// aggCfg).NextBatch()'s in both decay modes — the sequencer runs the same
// code over the same inputs in the same order; only the expansion (a pure
// per-document computation) runs concurrently.
func NewParallelAggregator(docs DocumentSource, aggCfg AggregatorConfig, cfg PipelineConfig) (*Pipeline, error) {
	// The aggregator is fed pre-expanded documents by the sequencer and never
	// pulls from a DocumentSource itself — the reader owns the source.
	agg, err := NewAggregator(nil, aggCfg)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	p := newPipeline(cfg)
	p.ring = max(4, 2*cfg.Workers)
	p.jobs = make(chan *expandJob, p.ring)
	p.results = make(chan *expandJob, p.ring)
	p.jobPool = make(chan *expandJob, p.ring)
	p.tokens = make(chan struct{}, p.ring)
	for i := 0; i < p.ring; i++ {
		p.tokens <- struct{}{}
	}
	p.boot = func() { p.startParallel(docs, agg) }
	return p, nil
}

// Config returns the effective pipeline configuration (defaults applied).
func (p *Pipeline) Config() PipelineConfig { return p.cfg }

// NextBatch implements BatchSource. The first call starts the producer
// goroutines; the returned batch is valid until the next call.
func (p *Pipeline) NextBatch() (Batch, error) {
	p.once.Do(p.boot)
	if p.done {
		return Batch{}, p.err
	}
	if p.cur.updates != nil {
		// The previous batch is dead per the BatchSource contract; recycle
		// its buffer to the producer.
		select {
		case p.free <- p.cur.updates[:0]:
		default:
		}
		p.cur.updates = nil
	}
	var it outItem
	var ok bool
	select {
	case it, ok = <-p.out:
	default:
		start := time.Now()
		it, ok = <-p.out
		p.consStall.Add(int64(time.Since(start)))
	}
	if !ok || it.err != nil {
		p.done = true
		p.err = io.EOF // closed without a terminal item: treat as exhausted
		if it.err != nil {
			p.err = it.err
		}
		return Batch{}, p.err
	}
	p.cur = it
	p.batches.Add(1)
	b := Batch{Updates: it.updates, Decay: it.decay}
	if it.hasThr {
		p.thrStore = it.thr
		b.Threshold = &p.thrStore
	}
	return b, nil
}

// Next implements UpdateSource by cursoring over the batch stream, so the
// per-update replay drivers work unchanged. Like the serial aggregator, a
// rescaled-decay stream cannot be consumed per-update: hitting a threshold
// batch unit returns ErrNeedBatch.
func (p *Pipeline) Next() (Update, error) {
	for p.nextPos >= len(p.nextBuf) {
		b, err := p.NextBatch()
		if err != nil {
			return Update{}, err
		}
		if b.Threshold != nil {
			return Update{}, ErrNeedBatch
		}
		p.nextBuf, p.nextPos = b.Updates, 0
	}
	u := p.nextBuf[p.nextPos]
	p.nextPos++
	return u, nil
}

// Close stops the producer goroutines. Safe to call at any time, more than
// once, and concurrently with a blocked producer; after Close the stream is
// over (NextBatch drains any already-queued batches, then reports io.EOF).
func (p *Pipeline) Close() error {
	p.closeOnce.Do(func() { close(p.quit) })
	return nil
}

// IngestStats returns the per-stage accounting so far. It is safe to call
// mid-stream; the numbers are monotone.
func (p *Pipeline) IngestStats() IngestStats {
	return IngestStats{
		Workers:       p.cfg.Workers,
		Depth:         p.cfg.Depth,
		Batches:       int(p.batches.Load()),
		SourceBusy:    time.Duration(p.sourceBusy.Load()),
		ExpandBusy:    time.Duration(p.expandBusy.Load()),
		ApplyBusy:     time.Duration(p.applyBusy.Load()),
		ProducerStall: time.Duration(p.prodStall.Load()),
		ConsumerStall: time.Duration(p.consStall.Load()),
	}
}

// AggregatorStats returns the final aggregation counters of a parallel
// aggregator pipeline, available once the stream has terminated (EOF or
// error). ok is false mid-stream and for generic pipelined sources.
func (p *Pipeline) AggregatorStats() (AggregatorStats, bool) {
	if s := p.aggStats.Load(); s != nil {
		return *s, true
	}
	return AggregatorStats{}, false
}

// takeBuf returns a recycled update buffer, or nil (append grows it).
func (p *Pipeline) takeBuf() []Update {
	select {
	case b := <-p.free:
		return b[:0]
	default:
		return nil
	}
}

// send queues it for the consumer, recording time blocked on a full queue as
// producer stall. It reports false when the pipeline is closing.
func (p *Pipeline) send(it outItem) bool {
	select {
	case p.out <- it:
		return true
	case <-p.quit:
		return false
	default:
	}
	start := time.Now()
	select {
	case p.out <- it:
		p.prodStall.Add(int64(time.Since(start)))
		return true
	case <-p.quit:
		p.prodStall.Add(int64(time.Since(start)))
		return false
	}
}

// emit copies b into pipeline-owned storage and queues it.
func (p *Pipeline) emit(b Batch) bool {
	it := outItem{updates: append(p.takeBuf(), b.Updates...), decay: b.Decay}
	if b.Threshold != nil {
		it.hasThr, it.thr = true, *b.Threshold
	}
	return p.send(it)
}

// runSource is the generic single-producer loop: pull a batch, copy, queue.
func (p *Pipeline) runSource(bs BatchSource) {
	defer close(p.out)
	for {
		start := time.Now()
		b, err := bs.NextBatch()
		p.sourceBusy.Add(int64(time.Since(start)))
		if err != nil {
			p.send(outItem{err: err})
			return
		}
		if !p.emit(b) {
			return
		}
	}
}

// startParallel launches the parallel document front-end: reader → workers →
// sequencer. Stages carry pprof labels (stage=parse/expand/apply) so CPU
// profiles attribute time per pipeline stage; the engine side is labelled by
// the bench driver.
func (p *Pipeline) startParallel(docs DocumentSource, agg *Aggregator) {
	raw, _ := docs.(rawDocLiner)
	name := ""
	if raw != nil {
		name = raw.sourceName()
	}
	go pprof.Do(context.Background(), pprof.Labels("stage", "parse"), func(context.Context) {
		p.runReader(docs, raw)
	})
	var wg sync.WaitGroup
	wg.Add(p.cfg.Workers)
	for i := 0; i < p.cfg.Workers; i++ {
		go pprof.Do(context.Background(), pprof.Labels("stage", "expand"), func(context.Context) {
			defer wg.Done()
			p.runWorker(name)
		})
	}
	go func() {
		wg.Wait()
		close(p.results)
	}()
	go pprof.Do(context.Background(), pprof.Labels("stage", "apply"), func(context.Context) {
		p.runSequencer(agg)
	})
}

// runReader pulls documents (or raw lines) on a dedicated goroutine and
// issues sequence-numbered expansion jobs. The token channel bounds in-flight
// documents to the reorder ring size. The stream's terminal error — io.EOF
// or a source failure — rides the last job through the same ordered path, so
// the consumer sees it only after every prior document's batches.
func (p *Pipeline) runReader(docs DocumentSource, raw rawDocLiner) {
	defer close(p.jobs)
	var seq uint64
	for {
		select {
		case <-p.tokens:
		case <-p.quit:
			return
		}
		j := p.takeJob()
		j.seq = seq
		seq++
		start := time.Now()
		if raw != nil {
			text, line, err := raw.rawDocLine()
			p.sourceBusy.Add(int64(time.Since(start)))
			if err != nil {
				j.err = err
				p.sendJob(j)
				return
			}
			j.raw = append(j.raw[:0], text...)
			j.line = line
			j.parsed = false
		} else {
			doc, err := docs.Next()
			p.sourceBusy.Add(int64(time.Since(start)))
			if err != nil {
				j.err = err
				p.sendJob(j)
				return
			}
			// Copy: the DocumentSource contract lets the source reuse the
			// entity backing array on its next Next call.
			j.time = doc.Time
			j.ents = append(j.ents[:0], doc.Entities...)
			j.parsed = true
		}
		if !p.sendJob(j) {
			return
		}
	}
}

func (p *Pipeline) sendJob(j *expandJob) bool {
	select {
	case p.jobs <- j:
		return true
	case <-p.quit:
		return false
	}
}

// runWorker parses (raw mode) and pair-expands jobs. Expansion is a pure
// function of the document, so any worker may handle any job; order is
// restored by the sequencer. Terminal/error jobs pass through untouched.
func (p *Pipeline) runWorker(srcName string) {
	for j := range p.jobs {
		if j.err == nil {
			start := time.Now()
			if !j.parsed {
				ts, ents, err := parseDocumentInto(j.raw, j.ents[:0])
				if err != nil {
					j.err = fmt.Errorf("%s:%d: %w", srcName, j.line, err)
				} else {
					j.time = ts
					j.ents = ents
				}
			}
			if j.err == nil {
				j.pairs = appendDocPairs(j.pairs[:0], j.ents)
			}
			p.expandBusy.Add(int64(time.Since(start)))
		}
		select {
		case p.results <- j:
		case <-p.quit:
			return
		}
	}
}

// runSequencer restores document order with a seq-indexed ring and drives the
// sequential aggregation core: every weight-table mutation, retirement-heap
// re-key, and λ tick happens here, in document order, via the same
// ingestExpanded + NextBatch code the serial aggregator runs — which is the
// bit-identity argument. An error job (terminal EOF, source failure, or a
// worker parse error) is handled at its position in document order, exactly
// where the serial aggregator would have surfaced it.
func (p *Pipeline) runSequencer(agg *Aggregator) {
	defer close(p.out)
	ring := make([]*expandJob, p.ring)
	slots := uint64(p.ring)
	next := uint64(0)
	for j := range p.results {
		ring[j.seq%slots] = j
		for ring[next%slots] != nil {
			cur := ring[next%slots]
			ring[next%slots] = nil
			next++
			if cur.err != nil {
				p.finish(agg, cur.err)
				return
			}
			start := time.Now()
			err := agg.ingestExpanded(cur.time, cur.pairs)
			p.applyBusy.Add(int64(time.Since(start)))
			p.recycleJob(cur)
			if err != nil {
				p.finish(agg, err)
				return
			}
			// Drain the document's queued groups through the aggregator's own
			// batch emission (decay/threshold group, then the document's
			// pairs) — the guard matches NextBatch's ingest condition, so no
			// further document is pulled here.
			for agg.decayGroup || agg.pos < len(agg.pending) {
				b, _ := agg.NextBatch()
				if !p.emit(b) {
					return
				}
			}
		}
	}
	// Defensive: the reader always terminates the stream with an error job,
	// so a closed results channel without one means shutdown was external.
	p.finish(agg, io.EOF)
}

// finish publishes the final aggregator counters, queues the terminal item,
// and unwinds the front-end goroutines (the reader keeps producing after a
// mid-stream parse error otherwise).
func (p *Pipeline) finish(agg *Aggregator, err error) {
	s := agg.Stats()
	p.aggStats.Store(&s)
	p.send(outItem{err: err})
	p.closeOnce.Do(func() { close(p.quit) })
}

func (p *Pipeline) takeJob() *expandJob {
	select {
	case j := <-p.jobPool:
		return j
	default:
		return &expandJob{}
	}
}

func (p *Pipeline) recycleJob(j *expandJob) {
	j.err = nil
	select {
	case p.jobPool <- j:
	default:
	}
	select {
	case p.tokens <- struct{}{}:
	default: // capacity == ring ≥ in-flight bound; never hit
	}
}
