package stream

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"dyndens/internal/graph"
	"dyndens/internal/vset"
)

// DecayMode selects how the Aggregator realises per-epoch fading.
type DecayMode int

const (
	// DecayExact is the paper-literal sweep: every epoch tick multiplies
	// every tracked pair's weight by the decay factor and emits one negative
	// delta per pair — O(tracked pairs) per epoch. It is the conformance
	// reference the rescaled mode is checked against.
	DecayExact DecayMode = iota
	// DecayRescale keeps weights in normalized units w' = w/λ with a
	// cumulative scale λ: an epoch tick is one float multiply plus a single
	// threshold batch unit (λ) the engine absorbs via incremental threshold
	// adjustment, and PruneBelow retirement is served lazily from an
	// expiry-scale heap — per-epoch cost independent of the tracked-pair
	// count. Rescaled streams are batch-structured: drive them through
	// NextBatch (Next returns an error).
	DecayRescale
)

// String returns the CLI spelling of the mode.
func (m DecayMode) String() string {
	switch m {
	case DecayExact:
		return "exact"
	case DecayRescale:
		return "rescale"
	}
	return fmt.Sprintf("DecayMode(%d)", int(m))
}

// ParseDecayMode parses the CLI spelling of a decay mode.
func ParseDecayMode(s string) (DecayMode, error) {
	switch s {
	case "exact":
		return DecayExact, nil
	case "rescale":
		return DecayRescale, nil
	}
	return 0, fmt.Errorf("stream: unknown decay mode %q (want exact or rescale)", s)
}

// renormBelow is the λ underflow guard: when the cumulative scale drops below
// it, the aggregator renormalizes stored weights back to λ = 1 in one O(E)
// pass. 1e-150 leaves ~150 orders of magnitude of float64 headroom on both
// the normalized weights (w/λ) and the rescaled threshold (T/λ), and is
// crossed only once per thousands of epochs at realistic decay factors.
const renormBelow = 1e-150

// AggregatorConfig configures the document→update co-occurrence aggregation
// (the paper's Section 2 pre-processing): each document contributes DocWeight
// to the edge weight of every pair of entities it mentions, and all pair
// weights fade multiplicatively once per epoch, so a pair's weight is the
// decayed sum Σ DocWeight·Decay^(age in epochs) over the documents that
// co-mentioned it.
type AggregatorConfig struct {
	// EpochLength is the fading period in document time units; must be ≥ 1.
	// When a document's timestamp crosses into a later epoch, the decay for
	// every elapsed epoch is applied (as negative edge-weight deltas) before
	// the document's own co-occurrences are emitted.
	EpochLength int64
	// Decay is the multiplicative per-epoch fading factor in (0, 1]; 1 turns
	// fading off. Defaults to 0.5.
	Decay float64
	// DocWeight is the weight one co-occurrence contributes; must be
	// positive. Defaults to 1.
	DocWeight float64
	// PruneBelow retires pairs whose faded weight drops below this value: the
	// remaining weight is cancelled with one final negative delta and the
	// pair is dropped from the aggregation state, bounding memory by the set
	// of recently co-mentioned pairs rather than all pairs ever seen.
	// Defaults to 1e-3; a negative value disables pruning (every pair is
	// tracked forever).
	PruneBelow float64
	// DecayMode selects the fading realisation; the zero value is DecayExact
	// (the sweep). DecayRescale makes epoch ticks O(1) via normalized
	// weights and threshold batch units; see the DecayMode constants.
	DecayMode DecayMode
}

func (c AggregatorConfig) withDefaults() AggregatorConfig {
	if c.Decay == 0 {
		c.Decay = 0.5
	}
	if c.DocWeight == 0 {
		c.DocWeight = 1
	}
	switch {
	case c.PruneBelow == 0:
		c.PruneBelow = 1e-3
	case c.PruneBelow < 0:
		c.PruneBelow = 0
	}
	return c
}

// Validate reports configuration errors.
func (c AggregatorConfig) Validate() error {
	switch {
	case c.EpochLength < 1:
		return fmt.Errorf("stream: epoch length must be ≥ 1, got %d", c.EpochLength)
	case c.Decay <= 0 || c.Decay > 1:
		return fmt.Errorf("stream: decay %v outside (0, 1]", c.Decay)
	case c.DocWeight <= 0 || math.IsInf(c.DocWeight, 0) || math.IsNaN(c.DocWeight):
		return fmt.Errorf("stream: document weight %v must be positive and finite", c.DocWeight)
	case c.DecayMode != DecayExact && c.DecayMode != DecayRescale:
		return fmt.Errorf("stream: invalid decay mode %d", int(c.DecayMode))
	}
	return nil
}

// AggregatorStats summarises the work an Aggregator has performed.
type AggregatorStats struct {
	Docs         int   // documents consumed
	PairUpdates  int   // positive co-occurrence updates emitted
	DecayUpdates int   // negative fading/cancellation updates emitted
	Retired      int   // pairs fully cancelled and dropped by PruneBelow
	Epochs       int64 // fading epochs applied
	TrackedPairs int   // pairs currently carrying weight

	// Rescaled-mode counters (zero in exact mode).
	ThresholdUpdates int // threshold batch units emitted (epoch ticks with fading)
	Renorms          int // λ-underflow renormalization passes
	// EpochPairTouches counts, cumulatively, the tracked pairs an epoch tick
	// examined: the exact sweep adds the full tracked count every tick, the
	// rescaled mode only the heap entries popped (retirements and stale
	// re-keys) plus renormalization passes. The O(1)-epoch claim is pinned as
	// "a no-retirement rescaled epoch leaves this unchanged".
	EpochPairTouches int
}

// String formats the one-line summary printed by the stories CLI.
func (s AggregatorStats) String() string {
	return fmt.Sprintf("aggregate{docs=%d pair-updates=%d decay-updates=%d retired=%d epochs=%d tracked-pairs=%d threshold-updates=%d renorms=%d epoch-pair-touches=%d}",
		s.Docs, s.PairUpdates, s.DecayUpdates, s.Retired, s.Epochs, s.TrackedPairs,
		s.ThresholdUpdates, s.Renorms, s.EpochPairTouches)
}

// pairKey packs an ordered vertex pair (a < b) into one comparable word.
type pairKey uint64

func makePairKey(a, b graph.Vertex) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey(uint64(uint32(a))<<32 | uint64(uint32(b)))
}

func (k pairKey) vertices() (a, b graph.Vertex) {
	return graph.Vertex(k >> 32), graph.Vertex(uint32(k))
}

// retireEntry is one lazy-retirement heap entry: the pair expires once the
// cumulative scale λ drops below expLambda. Entries are only ever stale-HIGH
// (later additions grow w' and shrink the true expiry scale), so they fire
// early and are verified against the authoritative weight on pop — never
// late, which is what keeps lazy retirement equivalent to the exact sweep.
type retireEntry struct {
	key       pairKey
	expLambda float64
}

// retiredPair is a popped-and-confirmed retirement awaiting sorted emission.
type retiredPair struct {
	key pairKey
	w   float64 // normalized weight cancelled
}

// Aggregator converts a DocumentSource into the edge-weight UpdateSource the
// engine consumes: it is the first stage of the documents→stories pipeline
// and slots into the existing Replay/ShardReplay drivers unchanged.
//
// For every document it emits one positive update of DocWeight per entity
// pair, and whenever the document time crosses an epoch boundary it applies
// fading first. In exact mode fading is emitted literally — weight·(Decay^k −
// 1) for every tracked pair — while in rescaled mode the stored weights are
// normalized (w' = w/λ) and the epoch instead emits one threshold batch unit
// carrying the new λ plus the exact cancellations of pairs that expired below
// PruneBelow. In both modes the aggregator mirrors the exact weight the
// engine's graph holds for each pair — the engine applies every delta the
// aggregator emits and nothing else — so weights never drift and the
// clamp-at-zero path is never hit.
//
// Emission order is deterministic: a document's pairs are emitted in sorted
// order (documents carry sorted entity sets) and decay/cancellation updates
// are emitted in sorted pair order, so equal document streams produce equal
// update streams, which is what makes the end-to-end story pipeline
// reproducible and shard-count independent.
type Aggregator struct {
	cfg     AggregatorConfig
	docs    DocumentSource
	weights *pairTable

	started  bool
	epoch    int64 // current fading epoch (time / EpochLength)
	lastTime int64

	pending  []Update
	pos      int
	decayEnd int // pending[:decayEnd] is the epoch-tick decay burst, the rest the document's pairs

	// decayGroup marks that the current pending buffer opens with an epoch
	// tick NextBatch has not yet handed out — set on every epoch crossing
	// with fading in force, even when the burst itself is empty, so exact
	// and rescaled replays see identical batch-group structure (rescaled
	// epochs always ship a unit: the threshold update).
	decayGroup       bool
	pendingThreshold *ThresholdUpdate // the epoch's threshold unit (rescale mode)
	thresholdUnit    ThresholdUpdate  // backing store, reused per epoch

	lambda     float64       // cumulative decay scale λ (1 in exact mode)
	retire     []retireEntry // max-heap on expLambda: largest expiry scale fires first
	retiredBuf []retiredPair // reusable scratch for confirmed retirements
	sortedKeys []pairKey     // exact mode: tracked pairs, kept sorted incrementally
	pairBuf    []pairKey     // reusable per-document pair-expansion scratch

	stats    AggregatorStats
	decayBuf []pairKey // reusable sorted-key scratch for renormalization
}

// NewAggregator wires docs through the co-occurrence aggregation. It returns
// an error for invalid configurations.
func NewAggregator(docs DocumentSource, cfg AggregatorConfig) (*Aggregator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Aggregator{cfg: cfg, docs: docs, weights: newPairTable(), lambda: 1}, nil
}

// MustAggregator is NewAggregator that panics on error; for tests and
// benchmarks with known-good configurations. Production callers use
// NewAggregator and handle the error — the panic here marks a bug in the
// test, not a recoverable stream condition (see the package comment's
// errors-versus-panics contract).
func MustAggregator(docs DocumentSource, cfg AggregatorConfig) *Aggregator {
	a, err := NewAggregator(docs, cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Config returns the effective configuration (with defaults applied).
func (g *Aggregator) Config() AggregatorConfig { return g.cfg }

// Stats returns a snapshot of the work counters.
func (g *Aggregator) Stats() AggregatorStats {
	s := g.stats
	s.TrackedPairs = g.weights.len()
	return s
}

// Weight returns the aggregator's current stored weight for the pair {a, b}
// (0 if untracked), in the same units the engine's graph holds: real faded
// weight in exact mode, normalized weight w' = w/λ in rescaled mode (multiply
// by Scale for the real faded value). After a full drain through an engine
// this equals the engine graph's edge weight up to float rounding.
func (g *Aggregator) Weight(a, b graph.Vertex) float64 {
	w, _ := g.weights.get(makePairKey(a, b))
	return w
}

// Scale returns the cumulative decay scale λ: stored weights are w' = w/λ.
// It is 1 in exact mode and immediately after a renormalization pass.
func (g *Aggregator) Scale() float64 { return g.lambda }

// ErrNeedBatch is returned by Next in rescaled decay mode: an epoch tick is a
// threshold batch unit, which has no per-update representation.
var ErrNeedBatch = errors.New("stream: rescaled decay emits threshold batch units; drive the aggregator through NextBatch")

// Next implements UpdateSource: it replays the queued deltas of the current
// document (and any epoch tick that preceded it) and pulls the next document
// when the queue runs dry. In rescaled decay mode Next returns ErrNeedBatch —
// the stream is batch-structured and must be consumed through NextBatch.
func (g *Aggregator) Next() (Update, error) {
	if g.cfg.DecayMode == DecayRescale {
		return Update{}, ErrNeedBatch
	}
	for g.pos >= len(g.pending) {
		if err := g.ingest(); err != nil {
			return Update{}, err
		}
	}
	u := g.pending[g.pos]
	g.pos++
	if g.pos >= g.decayEnd {
		g.decayGroup = false
	}
	return u, nil
}

// NextBatch implements BatchSource: the queued deltas are handed out in their
// natural coalescible groups — each epoch tick as one batch (Decay true,
// carrying the threshold unit in rescaled mode) and each document's positive
// co-occurrence deltas as another — so a batched replay ships one engine tick
// per epoch or document instead of one Process per pair. An epoch tick's
// batch may be empty (no fading deltas / no retirements) but is still
// emitted: the tick itself is a unit of stream structure, and exact and
// rescaled replays produce identical group sequences. Groups follow the same
// deterministic order Next yields individual updates in; mixing Next and
// NextBatch on one aggregator hands out the remainder of the current group
// first.
func (g *Aggregator) NextBatch() (Batch, error) {
	for g.pos >= len(g.pending) && !g.decayGroup {
		if err := g.ingest(); err != nil {
			return Batch{}, err
		}
	}
	if g.decayGroup {
		b := Batch{Updates: g.pending[g.pos:g.decayEnd], Decay: true, Threshold: g.pendingThreshold}
		g.pos = g.decayEnd
		g.decayGroup = false
		g.pendingThreshold = nil
		return b, nil
	}
	b := Batch{Updates: g.pending[g.pos:]}
	g.pos = len(g.pending)
	return b, nil
}

// ingest consumes one document, queueing its epoch-tick decay (if any) and
// co-occurrence updates.
func (g *Aggregator) ingest() (err error) {
	doc, err := g.docs.Next()
	if err != nil {
		return err // io.EOF ends the update stream with the document stream
	}
	g.pairBuf = appendDocPairs(g.pairBuf[:0], doc.Entities)
	return g.ingestExpanded(doc.Time, g.pairBuf)
}

// appendDocPairs appends a document's co-occurrence pair keys to buf in
// emission order. Entity sets are sorted and strictly increasing, so the
// nested i<j enumeration yields keys already in sorted order with a < b —
// no swap, no sort. This is the O(m²) half of ingestion that the pipelined
// front-end runs on expansion workers; it is a pure function of the entity
// set, which is what makes it safe to run out of document order.
func appendDocPairs(buf []pairKey, ents vset.Set) []pairKey {
	for i := 0; i < len(ents); i++ {
		for j := i + 1; j < len(ents); j++ {
			buf = append(buf, pairKey(uint64(uint32(ents[i]))<<32|uint64(uint32(ents[j]))))
		}
	}
	return buf
}

// ingestExpanded is the sequential core of ingest: it queues the epoch tick
// (if docTime crossed a boundary) and the document's co-occurrence updates,
// given the document's pre-expanded pair keys. Every weight-table mutation,
// retirement-heap re-key, and λ tick happens here, in document order — the
// pipelined front-end's sequencer calls this directly, so parallel expansion
// produces a batch stream identical to the serial one by construction rather
// than by re-implementation. pairs is borrowed for the duration of the call.
func (g *Aggregator) ingestExpanded(docTime int64, pairs []pairKey) error {
	if g.started && docTime < g.lastTime {
		return fmt.Errorf("stream: document time went backwards: %d after %d", docTime, g.lastTime)
	}
	g.pending = g.pending[:0]
	g.pos = 0
	g.decayGroup = false
	g.pendingThreshold = nil
	g.stats.Docs++

	epoch := docTime / g.cfg.EpochLength
	if !g.started {
		g.started = true
		g.epoch = epoch
	} else if epoch > g.epoch {
		if g.cfg.DecayMode == DecayRescale {
			g.applyDecayRescale(epoch - g.epoch)
		} else {
			g.applyDecay(epoch - g.epoch)
		}
		g.epoch = epoch
	}
	g.decayEnd = len(g.pending)
	g.lastTime = docTime

	docWeight := g.cfg.DocWeight / g.lambda // λ = 1 in exact mode
	for _, k := range pairs {
		w, tracked := g.weights.add(k, docWeight)
		if !tracked {
			g.trackPair(k, w)
		}
		a, b := k.vertices()
		g.pending = append(g.pending, Update{A: a, B: b, Delta: docWeight})
		g.stats.PairUpdates++
	}
	return nil
}

// trackPair registers a pair that just went absent→present: exact mode keeps
// the sorted sweep order incrementally (insert here, delete on retirement —
// the satellite fix for the per-epoch rebuild+sort), rescaled mode records
// the pair's expiry scale in the lazy-retirement heap. Pairs that gain more
// weight later keep their (now stale-high) heap entry: it fires early, is
// verified on pop, and gets re-keyed — see retireExpired.
func (g *Aggregator) trackPair(k pairKey, w float64) {
	if g.cfg.DecayMode == DecayRescale {
		if g.cfg.PruneBelow > 0 {
			g.heapPush(retireEntry{key: k, expLambda: g.expiryLambda(w)})
		}
		return
	}
	i, found := slices.BinarySearch(g.sortedKeys, k)
	if !found {
		g.sortedKeys = slices.Insert(g.sortedKeys, i, k)
	}
}

// expiryLambda returns the cumulative scale below which a pair of normalized
// weight w has faded under PruneBelow (w·λ < PruneBelow ⟺ λ < PruneBelow/w).
// The slight inflation makes boundary cases fire one tick early — where the
// pop-time verification catches them — rather than one tick late, which
// would diverge from the exact sweep.
func (g *Aggregator) expiryLambda(w float64) float64 {
	return g.cfg.PruneBelow / w * (1 + 1e-12)
}

// applyDecay is the exact sweep: fade every tracked pair by Decay^elapsed,
// queueing the negative deltas in sorted pair order and retiring pairs below
// the prune threshold.
func (g *Aggregator) applyDecay(elapsed int64) {
	g.stats.Epochs += elapsed
	factor := math.Pow(g.cfg.Decay, float64(elapsed))
	if factor == 1 {
		return
	}
	g.decayGroup = true
	keys := g.sortedKeys
	g.stats.EpochPairTouches += len(keys)
	out := keys[:0] // compact survivors in place (read index ≥ write index)
	for _, k := range keys {
		w, _ := g.weights.get(k)
		faded := w * factor
		var delta float64
		if faded < g.cfg.PruneBelow {
			delta = -w
			g.weights.del(k)
			g.stats.Retired++
		} else {
			delta = faded - w
			g.weights.put(k, faded)
			out = append(out, k)
		}
		if delta == 0 {
			continue
		}
		a, b := k.vertices()
		g.pending = append(g.pending, Update{A: a, B: b, Delta: delta})
		g.stats.DecayUpdates++
	}
	g.sortedKeys = out
}

// applyDecayRescale is the O(1) epoch tick: fold the elapsed decay into the
// cumulative scale λ (stored weights are untouched — they are normalized),
// retire only the pairs whose expiry scale the new λ crossed, and queue one
// threshold unit carrying λ for the engine. When λ underflows toward
// renormBelow an amortized O(E) renormalization folds the scale back into
// the stored weights first, so the same epoch unit carries the rescale
// deltas and a Scale of exactly 1.
func (g *Aggregator) applyDecayRescale(elapsed int64) {
	g.stats.Epochs += elapsed
	factor := math.Pow(g.cfg.Decay, float64(elapsed))
	if factor == 1 {
		return
	}
	g.lambda *= factor
	g.decayGroup = true
	if g.cfg.PruneBelow > 0 {
		g.retireExpired()
	}
	if g.lambda < renormBelow {
		g.renormalize()
	}
	g.thresholdUnit = ThresholdUpdate{Scale: g.lambda}
	g.pendingThreshold = &g.thresholdUnit
	g.stats.ThresholdUpdates++
}

// retireExpired pops every heap entry whose recorded expiry scale the current
// λ has crossed. Each pop is verified against the authoritative weight:
// confirmed expiries are deleted and their exact normalized cancellation
// queued (in sorted pair order, matching the exact sweep's determinism);
// stale-high entries — the pair gained weight since the entry was pushed —
// are re-keyed with the accurate expiry scale, clamped to the current λ so a
// float boundary can't re-fire them within the same tick.
func (g *Aggregator) retireExpired() {
	retired := g.retiredBuf[:0]
	for len(g.retire) > 0 && g.retire[0].expLambda > g.lambda {
		e := g.heapPop()
		g.stats.EpochPairTouches++
		w, tracked := g.weights.get(e.key)
		if !tracked {
			continue // defensive: the single-live-entry invariant makes this unreachable
		}
		if w*g.lambda < g.cfg.PruneBelow {
			g.weights.del(e.key)
			retired = append(retired, retiredPair{key: e.key, w: w})
			g.stats.Retired++
			continue
		}
		exp := g.expiryLambda(w)
		if exp > g.lambda {
			exp = g.lambda
		}
		g.heapPush(retireEntry{key: e.key, expLambda: exp})
	}
	slices.SortFunc(retired, func(x, y retiredPair) int {
		switch {
		case x.key < y.key:
			return -1
		case x.key > y.key:
			return 1
		}
		return 0
	})
	for _, r := range retired {
		a, b := r.key.vertices()
		g.pending = append(g.pending, Update{A: a, B: b, Delta: -r.w})
		g.stats.DecayUpdates++
	}
	g.retiredBuf = retired
}

// renormalize folds the cumulative scale back into the stored weights
// (w' ← w'·λ, λ ← 1), queueing the per-pair deltas in sorted order and
// rebuilding the retirement heap against the fresh scale. It runs once per
// ~⌈150 / -log10(Decay)⌉ epochs, so the O(E log E) cost amortizes to a
// vanishing per-epoch share.
func (g *Aggregator) renormalize() {
	keys := g.weights.appendKeys(g.decayBuf[:0])
	slices.Sort(keys)
	g.decayBuf = keys
	g.stats.EpochPairTouches += len(keys)
	for _, k := range keys {
		w, _ := g.weights.get(k)
		rescaled := w * g.lambda
		g.weights.put(k, rescaled)
		if delta := rescaled - w; delta != 0 {
			a, b := k.vertices()
			g.pending = append(g.pending, Update{A: a, B: b, Delta: delta})
			g.stats.DecayUpdates++
		}
	}
	g.lambda = 1
	g.retire = g.retire[:0]
	if g.cfg.PruneBelow > 0 {
		for _, k := range keys {
			w, _ := g.weights.get(k)
			g.heapPush(retireEntry{key: k, expLambda: g.expiryLambda(w)})
		}
	}
	g.stats.Renorms++
}

// heapPush inserts an entry into the max-heap on expLambda. The heap is
// hand-rolled on the slice (rather than container/heap) to keep epoch ticks
// free of interface boxing allocations.
func (g *Aggregator) heapPush(e retireEntry) {
	g.retire = append(g.retire, e)
	i := len(g.retire) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if g.retire[parent].expLambda >= g.retire[i].expLambda {
			break
		}
		g.retire[parent], g.retire[i] = g.retire[i], g.retire[parent]
		i = parent
	}
}

// heapPop removes and returns the entry with the largest expiry scale.
func (g *Aggregator) heapPop() retireEntry {
	top := g.retire[0]
	last := len(g.retire) - 1
	g.retire[0] = g.retire[last]
	g.retire = g.retire[:last]
	i, n := 0, last
	for {
		l := 2*i + 1
		if l >= n {
			return top
		}
		big := l
		if r := l + 1; r < n && g.retire[r].expLambda > g.retire[l].expLambda {
			big = r
		}
		if g.retire[i].expLambda >= g.retire[big].expLambda {
			return top
		}
		g.retire[i], g.retire[big] = g.retire[big], g.retire[i]
		i = big
	}
}
