package stream

import (
	"fmt"
	"math"
	"slices"

	"dyndens/internal/graph"
)

// AggregatorConfig configures the document→update co-occurrence aggregation
// (the paper's Section 2 pre-processing): each document contributes DocWeight
// to the edge weight of every pair of entities it mentions, and all pair
// weights fade multiplicatively once per epoch, so a pair's weight is the
// decayed sum Σ DocWeight·Decay^(age in epochs) over the documents that
// co-mentioned it.
type AggregatorConfig struct {
	// EpochLength is the fading period in document time units; must be ≥ 1.
	// When a document's timestamp crosses into a later epoch, the decay for
	// every elapsed epoch is applied (as negative edge-weight deltas) before
	// the document's own co-occurrences are emitted.
	EpochLength int64
	// Decay is the multiplicative per-epoch fading factor in (0, 1]; 1 turns
	// fading off. Defaults to 0.5.
	Decay float64
	// DocWeight is the weight one co-occurrence contributes; must be
	// positive. Defaults to 1.
	DocWeight float64
	// PruneBelow retires pairs whose faded weight drops below this value: the
	// remaining weight is cancelled with one final negative delta and the
	// pair is dropped from the aggregation state, bounding memory by the set
	// of recently co-mentioned pairs rather than all pairs ever seen.
	// Defaults to 1e-3; a negative value disables pruning (every pair is
	// tracked forever).
	PruneBelow float64
}

func (c AggregatorConfig) withDefaults() AggregatorConfig {
	if c.Decay == 0 {
		c.Decay = 0.5
	}
	if c.DocWeight == 0 {
		c.DocWeight = 1
	}
	switch {
	case c.PruneBelow == 0:
		c.PruneBelow = 1e-3
	case c.PruneBelow < 0:
		c.PruneBelow = 0
	}
	return c
}

// Validate reports configuration errors.
func (c AggregatorConfig) Validate() error {
	switch {
	case c.EpochLength < 1:
		return fmt.Errorf("stream: epoch length must be ≥ 1, got %d", c.EpochLength)
	case c.Decay <= 0 || c.Decay > 1:
		return fmt.Errorf("stream: decay %v outside (0, 1]", c.Decay)
	case c.DocWeight <= 0 || math.IsInf(c.DocWeight, 0) || math.IsNaN(c.DocWeight):
		return fmt.Errorf("stream: document weight %v must be positive and finite", c.DocWeight)
	}
	return nil
}

// AggregatorStats summarises the work an Aggregator has performed.
type AggregatorStats struct {
	Docs         int   // documents consumed
	PairUpdates  int   // positive co-occurrence updates emitted
	DecayUpdates int   // negative fading updates emitted
	Retired      int   // pairs fully cancelled and dropped by PruneBelow
	Epochs       int64 // fading epochs applied
	TrackedPairs int   // pairs currently carrying weight
}

// String formats the one-line summary printed by the stories CLI.
func (s AggregatorStats) String() string {
	return fmt.Sprintf("aggregate{docs=%d pair-updates=%d decay-updates=%d retired=%d epochs=%d tracked-pairs=%d}",
		s.Docs, s.PairUpdates, s.DecayUpdates, s.Retired, s.Epochs, s.TrackedPairs)
}

// pairKey packs an ordered vertex pair (a < b) into one comparable word.
type pairKey uint64

func makePairKey(a, b graph.Vertex) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey(uint64(uint32(a))<<32 | uint64(uint32(b)))
}

func (k pairKey) vertices() (a, b graph.Vertex) {
	return graph.Vertex(k >> 32), graph.Vertex(uint32(k))
}

// Aggregator converts a DocumentSource into the edge-weight UpdateSource the
// engine consumes: it is the first stage of the documents→stories pipeline
// and slots into the existing Replay/ShardReplay drivers unchanged.
//
// For every document it emits one positive update of DocWeight per entity
// pair, and whenever the document time crosses an epoch boundary it first
// emits the fading of every tracked pair as negative updates (weight·(Decay^k
// − 1) for k elapsed epochs), retiring pairs that fall below PruneBelow. The
// aggregator mirrors the exact weight the engine's graph holds for each pair
// — the engine applies every delta the aggregator emits and nothing else —
// so decayed weights never drift and the clamp-at-zero path is never hit.
//
// Emission order is deterministic: a document's pairs are emitted in sorted
// order (documents carry sorted entity sets) and decay updates are emitted in
// sorted pair order, so equal document streams produce equal update streams,
// which is what makes the end-to-end story pipeline reproducible and
// shard-count independent.
type Aggregator struct {
	cfg     AggregatorConfig
	docs    DocumentSource
	weights map[pairKey]float64

	started  bool
	epoch    int64 // current fading epoch (time / EpochLength)
	lastTime int64

	pending  []Update
	pos      int
	decayEnd int // pending[:decayEnd] is the epoch-tick decay burst, the rest the document's pairs

	stats    AggregatorStats
	decayBuf []pairKey // reusable sorted-key scratch for epoch ticks
}

// NewAggregator wires docs through the co-occurrence aggregation. It returns
// an error for invalid configurations.
func NewAggregator(docs DocumentSource, cfg AggregatorConfig) (*Aggregator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Aggregator{cfg: cfg, docs: docs, weights: make(map[pairKey]float64)}, nil
}

// MustAggregator is NewAggregator that panics on error; for tests and
// benchmarks with known-good configurations.
func MustAggregator(docs DocumentSource, cfg AggregatorConfig) *Aggregator {
	a, err := NewAggregator(docs, cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Config returns the effective configuration (with defaults applied).
func (g *Aggregator) Config() AggregatorConfig { return g.cfg }

// Stats returns a snapshot of the work counters.
func (g *Aggregator) Stats() AggregatorStats {
	s := g.stats
	s.TrackedPairs = len(g.weights)
	return s
}

// Weight returns the aggregator's current faded weight for the pair {a, b}
// (0 if untracked). After a full drain through an engine this equals the
// engine graph's edge weight up to float rounding.
func (g *Aggregator) Weight(a, b graph.Vertex) float64 {
	return g.weights[makePairKey(a, b)]
}

// Next implements UpdateSource: it replays the queued deltas of the current
// document (and any epoch tick that preceded it) and pulls the next document
// when the queue runs dry.
func (g *Aggregator) Next() (Update, error) {
	for g.pos >= len(g.pending) {
		if err := g.ingest(); err != nil {
			return Update{}, err
		}
	}
	u := g.pending[g.pos]
	g.pos++
	return u, nil
}

// NextBatch implements BatchSource: the queued deltas are handed out in their
// natural coalescible groups — each epoch tick's decay burst as one batch
// (Decay true) and each document's positive co-occurrence deltas as another —
// so a batched replay ships one ProcessBatch per epoch tick or document
// instead of one Process per pair. Groups follow the same deterministic order
// Next yields individual updates in; mixing Next and NextBatch on one
// aggregator hands out the remainder of the current group first.
func (g *Aggregator) NextBatch() (Batch, error) {
	for g.pos >= len(g.pending) {
		if err := g.ingest(); err != nil {
			return Batch{}, err
		}
	}
	if g.pos < g.decayEnd {
		b := Batch{Updates: g.pending[g.pos:g.decayEnd], Decay: true}
		g.pos = g.decayEnd
		return b, nil
	}
	b := Batch{Updates: g.pending[g.pos:]}
	g.pos = len(g.pending)
	return b, nil
}

// ingest consumes one document, queueing its epoch-tick decay (if any) and
// co-occurrence updates.
func (g *Aggregator) ingest() (err error) {
	doc, err := g.docs.Next()
	if err != nil {
		return err // io.EOF ends the update stream with the document stream
	}
	if g.started && doc.Time < g.lastTime {
		return fmt.Errorf("stream: document time went backwards: %d after %d", doc.Time, g.lastTime)
	}
	g.pending = g.pending[:0]
	g.pos = 0
	g.stats.Docs++

	epoch := doc.Time / g.cfg.EpochLength
	if !g.started {
		g.started = true
		g.epoch = epoch
	} else if epoch > g.epoch {
		g.applyDecay(epoch - g.epoch)
		g.epoch = epoch
	}
	g.decayEnd = len(g.pending)
	g.lastTime = doc.Time

	ents := doc.Entities
	for i := 0; i < len(ents); i++ {
		for j := i + 1; j < len(ents); j++ {
			a, b := ents[i], ents[j]
			g.weights[makePairKey(a, b)] += g.cfg.DocWeight
			g.pending = append(g.pending, Update{A: a, B: b, Delta: g.cfg.DocWeight})
			g.stats.PairUpdates++
		}
	}
	return nil
}

// applyDecay fades every tracked pair by Decay^elapsed, queueing the negative
// deltas in sorted pair order and retiring pairs below the prune threshold.
func (g *Aggregator) applyDecay(elapsed int64) {
	g.stats.Epochs += elapsed
	factor := math.Pow(g.cfg.Decay, float64(elapsed))
	if factor == 1 {
		return
	}
	keys := g.decayBuf[:0]
	for k := range g.weights {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	g.decayBuf = keys
	for _, k := range keys {
		w := g.weights[k]
		faded := w * factor
		var delta float64
		if faded < g.cfg.PruneBelow {
			delta = -w
			delete(g.weights, k)
			g.stats.Retired++
		} else {
			delta = faded - w
			g.weights[k] = faded
		}
		if delta == 0 {
			continue
		}
		a, b := k.vertices()
		g.pending = append(g.pending, Update{A: a, B: b, Delta: delta})
		g.stats.DecayUpdates++
	}
}
