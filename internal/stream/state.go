package stream

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"dyndens/internal/graph"
)

// This file is the aggregation half of crash recovery (internal/persist).
// Snapshots are cut only at drained batch boundaries — every queued update of
// the last ingested document handed out and processed — so the persisted
// state is exactly the weight table, the cumulative scale, and the epoch
// clock. Because the aggregator is deterministic ("equal document streams
// produce equal update streams"), replaying the logged documents through a
// restored aggregator regenerates the exact update stream the crashed
// process would have produced.

// ErrStopped is the sentinel a replay boundary hook returns to stop the run
// cleanly between batches: Run/RunBatches return it with the pipeline
// drained, which is how signal-aware CLI drivers cut a final checkpoint and
// print stats instead of dying mid-update.
var ErrStopped = errors.New("stream: replay stopped at boundary")

// ValidateThresholdScale checks that scale is a cumulative decay scale a
// well-formed rescaled stream can carry: finite and in (0, 1]. The replay
// drivers call it before handing threshold units to an engine, so corrupt
// replayed data surfaces as a returned error at the stream seam instead of a
// panic inside the engine (whose own check guards a caller invariant).
func ValidateThresholdScale(scale float64) error {
	if math.IsNaN(scale) || scale <= 0 || scale > 1 {
		return fmt.Errorf("stream: threshold batch scale %v outside (0, 1]", scale)
	}
	return nil
}

// Drained reports whether the aggregator has handed out every queued update
// of the last ingested document — the only state an Aggregator snapshot can
// be cut at (mid-buffer positions are not persisted; the recovering process
// re-derives them by replaying the document).
func (g *Aggregator) Drained() bool {
	return g.pos >= len(g.pending) && !g.decayGroup
}

// AggregatorPair is one persisted weight-table entry (a < b; normalized
// weight in rescaled mode).
type AggregatorPair struct {
	A, B graph.Vertex
	W    float64
}

// RetireEntryState is one persisted lazy-retirement heap entry.
type RetireEntryState struct {
	A, B      graph.Vertex
	ExpLambda float64
}

// AggregatorState is the persisted fading state of an Aggregator. Pairs are
// sorted by canonical pair key; Retire preserves the heap slice verbatim so
// a restored aggregator pops retirements exactly like the crashed one.
type AggregatorState struct {
	Started  bool
	Epoch    int64
	LastTime int64
	Lambda   float64
	Pairs    []AggregatorPair
	Retire   []RetireEntryState
}

// ExportState captures the aggregator's fading state. It fails unless the
// aggregator is Drained — the only boundary recovery can resume from.
func (g *Aggregator) ExportState() (AggregatorState, error) {
	if !g.Drained() {
		return AggregatorState{}, fmt.Errorf("stream: aggregator export requires a drained batch boundary")
	}
	st := AggregatorState{
		Started:  g.started,
		Epoch:    g.epoch,
		LastTime: g.lastTime,
		Lambda:   g.lambda,
	}
	keys := g.weights.appendKeys(nil)
	slices.Sort(keys)
	st.Pairs = make([]AggregatorPair, len(keys))
	for i, k := range keys {
		w, _ := g.weights.get(k)
		a, b := k.vertices()
		st.Pairs[i] = AggregatorPair{A: a, B: b, W: w}
	}
	st.Retire = make([]RetireEntryState, len(g.retire))
	for i, e := range g.retire {
		a, b := e.key.vertices()
		st.Retire[i] = RetireEntryState{A: a, B: b, ExpLambda: e.expLambda}
	}
	return st, nil
}

// NewAggregatorFromState builds an aggregator over docs resuming from an
// exported state: the weight table, sorted sweep order (exact mode), lazy
// retirement heap (rescaled mode), cumulative scale, and epoch clock all
// come back exactly. docs must be the remainder of the original document
// stream (persist chains WAL-replayed documents with the skipped-ahead live
// source). Validation errors are returned, not panicked: the state may come
// from a damaged snapshot.
func NewAggregatorFromState(docs DocumentSource, cfg AggregatorConfig, st AggregatorState) (*Aggregator, error) {
	g, err := NewAggregator(docs, cfg)
	if err != nil {
		return nil, err
	}
	if math.IsNaN(st.Lambda) || st.Lambda <= 0 || st.Lambda > 1 {
		return nil, fmt.Errorf("stream: restored scale %v outside (0, 1]", st.Lambda)
	}
	if g.cfg.DecayMode == DecayExact && st.Lambda != 1 {
		return nil, fmt.Errorf("stream: restored scale %v in exact decay mode", st.Lambda)
	}
	g.started = st.Started
	g.epoch = st.Epoch
	g.lastTime = st.LastTime
	g.lambda = st.Lambda
	for _, p := range st.Pairs {
		if p.A >= p.B {
			return nil, fmt.Errorf("stream: restored pair (%d, %d) not in canonical order", p.A, p.B)
		}
		if math.IsNaN(p.W) || math.IsInf(p.W, 0) || p.W <= 0 {
			return nil, fmt.Errorf("stream: restored pair (%d, %d) has invalid weight %v", p.A, p.B, p.W)
		}
		k := makePairKey(p.A, p.B)
		if _, tracked := g.weights.get(k); tracked {
			return nil, fmt.Errorf("stream: restored pair (%d, %d) duplicated", p.A, p.B)
		}
		g.weights.put(k, p.W)
		if g.cfg.DecayMode == DecayExact {
			g.sortedKeys = append(g.sortedKeys, k)
		}
	}
	if g.cfg.DecayMode == DecayExact && !slices.IsSorted(g.sortedKeys) {
		slices.Sort(g.sortedKeys)
	}
	// The heap slice is persisted verbatim; the heap property is positional,
	// so copying it back preserves pop order bit-for-bit.
	g.retire = make([]retireEntry, len(st.Retire))
	for i, e := range st.Retire {
		if math.IsNaN(e.ExpLambda) || e.ExpLambda < 0 {
			return nil, fmt.Errorf("stream: restored retire entry (%d, %d) has invalid expiry scale %v", e.A, e.B, e.ExpLambda)
		}
		g.retire[i] = retireEntry{key: makePairKey(e.A, e.B), expLambda: e.ExpLambda}
	}
	return g, nil
}
