// Package brute provides offline, exhaustive solutions to the Engagement
// problem. They serve two purposes in this repository: as ground truth for
// correctness tests of the incremental DynDens engine, and as the "full
// recomputation" comparison points of the paper's evaluation (Section 5.2 and
// Section 6.2).
//
// Two enumeration strategies are provided:
//
//   - EnumerateAll examines every vertex subset of cardinality 2..Nmax. It is
//     exponential in the number of vertices and intended only for small test
//     graphs, but it is the most trustworthy oracle because it makes no
//     structural assumptions (it finds dense subgraphs containing vertices
//     disconnected from the rest of the subgraph, which arise around
//     too-dense subgraphs).
//   - EnumerateConnected grows connected subgraphs only, which matches the
//     subgraphs DynDens represents explicitly and scales to the graphs used
//     in benchmarks.
package brute

import (
	"sort"

	"dyndens/internal/density"
	"dyndens/internal/graph"
	"dyndens/internal/vset"
)

// Result is a dense (or output-dense) subgraph found by an offline
// enumeration.
type Result struct {
	Set     vset.Set
	Score   float64
	Density float64
}

// Params configures an offline enumeration.
type Params struct {
	Measure density.Measure
	T       float64 // report subgraphs with density ≥ T
	Nmax    int     // maximum cardinality
}

// EnumerateAll returns every vertex subset C with 2 ≤ |C| ≤ Nmax and
// dens(C) ≥ T, considering all subsets of the graph's fixed vertex universe
// (every vertex that ever carried an edge — a currently isolated vertex still
// participates in supergraphs of too-dense subgraphs). Cost is O(C(V, Nmax));
// use only on small graphs.
func EnumerateAll(g *graph.Graph, p Params) []Result {
	vertices := g.KnownVertices()
	var out []Result
	var rec func(start int, cur vset.Set, score float64)
	rec = func(start int, cur vset.Set, score float64) {
		n := cur.Len()
		if n >= 2 && density.Density(p.Measure, score, n) >= p.T-1e-12 {
			out = append(out, Result{Set: cur.Clone(), Score: score, Density: density.Density(p.Measure, score, n)})
		}
		if n == p.Nmax {
			return
		}
		for i := start; i < len(vertices); i++ {
			v := vertices[i]
			rec(i+1, append(cur, v), score+g.ScoreWith(cur, v))
		}
	}
	rec(0, nil, 0)
	sortResults(out)
	return out
}

// EnumerateConnected returns every connected vertex subset C with
// 2 ≤ |C| ≤ Nmax and dens(C) ≥ T. Subgraphs containing vertices with no edge
// into the rest of the subgraph are excluded (they only arise as supergraphs
// of too-dense subgraphs and are the subgraphs DynDens represents
// implicitly).
func EnumerateConnected(g *graph.Graph, p Params) []Result {
	seen := make(map[string]bool)
	var out []Result
	consider := func(c vset.Set, score float64) {
		k := c.Key()
		if seen[k] {
			return
		}
		seen[k] = true
		n := c.Len()
		if d := density.Density(p.Measure, score, n); d >= p.T-1e-12 {
			out = append(out, Result{Set: c.Clone(), Score: score, Density: d})
		}
	}
	visited := make(map[string]bool)
	var grow func(c vset.Set, score float64)
	grow = func(c vset.Set, score float64) {
		k := c.Key()
		if visited[k] {
			return
		}
		visited[k] = true
		consider(c, score)
		if c.Len() == p.Nmax {
			return
		}
		// Offline enumeration recurses while iterating the merge result, so
		// each frame needs its own buffer (the engine solves this with a free
		// list; here a per-frame allocation is fine).
		var buf graph.NeighborhoodBuf
		ys, adds := g.NeighborhoodScores(c, &buf)
		for i, y := range ys {
			grow(c.Add(y), score+adds[i])
		}
	}
	g.Edges(func(u, v graph.Vertex, w float64) {
		grow(vset.New(u, v), w)
	})
	sortResults(out)
	return out
}

// TopK returns the k densest connected subgraphs with cardinality in
// [2, Nmax], regardless of any threshold. It implements the offline Top-k
// variant of Engagement discussed in Section 4.2.2 by exhaustive connected
// enumeration (tractable at the scales used here).
func TopK(g *graph.Graph, m density.Measure, nmax, k int) []Result {
	all := EnumerateConnected(g, Params{Measure: m, T: 0, Nmax: nmax})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Keys returns the canonical set keys of the results, sorted; convenient for
// comparing against other enumerations in tests.
func Keys(rs []Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Set.Key()
	}
	sort.Strings(out)
	return out
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Density != rs[j].Density {
			return rs[i].Density > rs[j].Density
		}
		if rs[i].Set.Len() != rs[j].Set.Len() {
			return rs[i].Set.Len() < rs[j].Set.Len()
		}
		return rs[i].Set.Key() < rs[j].Set.Key()
	})
}
