package brute

import (
	"math"
	"testing"

	"dyndens/internal/density"
	"dyndens/internal/graph"
)

// paperGraph builds the entity graph of Figure 2(a) in the paper. Edge
// weights: the five vertices 1..5 with the weights used by the execution
// example (after reverse-engineering the densities listed in Figure 2(b)).
func paperGraph() *graph.Graph {
	g := graph.New()
	g.SetWeight(1, 2, 0.8)
	g.SetWeight(1, 3, 1.0)
	g.SetWeight(1, 4, 1.0)
	g.SetWeight(2, 3, 1.1)
	g.SetWeight(2, 4, 1.0)
	g.SetWeight(3, 4, 1.0)
	g.SetWeight(2, 5, 0.3)
	return g
}

func TestEnumerateAllOnPaperExample(t *testing.T) {
	g := paperGraph()
	res := EnumerateAll(g, Params{Measure: density.AvgWeight, T: 1.0, Nmax: 4})
	keys := Keys(res)
	want := []string{"1,3", "1,3,4", "1,4", "2,3", "2,3,4", "2,4", "3,4"}
	if len(keys) != len(want) {
		t.Fatalf("EnumerateAll = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("EnumerateAll = %v, want %v", keys, want)
		}
	}
	// Spot-check a density value from Figure 2(b): dens({2,3,4}) ≈ 1.033.
	for _, r := range res {
		if r.Set.Key() == "2,3,4" {
			if math.Abs(r.Density-(1.1+1.0+1.0)/3) > 1e-9 {
				t.Errorf("dens({2,3,4}) = %v", r.Density)
			}
		}
	}
}

func TestEnumerateAllAfterPaperUpdate(t *testing.T) {
	// After the example's update of edge (1,2) from 0.8 to 0.95, the newly
	// output-dense subgraphs are {1,2,3} and {1,2,3,4}.
	g := paperGraph()
	g.SetWeight(1, 2, 0.95)
	res := EnumerateAll(g, Params{Measure: density.AvgWeight, T: 1.0, Nmax: 4})
	keys := Keys(res)
	want := []string{"1,2,3", "1,2,3,4", "1,3", "1,3,4", "1,4", "2,3", "2,3,4", "2,4", "3,4"}
	if len(keys) != len(want) {
		t.Fatalf("got %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("got %v, want %v", keys, want)
		}
	}
}

func TestEnumerateConnectedMatchesAllOnConnectedGraph(t *testing.T) {
	// On a graph with no too-dense subgraphs and threshold above 0, every
	// dense subgraph of interest is connected, so the two oracles agree.
	g := paperGraph()
	p := Params{Measure: density.AvgWeight, T: 0.9, Nmax: 4}
	all := Keys(EnumerateAll(g, p))
	conn := Keys(EnumerateConnected(g, p))
	if len(all) != len(conn) {
		t.Fatalf("all=%v conn=%v", all, conn)
	}
	for i := range all {
		if all[i] != conn[i] {
			t.Fatalf("all=%v conn=%v", all, conn)
		}
	}
}

func TestEnumerateConnectedExcludesDisconnected(t *testing.T) {
	// Two disjoint heavy edges: {1,2,3,4} has density 1.0 under AvgDegree
	// (score 4 / S(4)=4) but is disconnected as a 4-set minus... actually
	// {1,2} ∪ {3,4} is a disconnected subgraph; EnumerateAll finds it (if
	// dense), EnumerateConnected must not.
	g := graph.New()
	g.SetWeight(1, 2, 2.0)
	g.SetWeight(3, 4, 2.0)
	p := Params{Measure: density.AvgDegree, T: 0.9, Nmax: 4}
	all := Keys(EnumerateAll(g, p))
	conn := Keys(EnumerateConnected(g, p))
	foundAll, foundConn := false, false
	for _, k := range all {
		if k == "1,2,3,4" {
			foundAll = true
		}
	}
	for _, k := range conn {
		if k == "1,2,3,4" {
			foundConn = true
		}
	}
	if !foundAll {
		t.Fatal("EnumerateAll should find the disconnected union {1,2,3,4}")
	}
	if foundConn {
		t.Fatal("EnumerateConnected must not report disconnected subgraphs")
	}
}

func TestTopK(t *testing.T) {
	g := paperGraph()
	top := TopK(g, density.AvgWeight, 4, 3)
	if len(top) != 3 {
		t.Fatalf("TopK returned %d results", len(top))
	}
	if top[0].Set.Key() != "2,3" {
		t.Errorf("densest subgraph = %v (density %v), want {2,3}", top[0].Set, top[0].Density)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Density > top[i-1].Density+1e-12 {
			t.Error("TopK results not sorted by density")
		}
	}
}

func TestCardinalityBound(t *testing.T) {
	g := paperGraph()
	for _, r := range EnumerateAll(g, Params{Measure: density.AvgDegree, T: 0.1, Nmax: 3}) {
		if r.Set.Len() > 3 {
			t.Fatalf("result exceeds Nmax: %v", r.Set)
		}
	}
}
