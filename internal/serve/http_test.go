package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dyndens/internal/core"
	"dyndens/internal/story"
	"dyndens/internal/vset"
)

// testBuilder hand-drives a builder to a small deterministic table: one
// 3-entity story at density 3 and one 2-entity story at density 5.
func testBuilder(t *testing.T) *Builder {
	t.Helper()
	b := NewBuilder(story.MustTracker(story.Config{Grace: 10}))
	b.Emit(core.Event{Kind: core.BecameOutputDense, Set: vset.New(1, 2, 3), Density: 3.0})
	b.Emit(core.Event{Kind: core.BecameOutputDense, Set: vset.New(10, 11), Density: 5.0})
	b.EndUpdate()
	if err := validateSnapshot(b.View().Snapshot()); err != nil {
		t.Fatal(err)
	}
	return b
}

func getJSON(t *testing.T, srv *httptest.Server, path string, status int, out any) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != status {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, status)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	b := testBuilder(t)
	srv := httptest.NewServer(NewServer(b.View(), NewHub()).Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}

	var top struct {
		Epoch   uint64 `json:"epoch"`
		Ranked  int    `json:"ranked"`
		Stories []struct {
			ID       story.ID `json:"id"`
			Density  float64  `json:"density"`
			Entities []int32  `json:"entities"`
			NumSubs  int      `json:"subgraph_count"`
			Fading   bool     `json:"fading"`
		} `json:"stories"`
	}
	getJSON(t, srv, "/stories/top?k=1", http.StatusOK, &top)
	if top.Epoch != 1 || top.Ranked != 2 || len(top.Stories) != 1 {
		t.Fatalf("top: %+v", top)
	}
	if top.Stories[0].Density != 5.0 || len(top.Stories[0].Entities) != 2 {
		t.Fatalf("top story should be the density-5 pair, got %+v", top.Stories[0])
	}
	bestID := top.Stories[0].ID

	getJSON(t, srv, "/stories/top", http.StatusOK, &top)
	if len(top.Stories) != 2 {
		t.Fatalf("default top should rank both stories, got %d", len(top.Stories))
	}
	if top.Stories[0].Density < top.Stories[1].Density {
		t.Fatalf("top unordered: %+v", top.Stories)
	}
	getJSON(t, srv, "/stories/top?k=junk", http.StatusBadRequest, nil)

	var one struct {
		Epoch uint64 `json:"epoch"`
		Story struct {
			ID        story.ID      `json:"id"`
			Subgraphs []SubgraphRef `json:"subgraphs"`
		} `json:"story"`
	}
	getJSON(t, srv, fmt.Sprintf("/stories/%d", bestID), http.StatusOK, &one)
	if one.Story.ID != bestID || len(one.Story.Subgraphs) != 1 || one.Story.Subgraphs[0].Density != 5.0 {
		t.Fatalf("story detail: %+v", one.Story)
	}
	getJSON(t, srv, "/stories/999", http.StatusNotFound, nil)
	getJSON(t, srv, "/stories/junk", http.StatusBadRequest, nil)

	var ent struct {
		Entity  int64 `json:"entity"`
		Stories []struct {
			ID story.ID `json:"id"`
		} `json:"stories"`
	}
	getJSON(t, srv, "/entities/10", http.StatusOK, &ent)
	if len(ent.Stories) != 1 || ent.Stories[0].ID != bestID {
		t.Fatalf("entity lookup: %+v", ent)
	}
	getJSON(t, srv, "/entities/7777", http.StatusOK, &ent)
	if len(ent.Stories) != 0 {
		t.Fatalf("unknown entity should match no stories: %+v", ent)
	}
	getJSON(t, srv, "/entities/junk", http.StatusBadRequest, nil)

	var stats struct {
		Epoch   uint64 `json:"epoch"`
		Stories int    `json:"stories"`
		Writer  any    `json:"writer"`
	}
	getJSON(t, srv, "/stats", http.StatusOK, &stats)
	if stats.Epoch != 1 || stats.Stories != 2 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestHTTPStatsWriterExtra(t *testing.T) {
	b := testBuilder(t)
	s := NewServer(b.View(), nil)
	s.Extra = func() any { return map[string]int{"ingested": 42} }
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	var stats struct {
		Writer map[string]int `json:"writer"`
	}
	getJSON(t, srv, "/stats", http.StatusOK, &stats)
	if stats.Writer["ingested"] != 42 {
		t.Fatalf("writer extra missing: %+v", stats)
	}
	// No hub: the SSE endpoint is absent.
	getJSON(t, srv, "/events", http.StatusNotFound, nil)
}

// TestSSEStreamsRecords subscribes to /events and checks a lifecycle record
// produced while the subscription is live arrives as an SSE frame.
func TestSSEStreamsRecords(t *testing.T) {
	b := testBuilder(t)
	hub := NewHub()
	b.SetRecordSink(hub.Publish)
	srv := httptest.NewServer(NewServer(b.View(), hub).Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	// The handler sends a comment first; wait for it so the subscription is
	// registered before the writer produces the record.
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, ":") {
		t.Fatalf("expected SSE comment, got %q, %v", line, err)
	}
	for hub.Subscribers() == 0 {
		time.Sleep(time.Millisecond)
	}

	// A fresh, non-overlapping subgraph births a new story → one Born record.
	b.Emit(core.Event{Kind: core.BecameOutputDense, Set: vset.New(20, 21, 22), Density: 7.0})
	b.EndUpdate()

	deadline := time.After(5 * time.Second)
	got := make(chan string, 1)
	go func() {
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			if strings.HasPrefix(line, "data: ") {
				got <- strings.TrimSpace(strings.TrimPrefix(line, "data: "))
				return
			}
		}
	}()
	select {
	case data := <-got:
		var rec struct {
			Seq      uint64  `json:"seq"`
			Kind     string  `json:"kind"`
			Entities []int32 `json:"entities"`
		}
		if err := json.Unmarshal([]byte(data), &rec); err != nil {
			t.Fatalf("bad SSE payload %q: %v", data, err)
		}
		if rec.Kind != "born" || rec.Seq != 2 || len(rec.Entities) != 3 {
			t.Fatalf("unexpected record %+v", rec)
		}
	case <-deadline:
		t.Fatal("no SSE record within 5s")
	}
}

func TestHubNonBlockingPublish(t *testing.T) {
	hub := NewHub()
	id, ch := hub.Subscribe(1)
	r := story.Record{Seq: 1, Kind: story.Born, Story: 1}
	hub.Publish(r) // fills the buffer
	hub.Publish(r) // must not block; counted as a drop
	if d := hub.dropped.Load(); d != 1 {
		t.Fatalf("dropped = %d, want 1", d)
	}
	if d := hub.delivered.Load(); d != 1 {
		t.Fatalf("delivered = %d, want 1", d)
	}
	hub.Unsubscribe(id)
	if _, open := <-ch; !open {
		// first buffered record still readable, then closed
	}
	if _, open := <-ch; open {
		t.Fatal("channel should be closed after Unsubscribe")
	}
	hub.Publish(r) // no subscribers: no-op
	if hub.Subscribers() != 0 {
		t.Fatal("subscriber count should be 0")
	}
}
