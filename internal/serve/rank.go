package serve

import (
	"sort"

	"dyndens/internal/story"
)

// Rank is one entry of the density-ordered story ranking: a story ID with
// the density that positions it.
type Rank struct {
	Story   story.ID
	Density float64
}

// RankedIndex is the incrementally maintained density-ordered result set
// behind top-k story queries (cf. Nasir et al., "Fully Dynamic Top-k Densest
// Subgraphs": the ranked read path is an ordered structure kept current by
// the update stream, not a scan at query time). It holds one entry per live
// story, ordered by density descending with ties broken toward the lower
// (older) story ID.
//
// Set and Remove are the write-path operations the serving builder folds
// engine events into: a binary search plus an O(n) memmove on the order
// slice — n being the number of *live stories*, not the stream length — and
// the position map keeps them idempotent. TopK reads the first k entries and
// touches nothing else; the touched counter exists so tests can pin that
// no-scan property on an arbitrarily large index.
//
// The zero value is ready to use. RankedIndex is not safe for concurrent
// use; published Snapshots carry immutable clones of the order slice.
type RankedIndex struct {
	order []Rank
	pos   map[story.ID]int

	touched int // entries visited by the last TopK call (op-count pin)
}

// Len returns the number of ranked stories.
func (x *RankedIndex) Len() int { return len(x.order) }

// rankLess is the total order of the index: density descending, ties to the
// lower story ID.
func rankLess(a, b Rank) bool {
	if a.Density != b.Density {
		return a.Density > b.Density
	}
	return a.Story < b.Story
}

// Set inserts or repositions a story at the given density. A story already
// ranked at that density is left untouched.
func (x *RankedIndex) Set(id story.ID, density float64) {
	if x.pos == nil {
		x.pos = make(map[story.ID]int)
	}
	if i, ok := x.pos[id]; ok {
		if x.order[i].Density == density {
			return
		}
		x.removeAt(i)
	}
	r := Rank{Story: id, Density: density}
	i := sort.Search(len(x.order), func(j int) bool { return !rankLess(x.order[j], r) })
	x.order = append(x.order, Rank{})
	copy(x.order[i+1:], x.order[i:])
	x.order[i] = r
	for j := i; j < len(x.order); j++ {
		x.pos[x.order[j].Story] = j
	}
}

// Remove drops a story from the ranking; absent stories are a no-op.
func (x *RankedIndex) Remove(id story.ID) {
	if i, ok := x.pos[id]; ok {
		x.removeAt(i)
	}
}

func (x *RankedIndex) removeAt(i int) {
	delete(x.pos, x.order[i].Story)
	copy(x.order[i:], x.order[i+1:])
	x.order = x.order[:len(x.order)-1]
	for j := i; j < len(x.order); j++ {
		x.pos[x.order[j].Story] = j
	}
}

// Density returns the ranked density of a story, if it is ranked.
func (x *RankedIndex) Density(id story.ID) (float64, bool) {
	i, ok := x.pos[id]
	if !ok {
		return 0, false
	}
	return x.order[i].Density, true
}

// TopK appends the k highest-density entries (fewer if the index is smaller)
// to dst and returns it. It reads exactly min(k, Len) entries of the order
// slice — never the whole index — and allocates nothing when dst has
// capacity.
func (x *RankedIndex) TopK(dst []Rank, k int) []Rank {
	if k > len(x.order) {
		k = len(x.order)
	}
	x.touched = 0
	for i := 0; i < k; i++ {
		dst = append(dst, x.order[i])
		x.touched++
	}
	return dst
}

// Clone returns an immutable copy of the current order, highest density
// first — the form a published Snapshot carries.
func (x *RankedIndex) Clone() []Rank {
	if len(x.order) == 0 {
		return nil
	}
	out := make([]Rank, len(x.order))
	copy(out, x.order)
	return out
}
