package serve

import (
	"reflect"
	"testing"

	"dyndens/internal/story"
)

func ranked(x *RankedIndex) []Rank { return x.Clone() }

func TestRankedIndexOrdering(t *testing.T) {
	var x RankedIndex
	x.Set(3, 1.0)
	x.Set(1, 2.5)
	x.Set(2, 2.5) // ties break toward the lower ID
	x.Set(4, 0.5)
	want := []Rank{{1, 2.5}, {2, 2.5}, {3, 1.0}, {4, 0.5}}
	if got := ranked(&x); !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}

	// Reposition: story 4 overtakes everyone.
	x.Set(4, 9)
	want = []Rank{{4, 9}, {1, 2.5}, {2, 2.5}, {3, 1.0}}
	if got := ranked(&x); !reflect.DeepEqual(got, want) {
		t.Fatalf("after reposition: order = %v, want %v", got, want)
	}

	// Same-density Set is a no-op; Remove of absent ID is a no-op.
	x.Set(4, 9)
	x.Remove(99)
	if got := ranked(&x); !reflect.DeepEqual(got, want) {
		t.Fatalf("after no-ops: order = %v, want %v", got, want)
	}

	x.Remove(1)
	x.Remove(4)
	want = []Rank{{2, 2.5}, {3, 1.0}}
	if got := ranked(&x); !reflect.DeepEqual(got, want) {
		t.Fatalf("after removes: order = %v, want %v", got, want)
	}
	if d, ok := x.Density(2); !ok || d != 2.5 {
		t.Fatalf("Density(2) = %v, %v", d, ok)
	}
	if _, ok := x.Density(1); ok {
		t.Fatal("Density(1) should be gone")
	}
}

// TestRankedIndexTopKNoScan pins the incremental-serving property from the
// issue: answering top-k touches exactly k entries of the ranking, however
// large the story table is — no full scan.
func TestRankedIndexTopKNoScan(t *testing.T) {
	var x RankedIndex
	const n = 100_000
	// Insert in rank order (descending density) so construction appends at
	// the tail; what's under test is TopK, not bulk loading.
	for i := 1; i <= n; i++ {
		x.Set(story.ID(i), float64(n-i))
	}
	dst := make([]Rank, 0, 10)
	dst = x.TopK(dst, 10)
	if len(dst) != 10 {
		t.Fatalf("TopK returned %d entries", len(dst))
	}
	if x.touched != 10 {
		t.Fatalf("TopK touched %d entries of a %d-entry index, want exactly 10", x.touched, n)
	}
	for i := 1; i < len(dst); i++ {
		if rankLess(dst[i], dst[i-1]) {
			t.Fatalf("TopK result unordered at %d: %v then %v", i, dst[i-1], dst[i])
		}
	}

	// And with capacity available, zero allocations.
	allocs := testing.AllocsPerRun(100, func() {
		dst = x.TopK(dst[:0], 10)
	})
	if allocs != 0 {
		t.Fatalf("TopK allocated %.1f times per run, want 0", allocs)
	}
}

// TestSnapshotTopZeroAlloc pins the read path the HTTP handler and load
// harness use: Snapshot.Top is a sub-slice of the immutable ranking, no
// allocation, no table scan.
func TestSnapshotTopZeroAlloc(t *testing.T) {
	s := &Snapshot{Ranked: make([]Rank, 50_000)}
	for i := range s.Ranked {
		s.Ranked[i] = Rank{Story: story.ID(i + 1), Density: float64(len(s.Ranked) - i)}
	}
	var got []Rank
	allocs := testing.AllocsPerRun(100, func() {
		got = s.Top(10)
	})
	if allocs != 0 {
		t.Fatalf("Snapshot.Top allocated %.1f times per run, want 0", allocs)
	}
	if len(got) != 10 || got[0].Story != 1 {
		t.Fatalf("Top(10) = %v", got[:min(len(got), 3)])
	}
	if n := len(s.Top(1 << 30)); n != len(s.Ranked) {
		t.Fatalf("oversized k returned %d", n)
	}
	if n := len(s.Top(-1)); n != 0 {
		t.Fatalf("negative k returned %d", n)
	}
	// The prefix is capacity-clipped: appending to it cannot clobber the
	// shared ranking.
	top := s.Top(3)
	_ = append(top, Rank{Story: 999})
	if s.Ranked[3].Story == 999 {
		t.Fatal("append through Top() corrupted the shared ranking")
	}
}
