package serve

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i))
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100}}
	for _, c := range cases {
		if got := percentile(append([]time.Duration(nil), samples...), c.q); got != c.want {
			t.Errorf("p%v = %v, want %v", c.q*100, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	if got := percentile([]time.Duration{7}, 0.01); got != 7 {
		t.Errorf("singleton percentile = %v, want 7", got)
	}
}

// TestLoadStatsZeroWall pins the zero-elapsed guard: a run whose measured
// wall time rounds to zero must report 0 QPS, not +Inf — non-finite floats
// make json.Marshal fail and would corrupt bench -json output.
func TestLoadStatsZeroWall(t *testing.T) {
	st := LoadStats{Readers: 2, Reads: 1000, Wall: 0}
	if q := st.QPS(); q != 0 {
		t.Fatalf("QPS of zero-wall run = %v, want 0", q)
	}
	out, err := json.Marshal(struct {
		QPS float64 `json:"read_qps"`
		LoadStats
	}{QPS: st.QPS(), LoadStats: st})
	if err != nil {
		t.Fatalf("marshalling zero-duration stats: %v", err)
	}
	var back map[string]any
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if q := back["read_qps"].(float64); math.IsInf(q, 0) || math.IsNaN(q) {
		t.Fatalf("non-finite read_qps %v survived marshalling", q)
	}
}

func TestLoadHarness(t *testing.T) {
	b := testBuilder(t)
	l := StartLoad(b.View(), LoadConfig{Readers: 3, TopK: 2, SampleCap: 128, Seed: 1})
	time.Sleep(50 * time.Millisecond)
	st := l.Stop()

	if st.Readers != 3 || st.TopK != 2 {
		t.Fatalf("config not echoed: %+v", st)
	}
	if st.Reads == 0 {
		t.Fatal("closed-loop readers performed no reads")
	}
	if st.Samples == 0 || st.Samples > 3*128 {
		t.Fatalf("samples = %d, want within (0, %d]", st.Samples, 3*128)
	}
	if st.P50 > st.P95 || st.P95 > st.P99 {
		t.Fatalf("percentiles unordered: p50=%v p95=%v p99=%v", st.P50, st.P95, st.P99)
	}
	if st.QPS() <= 0 {
		t.Fatalf("QPS = %v, want > 0", st.QPS())
	}
}
