package serve

import (
	"sort"

	"dyndens/internal/core"
	"dyndens/internal/shard"
	"dyndens/internal/story"
	"dyndens/internal/vset"
)

// entryState is the builder's mutable record of one story: the lifecycle
// facts it learns from tracker records plus the live subgraphs (with the
// densities annotated on engine events) it attributes from the event stream.
type entryState struct {
	id       story.ID
	entities vset.Set
	keys     map[string]float64 // live subgraph key → density at last threshold crossing
	bornSeq  uint64
	lastSeq  uint64
	density  float64 // max over keys; last-known value while fading
}

type bufEvent struct {
	kind    core.EventKind
	key     string
	density float64
}

// Builder is the writer side of the serving layer. It sits in the sink
// position of the pipeline, wrapping a story.Tracker: every event is
// forwarded to the tracker (which keeps producing the canonical lifecycle
// records) and folded — together with the records the tracker emits — into
// an epoch-versioned story table that is published to a View as an immutable
// Snapshot at each update boundary that changed anything.
//
// Like the tracker it wraps, the Builder supports both delivery modes:
//
//   - single engine: install with Engine.SetSink (it implements
//     core.EventSink and core.UpdateBoundarySink);
//   - sharded: install with ShardedEngine.SetSeqSink (it implements
//     shard.SeqSink and infers boundaries from merger sequence numbers).
//
// The Builder runs on the writer goroutine (the merge goroutine in sharded
// mode) and is not safe for concurrent use; the View it publishes to is the
// concurrent read surface. NewBuilder installs the builder as the tracker's
// record sink — use Builder.SetRecordSink to observe records downstream.
//
// Boundary processing applies the update's lifecycle records first, in
// emission order (identities: born, split, merge, death, entity-set
// updates), then the update's events in the tracker's canonical order
// (became before ceased, then by key) to attribute subgraph keys and
// densities to their post-resolution owners via Tracker.OwnerOf. The
// resulting table matches Tracker.Stories() row for row — pinned by the
// conformance tests.
type Builder struct {
	tracker *story.Tracker
	view    *View

	pendingSeq uint64 // EmitSeq mode: sequence the buffered events belong to
	evs        []bufEvent
	recs       []story.Record
	onRecord   func(story.Record)

	entries  map[story.ID]*entryState
	keyOwner map[string]story.ID
	rank     RankedIndex
	byEntity map[vset.Vertex][]story.ID
	liveKeys []string // sorted

	dirty     map[story.ID]bool // stories whose Entry must be rebuilt (or dropped) this boundary
	keysDirty bool
	entDirty  bool
}

// NewBuilder wraps a tracker in a serving builder with a fresh View. The
// builder must be installed before the first update is processed, and it
// takes over the tracker's record sink.
func NewBuilder(tr *story.Tracker) *Builder {
	b := &Builder{
		tracker:  tr,
		view:     NewView(),
		entries:  make(map[story.ID]*entryState),
		keyOwner: make(map[string]story.ID),
		byEntity: make(map[vset.Vertex][]story.ID),
		dirty:    make(map[story.ID]bool),
	}
	tr.SetRecordSink(b.captureRecord)
	return b
}

// View returns the read surface the builder publishes to.
func (b *Builder) View() *View { return b.view }

// Tracker returns the wrapped tracker. Query it only from the writer
// goroutine, and only between updates.
func (b *Builder) Tracker() *story.Tracker { return b.tracker }

// SetRecordSink installs a callback invoked for every lifecycle record as
// the tracker produces it, in order — the hook the SSE hub and the serve CLI
// log hang off. The callback runs on the writer goroutine and must treat
// Record.Entities as read-only.
func (b *Builder) SetRecordSink(fn func(story.Record)) { b.onRecord = fn }

func (b *Builder) captureRecord(r story.Record) {
	b.recs = append(b.recs, r)
	b.view.records.Add(1)
	if b.onRecord != nil {
		b.onRecord(r)
	}
}

// Emit implements core.EventSink: the event is forwarded to the tracker and
// buffered (key and density only) until the boundary.
func (b *Builder) Emit(ev core.Event) {
	b.tracker.Emit(ev)
	b.evs = append(b.evs, bufEvent{kind: ev.Kind, key: ev.Set.Key(), density: ev.Density})
}

// EndUpdate implements core.UpdateBoundarySink.
func (b *Builder) EndUpdate() {
	b.tracker.EndUpdate()
	b.boundary(b.tracker.Seq())
}

// EmitSeq implements shard.SeqSink: a sequence change means the tracker
// resolved the previous update when the event was forwarded, so the builder
// folds that update's buffer before accepting the new event.
func (b *Builder) EmitSeq(ev shard.SeqEvent) {
	old := b.pendingSeq
	b.tracker.EmitSeq(ev)
	if old != 0 && ev.Seq != old {
		b.boundary(old)
	}
	b.pendingSeq = ev.Seq
	b.evs = append(b.evs, bufEvent{kind: ev.Event.Kind, key: ev.Event.Set.Key(), density: ev.Event.Density})
}

// Close resolves any buffered update, accounts for trailing event-free
// updates up to finalSeq (see Tracker.Close), and publishes the final
// snapshot.
func (b *Builder) Close(finalSeq uint64) {
	if b.pendingSeq != 0 {
		// Resolve the buffered update at its own sequence first — folding
		// its events at finalSeq would misdate LastSeq.
		b.tracker.Close(0)
		b.boundary(b.tracker.Seq())
		b.pendingSeq = 0
	}
	b.tracker.Close(finalSeq)
	b.boundary(b.tracker.Seq())
}

// boundary folds the buffered records and events of update s into the story
// table and publishes a new snapshot if anything changed. Boundaries that
// changed nothing — the common case on a fading stream — cost two atomic
// stores.
func (b *Builder) boundary(s uint64) {
	b.view.noteBoundary(s)
	if len(b.recs) == 0 && len(b.evs) == 0 {
		return
	}
	for _, r := range b.recs {
		b.applyRecord(r)
	}
	sort.SliceStable(b.evs, func(i, j int) bool {
		if b.evs[i].kind != b.evs[j].kind {
			return b.evs[i].kind < b.evs[j].kind
		}
		return b.evs[i].key < b.evs[j].key
	})
	for _, ev := range b.evs {
		b.applyEvent(s, ev)
	}
	b.publish(s)
	b.recs = b.recs[:0]
	b.evs = b.evs[:0]
	clear(b.dirty)
	b.keysDirty = false
	b.entDirty = false
}

// ensure returns the story's mutable state, creating it if needed, and marks
// it for rebuild at this boundary.
func (b *Builder) ensure(id story.ID) *entryState {
	e := b.entries[id]
	if e == nil {
		e = &entryState{id: id, keys: make(map[string]float64)}
		b.entries[id] = e
	}
	b.dirty[id] = true
	return e
}

// drop removes a story (death or merge-absorption). Keys the story still
// owns are released defensively; on a merge they were reassigned first, so
// nothing is released here.
func (b *Builder) drop(id story.ID) {
	e := b.entries[id]
	if e == nil {
		return
	}
	for k := range e.keys {
		if b.keyOwner[k] == id {
			delete(b.keyOwner, k)
			b.removeLiveKey(k)
		}
	}
	b.setEntities(e, nil)
	delete(b.entries, id)
	b.dirty[id] = true
}

func (b *Builder) applyRecord(r story.Record) {
	switch r.Kind {
	case story.Born, story.Split:
		e := b.ensure(r.Story)
		e.bornSeq, e.lastSeq = r.Seq, r.Seq
		b.setEntities(e, r.Entities)
	case story.Updated:
		e := b.ensure(r.Story)
		e.lastSeq = r.Seq
		b.setEntities(e, r.Entities)
	case story.Merged:
		// r.Story was absorbed into r.Other; the record carries the
		// absorber's post-merge entity set.
		dst := b.ensure(r.Other)
		if src := b.entries[r.Story]; src != nil {
			for k, d := range src.keys {
				dst.keys[k] = d
				b.keyOwner[k] = r.Other
			}
			clear(src.keys)
			b.drop(r.Story)
		}
		dst.lastSeq = r.Seq
		b.setEntities(dst, r.Entities)
	case story.Died:
		b.drop(r.Story)
	}
}

func (b *Builder) applyEvent(s uint64, ev bufEvent) {
	switch ev.kind {
	case core.BecameOutputDense:
		// Attribute to the post-resolution owner; no owner means the
		// tracker filtered the subgraph out (MinCardinality).
		id, ok := b.tracker.OwnerOf(ev.key)
		if !ok {
			return
		}
		e := b.ensure(id)
		if _, had := e.keys[ev.key]; !had {
			b.insertLiveKey(ev.key)
		}
		e.keys[ev.key] = ev.density
		b.keyOwner[ev.key] = id
		e.lastSeq = s
	case core.CeasedOutputDense:
		id, ok := b.keyOwner[ev.key]
		if !ok {
			return
		}
		e := b.ensure(id)
		delete(e.keys, ev.key)
		delete(b.keyOwner, ev.key)
		b.removeLiveKey(ev.key)
		e.lastSeq = s
	}
}

// setEntities replaces a story's entity set, diffing old against new to keep
// the entity→stories postings current. Posting slices are copy-on-write:
// snapshots share them, so a changed posting is always a fresh slice.
func (b *Builder) setEntities(e *entryState, set vset.Set) {
	old := e.entities
	i, j := 0, 0
	for i < len(old) || j < len(set) {
		switch {
		case j >= len(set) || (i < len(old) && old[i] < set[j]):
			b.unpost(old[i], e.id)
			i++
		case i >= len(old) || old[i] > set[j]:
			b.post(set[j], e.id)
			j++
		default:
			i++
			j++
		}
	}
	e.entities = set
}

func (b *Builder) post(v vset.Vertex, id story.ID) {
	old := b.byEntity[v]
	i := sort.Search(len(old), func(k int) bool { return old[k] >= id })
	if i < len(old) && old[i] == id {
		return
	}
	ns := make([]story.ID, len(old)+1)
	copy(ns, old[:i])
	ns[i] = id
	copy(ns[i+1:], old[i:])
	b.byEntity[v] = ns
	b.entDirty = true
}

func (b *Builder) unpost(v vset.Vertex, id story.ID) {
	old := b.byEntity[v]
	i := sort.Search(len(old), func(k int) bool { return old[k] >= id })
	if i >= len(old) || old[i] != id {
		return
	}
	if len(old) == 1 {
		delete(b.byEntity, v)
	} else {
		ns := make([]story.ID, len(old)-1)
		copy(ns, old[:i])
		copy(ns[i:], old[i+1:])
		b.byEntity[v] = ns
	}
	b.entDirty = true
}

func (b *Builder) insertLiveKey(k string) {
	i := sort.SearchStrings(b.liveKeys, k)
	if i < len(b.liveKeys) && b.liveKeys[i] == k {
		return
	}
	b.liveKeys = append(b.liveKeys, "")
	copy(b.liveKeys[i+1:], b.liveKeys[i:])
	b.liveKeys[i] = k
	b.keysDirty = true
}

func (b *Builder) removeLiveKey(k string) {
	i := sort.SearchStrings(b.liveKeys, k)
	if i >= len(b.liveKeys) || b.liveKeys[i] != k {
		return
	}
	copy(b.liveKeys[i:], b.liveKeys[i+1:])
	b.liveKeys = b.liveKeys[:len(b.liveKeys)-1]
	b.keysDirty = true
}

// publish builds immutable entries for the dirty stories, folds their
// densities into the ranked index, and installs a new snapshot. Untouched
// entries, posting slices, the ranking, and the live-key universe are shared
// with the previous snapshot wherever nothing changed.
func (b *Builder) publish(s uint64) {
	prev := b.view.Snapshot()
	ns := &Snapshot{Epoch: s}

	ns.Stories = make(map[story.ID]*Entry, len(b.entries))
	for id, ent := range prev.Stories {
		if !b.dirty[id] {
			ns.Stories[id] = ent
		}
	}
	rankChanged := false
	for id := range b.dirty {
		e, ok := b.entries[id]
		if !ok {
			if before := b.rank.Len(); before > 0 {
				b.rank.Remove(id)
				rankChanged = rankChanged || b.rank.Len() != before
			}
			continue
		}
		ent := b.buildEntry(e)
		ns.Stories[id] = ent
		before, hadD := b.rank.Density(id)
		if ent.Fading {
			if hadD {
				b.rank.Remove(id)
				rankChanged = true
			}
		} else if !hadD || before != ent.Density {
			b.rank.Set(id, ent.Density)
			rankChanged = true
		}
	}

	if rankChanged {
		ns.Ranked = b.rank.Clone()
	} else {
		ns.Ranked = prev.Ranked
	}
	if b.entDirty {
		m := make(map[vset.Vertex][]story.ID, len(b.byEntity))
		for v, ids := range b.byEntity {
			m[v] = ids
		}
		ns.ByEntity = m
	} else {
		ns.ByEntity = prev.ByEntity
	}
	if b.keysDirty {
		ns.LiveKeys = append([]string(nil), b.liveKeys...)
	} else {
		ns.LiveKeys = prev.LiveKeys
	}
	b.view.publish(ns)
}

// buildEntry freezes a story's current state into an immutable Entry.
func (b *Builder) buildEntry(e *entryState) *Entry {
	refs := make([]SubgraphRef, 0, len(e.keys))
	for k, d := range e.keys {
		refs = append(refs, SubgraphRef{Key: k, Density: d})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Key < refs[j].Key })
	if len(refs) > 0 {
		maxD := refs[0].Density
		for _, r := range refs[1:] {
			if r.Density > maxD {
				maxD = r.Density
			}
		}
		e.density = maxD
	}
	return &Entry{
		ID:        e.id,
		Entities:  e.entities,
		Density:   e.density,
		Subgraphs: refs,
		BornSeq:   e.bornSeq,
		LastSeq:   e.lastSeq,
		Fading:    len(refs) == 0,
	}
}
