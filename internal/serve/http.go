package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dyndens/internal/story"
	"dyndens/internal/vset"
)

// Hub fans lifecycle records out to SSE subscribers. Publishing never
// blocks the writer: a subscriber whose buffer is full loses the record (and
// the hub counts the drop) rather than stalling ingestion.
type Hub struct {
	mu   sync.Mutex
	subs map[uint64]chan story.Record
	next uint64

	delivered atomic.Uint64
	dropped   atomic.Uint64
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[uint64]chan story.Record)}
}

// Publish delivers a record to every subscriber, non-blocking.
func (h *Hub) Publish(r story.Record) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ch := range h.subs {
		select {
		case ch <- r:
			h.delivered.Add(1)
		default:
			h.dropped.Add(1)
		}
	}
}

// Subscribe registers a subscriber with the given channel buffer and returns
// its id and channel. The channel is closed by Unsubscribe.
func (h *Hub) Subscribe(buf int) (uint64, <-chan story.Record) {
	if buf < 1 {
		buf = 64
	}
	ch := make(chan story.Record, buf)
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.next
	h.next++
	h.subs[id] = ch
	return id, ch
}

// Unsubscribe removes a subscriber and closes its channel.
func (h *Hub) Unsubscribe(id uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ch, ok := h.subs[id]; ok {
		delete(h.subs, id)
		close(ch)
	}
}

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Server exposes a View over HTTP. All endpoints are read-only and serve
// from whichever immutable snapshot is current when the request arrives:
//
//	GET /healthz          liveness probe
//	GET /stats            view + SSE counters (JSON)
//	GET /stories/top?k=N  the k highest-density live stories, ranked (default 10)
//	GET /stories/{id}     one story with its subgraphs
//	GET /entities/{e}     stories whose entity set contains entity e
//	GET /events           SSE stream of lifecycle records as they happen
//
// Responses carry the snapshot epoch, so a client can correlate consecutive
// reads: two responses with equal epochs describe the identical table.
type Server struct {
	view    *View
	hub     *Hub
	mux     *http.ServeMux
	started time.Time

	// Extra is an optional callback merged into /stats output under
	// "writer" — the serve CLI reports ingestion progress through it.
	Extra func() any
}

// NewServer builds a Server over a view. hub may be nil, in which case
// /events reports 404.
func NewServer(view *View, hub *Hub) *Server {
	s := &Server{view: view, hub: hub, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /stories/top", s.handleTop)
	s.mux.HandleFunc("GET /stories/{id}", s.handleStory)
	s.mux.HandleFunc("GET /entities/{e}", s.handleEntity)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// storyJSON is the wire form of an Entry.
type storyJSON struct {
	ID        story.ID      `json:"id"`
	Density   float64       `json:"density"`
	Entities  []int32       `json:"entities"`
	Subgraphs []SubgraphRef `json:"subgraphs,omitempty"`
	NumSubs   int           `json:"subgraph_count"`
	BornSeq   uint64        `json:"born_seq"`
	LastSeq   uint64        `json:"last_seq"`
	Fading    bool          `json:"fading"`
}

func entryJSON(e *Entry, detail bool) storyJSON {
	ents := make([]int32, len(e.Entities))
	for i, v := range e.Entities {
		ents[i] = int32(v)
	}
	out := storyJSON{
		ID:       e.ID,
		Density:  e.Density,
		Entities: ents,
		NumSubs:  len(e.Subgraphs),
		BornSeq:  e.BornSeq,
		LastSeq:  e.LastSeq,
		Fading:   e.Fading,
	}
	if detail {
		out.Subgraphs = e.Subgraphs
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	type statsJSON struct {
		ViewStats
		UptimeMS     int64  `json:"uptime_ms"`
		SSESubs      int    `json:"sse_subscribers"`
		SSEDelivered uint64 `json:"sse_delivered"`
		SSEDropped   uint64 `json:"sse_dropped"`
		Writer       any    `json:"writer,omitempty"`
	}
	out := statsJSON{
		ViewStats: s.view.Stats(),
		UptimeMS:  time.Since(s.started).Milliseconds(),
	}
	if s.hub != nil {
		out.SSESubs = s.hub.Subscribers()
		out.SSEDelivered = s.hub.delivered.Load()
		out.SSEDropped = s.hub.dropped.Load()
	}
	if s.Extra != nil {
		out.Writer = s.Extra()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad k %q", q)})
			return
		}
		k = n
	}
	snap := s.view.Snapshot()
	ranked := snap.Top(k)
	out := struct {
		Epoch   uint64      `json:"epoch"`
		Ranked  int         `json:"ranked"`
		Stories []storyJSON `json:"stories"`
	}{Epoch: snap.Epoch, Ranked: len(snap.Ranked), Stories: make([]storyJSON, 0, len(ranked))}
	for _, rk := range ranked {
		out.Stories = append(out.Stories, entryJSON(snap.Stories[rk.Story], false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStory(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad story id %q", r.PathValue("id"))})
		return
	}
	snap := s.view.Snapshot()
	e, ok := snap.Stories[story.ID(id)]
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("no story %d", id)})
		return
	}
	out := struct {
		Epoch uint64    `json:"epoch"`
		Story storyJSON `json:"story"`
	}{Epoch: snap.Epoch, Story: entryJSON(e, true)}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEntity(w http.ResponseWriter, r *http.Request) {
	ev, err := strconv.ParseInt(r.PathValue("e"), 10, 32)
	if err != nil || ev < 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad entity %q", r.PathValue("e"))})
		return
	}
	snap := s.view.Snapshot()
	ids := snap.ByEntity[vset.Vertex(ev)]
	out := struct {
		Epoch   uint64      `json:"epoch"`
		Entity  int64       `json:"entity"`
		Stories []storyJSON `json:"stories"`
	}{Epoch: snap.Epoch, Entity: ev, Stories: make([]storyJSON, 0, len(ids))}
	for _, id := range ids {
		out.Stories = append(out.Stories, entryJSON(snap.Stories[id], false))
	}
	writeJSON(w, http.StatusOK, out)
}

// recordJSON is the SSE wire form of a lifecycle record.
type recordJSON struct {
	Seq      uint64   `json:"seq"`
	Kind     string   `json:"kind"`
	Story    story.ID `json:"story"`
	Other    story.ID `json:"other,omitempty"`
	Entities []int32  `json:"entities"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil {
		http.NotFound(w, r)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	id, ch := s.hub.Subscribe(256)
	defer s.hub.Unsubscribe(id)
	fmt.Fprintf(w, ": connected epoch=%d\n\n", s.view.Snapshot().Epoch)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case rec, open := <-ch:
			if !open {
				return
			}
			ents := make([]int32, len(rec.Entities))
			for i, v := range rec.Entities {
				ents[i] = int32(v)
			}
			data, err := json.Marshal(recordJSON{
				Seq: rec.Seq, Kind: rec.Kind.String(), Story: rec.Story, Other: rec.Other, Entities: ents,
			})
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", rec.Kind, data)
			fl.Flush()
		}
	}
}
