package serve

import (
	"sort"

	"dyndens/internal/story"
)

// This file is the serving half of crash recovery (internal/persist). The
// Builder's table is a deterministic fold of the tracker's story table plus
// per-subgraph densities, so it is not persisted separately: a restored
// builder is reconstructed from the restored tracker state and the engine's
// current output-dense densities, then behaves exactly like one that folded
// the whole stream.

// Sync resolves any buffered update (the EmitSeq-mode event buffer) and folds
// it into the story table, bringing the builder — and the tracker it wraps —
// to a quiescent, exportable boundary. A no-op when nothing is buffered.
func (b *Builder) Sync() {
	b.tracker.Sync()
	if b.pendingSeq != 0 || len(b.evs) > 0 || len(b.recs) > 0 {
		b.boundary(b.tracker.Seq())
		b.pendingSeq = 0
	}
}

// NewBuilderFromState wraps a tracker restored via story.NewTrackerFromState,
// rebuilding the serving table from the restored story rows. densities maps
// live subgraph keys to their output densities (from the engine's restored
// index); keys missing from the map restore with density 0, as do fading
// stories — the last-known density is a serving cache, not durable state, and
// heals at the story's next event. The initial snapshot publishes at the
// restored sequence.
func NewBuilderFromState(tr *story.Tracker, st story.TrackerState, densities map[string]float64) *Builder {
	b := NewBuilder(tr)
	for _, row := range st.Stories {
		e := &entryState{
			id:      row.ID,
			keys:    make(map[string]float64, len(row.Live)),
			bornSeq: row.BornSeq,
			lastSeq: row.LastSeq,
		}
		for _, set := range row.Live {
			k := set.Key()
			e.keys[k] = densities[k]
			b.keyOwner[k] = row.ID
			b.liveKeys = append(b.liveKeys, k)
		}
		b.entries[row.ID] = e
		b.setEntities(e, row.Entities) // diff base is empty: posts everything
		b.dirty[row.ID] = true
	}
	sort.Strings(b.liveKeys)
	b.keysDirty = len(b.liveKeys) > 0
	b.view.noteBoundary(st.Seq)
	b.publish(st.Seq)
	clear(b.dirty)
	b.keysDirty = false
	b.entDirty = false
	return b
}
