package serve

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"dyndens/internal/core"
	"dyndens/internal/shard"
	"dyndens/internal/story"
	"dyndens/internal/stream"
)

// storyWorkload mirrors the story package's reference pipeline workload:
// planted stories over background chatter, parameters chosen so the stream
// exercises birth, merge, split, fading blips, and death.
type storyWorkload struct {
	doc stream.DocSynthConfig
	agg stream.AggregatorConfig
	eng core.Config
	trk story.Config
}

func defaultWorkload() storyWorkload {
	return storyWorkload{
		doc: stream.DocSynthConfig{
			BackgroundEntities: 30,
			Stories:            3,
			StorySize:          4,
			Docs:               600,
			Seed:               7,
			StoryFraction:      0.75,
			BackgroundSkew:     1.1,
			NoiseMentionProb:   -1,
		},
		agg: stream.AggregatorConfig{EpochLength: 25, Decay: 0.7},
		eng: core.Config{T: 6.5, Nmax: 4},
		trk: story.Config{MinCardinality: 3, Grace: 350},
	}
}

func (w storyWorkload) updates(t *testing.T) []stream.Update {
	t.Helper()
	gen := stream.MustDocSynthetic(w.doc)
	updates, err := stream.Drain(stream.MustAggregator(gen, w.agg))
	if err != nil {
		t.Fatal(err)
	}
	return updates
}

// validateSnapshot checks every internal-consistency invariant a published
// snapshot promises its readers. It is pure, so the concurrent-reader test
// can run it against live snapshots.
func validateSnapshot(s *Snapshot) error {
	rankedPos := make(map[story.ID]int, len(s.Ranked))
	for i, r := range s.Ranked {
		if i > 0 && rankLess(r, s.Ranked[i-1]) {
			return fmt.Errorf("epoch %d: ranking unordered at %d: %v then %v", s.Epoch, i, s.Ranked[i-1], r)
		}
		if _, dup := rankedPos[r.Story]; dup {
			return fmt.Errorf("epoch %d: story %d ranked twice", s.Epoch, r.Story)
		}
		rankedPos[r.Story] = i
		e, ok := s.Stories[r.Story]
		if !ok {
			return fmt.Errorf("epoch %d: ranked story %d missing from table", s.Epoch, r.Story)
		}
		if e.Fading {
			return fmt.Errorf("epoch %d: fading story %d is ranked", s.Epoch, r.Story)
		}
		if e.Density != r.Density {
			return fmt.Errorf("epoch %d: story %d ranked at %v but entry density %v", s.Epoch, r.Story, r.Density, e.Density)
		}
	}

	var keys []string
	for id, e := range s.Stories {
		if e.ID != id {
			return fmt.Errorf("epoch %d: entry keyed %d carries ID %d", s.Epoch, id, e.ID)
		}
		if e.Fading != (len(e.Subgraphs) == 0) {
			return fmt.Errorf("epoch %d: story %d fading=%v with %d subgraphs", s.Epoch, id, e.Fading, len(e.Subgraphs))
		}
		if _, ok := rankedPos[id]; ok != !e.Fading {
			return fmt.Errorf("epoch %d: story %d fading=%v, ranked=%v", s.Epoch, id, e.Fading, ok)
		}
		maxD := 0.0
		for i, sg := range e.Subgraphs {
			if i > 0 && sg.Key <= e.Subgraphs[i-1].Key {
				return fmt.Errorf("epoch %d: story %d subgraphs unordered", s.Epoch, id)
			}
			if sg.Density > maxD {
				maxD = sg.Density
			}
			keys = append(keys, sg.Key)
		}
		if !e.Fading && e.Density != maxD {
			return fmt.Errorf("epoch %d: story %d density %v != max subgraph density %v", s.Epoch, id, e.Density, maxD)
		}
		for _, v := range e.Entities {
			ids := s.ByEntity[v]
			i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
			if i >= len(ids) || ids[i] != id {
				return fmt.Errorf("epoch %d: story %d has entity %d but is missing from its posting", s.Epoch, id, v)
			}
		}
	}
	sort.Strings(keys)
	if !reflect.DeepEqual(keys, s.LiveKeys) && !(len(keys) == 0 && len(s.LiveKeys) == 0) {
		return fmt.Errorf("epoch %d: union of entry subgraphs %v != LiveKeys %v", s.Epoch, keys, s.LiveKeys)
	}
	for v, ids := range s.ByEntity {
		if len(ids) == 0 {
			return fmt.Errorf("epoch %d: empty posting for entity %d", s.Epoch, v)
		}
		for i, id := range ids {
			if i > 0 && ids[i-1] >= id {
				return fmt.Errorf("epoch %d: posting for entity %d unordered", s.Epoch, v)
			}
			e, ok := s.Stories[id]
			if !ok {
				return fmt.Errorf("epoch %d: posting for entity %d names missing story %d", s.Epoch, v, id)
			}
			if !e.Entities.Contains(v) {
				return fmt.Errorf("epoch %d: story %d posted for entity %d it does not contain", s.Epoch, id, v)
			}
		}
	}
	return nil
}

// checkMatchesTracker asserts the published snapshot equals the wrapped
// tracker's story table row for row.
func checkMatchesTracker(t *testing.T, b *Builder) {
	t.Helper()
	snap := b.View().Snapshot()
	rows := b.Tracker().Stories()
	if len(snap.Stories) != len(rows) {
		t.Fatalf("view has %d stories, tracker %d", len(snap.Stories), len(rows))
	}
	for _, row := range rows {
		e, ok := snap.Stories[row.ID]
		if !ok {
			t.Fatalf("story %d in tracker table but not in view", row.ID)
		}
		if !e.Entities.Equal(row.Entities) {
			t.Errorf("story %d entities: view %v, tracker %v", row.ID, e.Entities, row.Entities)
		}
		if len(e.Subgraphs) != row.Subgraphs {
			t.Errorf("story %d subgraphs: view %d, tracker %d", row.ID, len(e.Subgraphs), row.Subgraphs)
		}
		if e.BornSeq != row.BornSeq || e.LastSeq != row.LastSeq {
			t.Errorf("story %d seqs: view (%d,%d), tracker (%d,%d)", row.ID, e.BornSeq, e.LastSeq, row.BornSeq, row.LastSeq)
		}
		if e.Fading != row.Fading {
			t.Errorf("story %d fading: view %v, tracker %v", row.ID, e.Fading, row.Fading)
		}
	}
	if got, want := snap.LiveKeys, b.Tracker().LiveKeys(); !reflect.DeepEqual(got, want) && len(want) > 0 {
		t.Errorf("view live keys %v != tracker %v", got, want)
	}
	if err := validateSnapshot(snap); err != nil {
		t.Error(err)
	}
}

// TestBuilderMatchesTracker drives the reference workload through a single
// engine with the builder in the sink position and requires the final
// published snapshot to match the tracker's own table — the builder's whole
// claim is that the view is the tracker, served.
func TestBuilderMatchesTracker(t *testing.T) {
	w := defaultWorkload()
	updates := w.updates(t)
	eng := core.MustNew(w.eng)
	b := NewBuilder(story.MustTracker(w.trk))
	eng.SetSink(b)
	for _, u := range updates {
		eng.Process(u)
	}
	b.Close(uint64(len(updates)))

	st := b.Tracker().Stats()
	if st.Born == 0 || st.Merged == 0 || st.Split == 0 || st.Died == 0 {
		t.Fatalf("workload lifecycle coverage too weak: %+v", st)
	}
	if len(b.View().Snapshot().Stories) == 0 {
		t.Fatal("final view is empty")
	}
	checkMatchesTracker(t, b)
	vs := b.View().Stats()
	if vs.Publishes == 0 || vs.Boundaries == 0 || vs.Records == 0 {
		t.Fatalf("view counters did not move: %+v", vs)
	}
	if vs.LastSeq != uint64(len(updates)) {
		t.Fatalf("LastSeq = %d, want %d", vs.LastSeq, len(updates))
	}
}

// entryFingerprint flattens a snapshot to a deterministic comparable form.
func entryFingerprint(s *Snapshot) []string {
	var out []string
	ids := make([]story.ID, 0, len(s.Stories))
	for id := range s.Stories {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := s.Stories[id]
		out = append(out, fmt.Sprintf("%d|%s|%v|%v|%d|%d|%v", e.ID, e.Entities.Key(), e.Subgraphs, e.Density, e.BornSeq, e.LastSeq, e.Fading))
	}
	out = append(out, fmt.Sprintf("ranked=%v", s.Ranked))
	return out
}

// TestBuilderShardedConformance requires the K-shard merged stream to
// publish the identical final snapshot as the single engine, K ∈ {1, 2, 4}.
func TestBuilderShardedConformance(t *testing.T) {
	w := defaultWorkload()
	updates := w.updates(t)

	eng := core.MustNew(w.eng)
	ref := NewBuilder(story.MustTracker(w.trk))
	eng.SetSink(ref)
	for _, u := range updates {
		eng.Process(u)
	}
	ref.Close(uint64(len(updates)))
	want := entryFingerprint(ref.View().Snapshot())

	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			se := shard.MustNew(shard.Config{Shards: k, Engine: w.eng, BatchSize: 64})
			defer se.Close()
			b := NewBuilder(story.MustTracker(w.trk))
			se.SetSeqSink(b)
			se.ProcessAll(updates)
			se.Flush()
			b.Close(uint64(len(updates)))

			checkMatchesTracker(t, b)
			if got := entryFingerprint(b.View().Snapshot()); !reflect.DeepEqual(got, want) {
				t.Fatalf("K=%d final snapshot diverges from single engine:\nsharded %v\nsingle  %v", k, got, want)
			}
			if !reflect.DeepEqual(b.Tracker().Records(), ref.Tracker().Records()) {
				t.Fatalf("K=%d lifecycle records diverge", k)
			}
		})
	}
}

// TestBuilderLiveKeysMatchEngine pins the serving result-set contract
// per update: with no cardinality gate, the view's live-key universe is
// exactly the engine's output-dense set after every update, and every
// intermediate snapshot is internally consistent.
func TestBuilderLiveKeysMatchEngine(t *testing.T) {
	updates, err := stream.Drain(stream.MustSynthetic(stream.SynthConfig{
		Vertices:         12,
		Updates:          400,
		Seed:             19,
		NegativeFraction: 0.35,
		MeanDelta:        1.5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	eng := core.MustNew(core.Config{T: 2, Nmax: 4})
	b := NewBuilder(story.MustTracker(story.Config{Grace: 5}))
	eng.SetSink(b)
	checked := 0
	for i, u := range updates {
		eng.Process(u)
		snap := b.View().Snapshot()
		if err := validateSnapshot(snap); err != nil {
			t.Fatalf("after update %d: %v", i+1, err)
		}
		want := eng.OutputDenseKeys()
		if len(want) == 0 && len(snap.LiveKeys) == 0 {
			continue
		}
		if !reflect.DeepEqual(snap.LiveKeys, want) {
			t.Fatalf("after update %d: view live keys %v != engine %v", i+1, snap.LiveKeys, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("stream never produced a non-empty result set")
	}
	b.Close(uint64(len(updates)))
	checkMatchesTracker(t, b)
}

// TestBuilderRecordForwarding checks that SetRecordSink observes every
// lifecycle record, in order, as the tracker produces them.
func TestBuilderRecordForwarding(t *testing.T) {
	w := defaultWorkload()
	updates := w.updates(t)
	eng := core.MustNew(w.eng)
	b := NewBuilder(story.MustTracker(w.trk))
	var got []story.Record
	b.SetRecordSink(func(r story.Record) { got = append(got, r) })
	eng.SetSink(b)
	for _, u := range updates {
		eng.Process(u)
	}
	b.Close(uint64(len(updates)))
	want := b.Tracker().Records()
	if len(got) != len(want) {
		t.Fatalf("forwarded %d records, tracker has %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Seq != want[i].Seq || got[i].Kind != want[i].Kind || got[i].Story != want[i].Story || got[i].Other != want[i].Other || !got[i].Entities.Equal(want[i].Entities) {
			t.Fatalf("record %d: forwarded %v, tracker %v", i, got[i], want[i])
		}
	}
}

// TestSnapshotConsistencyUnderConcurrentReads is the issue's acceptance
// test: a live writer ingests the stream while N readers continuously load
// snapshots, assert internal consistency (ranking ordered by density,
// entries present, live keys matching the entry table), and cross-check
// each snapshot's live-key universe against the engine's OutputDenseKeys
// recorded at the same update boundary. Run under -race in CI.
func TestSnapshotConsistencyUnderConcurrentReads(t *testing.T) {
	updates, err := stream.Drain(stream.MustSynthetic(stream.SynthConfig{
		Vertices:         14,
		Updates:          3000,
		Seed:             41,
		NegativeFraction: 0.35,
		MeanDelta:        1.5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	eng := core.MustNew(core.Config{T: 2, Nmax: 4})
	b := NewBuilder(story.MustTracker(story.Config{Grace: 5}))
	eng.SetSink(b)
	view := b.View()

	// history maps update boundary → the engine's output-dense keys at that
	// boundary, recorded by the writer after each Process returns. Readers
	// only validate epochs already recorded (a freshly published epoch may
	// beat the writer's bookkeeping by a moment).
	var history sync.Map

	const readers = 4
	stop := make(chan struct{})
	errc := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sampled := 0
			for {
				select {
				case <-stop:
					if sampled == 0 {
						errc <- fmt.Errorf("reader sampled no snapshots")
					}
					return
				default:
				}
				snap := view.Snapshot()
				if err := validateSnapshot(snap); err != nil {
					errc <- err
					return
				}
				if want, ok := history.Load(snap.Epoch); ok {
					wk := want.([]string)
					if !reflect.DeepEqual(snap.LiveKeys, wk) && !(len(snap.LiveKeys) == 0 && len(wk) == 0) {
						errc <- fmt.Errorf("epoch %d: snapshot live keys %v != engine %v", snap.Epoch, snap.LiveKeys, wk)
						return
					}
					sampled++
				}
			}
		}()
	}

	for i, u := range updates {
		eng.Process(u)
		seq := uint64(i + 1)
		if view.Snapshot().Epoch == seq {
			// Only boundaries that published are observable under this epoch.
			history.Store(seq, eng.OutputDenseKeys())
		}
	}
	b.Close(uint64(len(updates)))
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	checkMatchesTracker(t, b)
}
