package serve

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadConfig tunes the closed-loop read harness.
type LoadConfig struct {
	// Readers is the number of concurrent closed-loop readers (each issues
	// its next query the moment the previous one returns). Defaults to 4.
	Readers int
	// TopK is the k of each top-k query. Defaults to 10.
	TopK int
	// SampleCap bounds the per-reader latency reservoir. Defaults to 4096.
	SampleCap int
	// Seed seeds the reservoir sampling so runs are reproducible.
	Seed int64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Readers <= 0 {
		c.Readers = 4
	}
	if c.TopK <= 0 {
		c.TopK = 10
	}
	if c.SampleCap <= 0 {
		c.SampleCap = 4096
	}
	return c
}

// LoadStats is the result of a load run: closed-loop read throughput and
// latency percentiles over the sampled reads.
type LoadStats struct {
	Readers int           `json:"readers"`
	TopK    int           `json:"top_k"`
	Reads   uint64        `json:"reads"`
	Wall    time.Duration `json:"wall_ns"`
	P50     time.Duration `json:"p50_ns"`
	P95     time.Duration `json:"p95_ns"`
	P99     time.Duration `json:"p99_ns"`
	Samples int           `json:"samples"`
}

// QPS returns reads per second of wall time, 0 for a zero-duration run (the
// same guard the replay throughput reporting applies — a coarse clock must
// not turn into +Inf in JSON output).
func (s LoadStats) QPS() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Reads) / s.Wall.Seconds()
}

// reader is one closed-loop load generator with a latency reservoir.
type reader struct {
	reads   uint64
	samples []time.Duration
	seen    int64
	rng     *rand.Rand
	cap     int
}

func (r *reader) observe(d time.Duration) {
	r.reads++
	r.seen++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, d)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.samples[j] = d
	}
}

// Load is a running closed-loop read workload against a View. Each reader
// performs the full serving read path per iteration — load the snapshot,
// take the top-k ranks, fetch every ranked entry — exactly what the HTTP
// top-k handler does minus encoding.
type Load struct {
	cfg     LoadConfig
	view    *View
	stop    chan struct{}
	done    sync.WaitGroup
	readers []*reader
	start   time.Time

	// consumed defeats dead-code elimination of the read path.
	consumed atomic.Uint64
}

// StartLoad spawns the readers. Call Stop to end the run and collect stats.
func StartLoad(v *View, cfg LoadConfig) *Load {
	cfg = cfg.withDefaults()
	l := &Load{cfg: cfg, view: v, stop: make(chan struct{}), start: time.Now()}
	l.readers = make([]*reader, cfg.Readers)
	for i := range l.readers {
		r := &reader{rng: rand.New(rand.NewSource(cfg.Seed + int64(i))), cap: cfg.SampleCap}
		l.readers[i] = r
		l.done.Add(1)
		go l.run(r)
	}
	return l
}

func (l *Load) run(r *reader) {
	defer l.done.Done()
	var sink uint64
	for {
		select {
		case <-l.stop:
			l.consumed.Add(sink)
			return
		default:
		}
		t0 := time.Now()
		snap := l.view.Snapshot()
		for _, rk := range snap.Top(l.cfg.TopK) {
			e := snap.Stories[rk.Story]
			sink += uint64(len(e.Entities)) + uint64(len(e.Subgraphs))
		}
		r.observe(time.Since(t0))
	}
}

// Stop ends the workload and returns merged statistics.
func (l *Load) Stop() LoadStats {
	close(l.stop)
	l.done.Wait()
	wall := time.Since(l.start)

	st := LoadStats{Readers: l.cfg.Readers, TopK: l.cfg.TopK, Wall: wall}
	var all []time.Duration
	for _, r := range l.readers {
		st.Reads += r.reads
		all = append(all, r.samples...)
	}
	st.Samples = len(all)
	st.P50 = percentile(all, 0.50)
	st.P95 = percentile(all, 0.95)
	st.P99 = percentile(all, 0.99)
	return st
}

// percentile returns the q-quantile (0 < q ≤ 1) of the samples by the
// nearest-rank method; it sorts its argument in place.
func percentile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	i := int(q*float64(len(samples))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(samples) {
		i = len(samples) - 1
	}
	return samples[i]
}
