package serve

import (
	"sync/atomic"

	"dyndens/internal/story"
	"dyndens/internal/vset"
)

// SubgraphRef is one live output-dense subgraph of a story as the serving
// layer sees it: the subgraph's canonical key and the density annotated on
// the engine event that last crossed its output threshold. Densities are
// therefore exact as of the last threshold crossing, not continuously
// re-evaluated — the staleness the paper accepts for incremental
// maintenance.
type SubgraphRef struct {
	Key     string  `json:"key"`
	Density float64 `json:"density"`
}

// Entry is one immutable story row of a published Snapshot. Everything it
// references (the entity set, the subgraph slice) is frozen at publish time;
// readers may hold an Entry for as long as they like.
type Entry struct {
	ID        story.ID      `json:"id"`
	Entities  vset.Set      `json:"entities"`
	Density   float64       `json:"density"` // max density over live subgraphs; last-known for fading stories
	Subgraphs []SubgraphRef `json:"subgraphs"`
	BornSeq   uint64        `json:"born_seq"`
	LastSeq   uint64        `json:"last_seq"`
	Fading    bool          `json:"fading"`
}

// Snapshot is one immutable, internally consistent picture of the story
// table at a single update boundary. Published snapshots are copy-on-write:
// entries untouched since the previous boundary are shared between
// consecutive snapshots, so publishing costs O(changed + table-map), never
// O(stream).
//
// All fields are read-only after publication. Tearing is impossible by
// construction: a reader that loads a Snapshot sees the ranking, the story
// table, the entity postings, and the live-key universe of the same epoch.
type Snapshot struct {
	// Epoch is the update boundary (engine sequence number) this snapshot
	// corresponds to. Boundaries that change nothing do not publish, so
	// consecutive snapshots may skip epochs.
	Epoch uint64

	// Stories maps story ID → immutable entry, covering live and fading
	// stories alike.
	Stories map[story.ID]*Entry

	// Ranked orders the stories that currently own at least one live
	// output-dense subgraph by density descending (ties to the lower ID).
	// Fading stories are not ranked — their density is stale by definition —
	// but stay queryable through Stories and ByEntity.
	Ranked []Rank

	// ByEntity maps entity → ascending story IDs whose entity set contains
	// it.
	ByEntity map[vset.Vertex][]story.ID

	// LiveKeys is the sorted canonical-key universe of all live output-dense
	// subgraphs — exactly the engine's OutputDenseKeys() at this boundary
	// (modulo a MinCardinality filter, if one is configured upstream).
	LiveKeys []string
}

// Top returns the k highest-density ranked entries (fewer if the ranking is
// smaller) as a shared sub-slice of the immutable ranking: O(1), zero
// allocations, and — pinned by tests — no story-table scan.
func (s *Snapshot) Top(k int) []Rank {
	if k < 0 {
		k = 0
	}
	if k > len(s.Ranked) {
		k = len(s.Ranked)
	}
	return s.Ranked[:k:k]
}

// ViewStats is a point-in-time summary of a View for /stats.
type ViewStats struct {
	Epoch         uint64 `json:"epoch"`
	LastSeq       uint64 `json:"last_seq"`
	Stories       int    `json:"stories"`
	Fading        int    `json:"fading"`
	LiveSubgraphs int    `json:"live_subgraphs"`
	Publishes     uint64 `json:"publishes"`
	Boundaries    uint64 `json:"boundaries"`
	Records       uint64 `json:"records"`
}

// View is the concurrent read surface of the serving layer: a single atomic
// pointer to the latest Snapshot. The writer (Builder) publishes whole
// immutable snapshots; any number of readers load them wait-free. Readers
// never block the writer and never observe a torn table — the classic
// copy-on-write snapshot discipline.
type View struct {
	cur atomic.Pointer[Snapshot]

	lastSeq    atomic.Uint64 // most recent boundary seen, published or not
	publishes  atomic.Uint64
	boundaries atomic.Uint64
	records    atomic.Uint64
}

// NewView returns a View holding an empty epoch-0 snapshot.
func NewView() *View {
	v := &View{}
	v.cur.Store(&Snapshot{Stories: map[story.ID]*Entry{}})
	return v
}

// Snapshot returns the latest published snapshot. The result is immutable
// and safe to use indefinitely.
func (v *View) Snapshot() *Snapshot { return v.cur.Load() }

// Top is shorthand for Snapshot().Top(k).
func (v *View) Top(k int) []Rank { return v.cur.Load().Top(k) }

// Story returns the entry for a story ID in the latest snapshot.
func (v *View) Story(id story.ID) (*Entry, bool) {
	e, ok := v.cur.Load().Stories[id]
	return e, ok
}

// LastSeq returns the most recent update boundary the writer has completed —
// ahead of Snapshot().Epoch whenever trailing boundaries changed nothing.
func (v *View) LastSeq() uint64 { return v.lastSeq.Load() }

// Stats summarises the view. The counters and the snapshot are read
// independently, so they may straddle a publish; each value is individually
// consistent.
func (v *View) Stats() ViewStats {
	s := v.cur.Load()
	fading := 0
	for _, e := range s.Stories {
		if e.Fading {
			fading++
		}
	}
	return ViewStats{
		Epoch:         s.Epoch,
		LastSeq:       v.lastSeq.Load(),
		Stories:       len(s.Stories),
		Fading:        fading,
		LiveSubgraphs: len(s.LiveKeys),
		Publishes:     v.publishes.Load(),
		Boundaries:    v.boundaries.Load(),
		Records:       v.records.Load(),
	}
}

// noteBoundary records that the writer completed boundary s (publish or
// not).
func (v *View) noteBoundary(s uint64) {
	v.lastSeq.Store(s)
	v.boundaries.Add(1)
}

// publish installs a new snapshot.
func (v *View) publish(s *Snapshot) {
	v.cur.Store(s)
	v.publishes.Add(1)
}
