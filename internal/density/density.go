// Package density defines subgraph density measures and the per-cardinality
// threshold schedule that DynDens maintains dense subgraphs against.
//
// A subgraph C has density dens(C) = score(C) / S(|C|), where score(C) is the
// total internal edge weight and S(n) quantifies the relative importance of
// cardinality. The paper requires the monotonicity property
//
//	n/(n-1) ≤ S(n)/S(n-1) ≤ n/(n-2)
//
// which all instantiations here satisfy. The normalised form g(n) =
// S(n)/(n(n-1)) is non-increasing in n.
//
// DynDens maintains all subgraphs with dens(C) ≥ T_{|C|}, where T_n is the
// threshold schedule of Eq. 8 of the paper, parameterised by the user density
// threshold T, the maximum cardinality Nmax and the tuning knob δ_it. T_Nmax
// equals T and T_n·g_n is strictly increasing in n, which yields the growth
// property the algorithm relies on.
package density

import (
	"errors"
	"fmt"
	"math"
)

// Measure is a cardinality-normalisation function S_n defining a notion of
// graph density dens(C) = score(C)/S(|C|).
type Measure interface {
	// Name returns a short identifier (used in experiment output).
	Name() string
	// S returns S(n) for n ≥ 2. Implementations may return arbitrary values
	// for n < 2; callers never ask.
	S(n int) float64
}

// G returns the normalised measure g(n) = S(n)/(n·(n-1)).
func G(m Measure, n int) float64 {
	return m.S(n) / (float64(n) * float64(n-1))
}

// Density returns score/S(n), the density of a subgraph with the given
// internal score and cardinality. It returns 0 for n < 2.
func Density(m Measure, score float64, n int) float64 {
	if n < 2 {
		return 0
	}
	return score / m.S(n)
}

// Built-in measures from the paper.

type avgWeight struct{}

// AvgWeight is S_n = n(n-1)/2: density is the average edge weight, favouring
// small, well-connected subgraphs.
var AvgWeight Measure = avgWeight{}

func (avgWeight) Name() string    { return "AvgWeight" }
func (avgWeight) S(n int) float64 { return float64(n) * float64(n-1) / 2 }

type avgDegree struct{}

// AvgDegree is S_n = n: density is a generalised average node degree,
// favouring large subgraphs.
var AvgDegree Measure = avgDegree{}

func (avgDegree) Name() string    { return "AvgDegree" }
func (avgDegree) S(n int) float64 { return float64(n) }

type sqrtDens struct{}

// SqrtDens is S_n = sqrt(n(n-1)), lying between AvgWeight and AvgDegree.
var SqrtDens Measure = sqrtDens{}

func (sqrtDens) Name() string    { return "SqrtDens" }
func (sqrtDens) S(n int) float64 { return math.Sqrt(float64(n) * float64(n-1)) }

// Custom wraps an arbitrary S_n function. ValidateMeasure should be called on
// the result to check the monotonicity requirements over the cardinality
// range of interest.
func Custom(name string, s func(n int) float64) Measure {
	return customMeasure{name: name, s: s}
}

type customMeasure struct {
	name string
	s    func(n int) float64
}

func (c customMeasure) Name() string    { return c.name }
func (c customMeasure) S(n int) float64 { return c.s(n) }

// ValidateMeasure checks the paper's monotonicity requirement
// n/(n-1) ≤ S(n)/S(n-1) ≤ n/(n-2) for all 3 ≤ n ≤ nmax, plus positivity.
func ValidateMeasure(m Measure, nmax int) error {
	const eps = 1e-9
	if nmax < 2 {
		return fmt.Errorf("density: nmax must be ≥ 2, got %d", nmax)
	}
	if m.S(2) <= 0 {
		return fmt.Errorf("density: %s has non-positive S(2)=%v", m.Name(), m.S(2))
	}
	for n := 3; n <= nmax; n++ {
		sn, sn1 := m.S(n), m.S(n-1)
		if sn <= 0 {
			return fmt.Errorf("density: %s has non-positive S(%d)=%v", m.Name(), n, sn)
		}
		ratio := sn / sn1
		lo := float64(n) / float64(n-1)
		hi := float64(n) / float64(n-2)
		if ratio < lo-eps || ratio > hi+eps {
			return fmt.Errorf("density: %s violates monotonicity at n=%d: S(n)/S(n-1)=%.6f not in [%.6f, %.6f]",
				m.Name(), n, ratio, lo, hi)
		}
	}
	return nil
}

// Errors returned by NewThresholds.
var (
	ErrBadNmax      = errors.New("density: Nmax must be at least 2")
	ErrBadThreshold = errors.New("density: threshold T must be positive")
	ErrBadDeltaIt   = errors.New("density: delta_it outside its validity range")
)

// Thresholds is the instantiated threshold schedule T_n (Eq. 8) for a given
// (Measure, T, Nmax, δ_it) combination, along with the classification
// predicates used throughout DynDens.
type Thresholds struct {
	Measure Measure
	T       float64 // output-density threshold (= T_Nmax)
	Nmax    int     // maximum cardinality of subgraphs of interest
	DeltaIt float64 // δ_it: tunable space/time trade-off parameter

	// tn[n] caches T_n for 2 ≤ n ≤ Nmax; sn[n] caches S(n); minScore[n]
	// caches S(n)·T_n, the minimum score for a dense subgraph of cardinality n.
	tn       []float64
	sn       []float64
	minScore []float64
}

// MaxDeltaIt returns the upper end of the validity range for δ_it given a
// measure, threshold and Nmax (Section 4.1.3):
//
//	δ_it < S(Nmax)·T / (Nmax·(Nmax−2))  =  g(Nmax)·T·(Nmax−1)/(Nmax−2)
//
// For Nmax = 2 every positive δ_it is valid and +Inf is returned.
func MaxDeltaIt(m Measure, t float64, nmax int) float64 {
	if nmax <= 2 {
		return math.Inf(1)
	}
	return m.S(nmax) * t / (float64(nmax) * float64(nmax-2))
}

// NewThresholds validates the parameters and precomputes the schedule.
// deltaIt must lie in (0, MaxDeltaIt); the paper recommends values well below
// the upper end (its experiments use 1%–50% of the maximum).
func NewThresholds(m Measure, t float64, nmax int, deltaIt float64) (*Thresholds, error) {
	if nmax < 2 {
		return nil, ErrBadNmax
	}
	if t <= 0 {
		return nil, ErrBadThreshold
	}
	if err := ValidateMeasure(m, nmax); err != nil {
		return nil, err
	}
	if deltaIt <= 0 || deltaIt >= MaxDeltaIt(m, t, nmax) {
		return nil, fmt.Errorf("%w: δ_it=%v, valid range (0, %v)", ErrBadDeltaIt, deltaIt, MaxDeltaIt(m, t, nmax))
	}
	th := &Thresholds{Measure: m, T: t, Nmax: nmax, DeltaIt: deltaIt}
	th.precompute()
	// Sanity: every T_n must be positive and the growth property
	// T_n·g_n > T_{n-1}·g_{n-1} must hold.
	for n := 2; n <= nmax; n++ {
		if th.tn[n] <= 0 {
			return nil, fmt.Errorf("%w: T_%d = %v ≤ 0", ErrBadDeltaIt, n, th.tn[n])
		}
		if n > 2 && th.tn[n]*G(m, n) <= th.tn[n-1]*G(m, n-1) {
			return nil, fmt.Errorf("density: growth property violated at n=%d (T_n·g_n not increasing)", n)
		}
	}
	return th, nil
}

// MustThresholds is NewThresholds that panics on error; intended for tests
// and examples with known-good parameters.
func MustThresholds(m Measure, t float64, nmax int, deltaIt float64) *Thresholds {
	th, err := NewThresholds(m, t, nmax, deltaIt)
	if err != nil {
		panic(err)
	}
	return th
}

func (th *Thresholds) precompute() {
	m, t, nmax, dit := th.Measure, th.T, th.Nmax, th.DeltaIt
	th.tn = make([]float64, nmax+2)
	th.sn = make([]float64, nmax+2)
	th.minScore = make([]float64, nmax+2)
	gNmax := G(m, nmax)
	tail := float64(nmax-2) / float64(nmax-1)
	for n := 2; n <= nmax+1; n++ {
		th.sn[n] = m.S(n)
		gn := G(m, n)
		tn := (gNmax*t + dit*(float64(n-2)/float64(n-1)-tail)) / gn
		th.tn[n] = tn
		th.minScore[n] = th.sn[n] * tn
	}
	// By construction T_Nmax = T exactly; pin it to avoid rounding drift.
	th.tn[nmax] = t
	th.minScore[nmax] = th.sn[nmax] * t
}

// Tn returns T_n, the density threshold for a subgraph of cardinality n to be
// considered dense. Defined for 2 ≤ n ≤ Nmax+1 (the Nmax+1 value is used only
// by the too-dense predicate).
func (th *Thresholds) Tn(n int) float64 {
	if n < 2 || n >= len(th.tn) {
		return math.Inf(1)
	}
	return th.tn[n]
}

// S returns S(n) for the configured measure.
func (th *Thresholds) S(n int) float64 {
	if n >= 2 && n < len(th.sn) {
		return th.sn[n]
	}
	return th.Measure.S(n)
}

// MinDenseScore returns S(n)·T_n, the minimum internal score for a subgraph
// of cardinality n to be dense.
func (th *Thresholds) MinDenseScore(n int) float64 {
	if n < 2 || n >= len(th.minScore) {
		return math.Inf(1)
	}
	return th.minScore[n]
}

// MinOutputScore returns S(n)·T, the minimum internal score for a subgraph of
// cardinality n to be output-dense.
func (th *Thresholds) MinOutputScore(n int) float64 {
	if n < 2 {
		return math.Inf(1)
	}
	return th.S(n) * th.T
}

// Density returns score/S(n) under the configured measure.
func (th *Thresholds) Density(score float64, n int) float64 {
	return Density(th.Measure, score, n)
}

// NormDensity returns normDens(C) = dens(C)/T_{|C|}; a subgraph is dense iff
// its normalised density is at least 1 (footnote 2 of the paper).
func (th *Thresholds) NormDensity(score float64, n int) float64 {
	if n < 2 || n > th.Nmax {
		return 0
	}
	return score / th.MinDenseScore(n)
}

// IsDense reports whether a subgraph of cardinality n with the given score is
// dense: dens ≥ T_n and n ≤ Nmax. The comparison uses a tiny relative epsilon
// so that scores assembled through different summation orders classify
// identically.
func (th *Thresholds) IsDense(score float64, n int) bool {
	if n < 2 || n > th.Nmax {
		return false
	}
	return geq(score, th.minScore[n])
}

// IsOutputDense reports whether a subgraph of cardinality n with the given
// score is output-dense: dens ≥ T and n ≤ Nmax.
func (th *Thresholds) IsOutputDense(score float64, n int) bool {
	if n < 2 || n > th.Nmax {
		return false
	}
	return geq(score, th.S(n)*th.T)
}

// IsTooDense reports whether a subgraph of cardinality n with the given score
// is "too-dense": augmenting it with any vertex, even one disconnected from
// it, yields a dense subgraph, i.e. score(C) ≥ S(n+1)·T_{n+1}. (See DESIGN.md
// §4: this is the property Explore-All relies on; it is slightly stricter
// than the shorthand used in Table 1 of the paper.) Subgraphs of cardinality
// Nmax are never too-dense because their supergraphs exceed the cardinality
// constraint.
func (th *Thresholds) IsTooDense(score float64, n int) bool {
	if n < 2 || n >= th.Nmax {
		return false
	}
	return geq(score, th.minScore[n+1])
}

// Iterations returns the number of exploration iterations DynDens must
// perform for a positive update of magnitude delta: ceil(delta/δ_it),
// and at least 1 (Section 4.1.4).
func (th *Thresholds) Iterations(delta float64) int {
	if delta <= 0 {
		return 0
	}
	it := int(math.Ceil(delta / th.DeltaIt))
	if it < 1 {
		it = 1
	}
	return it
}

// WithThreshold returns a new schedule identical to th except for the output
// threshold, with δ_it rescaled proportionally as in Algorithm 3 (line 1) of
// the paper. It is used by the dynamic threshold-update procedure.
func (th *Thresholds) WithThreshold(newT float64) (*Thresholds, error) {
	scaled := th.DeltaIt * newT / th.T
	return NewThresholds(th.Measure, newT, th.Nmax, scaled)
}

// String summarises the schedule.
func (th *Thresholds) String() string {
	return fmt.Sprintf("thresholds{%s T=%.4g Nmax=%d δit=%.4g}", th.Measure.Name(), th.T, th.Nmax, th.DeltaIt)
}

// geq is a tolerant ≥ for score comparisons: score ≥ bound up to a relative
// epsilon. Bounds are products of user parameters, scores are running sums of
// weights; without the tolerance, subgraphs whose density sits exactly on a
// threshold could classify differently depending on summation order.
func geq(score, bound float64) bool {
	const eps = 1e-9
	return score >= bound-eps*math.Max(1, math.Abs(bound))
}
