package density

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBuiltinMeasuresS(t *testing.T) {
	cases := []struct {
		m    Measure
		n    int
		want float64
	}{
		{AvgWeight, 2, 1}, {AvgWeight, 4, 6}, {AvgWeight, 5, 10},
		{AvgDegree, 2, 2}, {AvgDegree, 7, 7},
		{SqrtDens, 2, math.Sqrt(2)}, {SqrtDens, 4, math.Sqrt(12)},
	}
	for _, c := range cases {
		if got := c.m.S(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s.S(%d) = %v, want %v", c.m.Name(), c.n, got, c.want)
		}
	}
}

func TestValidateMeasureAcceptsBuiltins(t *testing.T) {
	for _, m := range []Measure{AvgWeight, AvgDegree, SqrtDens} {
		if err := ValidateMeasure(m, 20); err != nil {
			t.Errorf("ValidateMeasure(%s) = %v", m.Name(), err)
		}
	}
}

func TestValidateMeasureRejectsCounterIntuitive(t *testing.T) {
	// S_n = constant: removing a vertex from a clique increases density.
	bad := Custom("const", func(n int) float64 { return 1 })
	if err := ValidateMeasure(bad, 5); err == nil {
		t.Error("constant S_n should be rejected")
	}
	// S_n growing too fast (n^3).
	bad2 := Custom("cubic", func(n int) float64 { return float64(n * n * n) })
	if err := ValidateMeasure(bad2, 5); err == nil {
		t.Error("cubic S_n should be rejected")
	}
}

func TestGIsNonIncreasing(t *testing.T) {
	for _, m := range []Measure{AvgWeight, AvgDegree, SqrtDens} {
		for n := 3; n <= 15; n++ {
			if G(m, n) > G(m, n-1)+1e-12 {
				t.Errorf("%s: g(%d)=%v > g(%d)=%v", m.Name(), n, G(m, n), n-1, G(m, n-1))
			}
		}
	}
}

func TestNewThresholdsValidation(t *testing.T) {
	if _, err := NewThresholds(AvgWeight, 1.0, 1, 0.1); err == nil {
		t.Error("Nmax=1 should be rejected")
	}
	if _, err := NewThresholds(AvgWeight, 0, 5, 0.1); err == nil {
		t.Error("T=0 should be rejected")
	}
	if _, err := NewThresholds(AvgWeight, 1.0, 5, 0); err == nil {
		t.Error("δit=0 should be rejected")
	}
	if _, err := NewThresholds(AvgWeight, 1.0, 5, MaxDeltaIt(AvgWeight, 1.0, 5)*2); err == nil {
		t.Error("δit above maximum should be rejected")
	}
	if _, err := NewThresholds(AvgWeight, 1.0, 5, MaxDeltaIt(AvgWeight, 1.0, 5)*0.3); err != nil {
		t.Errorf("valid parameters rejected: %v", err)
	}
}

// The execution example of Section 3.1 uses AvgWeight, T = 1, Nmax = 4 and
// the schedule T_2 = 0.9, T_3 = 0.975, T_4 = 1. Under the literal Eq. 8 this
// schedule corresponds to δ_it = 0.075 (the example quotes 0.15, which matches
// the S_n = n(n−1) convention; see DESIGN.md §4).
func TestPaperExecutionExampleSchedule(t *testing.T) {
	th := MustThresholds(AvgWeight, 1.0, 4, 0.075)
	want := map[int]float64{2: 0.9, 3: 0.975, 4: 1.0}
	for n, w := range want {
		if got := th.Tn(n); math.Abs(got-w) > 1e-9 {
			t.Errorf("T_%d = %v, want %v", n, got, w)
		}
	}
}

// The closed forms of Section 4.1.3: for S_n = n,
// T_n = (n-1)/(Nmax-1)·(T+δit) − δit; for S_n = n(n-1) (scaled AvgWeight),
// T_n = T − δit·(1/(n−1) − 1/(Nmax−1)).
func TestClosedFormSchedules(t *testing.T) {
	const T, dit = 2.0, 0.05
	nmax := 8
	thDeg := MustThresholds(AvgDegree, T, nmax, dit)
	for n := 2; n <= nmax; n++ {
		want := float64(n-1)/float64(nmax-1)*(T+dit) - dit
		if got := thDeg.Tn(n); math.Abs(got-want) > 1e-9 {
			t.Errorf("AvgDegree T_%d = %v, want %v", n, got, want)
		}
	}
	pair := Custom("pairs", func(n int) float64 { return float64(n) * float64(n-1) })
	thPair := MustThresholds(pair, T, nmax, dit)
	for n := 2; n <= nmax; n++ {
		want := T - dit*(1/float64(n-1)-1/float64(nmax-1))
		if got := thPair.Tn(n); math.Abs(got-want) > 1e-9 {
			t.Errorf("pairs T_%d = %v, want %v", n, got, want)
		}
	}
}

func TestTnMonotonicityAndGrowthProperty(t *testing.T) {
	for _, m := range []Measure{AvgWeight, AvgDegree, SqrtDens} {
		for _, T := range []float64{0.5, 1.0, 1.7} {
			for _, nmax := range []int{4, 6, 10} {
				max := MaxDeltaIt(m, T, nmax)
				for _, frac := range []float64{0.01, 0.2, 0.5, 0.9} {
					th, err := NewThresholds(m, T, nmax, frac*max)
					if err != nil {
						t.Fatalf("%s T=%v nmax=%d frac=%v: %v", m.Name(), T, nmax, frac, err)
					}
					if math.Abs(th.Tn(nmax)-T) > 1e-9 {
						t.Errorf("%s: T_Nmax = %v, want %v", m.Name(), th.Tn(nmax), T)
					}
					for n := 3; n <= nmax; n++ {
						if th.Tn(n) < th.Tn(n-1)-1e-9 {
							t.Errorf("%s: T_n not non-decreasing at n=%d: %v < %v", m.Name(), n, th.Tn(n), th.Tn(n-1))
						}
						gn, gn1 := G(m, n), G(m, n-1)
						if th.Tn(n)*gn <= th.Tn(n-1)*gn1 {
							t.Errorf("%s: growth property fails at n=%d", m.Name(), n)
						}
						if th.Tn(n) <= 0 {
							t.Errorf("%s: T_%d = %v ≤ 0", m.Name(), n, th.Tn(n))
						}
					}
				}
			}
		}
	}
}

func TestClassificationPredicates(t *testing.T) {
	th := MustThresholds(AvgWeight, 1.0, 4, 0.075)
	// Cardinality 2: dense iff score ≥ 0.9, output-dense iff ≥ 1.0,
	// too-dense iff score ≥ S(3)·T_3 = 3·0.975 = 2.925.
	if !th.IsDense(0.9, 2) || th.IsDense(0.89, 2) {
		t.Error("IsDense at n=2 misclassifies")
	}
	if !th.IsOutputDense(1.0, 2) || th.IsOutputDense(0.99, 2) {
		t.Error("IsOutputDense at n=2 misclassifies")
	}
	if !th.IsTooDense(2.925, 2) || th.IsTooDense(2.9, 2) {
		t.Error("IsTooDense at n=2 misclassifies")
	}
	// Cardinality above Nmax is never dense.
	if th.IsDense(100, 5) || th.IsOutputDense(100, 5) {
		t.Error("cardinality above Nmax should never be dense")
	}
	// Cardinality Nmax is never too-dense.
	if th.IsTooDense(1e9, 4) {
		t.Error("cardinality Nmax should never be too-dense")
	}
	// Singletons are never dense.
	if th.IsDense(10, 1) {
		t.Error("singleton should never be dense")
	}
}

func TestNormDensity(t *testing.T) {
	th := MustThresholds(AvgWeight, 1.0, 4, 0.075)
	if got := th.NormDensity(0.9, 2); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("NormDensity(0.9, 2) = %v, want 1", got)
	}
	if got := th.NormDensity(1.95, 3); math.Abs(got-1.95/(3*0.975)) > 1e-9 {
		t.Errorf("NormDensity(1.95, 3) = %v", got)
	}
	if th.NormDensity(1, 1) != 0 || th.NormDensity(1, 5) != 0 {
		t.Error("NormDensity outside [2, Nmax] should be 0")
	}
}

func TestIterations(t *testing.T) {
	th := MustThresholds(AvgWeight, 1.0, 4, 0.075)
	cases := []struct {
		delta float64
		want  int
	}{
		{-0.5, 0}, {0, 0}, {0.05, 1}, {0.075, 1}, {0.08, 2}, {0.151, 3},
	}
	for _, c := range cases {
		if got := th.Iterations(c.delta); got != c.want {
			t.Errorf("Iterations(%v) = %d, want %d", c.delta, got, c.want)
		}
	}
}

func TestWithThresholdRescalesDeltaIt(t *testing.T) {
	th := MustThresholds(AvgWeight, 1.0, 6, 0.05)
	th2, err := th.WithThreshold(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(th2.DeltaIt-0.04) > 1e-12 {
		t.Errorf("δit after rescale = %v, want 0.04", th2.DeltaIt)
	}
	if math.Abs(th2.Tn(th2.Nmax)-0.8) > 1e-12 {
		t.Errorf("new T_Nmax = %v, want 0.8", th2.Tn(th2.Nmax))
	}
}

// Property (Section 4.1.2 with Eq. 8): the single-exploration sufficiency
// bound (n−2)(n−1)(g_n·T_n − g_{n−1}·T_{n−1}) simplifies to exactly δ_it for
// every n, measure, and parameter choice.
func TestSingleIterationBoundEqualsDeltaIt(t *testing.T) {
	f := func(tRaw, ditRaw float64, nmaxRaw uint8, which uint8) bool {
		T := 0.2 + math.Mod(math.Abs(tRaw), 3.0)
		nmax := 3 + int(nmaxRaw%8)
		var m Measure
		switch which % 3 {
		case 0:
			m = AvgWeight
		case 1:
			m = AvgDegree
		default:
			m = SqrtDens
		}
		dit := (0.01 + 0.9*math.Mod(math.Abs(ditRaw), 1.0)) * MaxDeltaIt(m, T, nmax)
		th, err := NewThresholds(m, T, nmax, dit)
		if err != nil {
			return true // out-of-range parameter combination; skip
		}
		for n := 3; n <= nmax; n++ {
			bound := float64(n-2) * float64(n-1) * (G(m, n)*th.Tn(n) - G(m, n-1)*th.Tn(n-1))
			if math.Abs(bound-dit) > 1e-6*math.Max(1, dit) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MinDenseScore is consistent with IsDense at the boundary.
func TestMinDenseScoreBoundary(t *testing.T) {
	th := MustThresholds(SqrtDens, 0.7, 7, 0.02)
	for n := 2; n <= 7; n++ {
		s := th.MinDenseScore(n)
		if !th.IsDense(s, n) {
			t.Errorf("score exactly at MinDenseScore(%d) not dense", n)
		}
		if th.IsDense(s*(1-1e-6)-1e-6, n) {
			t.Errorf("score clearly below MinDenseScore(%d) classified dense", n)
		}
	}
}
