package story

import (
	"fmt"
	"sort"

	"dyndens/internal/core"
	"dyndens/internal/shard"
	"dyndens/internal/vset"
)

// Config tunes the story-identity rules.
type Config struct {
	// MinJaccard is the continuity threshold in (0, 1]: a newly output-dense
	// subgraph joins an existing story when the Jaccard similarity between
	// the subgraph and the story's entity set reaches it. Defaults to 0.5.
	MinJaccard float64
	// Grace is how many updates a story survives with no live subgraph
	// before it is declared dead. The fading-weight schedule routinely drops
	// a story's subgraphs below the output threshold at an epoch tick and
	// re-discovers them a few documents later; Grace spans that gap so the
	// story keeps its identity. Defaults to 200; 0 selects the default, so a
	// zero-length window ("die at the first update after fading") must be
	// requested explicitly with the GraceNone sentinel.
	Grace uint64
	// MinCardinality ignores output-dense subgraphs with fewer vertices
	// (0 or 1 disables the check). It is the application-level noise gate:
	// hot background entity pairs form legitimate 2-entity dense subgraphs
	// that a story consumer usually does not want.
	MinCardinality int
}

// GraceNone is the explicit "no grace window" sentinel for Config.Grace: a
// story whose last live subgraph ceases at update s dies at s+1. It exists
// because Config treats a zero Grace as "use the documented default of 200",
// which previously made a zero-length window unrepresentable.
const GraceNone = ^uint64(0)

func (c Config) withDefaults() Config {
	if c.MinJaccard == 0 {
		c.MinJaccard = 0.5
	}
	switch c.Grace {
	case 0:
		c.Grace = 200
	case GraceNone:
		c.Grace = 0
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MinJaccard <= 0 || c.MinJaccard > 1 {
		return fmt.Errorf("story: continuity threshold %v outside (0, 1]", c.MinJaccard)
	}
	return nil
}

// storyState is the tracker's mutable record of one story.
type storyState struct {
	id       ID
	entities vset.Set            // union of live subgraph sets; fade snapshot while fading
	live     map[string]vset.Set // currently output-dense subgraphs, by canonical key
	bornSeq  uint64
	lastSeq  uint64
	fadeSeq  uint64 // seq at which the last live subgraph ceased; 0 = live
	snapSeq  uint64 // seq of the most recent fade snapshot; 0 = never faded
	snapshot vset.Set
}

// expirySeq is the update sequence at which a fading story dies: the first
// sequence no longer inside its grace window.
func (s *storyState) expirySeq(grace uint64) uint64 { return s.fadeSeq + grace + 1 }

// Stats summarises a tracker's lifetime and current table.
type Stats struct {
	Born, Updated, Merged, Split, Died int // lifecycle records emitted
	Live, Fading                       int // current table composition
	Subgraphs                          int // live output-dense subgraphs tracked
}

// Tracker maintains persistent story identities from the engine's
// output-dense change stream. It consumes events in either of two ways:
//
//   - behind a single core.Engine: install it with Engine.SetSink (it
//     implements core.EventSink and core.UpdateBoundarySink, so the engine
//     delivers events and per-update boundaries automatically);
//   - behind a sharded deployment: install it with
//     shard.ShardedEngine.SetSeqSink (it implements shard.SeqSink and infers
//     boundaries from the merger's sequence numbers).
//
// Both modes buffer each update's events and resolve them at the boundary in
// canonical order, so the lifecycle output is a pure function of the
// per-update event sets — which the sharded merger guarantees are identical
// to the single engine's. Call Close once the stream ends to account for
// trailing event-free updates.
//
// Identity rules, applied per became-subgraph in canonical order:
//
//   - the subgraph joins the story with the most similar entity set among
//     stories at or above MinJaccard (ties to the lowest ID), reviving it if
//     it was fading;
//   - if several stories clear the threshold, the others are merged into the
//     chosen one (a bridging subgraph collapses their identities);
//   - if none does but the fade-time snapshot of some story within its grace
//     window matches, a new story is born as a split from it;
//   - otherwise a plain new story is born.
//
// A story whose last live subgraph ceases starts fading; if no subgraph
// rejoins it within Grace updates it dies at the logical expiry sequence.
//
// The tracker is not safe for concurrent use: in sharded mode it runs on the
// merge goroutine, so query it only after the deployment is flushed.
type Tracker struct {
	cfg Config

	seq        uint64 // last resolved update sequence
	pendingSeq uint64 // sequence the buffered events belong to (EmitSeq mode)
	buf        []core.Event

	nextID  ID
	stories map[ID]*storyState
	byKey   map[string]ID // live subgraph key → owning story

	records  []Record
	onRecord func(Record)

	startEnt map[ID]string // per-resolve: entity key when first touched
}

// NewTracker builds a tracker. It returns an error for invalid
// configurations.
func NewTracker(cfg Config) (*Tracker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{
		cfg:      cfg,
		nextID:   1,
		stories:  make(map[ID]*storyState),
		byKey:    make(map[string]ID),
		startEnt: make(map[ID]string),
	}, nil
}

// MustTracker is NewTracker that panics on error.
func MustTracker(cfg Config) *Tracker {
	t, err := NewTracker(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the effective configuration (with defaults applied).
func (t *Tracker) Config() Config { return t.cfg }

// SetRecordSink installs a callback invoked for every lifecycle record as it
// is produced (the stories CLI streams its log through this). Records are
// also retained and available via Records.
func (t *Tracker) SetRecordSink(fn func(Record)) { t.onRecord = fn }

// Emit implements core.EventSink: events are buffered until the engine marks
// the update boundary via EndUpdate.
func (t *Tracker) Emit(ev core.Event) { t.buf = append(t.buf, ev) }

// EndUpdate implements core.UpdateBoundarySink: the buffered events are
// resolved as update t.Seq()+1. The engine invokes it once per Process call,
// no-ops included, which keeps the sequence aligned with a sharded merger's.
func (t *Tracker) EndUpdate() { t.resolve(t.seq + 1) }

// EmitSeq implements shard.SeqSink: a sequence change resolves the previous
// update's buffer. Updates that produced no events are skipped over here and
// accounted for lazily — expiry uses logical sequences, so the outcome is
// identical to the single-engine mode.
func (t *Tracker) EmitSeq(ev shard.SeqEvent) {
	if t.pendingSeq != 0 && ev.Seq != t.pendingSeq {
		t.resolve(t.pendingSeq)
	}
	t.pendingSeq = ev.Seq
	t.buf = append(t.buf, ev.Event)
}

// Close resolves any buffered update and accounts for trailing event-free
// updates up to finalSeq (the total number of updates processed): fading
// stories whose grace windows ended by then die. Queries are valid before
// Close, but a final table that should reflect the whole stream needs it.
func (t *Tracker) Close(finalSeq uint64) {
	switch {
	case t.pendingSeq != 0:
		t.resolve(t.pendingSeq)
	case len(t.buf) > 0:
		t.resolve(t.seq + 1)
	}
	if finalSeq > t.seq {
		t.expireThrough(finalSeq)
		t.seq = finalSeq
	}
}

// Seq returns the last resolved update sequence.
func (t *Tracker) Seq() uint64 { return t.seq }

// resolve applies the buffered events as update s: expiries first, then the
// events in canonical order, then one coalesced Updated record per story
// whose entity set changed.
func (t *Tracker) resolve(s uint64) {
	if s <= t.seq {
		panic(fmt.Sprintf("story: update sequence went backwards: %d after %d", s, t.seq))
	}
	t.expireThrough(s)

	events := t.buf
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Kind != events[j].Kind {
			return events[i].Kind < events[j].Kind
		}
		return events[i].Set.Key() < events[j].Set.Key()
	})
	clear(t.startEnt)
	for _, ev := range events {
		if ev.Set.Len() < t.cfg.MinCardinality {
			continue
		}
		switch ev.Kind {
		case core.BecameOutputDense:
			t.became(s, ev.Set)
		case core.CeasedOutputDense:
			t.ceased(s, ev.Set)
		}
	}

	for _, id := range sortedIDs(t.startEnt) {
		st, ok := t.stories[id]
		if !ok {
			continue // merged away within this update
		}
		if st.entities.Key() != t.startEnt[id] {
			t.record(Record{Seq: s, Kind: Updated, Story: id, Entities: st.entities})
		}
	}

	t.seq = s
	t.pendingSeq = 0
	t.buf = t.buf[:0]
}

// expireThrough kills every fading story whose grace window ended at or
// before sequence s, in deterministic (expiry, ID) order. Died records carry
// the logical expiry sequence, so the outcome does not depend on when the
// expiry is noticed (the sharded mode notices lazily).
func (t *Tracker) expireThrough(s uint64) {
	var dead []*storyState
	for _, st := range t.stories {
		if st.fadeSeq != 0 && st.expirySeq(t.cfg.Grace) <= s {
			dead = append(dead, st)
		}
	}
	sort.Slice(dead, func(i, j int) bool {
		ei, ej := dead[i].expirySeq(t.cfg.Grace), dead[j].expirySeq(t.cfg.Grace)
		if ei != ej {
			return ei < ej
		}
		return dead[i].id < dead[j].id
	})
	for _, st := range dead {
		delete(t.stories, st.id)
		t.record(Record{Seq: st.expirySeq(t.cfg.Grace), Kind: Died, Story: st.id, Entities: st.entities})
	}
}

// touch records a story's entity set the first time an update touches it, so
// resolve can emit one coalesced Updated record if the set ends up changed.
func (t *Tracker) touch(st *storyState) {
	if _, ok := t.startEnt[st.id]; !ok {
		t.startEnt[st.id] = st.entities.Key()
	}
}

// ceased removes a no-longer-output-dense subgraph from its story; the story
// starts fading when its last subgraph goes.
func (t *Tracker) ceased(s uint64, set vset.Set) {
	k := set.Key()
	id, ok := t.byKey[k]
	if !ok {
		return // never attached (e.g. below MinCardinality at became time)
	}
	st := t.stories[id]
	t.touch(st)
	delete(t.byKey, k)
	delete(st.live, k)
	st.lastSeq = s
	if len(st.live) == 0 {
		st.fadeSeq = s
		st.snapSeq = s
		st.snapshot = st.entities
	} else {
		st.entities = unionOf(st.live)
	}
}

// became attaches a newly output-dense subgraph to the story table according
// to the identity rules.
func (t *Tracker) became(s uint64, set vset.Set) {
	k := set.Key()
	if _, dup := t.byKey[k]; dup {
		return // defensive: the engine never reports a live subgraph as became
	}

	var cands []*storyState
	for _, id := range storyIDs(t.stories) {
		st := t.stories[id]
		if inter, union := overlap(set, st.entities); clears(inter, union, t.cfg.MinJaccard) {
			cands = append(cands, st)
		}
	}
	if len(cands) == 0 {
		t.bear(s, k, set)
		return
	}

	// Best match: highest Jaccard, ties to the lowest (oldest) ID. cands is
	// already in ascending ID order.
	best := cands[0]
	bi, bu := overlap(set, best.entities)
	for _, st := range cands[1:] {
		if i, u := overlap(set, st.entities); jaccardGreater(i, u, bi, bu) {
			best, bi, bu = st, i, u
		}
	}

	t.touch(best)
	best.live[k] = set
	t.byKey[k] = best.id
	best.fadeSeq = 0
	best.entities = unionOf(best.live)
	best.lastSeq = s

	// The subgraph bridges every other candidate above the threshold:
	// collapse them into the chosen story.
	for _, other := range cands {
		if other == best {
			continue
		}
		t.touch(other)
		for k2, s2 := range other.live {
			best.live[k2] = s2
			t.byKey[k2] = best.id
		}
		best.entities = unionOf(best.live)
		delete(t.stories, other.id)
		delete(t.startEnt, other.id)
		t.record(Record{Seq: s, Kind: Merged, Story: other.id, Other: best.id, Entities: best.entities})
	}
}

// bear creates a new story for a subgraph that matched no current story,
// checking fade-time snapshots for a split parent first.
func (t *Tracker) bear(s uint64, k string, set vset.Set) {
	var parent *storyState
	var pi, pu int
	for _, id := range storyIDs(t.stories) {
		st := t.stories[id]
		if st.snapSeq == 0 || s > st.snapSeq+t.cfg.Grace {
			continue
		}
		if inter, union := overlap(set, st.snapshot); clears(inter, union, t.cfg.MinJaccard) {
			if parent == nil || jaccardGreater(inter, union, pi, pu) {
				parent, pi, pu = st, inter, union
			}
		}
	}

	id := t.nextID
	t.nextID++
	st := &storyState{
		id:       id,
		entities: set,
		live:     map[string]vset.Set{k: set},
		bornSeq:  s,
		lastSeq:  s,
	}
	t.stories[id] = st
	t.byKey[k] = id
	t.startEnt[id] = set.Key() // later same-update attachments still report
	if parent != nil {
		t.record(Record{Seq: s, Kind: Split, Story: id, Other: parent.id, Entities: set})
	} else {
		t.record(Record{Seq: s, Kind: Born, Story: id, Entities: set})
	}
}

func (t *Tracker) record(r Record) {
	t.records = append(t.records, r)
	if t.onRecord != nil {
		t.onRecord(r)
	}
}

// Records returns every lifecycle record produced so far, in order. The
// slice and the Entities sets it carries are copied out of the tracker's
// log, so they are the caller's to keep or mutate: nothing a caller does to
// the returned value can corrupt lifecycle history, and the tracker's later
// progress never changes a previously returned slice. (Records delivered
// through SetRecordSink are not copied — a sink that retains them must treat
// Record.Entities as read-only.)
func (t *Tracker) Records() []Record {
	out := make([]Record, len(t.records))
	copy(out, t.records)
	for i := range out {
		out[i].Entities = out[i].Entities.Clone()
	}
	return out
}

// Stories returns the current story table, sorted by ID: live stories first
// have their union-of-subgraphs entity sets, fading ones their fade
// snapshots. Like Records, the returned rows (including their Entities sets)
// are private copies owned by the caller.
func (t *Tracker) Stories() []Snapshot {
	out := make([]Snapshot, 0, len(t.stories))
	for _, id := range storyIDs(t.stories) {
		st := t.stories[id]
		out = append(out, Snapshot{
			ID:        st.id,
			Entities:  st.entities.Clone(),
			Subgraphs: len(st.live),
			BornSeq:   st.bornSeq,
			LastSeq:   st.lastSeq,
			Fading:    st.fadeSeq != 0,
		})
	}
	return out
}

// OwnerOf returns the story currently holding the live output-dense subgraph
// with the given canonical key (vset.Set.Key), or false if no story tracks
// it (it never became output-dense, fell below MinCardinality, or has
// ceased). It is the ownership hook the serving layer uses to attribute
// engine events to stories at update boundaries; like every query it must
// not be called concurrently with event delivery.
func (t *Tracker) OwnerOf(key string) (ID, bool) {
	id, ok := t.byKey[key]
	return id, ok
}

// LiveKeys returns the canonical keys of the output-dense subgraphs the
// tracker currently attributes to stories, sorted lexicographically. With
// MinCardinality 0 this equals Engine.OutputDenseKeys after every update —
// the result-set contract the tracker builds on.
func (t *Tracker) LiveKeys() []string {
	keys := make([]string, 0, len(t.byKey))
	for k := range t.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Stats summarises the records and the current table.
func (t *Tracker) Stats() Stats {
	var s Stats
	for _, r := range t.records {
		switch r.Kind {
		case Born:
			s.Born++
		case Updated:
			s.Updated++
		case Merged:
			s.Merged++
		case Split:
			s.Split++
		case Died:
			s.Died++
		}
	}
	for _, st := range t.stories {
		if st.fadeSeq != 0 {
			s.Fading++
		} else {
			s.Live++
		}
		s.Subgraphs += len(st.live)
	}
	return s
}

// unionOf returns the union of the given subgraph sets (deterministic: union
// is order-independent).
func unionOf(live map[string]vset.Set) vset.Set {
	var u vset.Set
	for _, s := range live {
		u = u.Union(s)
	}
	return u
}

// overlap returns |a ∩ b| and |a ∪ b| by merge scan.
func overlap(a, b vset.Set) (inter, union int) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	return inter, len(a) + len(b) - inter
}

// clears reports whether inter/union ≥ theta (union 0 never clears).
func clears(inter, union int, theta float64) bool {
	return union > 0 && float64(inter) >= theta*float64(union)
}

// jaccardGreater reports i1/u1 > i2/u2 by cross-multiplication, avoiding
// float division in the tie-breaking path.
func jaccardGreater(i1, u1, i2, u2 int) bool {
	return i1*u2 > i2*u1
}

// storyIDs returns the story IDs in ascending order.
func storyIDs(m map[ID]*storyState) []ID {
	ids := make([]ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sortedIDs returns the map's keys in ascending order.
func sortedIDs(m map[ID]string) []ID {
	ids := make([]ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
