package story

import (
	"fmt"
	"sort"

	"dyndens/internal/vset"
)

// This file is the story half of crash recovery (internal/persist): the
// tracker's table, lifecycle log, and ID counter export to a plain value and
// import into a fresh tracker, so a restarted pipeline resumes with story
// identities intact — the property the paper's real-time story identification
// is about.

// Sync resolves any buffered update so the tracker reaches a quiescent,
// exportable state. In sharded (EmitSeq) mode the events of the last
// event-carrying update are buffered until the next sequence arrives;
// resolving them early is equivalent because the merger delivers all of an
// update's events before the deployment quiesces, and expiry uses logical
// sequences. In single-engine mode the buffer is always empty between
// updates, so Sync is a no-op there.
func (t *Tracker) Sync() {
	switch {
	case t.pendingSeq != 0:
		t.resolve(t.pendingSeq)
	case len(t.buf) > 0:
		t.resolve(t.seq + 1)
	}
}

// StoryState is the persisted form of one story-table row.
type StoryState struct {
	ID       ID
	Entities vset.Set
	Live     []vset.Set // live subgraph sets, sorted by canonical key
	BornSeq  uint64
	LastSeq  uint64
	FadeSeq  uint64
	SnapSeq  uint64
	Snapshot vset.Set
}

// TrackerState is the persisted state of a Tracker at a quiescent boundary
// (Sync'd, no buffered events). Stories are sorted by ID.
type TrackerState struct {
	Seq     uint64
	NextID  ID
	Stories []StoryState
	Records []Record
}

// ExportState captures the tracker's table, lifecycle log, and ID counter.
// It fails if events are still buffered: call Sync at a quiesced boundary
// first.
func (t *Tracker) ExportState() (TrackerState, error) {
	if t.pendingSeq != 0 || len(t.buf) > 0 {
		return TrackerState{}, fmt.Errorf("story: tracker export requires a resolved boundary (call Sync)")
	}
	st := TrackerState{Seq: t.seq, NextID: t.nextID, Records: t.Records()}
	for _, id := range storyIDs(t.stories) {
		s := t.stories[id]
		row := StoryState{
			ID:       s.id,
			Entities: s.entities.Clone(),
			BornSeq:  s.bornSeq,
			LastSeq:  s.lastSeq,
			FadeSeq:  s.fadeSeq,
			SnapSeq:  s.snapSeq,
			Snapshot: s.snapshot.Clone(),
		}
		keys := make([]string, 0, len(s.live))
		for k := range s.live {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			row.Live = append(row.Live, s.live[k].Clone())
		}
		st.Stories = append(st.Stories, row)
	}
	return st, nil
}

// NewTrackerFromState builds a tracker resuming from an exported state: the
// story table (including fade snapshots and grace bookkeeping), the full
// lifecycle log, the ID counter, and the resolved sequence all come back
// exactly, so subsequent events produce the same records an uninterrupted
// tracker would have. Restored records are NOT replayed through the record
// sink — they were already delivered before the snapshot was cut.
func NewTrackerFromState(cfg Config, st TrackerState) (*Tracker, error) {
	t, err := NewTracker(cfg)
	if err != nil {
		return nil, err
	}
	if st.NextID == 0 {
		return nil, fmt.Errorf("story: restored next story ID must be ≥ 1")
	}
	t.seq = st.Seq
	t.nextID = st.NextID
	for _, row := range st.Stories {
		if row.ID == 0 || row.ID >= st.NextID {
			return nil, fmt.Errorf("story: restored story ID %d outside [1, %d)", row.ID, st.NextID)
		}
		if _, dup := t.stories[row.ID]; dup {
			return nil, fmt.Errorf("story: restored story ID %d duplicated", row.ID)
		}
		s := &storyState{
			id:       row.ID,
			entities: row.Entities,
			live:     make(map[string]vset.Set, len(row.Live)),
			bornSeq:  row.BornSeq,
			lastSeq:  row.LastSeq,
			fadeSeq:  row.FadeSeq,
			snapSeq:  row.SnapSeq,
			snapshot: row.Snapshot,
		}
		for _, set := range row.Live {
			k := set.Key()
			if owner, taken := t.byKey[k]; taken {
				return nil, fmt.Errorf("story: restored subgraph %v owned by both story %d and %d", set, owner, row.ID)
			}
			s.live[k] = set
			t.byKey[k] = row.ID
		}
		if row.FadeSeq == 0 && len(s.live) == 0 {
			return nil, fmt.Errorf("story: restored story %d is live with no subgraphs", row.ID)
		}
		t.stories[row.ID] = s
	}
	t.records = st.Records
	return t, nil
}
