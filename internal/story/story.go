// Package story is the application layer of the DynDens pipeline: it turns
// the engine's stream of output-dense subgraph changes into *stories* with
// persistent identities, the user-facing result of the paper's real-time
// story identification system (Section 2).
//
// The engine reports anonymous set transitions — BecameOutputDense{a,b,c},
// CeasedOutputDense{a,b,c,d} — while a user following a news event wants "the
// same story" to keep its identity as entities join and leave, as the fading
// weights briefly drop it below the output threshold between epochs, and as
// two threads of coverage merge or one splits. The Tracker in this package
// maintains that mapping incrementally from sink events alone: it never
// queries the engine, so it works identically behind a single core.Engine and
// behind the merged event stream of a K-shard deployment.
package story

import (
	"fmt"
	"sort"

	"dyndens/internal/core"
	"dyndens/internal/vset"
)

// ID identifies a story. IDs are assigned sequentially from 1 in the order
// stories are born, so equal event streams always produce equal IDs.
type ID uint64

// LifecycleKind classifies a story lifecycle transition.
type LifecycleKind uint8

const (
	// Born: a subgraph became output-dense and matched no existing story.
	Born LifecycleKind = iota + 1
	// Updated: a story's entity set changed (it gained or lost subgraphs),
	// or it recovered a live subgraph while fading.
	Updated
	// Merged: a story was absorbed into another (Other) after one subgraph
	// bridged both above the continuity threshold.
	Merged
	// Split: a story was born from the fade-time entity snapshot of an
	// existing story (Other) — one thread of coverage forked into two.
	Split
	// Died: a fading story exhausted its grace window with no live subgraph.
	Died
)

// String implements fmt.Stringer.
func (k LifecycleKind) String() string {
	switch k {
	case Born:
		return "born"
	case Updated:
		return "updated"
	case Merged:
		return "merged"
	case Split:
		return "split"
	case Died:
		return "died"
	default:
		return fmt.Sprintf("LifecycleKind(%d)", uint8(k))
	}
}

// Record is one story lifecycle transition. The sequence of Records is the
// deterministic, machine-comparable output of the tracker: two runs over the
// same update stream — single-engine or sharded — produce identical records.
type Record struct {
	// Seq is the 1-based update sequence number at which the transition took
	// effect. For Died it is the logical expiry sequence (fade + grace + 1),
	// which may point between event-carrying updates.
	Seq uint64
	// Kind is the transition.
	Kind LifecycleKind
	// Story is the story the record is about.
	Story ID
	// Other is the counterparty: the absorbing story for Merged, the parent
	// story for Split, and 0 otherwise.
	Other ID
	// Entities is the story's entity set after the transition (the last
	// known set for Died).
	Entities vset.Set
}

// String formats the record the way the stories CLI logs it.
func (r Record) String() string {
	switch r.Kind {
	case Merged:
		return fmt.Sprintf("[seq %d] %-7s story=%d into=%d %v", r.Seq, r.Kind, r.Story, r.Other, r.Entities)
	case Split:
		return fmt.Sprintf("[seq %d] %-7s story=%d from=%d %v", r.Seq, r.Kind, r.Story, r.Other, r.Entities)
	default:
		return fmt.Sprintf("[seq %d] %-7s story=%d %v", r.Seq, r.Kind, r.Story, r.Entities)
	}
}

// Snapshot is one row of the queryable current-story table.
type Snapshot struct {
	ID ID
	// Entities is the union of the story's live subgraph sets (the fade-time
	// snapshot while the story is fading).
	Entities vset.Set
	// Subgraphs is the number of currently output-dense subgraphs backing
	// the story (0 while fading).
	Subgraphs int
	// BornSeq and LastSeq delimit the story's observed activity.
	BornSeq, LastSeq uint64
	// Fading reports that the story currently has no live subgraph and is
	// waiting out its grace window.
	Fading bool
}

// ResultSet maintains the engine's output-dense result set purely from sink
// events: Became inserts a subgraph, Ceased removes it. It formalises the
// contract the story layer is built on — after every update, a consumer that
// applied the event stream holds exactly Engine.OutputDenseKeys() (for a
// sharded deployment, ShardedEngine.OutputDenseKeys()) — and is small enough
// to embed anywhere a live view of the result set is needed.
//
// ResultSet implements core.EventSink and retains the event sets, so the
// engine hands it private copies.
type ResultSet struct {
	sets map[string]vset.Set
}

// NewResultSet returns an empty result set.
func NewResultSet() *ResultSet {
	return &ResultSet{sets: make(map[string]vset.Set)}
}

// Emit implements core.EventSink.
func (r *ResultSet) Emit(ev core.Event) { r.Apply(ev) }

// Apply folds one event into the set.
func (r *ResultSet) Apply(ev core.Event) {
	k := ev.Set.Key()
	switch ev.Kind {
	case core.BecameOutputDense:
		r.sets[k] = ev.Set
	case core.CeasedOutputDense:
		delete(r.sets, k)
	}
}

// Len returns the number of subgraphs currently in the set.
func (r *ResultSet) Len() int { return len(r.sets) }

// Contains reports whether the subgraph with the given canonical key is in
// the set.
func (r *ResultSet) Contains(key string) bool {
	_, ok := r.sets[key]
	return ok
}

// Keys returns the canonical subgraph keys, sorted lexicographically — the
// comparison form of Engine.OutputDenseKeys.
func (r *ResultSet) Keys() []string {
	keys := make([]string, 0, len(r.sets))
	for k := range r.sets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
