package story

import (
	"fmt"
	"reflect"
	"testing"

	"dyndens/internal/core"
	"dyndens/internal/shard"
	"dyndens/internal/stream"
)

// pipelineWorkload is the reference documents→stories workload: three
// 4-entity stories planted over Zipf background chatter, with staggered
// activity windows so the stream exercises birth, fading blips at epoch
// ticks, and death. The engine/tracker parameters put the planted
// co-occurrence weights inside the band where story subgraphs are
// output-dense but never so heavy that free-rider supersets appear.
type pipelineWorkload struct {
	doc stream.DocSynthConfig
	agg stream.AggregatorConfig
	eng core.Config
	trk Config
}

func defaultWorkload() pipelineWorkload {
	return pipelineWorkload{
		doc: stream.DocSynthConfig{
			BackgroundEntities: 30,
			Stories:            3,
			StorySize:          4,
			Docs:               600,
			Seed:               7,
			StoryFraction:      0.75,
			BackgroundSkew:     1.1,
			NoiseMentionProb:   -1,
		},
		agg: stream.AggregatorConfig{EpochLength: 25, Decay: 0.7},
		eng: core.Config{T: 6.5, Nmax: 4},
		trk: Config{MinCardinality: 3, Grace: 350},
	}
}

// updates materialises the workload's aggregated update stream.
func (w pipelineWorkload) updates(t *testing.T) ([]stream.Update, []stream.PlantedStory) {
	t.Helper()
	gen := stream.MustDocSynthetic(w.doc)
	updates, err := stream.Drain(stream.MustAggregator(gen, w.agg))
	if err != nil {
		t.Fatal(err)
	}
	return updates, gen.PlantedStories()
}

// runSingle drives the updates through a single engine with the tracker
// installed as its sink (events and update boundaries arrive automatically).
func (w pipelineWorkload) runSingle(t *testing.T, updates []stream.Update) *Tracker {
	t.Helper()
	eng := core.MustNew(w.eng)
	tr := MustTracker(w.trk)
	eng.SetSink(tr)
	for _, u := range updates {
		eng.Process(u)
	}
	tr.Close(uint64(len(updates)))
	return tr
}

// runSharded drives the updates through a K-shard deployment with the
// tracker consuming the merged, sequence-numbered event stream.
func (w pipelineWorkload) runSharded(t *testing.T, updates []stream.Update, shards int) *Tracker {
	t.Helper()
	se := shard.MustNew(shard.Config{Shards: shards, Engine: w.eng, BatchSize: 64})
	defer se.Close()
	tr := MustTracker(w.trk)
	se.SetSeqSink(tr)
	se.ProcessAll(updates)
	se.Flush()
	tr.Close(uint64(len(updates)))
	return tr
}

// TestStoryPipelineRecoversPlantedStories is the end-to-end acceptance
// property: the documents→aggregator→engine→tracker pipeline recovers each
// planted story as exactly one tracked story — one stable ID for its whole
// lifetime, entity set reaching exactly the planted set — and stories whose
// activity window ends die, while the still-active one survives.
func TestStoryPipelineRecoversPlantedStories(t *testing.T) {
	w := defaultWorkload()
	updates, planted := w.updates(t)
	tr := w.runSingle(t, updates)

	for s, p := range planted {
		// Every record whose entity set overlaps this planted story's
		// dedicated entity range (entity ranges are disjoint and noise
		// mentions are off, so overlap is unambiguous).
		var ids []ID
		seen := map[ID]bool{}
		reachedFull := false
		for _, r := range tr.Records() {
			if inter, _ := overlap(r.Entities, p.Entities); inter == 0 {
				continue
			}
			if !seen[r.Story] {
				seen[r.Story] = true
				ids = append(ids, r.Story)
			}
			if r.Entities.Equal(p.Entities) {
				reachedFull = true
			}
		}
		if len(ids) != 1 {
			t.Fatalf("planted story %d (%v) tracked under %d IDs %v, want one stable identity",
				s, p.Entities, len(ids), ids)
		}
		if !reachedFull {
			t.Fatalf("planted story %d: no record reached the full entity set %v", s, p.Entities)
		}

		died := false
		for _, r := range tr.Records() {
			if r.Story == ids[0] && r.Kind == Died {
				died = true
			}
		}
		endsEarly := p.End < w.doc.Docs // window closes before the stream does
		if endsEarly && !died {
			t.Errorf("planted story %d ended at doc %d but never died", s, p.End)
		}
		if !endsEarly {
			alive := false
			for _, snap := range tr.Stories() {
				if snap.ID == ids[0] {
					if !snap.Entities.Equal(p.Entities) {
						t.Errorf("surviving planted story %d entities = %v, want %v", s, snap.Entities, p.Entities)
					}
					alive = true
				}
			}
			if !alive {
				t.Errorf("planted story %d is still active but missing from the final table", s)
			}
		}
	}

	// The workload must exercise the full lifecycle vocabulary.
	st := tr.Stats()
	if st.Born == 0 || st.Updated == 0 || st.Died == 0 || st.Merged == 0 || st.Split == 0 {
		t.Fatalf("lifecycle coverage too weak: %+v", st)
	}
}

// TestStoryPipelineDeterministic replays the identical workload twice and
// requires byte-identical lifecycle output — stable story IDs included.
func TestStoryPipelineDeterministic(t *testing.T) {
	w := defaultWorkload()
	updates, _ := w.updates(t)
	a := w.runSingle(t, updates)
	b := w.runSingle(t, updates)
	if !reflect.DeepEqual(a.Records(), b.Records()) {
		t.Fatal("two identical runs produced different records")
	}
	if !reflect.DeepEqual(a.Stories(), b.Stories()) {
		t.Fatal("two identical runs produced different story tables")
	}
}

// TestStoryPipelineShardedConformance is the tentpole invariant: the tracker
// fed by the K-shard merged stream produces records and a story table
// identical to the single-engine run, for K ∈ {1, 2, 4}.
func TestStoryPipelineShardedConformance(t *testing.T) {
	w := defaultWorkload()
	updates, _ := w.updates(t)
	ref := w.runSingle(t, updates)
	if len(ref.Records()) == 0 {
		t.Fatal("reference run produced no records; workload too weak")
	}
	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			got := w.runSharded(t, updates, k)
			if !reflect.DeepEqual(got.Records(), ref.Records()) {
				t.Fatalf("K=%d records diverge from single engine (%d vs %d records): %s",
					k, len(got.Records()), len(ref.Records()), firstDiff(got.Records(), ref.Records()))
			}
			if !reflect.DeepEqual(got.Stories(), ref.Stories()) {
				t.Fatalf("K=%d story tables diverge:\nsharded %+v\nsingle  %+v", k, got.Stories(), ref.Stories())
			}
			if got.Seq() != ref.Seq() {
				t.Fatalf("K=%d final seq %d != single %d", k, got.Seq(), ref.Seq())
			}
		})
	}
}

// firstDiff locates the first differing record for failure messages.
func firstDiff(a, b []Record) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(a[i], b[i]) {
			return fmt.Sprintf("index %d: %v vs %v", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("length mismatch %d vs %d", len(a), len(b))
}

// TestTrackerLiveKeysMatchEngine pins the result-set contract from the
// tracker's side: with no cardinality gate, the subgraphs the tracker
// attributes to stories are exactly the engine's output-dense set after
// every update.
func TestTrackerLiveKeysMatchEngine(t *testing.T) {
	src := stream.MustSynthetic(stream.SynthConfig{
		Vertices:         12,
		Updates:          400,
		Seed:             19,
		NegativeFraction: 0.35,
		MeanDelta:        1.5,
	})
	updates, err := stream.Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.MustNew(core.Config{T: 2, Nmax: 4})
	tr := MustTracker(Config{Grace: 5})
	eng.SetSink(tr)
	checked := 0
	for i, u := range updates {
		eng.Process(u)
		got := tr.LiveKeys()
		want := eng.OutputDenseKeys()
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("after update %d: tracker live keys %v != engine %v", i+1, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("stream never produced a non-empty result set")
	}
}
