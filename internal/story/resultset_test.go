package story

import (
	"slices"
	"testing"

	"dyndens/internal/core"
	"dyndens/internal/shard"
	"dyndens/internal/stream"
)

// These tests formalise the incremental result-set maintenance contract the
// story layer is built on: a consumer that does nothing but apply sink
// events to a key set holds, after EVERY update, exactly the engine's
// explicitly indexed output-dense set — for the single engine and for the
// merged stream of a sharded deployment alike. The crossval suite in
// internal/stream checks the same property at oracle checkpoints; here it is
// pinned update-for-update through the exported consumer.

// contractStream is a small, churny update stream: enough negative updates
// that subgraphs both enter and leave the result set repeatedly.
func contractStream(t *testing.T, seed int64) []stream.Update {
	t.Helper()
	updates, err := stream.Drain(stream.MustSynthetic(stream.SynthConfig{
		Vertices:         10,
		Updates:          300,
		Seed:             seed,
		NegativeFraction: 0.35,
		MeanDelta:        1.5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	return updates
}

func TestResultSetMatchesEngineAfterEveryUpdate(t *testing.T) {
	for seed := int64(31); seed <= 33; seed++ {
		updates := contractStream(t, seed)
		eng := core.MustNew(core.Config{T: 2, Nmax: 4})
		rs := NewResultSet()
		eng.SetSink(rs)
		transitions := 0
		for i, u := range updates {
			before := rs.Len()
			eng.Process(u)
			if rs.Len() != before {
				transitions++
			}
			got, want := rs.Keys(), eng.OutputDenseKeys()
			if !slices.Equal(got, want) {
				t.Fatalf("seed %d, update %d: event-maintained set %v != engine %v", seed, i+1, got, want)
			}
		}
		if transitions == 0 {
			t.Fatalf("seed %d: result set never changed; contract exercised nothing", seed)
		}
	}
}

func TestResultSetMatchesShardedEngineAfterEveryUpdate(t *testing.T) {
	for _, k := range []int{1, 4} {
		updates := contractStream(t, 37)
		se := shard.MustNew(shard.Config{Shards: k, Engine: core.Config{T: 2, Nmax: 4}})
		rs := NewResultSet()
		se.SetSink(rs)
		nonEmpty := 0
		for i, u := range updates {
			se.Process(u)
			se.Flush() // barrier: all events for this update are merged
			got, want := rs.Keys(), se.OutputDenseKeys()
			if !slices.Equal(got, want) {
				t.Fatalf("K=%d, update %d: event-maintained set %v != merged result set %v", k, i+1, got, want)
			}
			if len(got) > 0 {
				nonEmpty++
			}
		}
		if nonEmpty == 0 {
			t.Fatalf("K=%d: result set never became non-empty", k)
		}
		se.Close()
	}
}

// TestResultSetContains covers the point queries the story CLI uses.
func TestResultSetContains(t *testing.T) {
	rs := NewResultSet()
	rs.Apply(became(1, 2, 3))
	if !rs.Contains("1,2,3") || rs.Contains("1,2") || rs.Len() != 1 {
		t.Fatalf("unexpected state: keys=%v", rs.Keys())
	}
	rs.Apply(ceased(1, 2, 3))
	if rs.Contains("1,2,3") || rs.Len() != 0 {
		t.Fatalf("ceased did not remove: keys=%v", rs.Keys())
	}
}
