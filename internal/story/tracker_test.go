package story

import (
	"fmt"
	"reflect"
	"testing"

	"dyndens/internal/core"
	"dyndens/internal/vset"
)

// turn pushes one update's events through the tracker in Emit mode.
func turn(t *Tracker, evs ...core.Event) {
	for _, ev := range evs {
		t.Emit(ev)
	}
	t.EndUpdate()
}

func became(vs ...vset.Vertex) core.Event {
	return core.Event{Kind: core.BecameOutputDense, Set: vset.New(vs...)}
}

func ceased(vs ...vset.Vertex) core.Event {
	return core.Event{Kind: core.CeasedOutputDense, Set: vset.New(vs...)}
}

// kinds extracts the record kinds in order.
func kinds(records []Record) []LifecycleKind {
	out := make([]LifecycleKind, len(records))
	for i, r := range records {
		out[i] = r.Kind
	}
	return out
}

func TestTrackerBornAndUpdated(t *testing.T) {
	tr := MustTracker(Config{})
	turn(tr, became(1, 2, 3))
	turn(tr, became(1, 2, 3, 4)) // Jaccard 3/4 → same story, grown
	turn(tr)                     // event-free update advances the clock only

	recs := tr.Records()
	if len(recs) != 2 || recs[0].Kind != Born || recs[1].Kind != Updated {
		t.Fatalf("records = %v", recs)
	}
	if recs[0].Story != 1 || recs[1].Story != 1 {
		t.Fatalf("story IDs = %d, %d; want 1, 1", recs[0].Story, recs[1].Story)
	}
	if recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("record seqs = %d, %d; want 1, 2", recs[0].Seq, recs[1].Seq)
	}
	if !recs[1].Entities.Equal(vset.New(1, 2, 3, 4)) {
		t.Fatalf("updated entities = %v", recs[1].Entities)
	}
	stories := tr.Stories()
	if len(stories) != 1 || stories[0].Subgraphs != 2 || stories[0].Fading {
		t.Fatalf("table = %+v", stories)
	}
	if tr.Seq() != 3 {
		t.Fatalf("Seq = %d, want 3", tr.Seq())
	}
}

func TestTrackerShrinkEmitsUpdated(t *testing.T) {
	tr := MustTracker(Config{})
	turn(tr, became(1, 2, 3), became(1, 2, 3, 4))
	turn(tr, ceased(1, 2, 3, 4)) // story keeps subgraph {1,2,3}; entities shrink
	recs := tr.Records()
	last := recs[len(recs)-1]
	if last.Kind != Updated || !last.Entities.Equal(vset.New(1, 2, 3)) {
		t.Fatalf("records = %v", recs)
	}
	if got := tr.Stories(); len(got) != 1 || got[0].Fading || got[0].Subgraphs != 1 {
		t.Fatalf("table = %+v", got)
	}
}

// TestTrackerFadeReviveKeepsIdentity is the continuity property the layer
// exists for: a story whose only subgraph ceases and is re-discovered within
// the grace window keeps its ID, with no lifecycle noise for the blip.
func TestTrackerFadeReviveKeepsIdentity(t *testing.T) {
	tr := MustTracker(Config{Grace: 10})
	turn(tr, became(1, 2, 3))
	turn(tr, ceased(1, 2, 3)) // fade, no record
	turn(tr)
	turn(tr, became(1, 2, 3, 4)) // revived and grown within grace
	recs := tr.Records()
	if want := []LifecycleKind{Born, Updated}; !reflect.DeepEqual(kinds(recs), want) {
		t.Fatalf("records = %v, want kinds %v", recs, want)
	}
	stories := tr.Stories()
	if len(stories) != 1 || stories[0].ID != 1 || stories[0].Fading {
		t.Fatalf("table = %+v", stories)
	}
	if !stories[0].Entities.Equal(vset.New(1, 2, 3, 4)) {
		t.Fatalf("entities = %v", stories[0].Entities)
	}
}

// TestTrackerDiesAfterGrace pins the logical expiry sequence: fade at s with
// grace G dies at s+G+1 regardless of when the tracker notices.
func TestTrackerDiesAfterGrace(t *testing.T) {
	tr := MustTracker(Config{Grace: 2})
	turn(tr, became(1, 2, 3)) // seq 1
	turn(tr, ceased(1, 2, 3)) // seq 2: fade
	turn(tr)                  // seq 3: still revivable
	turn(tr)                  // seq 4: last revivable update
	turn(tr)                  // seq 5: grace over → died
	recs := tr.Records()
	if len(recs) != 2 || recs[1].Kind != Died || recs[1].Seq != 5 {
		t.Fatalf("records = %v", recs)
	}
	if !recs[1].Entities.Equal(vset.New(1, 2, 3)) {
		t.Fatalf("died entities = %v", recs[1].Entities)
	}
	if len(tr.Stories()) != 0 {
		t.Fatalf("table not empty: %+v", tr.Stories())
	}

	// Same history, but the tail is accounted for by Close instead of
	// explicit event-free updates: identical records.
	tr2 := MustTracker(Config{Grace: 2})
	turn(tr2, became(1, 2, 3))
	turn(tr2, ceased(1, 2, 3))
	tr2.Close(5)
	if !reflect.DeepEqual(tr2.Records(), recs) {
		t.Fatalf("Close path records %v != explicit path %v", tr2.Records(), recs)
	}
}

// TestTrackerRevivalAtGraceBoundary pins the window edges: a became at
// fade+Grace revives, one update later the story is already dead.
func TestTrackerRevivalAtGraceBoundary(t *testing.T) {
	tr := MustTracker(Config{Grace: 2})
	turn(tr, became(1, 2, 3)) // seq 1
	turn(tr, ceased(1, 2, 3)) // seq 2: fade; revivable through seq 4
	turn(tr)                  // seq 3
	turn(tr, became(1, 2, 3)) // seq 4: revived
	if got := tr.Stories(); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("table = %+v", got)
	}

	tr = MustTracker(Config{Grace: 2})
	turn(tr, became(1, 2, 3))
	turn(tr, ceased(1, 2, 3))
	turn(tr)
	turn(tr)
	turn(tr, became(1, 2, 3)) // seq 5: too late — new story
	recs := tr.Records()
	if want := []LifecycleKind{Born, Died, Born}; !reflect.DeepEqual(kinds(recs), want) {
		t.Fatalf("records = %v, want kinds %v", recs, want)
	}
	if got := tr.Stories(); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("table = %+v", got)
	}
}

func TestTrackerMerge(t *testing.T) {
	tr := MustTracker(Config{})
	turn(tr, became(1, 2, 3))
	turn(tr, became(10, 11, 12))
	// A subgraph bridging both stories at Jaccard 3/6 = 0.5 each.
	turn(tr, became(1, 2, 3, 10, 11, 12))
	recs := tr.Records()
	if want := []LifecycleKind{Born, Born, Merged, Updated}; !reflect.DeepEqual(kinds(recs), want) {
		t.Fatalf("records = %v, want kinds %v", recs, want)
	}
	merged := recs[2]
	if merged.Story != 2 || merged.Other != 1 {
		t.Fatalf("merged record = %+v, want story 2 into 1", merged)
	}
	stories := tr.Stories()
	if len(stories) != 1 || stories[0].ID != 1 || stories[0].Subgraphs != 3 {
		t.Fatalf("table = %+v", stories)
	}
	if !stories[0].Entities.Equal(vset.New(1, 2, 3, 10, 11, 12)) {
		t.Fatalf("entities = %v", stories[0].Entities)
	}
}

func TestTrackerSplit(t *testing.T) {
	tr := MustTracker(Config{Grace: 10})
	turn(tr, became(1, 2, 3, 4, 5, 6))
	turn(tr, ceased(1, 2, 3, 4, 5, 6)) // fade with snapshot {1..6}
	turn(tr, became(1, 2, 3))          // revives story 1 (Jaccard 3/6 vs snapshot)
	turn(tr, became(4, 5, 6))          // no current match; snapshot match → split
	recs := tr.Records()
	if want := []LifecycleKind{Born, Updated, Split}; !reflect.DeepEqual(kinds(recs), want) {
		t.Fatalf("records = %v, want kinds %v", recs, want)
	}
	split := recs[2]
	if split.Story != 2 || split.Other != 1 || !split.Entities.Equal(vset.New(4, 5, 6)) {
		t.Fatalf("split record = %+v", split)
	}
	stories := tr.Stories()
	if len(stories) != 2 || stories[0].ID != 1 || stories[1].ID != 2 {
		t.Fatalf("table = %+v", stories)
	}
}

func TestTrackerMinCardinality(t *testing.T) {
	tr := MustTracker(Config{MinCardinality: 3})
	turn(tr, became(1, 2))    // gated out
	turn(tr, became(4, 5, 6)) // passes
	turn(tr, ceased(1, 2))    // unknown key: ignored
	if recs := tr.Records(); len(recs) != 1 || !recs[0].Entities.Equal(vset.New(4, 5, 6)) {
		t.Fatalf("records = %v", recs)
	}
	if keys := tr.LiveKeys(); len(keys) != 1 || keys[0] != "4,5,6" {
		t.Fatalf("live keys = %v", keys)
	}
}

// TestTrackerCanonicalOrderWithinUpdate checks that the within-update
// resolution order is the canonical one, not arrival order: two becameds
// arriving in either order produce identical records.
func TestTrackerCanonicalOrderWithinUpdate(t *testing.T) {
	run := func(evs ...core.Event) []Record {
		tr := MustTracker(Config{})
		turn(tr, became(1, 2, 3, 4, 5, 6))
		turn(tr, ceased(1, 2, 3, 4, 5, 6))
		turn(tr, evs...)
		return tr.Records()
	}
	a := run(became(1, 2, 3), became(4, 5, 6))
	b := run(became(4, 5, 6), became(1, 2, 3))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("arrival order changed the outcome:\n%v\nvs\n%v", a, b)
	}
	// Canonical order attaches {1,2,3} first (lower key), so it revives the
	// story and {4,5,6} splits off — deterministically. The coalesced Updated
	// record for the revived story trails the update's inline records.
	if want := []LifecycleKind{Born, Split, Updated}; !reflect.DeepEqual(kinds(a), want) {
		t.Fatalf("records = %v, want kinds %v", a, want)
	}
}

func TestTrackerRecordSinkStreams(t *testing.T) {
	tr := MustTracker(Config{})
	var streamed []Record
	tr.SetRecordSink(func(r Record) { streamed = append(streamed, r) })
	turn(tr, became(1, 2, 3))
	turn(tr, became(1, 2, 3, 4))
	if !reflect.DeepEqual(streamed, tr.Records()) {
		t.Fatalf("streamed %v != retained %v", streamed, tr.Records())
	}
}

func TestTrackerValidation(t *testing.T) {
	if _, err := NewTracker(Config{MinJaccard: 1.5}); err == nil {
		t.Error("MinJaccard 1.5 accepted, want error")
	}
	if _, err := NewTracker(Config{MinJaccard: -0.1}); err == nil {
		t.Error("MinJaccard -0.1 accepted, want error")
	}
}

func TestLifecycleKindStrings(t *testing.T) {
	for k, want := range map[LifecycleKind]string{
		Born: "born", Updated: "updated", Merged: "merged", Split: "split", Died: "died",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := fmt.Sprint(LifecycleKind(99)); got != "LifecycleKind(99)" {
		t.Errorf("unknown kind prints %q", got)
	}
}

// TestTrackerGraceNone pins the explicit no-grace sentinel: a story with
// GraceNone dies at fadeSeq+1, the first update after its last subgraph
// ceases, while a zero Grace still selects the documented default of 200.
func TestTrackerGraceNone(t *testing.T) {
	tr := MustTracker(Config{Grace: GraceNone})
	if g := tr.Config().Grace; g != 0 {
		t.Fatalf("effective Grace = %d, want 0", g)
	}
	turn(tr, became(1, 2, 3)) // seq 1
	turn(tr, ceased(1, 2, 3)) // seq 2: fade, expiry at 3
	turn(tr)                  // seq 3: grace window already over → died
	recs := tr.Records()
	if len(recs) != 2 || recs[1].Kind != Died || recs[1].Seq != 3 {
		t.Fatalf("records = %v", recs)
	}
	if len(tr.Stories()) != 0 {
		t.Fatalf("table not empty: %+v", tr.Stories())
	}

	// A revival in the same update as the fade (within update seq 2) is the
	// only way back: by seq 3 the identity is gone and a re-appearing
	// subgraph is a fresh story (no split either — the snapshot window is
	// also zero-length).
	tr2 := MustTracker(Config{Grace: GraceNone})
	turn(tr2, became(1, 2, 3))
	turn(tr2, ceased(1, 2, 3))
	turn(tr2)
	turn(tr2, became(1, 2, 3))
	recs2 := tr2.Records()
	last := recs2[len(recs2)-1]
	if last.Kind != Born || last.Story != 2 {
		t.Fatalf("re-appearance after no-grace death = %v, want fresh Born story 2", last)
	}

	// The zero value still means "default": the story survives a short gap.
	tr3 := MustTracker(Config{})
	if g := tr3.Config().Grace; g != 200 {
		t.Fatalf("default Grace = %d, want 200", g)
	}
	turn(tr3, became(1, 2, 3))
	turn(tr3, ceased(1, 2, 3))
	turn(tr3)
	if got := kinds(tr3.Records()); len(got) != 1 || got[0] != Born {
		t.Fatalf("default-grace records = %v, want story still fading", tr3.Records())
	}
}

// TestTrackerQueryOwnership pins the copy-on-read contract of Records and
// Stories: callers own the returned values outright, so mutating them —
// including the Entities sets, which the tracker may still reference — must
// not corrupt lifecycle history or the story table.
func TestTrackerQueryOwnership(t *testing.T) {
	tr := MustTracker(Config{})
	turn(tr, became(1, 2, 3))
	turn(tr, became(1, 2, 3, 4))

	pristineRecs := tr.Records()
	pristineTable := tr.Stories()

	recs := tr.Records()
	recs[0].Entities[0] = 999 // scribble over a recorded entity set
	recs[1] = Record{}        // and over a whole record
	_ = append(recs, Record{Kind: Died})

	table := tr.Stories()
	table[0].Entities[0] = -7
	table[0].Subgraphs = 42

	if !reflect.DeepEqual(tr.Records(), pristineRecs) {
		t.Fatalf("mutating Records() result corrupted the log:\n got %v\nwant %v", tr.Records(), pristineRecs)
	}
	if !reflect.DeepEqual(tr.Stories(), pristineTable) {
		t.Fatalf("mutating Stories() result corrupted the table:\n got %+v\nwant %+v", tr.Stories(), pristineTable)
	}

	// The tracker must also still resolve future updates against intact
	// state: the scribbled vertex 999 must not surface anywhere.
	turn(tr, ceased(1, 2, 3))
	for _, r := range tr.Records() {
		if r.Entities.Contains(999) || r.Entities.Contains(-7) {
			t.Fatalf("scribbled vertex leaked into record %v", r)
		}
	}

	// OwnerOf reflects the live key table.
	if id, ok := tr.OwnerOf(vset.New(1, 2, 3, 4).Key()); !ok || id != 1 {
		t.Fatalf("OwnerOf(live) = %d, %v; want 1, true", id, ok)
	}
	if _, ok := tr.OwnerOf(vset.New(1, 2, 3).Key()); ok {
		t.Fatalf("OwnerOf(ceased key) = true, want false")
	}
}
