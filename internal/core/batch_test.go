// Unit tests for Engine.ProcessBatch: batch-boundary bookkeeping, per-pair
// coalescing (duplicates, clamping, exact cancellation), event netting, and
// randomized final-state equivalence against the sequential engine and the
// brute-force oracle. The full pipeline-level conformance suite (sharded
// paths, story records) lives in internal/stream.
package core_test

import (
	"math/rand"
	"slices"
	"testing"

	"dyndens/internal/baseline/brute"
	"dyndens/internal/core"
	"dyndens/internal/stream"
)

// boundarySink counts events and update boundaries.
type boundarySink struct {
	core.CollectorSink
	boundaries int
}

func (b *boundarySink) EndUpdate() { b.boundaries++ }

func TestProcessBatchEmptyAndNoopTicksBoundary(t *testing.T) {
	eng := core.MustNew(core.Config{T: 1, Nmax: 4})
	sink := &boundarySink{}
	eng.SetSink(sink)

	eng.ProcessBatch(nil)
	eng.ProcessBatch([]core.Update{})
	eng.ProcessBatch([]core.Update{{A: 1, B: 1, Delta: 5}, {A: 2, B: 3, Delta: 0}})
	// +2 then −2 on the same pair nets to zero: no transition, still one tick.
	eng.ProcessBatch([]core.Update{{A: 1, B: 2, Delta: 2}, {A: 1, B: 2, Delta: -2}})

	if sink.boundaries != 4 {
		t.Fatalf("boundaries = %d, want 4 (one per ProcessBatch call)", sink.boundaries)
	}
	if sink.Len() != 0 {
		t.Fatalf("no-op batches emitted %d events", sink.Len())
	}
	st := eng.Stats()
	if st.Batches != 4 {
		t.Fatalf("Stats.Batches = %d, want 4", st.Batches)
	}
	if st.Updates != 4 {
		t.Fatalf("Stats.Updates = %d, want 4 (individual updates counted)", st.Updates)
	}
	if eng.Graph().Weight(1, 2) != 0 {
		t.Fatalf("cancelled pair left weight %g", eng.Graph().Weight(1, 2))
	}
}

func TestProcessBatchDuplicatePairCoalesces(t *testing.T) {
	seq := core.MustNew(core.Config{T: 2, Nmax: 4})
	bat := core.MustNew(core.Config{T: 2, Nmax: 4})
	batch := []core.Update{
		{A: 1, B: 2, Delta: 1.5},
		{A: 2, B: 1, Delta: 1.0}, // same pair, opposite orientation
		{A: 2, B: 3, Delta: 2.5},
		{A: 1, B: 2, Delta: 0.5},
	}
	for _, u := range batch {
		seq.Process(u)
	}
	evs := bat.ProcessBatch(batch)
	if !slices.Equal(bat.OutputDenseKeys(), seq.OutputDenseKeys()) {
		t.Fatalf("batched keys %v != sequential %v", bat.OutputDenseKeys(), seq.OutputDenseKeys())
	}
	if w := bat.Graph().Weight(1, 2); w != 3 {
		t.Fatalf("coalesced weight = %g, want 3", w)
	}
	// {1,2} reached density 3 ≥ T·1: exactly one net became event for it.
	var keys []string
	for _, ev := range evs {
		if ev.Kind != core.BecameOutputDense {
			t.Fatalf("unexpected %v event in a positive batch", ev.Kind)
		}
		keys = append(keys, ev.Set.Key())
	}
	if !slices.Contains(keys, "1,2") {
		t.Fatalf("no became event for the coalesced pair; events: %v", keys)
	}
}

// TestProcessBatchClampOrdering pins the clamp-at-zero semantics: the net
// applied delta is final − initial under in-order application, not the sum of
// the raw deltas.
func TestProcessBatchClampOrdering(t *testing.T) {
	seq := core.MustNew(core.Config{T: 2, Nmax: 4})
	bat := core.MustNew(core.Config{T: 2, Nmax: 4})
	warm := core.Update{A: 1, B: 2, Delta: 5}
	seq.Process(warm)
	bat.Process(warm)

	batch := []core.Update{
		{A: 1, B: 2, Delta: -10}, // clamps 5 → 0
		{A: 1, B: 2, Delta: 3},   // 0 → 3
	}
	for _, u := range batch {
		seq.Process(u)
	}
	bat.ProcessBatch(batch)
	if w := bat.Graph().Weight(1, 2); w != 3 {
		t.Fatalf("clamped weight = %g, want 3", w)
	}
	if !slices.Equal(bat.OutputDenseKeys(), seq.OutputDenseKeys()) {
		t.Fatalf("batched keys %v != sequential %v", bat.OutputDenseKeys(), seq.OutputDenseKeys())
	}
	if msg := bat.ValidateIndex(); msg != "" {
		t.Fatalf("index invalid after clamped batch: %s", msg)
	}
}

// TestProcessBatchNetsFlappingTransitions drives a batch whose sequential
// processing reports a became/ceased pair for the same subgraph; the batch
// must report nothing for it.
func TestProcessBatchNetsFlappingTransitions(t *testing.T) {
	mk := func() *core.Engine {
		e := core.MustNew(core.Config{T: 2, Nmax: 4})
		e.Process(core.Update{A: 1, B: 2, Delta: 1.9})
		return e
	}
	seq, bat := mk(), mk()
	batch := []core.Update{
		{A: 1, B: 2, Delta: 0.5},  // 2.4: becomes output-dense
		{A: 1, B: 2, Delta: -0.6}, // 1.8: ceases again
	}
	var seqEvents int
	for _, u := range batch {
		seqEvents += len(seq.Process(u))
	}
	if seqEvents != 2 {
		t.Fatalf("sequential flap produced %d events, want 2 (became+ceased)", seqEvents)
	}
	if evs := bat.ProcessBatch(batch); len(evs) != 0 {
		t.Fatalf("batch reported %d events for a net-zero flap: %v", len(evs), evs)
	}
	if !slices.Equal(bat.OutputDenseKeys(), seq.OutputDenseKeys()) {
		t.Fatalf("final sets diverged: %v vs %v", bat.OutputDenseKeys(), seq.OutputDenseKeys())
	}
}

// TestProcessBatchMatchesSequential replays seeded mixed streams through a
// sequential engine and, in random partitions, through ProcessBatch, checking
// state equivalence at every batch boundary. Two representation regimes are
// distinguished:
//
//   - exact representation (DisableImplicitTooDense): the explicit index IS
//     the set of dense subgraphs — a pure function of the graph — so the
//     batched engine's OutputDenseKeys must deep-equal the sequential
//     engine's AND brute.EnumerateAll, bit for bit;
//   - with ImplicitTooDense enabled, which dense subgraphs are explicit vs
//     implicitly represented through '*' families is order-dependent (a
//     member promoted by one sequential sub-step may stay implicit under the
//     coalesced net deltas), so the conformance claim is semantic: the
//     expanded output-dense set must equal brute.EnumerateAll for both
//     engines, which share one graph state.
func TestProcessBatchMatchesSequential(t *testing.T) {
	configs := []struct {
		name  string
		cfg   core.Config
		exact bool // explicit index is canonical: compare keys verbatim
	}{
		{"exact", core.Config{T: 2, Nmax: 4, DisableImplicitTooDense: true}, true},
		{"exact-maxexplore", core.Config{T: 2, Nmax: 4, DisableImplicitTooDense: true, EnableMaxExplore: true}, true},
		{"implicit", core.Config{T: 2, Nmax: 4}, false},
		{"implicit-maxexplore", core.Config{T: 2, Nmax: 4, EnableMaxExplore: true}, false},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				updates, err := stream.Drain(stream.MustSynthetic(stream.SynthConfig{
					Vertices:         10,
					Updates:          400,
					Seed:             seed,
					NegativeFraction: 0.35,
					MeanDelta:        1.5,
				}))
				if err != nil {
					t.Fatal(err)
				}
				seq := core.MustNew(tc.cfg)
				bat := core.MustNew(tc.cfg)
				rng := rand.New(rand.NewSource(seed * 101))
				events := 0
				for pos := 0; pos < len(updates); {
					n := rng.Intn(9) // empty batches included
					if pos+n > len(updates) {
						n = len(updates) - pos
					}
					chunk := updates[pos : pos+n]
					pos += n
					for _, u := range chunk {
						seq.Process(u)
					}
					events += len(bat.ProcessBatch(chunk))

					if tc.exact {
						if got, want := bat.OutputDenseKeys(), seq.OutputDenseKeys(); !slices.Equal(got, want) {
							t.Fatalf("seed %d after %d updates: batch keys %v != sequential %v", seed, pos, got, want)
						}
					}
					if msg := bat.ValidateIndex(); msg != "" {
						t.Fatalf("seed %d after %d updates: batch index invalid: %s", seed, pos, msg)
					}
					ecfg := bat.Config()
					oracle := brute.Keys(brute.EnumerateAll(bat.Graph(), brute.Params{Measure: ecfg.Measure, T: ecfg.T, Nmax: ecfg.Nmax}))
					for name, eng := range map[string]*core.Engine{"batch": bat, "sequential": seq} {
						var expanded []string
						for _, s := range eng.OutputDenseExpanded() {
							expanded = append(expanded, s.Set.Key())
						}
						slices.Sort(expanded)
						if !slices.Equal(expanded, oracle) {
							t.Fatalf("seed %d after %d updates: %s expanded set %v != oracle %v", seed, pos, name, expanded, oracle)
						}
					}
				}
				if events == 0 {
					t.Fatalf("seed %d: batched replay emitted no events; fixture too weak", seed)
				}
				if tc.exact {
					// Dense (not just output-dense) index content must agree
					// too: later discoveries grow from it.
					if got, want := bat.DenseCount(), seq.DenseCount(); got != want {
						t.Fatalf("seed %d: batch indexes %d dense subgraphs, sequential %d", seed, got, want)
					}
				}
			}
		})
	}
}
