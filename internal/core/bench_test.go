// Benchmarks for the Engine.Process hot path, driven by the seeded synthetic
// workload generator from internal/stream. They live in an external test
// package so they can use the ingestion layer without an import cycle.
//
// Run with: go test -bench=. -benchmem ./internal/core/
//
// Workload shape needs care. Edge weights only accumulate under a positive
// stream, so a fixed threshold is eventually crossed by an ever-growing hot
// core and the dense-subgraph count — combinatorial in the number of
// dense-eligible vertices — explodes. To keep the measured regime stationary,
// each benchmark replays a fixed bench stream against a warm engine and,
// whenever the stream is exhausted, rebuilds the warm engine off-timer. The
// warm phase (skew 1.1, 8000 unit-mean updates, T=100, Nmax=5) yields a
// realistic dense core of a few hundred indexed subgraphs.
package core_test

import (
	"testing"

	"dyndens/internal/core"
	"dyndens/internal/stream"
)

const (
	benchVertices = 500
	benchWarm     = 8000
	benchSkew     = 1.1
	benchStream   = 2048 // bench updates replayed per engine rebuild
)

func benchConfig() core.Config {
	return core.Config{T: 100, Nmax: 5, EnableMaxExplore: true}
}

// benchUpdates materialises n updates from a seeded generator.
func benchUpdates(b *testing.B, cfg stream.SynthConfig, n int) []core.Update {
	b.Helper()
	cfg.Updates = n
	updates, err := stream.Drain(stream.MustSynthetic(cfg))
	if err != nil {
		b.Fatal(err)
	}
	return updates
}

// warmEngine builds an engine over a pre-populated graph so the benchmark
// loop measures steady-state behaviour rather than cold growth.
func warmEngine(b *testing.B, warm []core.Update) *core.Engine {
	b.Helper()
	eng := core.MustNew(benchConfig())
	eng.SetSink(&core.CountingSink{})
	eng.ProcessAll(warm)
	return eng
}

// benchProcess runs the replay-and-rebuild loop over the bench stream.
func benchProcess(b *testing.B, warm, updates []core.Update) {
	eng := warmEngine(b, warm)
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for n := 0; n < b.N; n++ {
		if i == len(updates) {
			b.StopTimer()
			eng = warmEngine(b, warm)
			i = 0
			b.StartTimer()
		}
		eng.Process(updates[i])
		i++
	}
}

// BenchmarkProcessPositive measures positive updates against the warm skewed
// graph — the path that triggers cheap-exploration and exploration.
func BenchmarkProcessPositive(b *testing.B) {
	warm := benchUpdates(b, stream.SynthConfig{Vertices: benchVertices, Seed: 1, Skew: benchSkew}, benchWarm)
	updates := benchUpdates(b, stream.SynthConfig{Vertices: benchVertices, Seed: 2, Skew: benchSkew}, benchStream)
	benchProcess(b, warm, updates)
}

// BenchmarkProcessNegative measures negative updates against the warm graph —
// the score-decrement/eviction scan path. Decrements are small relative to
// the warm weights, so the dense core persists across the bench stream.
func BenchmarkProcessNegative(b *testing.B) {
	warm := benchUpdates(b, stream.SynthConfig{Vertices: benchVertices, Seed: 3, Skew: benchSkew}, benchWarm)
	updates := benchUpdates(b, stream.SynthConfig{
		Vertices: benchVertices, Seed: 4, Skew: benchSkew, NegativeFraction: 0.999, MeanDelta: 0.1,
	}, benchStream)
	benchProcess(b, warm, updates)
}

// BenchmarkProcessMixed measures the realistic blend the CLI bench command
// replays: mostly positive with a decay fraction.
func BenchmarkProcessMixed(b *testing.B) {
	warm := benchUpdates(b, stream.SynthConfig{Vertices: benchVertices, Seed: 5, Skew: benchSkew}, benchWarm)
	updates := benchUpdates(b, stream.SynthConfig{
		Vertices: benchVertices, Seed: 6, Skew: benchSkew, NegativeFraction: 0.2,
	}, benchStream)
	benchProcess(b, warm, updates)
}

// BenchmarkReplayPipeline measures the full source → replay → engine → sink
// pipeline, including generation, as the end-to-end per-update overhead. The
// workload is uniform with a threshold the accumulated weights stay far
// below, so the index remains sparse and the number reflects ingestion cost
// rather than exploration cost. Like the Process benchmarks, the pipeline is
// rebuilt off-timer after a bounded number of updates so that long
// -benchtime runs cannot drift the accumulated weights across the threshold.
func BenchmarkReplayPipeline(b *testing.B) {
	const rebuildEvery = 1 << 16 // uniform weights stay ≪ T within a cycle
	b.ReportAllocs()
	newReplay := func() *stream.Replay {
		src := stream.MustSynthetic(stream.SynthConfig{Vertices: benchVertices, Seed: 7, NegativeFraction: 0.1})
		eng := core.MustNew(core.Config{T: 25, Nmax: 5, EnableMaxExplore: true})
		return stream.NewReplay(src, eng, &core.CountingSink{})
	}
	r := newReplay()
	b.ResetTimer()
	cycle := 0
	for done := 0; done < b.N; {
		if cycle == rebuildEvery {
			b.StopTimer()
			r = newReplay()
			cycle = 0
			b.StartTimer()
		}
		n, err := r.Batch(min(1024, b.N-done, rebuildEvery-cycle))
		if err != nil {
			b.Fatal(err)
		}
		done += n
		cycle += n
	}
}
