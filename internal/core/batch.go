// Batched update processing (epoch coalescing).
//
// The fading-weight schedule of the story pipeline makes every epoch tick a
// burst of correlated updates — one negative delta per tracked pair — and the
// per-document positive deltas arrive in small bursts too. Feeding those
// bursts to Process one pair at a time pays a full index snapshot,
// exploration setup, and event round trip per pair. ProcessBatch amortises
// that: all weight deltas are applied to the graph up front, the index is
// repaired in one pass, and a single deduplicated discovery phase runs over
// the coalesced per-pair net deltas.
//
// Batch semantics: a batch is ONE logical tick. The installed sink observes
// the net output-dense transitions across the whole batch — a subgraph that
// both becomes and ceases output-dense within the batch is not reported — in
// canonical (kind, set-key) order, followed by exactly one EndUpdate. The
// final index, scores, and output-dense set are identical to processing the
// batch's updates one Process call at a time; only the event granularity
// changes. The batch-vs-sequential conformance suite in internal/stream pins
// this equivalence against the sequential engine and brute.EnumerateAll.
package core

import (
	"slices"
	"sort"

	"dyndens/internal/vset"
)

// packPair encodes the unordered pair {a, b} as one comparable word with the
// smaller vertex in the high half, so sorting packed keys yields the canonical
// (min, max) lexicographic pair order.
func packPair(a, b Vertex) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func unpackPair(k uint64) (a, b Vertex) {
	return Vertex(k >> 32), Vertex(uint32(k))
}

// stagedEvent is one per-batch candidate transition awaiting netting.
type stagedEvent struct {
	key    string
	before bool // output-dense before the batch (inferred from the first kind)
	kind   EventKind
	set    vset.Set // private clone; handed to the sink verbatim at flush
	score  float64
}

// ProcessBatch applies a batch of edge-weight updates as one logical tick and
// returns the net changes to the output-dense subgraph set (nil with a sink
// installed, exactly like Process). An empty batch is a no-op tick: it emits
// nothing but still advances a boundary-aware sink's update sequence.
// Duplicate pairs within the batch coalesce to their net applied delta.
func (e *Engine) ProcessBatch(updates []Update) []Event {
	return e.ProcessBatchRouted(updates, nil)
}

// ProcessBatchScoped is ProcessBatchRouted under scoped delivery: the weight
// phase still applies every delta (keeping the graph replica exact), but the
// discovery phase skips any positive pair this engine neither seeds nor can
// act on — neither endpoint indexed and no ImplicitTooDense family the pair
// could extend (StarNeedsPositive) — because such a pair's pass is provably
// empty (see ApplyOnly for the argument; the
// interest check runs against the live index per pair, so admissions made for
// earlier pairs in the same batch are honoured). Negative pairs are already
// index-scoped by batchRepair. seed must be non-nil.
func (e *Engine) ProcessBatchScoped(updates []Update, seed func(a, b Vertex) bool) []Event {
	e.batchScoped = true
	defer func() { e.batchScoped = false }()
	return e.ProcessBatchRouted(updates, seed)
}

// ProcessBatchRouted is ProcessBatch for engines embedded as workers of a
// partitioned deployment: seed reports whether this engine is the designated
// discovery seeder for a pair (see ProcessRouted). A nil seed seeds every
// pair, making ProcessBatchRouted(u, nil) exactly ProcessBatch(u).
func (e *Engine) ProcessBatchRouted(updates []Update, seed func(a, b Vertex) bool) []Event {
	e.stats.Updates += uint64(len(updates))
	e.stats.Batches++

	e.stageBatchDeltas(updates)
	e.beginEmit()
	if len(e.batchKeys) == 0 {
		return e.finishEmit() // no-op tick: boundary only
	}
	e.prepareBatchKeys()

	e.batching = true
	e.batchSeed = seed
	e.ix.BeginUpdate()
	e.batchRepair()
	e.batchDiscover()
	e.batchSeed = nil
	e.batching = false
	if n := e.ix.NodeCount(); n > e.stats.MaxIndexNodes {
		e.stats.MaxIndexNodes = n
	}
	e.flushBatchEvents()
	return e.finishEmit()
}

// stageBatchDeltas applies every delta of a batch to the graph up front,
// coalescing the net applied change per pair into batchNet/batchKeys (keys
// unsorted). Applying in stream order keeps the clamp-at-zero path exact: the
// per-update applied deltas telescope to final − initial. Shared by the
// plain-batch and threshold-batch ticks.
func (e *Engine) stageBatchDeltas(updates []Update) {
	if e.batchNet == nil {
		e.batchNet = make(map[uint64]float64)
		e.stageIdx = make(map[string]int)
	}
	clear(e.batchNet)
	for _, u := range updates {
		if u.A == u.B || u.Delta == 0 {
			continue
		}
		before, after := e.g.Apply(u)
		applied := after - before
		if applied == 0 {
			continue
		}
		if applied < 0 {
			e.stats.NegativeUpdates++
		} else {
			e.stats.PositiveUpdates++
		}
		e.batchNet[packPair(u.A, u.B)] += applied
	}
	e.batchKeys = e.batchKeys[:0]
	for k, d := range e.batchNet {
		if d == 0 {
			delete(e.batchNet, k)
			continue
		}
		e.batchKeys = append(e.batchKeys, k)
	}
}

// prepareBatchKeys sorts the coalesced pair keys into canonical phase order
// and derives the sorted distinct dirty-endpoint set batchRepair and
// batchDeltaOf rely on.
func (e *Engine) prepareBatchKeys() {
	slices.Sort(e.batchKeys)
	e.batchDirty = e.batchDirty[:0]
	for _, k := range e.batchKeys {
		a, b := unpackPair(k)
		e.batchDirty = append(e.batchDirty, a, b)
	}
	slices.Sort(e.batchDirty)
	e.batchDirty = slices.Compact(e.batchDirty)
}

// batchDeltaOf returns the summed net applied delta of the batch's pairs that
// lie inside c — exactly the amount c's score changed over the batch. The
// dirty-vertex intersection rejects untouched subgraphs before any pair
// lookup; it binary-searches the dirty set per member of c (|c| ≤ Nmax, so
// O(Nmax·log dirty)) rather than merge-scanning, because a broad decay burst
// makes the dirty set approach the whole vertex universe and this runs once
// per indexed subgraph per batch plus once per exploration frame.
func (e *Engine) batchDeltaOf(c vset.Set) float64 {
	e.dirtyInC = e.dirtyInC[:0]
	for _, v := range c {
		if vset.Set(e.batchDirty).Contains(v) {
			e.dirtyInC = append(e.dirtyInC, v)
		}
	}
	if len(e.dirtyInC) < 2 {
		return 0
	}
	var total float64
	for x := 0; x < len(e.dirtyInC); x++ {
		for y := x + 1; y < len(e.dirtyInC); y++ {
			total += e.batchNet[packPair(e.dirtyInC[x], e.dirtyInC[y])]
		}
	}
	return total
}

// batchRepair is the batch counterpart of Algorithm 1's bookkeeping, run once
// over a whole-index snapshot instead of once per pair: every indexed dense
// subgraph touched by the batch has its stored score moved straight to its
// final value, output-threshold crossings are staged, ImplicitTooDense
// families whose base is no longer too-dense are dropped, and subgraphs that
// are no longer dense are evicted. Because eviction tests the FINAL score, a
// subgraph evicted here can never be re-admitted by batchDiscover — which is
// what keeps the per-batch event stream free of became/ceased flapping and
// the sharded merger's per-unit kinds consistent across workers.
func (e *Engine) batchRepair() {
	// Snapshot the affected dense nodes: a narrow batch (one document's
	// pairs) walks the inverted lists of its few dirty vertices — the same
	// lists sequential processing walks — while a broad one (an epoch decay
	// burst touches nearly every tracked pair) amortises better as one
	// whole-tree walk. The inverted-list route visits a node once per dirty
	// vertex it contains, so those snapshots are deduplicated through the
	// index's per-update annotation epoch (nothing else reads annotations on
	// pre-existing nodes during a batch).
	narrow := len(e.batchDirty) <= 8
	e.affectedBuf = e.affectedBuf[:0]
	if narrow {
		for _, v := range e.batchDirty {
			e.affectedBuf = e.ix.AppendDenseContaining(e.affectedBuf, v)
		}
	} else {
		e.affectedBuf = e.ix.AppendDense(e.affectedBuf)
	}
	setBuf := e.getSetBuf()
	for _, node := range e.affectedBuf {
		if !node.Dense() {
			continue // evicted via an earlier node's pruning cascade
		}
		if narrow {
			if _, seen := e.ix.Annotation(node); seen {
				continue // already repaired via another dirty vertex's list
			}
			e.ix.Annotate(node, 0)
		}
		c := node.SetInto(setBuf)
		setBuf = c
		delta := e.batchDeltaOf(c)
		if delta == 0 {
			continue
		}
		n := c.Len()
		oldScore := node.Score()
		newScore := e.ix.AddScore(node, delta)
		if star := e.ix.StarOf(node); star != nil {
			e.ix.SetScore(star, newScore)
		}
		wasOutput := e.th.IsOutputDense(oldScore, n)
		isOutput := e.th.IsOutputDense(newScore, n)
		if wasOutput && !isOutput {
			e.emit(CeasedOutputDense, c, newScore)
		} else if !wasOutput && isOutput {
			e.emit(BecameOutputDense, c, newScore)
		}
		if e.ix.HasStar(node) && !e.th.IsTooDense(newScore, n) {
			e.ix.RemoveStar(node)
		}
		if !e.th.IsDense(newScore, n) {
			e.ix.EvictDense(node)
			e.stats.Evictions++
		}
	}
	e.putSetBuf(setBuf)
}

// batchDiscover runs Algorithm 1's discovery work once per coalesced
// positive pair, in canonical pair order, against the final graph. Scores are
// already final after batchRepair, so — unlike processPositive — the
// stable-dense path performs no bump: it only maintains ImplicitTooDense
// families that the batch pushed over the too-dense threshold and explores.
// Subgraphs admitted for an earlier pair are part of later pairs' snapshots,
// which is what makes the per-pair passes compose into one complete pass.
func (e *Engine) batchDiscover() {
	for _, k := range e.batchKeys {
		delta := e.batchNet[k]
		if delta <= 0 {
			continue // negative pairs are fully handled by batchRepair
		}
		a, b := unpackPair(k)
		seed := e.batchSeed == nil || e.batchSeed(a, b)
		if e.batchScoped && !seed && !e.ix.HasVertex(a) && !e.ix.HasVertex(b) && !e.StarNeedsPositive(a, b, 0) {
			e.stats.BatchPairSkips++
			continue
		}
		e.stats.BatchPairs++
		e.a, e.b, e.delta = a, b, delta
		e.seedPairs = seed
		e.maxIter = e.th.Iterations(delta)
		e.computeMaxExplore()

		e.affectedBuf = e.ix.AppendDenseContainingEither(e.affectedBuf[:0], a, b)
		e.starBuf = e.ix.AppendStarNodes(e.starBuf[:0])

		if e.seedPairs {
			e.pairBuf[0], e.pairBuf[1] = a, b // a < b by canonical pair order
			pair := vset.Set(e.pairBuf[:])
			if e.ix.LookupDense(pair) == nil {
				if w := e.g.Weight(a, b); e.th.IsDense(w, 2) {
					e.admit(pair, w, 1)
				}
			}
		}

		setBuf := e.getSetBuf()
		for _, node := range e.affectedBuf {
			if !node.Dense() {
				continue
			}
			c := node.SetInto(setBuf)
			setBuf = c
			hasA, hasB := c.Contains(a), c.Contains(b)
			if hasA && hasB {
				score := node.Score()
				if e.maintainStar(node, score, c.Len()) {
					e.starEdgeScan(c, score, func(c2 vset.Set, s2 float64) { e.admit(c2, s2, 2) })
				}
				e.explore(c, score, 1)
			} else {
				e.cheapExplore(c, node.Score(), hasA)
			}
		}
		e.putSetBuf(setBuf)

		for _, star := range e.starBuf {
			e.processStar(star)
		}
	}
}

// stageBatchEvent records one output-dense transition of the batch in flight.
// The first transition staged for a set fixes its pre-batch status; the last
// one fixes its kind, score, and final status. (With final-score eviction a
// set in fact transitions at most once per batch per engine — the netting is
// the safety net that makes the boundary contract hold by construction.)
//
// The set is copied out of engine scratch into a buffer from the set free
// list — it must survive until the flush at the batch boundary, while the
// scratch it was built in is reused by the rest of the batch. The buffer is
// recycled at flush unless the sink retains sets, so a churny batch feeding
// a non-retaining sink settles into the same allocation-free steady state as
// sequential Process (only the dedup key strings remain per-event).
func (e *Engine) stageBatchEvent(kind EventKind, c vset.Set, score float64) {
	k := c.Key()
	if i, ok := e.stageIdx[k]; ok {
		e.staged[i].kind = kind
		e.staged[i].score = score
		return
	}
	e.stageIdx[k] = len(e.staged)
	e.staged = append(e.staged, stagedEvent{
		key:    k,
		before: kind == CeasedOutputDense,
		kind:   kind,
		set:    vset.Set(append(e.getSetBuf(), c...)),
		score:  score,
	})
}

// flushBatchEvents nets the staged transitions against the pre-batch state
// and emits the survivors to the current destination in canonical (kind, key)
// order. A retaining sink (cloneSets) keeps the staged buffer — it leaves the
// free-list pool for good; otherwise the set is valid only during Emit, per
// the SetRetainer contract, and the buffer is recycled.
func (e *Engine) flushBatchEvents() {
	if len(e.staged) == 0 {
		return
	}
	sort.Slice(e.staged, func(i, j int) bool {
		if e.staged[i].kind != e.staged[j].kind {
			return e.staged[i].kind < e.staged[j].kind
		}
		return e.staged[i].key < e.staged[j].key
	})
	for i := range e.staged {
		se := &e.staged[i]
		after := se.kind == BecameOutputDense
		if after != se.before {
			e.stats.Events++
			// Scores are flushed in real units: emitScale is the scale in
			// force at the batch boundary, which for a threshold tick is the
			// epoch's NEW λ — exactly the decayed value a sink should see.
			e.cur.Emit(Event{
				Kind:    se.kind,
				Set:     se.set,
				Score:   se.score * e.emitScale,
				Density: e.th.Density(se.score, se.set.Len()) * e.emitScale,
			})
			if e.cloneSets {
				se.set = nil // handed over; the sink owns it now
				continue
			}
		}
		e.putSetBuf(se.set)
		se.set = nil
	}
	e.staged = e.staged[:0]
	clear(e.stageIdx)
}
