package core

import (
	"errors"

	"dyndens/internal/density"
	"dyndens/internal/graph"
	"dyndens/internal/vset"
)

// ErrSameThreshold is returned by SetThreshold when the new threshold equals
// the current one.
var ErrSameThreshold = errors.New("core: new threshold equals the current threshold")

// SetThreshold performs the dynamic threshold-adjustment procedure of
// Section 6 (Algorithms 3 and 4): it changes the output-density threshold T
// at runtime without recomputing the index from scratch, rescaling δ_it
// proportionally, and returns the resulting changes to the output-dense set.
//
// Increasing the threshold scans the index once, evicting subgraphs that are
// no longer dense and reporting subgraphs that are no longer output-dense.
// Decreasing the threshold first considers every edge of the graph as a
// potential newly-dense seed, then explores around every indexed dense
// subgraph to discover subgraphs that became dense under the lower schedule.
//
// Like Process, SetThreshold pushes the changes to the installed sink (and
// returns a nil slice) when one is present.
func (e *Engine) SetThreshold(newT float64) ([]Event, error) {
	oldTh := e.th
	if newT == oldTh.T {
		return nil, ErrSameThreshold
	}
	newTh, err := oldTh.WithThreshold(newT)
	if err != nil {
		return nil, err
	}
	e.beginEmit()
	e.ix.BeginUpdate()
	if newT > oldTh.T {
		e.increaseThreshold(newTh)
	} else {
		e.decreaseThreshold(newTh)
	}
	e.cfg.T = newT
	e.cfg.DeltaIt = newTh.DeltaIt
	// newT is in the engine's internal (normalized) units; keep the real-unit
	// base threshold consistent so rescaled-decay ticks keep honouring the
	// caller's choice (baseT/emitScale must always equal the normalized T).
	e.baseT = newT * e.emitScale
	if n := e.ix.NodeCount(); n > e.stats.MaxIndexNodes {
		e.stats.MaxIndexNodes = n
	}
	return e.finishEmit(), nil
}

// increaseThreshold implements Algorithm 3, lines 2–4.
func (e *Engine) increaseThreshold(newTh *density.Thresholds) {
	oldTh := e.th
	e.th = newTh
	for _, node := range e.ix.DenseNodes() {
		if !node.Dense() {
			continue
		}
		c := node.Set()
		n := c.Len()
		score := node.Score()
		wasOutput := oldTh.IsOutputDense(score, n)
		if !newTh.IsDense(score, n) {
			if wasOutput {
				e.emit(CeasedOutputDense, c, score)
			}
			e.ix.EvictDense(node)
			e.stats.Evictions++
			continue
		}
		if wasOutput && !newTh.IsOutputDense(score, n) {
			e.emit(CeasedOutputDense, c, score)
		}
		if e.ix.HasStar(node) && !newTh.IsTooDense(score, n) {
			e.ix.RemoveStar(node)
		}
	}
}

// decreaseThreshold implements Algorithm 3, lines 5–9.
func (e *Engine) decreaseThreshold(newTh *density.Thresholds) {
	oldTh := e.th
	e.th = newTh
	// Pre-existing dense subgraphs: they all remain dense under the lower
	// schedule. Report the ones that just became output-dense, refresh their
	// ImplicitTooDense status, and remember whether they were too-dense under
	// the old schedule (Algorithm 4's guard).
	existing := e.ix.DenseNodes()
	wasTooDense := make([]bool, len(existing))
	for i, node := range existing {
		c := node.Set()
		n := c.Len()
		score := node.Score()
		wasTooDense[i] = oldTh.IsTooDense(score, n)
		if !oldTh.IsOutputDense(score, n) && newTh.IsOutputDense(score, n) {
			e.emit(BecameOutputDense, c, score)
		}
		if e.maintainStar(node, score, n) {
			e.starEdgeScan(c, score, func(c2 vset.Set, s2 float64) { e.thresholdAdmit(c2, s2) })
		}
	}
	// Base case (Algorithm 3, lines 6–7): every edge of the graph may now be a
	// dense subgraph of cardinality 2.
	e.g.Edges(func(u, v graph.Vertex, w float64) {
		if !newTh.IsDense(w, 2) {
			return
		}
		pair := vset.New(u, v)
		if e.ix.HasDense(pair) {
			return
		}
		e.thresholdAdmit(pair, w)
	})
	// Explore around every previously indexed dense subgraph (Algorithm 3,
	// lines 8–9). Newly admitted subgraphs are explored recursively as part of
	// thresholdAdmit, mirroring UpdateExplore's stop-at-stable-dense rule.
	for i, node := range existing {
		if !node.Dense() {
			continue
		}
		e.updateExplore(node.Set(), node.Score(), wasTooDense[i])
	}
}

// thresholdAdmit inserts a subgraph discovered to be dense during a threshold
// decrease, reports it if output-dense, and explores around it (Algorithm 4).
func (e *Engine) thresholdAdmit(c vset.Set, score float64) {
	node := e.ix.InsertDense(c, score)
	e.stats.Insertions++
	n := c.Len()
	if e.th.IsOutputDense(score, n) {
		e.emit(BecameOutputDense, c, score)
	}
	if e.maintainStar(node, score, n) {
		e.starEdgeScan(c, score, func(c2 vset.Set, s2 float64) { e.thresholdAdmit(c2, s2) })
	}
	e.updateExplore(c, score, false)
}

// updateExplore is Algorithm 4 (UpdateExplore): augment a dense subgraph with
// one vertex, recursing on newly-dense results. Unlike the per-update
// exploration there is no ceil(δ/δ_it) iteration bound — recursion stops when
// only stable-dense (already indexed) supergraphs remain or Nmax is reached.
// wasTooDense reports whether the subgraph was too-dense under the schedule
// in force before the threshold change; such subgraphs need not be explored.
func (e *Engine) updateExplore(c vset.Set, score float64, wasTooDense bool) {
	n := c.Len()
	if wasTooDense || n >= e.th.Nmax {
		return
	}
	if e.th.IsTooDense(score, n) && e.cfg.DisableImplicitTooDense {
		e.stats.ExploreAll++
		for _, y := range e.g.Vertices() {
			if c.Contains(y) {
				continue
			}
			child := c.Add(y)
			if e.ix.HasDense(child) {
				continue
			}
			e.thresholdAdmit(child, score+e.g.ScoreWith(c, y))
		}
		return
	}
	e.stats.Explorations++
	nbuf := e.getNbuf()
	ys, adds := e.g.NeighborhoodScores(c, nbuf)
	childBuf := e.getSetBuf()
	for i, y := range ys {
		childScore := score + adds[i]
		if !e.th.IsDense(childScore, n+1) {
			continue
		}
		child := vset.AddInto(childBuf, c, y)
		childBuf = child
		if e.ix.HasDense(child) {
			continue
		}
		e.thresholdAdmit(child, childScore)
	}
	e.putSetBuf(childBuf)
	e.putNbuf(nbuf)
}
