package core

import (
	"slices"
	"testing"

	"dyndens/internal/baseline/brute"
	"dyndens/internal/vset"
)

// expandedKeys returns the engine's expanded output-dense set as sorted keys.
func expandedKeys(e *Engine) []string {
	var out []string
	for _, s := range e.OutputDenseExpanded() {
		out = append(out, s.Set.Key())
	}
	slices.Sort(out)
	return out
}

func oracleKeys(e *Engine) []string {
	cfg := e.Config()
	return brute.Keys(brute.EnumerateAll(e.Graph(), brute.Params{Measure: cfg.Measure, T: cfg.T, Nmax: cfg.Nmax}))
}

// TestNewStarDiscoversEdgeMembers is the regression test for the family-
// creation discovery hole: when one large update makes a subgraph too-dense,
// the newly implicit members include sets formed by absorbing a whole edge
// not incident on the base ({2,4}∪{7,9} below). Those must be admitted
// explicitly at creation time — exploreStarMembers only covers families that
// existed before the update began.
func TestNewStarDiscoversEdgeMembers(t *testing.T) {
	e := MustNew(Config{T: 2, Nmax: 4})
	e.Process(Update{A: 7, B: 9, Delta: 2.5})
	// One large update pushes the pair {2,4} straight past too-dense.
	e.Process(Update{A: 2, B: 4, Delta: 12})

	if !e.Contains(vset.New(2, 4, 7, 9)) {
		t.Fatal("{2,4,7,9} not explicitly indexed after {2,4} became too-dense")
	}
	if got, want := expandedKeys(e), oracleKeys(e); !slices.Equal(got, want) {
		t.Fatalf("expanded output-dense set %v != oracle %v", got, want)
	}
	if msg := e.ValidateIndex(); msg != "" {
		t.Fatalf("index invalid: %s", msg)
	}
}

// TestStarExpansionCoversDeepAndIsolatedMembers covers the other two facets
// of the same hole: a too-dense base's family stands for any number of
// mutually disconnected additions (not just one), and the vertex universe for
// those additions is every vertex ever seen — including vertices whose edges
// have since decayed to zero.
func TestStarExpansionCoversDeepAndIsolatedMembers(t *testing.T) {
	e := MustNew(Config{T: 2, Nmax: 4})
	// Vertices 5 and 6 enter the universe, then their only edge decays away.
	e.Process(Update{A: 5, B: 6, Delta: 0.5})
	e.Process(Update{A: 5, B: 6, Delta: -0.5})
	if e.Graph().HasEdge(5, 6) {
		t.Fatal("edge {5,6} should have decayed to zero")
	}
	// {2,4} becomes too-dense enough that even 4-sets built on it are dense.
	e.Process(Update{A: 2, B: 4, Delta: 12})

	keys := expandedKeys(e)
	for _, want := range []string{"2,4,5", "2,4,6", "2,4,5,6"} {
		if !slices.Contains(keys, want) {
			t.Errorf("expanded set misses %s (isolated/deep family member); got %v", want, keys)
		}
	}
	if got, want := keys, oracleKeys(e); !slices.Equal(got, want) {
		t.Fatalf("expanded output-dense set %v != oracle %v", got, want)
	}
}

// TestThresholdDecreaseCreatesStarWithEdgeMembers checks the same discovery
// obligation on the SetThreshold path: lowering T can make an indexed
// subgraph too-dense under the new schedule, and the edge-absorption members
// owed at family creation must be admitted there as well.
func TestThresholdDecreaseCreatesStarWithEdgeMembers(t *testing.T) {
	e := MustNew(Config{T: 6, Nmax: 4})
	e.Process(Update{A: 7, B: 9, Delta: 3})
	e.Process(Update{A: 2, B: 4, Delta: 12})
	if e.Contains(vset.New(2, 4, 7, 9)) {
		t.Fatal("fixture too weak: {2,4,7,9} already dense under T=6")
	}
	if _, err := e.SetThreshold(2); err != nil {
		t.Fatal(err)
	}
	if !e.Contains(vset.New(2, 4, 7, 9)) {
		t.Fatal("{2,4,7,9} not admitted when the threshold decrease made {2,4} too-dense")
	}
	if got, want := expandedKeys(e), oracleKeys(e); !slices.Equal(got, want) {
		t.Fatalf("expanded output-dense set %v != oracle %v", got, want)
	}
	if msg := e.ValidateIndex(); msg != "" {
		t.Fatalf("index invalid: %s", msg)
	}
}

// TestProcessRoutedSeedingPartition checks the contract ProcessRouted gives
// sharded deployments: a non-seeding engine applies the weight update exactly
// (its graph stays identical to a seeding engine's) but never admits the base
// pair, so it reports nothing until it holds a subgraph of its own.
func TestProcessRoutedSeedingPartition(t *testing.T) {
	seeder := MustNew(Config{T: 2, Nmax: 4})
	follower := MustNew(Config{T: 2, Nmax: 4})
	u := Update{A: 1, B: 2, Delta: 5}
	sevs := seeder.ProcessRouted(u, true)
	fevs := follower.ProcessRouted(u, false)
	if len(sevs) != 1 || sevs[0].Kind != BecameOutputDense {
		t.Fatalf("seeder events = %v, want one BecameOutputDense", sevs)
	}
	if len(fevs) != 0 {
		t.Fatalf("follower emitted %v without seeding rights", fevs)
	}
	if seeder.Graph().Weight(1, 2) != follower.Graph().Weight(1, 2) {
		t.Fatal("graphs diverged between seeder and follower")
	}
	if follower.DenseCount() != 0 {
		t.Fatalf("follower indexed %d subgraphs, want 0", follower.DenseCount())
	}
	if seeder.DenseCount() == 0 {
		t.Fatal("seeder indexed nothing")
	}
}

// TestStatsAdd checks the aggregation primitive used by sharded deployments.
func TestStatsAdd(t *testing.T) {
	a := Stats{Updates: 3, Events: 2, IndexedDense: 4, MaxIndexNodes: 7, Explorations: 1}
	b := Stats{Updates: 5, Events: 1, IndexedDense: 2, MaxIndexNodes: 3, NegativeUpdates: 2}
	a.Add(b)
	if a.Updates != 8 || a.Events != 3 || a.IndexedDense != 6 || a.MaxIndexNodes != 10 ||
		a.Explorations != 1 || a.NegativeUpdates != 2 {
		t.Fatalf("Add produced %+v", a)
	}
}
