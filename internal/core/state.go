package core

import (
	"fmt"
	"math"
	"sort"

	"dyndens/internal/graph"
	"dyndens/internal/vset"
)

// This file is the engine half of crash recovery (internal/persist): a
// deterministic export of everything Process has built — the dense-subgraph
// index and the rescaled-decay scale — and an import that rebuilds a fresh
// engine to the exact same state. The graph travels separately (graph.State)
// because sharded deployments replicate one graph across K workers and the
// snapshot stores it once.
//
// Error-handling contract (the panic-vs-error distinction the recovery work
// formalises): constructors and importers that consume persisted or replayed
// data return errors — a corrupt snapshot or WAL frame must surface to the
// recoverer, not crash the process. Panics remain only for invariant
// violations that indicate a programming bug (e.g. a threshold batch scale
// the validated stream layers can never produce), and for the Must*
// convenience wrappers, which exist for tests and examples with known-good
// configurations.

// DenseEntry is the persisted form of one explicitly indexed dense subgraph.
// Scores are in the engine's internal normalized units (real score =
// Score·Scale). Star records whether the subgraph carries an
// ImplicitTooDense family; StarScore is that family's score, which tracks
// the base score but is stored separately because the index maintains it as
// its own node.
type DenseEntry struct {
	Set       vset.Set
	Score     float64
	Star      bool
	StarScore float64
}

// EngineState is the persisted index + decay state of one engine. Entries
// are sorted by canonical set key, so equal engines export equal states.
type EngineState struct {
	// Scale is the cumulative decay scale λ (Engine.DecayScale): 1 unless the
	// engine runs under rescaled decay.
	Scale float64
	Dense []DenseEntry
}

// ExportState captures the engine's index and decay scale. The engine must
// be between updates (not mid-Process), which is the only state a replay
// driver ever snapshots at.
func (e *Engine) ExportState() EngineState {
	st := EngineState{Scale: e.emitScale}
	for _, n := range e.ix.DenseNodes() {
		de := DenseEntry{Set: n.Set(), Score: n.Score()}
		if star := e.ix.StarOf(n); star != nil {
			de.Star = true
			de.StarScore = star.Score()
		}
		st.Dense = append(st.Dense, de)
	}
	sort.Slice(st.Dense, func(i, j int) bool {
		return st.Dense[i].Set.Key() < st.Dense[j].Set.Key()
	})
	return st
}

// ImportState rebuilds a freshly constructed engine (same Config as the
// exported one) to the exported state: graph content, dense index with
// ImplicitTooDense families, and the rescaled-decay threshold position.
// It validates everything it consumes and returns an error rather than
// panicking — the state may come from a damaged snapshot.
func (e *Engine) ImportState(gs graph.State, st EngineState) error {
	if e.stats != (Stats{}) || e.ix.NodeCount() != 0 {
		return fmt.Errorf("core: ImportState requires a fresh engine")
	}
	if math.IsNaN(st.Scale) || st.Scale <= 0 || st.Scale > 1 {
		return fmt.Errorf("core: restored decay scale %v outside (0, 1]", st.Scale)
	}
	e.g = graph.NewFromState(gs)
	if st.Scale != 1 {
		// Same move ProcessThresholdBatch performs, minus the incremental
		// index walk: the restored index already reflects the normalized
		// threshold baseT/λ.
		newT := e.baseT / st.Scale
		newTh, err := e.th.WithThreshold(newT)
		if err != nil {
			return fmt.Errorf("core: restored scale %v yields invalid threshold %v: %w", st.Scale, newT, err)
		}
		e.th = newTh
		e.cfg.T = newT
		e.cfg.DeltaIt = newTh.DeltaIt
	}
	e.emitScale = st.Scale
	for _, de := range st.Dense {
		if n := de.Set.Len(); n < 2 || n > e.th.Nmax {
			return fmt.Errorf("core: restored dense entry %v has cardinality %d outside [2, %d]", de.Set, n, e.th.Nmax)
		}
		if math.IsNaN(de.Score) || math.IsInf(de.Score, 0) {
			return fmt.Errorf("core: restored dense entry %v has non-finite score %v", de.Set, de.Score)
		}
		node := e.ix.InsertDense(de.Set.Clone(), de.Score)
		if de.Star {
			star := e.ix.InsertStar(node)
			e.ix.SetScore(star, de.StarScore)
		}
	}
	if n := e.ix.NodeCount(); n > e.stats.MaxIndexNodes {
		e.stats.MaxIndexNodes = n
	}
	return nil
}
