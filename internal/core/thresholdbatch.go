package core

import "fmt"

// This file implements threshold updates as first-class stream units: the
// engine-side half of rescaled decay (see internal/stream's Aggregator).
//
// A rescaled-decay aggregator keeps edge weights in normalized units
// w' = w/λ, where λ is the cumulative decay scale, and never sweeps its
// tracked pairs on an epoch tick. Because scaling every weight by λ scales
// every subgraph score and density by the same λ, fading the whole graph is
// algebraically identical to raising the density threshold to baseT/λ —
// which is exactly the dynamic threshold-adjustment procedure of Section 6
// that SetThreshold already implements incrementally. A decay epoch therefore
// reaches the engine as ONE unit carrying the new scale plus the (usually
// empty) exact cancellations of pairs that expired below PruneBelow, instead
// of a negative delta per tracked pair.
//
// The engine's graph, index, and threshold schedule all run in normalized
// units; emitScale = λ converts scores and densities back to real
// (paper-semantics) units at every emission and query point, so sinks and
// trackers downstream observe exactly what the exact-decay path would have
// produced (modulo float rounding — pinned by the exact-vs-rescale
// conformance suite).

// ProcessThresholdBatch absorbs one decay epoch of a rescaled-decay stream:
// it applies the (possibly empty) retirement cancellations in updates as a
// coalesced batch, then moves the normalized output threshold to baseT/scale
// via the incremental threshold walk, and emits the net output-dense changes
// as one logical tick. scale is the cumulative decay factor λ in force after
// the epoch; it becomes the engine's emit scale. Like ProcessBatch it pushes
// events to the installed sink (returning nil) when one is present.
func (e *Engine) ProcessThresholdBatch(scale float64, updates []Update) []Event {
	return e.ProcessThresholdBatchRouted(scale, updates, nil)
}

// ProcessThresholdBatchScoped is ProcessThresholdBatchRouted under scoped
// delivery. Threshold units are broadcast to every worker: the deltas of a
// threshold batch are negative cancellations (handled index-scoped by
// batchRepair) or a renormalization's uniform rescale, so the scoped
// discovery skip never fires on them, but the flag keeps any admissions made
// by the threshold walk consistent with the worker's interest map.
func (e *Engine) ProcessThresholdBatchScoped(scale float64, updates []Update, seed func(a, b Vertex) bool) []Event {
	e.batchScoped = true
	defer func() { e.batchScoped = false }()
	return e.ProcessThresholdBatchRouted(scale, updates, seed)
}

// ProcessThresholdBatchRouted is ProcessThresholdBatch for engines embedded
// as workers of a partitioned deployment (see ProcessBatchRouted).
//
// Ordering within the tick matters and mirrors the exact path's semantics:
// the cancellation deltas land first under the OLD threshold (a retiring
// pair's weight change must be netted before the schedule moves — and a
// renormalization's rescale deltas must be in place before the threshold
// drops back to baseT), then the threshold walk repairs the index, and the
// emit scale switches to the tick's new λ only after all staged events are
// known, so the flush converts every score with the factor in force at the
// batch boundary.
func (e *Engine) ProcessThresholdBatchRouted(scale float64, updates []Update, seed func(a, b Vertex) bool) []Event {
	e.stats.Updates += uint64(len(updates))
	e.stats.Batches++
	e.stats.ThresholdTicks++

	e.stageBatchDeltas(updates)
	e.beginEmit()
	hasDeltas := len(e.batchKeys) > 0
	if hasDeltas {
		e.prepareBatchKeys()
	}

	e.batching = true
	e.batchSeed = seed
	e.ix.BeginUpdate()
	if hasDeltas {
		e.batchRepair()
	}
	newT := e.baseT / scale
	if newT != e.th.T {
		newTh, err := e.th.WithThreshold(newT)
		if err != nil {
			// Unreachable for the scales a rescaled aggregator produces
			// (λ ∈ [1e-150, 1] keeps newT finite and positive); a panic here
			// means the caller handed us garbage, not a recoverable stream.
			panic(fmt.Sprintf("core: threshold batch scale %v yields invalid threshold %v: %v", scale, newT, err))
		}
		if newT > e.th.T {
			e.increaseThreshold(newTh)
		} else {
			e.decreaseThreshold(newTh)
		}
		e.cfg.T = newT
		e.cfg.DeltaIt = newTh.DeltaIt
	}
	if hasDeltas {
		e.batchDiscover()
	}
	e.batchSeed = nil
	e.batching = false
	e.emitScale = scale
	if n := e.ix.NodeCount(); n > e.stats.MaxIndexNodes {
		e.stats.MaxIndexNodes = n
	}
	e.flushBatchEvents()
	return e.finishEmit()
}
