// Allocation-discipline tests for the Process hot path. The sorted-vector
// graph, the engine scratch free lists, and the sink clone-elision contract
// together promise that a steady-state update — one that changes weights but
// does not admit, evict, or report any subgraph — performs ZERO allocations:
// no neighbourhood maps, no candidate-set copies, no snapshot slices, no
// event clones. These tests pin that promise with testing.AllocsPerRun.
//
// Workload construction: the engine is warmed exactly like the benchmarks
// (skewed stream, T=100, Nmax=5), then updates of magnitude ±1e-9 are applied
// to edges internal to currently indexed dense subgraphs. The tiny magnitude
// keeps every score far from any threshold, so the full exploration machinery
// runs (snapshots, stable-dense bumps, neighbourhood merges, cheap-explores)
// while the index and the output-dense set stay fixed — the regime a
// long-running deployment spends almost all of its time in.
package core_test

import (
	"testing"

	"dyndens/internal/core"
	"dyndens/internal/stream"
)

// steadyStateEngine returns a warm engine with a non-retaining sink and a set
// of edges that lie inside indexed dense subgraphs (so updates to them walk
// the full positive/negative paths).
func steadyStateEngine(t *testing.T) (*core.Engine, []core.Update) {
	t.Helper()
	warm, err := stream.Drain(stream.MustSynthetic(stream.SynthConfig{
		Vertices: benchVertices, Seed: 1, Skew: benchSkew, Updates: benchWarm,
	}))
	if err != nil {
		t.Fatal(err)
	}
	eng := core.MustNew(benchConfig())
	eng.SetSink(&core.CountingSink{})
	eng.ProcessAll(warm)

	dense := eng.Dense()
	if len(dense) == 0 {
		t.Fatal("warm engine has no dense subgraphs; workload is mis-tuned")
	}
	var edges []core.Update
	seen := map[[2]core.Vertex]bool{}
	for _, sg := range dense {
		c := sg.Set
		for i := 0; i < c.Len(); i++ {
			for j := i + 1; j < c.Len(); j++ {
				a, b := c[i], c[j]
				if eng.Graph().Weight(a, b) == 0 || seen[[2]core.Vertex{a, b}] {
					continue
				}
				seen[[2]core.Vertex{a, b}] = true
				edges = append(edges, core.Update{A: a, B: b})
				if len(edges) == 32 {
					return eng, edges
				}
			}
		}
	}
	if len(edges) == 0 {
		t.Fatal("no internal edges found in dense subgraphs")
	}
	return eng, edges
}

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if allocs := testing.AllocsPerRun(50, f); allocs != 0 {
		t.Errorf("%s: steady-state Process performed %v allocs/run, want 0", name, allocs)
	}
}

func TestProcessSteadyStateZeroAllocPositive(t *testing.T) {
	eng, edges := steadyStateEngine(t)
	const delta = 1e-9
	// Pre-run once so any first-touch buffer growth happens before measuring.
	for _, u := range edges {
		u.Delta = delta
		eng.Process(u)
	}
	assertZeroAllocs(t, "positive", func() {
		for _, u := range edges {
			u.Delta = delta
			eng.Process(u)
		}
	})
}

func TestProcessSteadyStateZeroAllocNegative(t *testing.T) {
	eng, edges := steadyStateEngine(t)
	const delta = 1e-9
	for _, u := range edges {
		u.Delta = -delta
		eng.Process(u)
	}
	assertZeroAllocs(t, "negative", func() {
		for _, u := range edges {
			u.Delta = -delta
			eng.Process(u)
		}
	})
}

func TestProcessSteadyStateZeroAllocMixed(t *testing.T) {
	eng, edges := steadyStateEngine(t)
	const delta = 1e-9
	cycle := func() {
		for i, u := range edges {
			if i%2 == 0 {
				u.Delta = delta
			} else {
				u.Delta = -delta
			}
			eng.Process(u)
		}
		// Reverse signs so every edge's weight returns to baseline each cycle
		// and repeated runs cannot drift across a threshold.
		for i, u := range edges {
			if i%2 == 0 {
				u.Delta = -delta
			} else {
				u.Delta = delta
			}
			eng.Process(u)
		}
	}
	cycle()
	assertZeroAllocs(t, "mixed", cycle)
}

// TestProcessBatchSteadyStateZeroAlloc pins the batched hot path to the same
// allocation discipline as Process: a steady-state batch — weights move, the
// output-dense set does not — performs zero allocations with a non-retaining
// sink. The batch machinery (per-pair net map, sorted key/dirty scratch,
// whole-index snapshot, event staging) must all come from engine-owned
// reusable storage.
func TestProcessBatchSteadyStateZeroAlloc(t *testing.T) {
	eng, edges := steadyStateEngine(t)
	const delta = 1e-9
	// Two bursts per cycle — an all-positive batch exercising the discovery
	// phase and an all-negative one exercising the repair/decay path (the
	// epoch-burst shape) — mirrored so every weight returns to baseline each
	// cycle and repeated runs cannot drift across a threshold. Duplicate
	// pairs within each burst exercise the coalescing path.
	pos := make([]core.Update, 0, 2*len(edges))
	neg := make([]core.Update, 0, 2*len(edges))
	for _, u := range edges {
		u.Delta = delta / 2
		pos = append(pos, u, u)
		u.Delta = -delta / 2
		neg = append(neg, u, u)
	}
	cycle := func() {
		eng.ProcessBatch(pos)
		eng.ProcessBatch(neg)
	}
	// Pre-run so first-touch growth of the batch scratch (net map, key/dirty
	// slices, index snapshot buffer) happens before measuring.
	cycle()
	assertZeroAllocs(t, "batch", cycle)
}

// TestEmitCloneElision pins the sink capability contract: a retaining sink
// (CollectorSink) must receive private set copies, while a non-retaining
// chain (FilterSink → CountingSink) must not force clones — and the filter
// must still see valid sets during Emit.
func TestEmitCloneElision(t *testing.T) {
	mk := func() *core.Engine {
		eng := core.MustNew(core.Config{T: 1, Nmax: 4})
		return eng
	}

	// Retaining path: collected events must survive further processing.
	eng := mk()
	var collected core.CollectorSink
	eng.SetSink(&collected)
	eng.Process(core.Update{A: 1, B: 2, Delta: 5})
	eng.Process(core.Update{A: 2, B: 3, Delta: 5})
	eng.Process(core.Update{A: 1, B: 3, Delta: 5})
	evs := collected.Events()
	if len(evs) == 0 {
		t.Fatal("no events collected")
	}
	snapshot := make([]string, len(evs))
	for i, ev := range evs {
		snapshot[i] = ev.Set.Key()
	}
	// Drive more updates; retained sets must not be overwritten by scratch reuse.
	for i := 0; i < 50; i++ {
		eng.Process(core.Update{A: core.Vertex(10 + i), B: core.Vertex(11 + i), Delta: 2})
	}
	for i, ev := range evs {
		if ev.Set.Key() != snapshot[i] {
			t.Fatalf("retained event %d mutated: %q != %q", i, ev.Set.Key(), snapshot[i])
		}
	}

	// Non-retaining path: the filter observes correct sets at Emit time.
	eng = mk()
	counter := &core.CountingSink{}
	filter := &core.FilterSink{Next: counter, MinCardinality: 3}
	if core.SinkRetainsSets(filter) {
		t.Fatal("FilterSink→CountingSink chain should not retain sets")
	}
	eng.SetSink(filter)
	eng.Process(core.Update{A: 1, B: 2, Delta: 5})
	eng.Process(core.Update{A: 2, B: 3, Delta: 5})
	eng.Process(core.Update{A: 1, B: 3, Delta: 5})
	if counter.Total() == 0 || filter.Passed == 0 {
		t.Fatalf("filtered events did not flow: passed=%d total=%d", filter.Passed, counter.Total())
	}

	// MultiSink: retains iff any member retains.
	if !core.SinkRetainsSets(core.MultiSink{counter, &core.CollectorSink{}}) {
		t.Fatal("MultiSink with a collector member must retain")
	}
	if core.SinkRetainsSets(core.MultiSink{counter, &core.FilterSink{}}) {
		t.Fatal("MultiSink of non-retaining members must not retain")
	}
}
