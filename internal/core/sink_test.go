package core

import (
	"testing"

	"dyndens/internal/vset"
)

func ev(kind EventKind, vs ...vset.Vertex) Event {
	set := vset.New(vs...)
	return Event{Kind: kind, Set: set, Score: 1, Density: 1}
}

func TestCollectorSinkTake(t *testing.T) {
	var c CollectorSink
	c.Emit(ev(BecameOutputDense, 1, 2))
	c.Emit(ev(CeasedOutputDense, 1, 2))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	got := c.Take()
	if len(got) != 2 || got[0].Kind != BecameOutputDense || got[1].Kind != CeasedOutputDense {
		t.Fatalf("Take returned %v", got)
	}
	if c.Len() != 0 {
		t.Fatalf("Len after Take = %d, want 0", c.Len())
	}
	// The taken slice must not be clobbered by later emissions.
	c.Emit(ev(BecameOutputDense, 3, 4))
	if !got[0].Set.Equal(vset.New(1, 2)) {
		t.Fatalf("taken events were clobbered: %v", got[0].Set)
	}
}

func TestCountingSink(t *testing.T) {
	var c CountingSink
	c.Emit(ev(BecameOutputDense, 1, 2))
	c.Emit(ev(BecameOutputDense, 1, 3))
	c.Emit(ev(CeasedOutputDense, 1, 2))
	if c.Became != 2 || c.Ceased != 1 || c.Total() != 3 {
		t.Fatalf("counts = %d/%d (total %d), want 2/1 (3)", c.Became, c.Ceased, c.Total())
	}
	c.Reset()
	if c.Total() != 0 {
		t.Fatalf("Total after Reset = %d", c.Total())
	}
}

func TestFilterSinkMinCardinality(t *testing.T) {
	var out CollectorSink
	f := &FilterSink{Next: &out, MinCardinality: 3}
	f.Emit(ev(BecameOutputDense, 1, 2))
	f.Emit(ev(BecameOutputDense, 1, 2, 3))
	f.Emit(ev(BecameOutputDense, 1, 2, 3, 4))
	if f.Passed != 2 || f.Dropped != 1 {
		t.Fatalf("passed/dropped = %d/%d, want 2/1", f.Passed, f.Dropped)
	}
	if out.Len() != 2 || out.Events()[0].Set.Len() != 3 {
		t.Fatalf("forwarded events = %v", out.Events())
	}
}

func TestFilterSinkWatchlist(t *testing.T) {
	var out CollectorSink
	f := &FilterSink{Next: &out, Watch: vset.New(5, 9)}
	f.Emit(ev(BecameOutputDense, 1, 2))    // no watched vertex
	f.Emit(ev(BecameOutputDense, 4, 5))    // contains 5
	f.Emit(ev(BecameOutputDense, 8, 9, 7)) // contains 9
	f.Emit(ev(BecameOutputDense, 6, 10))   // straddles both, contains neither
	if f.Passed != 2 || f.Dropped != 2 {
		t.Fatalf("passed/dropped = %d/%d, want 2/2", f.Passed, f.Dropped)
	}
	if out.Len() != 2 {
		t.Fatalf("forwarded %d events, want 2", out.Len())
	}
}

func TestFilterSinkNilNextCountsOnly(t *testing.T) {
	f := &FilterSink{MinCardinality: 2}
	f.Emit(ev(BecameOutputDense, 1, 2))
	if f.Passed != 1 {
		t.Fatalf("passed = %d, want 1", f.Passed)
	}
}

func TestMultiSinkFanout(t *testing.T) {
	var a, b CollectorSink
	m := MultiSink{&a, &b}
	m.Emit(ev(BecameOutputDense, 1, 2))
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fanout lens = %d/%d, want 1/1", a.Len(), b.Len())
	}
}

// streamUpdates is a tiny deterministic update sequence that produces both
// kinds of events: a triangle forms, strengthens, and then collapses.
func streamUpdates() []Update {
	return []Update{
		{A: 1, B: 2, Delta: 4},
		{A: 2, B: 3, Delta: 4},
		{A: 1, B: 3, Delta: 4},
		{A: 1, B: 2, Delta: 2},
		{A: 1, B: 2, Delta: -6},
		{A: 2, B: 3, Delta: -4},
		{A: 1, B: 3, Delta: -4},
	}
}

// TestSinkModeMatchesSliceMode runs the same stream through a slice-mode
// engine and a sink-mode engine and requires the identical event sequence.
func TestSinkModeMatchesSliceMode(t *testing.T) {
	cfg := Config{T: 3, Nmax: 4}

	sliceEng := MustNew(cfg)
	var want []Event
	for _, u := range streamUpdates() {
		want = append(want, sliceEng.Process(u)...)
	}
	if len(want) == 0 {
		t.Fatal("test stream produced no events; fixture is broken")
	}

	sinkEng := MustNew(cfg)
	var got CollectorSink
	sinkEng.SetSink(&got)
	for _, u := range streamUpdates() {
		if evs := sinkEng.Process(u); evs != nil {
			t.Fatalf("Process returned %v in sink mode, want nil", evs)
		}
	}

	if got.Len() != len(want) {
		t.Fatalf("sink saw %d events, slice mode produced %d", got.Len(), len(want))
	}
	for i, w := range want {
		g := got.Events()[i]
		if g.Kind != w.Kind || !g.Set.Equal(w.Set) || g.Score != w.Score || g.Density != w.Density {
			t.Errorf("event %d: got %+v, want %+v", i, g, w)
		}
	}
	if sinkEng.Stats().Events != sliceEng.Stats().Events {
		t.Errorf("event counters diverge: sink %d, slice %d", sinkEng.Stats().Events, sliceEng.Stats().Events)
	}
}

// TestSetSinkNilRestoresSliceMode verifies the mode can be switched back and
// forth on a live engine.
func TestSetSinkNilRestoresSliceMode(t *testing.T) {
	e := MustNew(Config{T: 3, Nmax: 4})
	var sink CountingSink
	e.SetSink(&sink)
	e.Process(Update{A: 1, B: 2, Delta: 5})
	if sink.Became != 1 {
		t.Fatalf("sink.Became = %d, want 1", sink.Became)
	}
	e.SetSink(nil)
	evs := e.Process(Update{A: 3, B: 4, Delta: 5})
	if len(evs) != 1 || evs[0].Kind != BecameOutputDense {
		t.Fatalf("slice mode returned %v, want one BecameOutputDense", evs)
	}
	if sink.Total() != 1 {
		t.Fatalf("uninstalled sink still received events: %d", sink.Total())
	}
}

// boundarySink records events and the update boundaries separating them.
type boundarySink struct {
	CollectorSink
	boundaries   int
	eventsByTurn [][]Event // events grouped by the update that produced them
	pending      []Event
}

func (b *boundarySink) Emit(ev Event) {
	b.CollectorSink.Emit(ev)
	b.pending = append(b.pending, ev)
}

func (b *boundarySink) EndUpdate() {
	b.boundaries++
	b.eventsByTurn = append(b.eventsByTurn, b.pending)
	b.pending = nil
}

// TestUpdateBoundaryPerProcess pins the UpdateBoundarySink contract: exactly
// one EndUpdate per Process call, no-ops included, with the update's events
// emitted before the boundary.
func TestUpdateBoundaryPerProcess(t *testing.T) {
	e := MustNew(Config{T: 3, Nmax: 4})
	sink := &boundarySink{}
	e.SetSink(sink)
	updates := []Update{
		{A: 1, B: 2, Delta: 4},  // became
		{A: 1, B: 1, Delta: 2},  // no-op: self loop
		{A: 3, B: 4, Delta: 0},  // no-op: zero delta
		{A: 5, B: 6, Delta: -1}, // no-op: clamped to zero on a missing edge
		{A: 1, B: 2, Delta: -2}, // ceased
	}
	for _, u := range updates {
		e.Process(u)
	}
	if sink.boundaries != len(updates) {
		t.Fatalf("saw %d boundaries for %d Process calls", sink.boundaries, len(updates))
	}
	perTurn := make([]int, len(sink.eventsByTurn))
	for i, evs := range sink.eventsByTurn {
		perTurn[i] = len(evs)
	}
	want := []int{1, 0, 0, 0, 1}
	for i := range want {
		if perTurn[i] != want[i] {
			t.Fatalf("events per update = %v, want %v", perTurn, want)
		}
	}
	if sink.eventsByTurn[0][0].Kind != BecameOutputDense || sink.eventsByTurn[4][0].Kind != CeasedOutputDense {
		t.Fatalf("boundary grouping misattributed events: %+v", sink.eventsByTurn)
	}
}

// TestUpdateBoundaryThroughWrappers verifies MultiSink and FilterSink forward
// EndUpdate to boundary-aware members, and that SetThreshold counts as one
// boundary.
func TestUpdateBoundaryThroughWrappers(t *testing.T) {
	e := MustNew(Config{T: 3, Nmax: 4})
	inner := &boundarySink{}
	var counter CountingSink
	e.SetSink(MultiSink{&counter, &FilterSink{Next: inner}})
	e.Process(Update{A: 1, B: 2, Delta: 4})
	if _, err := e.SetThreshold(5); err != nil {
		t.Fatal(err)
	}
	if inner.boundaries != 2 {
		t.Fatalf("wrapped sink saw %d boundaries, want 2 (one Process + one SetThreshold)", inner.boundaries)
	}
	if len(inner.eventsByTurn[0]) != 1 || len(inner.eventsByTurn[1]) != 1 {
		t.Fatalf("events per boundary = %d/%d, want 1/1", len(inner.eventsByTurn[0]), len(inner.eventsByTurn[1]))
	}
}

// TestSetThresholdThroughSink verifies the dynamic threshold procedure also
// routes through the sink.
func TestSetThresholdThroughSink(t *testing.T) {
	e := MustNew(Config{T: 3, Nmax: 4})
	var sink CollectorSink
	e.SetSink(&sink)
	e.Process(Update{A: 1, B: 2, Delta: 4}) // output-dense at T=3
	sink.Reset()
	if evs, err := e.SetThreshold(5); err != nil || evs != nil {
		t.Fatalf("SetThreshold = %v, %v; want nil, nil in sink mode", evs, err)
	}
	if sink.Len() != 1 || sink.Events()[0].Kind != CeasedOutputDense {
		t.Fatalf("sink events after threshold increase: %v", sink.Events())
	}
}
