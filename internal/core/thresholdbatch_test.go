// Unit tests for Engine.ProcessThresholdBatch: the rescaled-decay epoch unit
// that moves the threshold to baseT/λ and stamps every emitted score and
// density with λ so sinks and queries keep seeing real (paper) units while
// the internal state stays normalized. The pipeline-level exact-vs-rescale
// conformance suite lives in internal/stream.
package core_test

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"dyndens/internal/baseline/brute"
	"dyndens/internal/core"
)

// scaleStream draws a mixed positive stream over a small universe.
func scaleStream(seed int64, vertices, n int) []core.Update {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Update, 0, n)
	for i := 0; i < n; i++ {
		a := core.Vertex(rng.Intn(vertices))
		b := core.Vertex(rng.Intn(vertices))
		for b == a {
			b = core.Vertex(rng.Intn(vertices))
		}
		out = append(out, core.Update{A: a, B: b, Delta: rng.ExpFloat64() * 1.5})
	}
	return out
}

func relCloseTo(a, b, rel float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}

// TestProcessThresholdBatchMatchesRealUnitReference pins the normalized
// representation against the real (paper-unit) graph it stands for. The
// engine under test ingests raw weights at λ=1, then a threshold epoch moves
// λ to 0.5 with the second chunk arriving normalized (delta/λ): its stored
// graph is real/λ throughout and its threshold T/λ. The reference engine is
// fed the real-unit stream directly — first chunk pre-faded by λ, second
// fresh — at the base threshold. Expanded dense sets must agree (with the
// brute oracle on each engine's own graph), and the normalized engine's
// emitted densities must already be real-unit.
func TestProcessThresholdBatchMatchesRealUnitReference(t *testing.T) {
	// A power of two keeps delta/scale and w·scale exact, so the two engines
	// hold bit-identical graphs up to the shared input rounding.
	const scale = 0.5
	baseCfg := core.Config{T: 2, Nmax: 4}
	updates := scaleStream(11, 10, 300)

	eng := core.MustNew(baseCfg)
	eng.ProcessBatch(updates[:150])
	normalized := make([]core.Update, 150)
	for i, u := range updates[150:] {
		u.Delta /= scale
		normalized[i] = u
	}
	eng.ProcessThresholdBatch(scale, normalized)

	ref := core.MustNew(baseCfg)
	faded := make([]core.Update, 150)
	for i, u := range updates[:150] {
		u.Delta *= scale
		faded[i] = u
	}
	ref.ProcessBatch(faded)
	ref.ProcessBatch(updates[150:])

	if got, want := eng.Config().T, baseCfg.T/scale; got != want {
		t.Fatalf("normalized threshold %v, want %v", got, want)
	}
	if eng.DecayScale() != scale {
		t.Fatalf("DecayScale = %v, want %v", eng.DecayScale(), scale)
	}
	keys := func(e *core.Engine) []string {
		var out []string
		for _, s := range e.OutputDenseExpanded() {
			out = append(out, s.Set.Key())
		}
		slices.Sort(out)
		return out
	}
	got, want := keys(eng), keys(ref)
	if len(want) == 0 {
		t.Fatal("reference has no dense subgraphs; fixture too weak")
	}
	if !slices.Equal(got, want) {
		t.Fatalf("expanded dense set %v != real-unit reference %v", got, want)
	}
	cfg := eng.Config()
	oracle := brute.Keys(brute.EnumerateAll(eng.Graph(), brute.Params{Measure: cfg.Measure, T: cfg.T, Nmax: cfg.Nmax}))
	if !slices.Equal(got, oracle) {
		t.Fatalf("expanded dense set %v != oracle on normalized graph %v", got, oracle)
	}
	refDens := map[string]float64{}
	for _, s := range ref.OutputDense() {
		refDens[s.Set.Key()] = s.Density
	}
	outs := eng.OutputDense()
	if len(outs) == 0 {
		t.Fatal("no output-dense subgraphs; fixture too weak")
	}
	for _, s := range outs {
		want, ok := refDens[s.Set.Key()]
		if !ok {
			t.Fatalf("output-dense %s absent from reference", s.Set.Key())
		}
		if !relCloseTo(s.Density, want, 1e-9) {
			t.Fatalf("density of %s = %v, want real-unit %v", s.Set.Key(), s.Density, want)
		}
	}
}

// TestProcessThresholdBatchEquivalentToSetThreshold: an empty threshold batch
// under scale λ is exactly SetThreshold(baseT/λ) plus the emit-scale stamp —
// same net events, same dense keys, same tick accounting shape.
func TestProcessThresholdBatchEquivalentToSetThreshold(t *testing.T) {
	updates := scaleStream(13, 10, 250)
	mk := func() *core.Engine {
		e := core.MustNew(core.Config{T: 2, Nmax: 4})
		e.ProcessBatch(updates)
		return e
	}
	const scale = 0.5
	a, b := mk(), mk()

	evA := a.ProcessThresholdBatch(scale, nil)
	evB, err := b.SetThreshold(2 / scale)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(a.OutputDenseKeys(), b.OutputDenseKeys()) {
		t.Fatalf("dense keys diverge: %v vs %v", a.OutputDenseKeys(), b.OutputDenseKeys())
	}
	canon := func(evs []core.Event) []string {
		var out []string
		for _, ev := range evs {
			out = append(out, string(rune('0'+ev.Kind))+"|"+ev.Set.Key())
		}
		slices.Sort(out)
		return out
	}
	if got, want := canon(evA), canon(evB); !slices.Equal(got, want) {
		t.Fatalf("events diverge: %v vs %v", got, want)
	}
	if a.Stats().ThresholdTicks != 1 {
		t.Fatalf("ThresholdTicks = %d, want 1", a.Stats().ThresholdTicks)
	}
	// The threshold-batch engine reports real units; the SetThreshold engine
	// kept scale 1, so its densities ARE the normalized ones.
	for i, s := range a.OutputDense() {
		if want := b.OutputDense()[i].Density * scale; !relCloseTo(s.Density, want, 1e-12) {
			t.Fatalf("density of %s = %v, want %v", s.Set.Key(), s.Density, want)
		}
	}
}

// TestProcessThresholdBatchRenormRoundTrip drives a unit-change round trip:
// first an epoch whose compensating deltas multiply every stored weight by
// 1/λ while λ drops to 1/1024 (real graph unchanged — no transitions may
// fire), then the renormalization unit that folds λ back into the weights
// with Scale exactly 1. The engine must end at the base threshold, scale 1,
// the original graph to an ulp (the compensating delta w·λ−w rounds once),
// and an unchanged dense set throughout.
func TestProcessThresholdBatchRenormRoundTrip(t *testing.T) {
	const scale = 1.0 / 1024
	updates := scaleStream(17, 8, 200)
	eng := core.MustNew(core.Config{T: 2, Nmax: 4})
	sink := &boundarySink{}
	eng.SetSink(sink)
	eng.ProcessBatch(updates)
	before := eng.OutputDenseKeys()
	events := sink.Len()
	g := eng.Graph()
	pairs := dedupePairs(updates)
	original := make([]float64, len(pairs))
	for i, u := range pairs {
		original[i] = g.Weight(u.A, u.B)
	}

	// Unit change down: w' = w/λ so the real graph is untouched.
	grow := make([]core.Update, len(pairs))
	for i, u := range pairs {
		grow[i] = core.Update{A: u.A, B: u.B, Delta: original[i]/scale - original[i]}
	}
	eng.ProcessThresholdBatch(scale, grow)
	if sink.Len() != events {
		t.Fatalf("pure unit change emitted %d events", sink.Len()-events)
	}
	if !slices.Equal(eng.OutputDenseKeys(), before) {
		t.Fatalf("pure unit change altered the dense set: %v vs %v", eng.OutputDenseKeys(), before)
	}

	// Renormalize: fold λ into the weights (w' → w'·λ) and return Scale to 1.
	shrink := make([]core.Update, len(pairs))
	for i, u := range pairs {
		w := g.Weight(u.A, u.B)
		shrink[i] = core.Update{A: u.A, B: u.B, Delta: w*scale - w}
	}
	eng.ProcessThresholdBatch(1, shrink)

	if sink.Len() != events {
		t.Fatalf("renorm emitted %d events", sink.Len()-events)
	}
	if eng.DecayScale() != 1 {
		t.Fatalf("DecayScale = %v after renorm, want 1", eng.DecayScale())
	}
	if got := eng.Config().T; got != 2 {
		t.Fatalf("threshold %v after renorm, want exactly the base 2", got)
	}
	if !slices.Equal(eng.OutputDenseKeys(), before) {
		t.Fatalf("renorm changed the dense set: %v vs %v", eng.OutputDenseKeys(), before)
	}
	for i, u := range pairs {
		if got := g.Weight(u.A, u.B); !relCloseTo(got, original[i], 1e-12) {
			t.Fatalf("weight %d-%d = %v, want the original %v", u.A, u.B, got, original[i])
		}
	}
}

// dedupePairs returns one canonical Update per distinct pair in updates.
func dedupePairs(updates []core.Update) []core.Update {
	seen := map[[2]core.Vertex]bool{}
	var out []core.Update
	for _, u := range updates {
		a, b := u.A, u.B
		if a > b {
			a, b = b, a
		}
		if seen[[2]core.Vertex{a, b}] {
			continue
		}
		seen[[2]core.Vertex{a, b}] = true
		out = append(out, core.Update{A: a, B: b})
	}
	return out
}

// TestProcessThresholdBatchEmitScaleOnEvents: events emitted by a threshold
// batch carry real-unit scores/densities — the NEW λ of the epoch, including
// for the dense transitions the threshold walk itself causes.
func TestProcessThresholdBatchEmitScaleOnEvents(t *testing.T) {
	eng := core.MustNew(core.Config{T: 2, Nmax: 4})
	var sink core.CollectorSink
	eng.SetSink(&sink)
	// A triangle of weight 2 per edge: density well above T.
	tri := []core.Update{{A: 0, B: 1, Delta: 2}, {A: 0, B: 2, Delta: 2}, {A: 1, B: 2, Delta: 2}}
	eng.ProcessBatch(tri)
	if sink.Len() == 0 {
		t.Fatal("triangle did not become dense; fixture too weak")
	}
	base := sink.Events()[len(sink.Events())-1]

	// Halve λ with a delta that doubles the normalized weights exactly: the
	// real graph is unchanged, so no transition may fire and queries must
	// report the same real density as before.
	grow := []core.Update{{A: 0, B: 1, Delta: 2}, {A: 0, B: 2, Delta: 2}, {A: 1, B: 2, Delta: 2}}
	n := sink.Len()
	eng.ProcessThresholdBatch(0.5, grow)
	if sink.Len() != n {
		t.Fatalf("pure unit change emitted %d events", sink.Len()-n)
	}
	var got *core.Subgraph
	for _, s := range eng.OutputDense() {
		if s.Set.Key() == base.Set.Key() {
			sc := s
			got = &sc
		}
	}
	if got == nil {
		t.Fatalf("set %s no longer output-dense", base.Set.Key())
	}
	if !relCloseTo(got.Density, base.Density, 1e-12) {
		t.Fatalf("real density drifted: %v, want %v", got.Density, base.Density)
	}

	// Now cancel one edge inside the batch: the cease events must be stamped
	// with the epoch's NEW λ (real units), not the normalized score. With a
	// sink installed the engine elides the returned slice, so read the sink.
	n = sink.Len()
	eng.ProcessThresholdBatch(0.25, []core.Update{{A: 0, B: 1, Delta: -8}})
	if sink.Len() == n {
		t.Fatal("edge cancellation emitted no events")
	}
	ceased := false
	for _, ev := range sink.Events()[n:] {
		if ev.Kind != core.CeasedOutputDense {
			continue
		}
		ceased = true
		// Remaining normalized pair weight is 4 (score 4, density 2); real
		// units divide by 4 at λ=0.25. Anything at or above the normalized
		// magnitude means the emit boundary forgot the scale stamp.
		if ev.Density >= 1.999 {
			t.Fatalf("cease event density %v looks normalized, not real-unit", ev.Density)
		}
	}
	if !ceased {
		t.Fatal("no CeasedOutputDense event after the edge cancellation")
	}
}
