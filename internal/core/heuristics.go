package core

import "slices"

// computeMaxExplore evaluates the MaxExplore heuristic (Section 7.1) for the
// current positive update. It derives, from the neighbourhoods of the two
// updated endpoints alone, an upper bound maxExplore on the cardinality of
// newly-dense subgraphs that can require explore-based (as opposed to
// cheap-explore-based) discovery. Exploration around subgraphs at or beyond
// that cardinality can be skipped without affecting correctness.
//
// When the heuristic is disabled the bound is set past Nmax so it never
// restricts anything.
func (e *Engine) computeMaxExplore() {
	unlimited := e.th.Nmax + 1
	e.maxExplore, e.maxExploreA, e.maxExploreB = unlimited, unlimited, unlimited
	if !e.cfg.EnableMaxExplore {
		return
	}
	// Z = 2·(g_Nmax·T + δ_it/(Nmax−1)).
	gNmax := e.th.S(e.th.Nmax) / (float64(e.th.Nmax) * float64(e.th.Nmax-1))
	z := 2 * (gNmax*e.th.T + e.th.DeltaIt/float64(e.th.Nmax-1))
	wAfter := e.g.Weight(e.a, e.b)

	e.maxExploreA = e.maxExploreFor(e.b, e.a, wAfter, z)
	e.maxExploreB = e.maxExploreFor(e.a, e.b, wAfter, z)
	e.maxExplore = e.maxExploreA
	if e.maxExploreB < e.maxExplore {
		e.maxExplore = e.maxExploreB
	}
}

// maxExploreFor computes maxExplore_x where x is the endpoint whose
// stable-dense subgraphs are guaranteed to underlie large newly-dense
// subgraphs; other is the opposite endpoint (whose neighbourhood bounds the
// contribution it can make to any subgraph's score).
//
// best(0) = w_ab after the update; best(i) for i ≥ 1 is the i-th largest
// weight among other's edges excluding the one to x; top(i) = Σ_{j≤i} best(j).
// maxExplore_x = min{ i ∈ [3, Nmax] : top(i−1) ≤ Z·(i−1) − δ_it ∧ best(i) < Z },
// or Nmax+1 if no such i exists.
//
// The neighbour weights are copied into an engine-owned scratch slice and
// sorted ascending with slices.Sort (no interface boxing), so the heuristic
// allocates nothing in steady state.
func (e *Engine) maxExploreFor(other, x Vertex, wAfter, z float64) int {
	nmax := e.th.Nmax
	vs, ws := e.g.Neighborhood(other)
	e.weightsBuf = e.weightsBuf[:0]
	for i, v := range vs {
		if v != x {
			e.weightsBuf = append(e.weightsBuf, ws[i])
		}
	}
	weights := e.weightsBuf
	slices.Sort(weights)

	best := func(i int) float64 {
		if i == 0 {
			return wAfter
		}
		if i <= len(weights) {
			return weights[len(weights)-i] // i-th largest
		}
		return 0
	}
	top := wAfter // top(0)
	for i := 1; i <= nmax; i++ {
		top += best(i)
		if i+1 < 3 {
			continue
		}
		cand := i + 1 // candidate value of maxExplore_x, with top(cand−1) = top
		if cand > nmax {
			break
		}
		if top <= z*float64(cand-1)-e.th.DeltaIt && best(cand) < z {
			return cand
		}
	}
	return nmax + 1
}
