package core

import "dyndens/internal/vset"

// EventSink receives output-dense change events as the engine discovers them.
//
// This is the streaming counterpart of the slice-returning Process API: a sink
// installed with Engine.SetSink observes every Became/CeasedOutputDense change
// the moment it is found, without the engine materialising a per-update slice.
// Sinks are invoked synchronously from Process/SetThreshold on the engine's
// goroutine, while the update is still being applied. Emit must therefore not
// call back into the engine — neither mutators (Process, SetThreshold) nor
// queries (OutputDense etc.), which would observe a half-applied update. An
// implementation that needs either should hand the event off to its own
// machinery and act after Process returns.
//
// Set ownership (the clone-elision contract): by default the engine clones
// Event.Set out of its internal scratch buffers before Emit, so the set may
// be retained indefinitely. A sink that only inspects the set during Emit can
// opt out of that clone by also implementing SetRetainer and returning false
// — the engine then passes its scratch directly, and the set is valid ONLY
// for the duration of the Emit call. CountingSink and FilterSink (when its
// Next does not retain) do this, which is what makes the steady-state
// Process hot path allocation-free.
type EventSink interface {
	Emit(ev Event)
}

// UpdateBoundarySink is the optional capability by which a sink asks to be
// told where one update ends and the next begins. The engine calls EndUpdate
// exactly once per Process call — including no-op updates (A == B, zero or
// fully clamped delta) that emit no events — and once per SetThreshold call,
// after every event of that update has been emitted. Consumers that group
// events by the update that produced them (the story-identity tracker in
// internal/story is the canonical example) rely on this signal to know when a
// per-update buffer is complete; counting every Process call keeps their
// update sequence aligned with the sequence numbers a sharded deployment's
// merge layer assigns.
//
// EndUpdate is invoked on the processing goroutine before Process returns and
// is subject to the same restriction as Emit: it must not call back into the
// engine.
type UpdateBoundarySink interface {
	// EndUpdate marks the end of one Process (or SetThreshold) call.
	EndUpdate()
}

// SetRetainer is the optional capability by which a sink declares whether it
// (or anything it forwards to) keeps a reference to Event.Set after Emit
// returns. Sinks that do not implement it are assumed to retain, and the
// engine clones every emitted set for them.
type SetRetainer interface {
	// RetainsSets reports whether Event.Set may be referenced after Emit.
	// Returning false licenses the engine to reuse the set's backing array
	// for the next event.
	RetainsSets() bool
}

// SinkRetainsSets reports whether s must be handed a private copy of
// Event.Set: true unless s implements SetRetainer and declares otherwise.
func SinkRetainsSets(s EventSink) bool {
	if r, ok := s.(SetRetainer); ok {
		return r.RetainsSets()
	}
	return true
}

// EventSinkFunc adapts a plain function to the EventSink interface.
type EventSinkFunc func(ev Event)

// Emit implements EventSink.
func (f EventSinkFunc) Emit(ev Event) { f(ev) }

// CollectorSink accumulates events into a slice. It backs the engine's
// slice-returning Process API and is the natural sink for tests that want to
// inspect the exact event sequence. The zero value is ready to use.
type CollectorSink struct {
	events []Event
}

// Emit implements EventSink.
func (c *CollectorSink) Emit(ev Event) { c.events = append(c.events, ev) }

// RetainsSets implements SetRetainer: the collector stores events, so it
// needs private set copies.
func (c *CollectorSink) RetainsSets() bool { return true }

// Events returns the accumulated events without resetting the sink. The
// returned slice aliases the sink's buffer; callers that keep it past the next
// Emit should copy it (or use Take).
func (c *CollectorSink) Events() []Event { return c.events }

// Len returns the number of accumulated events.
func (c *CollectorSink) Len() int { return len(c.events) }

// Take returns the accumulated events and resets the sink. The returned slice
// is owned by the caller; subsequent Emits start a fresh buffer.
func (c *CollectorSink) Take() []Event {
	evs := c.events
	c.events = nil
	return evs
}

// Reset discards the accumulated events.
func (c *CollectorSink) Reset() { c.events = nil }

// CountingSink counts events by kind without retaining them. It is the
// cheapest possible sink and the default for throughput benchmarks, where
// materialising events would distort the measurement. The zero value is ready
// to use.
type CountingSink struct {
	Became uint64 // BecameOutputDense events observed
	Ceased uint64 // CeasedOutputDense events observed
}

// Emit implements EventSink.
func (c *CountingSink) Emit(ev Event) {
	switch ev.Kind {
	case BecameOutputDense:
		c.Became++
	case CeasedOutputDense:
		c.Ceased++
	}
}

// RetainsSets implements SetRetainer: the counter never touches Event.Set,
// so the engine can skip the per-event clone entirely.
func (c *CountingSink) RetainsSets() bool { return false }

// Total returns the total number of events observed.
func (c *CountingSink) Total() uint64 { return c.Became + c.Ceased }

// Reset zeroes the counters.
func (c *CountingSink) Reset() { c.Became, c.Ceased = 0, 0 }

// FilterSink forwards to Next only the events that pass its predicates. It is
// the story-tracking primitive: a consumer interested in, say, stories of at
// least four entities mentioning a particular person installs a FilterSink
// with MinCardinality=4 and that person's vertex on the watchlist.
//
// An event passes when its subgraph has cardinality ≥ MinCardinality (0 or 1
// disables the check) and, if Watch is non-empty, contains at least one
// watched vertex.
type FilterSink struct {
	// Next receives the events that pass the filter. A nil Next makes the
	// sink count-only (Passed/Dropped still advance).
	Next EventSink
	// MinCardinality is the minimum subgraph cardinality to forward.
	MinCardinality int
	// Watch, when non-empty, requires the subgraph to contain at least one of
	// these vertices.
	Watch vset.Set

	// Passed and Dropped count the filter's decisions.
	Passed  uint64
	Dropped uint64
}

// Emit implements EventSink.
func (f *FilterSink) Emit(ev Event) {
	if !f.match(ev) {
		f.Dropped++
		return
	}
	f.Passed++
	if f.Next != nil {
		f.Next.Emit(ev)
	}
}

// RetainsSets implements SetRetainer: the filter itself only reads the set
// during Emit (the cardinality gate and the watchlist merge-scan), so it
// retains exactly when its Next does.
func (f *FilterSink) RetainsSets() bool {
	return f.Next != nil && SinkRetainsSets(f.Next)
}

// EndUpdate implements UpdateBoundarySink by forwarding the boundary to Next
// when it wants one. The filter itself is stateless across updates.
func (f *FilterSink) EndUpdate() {
	if b, ok := f.Next.(UpdateBoundarySink); ok {
		b.EndUpdate()
	}
}

func (f *FilterSink) match(ev Event) bool {
	if ev.Set.Len() < f.MinCardinality {
		return false
	}
	if f.Watch.Empty() {
		return true
	}
	// Both sets are sorted; merge-scan for a common vertex.
	s, w := ev.Set, f.Watch
	i, j := 0, 0
	for i < len(s) && j < len(w) {
		switch {
		case s[i] < w[j]:
			i++
		case s[i] > w[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// MultiSink fans every event out to all member sinks in order.
type MultiSink []EventSink

// Emit implements EventSink.
func (m MultiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// EndUpdate implements UpdateBoundarySink by forwarding the boundary to every
// member that wants one.
func (m MultiSink) EndUpdate() {
	for _, s := range m {
		if b, ok := s.(UpdateBoundarySink); ok {
			b.EndUpdate()
		}
	}
}

// RetainsSets implements SetRetainer: the fan-out needs a private copy as
// soon as any member does.
func (m MultiSink) RetainsSets() bool {
	for _, s := range m {
		if SinkRetainsSets(s) {
			return true
		}
	}
	return false
}
