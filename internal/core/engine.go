// Package core implements DynDens, the incremental algorithm for maintaining
// dense subgraphs under streaming edge-weight updates (the Engagement
// problem) described in Sections 3, 4, 6 and 7 of the paper.
//
// The engine owns the evolving weighted graph, the dense-subgraph prefix-tree
// index, and the threshold schedule. Each call to Process applies one edge
// weight update and returns the changes to the set of output-dense subgraphs
// (subgraphs whose density is at least the user threshold T and whose
// cardinality is at most Nmax).
package core

import (
	"fmt"

	"dyndens/internal/density"
	"dyndens/internal/graph"
	"dyndens/internal/index"
	"dyndens/internal/vset"
)

// Vertex aliases the graph vertex type.
type Vertex = vset.Vertex

// Update aliases the graph edge-weight update type.
type Update = graph.Update

// Config configures a DynDens engine.
type Config struct {
	// Measure selects the density normalisation S_n. Defaults to AvgWeight.
	Measure density.Measure
	// T is the output-density threshold; must be positive.
	T float64
	// Nmax is the maximum cardinality of subgraphs of interest; must be ≥ 2.
	Nmax int
	// DeltaIt is the δ_it tuning parameter (space/time trade-off). If zero,
	// DeltaItFraction is used instead.
	DeltaIt float64
	// DeltaItFraction sets δ_it as a fraction of its maximum valid value
	// (Section 4.1.3). Used only when DeltaIt is zero; defaults to 0.01,
	// matching the paper's main experiments.
	DeltaItFraction float64

	// DisableImplicitTooDense turns off the ImplicitTooDense optimisation
	// (Section 3.2.3), forcing Explore-All to insert every supergraph of a
	// too-dense subgraph explicitly. Only useful for the ablation experiment.
	DisableImplicitTooDense bool
	// EnableMaxExplore enables the MaxExplore heuristic (Section 7.1).
	EnableMaxExplore bool
	// EnableDegreePrioritize enables the DegreePrioritize heuristic (Section 7.2).
	EnableDegreePrioritize bool
}

// WithDefaults returns the configuration with default values applied (the
// configuration an engine built from c would report via Engine.Config). It is
// what sharded deployments, which hold a Config rather than an Engine, print
// in their run headers.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Measure == nil {
		c.Measure = density.AvgWeight
	}
	if c.DeltaIt == 0 {
		frac := c.DeltaItFraction
		if frac <= 0 || frac >= 1 {
			frac = 0.01
		}
		c.DeltaIt = frac * density.MaxDeltaIt(c.Measure, c.T, c.Nmax)
	}
	return c
}

// EventKind describes how the output-dense set changed.
type EventKind uint8

const (
	// BecameOutputDense reports a subgraph whose density crossed T upward.
	BecameOutputDense EventKind = iota + 1
	// CeasedOutputDense reports a subgraph whose density dropped below T.
	CeasedOutputDense
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case BecameOutputDense:
		return "became-output-dense"
	case CeasedOutputDense:
		return "ceased-output-dense"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is a change to the output-dense subgraph set caused by one update.
type Event struct {
	Kind    EventKind
	Set     vset.Set
	Score   float64
	Density float64
}

// Subgraph is a snapshot of one maintained subgraph.
type Subgraph struct {
	Set     vset.Set
	Score   float64
	Density float64
}

// Stats aggregates work counters across the lifetime of the engine. All
// counters are monotonically increasing except the index gauges.
type Stats struct {
	Updates         uint64 // updates processed (batched updates count individually)
	AppliedOnly     uint64 // updates applied to the graph without processing (ApplyOnly)
	Batches         uint64 // ProcessBatch calls (one logical tick each)
	ThresholdTicks  uint64 // ProcessThresholdBatch calls (rescaled decay epochs)
	BatchPairs      uint64 // coalesced positive pairs that ran the discovery pass
	BatchPairSkips  uint64 // coalesced positive pairs skipped by scoped delivery
	PositiveUpdates uint64
	NegativeUpdates uint64
	Explorations    uint64 // explore() invocations that scanned a neighbourhood
	ExploreAll      uint64 // Explore-All scans (only without ImplicitTooDense)
	CheapExplores   uint64 // cheap-exploration attempts
	Insertions      uint64 // dense subgraphs inserted into the index
	Evictions       uint64 // dense subgraphs evicted from the index
	StarInsertions  uint64 // ImplicitTooDense families created
	MaxExploreSkips uint64 // explorations skipped by the MaxExplore heuristic
	DegreeSkips     uint64 // candidates skipped by DegreePrioritize
	Events          uint64 // output events emitted

	IndexedDense  int // current number of explicitly indexed dense subgraphs
	IndexedStars  int // current number of ImplicitTooDense families
	IndexNodes    int // current prefix-tree node count
	MaxIndexNodes int // high-water mark of IndexNodes
}

// Add accumulates o into s. It is the aggregation primitive used by sharded
// deployments, where each worker owns an Engine and the deployment-wide view
// is the sum of the per-engine counters and gauges. MaxIndexNodes sums too:
// across engines the meaningful high-water mark is total memory, not the
// maximum of any one index.
func (s *Stats) Add(o Stats) {
	s.Updates += o.Updates
	s.AppliedOnly += o.AppliedOnly
	s.Batches += o.Batches
	s.ThresholdTicks += o.ThresholdTicks
	s.BatchPairs += o.BatchPairs
	s.BatchPairSkips += o.BatchPairSkips
	s.PositiveUpdates += o.PositiveUpdates
	s.NegativeUpdates += o.NegativeUpdates
	s.Explorations += o.Explorations
	s.ExploreAll += o.ExploreAll
	s.CheapExplores += o.CheapExplores
	s.Insertions += o.Insertions
	s.Evictions += o.Evictions
	s.StarInsertions += o.StarInsertions
	s.MaxExploreSkips += o.MaxExploreSkips
	s.DegreeSkips += o.DegreeSkips
	s.Events += o.Events
	s.IndexedDense += o.IndexedDense
	s.IndexedStars += o.IndexedStars
	s.IndexNodes += o.IndexNodes
	s.MaxIndexNodes += o.MaxIndexNodes
}

// Engine is a DynDens instance. It is not safe for concurrent use; the update
// stream must be processed sequentially (as in the paper).
type Engine struct {
	cfg Config
	th  *density.Thresholds
	g   *graph.Graph
	ix  *index.Index

	// Rescaled-decay state (see thresholdbatch.go). The engine's graph,
	// index, and threshold schedule may run in normalized weight units w' =
	// w/λ; emitScale holds λ, the factor that converts internal scores and
	// densities back to real (paper-semantics) units at every emission and
	// query point. baseT is the real-unit output threshold fixed at
	// construction: the normalized threshold in force is always baseT/λ.
	// Outside rescaled decay both stay 1 and cfg.T, making every path below
	// a plain multiply-by-one.
	emitScale float64
	baseT     float64

	stats Stats

	// sink receives events as they are discovered. When no sink is installed
	// (SetSink(nil), the default) events are gathered in collector so the
	// slice-returning Process API keeps working.
	sink      EventSink
	collector CollectorSink
	// cur is the destination for the in-flight Process/SetThreshold call:
	// sink if one is installed, otherwise &collector.
	cur EventSink
	// cloneSets records whether cur retains Event.Set beyond Emit (see
	// SetRetainer); only then does emit clone the set out of engine scratch.
	cloneSets bool
	// boundary is sink's UpdateBoundarySink capability, cached at SetSink so
	// the per-update dispatch is a nil check rather than a type assertion.
	boundary UpdateBoundarySink

	// Per-update scratch state (valid during Process only).
	a, b        Vertex
	delta       float64
	seedPairs   bool
	maxIter     int
	maxExplore  int // MaxExplore heuristic cap (Nmax+1 = unlimited)
	maxExploreA int
	maxExploreB int

	// Reusable buffers. Steady-state Process performs no graph/neighbourhood
	// allocations: index snapshots land in affectedBuf/starBuf, subgraph sets
	// are reconstructed and extended in buffers drawn from the setFree list,
	// and neighbourhood merges run in NeighborhoodBufs from nbufFree. The
	// free lists (rather than single buffers) exist because exploration is
	// recursive: each explore frame pops its own buffers and pushes them back
	// when done, so a parent's merge results and candidate set survive the
	// admissions it recurses into. Depth is bounded by Nmax, so each list
	// settles at a handful of entries.
	affectedBuf []*index.Node
	starBuf     []*index.Node
	setFree     [][]Vertex
	nbufFree    []*graph.NeighborhoodBuf
	weightsBuf  []float64     // computeMaxExplore's neighbour-weight scratch
	pairBuf     [2]Vertex     // seed-pair scratch
	scopeBuf    []*index.Node // StarNeedsPositive's star snapshot (outside updates)

	// Per-batch scratch state (valid during ProcessBatch only; see batch.go).
	// All containers are engine-owned and reused across batches, so a
	// steady-state batch — like a steady-state Process — allocates nothing.
	batching    bool
	batchScoped bool                   // scoped delivery: skip provably inert pairs
	batchNet    map[uint64]float64     // canonical pair key → net applied delta
	batchKeys   []uint64               // sorted keys of batchNet (phase order)
	batchDirty  []Vertex               // sorted distinct endpoints of changed pairs
	dirtyInC    []Vertex               // batchDeltaOf's dirty∩C scratch
	batchSeed   func(a, b Vertex) bool // nil = seed every pair
	stageIdx    map[string]int         // staged-event dedup: set key → staged index
	staged      []stagedEvent
}

// getSetBuf pops a vertex-set scratch buffer off the free list.
func (e *Engine) getSetBuf() []Vertex {
	if n := len(e.setFree); n > 0 {
		b := e.setFree[n-1]
		e.setFree = e.setFree[:n-1]
		return b
	}
	return make([]Vertex, 0, 8)
}

// putSetBuf returns a scratch buffer (possibly regrown by its user) to the
// free list.
func (e *Engine) putSetBuf(b []Vertex) { e.setFree = append(e.setFree, b[:0]) }

// getNbuf pops a neighbourhood-merge scratch buffer off the free list.
func (e *Engine) getNbuf() *graph.NeighborhoodBuf {
	if n := len(e.nbufFree); n > 0 {
		b := e.nbufFree[n-1]
		e.nbufFree = e.nbufFree[:n-1]
		return b
	}
	return &graph.NeighborhoodBuf{}
}

// putNbuf returns a neighbourhood buffer to the free list.
func (e *Engine) putNbuf(b *graph.NeighborhoodBuf) { e.nbufFree = append(e.nbufFree, b) }

// New creates a DynDens engine. It validates the configuration (threshold
// schedule, δ_it range, measure monotonicity).
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	th, err := density.NewThresholds(cfg.Measure, cfg.T, cfg.Nmax, cfg.DeltaIt)
	if err != nil {
		return nil, err
	}
	return &Engine{
		cfg:       cfg,
		th:        th,
		g:         graph.New(),
		ix:        index.New(),
		emitScale: 1,
		baseT:     cfg.T,
	}, nil
}

// MustNew is New that panics on error; intended for tests and examples.
// Production callers use New and handle the error: throughout the engine,
// panics are reserved for Must* test helpers and invariant violations that
// mark caller bugs (use after Close, a threshold-batch scale producing an
// unrepresentable threshold) — every recoverable failure is a returned error
// (see the internal/stream package comment for the pipeline-wide contract).
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Config returns the effective configuration (with defaults applied).
func (e *Engine) Config() Config { return e.cfg }

// Thresholds exposes the active threshold schedule.
func (e *Engine) Thresholds() *density.Thresholds { return e.th }

// DecayScale returns the cumulative decay scale λ the engine currently runs
// under: internal scores are normalized units and real score = internal·λ.
// It is 1 unless ProcessThresholdBatch has been used (rescaled decay mode).
func (e *Engine) DecayScale() float64 { return e.emitScale }

// Graph exposes the maintained weighted graph for read-only inspection.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Stats returns a snapshot of the work counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.IndexedDense = e.ix.Len()
	s.IndexedStars = e.ix.StarCount()
	s.IndexNodes = e.ix.NodeCount()
	return s
}

// SetSink installs the destination for output events. With a sink installed
// the engine pushes each Became/CeasedOutputDense change to it the moment it
// is discovered, and Process/SetThreshold return nil event slices. Passing nil
// uninstalls the sink and restores the slice-returning behaviour.
//
// The sink is invoked synchronously on the processing goroutine and must not
// call back into the engine; see EventSink for the full contract. If the sink
// implements UpdateBoundarySink it is additionally told where each update
// ends (once per Process call, no-ops included, and once per SetThreshold).
func (e *Engine) SetSink(s EventSink) {
	e.sink = s
	e.boundary, _ = s.(UpdateBoundarySink)
}

// Sink returns the currently installed sink (nil in slice-returning mode).
func (e *Engine) Sink() EventSink { return e.sink }

// beginEmit readies the event destination for one Process/SetThreshold call.
func (e *Engine) beginEmit() {
	if e.sink != nil {
		e.cur = e.sink
	} else {
		e.collector.Reset()
		e.cur = &e.collector
	}
	e.cloneSets = SinkRetainsSets(e.cur)
}

// finishEmit ends the call, returning the collected events in slice mode and
// nil when a sink is installed.
func (e *Engine) finishEmit() []Event {
	e.cur = nil
	if e.sink != nil {
		e.endUpdate()
		return nil
	}
	return e.collector.Take()
}

// endUpdate tells a boundary-aware sink that the current update is complete.
// The no-op return paths of ProcessRouted call it directly so that every
// Process call — event-producing or not — advances the sink's update
// sequence, keeping it aligned with a sharded merger's sequence numbers.
func (e *Engine) endUpdate() {
	if e.boundary != nil {
		e.boundary.EndUpdate()
	}
}

// Process applies one edge-weight update. In the default slice-returning mode
// it returns the resulting changes to the output-dense subgraph set; with a
// sink installed (SetSink) the changes are pushed to the sink instead and nil
// is returned. Updates with A == B or Delta == 0 are no-ops.
func (e *Engine) Process(u Update) []Event { return e.ProcessRouted(u, true) }

// ProcessRouted is Process for engines embedded as workers of a partitioned
// deployment (internal/shard). seedPairs tells the engine whether it is the
// designated seeder for this update: only the seeder may admit the base pair
// {a, b} as a new dense subgraph, which is the root of every discovery chain
// (exploration and cheap-exploration only ever grow already-indexed
// subgraphs). A worker that receives every update but seeds only the pairs it
// owns therefore applies every weight change — keeping its graph exact — while
// the index/exploration work of discovery partitions across workers by pair
// ownership. ProcessRouted(u, true) is exactly Process(u).
func (e *Engine) ProcessRouted(u Update, seedPairs bool) []Event {
	e.stats.Updates++
	if u.A == u.B || u.Delta == 0 {
		e.endUpdate()
		return nil
	}
	e.seedPairs = seedPairs
	before, after := e.g.Apply(u)
	applied := after - before // Delta clamped if the weight would go negative
	if applied == 0 {
		e.endUpdate()
		return nil
	}
	e.a, e.b, e.delta = u.A, u.B, applied
	e.beginEmit()
	e.ix.BeginUpdate()
	if applied < 0 {
		e.stats.NegativeUpdates++
		e.processNegative()
	} else {
		e.stats.PositiveUpdates++
		e.processPositive()
	}
	if n := e.ix.NodeCount(); n > e.stats.MaxIndexNodes {
		e.stats.MaxIndexNodes = n
	}
	return e.finishEmit()
}

// ApplyOnly applies an update's weight change to the graph replica without
// running any discovery or index maintenance. It is the scoped-delivery
// counterpart of ProcessRouted for updates the engine provably cannot act on:
// when the engine is not the update's designated seeder, neither endpoint has
// a prefix-tree node (Index.HasVertex), and — for positive deltas — no
// ImplicitTooDense family reacts (StarNeedsPositive), ProcessRouted(u, false)
// performs exactly a graph Apply plus scratch work and emits nothing, so
// ApplyOnly(u) leaves the engine in the same state at a fraction of the cost.
// For negative deltas the condition is weaker still: only subgraphs containing
// BOTH endpoints are affected, so one absent endpoint suffices (stars never
// react to negative deltas directly; their bases are repaired as ordinary
// dense nodes).
//
// The equivalence holds because exploration, cheap-exploration, and star
// scans all start from indexed nodes reached through the endpoints' inverted
// lists or the star list, and only the seeder may admit the base pair. The
// one observable difference is bookkeeping: the update counts as AppliedOnly
// instead of Updates, and the index epoch does not advance (epoch annotations
// are per-update scratch, so skipping the tick cannot resurrect stale ones).
func (e *Engine) ApplyOnly(u Update) {
	e.stats.AppliedOnly++
	if u.A != u.B && u.Delta != 0 {
		e.g.Apply(u)
	}
	e.endUpdate()
}

// SetMembershipListener forwards fn to the engine's index (see
// index.SetMembershipListener): fn observes every label-presence transition —
// vertex v gaining its first or losing its last prefix-tree node, with
// index.Star reported like any other label. Sharded workers install their
// interest maps here before processing begins.
func (e *Engine) SetMembershipListener(fn func(v Vertex, present bool)) {
	e.ix.SetMembershipListener(fn)
}

// IndexHasVertex reports whether v currently has at least one prefix-tree
// node — the interest oracle scoped delivery relies on (see ApplyOnly).
func (e *Engine) IndexHasVertex(v Vertex) bool { return e.ix.HasVertex(v) }

// IndexVertices returns the sorted labels currently present in the index
// (including index.Star while any ImplicitTooDense family exists). Intended
// for interest-map validation, not hot paths.
func (e *Engine) IndexVertices() []Vertex { return e.ix.Vertices() }

// StarNeedsPositive reports whether some ImplicitTooDense family on this
// engine must see the positive update {a, b} even though neither endpoint is
// on an indexed path. processStar reacts to such an update only in its
// disconnected-endpoint case, and only by admitting the union: a base C with
// a, b ∉ C acts iff a or b has no edge into C, the union C∪{a, b} fits Nmax,
// is not already indexed, and is dense after the update. The check replays
// that exact condition against this engine's own replica; pendingDelta is
// the update's not-yet-applied weight change (pass the raw delta when called
// before the graph apply, 0 when the graph already reflects it, as in batch
// discovery). It is exact on both sides of the apply: positive deltas never
// clamp, so the post-apply union score is Score(union)+pendingDelta, and the
// disconnection test is apply-invariant because the edge {a, b} never
// contributes to either endpoint's connection to a base excluding both.
// Bases containing an endpoint need no decision here — every base vertex is
// inverted-list subscribed, so endpoint interest already delivers those
// updates. Positive processing only grows the index, so a union indexed at
// decision time is still indexed (a no-op) at processing time; a union
// admitted mid-update by an earlier phase only makes the decision
// over-deliver, never skip. It must be called between updates (it shares
// the engine's scratch free lists), which is where scoped workers make
// their delivery decisions.
func (e *Engine) StarNeedsPositive(a, b Vertex, pendingDelta float64) bool {
	e.scopeBuf = e.ix.AppendStarNodes(e.scopeBuf[:0])
	if len(e.scopeBuf) == 0 {
		return false
	}
	needs := false
	baseBuf := e.getSetBuf()
	unionBuf := e.getSetBuf()
	for _, star := range e.scopeBuf {
		base := star.SetInto(baseBuf)
		baseBuf = base
		if base.Len()+2 > e.th.Nmax || base.Contains(a) || base.Contains(b) {
			continue
		}
		if e.g.ScoreWith(base, a) != 0 && e.g.ScoreWith(base, b) != 0 {
			continue
		}
		union := vset.Add2Into(unionBuf, base, a, b)
		unionBuf = union
		if !e.ix.HasDense(union) && e.th.IsDense(e.g.Score(union)+pendingDelta, union.Len()) {
			needs = true
			break
		}
	}
	e.putSetBuf(unionBuf)
	e.putSetBuf(baseBuf)
	return needs
}

// ProcessAll applies a sequence of updates and returns the total number of
// events that were generated (counted through the engine's event counter, so
// it works identically in sink and slice mode). It is the convenience entry
// point used by benchmarks and bulk loads.
func (e *Engine) ProcessAll(updates []Update) int {
	before := e.stats.Events
	for _, u := range updates {
		e.Process(u)
	}
	return int(e.stats.Events - before)
}

// emit pushes an output event to the current destination. The subgraph set
// usually lives in engine scratch, so it is cloned only when the installed
// sink declares it retains sets (SetRetainer); counting/filter-style sinks
// observe the scratch directly, which is what keeps the steady-state hot path
// allocation-free.
func (e *Engine) emit(kind EventKind, c vset.Set, score float64) {
	if e.batching {
		// Batched updates defer emission: transitions are staged, netted
		// against the pre-batch state, and flushed in canonical order at the
		// batch boundary (see batch.go).
		e.stageBatchEvent(kind, c, score)
		return
	}
	e.stats.Events++
	set := c
	if e.cloneSets {
		set = c.Clone()
	}
	e.cur.Emit(Event{
		Kind:    kind,
		Set:     set,
		Score:   score * e.emitScale,
		Density: e.th.Density(score, c.Len()) * e.emitScale,
	})
}

// minEdgeFloor clamps the minimum outside-edge weight a star-family edge scan
// requires to the representable range: a non-positive bound means any
// positive-weight edge qualifies. Shared by starEdgeScan and
// exploreStarMembers so the two scans cannot drift apart.
func minEdgeFloor(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}

// scoreBefore returns the score subgraph c carried before the change in
// flight: score − δ for a single update (exact for every subgraph on an
// exploration chain, which always contains both endpoints), and score minus
// c's summed per-pair net deltas for a batch. It feeds the too-dense-before
// pruning rules, whose justification — "its dense supergraphs were already
// represented" — is relative to the state before the whole logical tick.
func (e *Engine) scoreBefore(c vset.Set, score float64) float64 {
	if e.batching {
		return score - e.batchDeltaOf(c)
	}
	return score - e.delta
}

// bumpScore adjusts the stored score of a dense node (and its star family, if
// any) by delta and returns the new score.
func (e *Engine) bumpScore(n *index.Node, delta float64) float64 {
	newScore := e.ix.AddScore(n, delta)
	if star := e.ix.StarOf(n); star != nil {
		e.ix.SetScore(star, newScore)
	}
	return newScore
}

// processNegative handles δ < 0 (Algorithm 1, line 2): every dense subgraph
// containing both endpoints has its density decreased; subgraphs that drop
// below the output threshold are reported, and subgraphs that stop being
// dense are evicted from the index.
func (e *Engine) processNegative() {
	a, b := e.a, e.b
	e.affectedBuf = e.ix.AppendDenseContaining(e.affectedBuf[:0], a)
	setBuf := e.getSetBuf()
	for _, node := range e.affectedBuf {
		if !node.Dense() {
			continue // already evicted via pruning cascade
		}
		c := node.SetInto(setBuf)
		setBuf = c
		if !c.Contains(b) {
			continue
		}
		n := c.Len()
		wasOutput := e.th.IsOutputDense(node.Score(), n)
		newScore := e.bumpScore(node, e.delta)
		if wasOutput && !e.th.IsOutputDense(newScore, n) {
			e.emit(CeasedOutputDense, c, newScore)
		}
		if e.ix.HasStar(node) && !e.th.IsTooDense(newScore, n) {
			e.ix.RemoveStar(node)
		}
		if !e.th.IsDense(newScore, n) {
			e.ix.EvictDense(node)
			e.stats.Evictions++
		}
	}
	e.putSetBuf(setBuf)
}

// processPositive handles δ > 0 (Algorithm 1, lines 4–11).
func (e *Engine) processPositive() {
	a, b := e.a, e.b
	e.maxIter = e.th.Iterations(e.delta)
	e.computeMaxExplore()

	// Snapshot the dense subgraphs containing a or b before any insertions so
	// that each pre-existing dense subgraph is examined exactly once. The
	// snapshot slices are engine-owned and reused across updates.
	e.affectedBuf = e.ix.AppendDenseContainingEither(e.affectedBuf[:0], a, b)
	e.starBuf = e.ix.AppendStarNodes(e.starBuf[:0])

	// Base case: the edge {a, b} itself may have become dense. In a routed
	// deployment only the designated seeder runs this step, so each pair —
	// and every discovery chain rooted at it — has exactly one owner.
	if e.seedPairs {
		e.pairBuf[0], e.pairBuf[1] = a, b
		if a > b {
			e.pairBuf[0], e.pairBuf[1] = b, a
		}
		pair := vset.Set(e.pairBuf[:])
		if e.ix.LookupDense(pair) == nil {
			if w := e.g.Weight(a, b); e.th.IsDense(w, 2) {
				e.admit(pair, w, 1)
			}
		}
	}

	setBuf := e.getSetBuf()
	for _, node := range e.affectedBuf {
		if !node.Dense() {
			continue
		}
		c := node.SetInto(setBuf)
		setBuf = c
		hasA, hasB := c.Contains(a), c.Contains(b)
		if hasA && hasB {
			// Stable-dense: its score grows by δ (Algorithm 1, line 10–11).
			n := c.Len()
			wasOutput := e.th.IsOutputDense(node.Score(), n)
			newScore := e.bumpScore(node, e.delta)
			if !wasOutput && e.th.IsOutputDense(newScore, n) {
				e.emit(BecameOutputDense, c, newScore)
			}
			if e.maintainStar(node, newScore, n) {
				e.starEdgeScan(c, newScore, func(c2 vset.Set, s2 float64) { e.admit(c2, s2, 2) })
			}
			e.explore(c, newScore, 1)
		} else {
			// Contains exactly one endpoint: cheap-explore (lines 6–8).
			e.cheapExplore(c, node.Score(), hasA)
		}
	}
	e.putSetBuf(setBuf)

	// ImplicitTooDense families (Section 3.2.3): the inverted list of '*' is
	// examined as part of every positive update.
	for _, star := range e.starBuf {
		e.processStar(star)
	}
}

// cheapExplore attempts to augment a dense subgraph containing exactly one of
// the updated endpoints with the other endpoint (and thus with the updated
// edge). c must not contain both endpoints; hasA tells which one it contains.
func (e *Engine) cheapExplore(c vset.Set, score float64, hasA bool) {
	a, b := e.a, e.b
	missing := b
	present := a
	if !hasA {
		missing, present = a, b
	}
	if !e.shouldCheapExplore(c, present) {
		return
	}
	// c contains exactly one endpoint, so missing ∉ c and |C ∪ {missing}| is
	// |C|+1; the cardinality gate needs no materialised union.
	if c.Len()+1 > e.th.Nmax {
		return
	}
	e.stats.CheapExplores++
	if e.cfg.EnableDegreePrioritize {
		// Section 7.2: skip the cheap-exploration when the added endpoint has a
		// generalised degree (after the update) exceeding 2/(|C|−1)·score⁻(C).
		if e.g.ScoreWith(c, missing) > 2.0/float64(c.Len()-1)*score {
			e.stats.DegreeSkips++
			return
		}
	}
	buf := e.getSetBuf()
	union := vset.AddInto(buf, c, missing)
	if !e.ix.HasDense(union) {
		uScore := score + e.g.ScoreWith(c, missing)
		if e.th.IsDense(uScore, union.Len()) {
			e.admit(union, uScore, 2)
		}
	}
	e.putSetBuf(union)
}

// shouldCheapExplore implements the cheap-exploration pruning rules: the
// MaxExplore restriction of Section 7.1 and, when ImplicitTooDense is
// disabled, the footnote-5 rule that too-dense subgraphs need not be
// cheap-explored because all their supergraphs are already (explicitly)
// indexed. With ImplicitTooDense enabled the supergraph obtained by adding
// the updated endpoint may only be implicitly represented, so the
// cheap-exploration must still run to promote it to an explicit entry.
func (e *Engine) shouldCheapExplore(c vset.Set, present Vertex) bool {
	if e.cfg.DisableImplicitTooDense && e.th.IsTooDense(e.g.Score(c), c.Len()) {
		return false
	}
	if !e.cfg.EnableMaxExplore {
		return true
	}
	// Section 7.1: if maxExplore_a ≥ maxExplore_b, cheap-explore all subgraphs
	// containing only b, and subgraphs of cardinality ≤ maxExplore_a−1
	// containing only a (and symmetrically).
	limitA, limitB := e.maxExploreA, e.maxExploreB
	if limitA >= limitB {
		if present == e.a && c.Len() > limitA-1 {
			e.stats.MaxExploreSkips++
			return false
		}
	} else {
		if present == e.b && c.Len() > limitB-1 {
			e.stats.MaxExploreSkips++
			return false
		}
	}
	return true
}

// maintainStar keeps the invariant that every explicitly indexed dense
// subgraph that is too-dense carries an ImplicitTooDense family (unless the
// optimisation is disabled). It reports whether it created the family: the
// caller then owes the newly implicit members a discovery pass (starEdgeScan)
// — exploreStarMembers only covers families that already existed when the
// update began.
func (e *Engine) maintainStar(node *index.Node, score float64, n int) bool {
	if e.cfg.DisableImplicitTooDense {
		return false
	}
	if n < e.th.Nmax && e.th.IsTooDense(score, n) && !e.ix.HasStar(node) {
		e.ix.InsertStar(node)
		e.stats.StarInsertions++
		return true
	}
	return false
}

// starEdgeScan runs the discovery owed when base's ImplicitTooDense family is
// first created: the members base∪{u} are only implicit, so an edge {u, v}
// between two outside vertices can make base∪{u, v} dense with no explicit
// subgraph to grow it from. Following Section 3.2.3, the base is augmented
// with whole edges of sufficient weight; each admission is dispatched through
// admit so it is reported, starred, and explored like any other discovery
// (admit is e.admit during updates and thresholdAdmit during threshold
// decreases, which differ in iteration bookkeeping).
func (e *Engine) starEdgeScan(base vset.Set, score float64, admit func(c vset.Set, score float64)) {
	n := base.Len()
	if n+2 > e.th.Nmax {
		return
	}
	minEdge := minEdgeFloor(e.th.MinDenseScore(n+2) - score)
	buf := e.getSetBuf()
	e.g.EdgesNotIncident(base, func(u, v Vertex, w float64) {
		if w < minEdge {
			return
		}
		cand := vset.Add2Into(buf, base, u, v)
		buf = cand
		if cand.Len() != n+2 || e.ix.HasDense(cand) {
			return
		}
		s := e.g.Score(cand)
		if e.th.IsDense(s, n+2) {
			admit(cand, s)
		}
	})
	e.putSetBuf(buf)
}

// admit inserts a subgraph discovered to be dense during the current update,
// reports it if it is output-dense, and explores around it. iter is the
// exploration iteration at which it was identified (Algorithm 2).
func (e *Engine) admit(c vset.Set, score float64, iter int) {
	node := e.ix.InsertDense(c, score)
	e.ix.Annotate(node, iter)
	e.stats.Insertions++
	n := c.Len()
	if e.th.IsOutputDense(score, n) {
		e.emit(BecameOutputDense, c, score)
	}
	if e.maintainStar(node, score, n) {
		e.starEdgeScan(c, score, func(c2 vset.Set, s2 float64) { e.admit(c2, s2, iter+1) })
	}
	e.explore(c, score, iter)
}

// processStar handles one ImplicitTooDense family during a positive update.
// The family of a too-dense base C stands for every C∪{y} with y disconnected
// from C. Three cases matter (see DESIGN.md):
//
//   - a, b ∈ C: the base's score (and hence every member's score) grew; the
//     base itself was handled as a stable-dense subgraph. Members may now be
//     able to absorb an edge that is not incident on C (the paper's
//     "explore C∪{*}" case); exploreStarMembers covers it.
//   - exactly one of a, b ∈ C: the union C∪{a,b} equals the base's own
//     cheap-exploration result and is handled there.
//   - a, b ∉ C: if a (or b) is disconnected from C, the member C∪{a} (C∪{b})
//     is an implicitly represented dense subgraph containing exactly one
//     endpoint; cheap-exploring it yields C∪{a,b}.
func (e *Engine) processStar(star *index.Node) {
	baseBuf := e.getSetBuf()
	base := star.SetInto(baseBuf)
	defer e.putSetBuf(base)
	nBase := base.Len()
	a, b := e.a, e.b
	hasA, hasB := base.Contains(a), base.Contains(b)
	switch {
	case hasA && hasB:
		e.exploreStarMembers(star, base, nBase)
	case hasA || hasB:
		// Covered by the cheap-exploration of the (explicit) base.
	default:
		if nBase+2 > e.th.Nmax {
			return
		}
		aDisc := e.g.ScoreWith(base, a) == 0
		bDisc := e.g.ScoreWith(base, b) == 0
		if !aDisc && !bDisc {
			return
		}
		unionBuf := e.getSetBuf()
		union := vset.Add2Into(unionBuf, base, a, b)
		if !e.ix.HasDense(union) {
			e.stats.CheapExplores++
			score := e.g.Score(union)
			if e.th.IsDense(score, union.Len()) {
				e.admit(union, score, 2)
			}
		}
		e.putSetBuf(union)
	}
}

// exploreStarMembers handles the rare case in which implicitly represented
// members C∪{y} of a too-dense base C (with both updated endpoints inside C)
// could spawn newly-dense subgraphs C∪{y,z} through an edge {y,z} that is not
// incident on C. Following Section 3.2.3, the base is augmented with whole
// edges of sufficient weight instead of enumerating every member.
func (e *Engine) exploreStarMembers(star *index.Node, base vset.Set, nBase int) {
	if nBase+2 > e.th.Nmax || e.maxIter < 1 {
		return
	}
	scoreAfter := star.Score()
	// If members were already too-dense before the update their dense
	// supergraphs were already representable; nothing new can appear.
	if e.th.IsTooDense(e.scoreBefore(base, scoreAfter), nBase+1) {
		return
	}
	minEdge := minEdgeFloor(e.th.MinDenseScore(nBase+2) - scoreAfter)
	buf := e.getSetBuf()
	e.g.EdgesNotIncident(base, func(u, v Vertex, w float64) {
		if w < minEdge {
			return
		}
		cand := vset.Add2Into(buf, base, u, v)
		buf = cand
		if cand.Len() != nBase+2 || e.ix.HasDense(cand) {
			return
		}
		score := e.g.Score(cand)
		if e.th.IsDense(score, cand.Len()) {
			e.admit(cand, score, 2)
		}
	})
	e.putSetBuf(buf)
}

// explore implements Algorithm 2: try to augment a dense subgraph containing
// both updated endpoints with one more vertex, recursing on newly-dense
// results for up to ceil(δ/δ_it) iterations.
func (e *Engine) explore(c vset.Set, score float64, iter int) {
	n := c.Len()
	if n >= e.th.Nmax {
		return
	}
	// A subgraph that was too-dense before the update need not be explored:
	// its dense supergraphs were stable-dense and are already represented.
	if e.th.IsTooDense(e.scoreBefore(c, score), n) {
		return
	}
	if iter > e.maxIter {
		return
	}
	if e.cfg.EnableMaxExplore {
		if e.maxExplore <= 3 || n >= e.maxExplore {
			e.stats.MaxExploreSkips++
			return
		}
	}
	if e.th.IsTooDense(score, n) && e.cfg.DisableImplicitTooDense {
		// Explore-All (Algorithm 2, line 3): every other vertex yields a dense
		// supergraph, all of which must be inserted explicitly.
		e.stats.ExploreAll++
		for _, y := range e.g.Vertices() {
			if c.Contains(y) {
				continue
			}
			child := c.Add(y)
			if e.ix.HasDense(child) {
				continue
			}
			e.admit(child, score+e.g.ScoreWith(c, y), iter+1)
		}
		return
	}
	e.stats.Explorations++
	degreeCap := 0.0
	if e.cfg.EnableDegreePrioritize && n > 1 {
		degreeCap = 2.0 / float64(n-1) * score
	}
	// The neighbourhood merge and the candidate set work in buffers popped
	// off the engine free lists: admissions recurse back into explore, and
	// that deeper frame pops its own buffers, so ys/adds and child stay
	// intact underneath it.
	nbuf := e.getNbuf()
	ys, adds := e.g.NeighborhoodScores(c, nbuf)
	childBuf := e.getSetBuf()
	for i, y := range ys {
		add := adds[i]
		childScore := score + add
		if !e.th.IsDense(childScore, n+1) {
			continue
		}
		if degreeCap > 0 && add > degreeCap {
			// Section 7.2: a vertex this strongly connected to C will be (or has
			// been) reached by exploring around the subgraph obtained by dropping
			// C's minimum-degree vertex instead.
			e.stats.DegreeSkips++
			continue
		}
		child := vset.AddInto(childBuf, c, y)
		childBuf = child
		if e.ix.HasDense(child) {
			// Stable-dense supergraphs are examined through the index snapshot;
			// subgraphs admitted earlier in this update carry an iteration
			// annotation and need not be examined again (Section 3.2.2).
			continue
		}
		e.admit(child, childScore, iter+1)
	}
	e.putSetBuf(childBuf)
	e.putNbuf(nbuf)
}
