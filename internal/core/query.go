package core

import (
	"sort"

	"dyndens/internal/vset"
)

// OutputDense returns the explicitly indexed subgraphs whose density is at
// least the output threshold T, sorted by decreasing density (ties broken by
// vertex set). This matches the accounting used in the paper's evaluation,
// which excludes subgraphs that are only implicitly represented through
// ImplicitTooDense families.
func (e *Engine) OutputDense() []Subgraph {
	var out []Subgraph
	for _, n := range e.ix.DenseNodes() {
		card := n.Card()
		if e.th.IsOutputDense(n.Score(), card) {
			out = append(out, Subgraph{
				Set:     n.Set(),
				Score:   n.Score() * e.emitScale,
				Density: e.th.Density(n.Score(), card) * e.emitScale,
			})
		}
	}
	sortSubgraphs(out)
	return out
}

// OutputDenseKeys returns the canonical set keys (vset.Set.Key) of the
// explicitly indexed output-dense subgraphs, sorted lexicographically. It is
// the cheap comparison form used by oracle cross-validation tests and by
// consumers that maintain the result set incrementally from sink events.
func (e *Engine) OutputDenseKeys() []string {
	var keys []string
	for _, n := range e.ix.DenseNodes() {
		if e.th.IsOutputDense(n.Score(), n.Card()) {
			keys = append(keys, n.Set().Key())
		}
	}
	sort.Strings(keys)
	return keys
}

// OutputDenseCount returns the number of explicitly indexed output-dense
// subgraphs without materialising them.
func (e *Engine) OutputDenseCount() int {
	count := 0
	for _, n := range e.ix.DenseNodes() {
		if e.th.IsOutputDense(n.Score(), n.Card()) {
			count++
		}
	}
	return count
}

// Dense returns every explicitly indexed dense subgraph (density ≥ T_{|C|}),
// sorted by decreasing density.
func (e *Engine) Dense() []Subgraph {
	nodes := e.ix.DenseNodes()
	out := make([]Subgraph, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, Subgraph{
			Set:     n.Set(),
			Score:   n.Score() * e.emitScale,
			Density: e.th.Density(n.Score(), n.Card()) * e.emitScale,
		})
	}
	sortSubgraphs(out)
	return out
}

// DenseCount returns the number of explicitly indexed dense subgraphs.
func (e *Engine) DenseCount() int { return e.ix.Len() }

// ImplicitFamilyCount returns the number of ImplicitTooDense families.
func (e *Engine) ImplicitFamilyCount() int { return e.ix.StarCount() }

// OutputDenseExpanded returns the output-dense subgraphs including the
// members of ImplicitTooDense families, de-duplicated against explicit
// entries. It is intended for ground-truth comparisons and small graphs; the
// expansion enumerates every mutually-disconnected extension of each family
// base, which is exponential in the number of disconnected vertices.
func (e *Engine) OutputDenseExpanded() []Subgraph {
	return e.expanded(e.OutputDense(), e.th.IsOutputDense)
}

// DenseExpanded is Dense including ImplicitTooDense family members; see
// OutputDenseExpanded for the caveats.
func (e *Engine) DenseExpanded() []Subgraph {
	return e.expanded(e.Dense(), e.th.IsDense)
}

// expanded combines the given explicit subgraphs with every ImplicitTooDense
// family member passing the include predicate. A family with base C and score
// s stands for C ∪ Y for every non-empty set Y of vertices that are
// disconnected from C and from each other: adding such Y leaves the score at
// s, so C ∪ Y is dense exactly while s clears the larger cardinality's
// threshold (extensions with internal edges change the score and are indexed
// explicitly — that is what starEdgeScan and processStar guarantee).
func (e *Engine) expanded(explicit []Subgraph, include func(score float64, n int) bool) []Subgraph {
	seen := make(map[string]bool)
	var out []Subgraph
	add := func(s Subgraph) {
		k := s.Set.Key()
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, s)
	}
	for _, s := range explicit {
		add(s)
	}
	vertices := e.g.KnownVertices()
	for _, star := range e.ix.StarNodes() {
		base := star.Set()
		score := star.Score()
		// Candidates disconnected from the base, in ascending order so each
		// extension set is enumerated once.
		var disc []vset.Vertex
		for _, y := range vertices {
			if base.Contains(y) || e.g.ScoreWith(base, y) > 0 {
				continue
			}
			disc = append(disc, y)
		}
		var added []vset.Vertex // the extension set Y built so far
		var rec func(cur vset.Set, start int)
		rec = func(cur vset.Set, start int) {
			if cur.Len() >= e.th.Nmax {
				return
			}
			for i := start; i < len(disc); i++ {
				y := disc[i]
				mutual := true
				for _, v := range added {
					if e.g.Weight(v, y) != 0 {
						mutual = false
						break
					}
				}
				if !mutual {
					continue
				}
				ext := cur.Add(y)
				if include(score, ext.Len()) {
					add(Subgraph{
						Set:     ext,
						Score:   score * e.emitScale,
						Density: e.th.Density(score, ext.Len()) * e.emitScale,
					})
				}
				added = append(added, y)
				rec(ext, i+1)
				added = added[:len(added)-1]
			}
		}
		rec(base, 0)
	}
	sortSubgraphs(out)
	return out
}

// Contains reports whether the given vertex set is currently maintained as an
// explicitly indexed dense subgraph.
func (e *Engine) Contains(c vset.Set) bool { return e.ix.HasDense(c) }

// ValidateIndex checks the internal consistency of the dense-subgraph index
// and, additionally, that every stored score matches the graph. It returns
// "" when consistent; it is intended for tests and debugging.
func (e *Engine) ValidateIndex() string {
	if msg := e.ix.Validate(); msg != "" {
		return msg
	}
	for _, n := range e.ix.DenseNodes() {
		c := n.Set()
		want := e.g.Score(c)
		if diff := n.Score() - want; diff > 1e-6 || diff < -1e-6 {
			return "stored score drift for " + c.String()
		}
		if !e.th.IsDense(n.Score(), c.Len()) {
			return "indexed subgraph is not dense: " + c.String()
		}
	}
	return ""
}

func sortSubgraphs(s []Subgraph) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Density != s[j].Density {
			return s[i].Density > s[j].Density
		}
		if s[i].Set.Len() != s[j].Set.Len() {
			return s[i].Set.Len() < s[j].Set.Len()
		}
		return s[i].Set.Key() < s[j].Set.Key()
	})
}
