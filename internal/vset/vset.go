// Package vset provides small, sorted, immutable vertex sets and the set
// algebra the DynDens index and exploration procedures need.
//
// Vertex identifiers are int32 (the paper denotes vertices by natural
// numbers). Sets are stored as strictly increasing slices, which makes the
// canonical prefix-tree path of a set simply the sequence of its elements,
// and gives O(n) membership checks and merges on the tiny sets (|C| ≤ Nmax)
// DynDens manipulates.
package vset

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Vertex identifies a node of the entity graph.
type Vertex = int32

// Set is a sorted, duplicate-free collection of vertices. The zero value is
// the empty set. Sets are treated as immutable: mutating operations return a
// new Set and never alias the receiver's backing array in a way that could be
// observed by the caller.
type Set []Vertex

// New builds a Set from the given vertices, sorting and de-duplicating them.
func New(vs ...Vertex) Set {
	if len(vs) == 0 {
		return nil
	}
	out := make(Set, len(vs))
	copy(out, vs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// De-duplicate in place.
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// FromSorted wraps a slice that is already strictly increasing. It panics if
// the invariant does not hold; use it only on slices you control.
func FromSorted(vs []Vertex) Set {
	for i := 1; i < len(vs); i++ {
		if vs[i-1] >= vs[i] {
			panic(fmt.Sprintf("vset.FromSorted: input not strictly increasing at %d: %v", i, vs))
		}
	}
	return Set(vs)
}

// Len reports the cardinality of the set.
func (s Set) Len() int { return len(s) }

// Empty reports whether the set has no elements.
func (s Set) Empty() bool { return len(s) == 0 }

// linearScanMax is the set size below which membership and insertion-point
// queries scan linearly instead of binary-searching: on the tiny sets DynDens
// manipulates (|C| ≤ Nmax) a predictable scan beats the search's data-
// dependent branches.
const linearScanMax = 8

// Search returns the smallest index i with s[i] >= v (len(s) if none) — the
// lower bound of v in the sorted slice s. Small slices are scanned linearly;
// larger ones use a branch-free halving search (the conditional advance
// compiles to a CMOV, so the loop has no data-dependent branches), avoiding
// sort.Search's closure indirection. It is the shared sorted-[]Vertex lookup
// primitive: sets here use it for membership and insertion points, and the
// graph's sorted neighbourhood vectors use it for point updates.
func Search(s []Vertex, v Vertex) int {
	n := len(s)
	if n <= linearScanMax {
		for i, x := range s {
			if x >= v {
				return i
			}
		}
		return n
	}
	lo := 0
	for n > 1 {
		half := n >> 1
		if s[lo+half-1] < v {
			lo += half
		}
		n -= half
	}
	if s[lo] < v {
		lo++
	}
	return lo
}

// Contains reports whether v is an element of s.
func (s Set) Contains(v Vertex) bool {
	i := Search(s, v)
	return i < len(s) && s[i] == v
}

// Max returns the largest element. It panics on the empty set.
func (s Set) Max() Vertex {
	if len(s) == 0 {
		panic("vset: Max of empty set")
	}
	return s[len(s)-1]
}

// Min returns the smallest element. It panics on the empty set.
func (s Set) Min() Vertex {
	if len(s) == 0 {
		panic("vset: Min of empty set")
	}
	return s[0]
}

// Equal reports whether s and t contain exactly the same vertices.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of s with its own backing array.
func (s Set) Clone() Set {
	if len(s) == 0 {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Add returns s ∪ {v}. If v is already present the receiver is returned
// unchanged (it is safe to use the result without copying).
func (s Set) Add(v Vertex) Set {
	i := Search(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	out := make(Set, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, v)
	out = append(out, s[i:]...)
	return out
}

// AddInto writes s ∪ {v} into dst, reusing dst's capacity, and returns the
// result (which aliases dst's backing array unless it had to grow). It is the
// scratch-buffer form of Add used by the engine's exploration hot path: a
// caller that owns dst can build candidate sets without allocating. dst must
// not alias s.
func AddInto(dst []Vertex, s Set, v Vertex) Set {
	dst = append(dst[:0], s...)
	return insertInto(dst, v)
}

// Add2Into writes s ∪ {u, v} into dst, reusing dst's capacity, and returns
// the result. It is the scratch-buffer form of s.Add(u).Add(v), used when the
// engine augments a base subgraph with a whole edge. dst must not alias s.
func Add2Into(dst []Vertex, s Set, u, v Vertex) Set {
	dst = append(dst[:0], s...)
	return insertInto(insertInto(dst, u), v)
}

// insertInto inserts v into the sorted slice s in place (growing via append
// only when capacity is exhausted); duplicates are left untouched.
func insertInto(s []Vertex, v Vertex) Set {
	i := Search(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Remove returns s \ {v}. If v is not present the receiver is returned.
func (s Set) Remove(v Vertex) Set {
	i := Search(s, v)
	if i >= len(s) || s[i] != v {
		return s
	}
	out := make(Set, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Diff returns s \ t.
func (s Set) Diff(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) {
		switch {
		case j >= len(t) || s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

// ContainsAll reports whether every element of t is also in s.
func (s Set) ContainsAll(t Set) bool {
	i, j := 0, 0
	for j < len(t) {
		if i >= len(s) {
			return false
		}
		switch {
		case s[i] < t[j]:
			i++
		case s[i] == t[j]:
			i++
			j++
		default:
			return false
		}
	}
	return true
}

// Key returns a canonical string key for the set, suitable for use as a map
// key in ground-truth enumerations and tests.
func (s Set) Key() string {
	if len(s) == 0 {
		return ""
	}
	var b strings.Builder
	for i, v := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(v), 10))
	}
	return b.String()
}

// String implements fmt.Stringer.
func (s Set) String() string { return "{" + s.Key() + "}" }
