package vset

import (
	"math/rand"
	"sort"
	"testing"
)

// TestSearchMatchesSortSearch cross-checks the hand-rolled search (linear
// under linearScanMax, branch-free halving above) against sort.Search over
// random sorted slices of every size around the regime switch.
func TestSearchMatchesSortSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for size := 0; size <= 40; size++ {
		for trial := 0; trial < 50; trial++ {
			s := make([]Vertex, 0, size)
			seen := map[Vertex]bool{}
			for len(s) < size {
				v := Vertex(rng.Intn(4 * (size + 1)))
				if !seen[v] {
					seen[v] = true
					s = append(s, v)
				}
			}
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			for probe := Vertex(-1); probe <= Vertex(4*(size+1)); probe++ {
				want := sort.Search(len(s), func(i int) bool { return s[i] >= probe })
				if got := Search(s, probe); got != want {
					t.Fatalf("size %d: Search(%v, %d) = %d, want %d", size, s, probe, got, want)
				}
			}
		}
	}
}

func TestAddInto(t *testing.T) {
	s := New(2, 5, 9)
	buf := make([]Vertex, 0, 8)

	got := AddInto(buf, s, 7)
	if !got.Equal(New(2, 5, 7, 9)) {
		t.Fatalf("AddInto insert = %v", got)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("AddInto did not reuse the buffer")
	}
	// Duplicate: result equals s but is still a copy in buf.
	got = AddInto(buf, s, 5)
	if !got.Equal(s) {
		t.Fatalf("AddInto dup = %v", got)
	}
	// Prepend and append positions.
	if got := AddInto(buf, s, 1); !got.Equal(New(1, 2, 5, 9)) {
		t.Fatalf("AddInto front = %v", got)
	}
	if got := AddInto(buf, s, 11); !got.Equal(New(2, 5, 9, 11)) {
		t.Fatalf("AddInto back = %v", got)
	}
	// Empty source.
	if got := AddInto(buf, nil, 3); !got.Equal(New(3)) {
		t.Fatalf("AddInto empty = %v", got)
	}
	// Source must be untouched throughout.
	if !s.Equal(New(2, 5, 9)) {
		t.Fatalf("source mutated: %v", s)
	}
}

func TestAdd2Into(t *testing.T) {
	s := New(3, 6)
	buf := make([]Vertex, 0, 8)
	cases := []struct {
		u, v Vertex
		want Set
	}{
		{1, 9, New(1, 3, 6, 9)},
		{9, 1, New(1, 3, 6, 9)},
		{4, 5, New(3, 4, 5, 6)},
		{3, 6, New(3, 6)},    // both already present
		{3, 7, New(3, 6, 7)}, // one present
		{7, 7, New(3, 6, 7)}, // duplicate pair
	}
	for _, tc := range cases {
		if got := Add2Into(buf, s, tc.u, tc.v); !got.Equal(tc.want) {
			t.Fatalf("Add2Into(%d, %d) = %v, want %v", tc.u, tc.v, got, tc.want)
		}
	}
	if !s.Equal(New(3, 6)) {
		t.Fatalf("source mutated: %v", s)
	}
}

// TestAddIntoAllocFree verifies the zero-allocation contract the exploration
// hot path depends on: with sufficient buffer capacity, AddInto/Add2Into must
// not allocate.
func TestAddIntoAllocFree(t *testing.T) {
	s := New(1, 4, 8, 12)
	buf := make([]Vertex, 0, 8)
	if allocs := testing.AllocsPerRun(200, func() {
		out := AddInto(buf, s, 6)
		buf = out[:0]
	}); allocs != 0 {
		t.Fatalf("AddInto allocated %v times with warm buffer", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		out := Add2Into(buf, s, 6, 20)
		buf = out[:0]
	}); allocs != 0 {
		t.Fatalf("Add2Into allocated %v times with warm buffer", allocs)
	}
}
