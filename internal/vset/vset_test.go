package vset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedups(t *testing.T) {
	s := New(5, 3, 5, 1, 3)
	want := Set{1, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("New(5,3,5,1,3) = %v, want %v", s, want)
	}
}

func TestNewEmpty(t *testing.T) {
	s := New()
	if !s.Empty() || s.Len() != 0 {
		t.Fatalf("New() should be empty, got %v", s)
	}
}

func TestFromSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSorted on unsorted input did not panic")
		}
	}()
	FromSorted([]Vertex{3, 1})
}

func TestContains(t *testing.T) {
	s := New(2, 4, 9)
	for _, v := range []Vertex{2, 4, 9} {
		if !s.Contains(v) {
			t.Errorf("Contains(%d) = false, want true", v)
		}
	}
	for _, v := range []Vertex{1, 3, 5, 10} {
		if s.Contains(v) {
			t.Errorf("Contains(%d) = true, want false", v)
		}
	}
}

func TestAddRemove(t *testing.T) {
	s := New(1, 3)
	s2 := s.Add(2)
	if !s2.Equal(New(1, 2, 3)) {
		t.Fatalf("Add(2) = %v", s2)
	}
	if !s.Equal(New(1, 3)) {
		t.Fatalf("Add mutated receiver: %v", s)
	}
	s3 := s2.Remove(1)
	if !s3.Equal(New(2, 3)) {
		t.Fatalf("Remove(1) = %v", s3)
	}
	if got := s2.Add(2); !got.Equal(s2) {
		t.Fatalf("Add of existing element changed set: %v", got)
	}
	if got := s2.Remove(99); !got.Equal(s2) {
		t.Fatalf("Remove of absent element changed set: %v", got)
	}
}

func TestMinMax(t *testing.T) {
	s := New(7, 2, 9)
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %d/%d, want 2/9", s.Min(), s.Max())
	}
}

func TestMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max of empty set did not panic")
		}
	}()
	New().Max()
}

func TestUnionIntersectDiff(t *testing.T) {
	a := New(1, 2, 3, 5)
	b := New(2, 4, 5, 6)
	if got := a.Union(b); !got.Equal(New(1, 2, 3, 4, 5, 6)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(New(2, 5)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); !got.Equal(New(1, 3)) {
		t.Errorf("Diff = %v", got)
	}
	if got := b.Diff(a); !got.Equal(New(4, 6)) {
		t.Errorf("Diff reversed = %v", got)
	}
}

func TestContainsAll(t *testing.T) {
	a := New(1, 2, 3, 5)
	if !a.ContainsAll(New(2, 5)) {
		t.Error("ContainsAll({2,5}) = false")
	}
	if a.ContainsAll(New(2, 4)) {
		t.Error("ContainsAll({2,4}) = true")
	}
	if !a.ContainsAll(New()) {
		t.Error("ContainsAll(empty) = false")
	}
}

func TestKeyAndString(t *testing.T) {
	s := New(3, 1, 2)
	if s.Key() != "1,2,3" {
		t.Errorf("Key = %q", s.Key())
	}
	if s.String() != "{1,2,3}" {
		t.Errorf("String = %q", s.String())
	}
	if New().Key() != "" {
		t.Errorf("empty Key = %q", New().Key())
	}
}

// Property: New always produces a strictly increasing slice that contains
// exactly the distinct input values.
func TestNewProperties(t *testing.T) {
	f := func(vs []int32) bool {
		s := New(vs...)
		for i := 1; i < len(s); i++ {
			if s[i-1] >= s[i] {
				return false
			}
		}
		seen := map[int32]bool{}
		for _, v := range vs {
			seen[v] = true
		}
		if len(seen) != s.Len() {
			return false
		}
		for _, v := range vs {
			if !s.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: union/intersection/difference agree with a map-based model.
func TestSetAlgebraProperties(t *testing.T) {
	f := func(xs, ys []int32) bool {
		a, b := New(xs...), New(ys...)
		model := func(pred func(v int32) bool) Set {
			var all []int32
			all = append(all, xs...)
			all = append(all, ys...)
			seen := map[int32]bool{}
			var out []int32
			for _, v := range all {
				if !seen[v] && pred(v) {
					seen[v] = true
					out = append(out, v)
				}
			}
			return New(out...)
		}
		union := model(func(v int32) bool { return a.Contains(v) || b.Contains(v) })
		inter := model(func(v int32) bool { return a.Contains(v) && b.Contains(v) })
		diff := model(func(v int32) bool { return a.Contains(v) && !b.Contains(v) })
		return a.Union(b).Equal(union) && a.Intersect(b).Equal(inter) && a.Diff(b).Equal(diff)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add then Remove round-trips for vertices not already present.
func TestAddRemoveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := rng.Intn(10)
		vs := make([]Vertex, n)
		for j := range vs {
			vs[j] = Vertex(rng.Intn(50))
		}
		s := New(vs...)
		v := Vertex(rng.Intn(50))
		if s.Contains(v) {
			continue
		}
		if got := s.Add(v).Remove(v); !got.Equal(s) {
			t.Fatalf("Add(%d).Remove(%d) = %v, want %v", v, v, got, s)
		}
	}
}

func TestUnionIsSorted(t *testing.T) {
	f := func(xs, ys []int32) bool {
		u := New(xs...).Union(New(ys...))
		return sort.SliceIsSorted(u, func(i, j int) bool { return u[i] < u[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
