package vset

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the set primitives on the engine's hot path. Sizes
// bracket the regimes of the hand-rolled search: tiny sets (linear scan,
// |C| ≤ Nmax as in exploration) and larger ones (branch-free binary search,
// as in watchlists or test harnesses).

func benchSet(n int) Set {
	vs := make([]Vertex, n)
	for i := range vs {
		vs[i] = Vertex(2 * i) // even values so misses probe the gaps
	}
	return FromSorted(vs)
}

func BenchmarkContains(b *testing.B) {
	for _, n := range []int{4, 8, 64, 1024} {
		s := benchSet(n)
		b.Run(sizeName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			probes := make([]Vertex, 1024)
			for i := range probes {
				probes[i] = Vertex(rng.Intn(2 * n)) // ~50% hits
			}
			b.ResetTimer()
			var hits int
			for i := 0; i < b.N; i++ {
				if s.Contains(probes[i&1023]) {
					hits++
				}
			}
			sinkInt = hits
		})
	}
}

func BenchmarkAdd(b *testing.B) {
	for _, n := range []int{4, 8, 64} {
		s := benchSet(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkSet = s.Add(Vertex(2*n/2 + 1)) // always a miss → insert
			}
		})
	}
}

func BenchmarkAddInto(b *testing.B) {
	for _, n := range []int{4, 8, 64} {
		s := benchSet(n)
		buf := make([]Vertex, 0, n+1)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := AddInto(buf, s, Vertex(n+1))
				buf = out[:0]
			}
		})
	}
}

func BenchmarkUnion(b *testing.B) {
	for _, n := range []int{4, 64, 1024} {
		s := benchSet(n)
		t := make(Set, n)
		for i := range t {
			t[i] = Vertex(2*i + 1) // interleaves with s
		}
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkSet = s.Union(t)
			}
		})
	}
}

var (
	sinkInt int
	sinkSet Set
)

func sizeName(n int) string {
	switch n {
	case 4:
		return "n=4"
	case 8:
		return "n=8"
	case 64:
		return "n=64"
	case 1024:
		return "n=1024"
	}
	return "n=?"
}
