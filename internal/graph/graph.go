// Package graph implements the evolving weighted entity graph that DynDens
// maintains dense subgraphs over.
//
// The paper models the domain as a complete weighted graph over a fixed set
// of N vertices whose edge weights change over time; edges with weight zero
// are simply absent from the adjacency lists. The graph index required by
// DynDens (Section 3.2.1) is exactly this structure: per-vertex adjacency
// lists (the neighbourhood vectors Γ_u) supporting efficient neighbourhood
// merges when exploring a subgraph.
package graph

import (
	"fmt"
	"sort"

	"dyndens/internal/vset"
)

// Vertex identifies a node of the graph.
type Vertex = vset.Vertex

// Update is a single streaming edge-weight update (a, b, δ): at some time
// instant the weight of edge {a, b} changes from w to w+δ.
type Update struct {
	A, B  Vertex
	Delta float64
}

// Graph is a weighted undirected graph with streaming edge-weight updates.
// The zero value is not usable; call New.
//
// Graph is not safe for concurrent mutation; DynDens processes its update
// stream sequentially (as in the paper). Concurrent readers are safe as long
// as no Apply call is in flight.
type Graph struct {
	adj map[Vertex]map[Vertex]float64
	// known remembers every vertex that ever carried an edge. The paper's
	// vertex universe is fixed; a vertex whose last edge decays away can
	// still belong to dense subgraphs (supergraphs of too-dense subgraphs
	// absorb disconnected vertices), so the universe must not shrink.
	known map[Vertex]bool
	// edgeCount tracks the number of edges with non-zero weight.
	edgeCount int
	// totalWeight tracks the sum of all positive edge weights (diagnostic).
	totalWeight float64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		adj:   make(map[Vertex]map[Vertex]float64),
		known: make(map[Vertex]bool),
	}
}

// Weight returns the current weight of edge {a, b}; absent edges have weight 0.
func (g *Graph) Weight(a, b Vertex) float64 {
	if a == b {
		return 0
	}
	return g.adj[a][b]
}

// HasEdge reports whether edge {a, b} currently has non-zero weight.
func (g *Graph) HasEdge(a, b Vertex) bool {
	_, ok := g.adj[a][b]
	return ok
}

// Degree returns the number of neighbours of u with non-zero edge weight.
func (g *Graph) Degree(u Vertex) int { return len(g.adj[u]) }

// NumEdges returns the number of edges with non-zero weight.
func (g *Graph) NumEdges() int { return g.edgeCount }

// NumVertices returns the number of vertices that currently have at least one
// incident edge. (The paper's vertex set is fixed; vertices with no incident
// edges never participate in dense subgraphs, so tracking them is unnecessary.)
func (g *Graph) NumVertices() int { return len(g.adj) }

// TotalWeight returns the sum of all edge weights (a diagnostic quantity used
// by workload generators and tests).
func (g *Graph) TotalWeight() float64 { return g.totalWeight }

// Apply applies the edge-weight update (a, b, δ) and returns the previous and
// new weight of the edge. Edges whose weight becomes ≤ 0 are removed (weights
// are association strengths, which are non-negative for all measures used in
// the paper); the new weight reported is then 0.
func (g *Graph) Apply(u Update) (before, after float64) {
	a, b := u.A, u.B
	if a == b {
		return 0, 0
	}
	before = g.adj[a][b]
	after = before + u.Delta
	if after <= 0 {
		after = 0
	}
	g.setWeight(a, b, after)
	return before, after
}

// SetWeight sets the weight of edge {a, b} to w (w ≤ 0 removes the edge).
func (g *Graph) SetWeight(a, b Vertex, w float64) {
	if a == b {
		return
	}
	if w < 0 {
		w = 0
	}
	g.setWeight(a, b, w)
}

func (g *Graph) setWeight(a, b Vertex, w float64) {
	old, existed := g.adj[a][b]
	if w == 0 {
		if existed {
			delete(g.adj[a], b)
			delete(g.adj[b], a)
			if len(g.adj[a]) == 0 {
				delete(g.adj, a)
			}
			if len(g.adj[b]) == 0 {
				delete(g.adj, b)
			}
			g.edgeCount--
			g.totalWeight -= old
		}
		return
	}
	// A vertex only ever (re)enters adj through adjacency-map creation, so
	// marking it known here keeps the universe bookkeeping off the hot path.
	if g.adj[a] == nil {
		g.adj[a] = make(map[Vertex]float64)
		g.known[a] = true
	}
	if g.adj[b] == nil {
		g.adj[b] = make(map[Vertex]float64)
		g.known[b] = true
	}
	g.adj[a][b] = w
	g.adj[b][a] = w
	if !existed {
		g.edgeCount++
	}
	g.totalWeight += w - old
}

// Neighbors calls fn for every neighbour of u with non-zero edge weight.
// Iteration order is unspecified.
func (g *Graph) Neighbors(u Vertex, fn func(v Vertex, w float64)) {
	for v, w := range g.adj[u] {
		fn(v, w)
	}
}

// NeighborsSorted returns the neighbours of u in increasing vertex order,
// together with the corresponding edge weights. It allocates; use Neighbors
// in hot paths.
func (g *Graph) NeighborsSorted(u Vertex) ([]Vertex, []float64) {
	m := g.adj[u]
	vs := make([]Vertex, 0, len(m))
	for v := range m {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	ws := make([]float64, len(vs))
	for i, v := range vs {
		ws[i] = m[v]
	}
	return vs, ws
}

// Vertices returns all vertices with at least one incident edge, sorted.
func (g *Graph) Vertices() []Vertex {
	vs := make([]Vertex, 0, len(g.adj))
	for v := range g.adj {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// KnownVertices returns the fixed vertex universe: every vertex that has ever
// carried an edge, sorted, including vertices whose edges have since decayed
// to zero. Ground-truth enumerations and ImplicitTooDense expansions must use
// this universe — a too-dense subgraph's supergraphs include ones formed with
// currently isolated vertices.
func (g *Graph) KnownVertices() []Vertex {
	vs := make([]Vertex, 0, len(g.known))
	for v := range g.known {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Score returns score(C) = Σ_{i,j ∈ C, i<j} w_ij, the total internal edge
// weight of the subgraph induced by C.
func (g *Graph) Score(c vset.Set) float64 {
	var s float64
	for i := 0; i < len(c); i++ {
		ni := g.adj[c[i]]
		if ni == nil {
			continue
		}
		for j := i + 1; j < len(c); j++ {
			s += ni[c[j]]
		}
	}
	return s
}

// ScoreWith returns score(C ∪ {u}) - score(C) = Γ_u · c, the total weight of
// edges between u and the vertices of C. If u ∈ C the result is the weight of
// edges from u to the rest of C.
func (g *Graph) ScoreWith(c vset.Set, u Vertex) float64 {
	nu := g.adj[u]
	if nu == nil {
		return 0
	}
	var s float64
	for _, v := range c {
		if v == u {
			continue
		}
		s += nu[v]
	}
	return s
}

// NeighborhoodScores merges the adjacency lists of the vertices of C and
// returns, for every vertex y ∉ C adjacent to at least one vertex of C, the
// value Γ_C · ê_y = Σ_{v∈C} w_vy. This is the quantity DynDens needs when
// exploring C: score(C ∪ {y}) = score(C) + Γ_C·ê_y (Section 3.2.1, footnote 6).
func (g *Graph) NeighborhoodScores(c vset.Set) map[Vertex]float64 {
	out := make(map[Vertex]float64)
	for _, v := range c {
		for y, w := range g.adj[v] {
			if c.Contains(y) {
				continue
			}
			out[y] += w
		}
	}
	return out
}

// EdgesNotIncident calls fn for every edge {u, v} (u < v) such that neither
// endpoint belongs to C. DynDens needs this only in the rare case where an
// implicitly represented too-dense supergraph C ∪ {*} must itself be explored
// (Section 3.2.3).
func (g *Graph) EdgesNotIncident(c vset.Set, fn func(u, v Vertex, w float64)) {
	for u, nbrs := range g.adj {
		if c.Contains(u) {
			continue
		}
		for v, w := range nbrs {
			if u >= v || c.Contains(v) {
				continue
			}
			fn(u, v, w)
		}
	}
}

// Edges calls fn for every edge {u, v} with u < v and non-zero weight.
func (g *Graph) Edges(fn func(u, v Vertex, w float64)) {
	for u, nbrs := range g.adj {
		for v, w := range nbrs {
			if u < v {
				fn(u, v, w)
			}
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New()
	for u, nbrs := range g.adj {
		m := make(map[Vertex]float64, len(nbrs))
		for v, w := range nbrs {
			m[v] = w
		}
		out.adj[u] = m
	}
	for v := range g.known {
		out.known[v] = true
	}
	out.edgeCount = g.edgeCount
	out.totalWeight = g.totalWeight
	return out
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{vertices=%d edges=%d weight=%.3f}", g.NumVertices(), g.NumEdges(), g.totalWeight)
}

// AverageDegree returns the mean number of neighbours over vertices with at
// least one incident edge (0 for the empty graph). The complexity analysis of
// Section 4.2 is parameterised by this quantity.
func (g *Graph) AverageDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.edgeCount) / float64(len(g.adj))
}
