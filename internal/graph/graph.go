// Package graph implements the evolving weighted entity graph that DynDens
// maintains dense subgraphs over.
//
// The paper models the domain as a complete weighted graph over a fixed set
// of N vertices whose edge weights change over time; edges with weight zero
// are simply absent from the adjacency lists. The graph index required by
// DynDens (Section 3.2.1) stores each neighbourhood Γ_u as a *sorted vector*
// — here a pair of parallel slices ([]Vertex, []float64) kept in increasing
// vertex order — precisely so that exploration can merge neighbourhood lists
// cheaply: NeighborhoodScores is a k-way merge over the members' vectors into
// a caller-owned scratch buffer, and Score/ScoreWith/EdgesNotIncident are
// merge/scan passes over the same vectors. Point updates binary-search the
// vector and insert/delete in place (amortised O(degree) worst case, O(log
// degree) when the edge already exists, which is the steady state of a
// weight-update stream).
package graph

import (
	"fmt"
	"sort"

	"dyndens/internal/vset"
)

// Vertex identifies a node of the graph.
type Vertex = vset.Vertex

// Update is a single streaming edge-weight update (a, b, δ): at some time
// instant the weight of edge {a, b} changes from w to w+δ.
type Update struct {
	A, B  Vertex
	Delta float64
}

// adjacency is one neighbourhood vector Γ_u: neighbours in strictly
// increasing vertex order with the parallel edge weights.
type adjacency struct {
	vs []Vertex
	ws []float64
}

// find returns the position of v in the vector and whether it is present;
// absent vertices report their insertion point. vset.Search is the shared
// sorted-[]Vertex lower-bound primitive (linear scan on small slices,
// branch-free halving search above).
func (l *adjacency) find(v Vertex) (int, bool) {
	i := vset.Search(l.vs, v)
	return i, i < len(l.vs) && l.vs[i] == v
}

// weight returns the edge weight to v (0 when absent).
func (l *adjacency) weight(v Vertex) float64 {
	if l == nil {
		return 0
	}
	if i, ok := l.find(v); ok {
		return l.ws[i]
	}
	return 0
}

// insert places (v, w) at position i, shifting the tail (amortised in-place).
func (l *adjacency) insert(i int, v Vertex, w float64) {
	l.vs = append(l.vs, 0)
	l.ws = append(l.ws, 0)
	copy(l.vs[i+1:], l.vs[i:])
	copy(l.ws[i+1:], l.ws[i:])
	l.vs[i] = v
	l.ws[i] = w
}

// remove deletes position i, shifting the tail.
func (l *adjacency) remove(i int) {
	copy(l.vs[i:], l.vs[i+1:])
	copy(l.ws[i:], l.ws[i+1:])
	l.vs = l.vs[:len(l.vs)-1]
	l.ws = l.ws[:len(l.ws)-1]
}

// sumOver returns Σ w(v) over the vertices of c present in the vector,
// skipping skip. c is sorted (it is a vset.Set), so for tiny c each element
// is binary-searched independently.
func (l *adjacency) sumOver(c []Vertex, skip Vertex) float64 {
	if l == nil {
		return 0
	}
	var s float64
	for _, v := range c {
		if v == skip {
			continue
		}
		if i, ok := l.find(v); ok {
			s += l.ws[i]
		}
	}
	return s
}

// Graph is a weighted undirected graph with streaming edge-weight updates.
// The zero value is not usable; call New.
//
// Graph is not safe for concurrent mutation; DynDens processes its update
// stream sequentially (as in the paper). Concurrent readers are safe as long
// as no Apply call is in flight.
type Graph struct {
	adj map[Vertex]*adjacency
	// known remembers every vertex that ever carried an edge. The paper's
	// vertex universe is fixed; a vertex whose last edge decays away can
	// still belong to dense subgraphs (supergraphs of too-dense subgraphs
	// absorb disconnected vertices), so the universe must not shrink.
	known map[Vertex]bool
	// edgeCount tracks the number of edges with non-zero weight.
	edgeCount int
	// totalWeight tracks the sum of all positive edge weights (diagnostic).
	totalWeight float64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		adj:   make(map[Vertex]*adjacency),
		known: make(map[Vertex]bool),
	}
}

// Weight returns the current weight of edge {a, b}; absent edges have weight 0.
func (g *Graph) Weight(a, b Vertex) float64 {
	if a == b {
		return 0
	}
	return g.adj[a].weight(b)
}

// HasEdge reports whether edge {a, b} currently has non-zero weight.
func (g *Graph) HasEdge(a, b Vertex) bool {
	l := g.adj[a]
	if l == nil {
		return false
	}
	_, ok := l.find(b)
	return ok
}

// Degree returns the number of neighbours of u with non-zero edge weight.
func (g *Graph) Degree(u Vertex) int {
	if l := g.adj[u]; l != nil {
		return len(l.vs)
	}
	return 0
}

// NumEdges returns the number of edges with non-zero weight.
func (g *Graph) NumEdges() int { return g.edgeCount }

// NumVertices returns the number of vertices that currently have at least one
// incident edge. (The paper's vertex set is fixed; vertices with no incident
// edges never participate in dense subgraphs, so tracking them is unnecessary.)
func (g *Graph) NumVertices() int { return len(g.adj) }

// TotalWeight returns the sum of all edge weights (a diagnostic quantity used
// by workload generators and tests).
func (g *Graph) TotalWeight() float64 { return g.totalWeight }

// Apply applies the edge-weight update (a, b, δ) and returns the previous and
// new weight of the edge. Edges whose weight becomes ≤ 0 are removed (weights
// are association strengths, which are non-negative for all measures used in
// the paper); the new weight reported is then 0.
func (g *Graph) Apply(u Update) (before, after float64) {
	a, b := u.A, u.B
	if a == b {
		return 0, 0
	}
	before = g.adj[a].weight(b)
	after = before + u.Delta
	if after <= 0 {
		after = 0
	}
	g.setWeight(a, b, after)
	return before, after
}

// SetWeight sets the weight of edge {a, b} to w (w ≤ 0 removes the edge).
func (g *Graph) SetWeight(a, b Vertex, w float64) {
	if a == b {
		return
	}
	if w < 0 {
		w = 0
	}
	g.setWeight(a, b, w)
}

func (g *Graph) setWeight(a, b Vertex, w float64) {
	la := g.adj[a]
	if w == 0 {
		if la == nil {
			return
		}
		i, ok := la.find(b)
		if !ok {
			return
		}
		old := la.ws[i]
		la.remove(i)
		lb := g.adj[b]
		j, _ := lb.find(a)
		lb.remove(j)
		if len(la.vs) == 0 {
			delete(g.adj, a)
		}
		if len(lb.vs) == 0 {
			delete(g.adj, b)
		}
		g.edgeCount--
		g.totalWeight -= old
		return
	}
	// A vertex only ever (re)enters adj through vector creation, so marking
	// it known here keeps the universe bookkeeping off the hot path.
	if la == nil {
		la = &adjacency{}
		g.adj[a] = la
		g.known[a] = true
	}
	lb := g.adj[b]
	if lb == nil {
		lb = &adjacency{}
		g.adj[b] = lb
		g.known[b] = true
	}
	i, ok := la.find(b)
	if ok {
		old := la.ws[i]
		la.ws[i] = w
		j, _ := lb.find(a)
		lb.ws[j] = w
		g.totalWeight += w - old
		return
	}
	la.insert(i, b, w)
	j, _ := lb.find(a)
	lb.insert(j, a, w)
	g.edgeCount++
	g.totalWeight += w
}

// Neighbors calls fn for every neighbour of u with non-zero edge weight, in
// increasing vertex order.
func (g *Graph) Neighbors(u Vertex, fn func(v Vertex, w float64)) {
	if l := g.adj[u]; l != nil {
		for i, v := range l.vs {
			fn(v, l.ws[i])
		}
	}
}

// Neighborhood returns the sorted neighbourhood vector Γ_u: u's neighbours in
// increasing vertex order with the parallel edge weights. The returned slices
// are the graph's own storage — callers must treat them as read-only and must
// not hold them across mutations. This is the zero-copy accessor the paper's
// Section 3.2.1 graph index exists to provide.
func (g *Graph) Neighborhood(u Vertex) ([]Vertex, []float64) {
	if l := g.adj[u]; l != nil {
		return l.vs, l.ws
	}
	return nil, nil
}

// NeighborsSorted returns a copy of the neighbourhood vector of u. Use
// Neighborhood in hot paths to avoid the allocation.
func (g *Graph) NeighborsSorted(u Vertex) ([]Vertex, []float64) {
	l := g.adj[u]
	if l == nil {
		return nil, nil
	}
	vs := make([]Vertex, len(l.vs))
	ws := make([]float64, len(l.ws))
	copy(vs, l.vs)
	copy(ws, l.ws)
	return vs, ws
}

// Vertices returns all vertices with at least one incident edge, sorted.
func (g *Graph) Vertices() []Vertex {
	vs := make([]Vertex, 0, len(g.adj))
	for v := range g.adj {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// KnownVertices returns the fixed vertex universe: every vertex that has ever
// carried an edge, sorted, including vertices whose edges have since decayed
// to zero. Ground-truth enumerations and ImplicitTooDense expansions must use
// this universe — a too-dense subgraph's supergraphs include ones formed with
// currently isolated vertices.
func (g *Graph) KnownVertices() []Vertex {
	vs := make([]Vertex, 0, len(g.known))
	for v := range g.known {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Score returns score(C) = Σ_{i,j ∈ C, i<j} w_ij, the total internal edge
// weight of the subgraph induced by C. Each member's vector is probed for the
// members after it; |C| ≤ Nmax is tiny, so this is O(|C|² log degree) with no
// allocation.
func (g *Graph) Score(c vset.Set) float64 {
	var s float64
	for i := 0; i+1 < len(c); i++ {
		s += g.adj[c[i]].sumOver(c[i+1:], c[i])
	}
	return s
}

// ScoreWith returns score(C ∪ {u}) - score(C) = Γ_u · c, the total weight of
// edges between u and the vertices of C. If u ∈ C the result is the weight of
// edges from u to the rest of C.
func (g *Graph) ScoreWith(c vset.Set, u Vertex) float64 {
	return g.adj[u].sumOver(c, u)
}

// NeighborhoodBuf is the reusable scratch a NeighborhoodScores merge works
// in. The zero value is ready to use; after a first call its buffers are
// retained, so steady-state reuse performs no allocations. It is owned by one
// caller at a time (the engine keeps a free list of them so that recursive
// explorations each work in their own buffer).
type NeighborhoodBuf struct {
	vs      []Vertex
	ws      []float64
	cursors []mergeCursor
}

// mergeCursor is one member's position in the k-way neighbourhood merge.
type mergeCursor struct {
	vs  []Vertex
	ws  []float64
	pos int
}

// NeighborhoodScores merges the neighbourhood vectors of the vertices of C
// and returns, for every vertex y ∉ C adjacent to at least one vertex of C,
// the value Γ_C · ê_y = Σ_{v∈C} w_vy — the quantity DynDens needs when
// exploring C: score(C ∪ {y}) = score(C) + Γ_C·ê_y (Section 3.2.1,
// footnote 6). The result vectors are sorted by vertex and remain valid until
// buf's next use; they alias buf, not the graph.
//
// The merge is a |C|-way sorted-vector merge (|C| ≤ Nmax, so the per-output
// cursor scan is a handful of comparisons) and allocates nothing once buf is
// warm.
func (g *Graph) NeighborhoodScores(c vset.Set, buf *NeighborhoodBuf) ([]Vertex, []float64) {
	buf.vs = buf.vs[:0]
	buf.ws = buf.ws[:0]
	buf.cursors = buf.cursors[:0]
	for _, v := range c {
		if l := g.adj[v]; l != nil && len(l.vs) > 0 {
			buf.cursors = append(buf.cursors, mergeCursor{vs: l.vs, ws: l.ws})
		}
	}
	ci := 0 // merge pointer into c, for skipping members
	for {
		// Smallest un-consumed head across the member vectors.
		var best Vertex
		found := false
		for i := range buf.cursors {
			cur := &buf.cursors[i]
			if cur.pos < len(cur.vs) && (!found || cur.vs[cur.pos] < best) {
				best, found = cur.vs[cur.pos], true
			}
		}
		if !found {
			return buf.vs, buf.ws
		}
		var sum float64
		for i := range buf.cursors {
			cur := &buf.cursors[i]
			if cur.pos < len(cur.vs) && cur.vs[cur.pos] == best {
				sum += cur.ws[cur.pos]
				cur.pos++
			}
		}
		for ci < len(c) && c[ci] < best {
			ci++
		}
		if ci < len(c) && c[ci] == best {
			continue // y ∈ C
		}
		buf.vs = append(buf.vs, best)
		buf.ws = append(buf.ws, sum)
	}
}

// EdgesNotIncident calls fn for every edge {u, v} (u < v) such that neither
// endpoint belongs to C. DynDens needs this only in the rare case where an
// implicitly represented too-dense supergraph C ∪ {*} must itself be explored
// (Section 3.2.3). The inner pass is a merge of the sorted neighbourhood
// vector against the sorted members of C.
func (g *Graph) EdgesNotIncident(c vset.Set, fn func(u, v Vertex, w float64)) {
	for u, l := range g.adj {
		if c.Contains(u) {
			continue
		}
		start, _ := l.find(u + 1) // first neighbour > u
		ci := 0
		for i := start; i < len(l.vs); i++ {
			v := l.vs[i]
			for ci < len(c) && c[ci] < v {
				ci++
			}
			if ci < len(c) && c[ci] == v {
				continue
			}
			fn(u, v, l.ws[i])
		}
	}
}

// Edges calls fn for every edge {u, v} with u < v and non-zero weight.
func (g *Graph) Edges(fn func(u, v Vertex, w float64)) {
	for u, l := range g.adj {
		start, _ := l.find(u + 1)
		for i := start; i < len(l.vs); i++ {
			fn(u, l.vs[i], l.ws[i])
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New()
	for u, l := range g.adj {
		cp := &adjacency{vs: make([]Vertex, len(l.vs)), ws: make([]float64, len(l.ws))}
		copy(cp.vs, l.vs)
		copy(cp.ws, l.ws)
		out.adj[u] = cp
	}
	for v := range g.known {
		out.known[v] = true
	}
	out.edgeCount = g.edgeCount
	out.totalWeight = g.totalWeight
	return out
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{vertices=%d edges=%d weight=%.3f}", g.NumVertices(), g.NumEdges(), g.totalWeight)
}

// AverageDegree returns the mean number of neighbours over vertices with at
// least one incident edge (0 for the empty graph). The complexity analysis of
// Section 4.2 is parameterised by this quantity.
func (g *Graph) AverageDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.edgeCount) / float64(len(g.adj))
}
