package graph

// State is an order-canonical deep copy of a Graph for persistence: the known
// vertex universe plus every non-zero edge as parallel (u, v, w) triples with
// u < v, sorted by (u, v). Equal graphs export equal States regardless of the
// insertion history, so snapshot bytes are deterministic.
type State struct {
	Known []Vertex
	EdgeU []Vertex
	EdgeV []Vertex
	EdgeW []float64
}

// ExportState captures the graph's full content. The adjacency maps are
// iterated through the sorted known-vertex list rather than Edges, which
// walks the map in hash order.
func (g *Graph) ExportState() State {
	st := State{Known: g.KnownVertices()}
	for _, u := range st.Known {
		g.Neighbors(u, func(v Vertex, w float64) {
			if u < v {
				st.EdgeU = append(st.EdgeU, u)
				st.EdgeV = append(st.EdgeV, v)
				st.EdgeW = append(st.EdgeW, w)
			}
		})
	}
	return st
}

// MarkKnown adds v to the known-vertex universe without touching any edge.
// Restoration needs it for vertices whose edges have all decayed to zero:
// they carry no adjacency vector but still count toward the universe.
func (g *Graph) MarkKnown(v Vertex) { g.known[v] = true }

// NewFromState rebuilds a graph from an exported State. Adjacency vectors
// come back in the same sorted order ExportState emitted, so the rebuilt
// graph is structurally identical to the exported one (edge weights exact;
// the total-weight gauge may differ in the last bits from summation order).
func NewFromState(st State) *Graph {
	g := New()
	for i, u := range st.EdgeU {
		g.SetWeight(u, st.EdgeV[i], st.EdgeW[i])
	}
	for _, v := range st.Known {
		g.MarkKnown(v)
	}
	return g
}
