package graph

import (
	"math"
	"math/rand"
	"testing"

	"dyndens/internal/vset"
)

// refGraph is the map-of-maps adjacency representation the sorted-vector
// Graph replaced. The property tests below drive both representations with
// the same random update stream and require every query to agree, so the
// merge/scan rewrites of Score, ScoreWith, NeighborhoodScores and the edge
// enumerations are checked against the obviously-correct structure.
type refGraph struct {
	adj map[Vertex]map[Vertex]float64
}

func newRefGraph() *refGraph { return &refGraph{adj: make(map[Vertex]map[Vertex]float64)} }

func (r *refGraph) apply(u Update) {
	if u.A == u.B {
		return
	}
	w := r.adj[u.A][u.B] + u.Delta
	if w <= 0 {
		if _, ok := r.adj[u.A][u.B]; ok {
			delete(r.adj[u.A], u.B)
			delete(r.adj[u.B], u.A)
			if len(r.adj[u.A]) == 0 {
				delete(r.adj, u.A)
			}
			if len(r.adj[u.B]) == 0 {
				delete(r.adj, u.B)
			}
		}
		return
	}
	if r.adj[u.A] == nil {
		r.adj[u.A] = make(map[Vertex]float64)
	}
	if r.adj[u.B] == nil {
		r.adj[u.B] = make(map[Vertex]float64)
	}
	r.adj[u.A][u.B] = w
	r.adj[u.B][u.A] = w
}

func (r *refGraph) score(c vset.Set) float64 {
	var s float64
	for i := 0; i < len(c); i++ {
		for j := i + 1; j < len(c); j++ {
			s += r.adj[c[i]][c[j]]
		}
	}
	return s
}

func (r *refGraph) scoreWith(c vset.Set, u Vertex) float64 {
	var s float64
	for _, v := range c {
		if v != u {
			s += r.adj[u][v]
		}
	}
	return s
}

func (r *refGraph) neighborhoodScores(c vset.Set) map[Vertex]float64 {
	out := make(map[Vertex]float64)
	for _, v := range c {
		for y, w := range r.adj[v] {
			if !c.Contains(y) {
				out[y] += w
			}
		}
	}
	return out
}

// randomSet draws a subset of [0, universe) with each vertex included with
// probability p.
func randomSet(rng *rand.Rand, universe int, p float64) vset.Set {
	var c vset.Set
	for v := Vertex(0); v < Vertex(universe); v++ {
		if rng.Float64() < p {
			c = c.Add(v)
		}
	}
	return c
}

func TestSortedVectorsMatchMapReference(t *testing.T) {
	const (
		trials   = 40
		universe = 16
		steps    = 300
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		g := New()
		ref := newRefGraph()
		var buf NeighborhoodBuf
		for step := 0; step < steps; step++ {
			u := Update{
				A:     Vertex(rng.Intn(universe)),
				B:     Vertex(rng.Intn(universe)),
				Delta: rng.Float64()*2 - 0.6, // mixed growth and decay
			}
			g.Apply(u)
			ref.apply(u)

			if step%10 != 0 {
				continue
			}
			// Point queries across the whole universe.
			for a := Vertex(0); a < Vertex(universe); a++ {
				for b := a + 1; b < Vertex(universe); b++ {
					if got, want := g.Weight(a, b), ref.adj[a][b]; math.Abs(got-want) > 1e-9 {
						t.Fatalf("trial %d step %d: Weight(%d,%d) = %v, want %v", trial, step, a, b, got, want)
					}
				}
			}
			// Subset queries on random sets of varying density.
			for _, p := range []float64{0.15, 0.4, 0.8} {
				c := randomSet(rng, universe, p)
				if got, want := g.Score(c), ref.score(c); math.Abs(got-want) > 1e-9 {
					t.Fatalf("trial %d step %d: Score(%v) = %v, want %v", trial, step, c, got, want)
				}
				for v := Vertex(0); v < Vertex(universe); v++ {
					if got, want := g.ScoreWith(c, v), ref.scoreWith(c, v); math.Abs(got-want) > 1e-9 {
						t.Fatalf("trial %d step %d: ScoreWith(%v,%d) = %v, want %v", trial, step, c, v, got, want)
					}
				}
				vs, ws := g.NeighborhoodScores(c, &buf)
				want := ref.neighborhoodScores(c)
				if len(vs) != len(want) {
					t.Fatalf("trial %d step %d: NeighborhoodScores(%v) has %d entries (%v), want %d (%v)",
						trial, step, c, len(vs), vs, len(want), want)
				}
				for i, y := range vs {
					if i > 0 && vs[i-1] >= y {
						t.Fatalf("trial %d step %d: NeighborhoodScores not strictly sorted: %v", trial, step, vs)
					}
					if w, ok := want[y]; !ok || math.Abs(ws[i]-w) > 1e-9 {
						t.Fatalf("trial %d step %d: NeighborhoodScores(%v)[%d] = %v, want %v", trial, step, c, y, ws[i], want[y])
					}
				}
			}
			// Edge enumeration parity: count and total weight.
			gotN, gotW := 0, 0.0
			g.Edges(func(u, v Vertex, w float64) { gotN++; gotW += w })
			wantN, wantW := 0, 0.0
			for u, nbrs := range ref.adj {
				for v, w := range nbrs {
					if u < v {
						wantN++
						wantW += w
					}
				}
			}
			if gotN != wantN || math.Abs(gotW-wantW) > 1e-6 {
				t.Fatalf("trial %d step %d: Edges = (%d, %v), want (%d, %v)", trial, step, gotN, gotW, wantN, wantW)
			}
			// EdgesNotIncident parity on a random excluded set.
			c := randomSet(rng, universe, 0.3)
			gotN, gotW = 0, 0.0
			g.EdgesNotIncident(c, func(u, v Vertex, w float64) {
				if c.Contains(u) || c.Contains(v) || u >= v {
					t.Fatalf("trial %d step %d: EdgesNotIncident(%v) yielded %d-%d", trial, step, c, u, v)
				}
				gotN++
				gotW += w
			})
			wantN, wantW = 0, 0.0
			for u, nbrs := range ref.adj {
				if c.Contains(u) {
					continue
				}
				for v, w := range nbrs {
					if u < v && !c.Contains(v) {
						wantN++
						wantW += w
					}
				}
			}
			if gotN != wantN || math.Abs(gotW-wantW) > 1e-6 {
				t.Fatalf("trial %d step %d: EdgesNotIncident(%v) = (%d, %v), want (%d, %v)", trial, step, c, gotN, gotW, wantN, wantW)
			}
		}
	}
}

// TestAdjacencyVectorInvariant checks the representation invariant directly:
// after arbitrary updates every neighbourhood vector is strictly increasing
// and symmetric with its mirror entries.
func TestAdjacencyVectorInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New()
	for i := 0; i < 2000; i++ {
		g.Apply(Update{
			A:     Vertex(rng.Intn(30)),
			B:     Vertex(rng.Intn(30)),
			Delta: rng.Float64()*3 - 1,
		})
	}
	for _, u := range g.Vertices() {
		vs, ws := g.Neighborhood(u)
		if len(vs) != len(ws) {
			t.Fatalf("vertex %d: parallel vectors out of sync: %d vs %d", u, len(vs), len(ws))
		}
		for i, v := range vs {
			if i > 0 && vs[i-1] >= v {
				t.Fatalf("vertex %d: neighbourhood not strictly increasing: %v", u, vs)
			}
			if v == u {
				t.Fatalf("vertex %d: self-loop in neighbourhood", u)
			}
			if got := g.Weight(v, u); got != ws[i] {
				t.Fatalf("edge {%d,%d}: asymmetric weights %v vs %v", u, v, ws[i], got)
			}
		}
	}
}
