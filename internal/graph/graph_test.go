package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dyndens/internal/vset"
)

func TestApplyAndWeight(t *testing.T) {
	g := New()
	before, after := g.Apply(Update{A: 1, B: 2, Delta: 0.5})
	if before != 0 || after != 0.5 {
		t.Fatalf("Apply: before=%v after=%v", before, after)
	}
	if g.Weight(1, 2) != 0.5 || g.Weight(2, 1) != 0.5 {
		t.Fatalf("Weight not symmetric: %v %v", g.Weight(1, 2), g.Weight(2, 1))
	}
	before, after = g.Apply(Update{A: 2, B: 1, Delta: 0.25})
	if before != 0.5 || after != 0.75 {
		t.Fatalf("second Apply: before=%v after=%v", before, after)
	}
}

func TestApplyNegativeRemovesEdge(t *testing.T) {
	g := New()
	g.Apply(Update{A: 1, B: 2, Delta: 0.5})
	_, after := g.Apply(Update{A: 1, B: 2, Delta: -0.7})
	if after != 0 {
		t.Fatalf("weight should clamp to 0, got %v", after)
	}
	if g.HasEdge(1, 2) {
		t.Fatal("edge should be removed when weight reaches 0")
	}
	if g.NumEdges() != 0 || g.NumVertices() != 0 {
		t.Fatalf("counts not reset: edges=%d vertices=%d", g.NumEdges(), g.NumVertices())
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := New()
	g.Apply(Update{A: 3, B: 3, Delta: 1})
	if g.NumEdges() != 0 {
		t.Fatal("self loop should be ignored")
	}
	if g.Weight(3, 3) != 0 {
		t.Fatal("self loop weight should be 0")
	}
}

func TestDegreeAndCounts(t *testing.T) {
	g := New()
	g.SetWeight(1, 2, 1)
	g.SetWeight(1, 3, 1)
	g.SetWeight(2, 3, 1)
	if g.Degree(1) != 2 || g.Degree(2) != 2 || g.Degree(3) != 2 {
		t.Fatalf("degrees wrong: %d %d %d", g.Degree(1), g.Degree(2), g.Degree(3))
	}
	if g.NumEdges() != 3 || g.NumVertices() != 3 {
		t.Fatalf("edges=%d vertices=%d", g.NumEdges(), g.NumVertices())
	}
	if got := g.AverageDegree(); got != 2 {
		t.Fatalf("AverageDegree = %v", got)
	}
}

func TestScore(t *testing.T) {
	g := New()
	g.SetWeight(1, 2, 0.8)
	g.SetWeight(1, 3, 1.0)
	g.SetWeight(2, 3, 1.1)
	g.SetWeight(3, 4, 1.0)
	c := vset.New(1, 2, 3)
	if got, want := g.Score(c), 2.9; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Score = %v, want %v", got, want)
	}
	if got := g.Score(vset.New(1)); got != 0 {
		t.Fatalf("Score of singleton = %v", got)
	}
	if got, want := g.ScoreWith(c, 4), 1.0; got != want {
		t.Fatalf("ScoreWith = %v, want %v", got, want)
	}
	if got, want := g.ScoreWith(c, 1), 1.8; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ScoreWith(member) = %v, want %v", got, want)
	}
}

func TestNeighborhoodScores(t *testing.T) {
	g := New()
	g.SetWeight(1, 2, 0.8)
	g.SetWeight(1, 3, 1.0)
	g.SetWeight(2, 3, 1.1)
	g.SetWeight(3, 4, 1.0)
	g.SetWeight(2, 4, 0.5)
	g.SetWeight(4, 5, 9.0)
	var buf NeighborhoodBuf
	vs, ws := g.NeighborhoodScores(vset.New(2, 3), &buf)
	if len(vs) != 2 || vs[0] != 1 || vs[1] != 4 {
		t.Fatalf("expected neighbours [1 4], got %v", vs)
	}
	if math.Abs(ws[0]-1.8) > 1e-12 {
		t.Errorf("score of 1 = %v, want 1.8", ws[0])
	}
	if math.Abs(ws[1]-1.5) > 1e-12 {
		t.Errorf("score of 4 = %v, want 1.5", ws[1])
	}
	// Reusing a warm buffer must be allocation-free.
	c := vset.New(2, 3)
	allocs := testing.AllocsPerRun(100, func() {
		g.NeighborhoodScores(c, &buf)
	})
	if allocs != 0 {
		t.Fatalf("NeighborhoodScores allocated %v times per warm call", allocs)
	}
}

func TestNeighborsSortedAndVertices(t *testing.T) {
	g := New()
	g.SetWeight(5, 1, 0.5)
	g.SetWeight(5, 9, 0.9)
	g.SetWeight(5, 3, 0.3)
	vs, ws := g.NeighborsSorted(5)
	if len(vs) != 3 || vs[0] != 1 || vs[1] != 3 || vs[2] != 9 {
		t.Fatalf("NeighborsSorted vertices = %v", vs)
	}
	if ws[0] != 0.5 || ws[1] != 0.3 || ws[2] != 0.9 {
		t.Fatalf("NeighborsSorted weights = %v", ws)
	}
	all := g.Vertices()
	if len(all) != 4 || all[0] != 1 || all[3] != 9 {
		t.Fatalf("Vertices = %v", all)
	}
}

func TestEdgesNotIncident(t *testing.T) {
	g := New()
	g.SetWeight(1, 2, 1)
	g.SetWeight(3, 4, 1)
	g.SetWeight(2, 3, 1)
	count := 0
	g.EdgesNotIncident(vset.New(1, 2), func(u, v Vertex, w float64) {
		count++
		if u != 3 || v != 4 {
			t.Errorf("unexpected edge %d-%d", u, v)
		}
	})
	if count != 1 {
		t.Fatalf("expected 1 edge not incident, got %d", count)
	}
}

func TestEdgesEnumeratesEachOnce(t *testing.T) {
	g := New()
	g.SetWeight(1, 2, 1)
	g.SetWeight(2, 3, 2)
	g.SetWeight(1, 3, 3)
	seen := map[[2]Vertex]float64{}
	g.Edges(func(u, v Vertex, w float64) { seen[[2]Vertex{u, v}] = w })
	if len(seen) != 3 {
		t.Fatalf("Edges enumerated %d edges, want 3: %v", len(seen), seen)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New()
	g.SetWeight(1, 2, 1)
	h := g.Clone()
	h.SetWeight(1, 2, 5)
	if g.Weight(1, 2) != 1 {
		t.Fatal("Clone is not independent")
	}
	if h.Weight(1, 2) != 5 || h.NumEdges() != 1 {
		t.Fatal("Clone lost data")
	}
}

// Property: after a random sequence of updates, Score over a random subset
// equals the sum of pairwise Weight calls.
func TestScoreMatchesPairwiseWeights(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		for i := 0; i < 100; i++ {
			a := Vertex(rng.Intn(12))
			b := Vertex(rng.Intn(12))
			g.Apply(Update{A: a, B: b, Delta: rng.Float64()*2 - 0.5})
		}
		var c vset.Set
		for v := Vertex(0); v < 12; v++ {
			if rng.Intn(2) == 0 {
				c = c.Add(v)
			}
		}
		want := 0.0
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				want += g.Weight(c[i], c[j])
			}
		}
		return math.Abs(g.Score(c)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: total weight equals the sum over enumerated edges, and edge count
// matches, after arbitrary update sequences.
func TestInvariantCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		for i := 0; i < 200; i++ {
			a := Vertex(rng.Intn(10))
			b := Vertex(rng.Intn(10))
			g.Apply(Update{A: a, B: b, Delta: rng.Float64() - 0.4})
		}
		sum, n := 0.0, 0
		g.Edges(func(u, v Vertex, w float64) { sum += w; n++ })
		return n == g.NumEdges() && math.Abs(sum-g.TotalWeight()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
