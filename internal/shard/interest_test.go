package shard

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"dyndens/internal/core"
	"dyndens/internal/graph"
	"dyndens/internal/index"
)

// TestParseOverlapRoundTrip pins the CLI spellings to the policy values.
func TestParseOverlapRoundTrip(t *testing.T) {
	for _, ov := range []Overlap{OverlapScoped, OverlapMirror} {
		got, err := ParseOverlap(ov.String())
		if err != nil || got != ov {
			t.Fatalf("ParseOverlap(%q) = %v, %v; want %v", ov.String(), got, err, ov)
		}
	}
	if _, err := ParseOverlap("broadcast"); err == nil {
		t.Error("want error for unknown overlap spelling")
	}
	if s := Overlap(99).String(); s != "Overlap(99)" {
		t.Errorf("out-of-range String() = %q", s)
	}
}

// TestInterestMapTracksIndexVertices is the core interest-map property: under
// subscription churn — vertices gaining their first index node, losing their
// last, and regrowing — the map's subscription set must equal the engine's
// live index labels at every checkpoint, and the churn counters must balance
// the live count.
func TestInterestMapTracksIndexVertices(t *testing.T) {
	router, err := NewRouter(1)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.MustNew(testEngineCfg)
	eng.SetSink(core.EventSinkFunc(func(core.Event) {}))
	im := NewInterestMap(router, 0)
	eng.SetMembershipListener(im.Observe)

	check := func(phase string, i int) {
		t.Helper()
		want := eng.IndexVertices()
		var got []core.Vertex
		for v := range im.subscribed {
			got = append(got, v)
		}
		slices.Sort(got)
		if !slices.Equal(got, want) {
			t.Fatalf("%s update %d: subscriptions %v != index labels %v", phase, i, got, want)
		}
		if im.Subscriptions() != len(want) {
			t.Fatalf("%s update %d: Subscriptions() = %d, want %d", phase, i, im.Subscriptions(), len(want))
		}
		wantStars := slices.Contains(want, index.Star)
		if im.HasStars() != wantStars {
			t.Fatalf("%s update %d: HasStars() = %v, index says %v", phase, i, im.HasStars(), wantStars)
		}
		grows, lapses := im.Churn()
		if grows-lapses != uint64(len(want)) {
			t.Fatalf("%s update %d: churn %d-%d does not balance %d live subscriptions", phase, i, grows, lapses, len(want))
		}
	}

	// Grow, drain (overshooting negatives clamp every touched edge to zero,
	// emptying the index), regrow: forces lapse and regrow transitions in
	// addition to the first-node grows.
	grow := testStream(7, 24, 1500, 0.2)
	run := func(phase string, updates []core.Update) {
		for i, u := range updates {
			eng.Process(u)
			if i%53 == 0 || i == len(updates)-1 {
				check(phase, i)
			}
		}
	}
	run("grow", grow)
	drain := make([]core.Update, len(grow))
	for i, u := range grow {
		drain[i] = core.Update{A: u.A, B: u.B, Delta: -3 * (1 + u.Delta*u.Delta)}
	}
	run("drain", drain)
	if im.Subscriptions() != 0 {
		t.Fatalf("drained stream left %d subscriptions", im.Subscriptions())
	}
	run("regrow", grow)

	grows, lapses := im.Churn()
	if lapses == 0 {
		t.Error("stream produced no subscription lapses; churn property untested")
	}
	if im.Subscriptions() == 0 {
		t.Error("regrow phase left no subscriptions; regrow property untested")
	}
	t.Logf("churn: %d grows, %d lapses, %d live", grows, lapses, im.Subscriptions())
}

// TestWantsOrientationInvariance: delivery must not depend on the endpoint
// order an update arrives with, for any subscription state.
func TestWantsOrientationInvariance(t *testing.T) {
	router, err := NewRouter(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for shard := 0; shard < 4; shard++ {
		im := NewInterestMap(router, shard)
		// Random subscription state, mutated as we go.
		for i := 0; i < 4000; i++ {
			v := core.Vertex(rng.Intn(64))
			if rng.Intn(2) == 0 {
				im.Observe(v, true)
			} else if im.Subscribed(v) {
				im.Observe(v, false)
			}
			u := graph.Update{A: core.Vertex(rng.Intn(64)), B: core.Vertex(rng.Intn(64)), Delta: rng.NormFloat64()}
			rev := graph.Update{A: u.B, B: u.A, Delta: u.Delta}
			if im.Wants(u) != im.Wants(rev) {
				t.Fatalf("shard %d: Wants(%v) = %v but reversed = %v", shard, u, im.Wants(u), im.Wants(rev))
			}
		}
	}
}

// TestWantsDegenerateUpdates: self-loops and zero deltas are never wanted —
// the full processing path ignores them too.
func TestWantsDegenerateUpdates(t *testing.T) {
	router, err := NewRouter(2)
	if err != nil {
		t.Fatal(err)
	}
	im := NewInterestMap(router, router.Owner(3))
	im.Observe(3, true)
	im.Observe(5, true)
	if im.Wants(graph.Update{A: 3, B: 3, Delta: 1}) {
		t.Error("self-loop wanted")
	}
	if im.Wants(graph.Update{A: 3, B: 5, Delta: 0}) {
		t.Error("zero delta wanted")
	}
	if !im.Wants(graph.Update{A: 5, B: 3, Delta: -1}) {
		t.Error("negative update with both endpoints subscribed not wanted")
	}
	im.Observe(5, false)
	if im.Wants(graph.Update{A: 3, B: 5, Delta: -1}) {
		t.Error("negative update with one lapsed endpoint wanted")
	}
}

// mergedPerSeq replays updates through a sharded engine under the given
// policy and returns the merged stream grouped per sequence number plus the
// final tracked set.
func mergedPerSeq(t *testing.T, k int, ov Overlap, batchSize int, updates []core.Update) (map[uint64][]string, []string) {
	t.Helper()
	se := MustNew(Config{Shards: k, Engine: testEngineCfg, Overlap: ov, BatchSize: batchSize})
	defer se.Close()
	var col seqCollector
	se.SetSeqSink(&col)
	se.ProcessAll(updates)
	se.Flush()
	return perSeqKeys(col.snapshot()), se.OutputDenseKeys()
}

// TestScopedMatchesMirrorRandomStreams is the delivery-equivalence property:
// scoped delivery must produce the mirror stream bit for bit — same events,
// same sequence numbers, same tracked set — across shard counts, batch
// sizes, and random streams with heavy subscription churn.
func TestScopedMatchesMirrorRandomStreams(t *testing.T) {
	for _, k := range []int{2, 3, 4, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("K=%d/seed=%d", k, seed), func(t *testing.T) {
				updates := testStream(seed, 20, 1500, 0.35)
				batch := 1 << (seed % 3) * 16 // 16, 32, 64: vary channel interleavings
				mirrorSeq, mirrorKeys := mergedPerSeq(t, k, OverlapMirror, batch, updates)
				scopedSeq, scopedKeys := mergedPerSeq(t, k, OverlapScoped, batch, updates)
				if !slices.Equal(scopedKeys, mirrorKeys) {
					t.Fatalf("tracked sets diverge: scoped %v != mirror %v", scopedKeys, mirrorKeys)
				}
				if len(scopedSeq) != len(mirrorSeq) {
					t.Fatalf("scoped stream covers %d event-bearing updates, mirror %d", len(scopedSeq), len(mirrorSeq))
				}
				for seq, want := range mirrorSeq {
					if !slices.Equal(scopedSeq[seq], want) {
						t.Fatalf("update %d: scoped %v != mirror %v", seq, scopedSeq[seq], want)
					}
				}
			})
		}
	}
}

// TestScopedMatchesMirrorInterleavedBatches covers the coalesced path: the
// same stream chopped into a random interleaving of Process calls and
// ProcessBatch epochs must merge identically under both policies.
func TestScopedMatchesMirrorInterleavedBatches(t *testing.T) {
	updates := testStream(9, 18, 1200, 0.3)
	run := func(ov Overlap) (map[uint64][]string, []string) {
		se := MustNew(Config{Shards: 3, Engine: testEngineCfg, Overlap: ov, BatchSize: 32})
		defer se.Close()
		var col seqCollector
		se.SetSeqSink(&col)
		rng := rand.New(rand.NewSource(42)) // same chop for both policies
		for i := 0; i < len(updates); {
			if rng.Intn(2) == 0 {
				se.Process(updates[i])
				i++
				continue
			}
			n := 1 + rng.Intn(60)
			if i+n > len(updates) {
				n = len(updates) - i
			}
			se.ProcessBatch(updates[i : i+n])
			i += n
		}
		se.Flush()
		return perSeqKeys(col.snapshot()), se.OutputDenseKeys()
	}
	mirrorSeq, mirrorKeys := run(OverlapMirror)
	scopedSeq, scopedKeys := run(OverlapScoped)
	if !slices.Equal(scopedKeys, mirrorKeys) {
		t.Fatalf("tracked sets diverge: scoped %v != mirror %v", scopedKeys, mirrorKeys)
	}
	if len(scopedSeq) != len(mirrorSeq) {
		t.Fatalf("scoped stream covers %d event-bearing ticks, mirror %d", len(scopedSeq), len(mirrorSeq))
	}
	for seq, want := range mirrorSeq {
		if !slices.Equal(scopedSeq[seq], want) {
			t.Fatalf("tick %d: scoped %v != mirror %v", seq, scopedSeq[seq], want)
		}
	}
}

// TestScopedDeliversLess is the point of the policy: on a workload with real
// skips, scoped delivery must deliver strictly fewer work units than mirror
// while producing the identical output (checked above); mirror must deliver
// everything.
func TestScopedDeliversLess(t *testing.T) {
	updates := testStream(5, 200, 3000, 0.1)
	run := func(ov Overlap) Stats {
		se := MustNew(Config{Shards: 4, Engine: core.Config{T: 4, Nmax: 5}, Overlap: ov})
		defer se.Close()
		se.ProcessAll(updates)
		se.Flush()
		return se.Stats()
	}
	mirror := run(OverlapMirror)
	scoped := run(OverlapScoped)
	if got := mirror.MeanDeliveryFraction(); got != 1.0 {
		t.Fatalf("mirror mean delivery fraction = %v, want 1.0", got)
	}
	if got := scoped.MeanDeliveryFraction(); got >= 0.9 {
		t.Fatalf("scoped mean delivery fraction = %v, want a real reduction", got)
	}
	for _, l := range scoped.Loads {
		if l.Delivered+l.Applied != mirror.Loads[l.Shard].Delivered {
			t.Fatalf("shard %d: delivered+applied = %d does not cover mirror's %d work units",
				l.Shard, l.Delivered+l.Applied, mirror.Loads[l.Shard].Delivered)
		}
	}
}

// FuzzScopedDelivery fuzzes the equivalence: any update stream decoded from
// the fuzz input must produce identical tracked sets and merged streams under
// scoped and mirror delivery. Crashes or divergence are both failures.
func FuzzScopedDelivery(f *testing.F) {
	f.Add([]byte{1, 2, 30, 2, 3, 40, 1, 3, 50, 2, 3, 0x85, 1, 2, 60})
	f.Add([]byte{0, 1, 255, 0, 2, 255, 1, 2, 255, 0, 3, 255, 2, 3, 255, 1, 3, 255})
	f.Add([]byte{9, 9, 10, 4, 5, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var updates []core.Update
		for i := 0; i+2 < len(data); i += 3 {
			delta := float64(data[i+2] & 0x7f)
			if data[i+2]&0x80 != 0 {
				delta = -delta
			}
			updates = append(updates, core.Update{
				A:     core.Vertex(data[i] % 16),
				B:     core.Vertex(data[i+1] % 16),
				Delta: delta / 8,
			})
		}
		if len(updates) == 0 {
			return
		}
		mirrorSeq, mirrorKeys := mergedPerSeq(t, 3, OverlapMirror, 4, updates)
		scopedSeq, scopedKeys := mergedPerSeq(t, 3, OverlapScoped, 4, updates)
		if !slices.Equal(scopedKeys, mirrorKeys) {
			t.Fatalf("tracked sets diverge: scoped %v != mirror %v", scopedKeys, mirrorKeys)
		}
		for seq, want := range mirrorSeq {
			if !slices.Equal(scopedSeq[seq], want) {
				t.Fatalf("update %d: scoped %v != mirror %v", seq, scopedSeq[seq], want)
			}
		}
		for seq := range scopedSeq {
			if _, ok := mirrorSeq[seq]; !ok {
				t.Fatalf("update %d: scoped emitted events mirror did not", seq)
			}
		}
	})
}
