package shard

import (
	"fmt"
	"sort"

	"dyndens/internal/core"
	"dyndens/internal/graph"
)

// This file is the sharded half of crash recovery (internal/persist). A
// sharded deployment's durable state is the shared graph (every replica holds
// the same one), each worker's partition of the dense index, the merger's
// output-dense tracking set, and the sequence counter — everything else
// (interest maps, channels, load counters) is derived or diagnostic and is
// rebuilt on restore.

// State is the persisted state of a quiesced ShardedEngine.
type State struct {
	// NextSeq is the sequence number the next accepted logical tick will get
	// (restored ticks resume exactly where the exported deployment stopped).
	NextSeq uint64
	// Tracked holds the merger's output-dense set keys, sorted.
	Tracked []string
	// Graph is the shared graph replica, stored once: every worker's replica
	// applies the full update stream, so one copy rebuilds all of them.
	Graph graph.State
	// Workers holds each worker engine's index partition, in shard order.
	Workers []core.EngineState
}

// ExportState flushes the deployment and captures its durable state. The
// graph is taken from shard 0's replica (all replicas are identical by
// construction) and stored once; per-worker states carry only each shard's
// index partition and scale.
func (se *ShardedEngine) ExportState() *State {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	se.quiesceLocked()
	st := &State{
		NextSeq: se.nextSeq,
		Graph:   se.workers[0].eng.Graph().ExportState(),
		Workers: make([]core.EngineState, len(se.workers)),
	}
	for i, w := range se.workers {
		st.Workers[i] = w.eng.ExportState()
	}
	se.mu.Lock()
	st.Tracked = make([]string, 0, len(se.tracked))
	for k := range se.tracked {
		st.Tracked = append(st.Tracked, k)
	}
	se.mu.Unlock()
	sort.Strings(st.Tracked)
	return st
}

// applyState restores st into a freshly built deployment. It runs before any
// goroutine starts, so no locking is needed; interest maps re-seed themselves
// through the membership listeners as each worker's index is imported.
func (se *ShardedEngine) applyState(st *State) error {
	if len(st.Workers) != len(se.workers) {
		return fmt.Errorf("shard: restored state has %d workers, deployment has %d", len(st.Workers), len(se.workers))
	}
	if st.NextSeq == 0 {
		return fmt.Errorf("shard: restored next sequence must be ≥ 1")
	}
	for i, w := range se.workers {
		if err := w.eng.ImportState(st.Graph, st.Workers[i]); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	se.nextSeq = st.NextSeq
	se.nextMerge = st.NextSeq
	for _, k := range st.Tracked {
		if se.tracked[k] {
			return fmt.Errorf("shard: restored tracked key %q duplicated", k)
		}
		se.tracked[k] = true
	}
	return nil
}
