// Package shard partitions the DynDens engine across K single-threaded
// workers, scaling the paper's sequential algorithm to multi-core streaming
// while preserving its exact output semantics.
//
// The design exploits two structural properties of the algorithm:
//
//  1. Weight application is O(1) per update, while dense-subgraph maintenance
//     (exploration, index mutation, event emission) dominates the cost.
//  2. Every explicitly indexed subgraph is discovered through a chain that
//     only ever *grows* an already-indexed subgraph, so each chain is rooted
//     at the admission of a base pair {a, b}.
//
// Every worker therefore receives every update and applies it to its own
// graph replica — the overlap policy for cross-shard edges taken to its
// correctness limit, so boundary edges (and all discovery context) are exact
// in every shard — but only the shard that owns the update's canonical
// endpoint seeds the base pair. Discovery work thus partitions across shards
// by pair ownership, while each shard maintains (bumps, evicts, reports) only
// the subgraphs its own chains produced. A sequence-aligned merger collapses
// the per-shard event streams into one deterministic, duplicate-free total
// order identical to the single-engine stream (see ShardedEngine).
package shard

import (
	"fmt"

	"dyndens/internal/graph"
	"dyndens/internal/vset"
)

// Router deterministically assigns vertices — and through their canonical
// endpoints, updates — to shards. The zero value is not usable; call
// NewRouter. Routers are immutable and safe for concurrent use.
type Router struct {
	shards int
}

// NewRouter returns a router over k shards (k ≥ 1).
func NewRouter(k int) (Router, error) {
	if k < 1 {
		return Router{}, fmt.Errorf("shard: shard count must be ≥ 1, got %d", k)
	}
	return Router{shards: k}, nil
}

// Shards returns the number of shards routed over.
func (r Router) Shards() int { return r.shards }

// mix64 is the 64-bit murmur3/splitmix finalizer: a full-avalanche bijection,
// so consecutive vertex identifiers (the common case — entity ids are dense
// small integers) spread uniformly across shards instead of striping.
func mix64(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// Owner returns the shard that owns vertex v. The assignment is a pure
// function of (v, Shards()): stable across runs, processes, and platforms.
func (r Router) Owner(v vset.Vertex) int {
	return int(mix64(uint64(uint32(v))) % uint64(r.shards))
}

// Canonical returns the canonical endpoint of an update: the smaller vertex.
// Both orientations of an edge route identically.
func Canonical(u graph.Update) vset.Vertex {
	if u.B < u.A {
		return u.B
	}
	return u.A
}

// Primary returns the shard that seeds discovery for update u: the owner of
// its canonical endpoint. Repeated updates to the same edge always route to
// the same shard, so a pair's discovery chain has a single consistent owner
// for the lifetime of the stream.
func (r Router) Primary(u graph.Update) int {
	return r.Owner(Canonical(u))
}
