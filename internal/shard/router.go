// Package shard partitions the DynDens engine across K single-threaded
// workers, scaling the paper's sequential algorithm to multi-core streaming
// while preserving its exact output semantics.
//
// The design exploits two structural properties of the algorithm:
//
//  1. Weight application is O(1) per update, while dense-subgraph maintenance
//     (exploration, index mutation, event emission) dominates the cost.
//  2. Every explicitly indexed subgraph is discovered through a chain that
//     only ever *grows* an already-indexed subgraph, so each chain is rooted
//     at the admission of a base pair {a, b}.
//
// Every worker's graph replica applies every weight change — exploration may
// reach up to Nmax−2 hops from any indexed subgraph and star-family edge
// scans are global, so exact boundary context in every shard is what keeps
// cross-shard subgraphs correct — but full processing is *scoped*: only the
// shard that owns the update's canonical endpoint (the designated seeder)
// and the shards whose interest maps subscribe to an endpoint run discovery;
// every other shard takes the O(log deg) ApplyOnly path. A shard's interest
// map (InterestMap) is its owned hash range plus a halo of subscriptions —
// every vertex with a node in the shard's own prefix-tree index, maintained
// incrementally from the index's membership events. While the shard holds an
// ImplicitTooDense family it additionally replays the family's exact
// reaction condition (core.Engine.StarNeedsPositive) against its own replica
// before declining a positive update. Because the subscription check runs on
// the worker against its own live index, interest growth mid-stream (an
// admission subscribing new vertices) takes effect for the very next update
// with no propagation lag. Discovery work thus partitions across shards by
// pair ownership, each shard maintains (bumps, evicts, reports) only the
// subgraphs its own chains produced, and a sequence-aligned merger collapses
// the per-shard event streams into one deterministic, duplicate-free total
// order identical to the single-engine stream (see ShardedEngine). The
// full-broadcast policy remains available as OverlapMirror, the conformance
// reference.
package shard

import (
	"fmt"

	"dyndens/internal/graph"
	"dyndens/internal/vset"
)

// Router deterministically assigns vertices — and through their canonical
// endpoints, updates — to shards. The zero value is not usable; call
// NewRouter. Routers are immutable and safe for concurrent use.
type Router struct {
	shards int
}

// NewRouter returns a router over k shards (k ≥ 1).
func NewRouter(k int) (Router, error) {
	if k < 1 {
		return Router{}, fmt.Errorf("shard: shard count must be ≥ 1, got %d", k)
	}
	return Router{shards: k}, nil
}

// Shards returns the number of shards routed over.
func (r Router) Shards() int { return r.shards }

// mix64 is the 64-bit murmur3/splitmix finalizer: a full-avalanche bijection,
// so consecutive vertex identifiers (the common case — entity ids are dense
// small integers) spread uniformly across shards instead of striping.
func mix64(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// Owner returns the shard that owns vertex v. The assignment is a pure
// function of (v, Shards()): stable across runs, processes, and platforms.
func (r Router) Owner(v vset.Vertex) int {
	return int(mix64(uint64(uint32(v))) % uint64(r.shards))
}

// Canonical returns the canonical endpoint of an update: the smaller vertex.
// Both orientations of an edge route identically.
func Canonical(u graph.Update) vset.Vertex {
	if u.B < u.A {
		return u.B
	}
	return u.A
}

// Primary returns the shard that seeds discovery for update u: the owner of
// its canonical endpoint. Repeated updates to the same edge always route to
// the same shard, so a pair's discovery chain has a single consistent owner
// for the lifetime of the stream.
func (r Router) Primary(u graph.Update) int {
	return r.Owner(Canonical(u))
}
