package shard

import (
	"fmt"

	"dyndens/internal/core"
	"dyndens/internal/graph"
	"dyndens/internal/index"
)

// Overlap selects the delivery policy of a sharded deployment: which workers
// fully process each update, beyond applying its weight change to their graph
// replicas (every replica always applies the full stream — worst-case
// exploration reach is global, so correctness needs exact boundary context).
type Overlap int

const (
	// OverlapScoped (the default) delivers each update for full processing
	// only to the workers that can act on it: the designated seeder, the
	// workers whose interest maps currently subscribe to an endpoint, and —
	// for positive deltas — workers holding an ImplicitTooDense family the
	// edge could extend (core.Engine.StarNeedsPositive). Every other worker
	// takes the cheap ApplyOnly path. Output is bit-identical to OverlapMirror.
	OverlapScoped Overlap = iota
	// OverlapMirror delivers every update to every worker for full
	// processing — the PR-2 broadcast policy, kept as the conformance
	// reference and as the pessimal-delivery baseline for benchmarks.
	OverlapMirror
)

// String implements fmt.Stringer, matching ParseOverlap's accepted spellings.
func (o Overlap) String() string {
	switch o {
	case OverlapScoped:
		return "scoped"
	case OverlapMirror:
		return "mirror"
	default:
		return fmt.Sprintf("Overlap(%d)", int(o))
	}
}

// ParseOverlap parses the CLI spelling of an overlap policy.
func ParseOverlap(s string) (Overlap, error) {
	switch s {
	case "scoped":
		return OverlapScoped, nil
	case "mirror":
		return OverlapMirror, nil
	default:
		return 0, fmt.Errorf("shard: unknown overlap policy %q (want mirror or scoped)", s)
	}
}

// InterestMap is one worker's delivery filter: the hashed vertex range it
// owns (via the Router) plus the halo it currently subscribes to — every
// vertex with at least one node in the worker's own prefix-tree index,
// maintained incrementally from the index's membership events (install
// Observe through core.Engine.SetMembershipListener). Membership of
// index.Star stands for "this worker holds at least one ImplicitTooDense
// family"; it does not blanket-subscribe the worker to positives, but gates
// the exact residual check (core.Engine.StarNeedsPositive) workers run when
// Wants declines a positive update.
//
// The map is consulted and mutated only on its worker's goroutine, so it
// needs no locking; Subscriptions/Churn snapshots are safe whenever the
// deployment is quiescent (Flush/Stats hold the barrier).
type InterestMap struct {
	router Router
	shard  int

	subscribed map[core.Vertex]struct{}
	stars      bool // index.Star subscribed: some ImplicitTooDense family exists

	grows  uint64 // subscriptions gained (first node for a vertex)
	lapses uint64 // subscriptions dropped (last node for a vertex gone)
}

// NewInterestMap returns the interest map of worker shard under router,
// with no subscriptions (matching a fresh engine's empty index).
func NewInterestMap(router Router, shard int) *InterestMap {
	return &InterestMap{
		router:     router,
		shard:      shard,
		subscribed: make(map[core.Vertex]struct{}),
	}
}

// Observe is the index membership listener: it mirrors label-presence
// transitions into the subscription set.
func (m *InterestMap) Observe(v core.Vertex, present bool) {
	if present {
		m.subscribed[v] = struct{}{}
		m.grows++
		if v == index.Star {
			m.stars = true
		}
		return
	}
	delete(m.subscribed, v)
	m.lapses++
	if v == index.Star {
		m.stars = false
	}
}

// Owns reports whether this worker's shard owns vertex v under the router.
func (m *InterestMap) Owns(v core.Vertex) bool { return m.router.Owner(v) == m.shard }

// Subscribed reports whether v is currently in the worker's halo.
func (m *InterestMap) Subscribed(v core.Vertex) bool {
	_, ok := m.subscribed[v]
	return ok
}

// HasStars reports whether the worker currently holds any ImplicitTooDense
// family (equivalently, whether index.Star is subscribed).
func (m *InterestMap) HasStars() bool { return m.stars }

// Wants reports whether update u must be delivered to this worker for full
// processing. It is symmetric in the update's endpoints (orientation
// invariant) and deliberately conservative in exactly the directions the
// engine needs:
//
//   - No-op updates (A == B or Delta == 0) are never wanted: the full path
//     does nothing with them either.
//   - Positive deltas are wanted by the seeder (primary shard) and by any
//     worker whose index touches an endpoint.
//   - Negative deltas only shrink indexed subgraphs containing BOTH
//     endpoints, so both must be subscribed; seeding and stars are
//     irrelevant.
//
// Wants does NOT account for ImplicitTooDense families: a star family whose
// base excludes both endpoints can still absorb a positive update when an
// endpoint was previously disconnected from the base. That residual case is
// exact but needs the graph, so the worker resolves it itself: when Wants is
// false, HasStars is true, and the delta is positive, consult
// core.Engine.StarNeedsPositive before falling back to ApplyOnly.
//
// A worker for which both Wants and that star check are false may process u
// via Engine.ApplyOnly with bit-identical output (see that method for the
// full argument).
func (m *InterestMap) Wants(u graph.Update) bool {
	if u.A == u.B || u.Delta == 0 {
		return false
	}
	if u.Delta > 0 {
		return m.Owns(Canonical(u)) || m.Subscribed(u.A) || m.Subscribed(u.B)
	}
	return m.Subscribed(u.A) && m.Subscribed(u.B)
}

// Subscriptions returns the current number of subscribed labels (counting
// index.Star as one when present).
func (m *InterestMap) Subscriptions() int { return len(m.subscribed) }

// Churn returns the cumulative subscription transitions: grows counts
// first-node arrivals, lapses last-node departures. A vertex that lapses and
// later regrows counts in both.
func (m *InterestMap) Churn() (grows, lapses uint64) { return m.grows, m.lapses }
