package shard

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"dyndens/internal/core"
)

// testStream generates a reproducible random update stream without importing
// internal/stream (which imports this package).
func testStream(seed int64, vertices, n int, negFrac float64) []core.Update {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Update, 0, n)
	for i := 0; i < n; i++ {
		a := core.Vertex(rng.Intn(vertices))
		b := core.Vertex(rng.Intn(vertices))
		for b == a {
			b = core.Vertex(rng.Intn(vertices))
		}
		delta := rng.ExpFloat64() * 1.5
		if rng.Float64() < negFrac {
			delta = -delta
		}
		out = append(out, core.Update{A: a, B: b, Delta: delta})
	}
	return out
}

var testEngineCfg = core.Config{T: 2, Nmax: 4}

// seqCollector records the merged sequence-numbered stream.
type seqCollector struct {
	mu     sync.Mutex
	events []SeqEvent
}

func (c *seqCollector) EmitSeq(ev SeqEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
}

func (c *seqCollector) snapshot() []SeqEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return slices.Clone(c.events)
}

// eventKey is the canonical comparison form of an event.
func eventKey(ev core.Event) string {
	return fmt.Sprintf("%d|%s", ev.Kind, ev.Set.Key())
}

// perSeqKeys groups a merged stream by sequence number into sorted canonical
// keys per update.
func perSeqKeys(events []SeqEvent) map[uint64][]string {
	out := make(map[uint64][]string)
	for _, ev := range events {
		out[ev.Seq] = append(out[ev.Seq], eventKey(ev.Event))
	}
	for _, keys := range out {
		slices.Sort(keys)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Shards: 0, Engine: testEngineCfg}); err == nil {
		t.Error("want error for 0 shards")
	}
	if _, err := New(Config{Shards: 2, Engine: core.Config{T: -1, Nmax: 4}}); err == nil {
		t.Error("want error for invalid engine config")
	}
}

// TestSingleShardMatchesEngine: with K=1 the sharded engine is one core
// engine behind the batching machinery — its merged stream must match the
// plain engine's update for update, and nothing may be deduplicated.
func TestSingleShardMatchesEngine(t *testing.T) {
	updates := testStream(1, 10, 500, 0.3)

	ref := core.MustNew(testEngineCfg)
	wantPerSeq := make(map[uint64][]string)
	for i, u := range updates {
		for _, ev := range ref.Process(u) {
			seq := uint64(i + 1)
			wantPerSeq[seq] = append(wantPerSeq[seq], eventKey(ev))
		}
	}
	for _, keys := range wantPerSeq {
		slices.Sort(keys)
	}

	se := MustNew(Config{Shards: 1, Engine: testEngineCfg, BatchSize: 7})
	defer se.Close()
	var col seqCollector
	se.SetSeqSink(&col)
	se.ProcessAll(updates)
	se.Flush()

	gotPerSeq := perSeqKeys(col.snapshot())
	if len(gotPerSeq) != len(wantPerSeq) {
		t.Fatalf("merged stream covers %d updates with events, reference %d", len(gotPerSeq), len(wantPerSeq))
	}
	for seq, want := range wantPerSeq {
		if !slices.Equal(gotPerSeq[seq], want) {
			t.Fatalf("update %d: merged %v != reference %v", seq, gotPerSeq[seq], want)
		}
	}
	st := se.Stats()
	if st.DedupedEvents != 0 {
		t.Fatalf("K=1 deduplicated %d events, want 0", st.DedupedEvents)
	}
	if st.MergedEvents != ref.Stats().Events {
		t.Fatalf("merged %d events, reference emitted %d", st.MergedEvents, ref.Stats().Events)
	}
	if !slices.Equal(se.OutputDenseKeys(), ref.OutputDenseKeys()) {
		t.Fatalf("tracked set %v != reference %v", se.OutputDenseKeys(), ref.OutputDenseKeys())
	}
}

// TestMergedStreamDeterministic: two runs over the same stream must produce
// byte-identical merged streams (same events, same order, same sequence
// numbers) regardless of goroutine scheduling.
func TestMergedStreamDeterministic(t *testing.T) {
	updates := testStream(2, 12, 600, 0.3)
	run := func(batchSize int) []SeqEvent {
		se := MustNew(Config{Shards: 4, Engine: testEngineCfg, BatchSize: batchSize})
		defer se.Close()
		var col seqCollector
		se.SetSeqSink(&col)
		se.ProcessAll(updates)
		se.Flush()
		return col.snapshot()
	}
	a := run(64)
	b := run(64)
	c := run(17) // different batching must not change the merged stream
	for name, other := range map[string][]SeqEvent{"same-batch": b, "batch=17": c} {
		if len(a) != len(other) {
			t.Fatalf("%s: stream lengths differ: %d vs %d", name, len(a), len(other))
		}
		for i := range a {
			if a[i].Seq != other[i].Seq || eventKey(a[i].Event) != eventKey(other[i].Event) {
				t.Fatalf("%s: streams diverge at %d: seq %d %s vs seq %d %s",
					name, i, a[i].Seq, eventKey(a[i].Event), other[i].Seq, eventKey(other[i].Event))
			}
		}
	}
}

// TestShardedMatchesSingleEngineResultSet: the merged result set across shard
// counts must equal the single engine's explicit output-dense set.
func TestShardedMatchesSingleEngineResultSet(t *testing.T) {
	updates := testStream(3, 10, 500, 0.35)
	ref := core.MustNew(testEngineCfg)
	refEvents := 0
	for _, u := range updates {
		refEvents += len(ref.Process(u))
	}
	want := ref.OutputDenseKeys()
	for _, k := range []int{1, 2, 3, 4, 8} {
		se := MustNew(Config{Shards: k, Engine: testEngineCfg})
		se.ProcessAll(updates)
		got := se.OutputDenseKeys()
		st := se.Stats()
		if !slices.Equal(got, want) {
			t.Errorf("K=%d: tracked set %v != single engine %v", k, got, want)
		}
		if int(st.MergedEvents) != refEvents {
			t.Errorf("K=%d: merged %d events, single engine emitted %d (deduped=%d)",
				k, st.MergedEvents, refEvents, st.DedupedEvents)
		}
		se.Close()
	}
}

func TestCloseIdempotentAndFlushEmpty(t *testing.T) {
	se := MustNew(Config{Shards: 2, Engine: testEngineCfg})
	se.Flush() // no updates: must not hang
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessAfterClosePanics(t *testing.T) {
	se := MustNew(Config{Shards: 2, Engine: testEngineCfg})
	se.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Process after Close did not panic")
		}
	}()
	se.Process(core.Update{A: 1, B: 2, Delta: 1})
}

// TestStatsAggregation pins the delivery accounting contract of both overlap
// policies. Under mirror delivery every shard fully processes the full
// stream; under scoped delivery each shard's Delivered+Applied covers the
// full stream (every replica applies every weight change) while Delivered
// alone is its share of the discovery work, at least the updates it seeds.
func TestStatsAggregation(t *testing.T) {
	updates := testStream(4, 10, 250, 0.25)
	const k = 3

	t.Run("mirror", func(t *testing.T) {
		se := MustNew(Config{Shards: k, Engine: testEngineCfg, Overlap: OverlapMirror})
		defer se.Close()
		se.ProcessAll(updates)
		st := se.Stats()
		if len(st.PerShard) != k || len(st.Loads) != k {
			t.Fatalf("per-shard slices sized %d/%d, want %d", len(st.PerShard), len(st.Loads), k)
		}
		if st.Overlap != OverlapMirror {
			t.Errorf("stats report overlap %v, want mirror", st.Overlap)
		}
		if st.Accepted != uint64(len(updates)) {
			t.Errorf("accepted %d updates, want %d", st.Accepted, len(updates))
		}
		for i, ps := range st.PerShard {
			if ps.Updates != uint64(len(updates)) {
				t.Errorf("shard %d processed %d updates, want %d", i, ps.Updates, len(updates))
			}
			if ps.AppliedOnly != 0 {
				t.Errorf("shard %d took the ApplyOnly path %d times under mirror", i, ps.AppliedOnly)
			}
			l := st.Loads[i]
			if l.Delivered != uint64(len(updates)) || l.Applied != 0 {
				t.Errorf("shard %d load delivered=%d applied=%d, want %d/0", i, l.Delivered, l.Applied, len(updates))
			}
			if f := l.DeliveryFraction(); f != 1 {
				t.Errorf("shard %d delivery fraction %v, want 1 under mirror", i, f)
			}
		}
		if st.Aggregate.Updates != uint64(k*len(updates)) {
			t.Errorf("aggregate updates = %d, want %d", st.Aggregate.Updates, k*len(updates))
		}
		if se.Updates() != uint64(len(updates)) {
			t.Errorf("Updates() = %d, want %d", se.Updates(), len(updates))
		}
		var rawTotal uint64
		for _, l := range st.Loads {
			rawTotal += l.RawEvents
		}
		if rawTotal != st.MergedEvents+st.DedupedEvents {
			t.Errorf("raw events %d != merged %d + deduped %d", rawTotal, st.MergedEvents, st.DedupedEvents)
		}
	})

	t.Run("scoped", func(t *testing.T) {
		se := MustNew(Config{Shards: k, Engine: testEngineCfg}) // scoped is the default
		defer se.Close()
		se.ProcessAll(updates)
		st := se.Stats()
		if st.Overlap != OverlapScoped {
			t.Errorf("stats report overlap %v, want scoped", st.Overlap)
		}
		var deliveredTotal uint64
		for i, l := range st.Loads {
			if l.Delivered+l.Applied != uint64(len(updates)) {
				t.Errorf("shard %d delivered=%d applied=%d, sum want %d", i, l.Delivered, l.Applied, len(updates))
			}
			ps := st.PerShard[i]
			if ps.Updates != l.Delivered || ps.AppliedOnly != l.Applied {
				t.Errorf("shard %d engine counters updates=%d appliedOnly=%d disagree with load %d/%d",
					i, ps.Updates, ps.AppliedOnly, l.Delivered, l.Applied)
			}
			deliveredTotal += l.Delivered
		}
		// Every update is delivered at least to its seeder, never more than
		// K-wide; a fixture this dense must also actually skip something.
		if deliveredTotal < uint64(len(updates)) {
			t.Errorf("delivered total %d < stream length %d (some update had no seeder)", deliveredTotal, len(updates))
		}
		if st.Aggregate.AppliedOnly == 0 {
			t.Error("scoped run skipped nothing; fixture too weak to exercise scoping")
		}
		if f := st.MeanDeliveryFraction(); f <= 0 || f > 1 {
			t.Errorf("mean delivery fraction %v out of (0, 1]", f)
		}
		var rawTotal uint64
		for _, l := range st.Loads {
			rawTotal += l.RawEvents
		}
		if rawTotal != st.MergedEvents+st.DedupedEvents {
			t.Errorf("raw events %d != merged %d + deduped %d", rawTotal, st.MergedEvents, st.DedupedEvents)
		}
	})
}

// TestConcurrentObservers exercises Flush/Stats/queries from other goroutines
// while the producer feeds updates; run under -race this validates the
// engine's internal synchronisation.
func TestConcurrentObservers(t *testing.T) {
	updates := testStream(5, 10, 400, 0.3)
	se := MustNew(Config{Shards: 4, Engine: testEngineCfg, BatchSize: 16})
	defer se.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = se.Stats()
				_ = se.OutputDenseKeys()
				se.Flush()
			}
		}()
	}
	se.ProcessAll(updates)
	close(stop)
	wg.Wait()
	se.Flush()
	if got := se.Updates(); got != uint64(len(updates)) {
		t.Fatalf("Updates() = %d, want %d", got, len(updates))
	}
}

// batchPartition splits a stream into random batches (sizes 0–8, empty
// batches included) with a seeded rng.
func batchPartition(seed int64, updates []core.Update) [][]core.Update {
	rng := rand.New(rand.NewSource(seed))
	var batches [][]core.Update
	for pos := 0; pos <= len(updates); {
		n := rng.Intn(9)
		if pos+n > len(updates) {
			n = len(updates) - pos
		}
		batches = append(batches, updates[pos:pos+n])
		pos += n
		if n == 0 && pos == len(updates) {
			break
		}
	}
	return batches
}

// TestProcessBatchMatchesSingleBatchedEngine: whole-epoch shipping must make
// the merged per-tick event stream identical to a single engine fed the same
// coalesced batches — one sequence number per batch, net events canonically
// deduplicated, result set equal — at K ∈ {1, 2, 4}.
func TestProcessBatchMatchesSingleBatchedEngine(t *testing.T) {
	updates := testStream(6, 10, 600, 0.35)
	batches := batchPartition(61, updates)

	ref := core.MustNew(testEngineCfg)
	wantPerSeq := make(map[uint64][]string)
	refEvents := 0
	for i, b := range batches {
		evs := ref.ProcessBatch(b)
		refEvents += len(evs)
		for _, ev := range evs {
			seq := uint64(i + 1)
			wantPerSeq[seq] = append(wantPerSeq[seq], eventKey(ev))
		}
	}
	for _, keys := range wantPerSeq {
		slices.Sort(keys)
	}
	if refEvents == 0 {
		t.Fatal("batched reference emitted no events; fixture too weak")
	}

	for _, k := range []int{1, 2, 4} {
		se := MustNew(Config{Shards: k, Engine: testEngineCfg})
		var col seqCollector
		se.SetSeqSink(&col)
		for _, b := range batches {
			se.ProcessBatch(b)
		}
		se.Flush()
		gotPerSeq := perSeqKeys(col.snapshot())
		if len(gotPerSeq) != len(wantPerSeq) {
			t.Fatalf("K=%d: merged stream covers %d ticks with events, reference %d", k, len(gotPerSeq), len(wantPerSeq))
		}
		for seq, want := range wantPerSeq {
			if !slices.Equal(gotPerSeq[seq], want) {
				t.Fatalf("K=%d tick %d: merged %v != reference %v", k, seq, gotPerSeq[seq], want)
			}
		}
		if !slices.Equal(se.OutputDenseKeys(), ref.OutputDenseKeys()) {
			t.Fatalf("K=%d: tracked set %v != reference %v", k, se.OutputDenseKeys(), ref.OutputDenseKeys())
		}
		st := se.Stats()
		if int(st.MergedEvents) != refEvents {
			t.Fatalf("K=%d: merged %d events, reference emitted %d", k, st.MergedEvents, refEvents)
		}
		if k == 1 && st.DedupedEvents != 0 {
			t.Fatalf("K=1 deduplicated %d events", st.DedupedEvents)
		}
		if se.Updates() != uint64(len(updates)) {
			t.Fatalf("K=%d: Updates() = %d, want %d", k, se.Updates(), len(updates))
		}
		se.Close()
	}
}

// TestProcessBatchInterleavesWithProcess: mixing per-update Process calls and
// coalesced batches must keep sequence numbers and the result set coherent
// (staged micro-batches are dispatched before the coalesced batch).
func TestProcessBatchInterleavesWithProcess(t *testing.T) {
	updates := testStream(7, 10, 300, 0.3)
	ref := core.MustNew(testEngineCfg)
	se := MustNew(Config{Shards: 2, Engine: testEngineCfg, BatchSize: 16})
	defer se.Close()

	for pos := 0; pos < len(updates); {
		if (pos/25)%2 == 0 { // alternate runs of per-update and batched feeding
			end := min(pos+25, len(updates))
			for _, u := range updates[pos:end] {
				ref.Process(u)
				se.Process(u)
			}
			pos = end
		} else {
			end := min(pos+25, len(updates))
			ref.ProcessBatch(updates[pos:end])
			se.ProcessBatch(updates[pos:end])
			pos = end
		}
	}
	se.ProcessBatch(nil) // trailing empty tick must be harmless
	ref.ProcessBatch(nil)
	if !slices.Equal(se.OutputDenseKeys(), ref.OutputDenseKeys()) {
		t.Fatalf("mixed feeding diverged: %v != %v", se.OutputDenseKeys(), ref.OutputDenseKeys())
	}
	if se.Updates() != uint64(len(updates)) {
		t.Fatalf("Updates() = %d, want %d", se.Updates(), len(updates))
	}
}
