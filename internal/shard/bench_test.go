package shard

import (
	"fmt"
	"testing"

	"dyndens/internal/core"
)

// benchStream approximates the repo's standard CLI bench workload (500
// vertices, uniform endpoints, 10% negative) at a size that keeps -bench
// iterations fast while still building a realistic index.
func benchStream(n int) []core.Update {
	return testStream(1, 500, n, 0.1)
}

var benchEngineCfg = core.Config{T: 3, Nmax: 5}

// BenchmarkShardedDelivery measures end-to-end sharded throughput (dispatch →
// workers → merge barrier) for both delivery policies. The interesting ratio
// on any machine — single-core CI included — is scoped vs mirror at equal K:
// it isolates the duplicated-work reduction from core-count effects.
func BenchmarkShardedDelivery(b *testing.B) {
	updates := benchStream(10000)
	for _, k := range []int{2, 4} {
		for _, ov := range []Overlap{OverlapScoped, OverlapMirror} {
			b.Run(fmt.Sprintf("K=%d/%s", k, ov), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					se := MustNew(Config{Shards: k, Engine: benchEngineCfg, Overlap: ov})
					se.ProcessAll(updates)
					se.Flush()
					se.Close()
				}
			})
		}
	}
}

// BenchmarkSingleEngine is the unsharded reference for the same stream.
func BenchmarkSingleEngine(b *testing.B) {
	updates := benchStream(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := core.MustNew(benchEngineCfg)
		eng.SetSink(core.EventSinkFunc(func(core.Event) {}))
		for _, u := range updates {
			eng.Process(u)
		}
	}
}
