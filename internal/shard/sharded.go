package shard

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dyndens/internal/core"
	"dyndens/internal/graph"
)

// Config configures a ShardedEngine.
type Config struct {
	// Shards is the number of single-threaded workers K; must be ≥ 1.
	Shards int
	// Engine configures every worker's embedded core.Engine.
	Engine core.Config
	// BatchSize is the number of updates broadcast to the workers per batch.
	// Larger batches amortise channel traffic; smaller ones reduce merge
	// latency. Defaults to 128.
	BatchSize int
	// QueueDepth is the number of batches buffered per worker, bounding how
	// far fast shards can run ahead of the slowest one (chain ownership is
	// skewed, so runway absorbs per-shard load bursts). Defaults to 32.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	return c
}

// SeqEvent is one merged output event tagged with the 1-based global sequence
// number of the update that produced it.
type SeqEvent struct {
	Seq   uint64
	Event core.Event
}

// SeqSink receives the merged, sequence-numbered event stream. Like
// core.EventSink, implementations must not call back into the engine; they
// are invoked from the merge goroutine.
type SeqSink interface {
	EmitSeq(ev SeqEvent)
}

// SeqSinkFunc adapts a plain function to the SeqSink interface.
type SeqSinkFunc func(ev SeqEvent)

// EmitSeq implements SeqSink.
func (f SeqSinkFunc) EmitSeq(ev SeqEvent) { f(ev) }

// ShardLoad summarises the work one shard performed.
type ShardLoad struct {
	Shard     int
	Updates   uint64        // updates the worker processed (every shard sees the full stream)
	Batches   uint64        // batches the worker processed
	Busy      time.Duration // wall time spent inside Engine.ProcessRouted
	RawEvents uint64        // events the worker emitted before merge dedup
}

// Stats aggregates the sharded deployment's work counters.
type Stats struct {
	// Aggregate is the sum of the per-shard engine counters. Updates counts
	// every (update, shard) application — K× the stream length — and index
	// gauges sum worker index sizes, so duplicated holdings across shards
	// show up as Aggregate.IndexedDense exceeding a single engine's.
	Aggregate core.Stats
	// PerShard holds each worker engine's own counters.
	PerShard []core.Stats
	// Loads holds the per-shard throughput accounting.
	Loads []ShardLoad
	// MergedEvents counts events forwarded downstream after deduplication;
	// this matches the single-engine event count on the same stream.
	MergedEvents uint64
	// DedupedEvents counts duplicate events dropped at the merge barrier
	// (the same subgraph transition discovered by more than one shard).
	DedupedEvents uint64
}

// batch is one broadcast unit: a contiguous run of the update stream, or —
// when coalesced — one whole epoch-style batch that every worker applies via
// ProcessBatchRouted and the merger sequences as a single logical tick.
type batch struct {
	firstSeq  uint64
	updates   []core.Update
	coalesced bool
}

// workerResult carries one shard's per-tick events for one batch: one entry
// per update for micro-batches, a single netted entry for coalesced batches.
type workerResult struct {
	shard    int
	firstSeq uint64
	updates  int // updates processed (== len(events) unless coalesced)
	events   [][]core.Event
	busy     time.Duration
}

type worker struct {
	id   int
	eng  *core.Engine
	in   chan batch
	seed func(a, b core.Vertex) bool // per-pair seeding for coalesced batches
}

// ShardedEngine partitions DynDens across K single-threaded core.Engine
// workers and merges their event streams into one deterministic,
// sequence-numbered total order that matches the single-engine stream on the
// same updates.
//
// Every worker receives every update (keeping each graph replica exact, so
// dense subgraphs that span shard boundaries stay correct for any cardinality
// ≤ Nmax); the router designates one shard per update — the owner of its
// canonical endpoint — as the discovery seeder. Because discovery chains only
// ever grow already-indexed subgraphs, the expensive exploration and index
// maintenance partitions across shards by chain ownership, while the same
// subgraph reached from differently-owned roots is collapsed by the merger's
// output-dense tracking set.
//
// Process/ProcessAll are asynchronous and must be called from a single
// producer goroutine; Flush, Close, Stats, and the query methods may be
// called from any goroutine and block until all accepted updates are merged.
//
// Locking: produceMu serialises producers and flushers — it owns the staging
// batch and the exclusive right to send on the worker channels — while mu
// owns the merge-side state (issued/merged barrier, tracked set, loads). No
// goroutine ever blocks on a channel while holding mu, so the merger can
// always drain worker results; that invariant is what makes the pipeline
// deadlock-free under backpressure.
type ShardedEngine struct {
	cfg     Config
	router  Router
	workers []*worker
	results chan workerResult

	// Producer state.
	produceMu sync.Mutex
	cur       batch
	nextSeq   uint64 // sequence number the next accepted logical tick will get
	accepted  uint64 // updates accepted (a coalesced batch counts its length)
	closed    bool

	// Merge-barrier and merge state.
	mu     sync.Mutex
	cond   *sync.Cond
	issued uint64 // batches dispatched
	merged uint64 // batches merged

	sink      core.EventSink
	seqSink   SeqSink
	tracked   map[string]bool // currently output-dense set keys, post-merge
	pending   map[uint64][]workerResult
	nextMerge uint64 // firstSeq of the next batch to merge
	mergedEv  uint64
	dedupedEv uint64
	loads     []ShardLoad

	workerWG sync.WaitGroup
	mergerWG sync.WaitGroup
}

// New creates a sharded engine and starts its worker and merger goroutines.
// The engine must be Closed to release them.
func New(cfg Config) (*ShardedEngine, error) {
	cfg = cfg.withDefaults()
	router, err := NewRouter(cfg.Shards)
	if err != nil {
		return nil, err
	}
	se := &ShardedEngine{
		cfg:       cfg,
		router:    router,
		results:   make(chan workerResult, cfg.Shards*2),
		nextSeq:   1,
		nextMerge: 1,
		tracked:   make(map[string]bool),
		pending:   make(map[uint64][]workerResult),
		loads:     make([]ShardLoad, cfg.Shards),
	}
	se.cond = sync.NewCond(&se.mu)
	for i := 0; i < cfg.Shards; i++ {
		se.loads[i].Shard = i
		eng, err := core.New(cfg.Engine)
		if err != nil {
			return nil, err
		}
		id := i
		se.workers = append(se.workers, &worker{
			id:  i,
			eng: eng,
			in:  make(chan batch, cfg.QueueDepth),
			// Per-pair seeding mirrors Router.Primary: the owner of the
			// canonical (smaller) endpoint seeds the pair's discovery chain.
			seed: func(a, b core.Vertex) bool {
				if b < a {
					a = b
				}
				return router.Owner(a) == id
			},
		})
	}
	for _, w := range se.workers {
		se.workerWG.Add(1)
		go se.runWorker(w)
	}
	se.mergerWG.Add(1)
	go se.runMerger()
	return se, nil
}

// MustNew is New that panics on error; intended for tests and examples.
func MustNew(cfg Config) *ShardedEngine {
	se, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return se
}

// Config returns the effective configuration (with defaults applied).
func (se *ShardedEngine) Config() Config { return se.cfg }

// Router returns the vertex→shard router.
func (se *ShardedEngine) Router() Router { return se.router }

// SetSink installs the destination for the merged event stream. It must be
// called before the first Process. The sink observes the deduplicated events
// in the deterministic merged order; it is invoked from the merge goroutine
// and must not call back into the engine.
func (se *ShardedEngine) SetSink(s core.EventSink) {
	se.mu.Lock()
	defer se.mu.Unlock()
	se.sink = s
}

// SetSeqSink installs a sequence-aware sink; it may be combined with SetSink.
// Like SetSink it must be called before the first Process.
func (se *ShardedEngine) SetSeqSink(s SeqSink) {
	se.mu.Lock()
	defer se.mu.Unlock()
	se.seqSink = s
}

// Process accepts one update for asynchronous processing. Events reach the
// installed sinks after the update's batch clears the merge barrier; call
// Flush to force and await completion. Process must not be called after
// Close, and is single-producer: concurrent Process calls are not allowed
// (concurrent Flush/Stats/queries are).
func (se *ShardedEngine) Process(u core.Update) {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	if se.closed {
		panic("shard: Process called after Close")
	}
	if se.cur.updates == nil {
		se.cur = batch{firstSeq: se.nextSeq, updates: make([]core.Update, 0, se.cfg.BatchSize)}
	}
	se.cur.updates = append(se.cur.updates, u)
	se.nextSeq++
	se.accepted++
	if len(se.cur.updates) >= se.cfg.BatchSize {
		se.sendLocked()
	}
}

// ProcessBatch accepts a whole batch of updates as ONE logical tick: every
// worker applies it through core.Engine.ProcessBatchRouted (seeding only the
// pairs it owns) and the merger sequences the combined net events under a
// single sequence number — so an epoch's decay burst crosses the worker
// channels and the merge barrier once, not once per pair. Any micro-batched
// Process updates staged so far are dispatched first, preserving stream
// order. Like Process it is asynchronous and single-producer; an empty batch
// still consumes a sequence number (a no-op tick), keeping downstream
// boundary accounting aligned with the single-engine batch mode.
func (se *ShardedEngine) ProcessBatch(updates []core.Update) {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	if se.closed {
		panic("shard: ProcessBatch called after Close")
	}
	se.sendLocked()
	b := batch{
		firstSeq:  se.nextSeq,
		updates:   append([]core.Update(nil), updates...),
		coalesced: true,
	}
	se.nextSeq++ // one sequence number for the whole batch
	se.accepted += uint64(len(updates))
	se.mu.Lock()
	se.issued++
	se.mu.Unlock()
	for _, w := range se.workers {
		w.in <- b
	}
}

// ProcessAll accepts a sequence of updates; the slice may be reused by the
// caller as soon as ProcessAll returns.
func (se *ShardedEngine) ProcessAll(updates []core.Update) {
	for _, u := range updates {
		se.Process(u)
	}
}

// sendLocked broadcasts the staged batch to every worker. It requires
// produceMu (never mu): the sends may block on worker backpressure, and the
// merger must stay free to drain results in the meantime.
func (se *ShardedEngine) sendLocked() {
	if len(se.cur.updates) == 0 {
		return
	}
	b := se.cur
	se.cur = batch{}
	se.mu.Lock()
	se.issued++
	se.mu.Unlock()
	for _, w := range se.workers {
		w.in <- b
	}
}

// quiesceLocked dispatches any partial batch and waits until every issued
// batch has been merged. It requires produceMu, which also excludes new
// dispatches: when it returns, all workers are idle and their state is safe
// to read until produceMu is released.
func (se *ShardedEngine) quiesceLocked() {
	se.sendLocked()
	se.mu.Lock()
	for se.merged != se.issued {
		se.cond.Wait()
	}
	se.mu.Unlock()
}

// Flush dispatches any partially filled batch and blocks until every accepted
// update has been processed by all shards and merged downstream.
func (se *ShardedEngine) Flush() {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	se.quiesceLocked()
}

// Close flushes outstanding work and stops the worker and merger goroutines.
// It is idempotent; Process must not be called afterwards.
func (se *ShardedEngine) Close() error {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	if se.closed {
		return nil
	}
	se.quiesceLocked()
	se.closed = true
	for _, w := range se.workers {
		close(w.in)
	}
	se.workerWG.Wait()
	close(se.results)
	se.mergerWG.Wait()
	return nil
}

// Updates returns the number of updates accepted so far (the updates inside
// coalesced batches count individually, though each batch holds one sequence
// number).
func (se *ShardedEngine) Updates() uint64 {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	return se.accepted
}

// Stats flushes and returns the deployment-wide statistics. The per-engine
// reads are safe: after the quiesce barrier every worker is idle, all its
// writes happen-before the merger's barrier signal, and produceMu excludes
// new dispatches until Stats returns.
func (se *ShardedEngine) Stats() Stats {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	se.quiesceLocked()
	se.mu.Lock()
	out := Stats{
		PerShard:      make([]core.Stats, len(se.workers)),
		Loads:         append([]ShardLoad(nil), se.loads...),
		MergedEvents:  se.mergedEv,
		DedupedEvents: se.dedupedEv,
	}
	se.mu.Unlock()
	for i, w := range se.workers {
		ps := w.eng.Stats()
		out.PerShard[i] = ps
		out.Aggregate.Add(ps)
	}
	return out
}

// OutputDenseKeys flushes and returns the canonical set keys of the merged
// output-dense result set — the view a downstream consumer of the merged
// event stream holds — sorted lexicographically.
func (se *ShardedEngine) OutputDenseKeys() []string {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	se.quiesceLocked()
	se.mu.Lock()
	defer se.mu.Unlock()
	keys := make([]string, 0, len(se.tracked))
	for k := range se.tracked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// OutputDenseCount flushes and returns the size of the merged output-dense
// result set.
func (se *ShardedEngine) OutputDenseCount() int {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	se.quiesceLocked()
	se.mu.Lock()
	defer se.mu.Unlock()
	return len(se.tracked)
}

// Graph flushes and returns shard 0's graph replica. Every replica applies
// the full update stream, so any one of them is the exact current graph; the
// returned graph must only be read before the next Process call.
func (se *ShardedEngine) Graph() *graph.Graph {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	se.quiesceLocked()
	return se.workers[0].eng.Graph()
}

func (se *ShardedEngine) runWorker(w *worker) {
	defer se.workerWG.Done()
	for b := range w.in {
		start := time.Now()
		// Workers run their engines in slice mode: the per-tick event
		// slices cross the results channel to the merge goroutine, so the
		// sets must be private copies — the engine's CollectorSink declares
		// RetainsSets and the engine clones each emitted set out of its
		// scratch. Everything else (neighbourhood merges, candidate sets,
		// index snapshots) stays in the worker engine's own reusable
		// buffers, so each shard inherits the allocation-free exploration
		// path.
		var per [][]core.Event
		if b.coalesced {
			// Whole-epoch shipping: the batch is one logical tick, so the
			// netted events land under a single sequence slot.
			per = [][]core.Event{w.eng.ProcessBatchRouted(b.updates, w.seed)}
		} else {
			per = make([][]core.Event, len(b.updates))
			for i, u := range b.updates {
				per[i] = w.eng.ProcessRouted(u, se.router.Primary(u) == w.id)
			}
		}
		se.results <- workerResult{
			shard:    w.id,
			firstSeq: b.firstSeq,
			updates:  len(b.updates),
			events:   per,
			busy:     time.Since(start),
		}
	}
}

// runMerger aligns the per-shard result streams batch by batch and merges
// them in stream order into the sinks. The merger acquires only mu, and no
// mu holder ever blocks on a channel, so the drain always makes progress.
func (se *ShardedEngine) runMerger() {
	defer se.mergerWG.Done()
	for res := range se.results {
		se.mu.Lock()
		se.pending[res.firstSeq] = append(se.pending[res.firstSeq], res)
		for {
			ready := se.pending[se.nextMerge]
			if len(ready) != len(se.workers) {
				break
			}
			delete(se.pending, se.nextMerge)
			se.mergeLocked(ready)
			se.nextMerge += uint64(len(ready[0].events))
			se.merged++
			se.cond.Broadcast()
		}
		se.mu.Unlock()
	}
}

// mergeLocked merges one batch: for each logical tick (update, or whole
// coalesced batch), the events of all shards are collected, canonically
// ordered, and deduplicated against the tracked output-dense set, so the same
// subgraph transition discovered by several shards is forwarded exactly once.
// Within one tick all events for a given subgraph share a kind — for plain
// updates because positive updates only emit Became and negative only Ceased;
// for coalesced batches because each worker nets its transitions against the
// shared final graph state and final-score eviction forbids an evict-readmit
// flap inside one batch — which makes the dedup outcome independent of shard
// arrival order.
func (se *ShardedEngine) mergeLocked(ready []workerResult) {
	firstSeq := ready[0].firstSeq
	n := len(ready[0].events)
	for _, res := range ready {
		load := &se.loads[res.shard]
		load.Batches++
		load.Busy += res.busy
		load.Updates += uint64(res.updates)
		for _, evs := range res.events {
			load.RawEvents += uint64(len(evs))
		}
	}
	var buf []core.Event
	for i := 0; i < n; i++ {
		seq := firstSeq + uint64(i)
		buf = buf[:0]
		for _, res := range ready {
			buf = append(buf, res.events[i]...)
		}
		if len(buf) == 0 {
			continue
		}
		sort.Slice(buf, func(a, b int) bool {
			if buf[a].Kind != buf[b].Kind {
				return buf[a].Kind < buf[b].Kind
			}
			return buf[a].Set.Key() < buf[b].Set.Key()
		})
		for _, ev := range buf {
			k := ev.Set.Key()
			switch ev.Kind {
			case core.BecameOutputDense:
				if se.tracked[k] {
					se.dedupedEv++
					continue
				}
				se.tracked[k] = true
			case core.CeasedOutputDense:
				if !se.tracked[k] {
					se.dedupedEv++
					continue
				}
				delete(se.tracked, k)
			}
			se.mergedEv++
			if se.sink != nil {
				se.sink.Emit(ev)
			}
			if se.seqSink != nil {
				se.seqSink.EmitSeq(SeqEvent{Seq: seq, Event: ev})
			}
		}
	}
}

// String summarises the deployment.
func (se *ShardedEngine) String() string {
	return fmt.Sprintf("sharded{shards=%d batch=%d}", se.cfg.Shards, se.cfg.BatchSize)
}
