package shard

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"dyndens/internal/core"
	"dyndens/internal/graph"
)

// Config configures a ShardedEngine.
type Config struct {
	// Shards is the number of single-threaded workers K; must be ≥ 1.
	Shards int
	// Engine configures every worker's embedded core.Engine.
	Engine core.Config
	// Overlap selects the delivery policy. The zero value is OverlapScoped:
	// each update is fully processed only by the workers whose interest maps
	// want it, the rest take the ApplyOnly path. OverlapMirror restores the
	// full broadcast; both produce bit-identical output.
	Overlap Overlap
	// BatchSize is the number of updates broadcast to the workers per batch.
	// Larger batches amortise channel traffic; smaller ones reduce merge
	// latency. Defaults to 128.
	BatchSize int
	// QueueDepth is the number of batches buffered per worker, bounding how
	// far fast shards can run ahead of the slowest one (chain ownership is
	// skewed, so runway absorbs per-shard load bursts). Defaults to 32.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	return c
}

// SeqEvent is one merged output event tagged with the 1-based global sequence
// number of the update that produced it.
type SeqEvent struct {
	Seq   uint64
	Event core.Event
}

// SeqSink receives the merged, sequence-numbered event stream. Like
// core.EventSink, implementations must not call back into the engine; they
// are invoked from the merge goroutine.
type SeqSink interface {
	EmitSeq(ev SeqEvent)
}

// SeqSinkFunc adapts a plain function to the SeqSink interface.
type SeqSinkFunc func(ev SeqEvent)

// EmitSeq implements SeqSink.
func (f SeqSinkFunc) EmitSeq(ev SeqEvent) { f(ev) }

// ShardLoad summarises the work one shard performed. Delivered and Applied
// partition the shard's discovery work units: stream updates in per-update
// delivery, coalesced positive pairs in batch delivery. Delivered units ran
// the full discovery/maintenance path; Applied units were provably inert for
// this shard and only updated its graph replica (scoped delivery). Under
// OverlapMirror every unit is Delivered; under OverlapScoped
// Delivered+Applied still covers the full stream — every replica applies
// every weight change — but Delivered alone measures the shard's share of
// the expensive work.
type ShardLoad struct {
	Shard     int
	Delivered uint64        // work units fully processed on this shard
	Applied   uint64        // work units taken on the ApplyOnly / skip path
	Batches   uint64        // dispatch batches the worker processed
	Busy      time.Duration // wall time spent inside the worker engine
	RawEvents uint64        // events the worker emitted before merge dedup
}

// DeliveryFraction returns Delivered / (Delivered + Applied): the fraction
// of this shard's discovery work units that needed full processing. Mirror
// delivery pins it at 1; scoped delivery drives it toward 1/K plus the
// shard's interest overlap.
func (l ShardLoad) DeliveryFraction() float64 {
	total := l.Delivered + l.Applied
	if total == 0 {
		return 0
	}
	return float64(l.Delivered) / float64(total)
}

// Stats aggregates the sharded deployment's work counters.
type Stats struct {
	// Overlap is the delivery policy the deployment ran under.
	Overlap Overlap
	// Accepted counts stream updates accepted by the deployment (updates
	// inside coalesced batches count individually).
	Accepted uint64
	// Aggregate is the sum of the per-shard engine counters. Under mirror
	// delivery Updates counts every (update, shard) application — K× the
	// stream length — while under scoped delivery each worker's Updates
	// counts only the updates delivered to it (its AppliedOnly counter holds
	// the rest). Index gauges sum worker index sizes, so duplicated holdings
	// across shards show up as Aggregate.IndexedDense exceeding a single
	// engine's.
	Aggregate core.Stats
	// PerShard holds each worker engine's own counters.
	PerShard []core.Stats
	// Loads holds the per-shard delivery and throughput accounting.
	Loads []ShardLoad
	// MergedEvents counts events forwarded downstream after deduplication;
	// this matches the single-engine event count on the same stream.
	MergedEvents uint64
	// DedupedEvents counts duplicate events dropped at the merge barrier
	// (the same subgraph transition discovered by more than one shard).
	DedupedEvents uint64
}

// MeanDeliveryFraction returns the mean per-shard DeliveryFraction — the
// headline scoped-delivery number: 1.0 under mirror, ideally approaching 1/K
// plus the measured interest overlap under scoped delivery.
func (s Stats) MeanDeliveryFraction() float64 {
	if len(s.Loads) == 0 {
		return 0
	}
	var sum float64
	for _, l := range s.Loads {
		sum += l.DeliveryFraction()
	}
	return sum / float64(len(s.Loads))
}

// batch is one broadcast unit: a contiguous run of the update stream, or —
// when coalesced — one whole epoch-style batch that every worker applies via
// ProcessBatchRouted and the merger sequences as a single logical tick.
type batch struct {
	firstSeq  uint64
	updates   []core.Update
	coalesced bool
	threshold bool    // rescaled-decay epoch unit (implies coalesced handling)
	scale     float64 // cumulative decay scale λ when threshold is set
}

// tickEvents is one non-empty logical tick of a worker's batch result: off is
// the tick's offset from the batch's firstSeq.
type tickEvents struct {
	off int
	evs []core.Event
}

// workerResult carries one shard's events for one batch, sparsely: only ticks
// that produced events appear, in ascending offset order (one offset per
// update for micro-batches, offset 0 only for coalesced batches). ticks is
// the number of sequence slots the batch spans regardless of sparsity, which
// is what advances the merge barrier. delivered/applied carry the shard's
// scoped-delivery accounting for the batch (see ShardLoad).
type workerResult struct {
	shard     int
	firstSeq  uint64
	ticks     int
	delivered uint64
	applied   uint64
	events    []tickEvents
	busy      time.Duration
}

type worker struct {
	id       int
	eng      *core.Engine
	in       chan batch
	seed     func(a, b core.Vertex) bool // per-pair seeding for coalesced batches
	interest *InterestMap                // delivery filter, fed by the engine's index
	scoped   bool                        // Overlap == OverlapScoped
}

// ShardedEngine partitions DynDens across K single-threaded core.Engine
// workers and merges their event streams into one deterministic,
// sequence-numbered total order that matches the single-engine stream on the
// same updates.
//
// Every worker's graph replica applies every weight change (dense subgraphs
// that span shard boundaries stay exact for any cardinality ≤ Nmax), but
// under the default scoped overlap policy an update is *fully processed* only
// by the workers whose interest maps want it — the designated seeder (owner
// of the canonical endpoint), subscribers whose indexes touch an endpoint,
// and star-family holders whose replica-local StarNeedsPositive check fires;
// everyone else takes the O(log deg) ApplyOnly path.
// Because discovery chains only ever grow already-indexed subgraphs, the
// expensive exploration and index maintenance partitions across shards by
// chain ownership, while the same subgraph reached from differently-owned
// roots is collapsed by the merger's output-dense tracking set.
//
// Process/ProcessAll are asynchronous and must be called from a single
// producer goroutine; Flush, Close, Stats, and the query methods may be
// called from any goroutine and block until all accepted updates are merged.
//
// Locking: produceMu serialises producers and flushers — it owns the staging
// batch and the exclusive right to send on the worker channels — while mu
// owns the merge-side state (issued/merged barrier, tracked set, loads). No
// goroutine ever blocks on a channel while holding mu, so the merger can
// always drain worker results; that invariant is what makes the pipeline
// deadlock-free under backpressure.
type ShardedEngine struct {
	cfg     Config
	router  Router
	workers []*worker
	results chan workerResult

	// Producer state.
	produceMu sync.Mutex
	cur       batch
	nextSeq   uint64 // sequence number the next accepted logical tick will get
	accepted  uint64 // updates accepted (a coalesced batch counts its length)
	closed    bool

	// Merge-barrier and merge state.
	mu     sync.Mutex
	cond   *sync.Cond
	issued uint64 // batches dispatched
	merged uint64 // batches merged

	sink      core.EventSink
	seqSink   SeqSink
	tracked   map[string]bool // currently output-dense set keys, post-merge
	pending   map[uint64][]workerResult
	nextMerge uint64 // firstSeq of the next batch to merge
	mergedEv  uint64
	dedupedEv uint64
	loads     []ShardLoad
	cursorBuf []int        // mergeLocked's per-shard sparse-result cursors
	evBuf     []core.Event // mergeLocked's per-tick gather buffer

	workerWG sync.WaitGroup
	mergerWG sync.WaitGroup
}

// New creates a sharded engine and starts its worker and merger goroutines.
// The engine must be Closed to release them.
func New(cfg Config) (*ShardedEngine, error) { return NewFromState(cfg, nil) }

// NewFromState is New resuming from an exported deployment state (see
// ExportState): every worker engine is rebuilt to its exact partition of the
// index, the merger's output-dense tracking set and sequence counters resume
// where the exported deployment stopped, and the interest maps re-seed
// themselves through the membership listener as the indexes are imported. A
// nil state is equivalent to New. State is applied before any goroutine
// starts, so the restored deployment is indistinguishable from one that
// processed the whole stream. Validation failures (damaged snapshots) are
// returned as errors.
func NewFromState(cfg Config, st *State) (*ShardedEngine, error) {
	cfg = cfg.withDefaults()
	router, err := NewRouter(cfg.Shards)
	if err != nil {
		return nil, err
	}
	se := &ShardedEngine{
		cfg:       cfg,
		router:    router,
		results:   make(chan workerResult, cfg.Shards*2),
		nextSeq:   1,
		nextMerge: 1,
		tracked:   make(map[string]bool),
		pending:   make(map[uint64][]workerResult),
		loads:     make([]ShardLoad, cfg.Shards),
	}
	se.cond = sync.NewCond(&se.mu)
	for i := 0; i < cfg.Shards; i++ {
		se.loads[i].Shard = i
		eng, err := core.New(cfg.Engine)
		if err != nil {
			return nil, err
		}
		id := i
		// The interest map mirrors the worker engine's index membership; it
		// is installed unconditionally (transitions are rare and the hook is
		// one map write) so stats and tests can inspect it in either overlap
		// policy, but only scoped delivery consults it.
		im := NewInterestMap(router, id)
		eng.SetMembershipListener(im.Observe)
		se.workers = append(se.workers, &worker{
			id:  i,
			eng: eng,
			in:  make(chan batch, cfg.QueueDepth),
			// Per-pair seeding mirrors Router.Primary: the owner of the
			// canonical (smaller) endpoint seeds the pair's discovery chain.
			seed: func(a, b core.Vertex) bool {
				if b < a {
					a = b
				}
				return router.Owner(a) == id
			},
			interest: im,
			scoped:   cfg.Overlap == OverlapScoped,
		})
	}
	if st != nil {
		if err := se.applyState(st); err != nil {
			return nil, err
		}
	}
	for _, w := range se.workers {
		se.workerWG.Add(1)
		go se.runWorker(w)
	}
	se.mergerWG.Add(1)
	go se.runMerger()
	return se, nil
}

// MustNew is New that panics on error; intended for tests and examples.
func MustNew(cfg Config) *ShardedEngine {
	se, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return se
}

// Config returns the effective configuration (with defaults applied).
func (se *ShardedEngine) Config() Config { return se.cfg }

// Router returns the vertex→shard router.
func (se *ShardedEngine) Router() Router { return se.router }

// SetSink installs the destination for the merged event stream. It must be
// called before the first Process. The sink observes the deduplicated events
// in the deterministic merged order; it is invoked from the merge goroutine
// and must not call back into the engine.
func (se *ShardedEngine) SetSink(s core.EventSink) {
	se.mu.Lock()
	defer se.mu.Unlock()
	se.sink = s
}

// SetSeqSink installs a sequence-aware sink; it may be combined with SetSink.
// Like SetSink it must be called before the first Process.
func (se *ShardedEngine) SetSeqSink(s SeqSink) {
	se.mu.Lock()
	defer se.mu.Unlock()
	se.seqSink = s
}

// Process accepts one update for asynchronous processing. Events reach the
// installed sinks after the update's batch clears the merge barrier; call
// Flush to force and await completion. Process must not be called after
// Close, and is single-producer: concurrent Process calls are not allowed
// (concurrent Flush/Stats/queries are).
func (se *ShardedEngine) Process(u core.Update) {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	if se.closed {
		panic("shard: Process called after Close")
	}
	if se.cur.updates == nil {
		se.cur = batch{firstSeq: se.nextSeq, updates: make([]core.Update, 0, se.cfg.BatchSize)}
	}
	se.cur.updates = append(se.cur.updates, u)
	se.nextSeq++
	se.accepted++
	if len(se.cur.updates) >= se.cfg.BatchSize {
		se.sendLocked()
	}
}

// ProcessBatch accepts a whole batch of updates as ONE logical tick: every
// worker applies it through core.Engine.ProcessBatchRouted (seeding only the
// pairs it owns) and the merger sequences the combined net events under a
// single sequence number — so an epoch's decay burst crosses the worker
// channels and the merge barrier once, not once per pair. Any micro-batched
// Process updates staged so far are dispatched first, preserving stream
// order. Like Process it is asynchronous and single-producer; an empty batch
// still consumes a sequence number (a no-op tick), keeping downstream
// boundary accounting aligned with the single-engine batch mode.
func (se *ShardedEngine) ProcessBatch(updates []core.Update) {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	if se.closed {
		panic("shard: ProcessBatch called after Close")
	}
	se.sendLocked()
	b := batch{
		firstSeq:  se.nextSeq,
		updates:   append([]core.Update(nil), updates...),
		coalesced: true,
	}
	se.nextSeq++ // one sequence number for the whole batch
	se.accepted += uint64(len(updates))
	se.mu.Lock()
	se.issued++
	se.mu.Unlock()
	for _, w := range se.workers {
		w.in <- b
	}
}

// ProcessThresholdBatch accepts one rescaled-decay epoch unit as ONE logical
// tick: every worker absorbs the retirement cancellations and moves its
// threshold to baseT/scale through core.Engine.ProcessThresholdBatchRouted,
// and the merger sequences the combined net events under a single sequence
// number — a decay epoch crosses the worker channels and the merge barrier
// exactly once regardless of tracked-pair count. Threshold units broadcast to
// every worker in both overlap policies (every replica's threshold schedule
// must move in lockstep); the cancellations are negative, so scoped
// delivery's positive-pair skip never applies to them. Like ProcessBatch it
// is asynchronous and single-producer, and an empty unit still consumes a
// sequence number.
//
// The scale is validated producer-side, BEFORE the unit broadcasts: a corrupt
// scale (from a damaged replayed stream) surfaces here as a returned error the
// caller can act on, instead of panicking K worker goroutines. The workers'
// own engines still treat an invalid scale as a caller invariant violation —
// by the time a unit reaches them it has passed this check.
func (se *ShardedEngine) ProcessThresholdBatch(scale float64, updates []core.Update) error {
	if math.IsNaN(scale) || scale <= 0 || scale > 1 {
		return fmt.Errorf("shard: threshold batch scale %v outside (0, 1]", scale)
	}
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	if se.closed {
		panic("shard: ProcessThresholdBatch called after Close")
	}
	se.sendLocked()
	b := batch{
		firstSeq:  se.nextSeq,
		updates:   append([]core.Update(nil), updates...),
		coalesced: true,
		threshold: true,
		scale:     scale,
	}
	se.nextSeq++ // one sequence number for the whole epoch unit
	se.accepted += uint64(len(updates))
	se.mu.Lock()
	se.issued++
	se.mu.Unlock()
	for _, w := range se.workers {
		w.in <- b
	}
	return nil
}

// ProcessAll accepts a sequence of updates; the slice may be reused by the
// caller as soon as ProcessAll returns.
func (se *ShardedEngine) ProcessAll(updates []core.Update) {
	for _, u := range updates {
		se.Process(u)
	}
}

// sendLocked broadcasts the staged batch to every worker. It requires
// produceMu (never mu): the sends may block on worker backpressure, and the
// merger must stay free to drain results in the meantime.
func (se *ShardedEngine) sendLocked() {
	if len(se.cur.updates) == 0 {
		return
	}
	b := se.cur
	se.cur = batch{}
	se.mu.Lock()
	se.issued++
	se.mu.Unlock()
	for _, w := range se.workers {
		w.in <- b
	}
}

// quiesceLocked dispatches any partial batch and waits until every issued
// batch has been merged. It requires produceMu, which also excludes new
// dispatches: when it returns, all workers are idle and their state is safe
// to read until produceMu is released.
func (se *ShardedEngine) quiesceLocked() {
	se.sendLocked()
	se.mu.Lock()
	for se.merged != se.issued {
		se.cond.Wait()
	}
	se.mu.Unlock()
}

// Flush dispatches any partially filled batch and blocks until every accepted
// update has been processed by all shards and merged downstream.
func (se *ShardedEngine) Flush() {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	se.quiesceLocked()
}

// Close flushes outstanding work and stops the worker and merger goroutines.
// It is idempotent; Process must not be called afterwards.
func (se *ShardedEngine) Close() error {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	if se.closed {
		return nil
	}
	se.quiesceLocked()
	se.closed = true
	for _, w := range se.workers {
		close(w.in)
	}
	se.workerWG.Wait()
	close(se.results)
	se.mergerWG.Wait()
	return nil
}

// Updates returns the number of updates accepted so far (the updates inside
// coalesced batches count individually, though each batch holds one sequence
// number).
func (se *ShardedEngine) Updates() uint64 {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	return se.accepted
}

// Stats flushes and returns the deployment-wide statistics. The per-engine
// reads are safe: after the quiesce barrier every worker is idle, all its
// writes happen-before the merger's barrier signal, and produceMu excludes
// new dispatches until Stats returns.
func (se *ShardedEngine) Stats() Stats {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	se.quiesceLocked()
	se.mu.Lock()
	out := Stats{
		Overlap:       se.cfg.Overlap,
		Accepted:      se.accepted,
		PerShard:      make([]core.Stats, len(se.workers)),
		Loads:         append([]ShardLoad(nil), se.loads...),
		MergedEvents:  se.mergedEv,
		DedupedEvents: se.dedupedEv,
	}
	se.mu.Unlock()
	for i, w := range se.workers {
		ps := w.eng.Stats()
		out.PerShard[i] = ps
		out.Aggregate.Add(ps)
	}
	return out
}

// OutputDenseKeys flushes and returns the canonical set keys of the merged
// output-dense result set — the view a downstream consumer of the merged
// event stream holds — sorted lexicographically.
func (se *ShardedEngine) OutputDenseKeys() []string {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	se.quiesceLocked()
	se.mu.Lock()
	defer se.mu.Unlock()
	keys := make([]string, 0, len(se.tracked))
	for k := range se.tracked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// OutputDense flushes and returns the union of the workers' output-dense
// subgraphs, deduplicated by set key and sorted by key — the same result set
// OutputDenseKeys describes, with scores and densities attached (a subgraph
// indexed on several shards has identical values on each, so any copy
// serves).
func (se *ShardedEngine) OutputDense() []core.Subgraph {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	se.quiesceLocked()
	seen := make(map[string]bool)
	var out []core.Subgraph
	for _, w := range se.workers {
		for _, sg := range w.eng.OutputDense() {
			if k := sg.Set.Key(); !seen[k] {
				seen[k] = true
				out = append(out, sg)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Set.Key() < out[j].Set.Key() })
	return out
}

// OutputDenseCount flushes and returns the size of the merged output-dense
// result set.
func (se *ShardedEngine) OutputDenseCount() int {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	se.quiesceLocked()
	se.mu.Lock()
	defer se.mu.Unlock()
	return len(se.tracked)
}

// Graph flushes and returns shard 0's graph replica. Every replica applies
// the full update stream, so any one of them is the exact current graph; the
// returned graph must only be read before the next Process call.
func (se *ShardedEngine) Graph() *graph.Graph {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	se.quiesceLocked()
	return se.workers[0].eng.Graph()
}

func (se *ShardedEngine) runWorker(w *worker) {
	defer se.workerWG.Done()
	for b := range w.in {
		start := time.Now()
		// Workers run their engines in slice mode: the per-tick event
		// slices cross the results channel to the merge goroutine, so the
		// sets must be private copies — the engine's CollectorSink declares
		// RetainsSets and the engine clones each emitted set out of its
		// scratch. Everything else (neighbourhood merges, candidate sets,
		// index snapshots) stays in the worker engine's own reusable
		// buffers, so each shard inherits the allocation-free exploration
		// path. Results are sparse: only event-bearing ticks are recorded,
		// so a batch whose updates all land on other shards' chains crosses
		// the channel as a counter-only result with no per-tick slice at all
		// (the old dense [][]Event cost K·len(batch) slice headers per batch
		// regardless of how few ticks produced anything).
		res := workerResult{shard: w.id, firstSeq: b.firstSeq}
		if b.coalesced {
			// Whole-epoch shipping: the batch is one logical tick, so the
			// netted events land under a single sequence slot. Delivery
			// accounting comes from the engine's own pair counters: the
			// weight phase always covers the full batch, and scoping decides
			// per positive pair inside batchDiscover.
			res.ticks = 1
			before := w.eng.Stats()
			var evs []core.Event
			switch {
			case b.threshold && w.scoped:
				evs = w.eng.ProcessThresholdBatchScoped(b.scale, b.updates, w.seed)
			case b.threshold:
				evs = w.eng.ProcessThresholdBatchRouted(b.scale, b.updates, w.seed)
			case w.scoped:
				evs = w.eng.ProcessBatchScoped(b.updates, w.seed)
			default:
				evs = w.eng.ProcessBatchRouted(b.updates, w.seed)
			}
			after := w.eng.Stats()
			res.delivered = after.BatchPairs - before.BatchPairs
			res.applied = after.BatchPairSkips - before.BatchPairSkips
			if len(evs) > 0 {
				res.events = []tickEvents{{off: 0, evs: evs}}
			}
		} else {
			res.ticks = len(b.updates)
			for i, u := range b.updates {
				// The delivery decision consults the worker's own live
				// interest map, never a dispatcher-side snapshot: interest
				// can grow mid-batch through this worker's own admissions,
				// and checking at processing time (in stream order, on the
				// worker goroutine) means there is no staleness window in
				// which a newly interesting update could slip past.
				if w.scoped && !w.interest.Wants(u) {
					// Residual star case: a positive edge can extend an
					// ImplicitTooDense family whose base excludes both
					// endpoints, but only when an endpoint was previously
					// disconnected from the base — an exact, replica-local
					// check (see core.Engine.StarNeedsPositive).
					if !(u.Delta > 0 && w.interest.HasStars() && w.eng.StarNeedsPositive(u.A, u.B, u.Delta)) {
						w.eng.ApplyOnly(u)
						res.applied++
						continue
					}
				}
				res.delivered++
				evs := w.eng.ProcessRouted(u, se.router.Primary(u) == w.id)
				if len(evs) > 0 {
					res.events = append(res.events, tickEvents{off: i, evs: evs})
				}
			}
		}
		res.busy = time.Since(start)
		se.results <- res
	}
}

// runMerger aligns the per-shard result streams batch by batch and merges
// them in stream order into the sinks. The merger acquires only mu, and no
// mu holder ever blocks on a channel, so the drain always makes progress.
func (se *ShardedEngine) runMerger() {
	defer se.mergerWG.Done()
	for res := range se.results {
		se.mu.Lock()
		se.pending[res.firstSeq] = append(se.pending[res.firstSeq], res)
		for {
			ready := se.pending[se.nextMerge]
			if len(ready) != len(se.workers) {
				break
			}
			delete(se.pending, se.nextMerge)
			se.mergeLocked(ready)
			se.nextMerge += uint64(ready[0].ticks)
			se.merged++
			se.cond.Broadcast()
		}
		se.mu.Unlock()
	}
}

// mergeLocked merges one batch: for each logical tick (update, or whole
// coalesced batch), the events of all shards are collected, canonically
// ordered, and deduplicated against the tracked output-dense set, so the same
// subgraph transition discovered by several shards is forwarded exactly once.
// Within one tick all events for a given subgraph share a kind — for plain
// updates because positive updates only emit Became and negative only Ceased;
// for coalesced batches because each worker nets its transitions against the
// shared final graph state and final-score eviction forbids an evict-readmit
// flap inside one batch — which makes the dedup outcome independent of shard
// arrival order.
func (se *ShardedEngine) mergeLocked(ready []workerResult) {
	firstSeq := ready[0].firstSeq
	for i := range ready {
		res := &ready[i]
		load := &se.loads[res.shard]
		load.Batches++
		load.Busy += res.busy
		load.Delivered += res.delivered
		load.Applied += res.applied
		for _, te := range res.events {
			load.RawEvents += uint64(len(te.evs))
		}
	}
	// K-way merge of the sparse per-shard tick lists by offset: only ticks
	// for which some shard produced events are visited at all, so merge cost
	// scales with the event volume, not the batch length × shard count. The
	// cursor and gather buffers are merger-owned and reused across batches.
	if cap(se.cursorBuf) < len(ready) {
		se.cursorBuf = make([]int, len(ready))
	}
	cur := se.cursorBuf[:len(ready)]
	for i := range cur {
		cur[i] = 0
	}
	for {
		off := -1
		for s := range ready {
			if cur[s] < len(ready[s].events) {
				if o := ready[s].events[cur[s]].off; off == -1 || o < off {
					off = o
				}
			}
		}
		if off == -1 {
			return
		}
		buf := se.evBuf[:0]
		for s := range ready {
			if cur[s] < len(ready[s].events) && ready[s].events[cur[s]].off == off {
				buf = append(buf, ready[s].events[cur[s]].evs...)
				cur[s]++
			}
		}
		se.evBuf = buf
		seq := firstSeq + uint64(off)
		sort.Slice(buf, func(a, b int) bool {
			if buf[a].Kind != buf[b].Kind {
				return buf[a].Kind < buf[b].Kind
			}
			return buf[a].Set.Key() < buf[b].Set.Key()
		})
		for _, ev := range buf {
			k := ev.Set.Key()
			switch ev.Kind {
			case core.BecameOutputDense:
				if se.tracked[k] {
					se.dedupedEv++
					continue
				}
				se.tracked[k] = true
			case core.CeasedOutputDense:
				if !se.tracked[k] {
					se.dedupedEv++
					continue
				}
				delete(se.tracked, k)
			}
			se.mergedEv++
			if se.sink != nil {
				se.sink.Emit(ev)
			}
			if se.seqSink != nil {
				se.seqSink.EmitSeq(SeqEvent{Seq: seq, Event: ev})
			}
		}
	}
}

// InterestMaps flushes and returns the per-worker interest maps for
// inspection (subscription sets, churn counters). The maps are live worker
// state: they are safe to read only until the next Process call.
func (se *ShardedEngine) InterestMaps() []*InterestMap {
	se.produceMu.Lock()
	defer se.produceMu.Unlock()
	se.quiesceLocked()
	out := make([]*InterestMap, len(se.workers))
	for i, w := range se.workers {
		out[i] = w.interest
	}
	return out
}

// String summarises the deployment.
func (se *ShardedEngine) String() string {
	return fmt.Sprintf("sharded{shards=%d batch=%d overlap=%s}", se.cfg.Shards, se.cfg.BatchSize, se.cfg.Overlap)
}
