package shard

import (
	"math/rand"
	"testing"

	"dyndens/internal/graph"
	"dyndens/internal/vset"
)

func TestNewRouterValidation(t *testing.T) {
	for _, k := range []int{0, -1, -7} {
		if _, err := NewRouter(k); err == nil {
			t.Errorf("NewRouter(%d) = nil error, want error", k)
		}
	}
	r, err := NewRouter(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", r.Shards())
	}
}

// TestRouterStableAssignments pins the vertex→shard mapping for a few
// vertices. The router is a pure function of (vertex, K); these values must
// never change across runs, processes, or releases — a silent change would
// re-partition every deployed stream.
func TestRouterStableAssignments(t *testing.T) {
	cases := []struct {
		k    int
		want []int // owner of vertices 0..9
	}{
		{k: 2, want: []int{0, 0, 1, 0, 1, 1, 1, 1, 1, 1}},
		{k: 4, want: []int{0, 0, 3, 2, 1, 1, 3, 1, 3, 1}},
		{k: 8, want: []int{0, 4, 7, 6, 5, 5, 3, 5, 7, 5}},
	}
	for _, tc := range cases {
		r, err := NewRouter(tc.k)
		if err != nil {
			t.Fatal(err)
		}
		for v, want := range tc.want {
			if got := r.Owner(vset.Vertex(v)); got != want {
				t.Errorf("K=%d: Owner(%d) = %d, want %d", tc.k, v, got, want)
			}
		}
	}
}

func TestRouterDeterministicAcrossInstances(t *testing.T) {
	a, _ := NewRouter(4)
	b, _ := NewRouter(4)
	for v := vset.Vertex(0); v < 10000; v++ {
		if a.Owner(v) != b.Owner(v) {
			t.Fatalf("instances disagree on vertex %d: %d vs %d", v, a.Owner(v), b.Owner(v))
		}
	}
}

func TestRouterOwnerInRange(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 7, 16} {
		r, _ := NewRouter(k)
		for v := vset.Vertex(0); v < 5000; v++ {
			if o := r.Owner(v); o < 0 || o >= k {
				t.Fatalf("K=%d: Owner(%d) = %d out of range", k, v, o)
			}
		}
	}
}

// TestRouterPrimaryOrientationInvariant checks that both orientations of an
// edge route to the same shard: a pair's discovery chain must have a single
// consistent owner no matter how the stream writes the edge.
func TestRouterPrimaryOrientationInvariant(t *testing.T) {
	r, _ := NewRouter(4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := vset.Vertex(rng.Intn(1000))
		b := vset.Vertex(rng.Intn(1000))
		ab := r.Primary(graph.Update{A: a, B: b, Delta: 1})
		ba := r.Primary(graph.Update{A: b, B: a, Delta: -2})
		if ab != ba {
			t.Fatalf("orientation changes primary for {%d,%d}: %d vs %d", a, b, ab, ba)
		}
		canonical := a
		if b < a {
			canonical = b
		}
		if want := r.Owner(canonical); ab != want {
			t.Fatalf("Primary({%d,%d}) = %d, want owner of canonical endpoint %d = %d", a, b, ab, canonical, want)
		}
	}
}

// TestRouterBalance drives vertex distributions through the router and
// requires every shard's load to stay within 2× of the ideal even share. Two
// loads matter: distinct vertices (index partitioning) and update mass under
// Zipf-skewed endpoint popularity (the paper's entity streams), weighted by
// how often each vertex is drawn.
func TestRouterBalance(t *testing.T) {
	cases := []struct {
		name     string
		k        int
		vertices int
		samples  int
		skew     float64 // ≤ 1 means uniform draws
	}{
		{name: "distinct/K=4", k: 4, vertices: 10000, samples: 0},
		{name: "distinct/K=8", k: 8, vertices: 10000, samples: 0},
		{name: "zipf1.2/K=4", k: 4, vertices: 10000, samples: 200000, skew: 1.2},
		{name: "zipf1.5/K=2", k: 2, vertices: 10000, samples: 200000, skew: 1.5},
		{name: "uniform/K=4", k: 4, vertices: 10000, samples: 200000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewRouter(tc.k)
			if err != nil {
				t.Fatal(err)
			}
			counts := make([]int, tc.k)
			total := 0
			if tc.samples == 0 {
				// Distinct-vertex load: each vertex once.
				for v := 0; v < tc.vertices; v++ {
					counts[r.Owner(vset.Vertex(v))]++
				}
				total = tc.vertices
			} else {
				rng := rand.New(rand.NewSource(99))
				var zipf *rand.Zipf
				if tc.skew > 1 {
					zipf = rand.NewZipf(rng, tc.skew, 1, uint64(tc.vertices-1))
				}
				for i := 0; i < tc.samples; i++ {
					var v vset.Vertex
					if zipf != nil {
						v = vset.Vertex(zipf.Uint64())
					} else {
						v = vset.Vertex(rng.Intn(tc.vertices))
					}
					counts[r.Owner(v)]++
				}
				total = tc.samples
			}
			ideal := float64(total) / float64(tc.k)
			for s, c := range counts {
				if float64(c) > 2*ideal {
					t.Errorf("shard %d holds %d of %d (ideal %.0f): more than 2x ideal", s, c, total, ideal)
				}
				if c == 0 {
					t.Errorf("shard %d received nothing", s)
				}
			}
		})
	}
}
