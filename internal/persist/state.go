package persist

import (
	"fmt"

	"dyndens/internal/core"
	"dyndens/internal/graph"
	"dyndens/internal/shard"
	"dyndens/internal/story"
	"dyndens/internal/stream"
	"dyndens/internal/vset"
)

// PipelineState is the full durable state of one pipeline deployment at a
// drained stream boundary: everything a restarted process needs to resume as
// if it had processed the whole prefix itself. Exactly one of Engine (with
// Graph) or Shard is set, matching the deployment mode; Agg and Tracker are
// present when the pipeline has a co-occurrence front-end and a story layer.
type PipelineState struct {
	// Seq is the number of durable input units covered by this state:
	// documents for co-occurrence pipelines, source batches for edge streams.
	Seq uint64
	// Ticks is the cumulative logical engine tick count at the boundary —
	// the sequence downstream boundary consumers (the story tracker) were
	// closed with; restart resumes tick accounting from here.
	Ticks uint64

	Graph   *graph.State
	Engine  *core.EngineState
	Shard   *shard.State
	Agg     *stream.AggregatorState
	Tracker *story.TrackerState
}

func encodeGraphState(e *encoder, gs *graph.State) {
	e.set(vset.Set(gs.Known))
	e.u32(uint32(len(gs.EdgeU)))
	for i := range gs.EdgeU {
		e.u32(uint32(gs.EdgeU[i]))
		e.u32(uint32(gs.EdgeV[i]))
		e.f64(gs.EdgeW[i])
	}
}

func decodeGraphState(d *decoder) graph.State {
	var gs graph.State
	gs.Known = []graph.Vertex(d.set())
	n := d.count(16)
	if d.err != nil {
		return gs
	}
	gs.EdgeU = make([]graph.Vertex, n)
	gs.EdgeV = make([]graph.Vertex, n)
	gs.EdgeW = make([]float64, n)
	for i := 0; i < n; i++ {
		gs.EdgeU[i] = graph.Vertex(d.u32())
		gs.EdgeV[i] = graph.Vertex(d.u32())
		gs.EdgeW[i] = d.f64()
	}
	return gs
}

func encodeEngineState(e *encoder, es *core.EngineState) {
	e.f64(es.Scale)
	e.u32(uint32(len(es.Dense)))
	for _, de := range es.Dense {
		e.set(de.Set)
		e.f64(de.Score)
		e.boolean(de.Star)
		e.f64(de.StarScore)
	}
}

func decodeEngineState(d *decoder) core.EngineState {
	var es core.EngineState
	es.Scale = d.f64()
	n := d.count(13)
	if d.err != nil {
		return es
	}
	es.Dense = make([]core.DenseEntry, n)
	for i := range es.Dense {
		es.Dense[i].Set = d.set()
		es.Dense[i].Score = d.f64()
		es.Dense[i].Star = d.boolean()
		es.Dense[i].StarScore = d.f64()
	}
	return es
}

func encodeShardState(e *encoder, ss *shard.State) {
	e.u64(ss.NextSeq)
	e.u32(uint32(len(ss.Tracked)))
	for _, k := range ss.Tracked {
		e.str(k)
	}
	encodeGraphState(e, &ss.Graph)
	e.u32(uint32(len(ss.Workers)))
	for i := range ss.Workers {
		encodeEngineState(e, &ss.Workers[i])
	}
}

func decodeShardState(d *decoder) *shard.State {
	ss := &shard.State{NextSeq: d.u64()}
	n := d.count(4)
	for i := 0; i < n && d.err == nil; i++ {
		ss.Tracked = append(ss.Tracked, d.str())
	}
	ss.Graph = decodeGraphState(d)
	n = d.count(12)
	for i := 0; i < n && d.err == nil; i++ {
		ss.Workers = append(ss.Workers, decodeEngineState(d))
	}
	return ss
}

func encodeAggState(e *encoder, as *stream.AggregatorState) {
	e.boolean(as.Started)
	e.i64(as.Epoch)
	e.i64(as.LastTime)
	e.f64(as.Lambda)
	e.u32(uint32(len(as.Pairs)))
	for _, p := range as.Pairs {
		e.u32(uint32(p.A))
		e.u32(uint32(p.B))
		e.f64(p.W)
	}
	e.u32(uint32(len(as.Retire)))
	for _, r := range as.Retire {
		e.u32(uint32(r.A))
		e.u32(uint32(r.B))
		e.f64(r.ExpLambda)
	}
}

func decodeAggState(d *decoder) *stream.AggregatorState {
	as := &stream.AggregatorState{
		Started:  d.boolean(),
		Epoch:    d.i64(),
		LastTime: d.i64(),
		Lambda:   d.f64(),
	}
	n := d.count(16)
	if d.err == nil && n > 0 {
		as.Pairs = make([]stream.AggregatorPair, n)
		for i := range as.Pairs {
			as.Pairs[i] = stream.AggregatorPair{
				A: graph.Vertex(d.u32()), B: graph.Vertex(d.u32()), W: d.f64(),
			}
		}
	}
	n = d.count(16)
	if d.err == nil && n > 0 {
		as.Retire = make([]stream.RetireEntryState, n)
		for i := range as.Retire {
			as.Retire[i] = stream.RetireEntryState{
				A: graph.Vertex(d.u32()), B: graph.Vertex(d.u32()), ExpLambda: d.f64(),
			}
		}
	}
	return as
}

func encodeTrackerState(e *encoder, ts *story.TrackerState) {
	e.u64(ts.Seq)
	e.u64(uint64(ts.NextID))
	e.u32(uint32(len(ts.Stories)))
	for _, s := range ts.Stories {
		e.u64(uint64(s.ID))
		e.set(s.Entities)
		e.u32(uint32(len(s.Live)))
		for _, set := range s.Live {
			e.set(set)
		}
		e.u64(s.BornSeq)
		e.u64(s.LastSeq)
		e.u64(s.FadeSeq)
		e.u64(s.SnapSeq)
		e.set(s.Snapshot)
	}
	e.u32(uint32(len(ts.Records)))
	for _, r := range ts.Records {
		e.u64(r.Seq)
		e.u8(uint8(r.Kind))
		e.u64(uint64(r.Story))
		e.u64(uint64(r.Other))
		e.set(r.Entities)
	}
}

func decodeTrackerState(d *decoder) *story.TrackerState {
	ts := &story.TrackerState{Seq: d.u64(), NextID: story.ID(d.u64())}
	n := d.count(48)
	for i := 0; i < n && d.err == nil; i++ {
		s := story.StoryState{ID: story.ID(d.u64()), Entities: d.set()}
		m := d.count(4)
		for j := 0; j < m && d.err == nil; j++ {
			s.Live = append(s.Live, d.set())
		}
		s.BornSeq = d.u64()
		s.LastSeq = d.u64()
		s.FadeSeq = d.u64()
		s.SnapSeq = d.u64()
		s.Snapshot = d.set()
		ts.Stories = append(ts.Stories, s)
	}
	n = d.count(29)
	for i := 0; i < n && d.err == nil; i++ {
		ts.Records = append(ts.Records, story.Record{
			Seq:      d.u64(),
			Kind:     story.LifecycleKind(d.u8()),
			Story:    story.ID(d.u64()),
			Other:    story.ID(d.u64()),
			Entities: d.set(),
		})
	}
	return ts
}

func encodePipelineState(e *encoder, st *PipelineState) {
	e.u64(st.Seq)
	e.u64(st.Ticks)
	e.boolean(st.Graph != nil)
	if st.Graph != nil {
		encodeGraphState(e, st.Graph)
	}
	e.boolean(st.Engine != nil)
	if st.Engine != nil {
		encodeEngineState(e, st.Engine)
	}
	e.boolean(st.Shard != nil)
	if st.Shard != nil {
		encodeShardState(e, st.Shard)
	}
	e.boolean(st.Agg != nil)
	if st.Agg != nil {
		encodeAggState(e, st.Agg)
	}
	e.boolean(st.Tracker != nil)
	if st.Tracker != nil {
		encodeTrackerState(e, st.Tracker)
	}
}

func decodePipelineState(d *decoder) *PipelineState {
	st := &PipelineState{Seq: d.u64(), Ticks: d.u64()}
	if d.boolean() {
		gs := decodeGraphState(d)
		st.Graph = &gs
	}
	if d.boolean() {
		es := decodeEngineState(d)
		st.Engine = &es
	}
	if d.boolean() {
		st.Shard = decodeShardState(d)
	}
	if d.boolean() {
		st.Agg = decodeAggState(d)
	}
	if d.boolean() {
		st.Tracker = decodeTrackerState(d)
	}
	return st
}

// sanity checks the mode invariants a well-formed snapshot satisfies before
// any restore constructor sees it.
func (st *PipelineState) sanity() error {
	if st.Engine != nil && st.Shard != nil {
		return fmt.Errorf("persist: snapshot carries both single-engine and sharded state")
	}
	if st.Engine != nil && st.Graph == nil {
		return fmt.Errorf("persist: single-engine snapshot is missing its graph")
	}
	return nil
}
