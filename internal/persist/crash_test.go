package persist

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"dyndens/internal/core"
	"dyndens/internal/shard"
	"dyndens/internal/story"
	"dyndens/internal/stream"
)

// The crash-recovery property: kill the pipeline at an arbitrary point,
// restart it over the same WAL directory, let it finish — the story records,
// the story table, and the output-dense result set must be deep-equal to an
// uninterrupted run. Exercised across {single, K=4 scoped} × {exact, rescale}
// × {buffered, fsync} with the kill point randomised.

var testEngCfg = core.Config{T: 6.5, Nmax: 4}
var testTrkCfg = story.Config{MinJaccard: 0.5, Grace: 350, MinCardinality: 3}

func testAggCfg(mode stream.DecayMode) stream.AggregatorConfig {
	return stream.AggregatorConfig{EpochLength: 25, Decay: 0.7, DecayMode: mode}
}

func testDocs(t *testing.T, n int) []stream.Document {
	t.Helper()
	gen, err := stream.NewDocSynthetic(stream.DocSynthConfig{
		BackgroundEntities: 30, Stories: 3, StorySize: 4, Docs: n, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := stream.DrainDocs(gen)
	if err != nil {
		t.Fatal(err)
	}
	return docs
}

type runResult struct {
	records []story.Record
	table   []story.Snapshot
	keys    []string
}

// runPipeline drives the full document pipeline over dir. stopAfter > 0
// simulates a crash: the run aborts once that many documents are durable and
// the store is abandoned without checkpoint, flush, or close — exactly the
// state a SIGKILL leaves behind. Returns finished=false in that case.
func runPipeline(t *testing.T, dir string, docs []stream.Document, shards int,
	mode stream.DecayMode, fsync bool, stopAfter, snapEvery uint64) (runResult, bool) {
	t.Helper()
	st, err := Open(Config{
		Dir:           dir,
		Fingerprint:   fmt.Sprintf("crash-test:shards=%d:mode=%d", shards, mode),
		SnapshotEvery: snapEvery,
		Fsync:         fsync,
		SegmentBytes:  4096, // force rotation so recovery crosses segments
	})
	if err != nil {
		t.Fatal(err)
	}
	src := st.Docs(stream.NewSliceDocSource(docs))
	agg, err := RestoreAggregator(src, testAggCfg(mode), st.Restored())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RestoreTracker(testTrkCfg, st.Restored())
	if err != nil {
		t.Fatal(err)
	}
	baseTicks := st.BaseTicks()

	crashed := func(err error) bool {
		if errors.Is(err, stream.ErrStopped) {
			return true // abandon the store: no checkpoint, no flush, no close
		}
		if err != nil {
			t.Fatal(err)
		}
		return false
	}

	if shards > 0 {
		se, err := RestoreSharded(shard.Config{Shards: shards, Engine: testEngCfg}, st.Restored())
		if err != nil {
			t.Fatal(err)
		}
		defer se.Close()
		se.SetSeqSink(tr)
		rep := stream.NewShardReplay(agg, se, nil)
		rep.SetBoundaryHook(func() error {
			if stopAfter > 0 && st.Seq() >= stopAfter {
				return stream.ErrStopped
			}
			if !agg.Drained() {
				return nil
			}
			return st.MaybeSnapshot(func() (*PipelineState, error) {
				ps, err := CaptureSharded(se, agg, tr)
				if err != nil {
					return nil, err
				}
				ps.Ticks = baseTicks + uint64(rep.Stats().Ticks)
				return ps, nil
			})
		})
		stats, err := rep.RunBatches(256, false)
		if crashed(err) {
			return runResult{}, false
		}
		tr.Close(baseTicks + uint64(stats.Ticks))
		res := runResult{records: tr.Records(), table: tr.Stories(), keys: se.OutputDenseKeys()}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return res, true
	}

	eng, err := RestoreEngine(testEngCfg, st.Restored())
	if err != nil {
		t.Fatal(err)
	}
	rep := stream.NewReplay(agg, eng, tr)
	rep.SetBoundaryHook(func() error {
		if stopAfter > 0 && st.Seq() >= stopAfter {
			return stream.ErrStopped
		}
		if !agg.Drained() {
			return nil
		}
		return st.MaybeSnapshot(func() (*PipelineState, error) {
			ps, err := CaptureSingle(eng, agg, tr)
			if err != nil {
				return nil, err
			}
			ps.Ticks = baseTicks + uint64(rep.Stats().Ticks)
			return ps, nil
		})
	})
	stats, err := rep.RunBatches(256, false)
	if crashed(err) {
		return runResult{}, false
	}
	tr.Close(baseTicks + uint64(stats.Ticks))
	res := runResult{records: tr.Records(), table: tr.Stories(), keys: eng.OutputDenseKeys()}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return res, true
}

// runBare is the persistence-free reference: the same pipeline with no store.
func runBare(t *testing.T, docs []stream.Document, shards int, mode stream.DecayMode) runResult {
	t.Helper()
	agg, err := stream.NewAggregator(stream.NewSliceDocSource(docs), testAggCfg(mode))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := story.NewTracker(testTrkCfg)
	if err != nil {
		t.Fatal(err)
	}
	if shards > 0 {
		se, err := shard.New(shard.Config{Shards: shards, Engine: testEngCfg})
		if err != nil {
			t.Fatal(err)
		}
		defer se.Close()
		se.SetSeqSink(tr)
		stats, err := stream.NewShardReplay(agg, se, nil).RunBatches(256, false)
		if err != nil {
			t.Fatal(err)
		}
		tr.Close(uint64(stats.Ticks))
		return runResult{records: tr.Records(), table: tr.Stories(), keys: se.OutputDenseKeys()}
	}
	eng := core.MustNew(testEngCfg)
	stats, err := stream.NewReplay(agg, eng, tr).RunBatches(256, false)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close(uint64(stats.Ticks))
	return runResult{records: tr.Records(), table: tr.Stories(), keys: eng.OutputDenseKeys()}
}

func checkEqual(t *testing.T, got, want runResult, label string) {
	t.Helper()
	if !reflect.DeepEqual(got.records, want.records) {
		t.Errorf("%s: story records diverge:\n got %d records: %v\nwant %d records: %v",
			label, len(got.records), got.records, len(want.records), want.records)
	}
	if !reflect.DeepEqual(got.table, want.table) {
		t.Errorf("%s: story table diverges:\n got %v\nwant %v", label, got.table, want.table)
	}
	if !reflect.DeepEqual(got.keys, want.keys) {
		t.Errorf("%s: output-dense keys diverge:\n got %v\nwant %v", label, got.keys, want.keys)
	}
}

// TestLoggedRunMatchesBare pins that the WAL wrapper itself is transparent:
// a logged, uninterrupted run equals a persistence-free run bit for bit.
func TestLoggedRunMatchesBare(t *testing.T) {
	docs := testDocs(t, 400)
	for _, shards := range []int{0, 4} {
		for _, mode := range []stream.DecayMode{stream.DecayExact, stream.DecayRescale} {
			label := fmt.Sprintf("shards=%d/mode=%v", shards, mode)
			want := runBare(t, docs, shards, mode)
			got, done := runPipeline(t, t.TempDir(), docs, shards, mode, false, 0, 60)
			if !done {
				t.Fatalf("%s: uninterrupted run did not finish", label)
			}
			checkEqual(t, got, want, label)
		}
	}
}

// TestCrashRestartRecovers is the random-kill property test: kill at a random
// durable unit, restart over the same directory, finish, and require the
// final state to deep-equal the uninterrupted reference. Some kills land
// before the first snapshot (pure-WAL or pure-reread recovery), some after
// (snapshot + WAL replay + live tail) — the rng seeds are fixed so failures
// reproduce.
func TestCrashRestartRecovers(t *testing.T) {
	docs := testDocs(t, 400)
	rng := rand.New(rand.NewSource(41))
	for _, shards := range []int{0, 4} {
		for _, mode := range []stream.DecayMode{stream.DecayExact, stream.DecayRescale} {
			want := runBare(t, docs, shards, mode)
			for _, fsync := range []bool{false, true} {
				kills := 3
				if fsync {
					kills = 2 // fsync per frame is slow; fewer kill points suffice
				}
				for k := 0; k < kills; k++ {
					stopAfter := uint64(rng.Intn(len(docs)-20) + 10)
					label := fmt.Sprintf("shards=%d/mode=%v/fsync=%v/kill@%d", shards, mode, fsync, stopAfter)
					dir := filepath.Join(t.TempDir(), "wal")
					if _, done := runPipeline(t, dir, docs, shards, mode, fsync, stopAfter, 60); done {
						t.Fatalf("%s: run finished before the kill point", label)
					}
					got, done := runPipeline(t, dir, docs, shards, mode, fsync, 0, 60)
					if !done {
						t.Fatalf("%s: restarted run did not finish", label)
					}
					checkEqual(t, got, want, label)
				}
			}
		}
	}
}

// TestDoubleCrashRecovers kills the pipeline twice — the second kill while
// recovering from the first — before letting it finish.
func TestDoubleCrashRecovers(t *testing.T) {
	docs := testDocs(t, 400)
	mode := stream.DecayRescale
	want := runBare(t, docs, 0, mode)
	dir := filepath.Join(t.TempDir(), "wal")
	if _, done := runPipeline(t, dir, docs, 0, mode, false, 250, 60); done {
		t.Fatal("first run finished before the kill point")
	}
	if _, done := runPipeline(t, dir, docs, 0, mode, false, 320, 60); done {
		t.Fatal("second run finished before the kill point")
	}
	got, done := runPipeline(t, dir, docs, 0, mode, false, 0, 60)
	if !done {
		t.Fatal("final run did not finish")
	}
	checkEqual(t, got, want, "double crash")
}
