package persist

import (
	"fmt"
	"io"

	"dyndens/internal/graph"
	"dyndens/internal/stream"
)

// Frame payload codecs: the WAL logs input-stream units, so each frame kind
// mirrors one source type — a document (time + entity set), a source batch
// (decay flag + updates), or a rescaled-decay threshold unit (scale +
// cancellations).

func encodeDoc(e *encoder, d stream.Document) {
	e.i64(d.Time)
	e.set(d.Entities)
}

func decodeDoc(payload []byte) (stream.Document, error) {
	d := decoder{b: payload}
	doc := stream.Document{Time: d.i64(), Entities: d.set()}
	if err := d.done(); err != nil {
		return stream.Document{}, err
	}
	return doc, nil
}

func encodeUpdates(e *encoder, updates []stream.Update) {
	e.u32(uint32(len(updates)))
	for _, u := range updates {
		e.u32(uint32(u.A))
		e.u32(uint32(u.B))
		e.f64(u.Delta)
	}
}

func (d *decoder) updates() []stream.Update {
	n := d.count(16)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]stream.Update, n)
	for i := range out {
		out[i] = stream.Update{A: graph.Vertex(d.u32()), B: graph.Vertex(d.u32()), Delta: d.f64()}
	}
	return out
}

func encodeBatch(e *encoder, b stream.Batch) uint8 {
	if b.Threshold != nil {
		e.f64(b.Threshold.Scale)
		encodeUpdates(e, b.Updates)
		return frameThreshold
	}
	var flags uint8
	if b.Decay {
		flags = 1
	}
	e.u8(flags)
	encodeUpdates(e, b.Updates)
	return frameBatch
}

func decodeBatch(kind uint8, payload []byte) (stream.Batch, error) {
	d := decoder{b: payload}
	var b stream.Batch
	switch kind {
	case frameBatch:
		flags := d.u8()
		b.Updates = d.updates()
		b.Decay = flags&1 != 0
	case frameThreshold:
		b.Threshold = &stream.ThresholdUpdate{Scale: d.f64()}
		b.Updates = d.updates()
		b.Decay = true
	default:
		return stream.Batch{}, fmt.Errorf("persist: frame kind %d is not a batch", kind)
	}
	if err := d.done(); err != nil {
		return stream.Batch{}, err
	}
	return b, nil
}

// docChain is the recovery-transparent document source: replayed WAL frames
// first, then the live source with the durable prefix skipped, logging every
// new document as it is handed out. The consumer cannot tell recovery from a
// plain run — which is the whole design: recovery IS a normal run.
type docChain struct {
	s       *Store
	frames  []frame
	pos     int
	live    stream.DocumentSource
	skipped bool
	scratch encoder
}

// Next implements stream.DocumentSource.
func (c *docChain) Next() (stream.Document, error) {
	if c.pos < len(c.frames) {
		f := c.frames[c.pos]
		c.pos++
		if f.kind != frameDoc {
			return stream.Document{}, fmt.Errorf("persist: WAL frame %d has kind %d, want document", f.seq, f.kind)
		}
		return decodeDoc(f.payload)
	}
	if !c.skipped {
		c.skipped = true
		skip := c.s.skipUnits()
		for i := uint64(0); i < skip; i++ {
			if _, err := c.live.Next(); err != nil {
				if err == io.EOF {
					return stream.Document{}, fmt.Errorf("persist: input ended after %d documents, but %d are already durable (did the input file shrink?)", i, skip)
				}
				return stream.Document{}, err
			}
		}
	}
	d, err := c.live.Next()
	if err != nil {
		return stream.Document{}, err
	}
	c.scratch.b = c.scratch.b[:0]
	encodeDoc(&c.scratch, d)
	if err := c.s.logFrame(frameDoc, c.scratch.b); err != nil {
		return stream.Document{}, err
	}
	return d, nil
}

// batchChain is docChain for edge-update streams: one WAL frame per NextBatch
// unit, so the batch structure — decay provenance and threshold units
// included — survives the WAL/live seam exactly. It also serves per-update
// consumers (stream.UpdateSource) by unbatching, though threshold units
// cannot cross that interface.
type batchChain struct {
	s       *Store
	frames  []frame
	pos     int
	live    stream.BatchSource
	skipped bool
	scratch encoder
	pending []stream.Update // Next()-mode unbatch buffer
	ppos    int
}

// NextBatch implements stream.BatchSource.
func (c *batchChain) NextBatch() (stream.Batch, error) {
	if c.pos < len(c.frames) {
		f := c.frames[c.pos]
		c.pos++
		return decodeBatch(f.kind, f.payload)
	}
	if !c.skipped {
		c.skipped = true
		skip := c.s.skipUnits()
		for i := uint64(0); i < skip; i++ {
			if _, err := c.live.NextBatch(); err != nil {
				if err == io.EOF {
					return stream.Batch{}, fmt.Errorf("persist: input ended after %d batches, but %d are already durable (did the input file shrink?)", i, skip)
				}
				return stream.Batch{}, err
			}
		}
	}
	b, err := c.live.NextBatch()
	if err != nil {
		return stream.Batch{}, err
	}
	c.scratch.b = c.scratch.b[:0]
	kind := encodeBatch(&c.scratch, b)
	if err := c.s.logFrame(kind, c.scratch.b); err != nil {
		return stream.Batch{}, err
	}
	return b, nil
}

// Next implements stream.UpdateSource by unbatching. Threshold units carry
// engine semantics a per-update consumer cannot express, so they are an
// error here — drive WAL-backed rescaled streams through RunBatches.
func (c *batchChain) Next() (stream.Update, error) {
	for c.ppos >= len(c.pending) {
		b, err := c.NextBatch()
		if err != nil {
			return stream.Update{}, err
		}
		if b.Threshold != nil {
			return stream.Update{}, fmt.Errorf("persist: threshold unit in per-update replay; use the batch driver")
		}
		c.pending = c.pending[:0]
		c.pending = append(c.pending, b.Updates...)
		c.ppos = 0
	}
	u := c.pending[c.ppos]
	c.ppos++
	return u, nil
}
