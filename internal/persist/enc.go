// Package persist is the durability layer of the DynDens pipeline: versioned
// snapshots of the full pipeline state plus a CRC-framed segment WAL of the
// input stream, giving a crashed process crash-consistent recovery — it
// resumes mid-stream with story identities intact, the property the paper's
// real-time story identification depends on.
//
// The design exploits the pipeline's end-to-end determinism ("equal input
// streams produce equal outputs", pinned by the conformance tests): instead
// of logging derived effects, the WAL logs the *input units* the pipeline
// consumed — documents for co-occurrence pipelines, source batches for edge
// streams — and recovery is just a normal run whose source is [snapshot]
// ++ [WAL units after it] ++ [live source skipped past the durable prefix].
//
// On-disk layout (all integers little-endian):
//
//	snap-<seq>.snap   magic "DDSNAP1\n", fingerprint, payload, CRC-32C
//	wal-<seq>.seg     magic "DDWSEG1\n", fingerprint, first sequence, then
//	                  frames of [length u32][crc u32][seq u64][kind u8][payload]
//
// The frame CRC (CRC-32C) covers seq+kind+payload; a torn or bit-flipped
// tail is detected and truncated to the last good frame, and a gap in the
// sequence chain (a lost segment) cuts recovery off at the last contiguous
// unit. Snapshots are written to a temp file and renamed into place, so a
// torn snapshot is never picked up; recovery falls back to the newest valid
// one and replays the WAL from there.
package persist

import (
	"encoding/binary"
	"fmt"
	"math"

	"dyndens/internal/vset"
)

// encoder appends little-endian primitives to a growable buffer. It never
// fails: encoding works over in-memory state that is valid by construction.
type encoder struct {
	b []byte
}

func (e *encoder) u8(v uint8)   { e.b = append(e.b, v) }
func (e *encoder) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encoder) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *encoder) set(s vset.Set) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.u32(uint32(v))
	}
}

// decoder reads the encoder's output back with a sticky error: after the
// first malformed read every subsequent read returns a zero value, and the
// caller checks err once at the end. Length prefixes are validated against
// the remaining input, so corrupt lengths fail cleanly instead of
// over-allocating.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("persist: truncated record (want %d bytes at offset %d of %d)", n, d.off, len(d.b))
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) i64() int64    { return int64(d.u64()) }
func (d *decoder) f64() float64  { return math.Float64frombits(d.u64()) }
func (d *decoder) boolean() bool { return d.u8() != 0 }

// count reads a u32 length prefix for elements of at least elemBytes each,
// rejecting prefixes the remaining input cannot possibly satisfy.
func (d *decoder) count(elemBytes int) int {
	n := int(d.u32())
	if d.err == nil && n*elemBytes > len(d.b)-d.off {
		d.fail("persist: corrupt length prefix %d at offset %d", n, d.off)
		return 0
	}
	return n
}

func (d *decoder) str() string {
	n := d.count(1)
	return string(d.take(n))
}

func (d *decoder) set() vset.Set {
	n := d.count(4)
	if d.err != nil {
		return nil
	}
	s := make(vset.Set, n)
	for i := range s {
		s[i] = vset.Vertex(d.u32())
	}
	return s
}

// done verifies the whole buffer was consumed (trailing garbage is corruption
// too) and returns the sticky error.
func (d *decoder) done() error {
	if d.err == nil && d.off != len(d.b) {
		d.fail("persist: %d trailing bytes after record", len(d.b)-d.off)
	}
	return d.err
}
