package persist

import (
	"fmt"

	"dyndens/internal/core"
	"dyndens/internal/shard"
	"dyndens/internal/story"
	"dyndens/internal/stream"
)

// Capture/restore helpers: the glue between the Store and the pipeline's
// per-layer state exports. Capture functions run synchronously at a drained
// boundary (every handed-out unit processed, aggregator Drained, tracker
// resolvable) and return a PipelineState whose Seq the Store stamps; restore
// functions rebuild each layer from a recovered state, behaving exactly like
// the plain constructors when there is nothing to restore.

// CaptureSingle captures a single-engine pipeline. agg and tr may be nil
// (edge-stream pipelines have no co-occurrence front-end; replay-only runs
// have no story layer). A tracker wrapped by a serve.Builder must be synced
// through Builder.Sync before capture so the serving view folds the same
// boundary; the tracker-level Sync here is then a no-op.
func CaptureSingle(eng *core.Engine, agg *stream.Aggregator, tr *story.Tracker) (*PipelineState, error) {
	gs := eng.Graph().ExportState()
	es := eng.ExportState()
	st := &PipelineState{Graph: &gs, Engine: &es}
	if err := captureFront(st, agg, tr); err != nil {
		return nil, err
	}
	return st, nil
}

// CaptureSharded captures a sharded pipeline (the engine export quiesces the
// deployment). The same Builder.Sync caveat as CaptureSingle applies.
func CaptureSharded(se *shard.ShardedEngine, agg *stream.Aggregator, tr *story.Tracker) (*PipelineState, error) {
	st := &PipelineState{Shard: se.ExportState()}
	if err := captureFront(st, agg, tr); err != nil {
		return nil, err
	}
	return st, nil
}

func captureFront(st *PipelineState, agg *stream.Aggregator, tr *story.Tracker) error {
	if agg != nil {
		as, err := agg.ExportState()
		if err != nil {
			return err
		}
		st.Agg = &as
	}
	if tr != nil {
		tr.Sync()
		ts, err := tr.ExportState()
		if err != nil {
			return err
		}
		st.Tracker = &ts
	}
	return nil
}

// RestoreEngine builds a single engine, importing the recovered state when
// st carries one. A sharded snapshot fed here is a configuration mismatch.
func RestoreEngine(cfg core.Config, st *PipelineState) (*core.Engine, error) {
	eng, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if st == nil || st.Engine == nil {
		if st != nil && st.Shard != nil {
			return nil, fmt.Errorf("persist: snapshot holds sharded state, pipeline is single-engine")
		}
		return eng, nil
	}
	if err := eng.ImportState(*st.Graph, *st.Engine); err != nil {
		return nil, err
	}
	return eng, nil
}

// RestoreSharded builds a sharded deployment, importing the recovered state
// when st carries one.
func RestoreSharded(cfg shard.Config, st *PipelineState) (*shard.ShardedEngine, error) {
	if st == nil || st.Shard == nil {
		if st != nil && st.Engine != nil {
			return nil, fmt.Errorf("persist: snapshot holds single-engine state, pipeline is sharded")
		}
		return shard.New(cfg)
	}
	return shard.NewFromState(cfg, st.Shard)
}

// RestoreAggregator builds the co-occurrence front-end over docs — normally
// the Store's recovery chain — resuming from the recovered weight table and
// epoch clock when st carries one.
func RestoreAggregator(docs stream.DocumentSource, cfg stream.AggregatorConfig, st *PipelineState) (*stream.Aggregator, error) {
	if st == nil || st.Agg == nil {
		return stream.NewAggregator(docs, cfg)
	}
	return stream.NewAggregatorFromState(docs, cfg, *st.Agg)
}

// RestoreTracker builds the story layer, resuming story identities from the
// recovered table when st carries one.
func RestoreTracker(cfg story.Config, st *PipelineState) (*story.Tracker, error) {
	if st == nil || st.Tracker == nil {
		return story.NewTracker(cfg)
	}
	return story.NewTrackerFromState(cfg, *st.Tracker)
}
