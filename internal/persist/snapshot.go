package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	snapMagic   = "DDSNAP1\n"
	snapVersion = 1
)

func snapshotName(seq uint64) string {
	return fmt.Sprintf("snap-%016x.snap", seq)
}

func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[5:len(name)-5], 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// encodeSnapshot serialises a pipeline state into the versioned snapshot
// format: magic, version, fingerprint, payload, CRC-32C trailer over
// everything before it.
func encodeSnapshot(fingerprint string, st *PipelineState) []byte {
	var e encoder
	e.b = append(e.b, snapMagic...)
	e.u32(snapVersion)
	e.str(fingerprint)
	encodePipelineState(&e, st)
	e.u32(crc32.Checksum(e.b, castagnoli))
	return e.b
}

// decodeSnapshot parses and verifies a snapshot file's bytes. Any structural
// damage — bad magic, unknown version, CRC mismatch, truncated payload —
// comes back as an error; a fingerprint mismatch is an error too, because
// restoring a snapshot into a differently configured pipeline would be
// silently wrong.
func decodeSnapshot(raw []byte, fingerprint string) (*PipelineState, error) {
	if len(raw) < len(snapMagic)+8 || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("persist: not a snapshot file")
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("persist: snapshot CRC mismatch")
	}
	d := decoder{b: body, off: len(snapMagic)}
	if v := d.u32(); d.err == nil && v != snapVersion {
		return nil, fmt.Errorf("persist: snapshot version %d not supported (want %d)", v, snapVersion)
	}
	if fp := d.str(); d.err == nil && fp != fingerprint {
		return nil, fmt.Errorf("persist: snapshot fingerprint %q does not match pipeline %q", fp, fingerprint)
	}
	st := decodePipelineState(&d)
	if err := d.done(); err != nil {
		return nil, err
	}
	if err := st.sanity(); err != nil {
		return nil, err
	}
	return st, nil
}

// writeSnapshot atomically writes st as dir's snapshot at st.Seq: the bytes
// go to a temp file first and are renamed into place, so a crash mid-write
// never leaves a half snapshot under the snapshot name. With fsync on, the
// file (and the directory entry) are synced before the rename is reported
// durable.
func writeSnapshot(dir, fingerprint string, st *PipelineState, fsync bool) error {
	raw := encodeSnapshot(fingerprint, st)
	final := filepath.Join(dir, snapshotName(st.Seq))
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return err
	}
	if fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return err
	}
	if fsync {
		if d, err := os.Open(dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}

// loadLatestSnapshot scans dir for snapshots and returns the newest one that
// decodes and matches the fingerprint, falling back to older snapshots when
// the newest is damaged (a torn rename cannot happen, but a bit-flipped file
// can). Returns (nil, 0, nil) when no usable snapshot exists — recovery then
// replays the WAL from the beginning.
func loadLatestSnapshot(dir, fingerprint string) (*PipelineState, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	type snap struct {
		name string
		seq  uint64
	}
	var snaps []snap
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if seq, ok := parseSnapshotName(ent.Name()); ok {
			snaps = append(snaps, snap{name: ent.Name(), seq: seq})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq > snaps[j].seq })
	var lastErr error
	for _, s := range snaps {
		raw, err := os.ReadFile(filepath.Join(dir, s.name))
		if err != nil {
			lastErr = err
			continue
		}
		st, err := decodeSnapshot(raw, fingerprint)
		if err != nil {
			lastErr = err
			continue
		}
		if st.Seq != s.seq {
			lastErr = fmt.Errorf("persist: %s: snapshot covers seq %d, name says %d", s.name, st.Seq, s.seq)
			continue
		}
		return st, s.seq, nil
	}
	if len(snaps) > 0 && lastErr != nil {
		// Every present snapshot is unusable. A fingerprint mismatch means the
		// directory belongs to a different pipeline — refuse loudly rather than
		// silently starting fresh over foreign data.
		return nil, 0, lastErr
	}
	return nil, 0, nil
}

// pruneSnapshots removes snapshots older than the newest keep snapshots, and
// WAL segments whose entire frame range lies at or below the oldest retained
// snapshot's sequence (a later segment's first sequence bounds each segment's
// range). Pruning is best-effort: failures are ignored, extra files only cost
// disk.
func pruneSnapshots(dir string, keep int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var snapSeqs, segSeqs []uint64
	for _, ent := range entries {
		if seq, ok := parseSnapshotName(ent.Name()); ok {
			snapSeqs = append(snapSeqs, seq)
		} else if seq, ok := parseSegmentName(ent.Name()); ok {
			segSeqs = append(segSeqs, seq)
		}
	}
	if len(snapSeqs) <= keep {
		return
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] })
	cutoff := snapSeqs[keep-1] // oldest retained snapshot
	for _, seq := range snapSeqs[keep:] {
		os.Remove(filepath.Join(dir, snapshotName(seq)))
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	for i := 0; i+1 < len(segSeqs); i++ {
		// Segment i spans [segSeqs[i], segSeqs[i+1]); safe to drop only when
		// every frame in it is covered by the oldest retained snapshot.
		if segSeqs[i+1] <= cutoff+1 {
			os.Remove(filepath.Join(dir, segmentName(segSeqs[i])))
		}
	}
}
