package persist

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dyndens/internal/stream"
)

// Low-level corruption tests: each one damages the on-disk state in a specific
// way and pins exactly how much of the stream recovery keeps. The invariant
// throughout is "recover the longest contiguous durable prefix, never fail
// Open over our own damage" — only foreign state (fingerprint mismatch) is a
// hard error.

const testFP = "wal-test:v1"

// writeDocWAL drives docs through a logging store and closes it cleanly, so
// every frame is flushed to disk.
func writeDocWAL(t *testing.T, dir string, docs []stream.Document, segBytes int64) {
	t.Helper()
	st, err := Open(Config{Dir: dir, Fingerprint: testFP, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	src := st.Docs(stream.NewSliceDocSource(docs))
	for {
		if _, err := src.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// reopen opens dir and returns the store plus its decoded replay documents.
func reopen(t *testing.T, dir string) (*Store, []stream.Document) {
	t.Helper()
	st, err := Open(Config{Dir: dir, Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	var docs []stream.Document
	for _, f := range st.replay {
		d, err := decodeDoc(f.payload)
		if err != nil {
			t.Fatalf("frame %d: %v", f.seq, err)
		}
		docs = append(docs, d)
	}
	return st, docs
}

// segments returns dir's segment file names in sequence order.
func segments(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

func TestWALRoundTrip(t *testing.T) {
	docs := testDocs(t, 50)
	dir := t.TempDir()
	writeDocWAL(t, dir, docs, 512) // tiny segments: the chain crosses files
	if n := len(segments(t, dir)); n < 2 {
		t.Fatalf("want multiple segments, got %d", n)
	}
	st, got := reopen(t, dir)
	if st.DurableSeq() != 50 {
		t.Fatalf("durable = %d, want 50", st.DurableSeq())
	}
	if !reflect.DeepEqual(got, docs) {
		t.Fatalf("replayed documents diverge from logged ones")
	}
	for i, f := range st.replay {
		if f.seq != uint64(i+1) {
			t.Fatalf("frame %d has seq %d", i, f.seq)
		}
	}
}

func TestTornFinalFrameTruncates(t *testing.T) {
	docs := testDocs(t, 50)
	dir := t.TempDir()
	writeDocWAL(t, dir, docs, 1<<20) // one segment
	segs := segments(t, dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	st, got := reopen(t, dir)
	if st.DurableSeq() != 49 {
		t.Fatalf("durable = %d, want 49 after torn tail", st.DurableSeq())
	}
	if !reflect.DeepEqual(got, docs[:49]) {
		t.Fatalf("replayed prefix diverges")
	}
	// Open physically truncated the torn bytes; a second recovery must agree.
	st2, _ := reopen(t, dir)
	if st2.DurableSeq() != 49 {
		t.Fatalf("second recovery durable = %d, want 49", st2.DurableSeq())
	}
}

func TestBitFlippedFrameDropped(t *testing.T) {
	docs := testDocs(t, 50)
	dir := t.TempDir()
	writeDocWAL(t, dir, docs, 1<<20)
	segs := segments(t, dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-5] ^= 0x40 // inside the final frame: CRC now mismatches
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st, got := reopen(t, dir)
	if st.DurableSeq() != 49 {
		t.Fatalf("durable = %d, want 49 after bit flip", st.DurableSeq())
	}
	if !reflect.DeepEqual(got, docs[:49]) {
		t.Fatalf("replayed prefix diverges")
	}
}

func TestMissingMiddleSegmentCutsChain(t *testing.T) {
	docs := testDocs(t, 60)
	dir := t.TempDir()
	writeDocWAL(t, dir, docs, 512)
	segs := segments(t, dir)
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	gone := segs[1]
	firstSeq, ok := parseSegmentName(gone)
	if !ok {
		t.Fatalf("bad segment name %q", gone)
	}
	if err := os.Remove(filepath.Join(dir, gone)); err != nil {
		t.Fatal(err)
	}
	st, got := reopen(t, dir)
	want := firstSeq - 1 // everything before the hole; nothing after it
	if st.DurableSeq() != want {
		t.Fatalf("durable = %d, want %d after missing segment", st.DurableSeq(), want)
	}
	if !reflect.DeepEqual(got, docs[:want]) {
		t.Fatalf("replayed prefix diverges")
	}
	// clean() removed the now-unreachable later segments so a restarted writer
	// can reuse their names.
	for _, name := range segments(t, dir) {
		if seq, _ := parseSegmentName(name); seq > want {
			t.Fatalf("segment %s beyond the durable prefix survived cleanup", name)
		}
	}
}

func TestEmptySegmentFileIgnored(t *testing.T) {
	docs := testDocs(t, 20)
	dir := t.TempDir()
	writeDocWAL(t, dir, docs, 1<<20)
	// A crash between segment creation and the first flush leaves a zero-byte
	// file under the next segment name.
	if err := os.WriteFile(filepath.Join(dir, segmentName(21)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	st, got := reopen(t, dir)
	if st.DurableSeq() != 20 {
		t.Fatalf("durable = %d, want 20", st.DurableSeq())
	}
	if !reflect.DeepEqual(got, docs) {
		t.Fatalf("replayed documents diverge")
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName(21))); !os.IsNotExist(err) {
		t.Fatalf("empty segment survived cleanup (err=%v)", err)
	}
}

func TestSnapshotFallbackPastCorrupt(t *testing.T) {
	dir := t.TempDir()
	older := &PipelineState{Seq: 10, Ticks: 4}
	newer := &PipelineState{Seq: 20, Ticks: 9}
	if err := writeSnapshot(dir, testFP, older, false); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(dir, testFP, newer, false); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotName(20))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(Config{Dir: dir, Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored() == nil || st.Restored().Seq != 10 {
		t.Fatalf("restored = %+v, want fallback to the seq-10 snapshot", st.Restored())
	}
	if st.DurableSeq() != 10 {
		t.Fatalf("durable = %d, want 10", st.DurableSeq())
	}
}

func TestFingerprintMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	writeDocWAL(t, dir, testDocs(t, 5), 1<<20)
	if _, err := Open(Config{Dir: dir, Fingerprint: "other-pipeline"}); err == nil {
		t.Fatal("Open accepted a WAL written by a different pipeline")
	}
	dir2 := t.TempDir()
	if err := writeSnapshot(dir2, testFP, &PipelineState{Seq: 3}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir2, Fingerprint: "other-pipeline"}); err == nil {
		t.Fatal("Open accepted a snapshot written by a different pipeline")
	}
}

// sliceBatchSource is a test BatchSource over a fixed batch sequence.
type sliceBatchSource struct {
	batches []stream.Batch
	pos     int
}

func (s *sliceBatchSource) NextBatch() (stream.Batch, error) {
	if s.pos >= len(s.batches) {
		return stream.Batch{}, io.EOF
	}
	b := s.batches[s.pos]
	s.pos++
	return b, nil
}

func TestBatchChainRoundTrip(t *testing.T) {
	batches := []stream.Batch{
		{Updates: []stream.Update{{A: 1, B: 2, Delta: 1.5}, {A: 2, B: 3, Delta: 0.25}}},
		{Updates: []stream.Update{{A: 1, B: 2, Delta: -0.5}}, Decay: true},
		{Updates: []stream.Update{{A: 4, B: 5, Delta: 2}}},
		{Decay: true, Threshold: &stream.ThresholdUpdate{Scale: 0.49},
			Updates: []stream.Update{{A: 2, B: 3, Delta: -0.1}}},
		{Updates: []stream.Update{{A: 5, B: 6, Delta: 3}}},
	}
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	src := st.Batches(&sliceBatchSource{batches: batches})
	for {
		if _, err := src.NextBatch(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(Config{Dir: dir, Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	if st2.DurableSeq() != uint64(len(batches)) {
		t.Fatalf("durable = %d, want %d", st2.DurableSeq(), len(batches))
	}
	replayed := st2.Batches(&sliceBatchSource{}) // empty live source: replay only
	for i, want := range batches {
		got, err := replayed.NextBatch()
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("batch %d diverges:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestBatchChainRejectsThresholdPerUpdate(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	src := st.Batches(&sliceBatchSource{batches: []stream.Batch{
		{Decay: true, Threshold: &stream.ThresholdUpdate{Scale: 0.7}},
	}})
	us, ok := src.(stream.UpdateSource)
	if !ok {
		t.Fatal("batch chain does not serve per-update consumers")
	}
	if _, err := us.Next(); err == nil {
		t.Fatal("per-update replay accepted a threshold unit")
	}
	st.Close()
}
