package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Frame kinds: the input-stream unit a WAL frame carries. A WAL directory
// holds one kind of stream (documents or source batches), enforced by the
// fingerprint, but the reader is kind-agnostic.
const (
	frameDoc       = 1 // one ingested document: time + entity set
	frameBatch     = 2 // one source batch: decay flag + updates
	frameThreshold = 3 // one rescaled-decay epoch unit: scale + cancellations
)

const (
	walMagic     = "DDWSEG1\n"
	frameHdrLen  = 8 // [length u32][crc u32]
	frameMinBody = 9 // [seq u64][kind u8]
	maxFrameBody = 1 << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frame is one decoded WAL record. payload is owned by the frame.
type frame struct {
	seq     uint64
	kind    uint8
	payload []byte
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016x.seg", firstSeq)
}

// parseSegmentName returns the first sequence encoded in a segment file name,
// or false if the name is not a WAL segment.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[4:len(name)-4], 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// walWriter appends frames to segment files, rotating at segBytes. Appends
// are buffered; Flush makes them crash-durable against process death, Sync
// additionally against power loss.
type walWriter struct {
	dir         string
	fingerprint string
	segBytes    int64
	fsync       bool

	f       *os.File
	bw      *bufio.Writer
	size    int64
	nextSeq uint64

	frames  uint64 // frames appended this process
	bytes   uint64 // frame bytes appended this process
	hdr     [frameHdrLen]byte
	scratch encoder
}

func newWALWriter(dir, fingerprint string, segBytes int64, fsync bool, nextSeq uint64) *walWriter {
	if segBytes <= 0 {
		segBytes = 64 << 20
	}
	return &walWriter{dir: dir, fingerprint: fingerprint, segBytes: segBytes, fsync: fsync, nextSeq: nextSeq}
}

// openSegment starts a fresh segment whose first frame will be w.nextSeq.
func (w *walWriter) openSegment() error {
	if err := w.closeSegment(); err != nil {
		return err
	}
	path := filepath.Join(w.dir, segmentName(w.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	var e encoder
	e.b = append(e.b, walMagic...)
	e.str(w.fingerprint)
	e.u64(w.nextSeq)
	if _, err := w.bw.Write(e.b); err != nil {
		return err
	}
	w.size = int64(len(e.b))
	return nil
}

func (w *walWriter) closeSegment() error {
	if w.f == nil {
		return nil
	}
	err := w.bw.Flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f, w.bw = nil, nil
	return err
}

// append writes one frame carrying payload under the next sequence number and
// returns that sequence. With fsync on, the frame is synced to stable storage
// before append returns.
func (w *walWriter) append(kind uint8, payload []byte) (uint64, error) {
	frameLen := int64(frameHdrLen + frameMinBody + len(payload))
	if w.f == nil || (w.size > int64(len(walMagic)) && w.size+frameLen > w.segBytes) {
		if err := w.openSegment(); err != nil {
			return 0, err
		}
	}
	seq := w.nextSeq
	e := &w.scratch
	e.b = e.b[:0]
	e.u64(seq)
	e.u8(kind)
	e.b = append(e.b, payload...)
	binary.LittleEndian.PutUint32(w.hdr[0:4], uint32(len(e.b)))
	binary.LittleEndian.PutUint32(w.hdr[4:8], crc32.Checksum(e.b, castagnoli))
	if _, err := w.bw.Write(w.hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.bw.Write(e.b); err != nil {
		return 0, err
	}
	w.size += frameLen
	w.nextSeq++
	w.frames++
	w.bytes += uint64(frameLen)
	if w.fsync {
		if err := w.bw.Flush(); err != nil {
			return 0, err
		}
		if err := w.f.Sync(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// flush pushes buffered frames to the OS (durable across process death, not
// power loss unless fsync mode is on — then every append already synced).
func (w *walWriter) flush() error {
	if w.bw == nil {
		return nil
	}
	return w.bw.Flush()
}

func (w *walWriter) close() error { return w.closeSegment() }

// segScan is one segment file's scan result: its CRC-valid frame prefix with
// per-frame end offsets (for physical truncation of a torn tail), whether a
// torn/corrupt tail followed, and the byte length of the header.
type segScan struct {
	name      string
	firstSeq  uint64
	frames    []frame
	ends      []int64 // ends[i] = file offset just past frames[i]
	headerEnd int64
	torn      bool
}

// readSegment reads one segment file's valid frame prefix. A corrupt or torn
// tail ends the scan (torn=true); frames before it are returned. A damaged
// header — a zero-byte file from a crash between segment creation and the
// first flush, or a bit-flipped magic — yields a frameless torn scan with
// headerEnd < 0 (the file holds nothing recoverable); only a *valid* header
// with the wrong fingerprint is a hard error, because that means the
// directory belongs to a differently configured pipeline.
func readSegment(path, fingerprint string) (segScan, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return segScan{}, err
	}
	if len(raw) < len(walMagic) || string(raw[:len(walMagic)]) != walMagic {
		return segScan{name: filepath.Base(path), torn: true, headerEnd: -1}, nil
	}
	d := decoder{b: raw, off: len(walMagic)}
	fp := d.str()
	sc := segScan{name: filepath.Base(path), firstSeq: d.u64()}
	if d.err != nil {
		return segScan{name: filepath.Base(path), torn: true, headerEnd: -1}, nil
	}
	if fp != fingerprint {
		return segScan{}, fmt.Errorf("persist: %s: fingerprint %q does not match pipeline %q", path, fp, fingerprint)
	}
	sc.headerEnd = int64(d.off)
	off := d.off
	for off < len(raw) {
		if off+frameHdrLen > len(raw) {
			sc.torn = true
			return sc, nil
		}
		n := int(binary.LittleEndian.Uint32(raw[off : off+4]))
		crc := binary.LittleEndian.Uint32(raw[off+4 : off+8])
		if n < frameMinBody || n > maxFrameBody || off+frameHdrLen+n > len(raw) {
			sc.torn = true
			return sc, nil
		}
		body := raw[off+frameHdrLen : off+frameHdrLen+n]
		if crc32.Checksum(body, castagnoli) != crc {
			sc.torn = true
			return sc, nil
		}
		sc.frames = append(sc.frames, frame{
			seq:     binary.LittleEndian.Uint64(body[:8]),
			kind:    body[8],
			payload: append([]byte(nil), body[frameMinBody:]...),
		})
		off += frameHdrLen + n
		sc.ends = append(sc.ends, int64(off))
	}
	return sc, nil
}

// walScan is the whole directory's scan: the longest contiguous frame chain
// plus the per-segment detail needed to physically clean the tail.
type walScan struct {
	chain []frame
	segs  []segScan
}

// scanWAL reads dir's segments in sequence order and assembles the longest
// contiguous frame chain. Corruption is contained, never fatal: a torn or
// bit-flipped tail truncates recovery to the last good frame, and a sequence
// gap (lost or mid-stream-corrupted segment) cuts the chain at the last
// contiguous unit — later segments are ignored, because replaying past a
// hole would desynchronise the stream.
func scanWAL(dir, fingerprint string) (walScan, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, io.EOF) || os.IsNotExist(err) {
			return walScan{}, nil
		}
		return walScan{}, err
	}
	var names []string
	seqs := map[string]uint64{}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if seq, ok := parseSegmentName(ent.Name()); ok {
			names = append(names, ent.Name())
			seqs[ent.Name()] = seq
		}
	}
	sort.Slice(names, func(i, j int) bool { return seqs[names[i]] < seqs[names[j]] })
	var scan walScan
	broken := false
	for _, name := range names {
		sc, err := readSegment(filepath.Join(dir, name), fingerprint)
		if err != nil {
			return walScan{}, err
		}
		if sc.headerEnd < 0 {
			// Damaged header: nothing recoverable. Take the first sequence from
			// the file name so clean() can remove or truncate it.
			sc.firstSeq = seqs[name]
		} else if sc.firstSeq != seqs[name] {
			return walScan{}, fmt.Errorf("persist: %s: header sequence %d does not match name", name, sc.firstSeq)
		}
		scan.segs = append(scan.segs, sc)
		if broken {
			continue // chain already cut; keep scanning only for cleanup info
		}
		if len(scan.chain) > 0 && sc.firstSeq > scan.chain[len(scan.chain)-1].seq+1 {
			broken = true // gap between segments
			continue
		}
		for _, f := range sc.frames {
			want := sc.firstSeq
			if len(scan.chain) > 0 {
				want = scan.chain[len(scan.chain)-1].seq + 1
			}
			if f.seq != want {
				broken = true // in-segment gap: stop at the last good frame
				break
			}
			scan.chain = append(scan.chain, f)
		}
		if sc.torn {
			broken = true // nothing after a torn tail can be contiguous
		}
	}
	return scan, nil
}

// clean physically reconciles the directory with the recovered durable
// prefix: segments wholly beyond durableSeq are removed (their frames are
// unreachable and their names would collide with future appends), and the
// segment containing durableSeq is truncated just past its last durable
// frame, clearing torn bytes and post-gap garbage. Best-effort: a failure
// here only leaves extra bytes that the next recovery will skip again.
func (s walScan) clean(dir string, durableSeq uint64) {
	for _, sc := range s.segs {
		path := filepath.Join(dir, sc.name)
		if sc.headerEnd < 0 || sc.firstSeq > durableSeq {
			// Damaged header or wholly beyond the durable prefix: the file holds
			// nothing recoverable and its name would collide with a re-append.
			os.Remove(path)
			continue
		}
		keep := durableSeq - sc.firstSeq + 1
		if keep >= uint64(len(sc.ends)) {
			if sc.torn && len(sc.ends) > 0 {
				os.Truncate(path, sc.ends[len(sc.ends)-1])
			} else if sc.torn {
				os.Truncate(path, sc.headerEnd)
			}
			continue
		}
		end := sc.headerEnd
		if keep > 0 {
			end = sc.ends[keep-1]
		}
		os.Truncate(path, end)
	}
}
