package persist

import (
	"fmt"
	"os"
	"sync"

	"dyndens/internal/stream"
)

// Config configures a durability Store.
type Config struct {
	// Dir is the WAL/snapshot directory; created if missing.
	Dir string
	// Fingerprint identifies the pipeline configuration (mode, decay, shard
	// count, batch framing, input identity). Snapshots and segments record it
	// and recovery refuses state written by a differently configured
	// pipeline: restoring across configurations would be silently wrong.
	Fingerprint string
	// SnapshotEvery is the number of input units between periodic snapshots;
	// 0 disables periodic snapshotting (the WAL alone still recovers, and
	// explicit Checkpoints still work).
	SnapshotEvery uint64
	// Fsync makes every WAL append and snapshot write reach stable storage
	// before returning — power-loss durability at a heavy per-unit cost.
	// Off, appends are buffered and flushed at snapshot boundaries and
	// Close: a process crash loses at most the buffered tail, which recovery
	// truncates to the last complete frame (the input file re-supplies the
	// lost units on restart, so nothing is actually lost for re-readable
	// inputs; only non-replayable inputs like stdin need Fsync).
	Fsync bool
	// SegmentBytes is the WAL segment rotation threshold (default 64 MiB).
	SegmentBytes int64
	// LiveTail marks the wrapped live source as a continuation — a pipe or
	// stdin that resumes at the crash point instead of restarting from unit
	// one. The recovery chain then skips nothing after replaying the WAL.
	// Re-readable inputs (files, seeded generators) leave this false and get
	// the durable prefix skipped. Non-replayable inputs should also set Fsync:
	// without it a crash loses the buffered WAL tail, and a continuation
	// stream cannot re-supply those units.
	LiveTail bool
	// SnapshotsKept is how many snapshots survive pruning (default 2: the
	// newest plus one fallback).
	SnapshotsKept int
}

// StoreStats counts the durability work performed by this process — the
// numbers behind the bench harness's WAL-overhead accounting.
type StoreStats struct {
	FramesLogged   uint64 // WAL frames appended
	BytesLogged    uint64 // WAL bytes appended (headers included)
	SnapshotsCut   uint64 // snapshots written
	RecoveredUnits uint64 // durable units found at Open (snapshot + WAL)
	ReplayedFrames uint64 // WAL frames replayed through the pipeline at Open
}

// Store is one pipeline's durability session: it recovers the newest
// consistent state at Open, hands out a recovery-transparent source wrapper
// (Docs or Batches — exactly one per Store), logs every new input unit to
// the WAL, and cuts periodic snapshots in the background without stalling
// the writer.
//
// Threading: Open, Docs/Batches, MaybeSnapshot, Checkpoint, and Close are
// called from the pipeline's producer goroutine (the replay driver); only
// the snapshot encoder/writer runs concurrently, over state that was
// captured synchronously at a drained boundary. Stats may be read from any
// goroutine.
type Store struct {
	cfg        Config
	restored   *PipelineState
	replay     []frame // WAL frames past the restored snapshot, ready to feed
	durableSeq uint64  // durable units at Open (snapshot + contiguous WAL)
	wal        *walWriter
	wrapped    bool

	mu        sync.Mutex
	seq       uint64 // last unit logged (starts at durableSeq)
	lastSnap  uint64
	snapErr   error
	snapshots uint64
	snapWG    sync.WaitGroup
}

// Open recovers dir and prepares it for appending. Recovery loads the newest
// valid snapshot (falling back past damaged ones), replays the WAL's
// contiguous frame chain beyond it, truncates any torn or corrupt tail to
// the last complete frame, and removes frames the recovered state
// supersedes. A fresh or empty directory opens with no restored state.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("persist: empty WAL directory")
	}
	if cfg.SnapshotsKept <= 0 {
		cfg.SnapshotsKept = 2
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	st, snapSeq, err := loadLatestSnapshot(cfg.Dir, cfg.Fingerprint)
	if err != nil {
		return nil, err
	}
	scan, err := scanWAL(cfg.Dir, cfg.Fingerprint)
	if err != nil {
		return nil, err
	}
	chain := scan.chain
	// Keep only frames past the snapshot; a gap between the snapshot and the
	// surviving chain means the intermediate frames are unrecoverable, so
	// recovery stops at the snapshot (the last consistent state).
	for len(chain) > 0 && chain[0].seq <= snapSeq {
		chain = chain[1:]
	}
	if len(chain) > 0 && chain[0].seq != snapSeq+1 {
		chain = nil
	}
	durable := snapSeq
	if len(chain) > 0 {
		durable = chain[len(chain)-1].seq
	}
	scan.clean(cfg.Dir, durable)
	s := &Store{
		cfg:        cfg,
		restored:   st,
		replay:     chain,
		durableSeq: durable,
		seq:        durable,
		lastSnap:   snapSeq,
		wal:        newWALWriter(cfg.Dir, cfg.Fingerprint, cfg.SegmentBytes, cfg.Fsync, durable+1),
	}
	return s, nil
}

// Restored returns the recovered snapshot state, or nil when the pipeline
// starts fresh (no snapshot; any surviving WAL frames then replay from unit
// one through a freshly built pipeline).
func (s *Store) Restored() *PipelineState { return s.restored }

// DurableSeq returns the number of input units that were already durable at
// Open — the prefix of the live source the wrapped chain skips.
func (s *Store) DurableSeq() uint64 { return s.durableSeq }

// skipUnits is the live-source prefix the recovery chains skip: the durable
// prefix for re-readable inputs, nothing for continuation streams (LiveTail).
func (s *Store) skipUnits() uint64 {
	if s.cfg.LiveTail {
		return 0
	}
	return s.durableSeq
}

// BaseTicks returns the cumulative engine tick count covered by the restored
// snapshot (0 when fresh): the offset a restarted driver adds to its own tick
// count when closing boundary-aware consumers.
func (s *Store) BaseTicks() uint64 {
	if s.restored == nil {
		return 0
	}
	return s.restored.Ticks
}

// Docs wraps the pipeline's live document source into the recovery chain:
// WAL-replayed documents first, then live documents past the durable prefix,
// each logged as it is handed out.
func (s *Store) Docs(live stream.DocumentSource) stream.DocumentSource {
	s.claimWrap()
	return &docChain{s: s, frames: s.replay, live: live}
}

// Batches wraps the pipeline's live batch source into the recovery chain:
// one WAL frame per batch unit, so decay provenance and threshold units
// survive the WAL/live seam. The returned source also implements
// stream.UpdateSource for per-update drivers.
func (s *Store) Batches(live stream.BatchSource) stream.BatchSource {
	s.claimWrap()
	return &batchChain{s: s, frames: s.replay, live: live}
}

func (s *Store) claimWrap() {
	if s.wrapped {
		panic("persist: source already wrapped; one chain per Store")
	}
	s.wrapped = true
}

// logFrame appends one input unit to the WAL; called by the chains on the
// producer goroutine.
func (s *Store) logFrame(kind uint8, payload []byte) error {
	seq, err := s.wal.append(kind, payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.seq = seq
	s.mu.Unlock()
	return nil
}

// Seq returns the sequence of the last unit handed downstream (durable or
// logged this session).
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// MaybeSnapshot cuts a background snapshot when at least SnapshotEvery units
// have been logged since the last one. capture must serialise the pipeline's
// state synchronously — the exports clone everything they keep, which is the
// copy-on-write trick that lets encoding and the disk write proceed on a
// background goroutine while the writer keeps streaming; the writer is never
// stalled for longer than the capture itself. Call it from a replay boundary
// hook at drained boundaries only. Errors from earlier background writes are
// reported here (and by Checkpoint/Close).
func (s *Store) MaybeSnapshot(capture func() (*PipelineState, error)) error {
	s.mu.Lock()
	due := s.cfg.SnapshotEvery > 0 && s.seq >= s.lastSnap+s.cfg.SnapshotEvery
	err := s.snapErr
	s.snapErr = nil
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if !due {
		return nil
	}
	// Flush first: if the snapshot write tears, recovery falls back to the
	// previous snapshot plus these frames — nothing regresses.
	if err := s.wal.flush(); err != nil {
		return err
	}
	st, err := capture()
	if err != nil {
		return err
	}
	seq := s.Seq()
	st.Seq = seq
	s.mu.Lock()
	s.lastSnap = seq // claim the slot; rolled back on write failure
	s.mu.Unlock()
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		werr := writeSnapshot(s.cfg.Dir, s.cfg.Fingerprint, st, s.cfg.Fsync)
		s.mu.Lock()
		if werr != nil {
			s.snapErr = werr
		} else {
			s.snapshots++
		}
		s.mu.Unlock()
		if werr == nil {
			pruneSnapshots(s.cfg.Dir, s.cfg.SnapshotsKept)
		}
	}()
	return nil
}

// Checkpoint synchronously flushes the WAL and writes a snapshot of the
// captured state — the final checkpoint a graceful stop cuts. It waits for
// any in-flight background snapshot first.
func (s *Store) Checkpoint(capture func() (*PipelineState, error)) error {
	s.snapWG.Wait()
	s.mu.Lock()
	err := s.snapErr
	s.snapErr = nil
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if err := s.wal.flush(); err != nil {
		return err
	}
	st, err := capture()
	if err != nil {
		return err
	}
	st.Seq = s.Seq()
	if err := writeSnapshot(s.cfg.Dir, s.cfg.Fingerprint, st, s.cfg.Fsync); err != nil {
		return err
	}
	s.mu.Lock()
	s.lastSnap = st.Seq
	s.snapshots++
	s.mu.Unlock()
	pruneSnapshots(s.cfg.Dir, s.cfg.SnapshotsKept)
	return nil
}

// Stats returns the durability counters accumulated by this session.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		FramesLogged:   s.wal.frames,
		BytesLogged:    s.wal.bytes,
		SnapshotsCut:   s.snapshots,
		RecoveredUnits: s.durableSeq,
		ReplayedFrames: uint64(len(s.replay)),
	}
}

// Close flushes the WAL, waits for any in-flight snapshot, and releases the
// segment file. It does not cut a snapshot — graceful stops call Checkpoint
// first; crashes, by definition, call nothing.
func (s *Store) Close() error {
	s.snapWG.Wait()
	err := s.wal.close()
	s.mu.Lock()
	if err == nil && s.snapErr != nil {
		err = s.snapErr
		s.snapErr = nil
	}
	s.mu.Unlock()
	return err
}
