module dyndens

go 1.24
