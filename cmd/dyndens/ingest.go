package main

import (
	"flag"
	"fmt"

	"dyndens/internal/stream"
)

// aggWorkersFlag registers the pipelined-ingestion flag shared by the replay
// drivers. 0 keeps the serial in-line front-end. N > 0 switches to the
// bounded pipelined front-end: for the document commands that is N parallel
// expansion workers (parse + pair enumeration) feeding the order-restoring
// sequencer; for raw edge replay, which has no expansion stage, any N > 0
// decouples source reads onto a producer goroutine. Either way the emitted
// update/batch stream is identical to the serial front-end's.
func aggWorkersFlag(fs *flag.FlagSet) func() (int, error) {
	w := fs.Int("agg-workers", 0, "pipelined ingestion front-end: parallel document-expansion workers (0 = serial in-line front-end)")
	return func() (int, error) {
		if *w < 0 {
			return 0, fmt.Errorf("-agg-workers must be ≥ 0, got %d", *w)
		}
		return *w, nil
	}
}

// docFrontEnd abstracts the serial and pipelined document front-ends for the
// drivers: both produce the identical update/batch stream and the same final
// aggregation counters, so the summary and JSON paths need not care which ran.
type docFrontEnd interface {
	stream.UpdateSource
	Stats() stream.AggregatorStats
}

// pipelineAgg adapts the parallel front-end to docFrontEnd. The sequencer
// publishes the final aggregation counters when the stream terminates, which
// is the only point the drivers read them.
type pipelineAgg struct{ *stream.Pipeline }

func (p pipelineAgg) Stats() stream.AggregatorStats {
	s, _ := p.AggregatorStats()
	return s
}

// newDocFrontEnd builds the document → co-occurrence-update front-end: the
// serial in-line aggregator for workers == 0, the pipelined parallel one
// otherwise. The returned cleanup releases the pipeline goroutines (a no-op
// for the serial front-end); it is safe to call after a drained stream.
func newDocFrontEnd(docs stream.DocumentSource, aggCfg stream.AggregatorConfig, workers int) (docFrontEnd, func(), error) {
	if workers <= 0 {
		agg, err := stream.NewAggregator(docs, aggCfg)
		if err != nil {
			return nil, nil, err
		}
		return agg, func() {}, nil
	}
	pipe, err := stream.NewParallelAggregator(docs, aggCfg, stream.PipelineConfig{Workers: workers})
	if err != nil {
		return nil, nil, err
	}
	return pipelineAgg{pipe}, func() { pipe.Close() }, nil
}
