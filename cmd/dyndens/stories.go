package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dyndens/internal/persist"
	"dyndens/internal/shard"
	"dyndens/internal/story"
	"dyndens/internal/stream"
)

// cmdStories dispatches the document-pipeline subcommands: the end-to-end
// documents → co-occurrence updates → engine → story tracker path of the
// paper (Section 2), as opposed to gen/run/bench which start at raw edge
// deltas.
func cmdStories(args []string) error {
	if len(args) < 1 {
		storiesUsage()
		return fmt.Errorf("stories: missing subcommand")
	}
	switch args[0] {
	case "gen-docs":
		return cmdStoriesGenDocs(args[1:])
	case "run":
		return cmdStoriesRun(args[1:])
	case "-h", "--help", "help":
		storiesUsage()
		return nil
	default:
		storiesUsage()
		return fmt.Errorf("stories: unknown subcommand %q", args[0])
	}
}

func storiesUsage() {
	fmt.Fprint(os.Stderr, `usage: dyndens stories <subcommand> [flags]

subcommands:
  gen-docs  generate a seeded synthetic document stream (planted stories
            over Zipf background noise) as a `+"`time e1 e2 ...`"+` file
  run       replay a document stream (file, stdin, or -synth) through the
            aggregation → engine → story-tracking pipeline, printing the
            story lifecycle log and the final story table
`)
}

// docSynthFlags registers the synthetic document generator flags shared by
// gen-docs and run -synth. The defaults are the repo's reference story
// workload: co-occurrence weights land in the band where planted stories are
// recovered as output-dense subgraphs (with -T 6.5 -nmax 4, the stories run
// defaults) while background chatter stays below threshold.
func docSynthFlags(fs *flag.FlagSet) func() (stream.DocSynthConfig, error) {
	entities := fs.Int("entities", 30, "background entity universe size")
	stories := fs.Int("stories", 3, "number of planted stories")
	storySize := fs.Int("story-size", 4, "entities per planted story")
	docs := fs.Int("docs", 600, "number of documents to generate")
	seed := fs.Int64("seed", 7, "generator seed")
	storyFrac := fs.Float64("story-frac", 0.75, "fraction of documents drawn for a planted story (0 = none)")
	mentions := fs.Int("story-mentions", 0, "story entities mentioned per story document (0 = min(3, story-size))")
	bgMentions := fs.Int("bg-mentions", 3, "entities mentioned per background document")
	skew := fs.Float64("bg-skew", 1.1, "Zipf exponent for background entity popularity (≤ 1 = uniform)")
	noise := fs.Float64("noise", 0, "probability a story document also mentions a background entity (0 = never)")
	lifetime := fs.Float64("lifetime", 0.6, "each story's activity window as a fraction of the stream")
	return func() (stream.DocSynthConfig, error) {
		// On the command line a probability of 0 means "never"; the config
		// layer spells that -1 (its 0 selects the built-in default).
		return stream.DocSynthConfig{
			BackgroundEntities: *entities,
			Stories:            *stories,
			StorySize:          *storySize,
			Docs:               *docs,
			Seed:               *seed,
			StoryFraction:      cliProb(*storyFrac),
			StoryMentions:      *mentions,
			BackgroundMentions: *bgMentions,
			BackgroundSkew:     *skew,
			NoiseMentionProb:   cliProb(*noise),
			StoryLifetime:      *lifetime,
		}, nil
	}
}

// cliProb translates a command-line probability into the config layer's
// convention: the flags' 0 means "never", which the configs spell as a
// negative value (their 0 means "use the default").
func cliProb(v float64) float64 {
	if v == 0 {
		return -1
	}
	return v
}

// aggregatorFlags registers the co-occurrence aggregation flags.
func aggregatorFlags(fs *flag.FlagSet) func() (stream.AggregatorConfig, error) {
	epoch := fs.Int64("epoch", 25, "fading epoch length in document time units")
	decay := fs.Float64("decay", 0.7, "multiplicative per-epoch fading factor in (0, 1]")
	docWeight := fs.Float64("doc-weight", 1, "edge weight contributed by one co-occurrence")
	prune := fs.Float64("prune", 1e-3, "retire pairs whose faded weight drops below this (≤0 = never)")
	mode := fs.String("decay-mode", "rescale", "epoch fading realisation: rescale (O(1) ticks: normalized weights + threshold updates) or exact (paper-literal per-pair sweep, the conformance reference)")
	return func() (stream.AggregatorConfig, error) {
		// The config layer treats zero fields as "use the default", so an
		// explicitly invalid flag must fail loudly here rather than be
		// silently remapped.
		if err := checkDecay(*decay); err != nil {
			return stream.AggregatorConfig{}, err
		}
		if *docWeight <= 0 {
			return stream.AggregatorConfig{}, fmt.Errorf("-doc-weight must be positive, got %g", *docWeight)
		}
		dm, err := stream.ParseDecayMode(*mode)
		if err != nil {
			return stream.AggregatorConfig{}, fmt.Errorf("-decay-mode: %w", err)
		}
		p := *prune
		if p <= 0 {
			p = -1 // ≤0 on the command line means never prune
		}
		return stream.AggregatorConfig{
			EpochLength: *epoch,
			Decay:       *decay,
			DocWeight:   *docWeight,
			PruneBelow:  p,
			DecayMode:   dm,
		}, nil
	}
}

// checkDecay rejects fading factors outside (0, 1] before the config layer's
// zero-means-default rule can swallow them.
func checkDecay(decay float64) error {
	if decay <= 0 || decay > 1 {
		return fmt.Errorf("-decay must be in (0, 1], got %g", decay)
	}
	return nil
}

// trackerFlags registers the story-identity flags.
func trackerFlags(fs *flag.FlagSet) func() (story.Config, error) {
	jaccard := fs.Float64("jaccard", 0.5, "continuity threshold: Jaccard similarity for a subgraph to join a story")
	grace := fs.Uint64("grace", 350, "updates a story survives with no output-dense subgraph (0 = none: die at the first update after fading)")
	minCard := fs.Int("min-card", 3, "ignore output-dense subgraphs smaller than this")
	return func() (story.Config, error) {
		// On the command line 0 means "no grace at all"; the config layer
		// spells that story.GraceNone (its 0 selects the built-in default).
		g := *grace
		if g == 0 {
			g = story.GraceNone
		}
		return story.Config{
			MinJaccard:     *jaccard,
			Grace:          g,
			MinCardinality: *minCard,
		}, nil
	}
}

// cmdStoriesGenDocs generates a seeded synthetic document stream in the
// `time e1 e2 ...` format that `dyndens stories run` (and
// stream.DocFileSource) reads back. An -out path ending in .gz is written
// gzip-compressed.
func cmdStoriesGenDocs(args []string) error {
	fs := flag.NewFlagSet("dyndens stories gen-docs", flag.ExitOnError)
	newSynth := docSynthFlags(fs)
	out := fs.String("out", "-", "output path (- for stdout, .gz compresses)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rejectPositionalArgs(fs, "dyndens stories gen-docs"); err != nil {
		return err
	}
	cfg, err := newSynth()
	if err != nil {
		return err
	}
	gen, err := stream.NewDocSynthetic(cfg)
	if err != nil {
		return err
	}
	docs, err := stream.DrainDocs(gen)
	if err != nil {
		return err
	}

	w, closeOut, err := createOutput(*out)
	if err != nil {
		return err
	}
	// The header is a replayable provenance record of the effective
	// configuration; a probability of 0 means "never" both here and on the
	// command line (cliProb handles the config layer's 0-means-default).
	cfg = gen.Config()
	if _, err := fmt.Fprintf(w,
		"# dyndens stories gen-docs -entities %d -stories %d -story-size %d -docs %d -seed %d -story-frac %g -story-mentions %d -bg-mentions %d -bg-skew %g -noise %g -lifetime %g\n",
		cfg.BackgroundEntities, cfg.Stories, cfg.StorySize, cfg.Docs, cfg.Seed,
		cfg.StoryFraction, cfg.StoryMentions, cfg.BackgroundMentions,
		cfg.BackgroundSkew, cfg.NoiseMentionProb, cfg.StoryLifetime); err != nil {
		closeOut()
		return err
	}
	for _, p := range gen.PlantedStories() {
		if _, err := fmt.Fprintf(w, "# planted %v docs [%d, %d)\n", p.Entities, p.Start, p.End); err != nil {
			closeOut()
			return err
		}
	}
	n, err := stream.WriteDocuments(w, docs)
	if err != nil {
		closeOut()
		return err
	}
	if err := closeOut(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d documents to %s\n", n, *out)
	return nil
}

// cmdStoriesRun replays a document stream through the full pipeline:
// DocumentSource → co-occurrence Aggregator → engine (single-threaded, or
// sharded across K workers with -shards K) → story Tracker. The story
// lifecycle log streams to stdout as records are produced, and the run ends
// with the throughput summary, the aggregation and story statistics, and the
// final story table. The lifecycle log and table are deterministic for a
// given input and identical for every shard count.
func cmdStoriesRun(args []string) error {
	fs := flag.NewFlagSet("dyndens stories run", flag.ExitOnError)
	input := fs.String("input", "-", "document stream path (- for stdin), `time e1 e2 ...` lines")
	synth := fs.Bool("synth", false, "generate the documents instead of reading -input (see gen-docs flags)")
	batch := fs.Int("read-batch", 256, "micro-batch size for the replay driver (unused with -batch: the aggregator's own epoch/document batches are never split)")
	batchMode := fs.Bool("batch", false, "epoch coalescing: ship each decay burst and each document's deltas whole as one Engine.ProcessBatch (story grace then counts batch ticks)")
	shards := fs.Int("shards", 0, "partition the engine across K workers (0 = single-threaded)")
	newOverlap := overlapFlag(fs)
	newAggWorkers := aggWorkersFlag(fs)
	quiet := fs.Bool("quiet", false, "suppress the streaming lifecycle log, print only summaries and the table")
	newSynthCfg := docSynthFlags(fs)
	newAggCfg := aggregatorFlags(fs)
	newTrkCfg := trackerFlags(fs)
	newEngineCfg := engineFlags(fs, 6.5, 4)
	newWAL := walFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rejectPositionalArgs(fs, "dyndens stories run"); err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("stories run: -shards must be ≥ 0, got %d", *shards)
	}
	aggWorkers, err := newAggWorkers()
	if err != nil {
		return fmt.Errorf("stories run: %w", err)
	}
	walOpts, err := newWAL()
	if err != nil {
		return fmt.Errorf("stories run: %w", err)
	}
	if walOpts.enabled() && aggWorkers > 0 {
		return fmt.Errorf("stories run: -wal is incompatible with -agg-workers (the WAL logs documents on the replay goroutine; a pipelined producer would race it)")
	}
	// Validate even for the single-threaded path, where the value is unused —
	// a typo'd -overlap should fail loudly regardless of -shards.
	if _, err := newOverlap(); err != nil {
		return err
	}
	engCfg, err := newEngineCfg()
	if err != nil {
		return err
	}
	aggCfg, err := newAggCfg()
	if err != nil {
		return err
	}
	trkCfg, err := newTrkCfg()
	if err != nil {
		return err
	}

	var docs stream.DocumentSource
	inputID := *input // the fingerprint's input-identity component
	liveTail := false
	switch {
	case *synth:
		cfg, err := newSynthCfg()
		if err != nil {
			return err
		}
		gen, err := stream.NewDocSynthetic(cfg)
		if err != nil {
			return err
		}
		docs = gen
		inputID = fmt.Sprintf("synth:%+v", gen.Config())
	case *input == "-":
		docs = stream.NewDocReaderSource("stdin", os.Stdin)
		liveTail = true // stdin continues at the crash point, it cannot re-read
	default:
		f, err := stream.OpenDocFile(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		docs = f
	}

	// Durability: log every document to the WAL and recover past state at
	// open. Only documents are logged — the aggregator deterministically
	// regenerates the co-occurrence updates on replay, so the WAL stays small
	// and the fingerprint must bind every knob that shapes the derived stream.
	var pst *persist.Store
	var restored *persist.PipelineState
	if walOpts.enabled() {
		overlap, err := newOverlap()
		if err != nil {
			return err
		}
		fp := fmt.Sprintf("stories:v1:input=%s,batch=%v,shards=%d,overlap=%s,%s,%s,%s",
			inputID, *batchMode, *shards, overlap,
			aggFingerprint(aggCfg), trackerFingerprint(trkCfg), engineFingerprint(engCfg))
		if pst, err = openWAL(walOpts, fp, liveTail); err != nil {
			return err
		}
		restored = pst.Restored()
		docs = pst.Docs(docs)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var front docFrontEnd
	var agg *stream.Aggregator
	closeFront := func() {}
	if pst != nil {
		// The persisted path pins the serial in-line aggregator: its Drained
		// boundaries are the consistent snapshot points.
		if agg, err = persist.RestoreAggregator(docs, aggCfg, restored); err != nil {
			return err
		}
		front = agg
	} else if front, closeFront, err = newDocFrontEnd(docs, aggCfg, aggWorkers); err != nil {
		return err
	}
	defer closeFront()
	tracker, err := persist.RestoreTracker(trkCfg, restored)
	if err != nil {
		return err
	}
	if !*quiet {
		tracker.SetRecordSink(func(r story.Record) { fmt.Println(r) })
	}
	baseTicks := uint64(0)
	if pst != nil {
		baseTicks = pst.BaseTicks()
	}

	// storiesHook is the per-batch boundary hook: stop cleanly on a signal
	// and snapshot periodically — both only at drained boundaries, where the
	// aggregator has handed out every update of the documents consumed so far
	// (mid-document state would not be capturable).
	storiesHook := func(capture func() (*persist.PipelineState, error)) func() error {
		return func() error {
			if ctx.Err() != nil {
				if pst == nil {
					return stream.ErrStopped
				}
				if !agg.Drained() {
					return nil // run on to the next drained boundary first
				}
				if err := pst.Checkpoint(capture); err != nil {
					return err
				}
				return stream.ErrStopped
			}
			if pst != nil && agg.Drained() {
				return pst.MaybeSnapshot(capture)
			}
			return nil
		}
	}

	if *shards > 0 {
		overlap, err := newOverlap()
		if err != nil {
			return err
		}
		se, err := persist.RestoreSharded(shard.Config{Shards: *shards, Engine: engCfg, Overlap: overlap}, restored)
		if err != nil {
			return err
		}
		defer se.Close()
		se.SetSeqSink(tracker)
		r := stream.NewShardReplay(front, se, nil)
		capture := func() (*persist.PipelineState, error) {
			ps, err := persist.CaptureSharded(se, agg, tracker)
			if err != nil {
				return nil, err
			}
			ps.Ticks = baseTicks + uint64(r.Stats().Ticks)
			return ps, nil
		}
		r.SetBoundaryHook(storiesHook(capture))
		var st stream.ShardReplayStats
		switch {
		case *batchMode:
			st, err = r.RunBatches(*batch, true)
		case aggCfg.DecayMode == stream.DecayRescale || pst != nil:
			// Rescaled decay is batch-structured (threshold epoch units), so
			// the non-coalescing replay still runs through the batch driver —
			// documents are fed per-update, epochs as atomic threshold ticks.
			// Persisted runs need it too: the WAL frame unit is the document,
			// and the batch driver keeps boundaries frame-aligned.
			st, err = r.RunBatches(*batch, false)
		default:
			st, err = r.Run(*batch)
		}
		interrupted := errors.Is(err, stream.ErrStopped)
		if err != nil && !interrupted {
			return err
		}
		if !interrupted {
			// Checkpoint before Tracker.Close: Close resolves grace windows
			// for the final report, which must not leak into resumable state.
			if err := checkpointWAL(pst, interrupted, capture); err != nil {
				return err
			}
			tracker.Close(baseTicks + uint64(st.Ticks))
		}
		fmt.Println(st)
		fmt.Println(front.Stats())
		printStoryTable(tracker)
		fmt.Println(shardedSummary(se.Stats()))
		return closeWALStore(pst, walOpts, interrupted)
	}

	eng, err := persist.RestoreEngine(engCfg, restored)
	if err != nil {
		return err
	}
	r := stream.NewReplay(front, eng, tracker)
	capture := func() (*persist.PipelineState, error) {
		ps, err := persist.CaptureSingle(eng, agg, tracker)
		if err != nil {
			return nil, err
		}
		ps.Ticks = baseTicks + uint64(r.Stats().Ticks)
		return ps, nil
	}
	r.SetBoundaryHook(storiesHook(capture))
	var st stream.ReplayStats
	switch {
	case *batchMode:
		st, err = r.RunBatches(*batch, true)
	case aggCfg.DecayMode == stream.DecayRescale || pst != nil:
		// See the sharded path: rescaled decay and persisted runs require
		// the batch driver.
		st, err = r.RunBatches(*batch, false)
	default:
		st, err = r.Run(*batch)
	}
	interrupted := errors.Is(err, stream.ErrStopped)
	if err != nil && !interrupted {
		return err
	}
	if !interrupted {
		// See the sharded path: checkpoint precedes Tracker.Close.
		if err := checkpointWAL(pst, interrupted, capture); err != nil {
			return err
		}
		tracker.Close(baseTicks + uint64(st.Ticks))
	}
	fmt.Println(st)
	fmt.Println(front.Stats())
	printStoryTable(tracker)
	fmt.Println(engineSummary(eng))
	return closeWALStore(pst, walOpts, interrupted)
}

// printStoryTable prints the tracker summary line and the final story table.
func printStoryTable(tracker *story.Tracker) {
	st := tracker.Stats()
	fmt.Printf("stories: born=%d split=%d updated=%d merged=%d died=%d | live=%d fading=%d subgraphs=%d\n",
		st.Born, st.Split, st.Updated, st.Merged, st.Died, st.Live, st.Fading, st.Subgraphs)
	for _, s := range tracker.Stories() {
		state := "live"
		if s.Fading {
			state = "fading"
		}
		fmt.Printf("story %d: born=%d last=%d state=%s subgraphs=%d entities=%v\n",
			s.ID, s.BornSeq, s.LastSeq, state, s.Subgraphs, s.Entities)
	}
}
