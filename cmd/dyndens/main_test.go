package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The golden-file tests pin the CLI surface: a seeded `gen` must produce a
// byte-identical stream file, and `run` over that stream must report the same
// events and counters. Regenerate the goldens after an intentional change
// with:
//
//	go test ./cmd/dyndens -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden files")

// captureStdout runs fn with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		io.Copy(&buf, r)
		close(done)
	}()
	fnErr := fn()
	w.Close()
	<-done
	os.Stdout = old
	if fnErr != nil {
		t.Fatal(fnErr)
	}
	return buf.String()
}

var replayLine = regexp.MustCompile(`^(replay|shard-replay|segments)\{.*\}$`)

// Per-shard load lines from stream.ShardReplayStats carry wall-clock busy
// times and are scrubbed; the per-shard counter lines of shardedSummary
// (delivered/applied/events/...) are deterministic and stay pinned.
var shardLoadLine = regexp.MustCompile(`^shard \d+: .*busy=.*$`)

// normalizeRunOutput makes `dyndens run` output comparable across runs: the
// throughput/latency lines carry wall-clock timings and are scrubbed, and the
// per-event lines are sorted (their order within one update depends on map
// iteration order; the event SET per update is deterministic and the
// conformance tests in internal/stream pin it much harder).
func normalizeRunOutput(out string) string {
	var events, rest []string
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "became-output-dense") || strings.HasPrefix(line, "ceased-output-dense"):
			events = append(events, line)
		case replayLine.MatchString(line):
			rest = append(rest, "<replay-stats-scrubbed>")
		case shardLoadLine.MatchString(line):
			rest = append(rest, "<shard-load-scrubbed>")
		default:
			rest = append(rest, line)
		}
	}
	sort.Strings(events)
	return strings.Join(append(events, rest...), "\n") + "\n"
}

func compareGolden(t *testing.T, goldenPath, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden)", err)
	}
	if string(want) != got {
		t.Errorf("output differs from %s (regenerate with -update if intentional):\n--- want ---\n%s\n--- got ---\n%s", goldenPath, want, got)
	}
}

const genArgsStream = "-vertices 12 -updates 120 -seed 7 -neg 0.3 -mean 1.5"

func genArgs(out string) []string {
	return append(strings.Fields(genArgsStream), "-out", out)
}

// TestGoldenGen pins the seeded generator's recorded-stream format: same
// flags, same bytes.
func TestGoldenGen(t *testing.T) {
	out := filepath.Join(t.TempDir(), "gen.stream")
	if err := cmdGen(genArgs(out)); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "gen_small.stream")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden)", err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("generated stream differs from %s (regenerate with -update if intentional)", golden)
	}
}

// TestGoldenRun pins `dyndens run` end to end: events, sink counters, and
// engine work summary over the golden stream.
func TestGoldenRun(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdRun([]string{"-input", filepath.Join("testdata", "gen_small.stream"), "-T", "2", "-nmax", "4"})
	})
	compareGolden(t, filepath.Join("testdata", "run_small.golden"), normalizeRunOutput(out))
}

// TestGoldenRunSharded runs the same stream through `run -shards 2`; after
// normalisation (sorted events, scrubbed timings) the output must match its
// own golden, whose event lines and counters agree with the single-engine
// golden by the sharded engine's conformance guarantee.
func TestGoldenRunSharded(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdRun([]string{"-input", filepath.Join("testdata", "gen_small.stream"), "-T", "2", "-nmax", "4", "-shards", "2"})
	})
	compareGolden(t, filepath.Join("testdata", "run_small_sharded.golden"), normalizeRunOutput(out))
}

// TestRunShardedEventParity cross-checks the two run paths directly: the
// sorted event lines of -shards 2 must equal the single-engine ones.
func TestRunShardedEventParity(t *testing.T) {
	stream := filepath.Join("testdata", "gen_small.stream")
	eventLines := func(out string) []string {
		var evs []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "became-output-dense") || strings.HasPrefix(line, "ceased-output-dense") {
				evs = append(evs, line)
			}
		}
		sort.Strings(evs)
		return evs
	}
	single := captureStdout(t, func() error {
		return cmdRun([]string{"-input", stream, "-T", "2", "-nmax", "4"})
	})
	sharded := captureStdout(t, func() error {
		return cmdRun([]string{"-input", stream, "-T", "2", "-nmax", "4", "-shards", "2"})
	})
	a, b := eventLines(single), eventLines(sharded)
	if len(a) == 0 {
		t.Fatal("golden stream produced no events; fixture too weak")
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("event lines differ between single and sharded run:\n--- single ---\n%s\n--- sharded ---\n%s",
			strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
}

// TestBenchCommandSmoke exercises `dyndens bench` end to end for the
// single-threaded and sharded paths (the CI smoke matrix runs the same
// commands at full size).
func TestBenchCommandSmoke(t *testing.T) {
	for _, shards := range []string{"0", "1", "4"} {
		out := captureStdout(t, func() error {
			return cmdBench([]string{"-vertices", "50", "-updates", "2000", "-seed", "3", "-shards", shards})
		})
		if !strings.Contains(out, "bench: 50 vertices, 2000 updates") {
			t.Errorf("shards=%s: missing bench header in output:\n%s", shards, out)
		}
		if shards == "4" {
			if !strings.Contains(out, "shard 3:") {
				t.Errorf("shards=4: missing per-shard report in output:\n%s", out)
			}
			if !strings.Contains(out, "shard-replay{shards=4") {
				t.Errorf("shards=4: missing aggregate shard-replay stats in output:\n%s", out)
			}
		}
	}
}

// TestGoldenStoriesGenDocs pins the seeded document generator's recorded
// format: same flags, same bytes.
func TestGoldenStoriesGenDocs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "docs.docs")
	if err := cmdStoriesGenDocs([]string{"-out", out}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "docs_small.docs")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden)", err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("generated document stream differs from %s (regenerate with -update if intentional)", golden)
	}
}

// TestGoldenStoriesRun pins the documents→stories pipeline end to end: the
// lifecycle log, story table, aggregation counters and engine summary over
// the golden document stream. The record lines are fully deterministic
// (sequence-labelled, canonical resolution order), so unlike run's event
// lines they are compared in order. The exact golden pins the paper-literal
// per-pair sweep (its lifecycle log and story table predate the rescaled
// fading mode and must not drift); the rescale golden pins the default mode's
// tick structure (one threshold tick per epoch) and sequence numbering.
func TestGoldenStoriesRun(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdStoriesRun([]string{"-input", filepath.Join("testdata", "docs_small.docs"), "-decay-mode", "exact"})
	})
	compareGolden(t, filepath.Join("testdata", "stories_small.golden"), normalizeRunOutput(out))
}

// TestGoldenStoriesRunRescale pins the same pipeline under the default
// rescaled fading mode.
func TestGoldenStoriesRunRescale(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdStoriesRun([]string{"-input", filepath.Join("testdata", "docs_small.docs")})
	})
	compareGolden(t, filepath.Join("testdata", "stories_small_rescale.golden"), normalizeRunOutput(out))
}

// storyLifecycleLines extracts the deterministic story-pipeline lines: the
// lifecycle log, the aggregation summary, and the story table.
func storyLifecycleLines(out string) []string {
	var lines []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "[seq ") || strings.HasPrefix(line, "aggregate{") ||
			strings.HasPrefix(line, "stories:") || strings.HasPrefix(line, "story ") {
			lines = append(lines, line)
		}
	}
	return lines
}

// TestStoriesShardedLifecycleParity is the CLI form of the acceptance
// criterion: `stories run` over the same document stream must print the
// identical lifecycle log and final story table single-threaded, at K=1 and
// at K=4.
func TestStoriesShardedLifecycleParity(t *testing.T) {
	input := filepath.Join("testdata", "docs_small.docs")
	run := func(shards string) []string {
		out := captureStdout(t, func() error {
			return cmdStoriesRun([]string{"-input", input, "-shards", shards})
		})
		return storyLifecycleLines(out)
	}
	ref := run("0")
	if len(ref) == 0 {
		t.Fatal("single-threaded stories run produced no lifecycle output")
	}
	born := false
	for _, line := range ref {
		if strings.Contains(line, "born") {
			born = true
		}
	}
	if !born {
		t.Fatal("lifecycle log contains no born record; fixture too weak")
	}
	for _, shards := range []string{"1", "4"} {
		got := run(shards)
		if strings.Join(got, "\n") != strings.Join(ref, "\n") {
			t.Errorf("lifecycle output differs between single and -shards %s:\n--- single ---\n%s\n--- sharded ---\n%s",
				shards, strings.Join(ref, "\n"), strings.Join(got, "\n"))
		}
	}
}

// TestStoriesAggWorkersLifecycleParity pins the CLI end of the pipelined
// front-end's determinism contract: the full lifecycle log must be identical
// between the serial in-line aggregator and the parallel pipeline at every
// worker count (the internal/stream conformance matrix pins the update
// stream itself; this covers the flag wiring and the Stats plumbing).
func TestStoriesAggWorkersLifecycleParity(t *testing.T) {
	input := filepath.Join("testdata", "docs_small.docs")
	run := func(workers string) (lifecycle []string, raw string) {
		out := captureStdout(t, func() error {
			return cmdStoriesRun([]string{"-input", input, "-agg-workers", workers})
		})
		return storyLifecycleLines(out), out
	}
	ref, _ := run("0")
	if len(ref) == 0 {
		t.Fatal("serial stories run produced no lifecycle output")
	}
	for _, workers := range []string{"1", "2", "4"} {
		got, raw := run(workers)
		if strings.Join(got, "\n") != strings.Join(ref, "\n") {
			t.Errorf("lifecycle output differs between serial and -agg-workers %s:\n--- serial ---\n%s\n--- pipelined ---\n%s",
				workers, strings.Join(ref, "\n"), strings.Join(got, "\n"))
		}
		if !strings.Contains(raw, "ingest{") {
			t.Errorf("-agg-workers %s summary is missing the ingest{...} stage accounting:\n%s", workers, raw)
		}
	}
}

// TestStoriesRunSynthMatchesFileInput checks that -synth with the golden
// flags reproduces the committed document stream's lifecycle output (the
// file is itself a gen-docs capture of the default configuration).
func TestStoriesRunSynthMatchesFileInput(t *testing.T) {
	fromFile := captureStdout(t, func() error {
		return cmdStoriesRun([]string{"-input", filepath.Join("testdata", "docs_small.docs"), "-quiet"})
	})
	fromSynth := captureStdout(t, func() error {
		return cmdStoriesRun([]string{"-synth", "-quiet"})
	})
	a, b := storyLifecycleLines(fromFile), storyLifecycleLines(fromSynth)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("file and -synth disagree:\n--- file ---\n%s\n--- synth ---\n%s",
			strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
}

// TestStoriesGenDocsGzipRoundTrip checks the .gz write path feeds back into
// the pipeline transparently.
func TestStoriesGenDocsGzipRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "docs.gz")
	if err := cmdStoriesGenDocs([]string{"-docs", "80", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("output is not gzip-framed: % x", data[:2])
	}
	outText := captureStdout(t, func() error {
		return cmdStoriesRun([]string{"-input", out, "-quiet"})
	})
	if !strings.Contains(outText, "aggregate{docs=80") {
		t.Errorf("gzip document stream did not replay: %s", outText)
	}
}

// TestBenchDocsMode smoke-tests the document→story pipeline bench for both
// engine paths.
func TestBenchDocsMode(t *testing.T) {
	for _, shards := range []string{"0", "4"} {
		out := captureStdout(t, func() error {
			return cmdBench([]string{"-docs", "-vertices", "30", "-updates", "600", "-seed", "7",
				"-skew", "1.1", "-T", "6.5", "-nmax", "4", "-shards", shards})
		})
		if !strings.Contains(out, "aggregate{docs=600") {
			t.Errorf("shards=%s: missing aggregation summary:\n%s", shards, out)
		}
		if !strings.Contains(out, "story:  born=") {
			t.Errorf("shards=%s: missing story summary:\n%s", shards, out)
		}
	}
}

// TestGenRejectsBadFlags pins gen's validation behaviour.
func TestGenRejectsBadFlags(t *testing.T) {
	if err := cmdGen([]string{"-updates", "0"}); err == nil {
		t.Error("gen -updates 0 succeeded, want error")
	}
	if err := cmdGen([]string{"-vertices", "1", "-out", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("gen -vertices 1 succeeded, want error")
	}
}

// TestRunBatchModeMarkers pins `run -batch`: "%%" markers delimit coalesced
// batches, the net event set equals the sequential run's final result set
// transitions, and the replay reports ticks (one per batch).
func TestRunBatchModeMarkers(t *testing.T) {
	dir := t.TempDir()
	streamPath := filepath.Join(dir, "marked.stream")
	data := "1 2 5\n2 3 5\n%%\n1 3 5\n%%\n%%\n1 3 -9\n"
	if err := os.WriteFile(streamPath, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return cmdRun([]string{"-input", streamPath, "-T", "2", "-nmax", "4", "-batch"})
	})
	if !strings.Contains(out, "ticks=4") {
		t.Errorf("expected 4 logical ticks in output:\n%s", out)
	}
	// The triangle {1,2,3} becomes output-dense in batch 2 and its collapse
	// in batch 4 drops {1,3}-dependent subgraphs; events must be net per
	// batch, so the single-batch flap-free stream has matching became lines.
	if !strings.Contains(out, "became-output-dense") {
		t.Errorf("no became events in batch run:\n%s", out)
	}
	// The sequential reader skips markers: same 4 updates, one tick each.
	seq := captureStdout(t, func() error {
		return cmdRun([]string{"-input", streamPath, "-T", "2", "-nmax", "4"})
	})
	if !strings.Contains(seq, "updates=4 ticks=4") {
		t.Errorf("sequential run should see 4 updates with 4 ticks (markers skipped):\n%s", seq)
	}
}

// TestStoriesBatchParity: `stories run -batch` (default rescaled fading) must
// recover the same stories as the paper-literal exact sequential replay on the
// golden document stream — the lifecycle logs differ in sequence numbering
// (batch ticks vs updates) but the born-story entity sets must match, single
// and sharded batched runs must be identical, and coalescing must reduce
// ticks below updates. The sequential reference pins -decay-mode exact: a
// rescaled sequential replay has a different tick structure (one threshold
// tick per epoch instead of one tick per faded pair), so the same -grace value
// spans a different number of documents and story expiry timing shifts.
func TestStoriesBatchParity(t *testing.T) {
	input := filepath.Join("testdata", "docs_small.docs")
	run := func(args ...string) string {
		return captureStdout(t, func() error {
			return cmdStoriesRun(append([]string{"-input", input}, args...))
		})
	}
	// Grace is measured in engine ticks; scale it to batch ticks (one per
	// document/epoch burst instead of one per pair update).
	batched := run("-batch", "-grace", "40")
	batchedSharded := run("-batch", "-grace", "40", "-shards", "4")
	if a, b := storyLifecycleLines(batched), storyLifecycleLines(batchedSharded); strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("batched lifecycle differs between single and sharded:\n--- single ---\n%s\n--- sharded ---\n%s",
			strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
	entitySets := func(out string) []string {
		var sets []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "story ") {
				if i := strings.Index(line, "entities="); i >= 0 {
					sets = append(sets, line[i:])
				}
			}
		}
		sort.Strings(sets)
		return sets
	}
	sequential := run("-decay-mode", "exact")
	if a, b := entitySets(batched), entitySets(sequential); strings.Join(a, "|") != strings.Join(b, "|") {
		t.Errorf("final story entity sets differ:\nbatched:    %v\nsequential: %v", a, b)
	}
	if !regexp.MustCompile(`replay\{updates=(\d+) ticks=`).MatchString(batched) {
		t.Fatalf("no replay stats in batched output:\n%s", batched)
	}
	m := regexp.MustCompile(`replay\{updates=(\d+) ticks=(\d+)`).FindStringSubmatch(batched)
	if m == nil || m[1] == m[2] {
		t.Errorf("batched run did not coalesce ticks: %v", m)
	}
}

// TestBenchBatchCompare smoke-tests the -batch comparison path and its JSON
// block for the single-threaded and sharded engines.
func TestBenchBatchCompare(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	out := captureStdout(t, func() error {
		return cmdBench([]string{"-docs", "-vertices", "30", "-updates", "600", "-seed", "7",
			"-skew", "1.1", "-T", "6.5", "-nmax", "4", "-batch", "-json", jsonPath})
	})
	if !strings.Contains(out, "speedup: decay-segment") {
		t.Errorf("missing speedup line:\n%s", out)
	}
	if !strings.Contains(out, "sequential: replay{") {
		t.Errorf("missing sequential baseline stats:\n%s", out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"batched": true`, `"batch_compare"`, `"decay_speedup"`, `"ticks"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("bench JSON missing %s:\n%s", want, data)
		}
	}
	shardOut := captureStdout(t, func() error {
		return cmdBench([]string{"-docs", "-vertices", "30", "-updates", "600", "-seed", "7",
			"-skew", "1.1", "-T", "6.5", "-nmax", "4", "-batch", "-shards", "2"})
	})
	if !strings.Contains(shardOut, "shard-replay{shards=2") || !strings.Contains(shardOut, "batched") {
		t.Errorf("sharded batched bench output malformed:\n%s", shardOut)
	}
}
