package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The golden-file tests pin the CLI surface: a seeded `gen` must produce a
// byte-identical stream file, and `run` over that stream must report the same
// events and counters. Regenerate the goldens after an intentional change
// with:
//
//	go test ./cmd/dyndens -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden files")

// captureStdout runs fn with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		io.Copy(&buf, r)
		close(done)
	}()
	fnErr := fn()
	w.Close()
	<-done
	os.Stdout = old
	if fnErr != nil {
		t.Fatal(fnErr)
	}
	return buf.String()
}

var replayLine = regexp.MustCompile(`^(replay|shard-replay)\{.*\}$`)
var shardLoadLine = regexp.MustCompile(`^shard \d+: busy=.*$`)

// normalizeRunOutput makes `dyndens run` output comparable across runs: the
// throughput/latency lines carry wall-clock timings and are scrubbed, and the
// per-event lines are sorted (their order within one update depends on map
// iteration order; the event SET per update is deterministic and the
// conformance tests in internal/stream pin it much harder).
func normalizeRunOutput(out string) string {
	var events, rest []string
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "became-output-dense") || strings.HasPrefix(line, "ceased-output-dense"):
			events = append(events, line)
		case replayLine.MatchString(line):
			rest = append(rest, "<replay-stats-scrubbed>")
		case shardLoadLine.MatchString(line):
			rest = append(rest, "<shard-load-scrubbed>")
		default:
			rest = append(rest, line)
		}
	}
	sort.Strings(events)
	return strings.Join(append(events, rest...), "\n") + "\n"
}

func compareGolden(t *testing.T, goldenPath, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden)", err)
	}
	if string(want) != got {
		t.Errorf("output differs from %s (regenerate with -update if intentional):\n--- want ---\n%s\n--- got ---\n%s", goldenPath, want, got)
	}
}

const genArgsStream = "-vertices 12 -updates 120 -seed 7 -neg 0.3 -mean 1.5"

func genArgs(out string) []string {
	return append(strings.Fields(genArgsStream), "-out", out)
}

// TestGoldenGen pins the seeded generator's recorded-stream format: same
// flags, same bytes.
func TestGoldenGen(t *testing.T) {
	out := filepath.Join(t.TempDir(), "gen.stream")
	if err := cmdGen(genArgs(out)); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "gen_small.stream")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden)", err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("generated stream differs from %s (regenerate with -update if intentional)", golden)
	}
}

// TestGoldenRun pins `dyndens run` end to end: events, sink counters, and
// engine work summary over the golden stream.
func TestGoldenRun(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdRun([]string{"-input", filepath.Join("testdata", "gen_small.stream"), "-T", "2", "-nmax", "4"})
	})
	compareGolden(t, filepath.Join("testdata", "run_small.golden"), normalizeRunOutput(out))
}

// TestGoldenRunSharded runs the same stream through `run -shards 2`; after
// normalisation (sorted events, scrubbed timings) the output must match its
// own golden, whose event lines and counters agree with the single-engine
// golden by the sharded engine's conformance guarantee.
func TestGoldenRunSharded(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdRun([]string{"-input", filepath.Join("testdata", "gen_small.stream"), "-T", "2", "-nmax", "4", "-shards", "2"})
	})
	compareGolden(t, filepath.Join("testdata", "run_small_sharded.golden"), normalizeRunOutput(out))
}

// TestRunShardedEventParity cross-checks the two run paths directly: the
// sorted event lines of -shards 2 must equal the single-engine ones.
func TestRunShardedEventParity(t *testing.T) {
	stream := filepath.Join("testdata", "gen_small.stream")
	eventLines := func(out string) []string {
		var evs []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "became-output-dense") || strings.HasPrefix(line, "ceased-output-dense") {
				evs = append(evs, line)
			}
		}
		sort.Strings(evs)
		return evs
	}
	single := captureStdout(t, func() error {
		return cmdRun([]string{"-input", stream, "-T", "2", "-nmax", "4"})
	})
	sharded := captureStdout(t, func() error {
		return cmdRun([]string{"-input", stream, "-T", "2", "-nmax", "4", "-shards", "2"})
	})
	a, b := eventLines(single), eventLines(sharded)
	if len(a) == 0 {
		t.Fatal("golden stream produced no events; fixture too weak")
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("event lines differ between single and sharded run:\n--- single ---\n%s\n--- sharded ---\n%s",
			strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
}

// TestBenchCommandSmoke exercises `dyndens bench` end to end for the
// single-threaded and sharded paths (the CI smoke matrix runs the same
// commands at full size).
func TestBenchCommandSmoke(t *testing.T) {
	for _, shards := range []string{"0", "1", "4"} {
		out := captureStdout(t, func() error {
			return cmdBench([]string{"-vertices", "50", "-updates", "2000", "-seed", "3", "-shards", shards})
		})
		if !strings.Contains(out, "bench: 50 vertices, 2000 updates") {
			t.Errorf("shards=%s: missing bench header in output:\n%s", shards, out)
		}
		if shards == "4" {
			if !strings.Contains(out, "shard 3:") {
				t.Errorf("shards=4: missing per-shard report in output:\n%s", out)
			}
			if !strings.Contains(out, "shard-replay{shards=4") {
				t.Errorf("shards=4: missing aggregate shard-replay stats in output:\n%s", out)
			}
		}
	}
}

// TestGenRejectsBadFlags pins gen's validation behaviour.
func TestGenRejectsBadFlags(t *testing.T) {
	if err := cmdGen([]string{"-updates", "0"}); err == nil {
		t.Error("gen -updates 0 succeeded, want error")
	}
	if err := cmdGen([]string{"-vertices", "1", "-out", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("gen -vertices 1 succeeded, want error")
	}
}
