package main

import (
	"flag"
	"fmt"
	"os"

	"dyndens/internal/core"
	"dyndens/internal/persist"
	"dyndens/internal/story"
	"dyndens/internal/stream"
)

// walOptions is the parsed durability configuration shared by run, stories
// run, and serve. An empty Dir disables persistence entirely — the default.
type walOptions struct {
	Dir           string
	SnapshotEvery uint64
	Fsync         bool
}

func (o walOptions) enabled() bool { return o.Dir != "" }

// walFlags registers the durability flags. With -wal DIR every input unit is
// logged to a CRC-framed segment WAL and the full pipeline state is
// snapshotted periodically; a restart over the same directory recovers the
// newest consistent state, truncates any torn tail, and resumes mid-stream
// with story identities intact (see README "Durability").
func walFlags(fs *flag.FlagSet) func() (walOptions, error) {
	dir := fs.String("wal", "", "durability directory: log input units to a segment WAL and snapshot pipeline state; restart with the same flags to resume (empty = no persistence)")
	every := fs.Uint64("snapshot-every", 5000, "with -wal: cut a background snapshot every N input units (0 = WAL only, no periodic snapshots)")
	fsync := fs.Bool("fsync", false, "with -wal: fsync every WAL frame and snapshot (power-loss durability; required for correct stdin resume, heavy per-unit cost)")
	return func() (walOptions, error) {
		if *dir == "" && (*every != 5000 || *fsync) {
			return walOptions{}, fmt.Errorf("-snapshot-every/-fsync require -wal")
		}
		return walOptions{Dir: *dir, SnapshotEvery: *every, Fsync: *fsync}, nil
	}
}

// openWAL opens the durability store. fingerprint must encode every
// configuration choice that shapes the persisted state or the derived update
// stream — recovery refuses a directory written under a different one.
// liveTail marks non-replayable inputs (stdin): the live stream continues at
// the crash point instead of restarting, so the recovery chain skips nothing;
// without -fsync such inputs can silently lose the buffered WAL tail, which
// openWAL warns about rather than forbids.
func openWAL(opts walOptions, fingerprint string, liveTail bool) (*persist.Store, error) {
	if liveTail && !opts.Fsync {
		fmt.Fprintln(os.Stderr, "warning: -wal over a non-replayable input (stdin) without -fsync: a crash loses the buffered WAL tail and those units cannot be re-read")
	}
	st, err := persist.Open(persist.Config{
		Dir:           opts.Dir,
		Fingerprint:   fingerprint,
		SnapshotEvery: opts.SnapshotEvery,
		Fsync:         opts.Fsync,
		LiveTail:      liveTail,
	})
	if err != nil {
		return nil, err
	}
	if st.DurableSeq() > 0 {
		fmt.Fprintf(os.Stderr, "wal: recovered %d durable units (%d WAL frames replay past the snapshot)\n",
			st.DurableSeq(), st.Stats().ReplayedFrames)
	}
	return st, nil
}

// checkpointWAL cuts the final checkpoint of a completed run. A graceful
// interrupt already cut its own checkpoint inside the boundary hook, and a
// nil store means persistence is off — both are no-ops here. Call it before
// anything that mutates pipeline state past the last boundary (for example
// Tracker.Close, which resolves grace windows for the final report).
func checkpointWAL(pst *persist.Store, interrupted bool, capture func() (*persist.PipelineState, error)) error {
	if pst == nil || interrupted {
		return nil
	}
	return pst.Checkpoint(capture)
}

// closeWALStore prints the durability counters and releases the store; with a
// nil store it only notes an interrupt. The resume hint tells an interrupted
// run how to pick up where the checkpoint left off.
func closeWALStore(pst *persist.Store, opts walOptions, interrupted bool) error {
	if pst == nil {
		if interrupted {
			fmt.Println("interrupted: stopped at a batch boundary (no -wal: state not persisted)")
		}
		return nil
	}
	ws := pst.Stats()
	fmt.Printf("wal:    frames=%d bytes=%d snapshots=%d recovered=%d replayed=%d durable=%d\n",
		ws.FramesLogged, ws.BytesLogged, ws.SnapshotsCut, ws.RecoveredUnits, ws.ReplayedFrames, pst.Seq())
	if interrupted {
		fmt.Printf("interrupted: checkpoint covers unit %d; rerun with -wal %s to resume\n", pst.Seq(), opts.Dir)
	}
	return pst.Close()
}

// engineFingerprint renders the engine knobs that shape persisted state.
func engineFingerprint(cfg core.Config) string {
	c := cfg.WithDefaults()
	return fmt.Sprintf("measure=%s,T=%g,nmax=%d,deltait=%g,maxexplore=%v,degprio=%v",
		c.Measure.Name(), c.T, c.Nmax, c.DeltaIt, c.EnableMaxExplore, c.EnableDegreePrioritize)
}

// aggFingerprint renders the aggregation knobs that shape the derived update
// stream (and therefore everything downstream of a logged document).
func aggFingerprint(cfg stream.AggregatorConfig) string {
	return fmt.Sprintf("epoch=%d,decay=%g,docweight=%g,prune=%g,mode=%v",
		cfg.EpochLength, cfg.Decay, cfg.DocWeight, cfg.PruneBelow, cfg.DecayMode)
}

// trackerFingerprint renders the story-identity knobs persisted in tracker
// state.
func trackerFingerprint(cfg story.Config) string {
	return fmt.Sprintf("jaccard=%g,grace=%d,trk-mincard=%d",
		cfg.MinJaccard, cfg.Grace, cfg.MinCardinality)
}
