package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dyndens/internal/core"
	"dyndens/internal/persist"
	"dyndens/internal/serve"
	"dyndens/internal/shard"
	"dyndens/internal/story"
	"dyndens/internal/stream"
)

// benchResult is the machine-readable record one `dyndens bench -json` run
// emits. It is the unit of the repo's performance trajectory: committed
// snapshots (BENCH_PR3.json, ...) and CI jobs compare these fields across
// revisions, so additions are fine but renames are breaking.
type benchResult struct {
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU contextualises every parallel number in the snapshot: on a
	// single-core runner K workers time-slice one core, so sharded
	// throughput cannot beat the single engine there and the meaningful
	// scaling ratio is scoped vs mirror at equal K.
	NumCPU int `json:"num_cpu"`
	// GOMAXPROCS is the scheduler's usable parallelism for the run (it can
	// be below NumCPU under cgroup limits or an explicit override). Parallel
	// speedup gates key off it: tools/benchgate skips the ingest-pipeline
	// floor when a snapshot records 1, where a parallel front-end cannot
	// beat serial by construction.
	GOMAXPROCS int `json:"gomaxprocs"`

	Workload struct {
		Vertices         int     `json:"vertices"`
		Updates          int     `json:"updates"`
		Seed             int64   `json:"seed"`
		Skew             float64 `json:"skew"`
		NegativeFraction float64 `json:"negative_fraction"`
		MeanDelta        float64 `json:"mean_delta"`
	} `json:"workload"`

	Config struct {
		Measure          string  `json:"measure"`
		T                float64 `json:"t"`
		Nmax             int     `json:"nmax"`
		DeltaIt          float64 `json:"delta_it"`
		MaxExplore       bool    `json:"max_explore"`
		DegreePrioritize bool    `json:"degree_prioritize"`
	} `json:"config"`

	Shards int `json:"shards"`
	Batch  int `json:"batch"`
	// Batched marks a run driven through Engine.ProcessBatch (epoch
	// coalescing); Ticks is the number of logical engine boundaries (equal to
	// the update count for sequential runs, the batch count for batched ones).
	Batched bool `json:"batched,omitempty"`
	Ticks   int  `json:"ticks,omitempty"`

	// Throughput of the engine processing itself (source I/O excluded for the
	// single-threaded path; wall-clock including merge for the sharded path).
	UpdatesPerSecond float64 `json:"updates_per_second"`
	NsPerUpdate      float64 `json:"ns_per_update"`
	ElapsedNs        int64   `json:"elapsed_ns"`

	// Whole-process allocation accounting over the replay (runtime.MemStats
	// deltas divided by the update count). For shards > 0 this includes the
	// batching/merge machinery, not just the engines.
	AllocsPerUpdate float64 `json:"allocs_per_update"`
	BytesPerUpdate  float64 `json:"bytes_per_update"`

	Events struct {
		Became         uint64 `json:"became"`
		Ceased         uint64 `json:"ceased"`
		NetOutputDense int    `json:"net_output_dense"`
		Deduped        uint64 `json:"deduped,omitempty"`
	} `json:"events"`

	Engine struct {
		Updates       uint64 `json:"updates"`
		Explorations  uint64 `json:"explorations"`
		CheapExplores uint64 `json:"cheap_explores"`
		Insertions    uint64 `json:"insertions"`
		Evictions     uint64 `json:"evictions"`
		IndexedDense  int    `json:"indexed_dense"`
		IndexedStars  int    `json:"indexed_stars"`
		IndexNodes    int    `json:"index_nodes"`
		MaxIndexNodes int    `json:"max_index_nodes"`
	} `json:"engine"`

	// Overlap is the sharded delivery policy ("scoped" or "mirror"; empty for
	// single-threaded runs). MeanDeliveryFraction is the mean per-shard
	// fraction of work units that needed full processing — 1.0 under mirror
	// broadcast, ideally near 1/K plus the interest overlap under scoped
	// delivery. ParallelEfficiency is busy / (wall · K).
	Overlap              string  `json:"overlap,omitempty"`
	MeanDeliveryFraction float64 `json:"mean_delivery_fraction,omitempty"`
	ParallelEfficiency   float64 `json:"parallel_efficiency,omitempty"`

	// PerShardBusyNs is the per-worker busy time for sharded runs (empty for
	// the single-threaded path). PerShardDelivered/PerShardApplied partition
	// each worker's work units into fully-processed vs weight-apply-only
	// (see shard.ShardLoad; Applied is always 0 under mirror delivery).
	PerShardBusyNs    []int64  `json:"per_shard_busy_ns,omitempty"`
	PerShardDelivered []uint64 `json:"per_shard_delivered,omitempty"`
	PerShardApplied   []uint64 `json:"per_shard_applied,omitempty"`

	// Scaling is present for -scale runs: the same workload replayed at each
	// requested shard count (sharded counts in both delivery modes), plus the
	// headline ratios the CI gate (tools/benchgate -snapshot) consumes.
	Scaling *scalingResult `json:"scaling,omitempty"`

	// DocPipeline is present for -docs runs: the document→story pipeline's
	// aggregation and story-lifecycle counters.
	DocPipeline *docPipelineResult `json:"doc_pipeline,omitempty"`

	// BatchCompare is present for single-threaded -batch runs: the same
	// workload replayed twice — per-update Process vs coalesced ProcessBatch
	// over identical batch partitions — with the throughput split by batch
	// provenance. DecaySpeedup is the headline epoch-coalescing gain: batched
	// vs sequential upd/s on the epoch-decay-burst segment.
	BatchCompare *batchCompareResult `json:"batch_compare,omitempty"`

	// IngestPipeline is present for -ingest-compare runs: the identical
	// document workload replayed through the serial in-line front-end and
	// the pipelined parallel one (fresh engine each; the run fails if their
	// outputs diverge), timed wall-clock end to end — ReplayStats.Elapsed is
	// engine-only time and cannot see front-end overlap. The CI gate reads
	// Speedup as a floor (skipped when GOMAXPROCS records 1).
	IngestPipeline *ingestPipelineResult `json:"ingest_pipeline,omitempty"`

	// Serve is present for -serve-readers runs: the closed-loop read-path
	// report (QPS and latency percentiles of snapshot + top-k + story
	// fetches issued concurrently with the measured replay) plus the view's
	// publication counters. The CI gate reads ReadQPS as a floor.
	Serve *serveBenchResult `json:"serve,omitempty"`

	// DecayModeCompare is present for -decay-compare runs: the identical
	// document workload replayed through exact fading (per-pair epoch sweep)
	// and rescaled fading (O(1) threshold ticks), both epoch-coalesced. The
	// headline DecaySegmentSpeedup is an elapsed-TIME ratio on the epoch-tick
	// segment (exact/rescale over the same epoch count) — upd/s is
	// meaningless there because the rescaled segment carries almost no
	// updates by design. The CI gate reads it as a floor.
	DecayModeCompare *decayModeCompareResult `json:"decay_mode_compare,omitempty"`

	// WALOverhead is present for -wal-compare runs: the identical document
	// workload replayed with durability off and on (document WAL + periodic
	// background snapshots into a throwaway directory; outputs must match).
	// Ratio is throughput retained — off wall time / on wall time — and the
	// CI gate (tools/benchgate -min-wal-ratio) reads it as a floor.
	WALOverhead *walOverheadResult `json:"wal_overhead,omitempty"`
}

// walOverheadResult is the -wal-compare JSON block.
type walOverheadResult struct {
	OffWallNs int64   `json:"off_wall_ns"`
	OnWallNs  int64   `json:"on_wall_ns"`
	Ratio     float64 `json:"ratio"`
	Fsync     bool    `json:"fsync,omitempty"`
	Frames    uint64  `json:"frames"`
	Bytes     uint64  `json:"bytes"`
	Snapshots uint64  `json:"snapshots"`
}

// serveBenchResult is the JSON serve block: what N concurrent readers saw
// while the writer ingested the measured workload.
type serveBenchResult struct {
	Readers         int     `json:"readers"`
	TopK            int     `json:"top_k"`
	Reads           uint64  `json:"reads"`
	ReadQPS         float64 `json:"read_qps"`
	P50Ns           int64   `json:"p50_ns"`
	P95Ns           int64   `json:"p95_ns"`
	P99Ns           int64   `json:"p99_ns"`
	Samples         int     `json:"samples"`
	WallNs          int64   `json:"wall_ns"`
	EpochsPublished uint64  `json:"epochs_published"`
	Boundaries      uint64  `json:"boundaries"`
	StoriesFinal    int     `json:"stories_final"`
}

func newServeBenchResult(st serve.LoadStats, v *serve.View) *serveBenchResult {
	vs := v.Stats()
	return &serveBenchResult{
		Readers:         st.Readers,
		TopK:            st.TopK,
		Reads:           st.Reads,
		ReadQPS:         st.QPS(),
		P50Ns:           st.P50.Nanoseconds(),
		P95Ns:           st.P95.Nanoseconds(),
		P99Ns:           st.P99.Nanoseconds(),
		Samples:         st.Samples,
		WallNs:          st.Wall.Nanoseconds(),
		EpochsPublished: vs.Publishes,
		Boundaries:      vs.Boundaries,
		StoriesFinal:    vs.Stories,
	}
}

func printServeSummary(st serve.LoadStats, v *serve.View) {
	vs := v.Stats()
	fmt.Printf("serve:  readers=%d k=%d reads=%d (%.0f reads/s) p50=%v p95=%v p99=%v epochs=%d stories=%d\n",
		st.Readers, st.TopK, st.Reads, st.QPS(), st.P50, st.P95, st.P99, vs.Publishes, vs.Stories)
}

// segmentResult is one provenance segment of a replay in the JSON output.
type segmentResult struct {
	Updates          int     `json:"updates"`
	Batches          int     `json:"batches"`
	ElapsedNs        int64   `json:"elapsed_ns"`
	UpdatesPerSecond float64 `json:"updates_per_second"`
}

func newSegmentResult(s stream.SegmentStats) segmentResult {
	return segmentResult{
		Updates:          s.Updates,
		Batches:          s.Batches,
		ElapsedNs:        s.Elapsed.Nanoseconds(),
		UpdatesPerSecond: s.UpdatesPerSecond(),
	}
}

// modeResult is one replay mode (sequential or batched) of the comparison.
type modeResult struct {
	UpdatesPerSecond float64       `json:"updates_per_second"`
	ElapsedNs        int64         `json:"elapsed_ns"`
	Ticks            int           `json:"ticks"`
	Decay            segmentResult `json:"decay"`
	Other            segmentResult `json:"other"`
}

func newModeResult(s stream.ReplayStats) modeResult {
	return modeResult{
		UpdatesPerSecond: s.UpdatesPerSecond(),
		ElapsedNs:        s.Elapsed.Nanoseconds(),
		Ticks:            s.Ticks,
		Decay:            newSegmentResult(s.DecaySeg),
		Other:            newSegmentResult(s.OtherSeg),
	}
}

type batchCompareResult struct {
	Sequential     modeResult `json:"sequential"`
	Batched        modeResult `json:"batched"`
	DecaySpeedup   float64    `json:"decay_speedup"`
	OverallSpeedup float64    `json:"overall_speedup"`
}

type decayModeCompareResult struct {
	Exact               modeResult `json:"exact"`
	Rescale             modeResult `json:"rescale"`
	DecaySegmentSpeedup float64    `json:"decay_segment_speedup"`
	OverallSpeedup      float64    `json:"overall_speedup"`
}

// ingestPipelineResult is the -ingest-compare JSON block. The wall-clock
// fields are whole-replay times (source + expansion + engine); the stage
// busy/stall fields are the pipelined pass's IngestStats, which say where
// the time went and which side of the handoff queue was the bottleneck.
type ingestPipelineResult struct {
	Workers         int     `json:"workers"`
	Depth           int     `json:"depth"`
	SerialWallNs    int64   `json:"serial_wall_ns"`
	PipelinedWallNs int64   `json:"pipelined_wall_ns"`
	Speedup         float64 `json:"speedup"`
	SourceBusyNs    int64   `json:"source_busy_ns"`
	ExpandBusyNs    int64   `json:"expand_busy_ns"`
	ApplyBusyNs     int64   `json:"apply_busy_ns"`
	ProducerStallNs int64   `json:"producer_stall_ns"`
	ConsumerStallNs int64   `json:"consumer_stall_ns"`
}

func newIngestPipelineResult(serialWall, pipeWall time.Duration, is stream.IngestStats) *ingestPipelineResult {
	return &ingestPipelineResult{
		Workers:         is.Workers,
		Depth:           is.Depth,
		SerialWallNs:    serialWall.Nanoseconds(),
		PipelinedWallNs: pipeWall.Nanoseconds(),
		Speedup:         elapsedSpeedup(serialWall, pipeWall),
		SourceBusyNs:    is.SourceBusy.Nanoseconds(),
		ExpandBusyNs:    is.ExpandBusy.Nanoseconds(),
		ApplyBusyNs:     is.ApplyBusy.Nanoseconds(),
		ProducerStallNs: is.ProducerStall.Nanoseconds(),
		ConsumerStallNs: is.ConsumerStall.Nanoseconds(),
	}
}

// elapsedSpeedup is reference time / measured time: how many times faster the
// measured pass finished the same logical work.
func elapsedSpeedup(reference, measured time.Duration) float64 {
	if measured <= 0 {
		return 0
	}
	return float64(reference) / float64(measured)
}

func speedup(batched, sequential float64) float64 {
	if sequential <= 0 {
		return 0
	}
	return batched / sequential
}

// scaleEntry is one (shards, overlap) point of a -scale run. The event
// counters are included so the curve doubles as a conformance record: every
// point of a run replays the identical workload, so became/ceased/net must
// agree across the whole curve (runBenchScale enforces this).
type scaleEntry struct {
	Shards               int      `json:"shards"`
	Overlap              string   `json:"overlap,omitempty"` // empty for the single-engine point
	Batched              bool     `json:"batched,omitempty"` // epoch-coalesced replay (bench -scale -batch)
	UpdatesPerSecond     float64  `json:"updates_per_second"`
	ElapsedNs            int64    `json:"elapsed_ns"`
	MeanDeliveryFraction float64  `json:"mean_delivery_fraction,omitempty"`
	ParallelEfficiency   float64  `json:"parallel_efficiency,omitempty"`
	PerShardBusyNs       []int64  `json:"per_shard_busy_ns,omitempty"`
	PerShardDelivered    []uint64 `json:"per_shard_delivered,omitempty"`
	PerShardApplied      []uint64 `json:"per_shard_applied,omitempty"`
	Became               uint64   `json:"became"`
	Ceased               uint64   `json:"ceased"`
	NetOutputDense       int      `json:"net_output_dense"`
}

// scalingResult is the -scale block of benchResult. The ratio fields are the
// gate headlines: scoped K=4 vs mirror K=4 is the delivery-policy win at
// equal parallelism, scoped K=4 vs single the end-to-end parallel win; both
// are 0 when the corresponding points were not part of the -scale list.
type scalingResult struct {
	Entries            []scaleEntry `json:"entries"`
	ScopedK4VsMirrorK4 float64      `json:"scoped_k4_vs_mirror_k4,omitempty"`
	ScopedK4VsSingle   float64      `json:"scoped_k4_vs_single,omitempty"`
}

// docPipelineResult is the -docs mode extension of benchResult. The config
// fields make the snapshot self-describing: together with the shared
// workload/config blocks they are exactly the flags that reproduce the run
// (in -docs mode the workload block's negative_fraction/mean_delta are
// zeroed — the document generator has no such knobs).
type docPipelineResult struct {
	Stories     int     `json:"stories"`
	StorySize   int     `json:"story_size"`
	EpochLength int64   `json:"epoch_length"`
	Decay       float64 `json:"decay"`
	DecayMode   string  `json:"decay_mode"`

	Docs             int   `json:"docs"`
	PairUpdates      int   `json:"pair_updates"`
	DecayUpdates     int   `json:"decay_updates"`
	RetiredPairs     int   `json:"retired_pairs"`
	Epochs           int64 `json:"epochs"`
	TrackedPairs     int   `json:"tracked_pairs"`
	ThresholdUpdates int   `json:"threshold_updates,omitempty"`
	Renorms          int   `json:"renorms,omitempty"`
	EpochPairTouches int   `json:"epoch_pair_touches,omitempty"`

	StoriesBorn   int `json:"stories_born"`
	StoriesSplit  int `json:"stories_split"`
	StoriesMerged int `json:"stories_merged"`
	StoriesDied   int `json:"stories_died"`
	StoriesLive   int `json:"stories_live"`
	StoriesFading int `json:"stories_fading"`
	Records       int `json:"records"`
}

func newDocPipelineResult(stories, storySize int, aggCfg stream.AggregatorConfig, aggStats stream.AggregatorStats, tracker *story.Tracker) *docPipelineResult {
	st := tracker.Stats()
	return &docPipelineResult{
		Stories:          stories,
		StorySize:        storySize,
		EpochLength:      aggCfg.EpochLength,
		Decay:            aggCfg.Decay,
		DecayMode:        aggCfg.DecayMode.String(),
		Docs:             aggStats.Docs,
		PairUpdates:      aggStats.PairUpdates,
		DecayUpdates:     aggStats.DecayUpdates,
		RetiredPairs:     aggStats.Retired,
		Epochs:           aggStats.Epochs,
		TrackedPairs:     aggStats.TrackedPairs,
		ThresholdUpdates: aggStats.ThresholdUpdates,
		Renorms:          aggStats.Renorms,
		EpochPairTouches: aggStats.EpochPairTouches,
		StoriesBorn:      st.Born,
		StoriesSplit:     st.Split,
		StoriesMerged:    st.Merged,
		StoriesDied:      st.Died,
		StoriesLive:      st.Live,
		StoriesFading:    st.Fading,
		Records:          len(tracker.Records()),
	}
}

func (r *benchResult) fillCommon(synthCfg stream.SynthConfig, engCfg core.Config, shards, batch int) {
	r.Timestamp = time.Now().UTC().Format(time.RFC3339)
	r.GoVersion = runtime.Version()
	r.GOOS = runtime.GOOS
	r.GOARCH = runtime.GOARCH
	r.NumCPU = runtime.NumCPU()
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.Workload.Vertices = synthCfg.Vertices
	r.Workload.Updates = synthCfg.Updates
	r.Workload.Seed = synthCfg.Seed
	r.Workload.Skew = synthCfg.Skew
	r.Workload.NegativeFraction = synthCfg.NegativeFraction
	r.Workload.MeanDelta = synthCfg.MeanDelta
	r.Config.Measure = engCfg.Measure.Name()
	r.Config.T = engCfg.T
	r.Config.Nmax = engCfg.Nmax
	r.Config.DeltaIt = engCfg.DeltaIt
	r.Config.MaxExplore = engCfg.EnableMaxExplore
	r.Config.DegreePrioritize = engCfg.EnableDegreePrioritize
	r.Shards = shards
	r.Batch = batch
}

// fillThroughput derives the rate fields from an (updates, elapsed) pair —
// engine time for the single-threaded path, wall clock for the sharded one.
func (r *benchResult) fillThroughput(updates int, elapsed time.Duration) {
	r.ElapsedNs = elapsed.Nanoseconds()
	if updates > 0 && elapsed > 0 {
		r.UpdatesPerSecond = float64(updates) / elapsed.Seconds()
		r.NsPerUpdate = float64(elapsed.Nanoseconds()) / float64(updates)
	}
}

func (r *benchResult) fillEngineStats(s core.Stats) {
	r.Engine.Updates = s.Updates
	r.Engine.Explorations = s.Explorations
	r.Engine.CheapExplores = s.CheapExplores
	r.Engine.Insertions = s.Insertions
	r.Engine.Evictions = s.Evictions
	r.Engine.IndexedDense = s.IndexedDense
	r.Engine.IndexedStars = s.IndexedStars
	r.Engine.IndexNodes = s.IndexNodes
	r.Engine.MaxIndexNodes = s.MaxIndexNodes
}

// writeJSON writes the result to path ("-" for stdout).
func (r *benchResult) writeJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// memSnapshot captures the allocation counters relevant to per-update
// accounting. GC is forced first so the deltas measure the replay, not
// leftover garbage churn.
type memSnapshot struct {
	mallocs    uint64
	totalAlloc uint64
}

func takeMemSnapshot() memSnapshot {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return memSnapshot{mallocs: ms.Mallocs, totalAlloc: ms.TotalAlloc}
}

func (m memSnapshot) perUpdate(updates int) (allocs, bytes float64) {
	if updates <= 0 {
		return 0, 0
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.Mallocs-m.mallocs) / float64(updates),
		float64(ms.TotalAlloc-m.totalAlloc) / float64(updates)
}

// cmdBench replays a seeded synthetic stream end-to-end (generator → replay →
// engine → counting sink) and prints the throughput/latency summary that
// serves as the repo's performance baseline. With -shards K the stream is
// driven through the sharded engine instead, reporting aggregate wall-clock
// throughput plus per-shard busy time, so the single-threaded (K=0) and
// sharded paths can be benchmarked side by side. With -json path the run
// additionally emits a machine-readable benchResult (path "-" for stdout),
// the format the repo's committed perf trajectory (BENCH_PR3.json, ...) and
// CI regression tooling consume.
//
// Note the threshold/workload interplay: weights accumulate for the whole
// run, so a threshold far below the weight of the hottest edges (high -skew
// or long streams with low -T) makes a combinatorial number of subgraphs
// dense — that is a property of the Engagement problem, not a bug. The
// defaults (uniform endpoints, T=3) keep the index sparse at any length.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("dyndens bench", flag.ExitOnError)
	newSynth := synthFlags(fs)
	readBatch := fs.Int("read-batch", 256, "micro-batch size for the replay driver (with -batch -docs the aggregator's own epoch/document batches are never split)")
	batchMode := fs.Bool("batch", false, "epoch coalescing: drive the engine through ProcessBatch; single-threaded runs also replay the sequential baseline and report the batched-vs-sequential comparison")
	shards := fs.Int("shards", 0, "partition the engine across K workers (0 = single-threaded)")
	newOverlap := overlapFlag(fs)
	scaleList := fs.String("scale", "", "comma-separated shard `counts` (0 = single-threaded, must be included); replay the identical workload at each count — sharded counts in both scoped and mirror delivery — and emit the scaling curve; combine with -batch for epoch-coalesced points (incompatible with -shards/-docs)")
	jsonOut := fs.String("json", "", "also write a machine-readable result to this `path` (- for stdout)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the replay to this `path`")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (taken after the measured pass) to this `path`")
	docsMode := fs.Bool("docs", false, "bench the document→story pipeline: -vertices are background entities, -updates documents, -skew the background Zipf exponent (-neg/-mean unused)")
	docStories := fs.Int("doc-stories", 3, "planted stories (with -docs)")
	docStorySize := fs.Int("doc-story-size", 4, "entities per planted story (with -docs)")
	epoch := fs.Int64("epoch", 25, "fading epoch length in document time units (with -docs)")
	decay := fs.Float64("decay", 0.7, "per-epoch fading factor (with -docs)")
	decayModeFlag := fs.String("decay-mode", "rescale", "epoch fading realisation (with -docs): rescale (O(1) ticks) or exact (per-pair sweep)")
	decayCompare := fs.Bool("decay-compare", false, "replay the -docs workload through exact AND rescaled fading (both epoch-coalesced) and report the decay-segment time ratio as the JSON decay_mode_compare block (single-threaded -docs only)")
	newAggWorkers := aggWorkersFlag(fs)
	ingestCompare := fs.Bool("ingest-compare", false, "replay the -docs workload through the serial AND the pipelined ingestion front-end (fresh engine each; outputs must match) and report the wall-clock ratio as the JSON ingest_pipeline block (single-threaded -docs only; workers default to GOMAXPROCS unless -agg-workers is set)")
	serveReaders := fs.Int("serve-readers", 0, "run N concurrent closed-loop snapshot readers (top-k + story fetches) against the live story view during the measured replay and report read QPS and latency percentiles as the JSON serve block; the readers share the process, so writer throughput and alloc counters include their cost (0 = off)")
	serveK := fs.Int("serve-k", 10, "top-k size each serve reader queries (with -serve-readers)")
	walCompare := fs.Bool("wal-compare", false, "replay the -docs workload twice — durability off and on (document WAL + periodic snapshots into a throwaway directory; outputs must match) — and report the overhead as the JSON wal_overhead block (single-threaded rescale -docs only)")
	walEvery := fs.Uint64("wal-snapshot-every", 5000, "with -wal-compare: background snapshot cadence in documents (0 = WAL only)")
	walFsync := fs.Bool("wal-fsync", false, "with -wal-compare: fsync every WAL frame and snapshot (measures power-loss-durable overhead)")
	newEngineCfg := engineFlags(fs, 3, 5)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rejectPositionalArgs(fs, "dyndens bench"); err != nil {
		return err
	}
	synthCfg, err := newSynth()
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if *docsMode {
		if err := checkDecay(*decay); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
	}
	benchDecayMode, err := stream.ParseDecayMode(*decayModeFlag)
	if err != nil {
		return fmt.Errorf("bench: -decay-mode: %w", err)
	}
	if *decayCompare {
		if !*docsMode {
			return fmt.Errorf("bench: -decay-compare requires -docs (fading is a document-pipeline concern)")
		}
		if *shards > 0 || *serveReaders > 0 {
			return fmt.Errorf("bench: -decay-compare is incompatible with -shards and -serve-readers")
		}
		if benchDecayMode != stream.DecayRescale {
			return fmt.Errorf("bench: -decay-compare measures rescale against the exact reference; drop -decay-mode %s", benchDecayMode)
		}
	}
	aggWorkers, err := newAggWorkers()
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if *ingestCompare {
		if !*docsMode {
			return fmt.Errorf("bench: -ingest-compare requires -docs (the parallel front-end is a document-expansion pipeline)")
		}
		if *shards > 0 || *serveReaders > 0 || *batchMode || *decayCompare {
			return fmt.Errorf("bench: -ingest-compare is incompatible with -shards, -batch, -decay-compare, and -serve-readers")
		}
		if aggWorkers == 0 {
			aggWorkers = runtime.GOMAXPROCS(0)
		}
	}
	if *serveReaders < 0 {
		return fmt.Errorf("bench: -serve-readers must be ≥ 0, got %d", *serveReaders)
	}
	if *serveReaders > 0 && *serveK <= 0 {
		return fmt.Errorf("bench: -serve-k must be ≥ 1, got %d", *serveK)
	}
	if *walCompare {
		if !*docsMode {
			return fmt.Errorf("bench: -wal-compare requires -docs (the WAL unit of the document pipeline is the document)")
		}
		if *shards > 0 || *serveReaders > 0 || *batchMode || *decayCompare || *ingestCompare || aggWorkers > 0 {
			return fmt.Errorf("bench: -wal-compare is incompatible with -shards, -batch, -decay-compare, -ingest-compare, -agg-workers, and -serve-readers")
		}
		if benchDecayMode != stream.DecayRescale {
			// The persisted driver is the batch driver; an exact-mode reference
			// pass would run per-update and the tick counts would not line up.
			return fmt.Errorf("bench: -wal-compare measures the rescale pipeline; drop -decay-mode %s", benchDecayMode)
		}
	} else if *walEvery != 5000 || *walFsync {
		return fmt.Errorf("bench: -wal-snapshot-every/-wal-fsync require -wal-compare")
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// The -docs pipeline replays aggregated co-occurrence updates into the
	// engine with the story tracker attached, so the measured cost is the
	// full documents-in → stories-out path; the default mode replays raw
	// synthetic edge deltas into a counting sink. The factory builds a fresh
	// pipeline per replay so the -batch comparison can drive the identical
	// workload through both modes; grace is per-pass because its unit is the
	// engine tick (updates sequentially, batches when coalescing); workers
	// selects the ingestion front-end (0 = serial in-line, N = pipelined with
	// N expansion workers), which never changes the emitted stream.
	benchAggCfg := func(mode stream.DecayMode) stream.AggregatorConfig {
		return stream.AggregatorConfig{EpochLength: *epoch, Decay: *decay, DecayMode: mode}
	}
	makePipeline := func(grace uint64, mode stream.DecayMode, workers int) (src stream.UpdateSource, front docFrontEnd, tracker *story.Tracker, cleanup func(), err error) {
		cleanup = func() {}
		if !*docsMode {
			src, err = stream.NewSynthetic(synthCfg)
			if err == nil && workers > 0 {
				// Raw edge workloads have no expansion stage; N > 0 decouples
				// generation onto a producer goroutine, stream unchanged.
				pipe := stream.NewPipelinedBatchSource(src, *readBatch, stream.PipelineConfig{})
				src, cleanup = pipe, func() { pipe.Close() }
			}
			return src, nil, nil, cleanup, err
		}
		gen, err := stream.NewDocSynthetic(stream.DocSynthConfig{
			BackgroundEntities: synthCfg.Vertices,
			Stories:            *docStories,
			StorySize:          *docStorySize,
			Docs:               synthCfg.Updates,
			Seed:               synthCfg.Seed,
			BackgroundSkew:     synthCfg.Skew,
		})
		if err != nil {
			return nil, nil, nil, cleanup, err
		}
		if front, cleanup, err = newDocFrontEnd(gen, benchAggCfg(mode), workers); err != nil {
			return nil, nil, nil, func() {}, err
		}
		if tracker, err = story.NewTracker(story.Config{MinCardinality: 3, Grace: grace}); err != nil {
			cleanup()
			return nil, nil, nil, func() {}, err
		}
		return front, front, tracker, cleanup, nil
	}

	// graceUpdates is the reference story grace window in per-update ticks.
	// A batched run's tracker counts batch ticks instead, so its grace is
	// rescaled by the workload's updates-per-tick ratio (measured by an
	// untimed pre-drain of the deterministic pipeline) — otherwise the two
	// timed passes of the -batch comparison would do different story-expiry
	// work and the speedup would partly measure tracker-workload divergence.
	const graceUpdates = 350
	batchedGrace := uint64(graceUpdates)
	if (*batchMode || *decayCompare) && *docsMode {
		// The two fading modes are tick-aligned by construction (exact mode
		// also emits a decay group at every epoch crossing), so one pre-drain
		// measures the batch structure for both -decay-compare passes.
		src, _, _, _, err := makePipeline(graceUpdates, benchDecayMode, 0)
		if err != nil {
			return err
		}
		bs := stream.AsBatchSource(src, *readBatch)
		updates, ticks := 0, 0
		for {
			b, err := bs.NextBatch()
			if err != nil {
				break
			}
			updates += len(b.Updates)
			ticks++
		}
		if updates > 0 && ticks > 0 {
			batchedGrace = max(1, uint64(float64(graceUpdates)*float64(ticks)/float64(updates)+0.5))
		}
	}
	engCfg, err := newEngineCfg()
	if err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("bench: -shards must be ≥ 0, got %d", *shards)
	}
	// Validate even for the single-threaded path, where the value is unused —
	// a typo'd -overlap should fail loudly regardless of -shards.
	if _, err := newOverlap(); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		// Written at exit so the profile reflects the heap after the measured
		// pass; a failed write must not fail the benchmark itself.
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "bench: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	if *scaleList != "" {
		if *shards > 0 || *docsMode {
			return fmt.Errorf("bench: -scale is incompatible with -shards and -docs")
		}
		if *serveReaders > 0 {
			return fmt.Errorf("bench: -scale is incompatible with -serve-readers")
		}
		if aggWorkers > 0 {
			return fmt.Errorf("bench: -scale is incompatible with -agg-workers (the curve isolates engine-side parallelism)")
		}
		ks, err := parseScaleList(*scaleList)
		if err != nil {
			return err
		}
		return runBenchScale(ctx, ks, synthCfg, engCfg, *readBatch, *batchMode, *jsonOut)
	}

	header := func(cfg core.Config, extra string) {
		fmt.Printf("bench: %d vertices, %d updates (seed=%d skew=%g neg=%g mean=%g) | %s T=%g Nmax=%d δit=%.4g batch=%d%s\n",
			synthCfg.Vertices, synthCfg.Updates, synthCfg.Seed, synthCfg.Skew, synthCfg.NegativeFraction, synthCfg.MeanDelta,
			cfg.Measure.Name(), cfg.T, cfg.Nmax, cfg.DeltaIt, *readBatch, extra)
	}

	var result benchResult
	finishJSON := func(front docFrontEnd, tracker *story.Tracker) error {
		if *jsonOut == "" {
			return nil
		}
		// front is nil when a raw workload carries a serving-only tracker.
		if tracker != nil && front != nil {
			result.DocPipeline = newDocPipelineResult(*docStories, *docStorySize, benchAggCfg(benchDecayMode), front.Stats(), tracker)
			result.Workload.NegativeFraction, result.Workload.MeanDelta = 0, 0
		}
		return result.writeJSON(*jsonOut)
	}

	if *shards > 0 {
		overlap, err := newOverlap()
		if err != nil {
			return err
		}
		grace := uint64(graceUpdates)
		if *batchMode {
			grace = batchedGrace
		}
		src, front, tracker, cleanup, err := makePipeline(grace, benchDecayMode, aggWorkers)
		if err != nil {
			return err
		}
		defer cleanup()
		se, err := shard.New(shard.Config{Shards: *shards, Engine: engCfg, Overlap: overlap})
		if err != nil {
			return err
		}
		defer se.Close()
		// With -serve-readers the tracker is wrapped in a snapshot-publishing
		// view builder and the closed-loop readers run for the whole replay;
		// raw (non -docs) workloads get a tracker just for serving.
		var bld *serve.Builder
		if *serveReaders > 0 {
			if tracker == nil {
				if tracker, err = story.NewTracker(story.Config{Grace: grace, MinCardinality: 3}); err != nil {
					return err
				}
			}
			bld = serve.NewBuilder(tracker)
			se.SetSeqSink(bld)
		} else if tracker != nil {
			se.SetSeqSink(tracker)
		}
		sink := &core.CountingSink{}
		r := stream.NewShardReplay(src, se, sink)
		// Graceful stop: a signal drains to the next batch boundary and the
		// partial stats are printed; a partial pass never writes JSON.
		r.SetBoundaryHook(func() error {
			if ctx.Err() != nil {
				return stream.ErrStopped
			}
			return nil
		})
		var ld *serve.Load
		if bld != nil {
			ld = serve.StartLoad(bld.View(), serve.LoadConfig{Readers: *serveReaders, TopK: *serveK, Seed: 1})
		}
		mem := takeMemSnapshot()
		var st stream.ShardReplayStats
		switch {
		case *batchMode:
			st, err = r.RunBatches(*readBatch, true)
		case *docsMode && benchDecayMode == stream.DecayRescale:
			// Rescaled decay is batch-structured (threshold epoch units), so
			// the non-coalescing replay still runs through the batch driver.
			st, err = r.RunBatches(*readBatch, false)
		default:
			st, err = r.Run(*readBatch)
		}
		if errors.Is(err, stream.ErrStopped) {
			if ld != nil {
				ld.Stop()
			}
			fmt.Println(st)
			fmt.Println("bench: interrupted — partial pass, summary and JSON omitted")
			return nil
		}
		if err != nil {
			return err
		}
		stats := se.Stats()
		allocs, bytes := mem.perUpdate(st.Updates)
		extra := fmt.Sprintf(" shards=%d overlap=%s", *shards, overlap)
		if *batchMode {
			extra += " batched"
		}
		header(se.Config().Engine.WithDefaults(), extra)
		fmt.Println(st)
		fmt.Printf("sink:   became=%d ceased=%d (net output-dense=%d, deduped=%d)\n",
			sink.Became, sink.Ceased, se.OutputDenseCount(), stats.DedupedEvents)
		var loadStats serve.LoadStats
		if bld != nil {
			bld.Close(uint64(st.Ticks))
			loadStats = ld.Stop()
		} else if tracker != nil {
			tracker.Close(uint64(st.Ticks))
		}
		if tracker != nil && front != nil {
			printDocBenchSummary(front, tracker)
		}
		if bld != nil {
			printServeSummary(loadStats, bld.View())
		}
		fmt.Println(shardedSummary(stats))
		if *jsonOut != "" {
			result.fillCommon(synthCfg, se.Config().Engine.WithDefaults(), *shards, *readBatch)
			result.fillThroughput(st.Updates, st.Wall)
			result.fillEngineStats(stats.Aggregate)
			result.Batched = *batchMode
			result.Ticks = st.Ticks
			result.AllocsPerUpdate, result.BytesPerUpdate = allocs, bytes
			result.Events.Became = sink.Became
			result.Events.Ceased = sink.Ceased
			result.Events.NetOutputDense = se.OutputDenseCount()
			result.Events.Deduped = stats.DedupedEvents
			result.Overlap = overlap.String()
			result.MeanDeliveryFraction = st.MeanDeliveryFraction()
			result.ParallelEfficiency = st.ParallelEfficiency()
			for _, load := range stats.Loads {
				result.PerShardBusyNs = append(result.PerShardBusyNs, load.Busy.Nanoseconds())
				result.PerShardDelivered = append(result.PerShardDelivered, load.Delivered)
				result.PerShardApplied = append(result.PerShardApplied, load.Applied)
			}
			if bld != nil {
				result.Serve = newServeBenchResult(loadStats, bld.View())
			}
			return finishJSON(front, tracker)
		}
		return nil
	}

	// Single-threaded. runOnce replays one fresh pipeline; in -batch mode it
	// is called twice — sequential baseline first, then coalesced — over the
	// same batch partition (RunBatches with coalesce=false times per-update
	// processing at batch granularity, which is what makes the segment
	// comparison apples-to-apples).
	type singleRun struct {
		eng         *core.Engine
		sink        *core.CountingSink
		agg         docFrontEnd
		tracker     *story.Tracker
		bld         *serve.Builder
		load        serve.LoadStats
		st          stream.ReplayStats
		wall        time.Duration // whole-replay wall clock, source + front-end + engine
		allocs      float64
		bytes       float64
		interrupted bool // signal mid-pass: st is partial, nothing downstream of it is valid
	}
	runOnce := func(coalesce bool, mode stream.DecayMode, workers int) (*singleRun, error) {
		grace := uint64(graceUpdates)
		if (*batchMode || *decayCompare) && coalesce {
			grace = batchedGrace
		}
		src, front, tracker, cleanup, err := makePipeline(grace, mode, workers)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		eng, err := core.New(engCfg)
		if err != nil {
			return nil, err
		}
		run := &singleRun{eng: eng, sink: &core.CountingSink{}, agg: front, tracker: tracker}
		// Serve readers attach only to the measured pass (coalesce is always
		// true for it), never to the -batch sequential baseline; raw
		// workloads get a tracker just for serving.
		if *serveReaders > 0 && coalesce {
			if run.tracker == nil {
				if run.tracker, err = story.NewTracker(story.Config{Grace: grace, MinCardinality: 3}); err != nil {
					return nil, err
				}
			}
			run.bld = serve.NewBuilder(run.tracker)
		}
		engSink := core.EventSink(run.sink)
		switch {
		case run.bld != nil:
			engSink = core.MultiSink{run.sink, run.bld}
		case run.tracker != nil:
			engSink = core.MultiSink{run.sink, run.tracker}
		}
		r := stream.NewReplay(src, eng, engSink)
		r.SetBoundaryHook(func() error {
			if ctx.Err() != nil {
				return stream.ErrStopped
			}
			return nil
		})
		var ld *serve.Load
		if run.bld != nil {
			ld = serve.StartLoad(run.bld.View(), serve.LoadConfig{Readers: *serveReaders, TopK: *serveK, Seed: 1})
		}
		mem := takeMemSnapshot()
		// The replay goroutine carries a stage=engine pprof label so CPU
		// profiles split engine time from the front-end stages (the pipeline
		// labels its own goroutines stage=parse/expand/apply); wall is the
		// whole-replay clock the -ingest-compare ratio is built from.
		wallStart := time.Now()
		pprof.Do(context.Background(), pprof.Labels("stage", "engine"), func(context.Context) {
			switch {
			case *batchMode || *decayCompare:
				run.st, err = r.RunBatches(*readBatch, coalesce)
			case *docsMode && mode == stream.DecayRescale:
				// Rescaled decay is batch-structured (threshold epoch units), so
				// the non-coalescing replay still runs through the batch driver.
				run.st, err = r.RunBatches(*readBatch, false)
			default:
				run.st, err = r.Run(*readBatch)
			}
		})
		run.wall = time.Since(wallStart)
		if errors.Is(err, stream.ErrStopped) {
			run.interrupted = true
			if ld != nil {
				ld.Stop()
			}
			return run, nil
		}
		if err != nil {
			return nil, err
		}
		run.allocs, run.bytes = mem.perUpdate(run.st.Updates)
		if run.bld != nil {
			run.bld.Close(uint64(run.st.Ticks))
			run.load = ld.Stop()
		} else if run.tracker != nil {
			run.tracker.Close(uint64(run.st.Ticks))
		}
		return run, nil
	}
	// benchInterrupted reports a signal-drained partial pass: its stats are
	// printed, comparisons and JSON are skipped (a partial snapshot would
	// poison the committed perf trajectory).
	benchInterrupted := func(st fmt.Stringer) error {
		fmt.Println(st)
		fmt.Println("bench: interrupted — partial pass, summary and JSON omitted")
		return nil
	}

	var seq *singleRun
	if *batchMode {
		// Sequential baseline pass for the comparison.
		if seq, err = runOnce(false, benchDecayMode, aggWorkers); err != nil {
			return err
		}
		if seq.interrupted {
			return benchInterrupted(seq.st)
		}
	}
	// With -decay-compare the exact-sweep reference pass runs first (both
	// passes epoch-coalesced over the identical workload); the measured pass
	// below is the rescaled one and fills the main result fields.
	var exactRef *singleRun
	if *decayCompare {
		if exactRef, err = runOnce(true, stream.DecayExact, aggWorkers); err != nil {
			return err
		}
		if exactRef.interrupted {
			return benchInterrupted(exactRef.st)
		}
	}
	// With -ingest-compare the serial-front-end reference pass runs first over
	// the identical workload; the measured pass below runs the pipelined
	// front-end and fills the main result fields.
	var serialRef *singleRun
	if *ingestCompare {
		if serialRef, err = runOnce(true, benchDecayMode, 0); err != nil {
			return err
		}
		if serialRef.interrupted {
			return benchInterrupted(serialRef.st)
		}
	}
	measured, err := runOnce(true, benchDecayMode, aggWorkers)
	if err != nil {
		return err
	}
	if measured.interrupted {
		return benchInterrupted(measured.st)
	}

	// With -wal-compare the measured pass above is the durability-off
	// reference; the persisted pass replays the identical workload with the
	// document WAL and periodic background snapshots into a throwaway
	// directory. Determinism makes the comparison honest — the two passes
	// must produce identical story/event outcomes or the ratio measures
	// divergence, not durability cost.
	var walRun *singleRun
	var walStoreStats persist.StoreStats
	if *walCompare {
		dir, err := os.MkdirTemp("", "dyndens-bench-wal-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		pst, err := persist.Open(persist.Config{
			Dir:           dir,
			Fingerprint:   "bench:wal-compare",
			SnapshotEvery: *walEvery,
			Fsync:         *walFsync,
		})
		if err != nil {
			return err
		}
		gen, err := stream.NewDocSynthetic(stream.DocSynthConfig{
			BackgroundEntities: synthCfg.Vertices,
			Stories:            *docStories,
			StorySize:          *docStorySize,
			Docs:               synthCfg.Updates,
			Seed:               synthCfg.Seed,
			BackgroundSkew:     synthCfg.Skew,
		})
		if err != nil {
			return err
		}
		agg, err := stream.NewAggregator(pst.Docs(gen), benchAggCfg(benchDecayMode))
		if err != nil {
			return err
		}
		tracker, err := story.NewTracker(story.Config{MinCardinality: 3, Grace: graceUpdates})
		if err != nil {
			return err
		}
		eng, err := core.New(engCfg)
		if err != nil {
			return err
		}
		walRun = &singleRun{eng: eng, sink: &core.CountingSink{}, agg: agg, tracker: tracker}
		r := stream.NewReplay(agg, eng, core.MultiSink{walRun.sink, tracker})
		capture := func() (*persist.PipelineState, error) {
			ps, cerr := persist.CaptureSingle(eng, agg, tracker)
			if cerr != nil {
				return nil, cerr
			}
			ps.Ticks = uint64(r.Stats().Ticks)
			return ps, nil
		}
		r.SetBoundaryHook(func() error {
			if ctx.Err() != nil {
				return stream.ErrStopped
			}
			if agg.Drained() {
				return pst.MaybeSnapshot(capture)
			}
			return nil
		})
		wallStart := time.Now()
		walRun.st, err = r.RunBatches(*readBatch, false)
		walRun.wall = time.Since(wallStart)
		if errors.Is(err, stream.ErrStopped) {
			pst.Close()
			return benchInterrupted(walRun.st)
		}
		if err != nil {
			pst.Close()
			return err
		}
		if err := pst.Checkpoint(capture); err != nil {
			return err
		}
		tracker.Close(uint64(walRun.st.Ticks))
		walStoreStats = pst.Stats()
		if err := pst.Close(); err != nil {
			return err
		}
		if walRun.st.Updates != measured.st.Updates || walRun.st.Ticks != measured.st.Ticks ||
			walRun.sink.Became != measured.sink.Became || walRun.sink.Ceased != measured.sink.Ceased {
			return fmt.Errorf("bench: WAL-on pass diverged from WAL-off (updates %d vs %d, ticks %d vs %d, became %d vs %d, ceased %d vs %d)",
				walRun.st.Updates, measured.st.Updates, walRun.st.Ticks, measured.st.Ticks,
				walRun.sink.Became, measured.sink.Became, walRun.sink.Ceased, measured.sink.Ceased)
		}
	}
	if serialRef != nil {
		// The pipeline's determinism contract makes the comparison honest:
		// both passes must have replayed the identical update stream into
		// identical story/event outcomes, or the ratio measures divergence,
		// not overlap.
		if measured.st.Updates != serialRef.st.Updates || measured.st.Ticks != serialRef.st.Ticks ||
			measured.sink.Became != serialRef.sink.Became || measured.sink.Ceased != serialRef.sink.Ceased {
			return fmt.Errorf("bench: pipelined front-end diverged from serial (updates %d vs %d, ticks %d vs %d, became %d vs %d, ceased %d vs %d)",
				measured.st.Updates, serialRef.st.Updates, measured.st.Ticks, serialRef.st.Ticks,
				measured.sink.Became, serialRef.sink.Became, measured.sink.Ceased, serialRef.sink.Ceased)
		}
	}

	extra := ""
	if *batchMode {
		extra = " batched"
	}
	header(measured.eng.Config(), extra)
	if seq != nil {
		fmt.Printf("sequential: %v\n", seq.st)
	}
	if exactRef != nil {
		fmt.Printf("exact:      %v\n", exactRef.st)
	}
	if serialRef != nil {
		fmt.Printf("serial-ingest: %v (wall %v)\n", serialRef.st, serialRef.wall.Round(time.Microsecond))
	}
	fmt.Println(measured.st)
	if serialRef != nil {
		// Wall-clock ratio, not engine upd/s: the front-end's win is overlap,
		// which engine-only elapsed time cannot see by construction.
		fmt.Printf("ingest speedup: %.2fx wall-clock (pipelined %d-worker front-end %v vs serial %v)\n",
			elapsedSpeedup(serialRef.wall, measured.wall), aggWorkers,
			measured.wall.Round(time.Microsecond), serialRef.wall.Round(time.Microsecond))
	}
	if exactRef != nil {
		// Elapsed-time ratio, not upd/s: the rescaled decay segment processes
		// ~zero per-pair updates, so a throughput ratio would be meaningless.
		fmt.Printf("decay-mode speedup: decay-segment %.2fx, overall %.2fx (rescale vs exact, elapsed time)\n",
			elapsedSpeedup(exactRef.st.DecaySeg.Elapsed, measured.st.DecaySeg.Elapsed),
			elapsedSpeedup(exactRef.st.Elapsed, measured.st.Elapsed))
	}
	if walRun != nil {
		// Wall-clock ratio over the same logical work: the fraction of
		// durability-off throughput the persisted pipeline retains.
		fmt.Printf("wal overhead: on %v vs off %v (%.2fx throughput retained) frames=%d bytes=%d snapshots=%d fsync=%v\n",
			walRun.wall.Round(time.Microsecond), measured.wall.Round(time.Microsecond),
			elapsedSpeedup(measured.wall, walRun.wall),
			walStoreStats.FramesLogged, walStoreStats.BytesLogged, walStoreStats.SnapshotsCut, *walFsync)
	}
	if seq != nil {
		if seq.st.DecaySeg.Batches > 0 {
			fmt.Printf("speedup: decay-segment %.2fx, overall %.2fx (batched vs sequential)\n",
				speedup(measured.st.DecaySeg.UpdatesPerSecond(), seq.st.DecaySeg.UpdatesPerSecond()),
				speedup(measured.st.UpdatesPerSecond(), seq.st.UpdatesPerSecond()))
		} else {
			// Raw-update workloads have no epoch bursts; a 0.00x decay figure
			// would read as a regression rather than an absent segment.
			fmt.Printf("speedup: overall %.2fx (batched vs sequential; workload has no decay segment)\n",
				speedup(measured.st.UpdatesPerSecond(), seq.st.UpdatesPerSecond()))
		}
	}
	fmt.Printf("sink:   became=%d ceased=%d (net output-dense=%d)\n",
		measured.sink.Became, measured.sink.Ceased, measured.eng.OutputDenseCount())
	if measured.tracker != nil && measured.agg != nil {
		printDocBenchSummary(measured.agg, measured.tracker)
	}
	if measured.bld != nil {
		printServeSummary(measured.load, measured.bld.View())
	}
	fmt.Println(engineSummary(measured.eng))
	if *jsonOut != "" {
		result.fillCommon(synthCfg, measured.eng.Config(), 0, *readBatch)
		result.fillThroughput(measured.st.Updates, measured.st.Elapsed)
		result.fillEngineStats(measured.eng.Stats())
		result.Batched = *batchMode
		result.Ticks = measured.st.Ticks
		result.AllocsPerUpdate, result.BytesPerUpdate = measured.allocs, measured.bytes
		result.Events.Became = measured.sink.Became
		result.Events.Ceased = measured.sink.Ceased
		result.Events.NetOutputDense = measured.eng.OutputDenseCount()
		if seq != nil {
			result.BatchCompare = &batchCompareResult{
				Sequential:     newModeResult(seq.st),
				Batched:        newModeResult(measured.st),
				DecaySpeedup:   speedup(measured.st.DecaySeg.UpdatesPerSecond(), seq.st.DecaySeg.UpdatesPerSecond()),
				OverallSpeedup: speedup(measured.st.UpdatesPerSecond(), seq.st.UpdatesPerSecond()),
			}
		}
		if exactRef != nil {
			result.DecayModeCompare = &decayModeCompareResult{
				Exact:               newModeResult(exactRef.st),
				Rescale:             newModeResult(measured.st),
				DecaySegmentSpeedup: elapsedSpeedup(exactRef.st.DecaySeg.Elapsed, measured.st.DecaySeg.Elapsed),
				OverallSpeedup:      elapsedSpeedup(exactRef.st.Elapsed, measured.st.Elapsed),
			}
		}
		if serialRef != nil && measured.st.Ingest != nil {
			result.IngestPipeline = newIngestPipelineResult(serialRef.wall, measured.wall, *measured.st.Ingest)
		}
		if walRun != nil {
			result.WALOverhead = &walOverheadResult{
				OffWallNs: measured.wall.Nanoseconds(),
				OnWallNs:  walRun.wall.Nanoseconds(),
				Ratio:     elapsedSpeedup(measured.wall, walRun.wall),
				Fsync:     *walFsync,
				Frames:    walStoreStats.FramesLogged,
				Bytes:     walStoreStats.BytesLogged,
				Snapshots: walStoreStats.SnapshotsCut,
			}
		}
		if measured.bld != nil {
			result.Serve = newServeBenchResult(measured.load, measured.bld.View())
		}
		return finishJSON(measured.agg, measured.tracker)
	}
	return nil
}

// parseScaleList parses the -scale flag: a comma-separated list of shard
// counts with duplicates dropped. 0 (the single-engine reference every ratio
// is anchored to) must be present.
func parseScaleList(s string) ([]int, error) {
	var ks []int
	seen := make(map[int]bool)
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		k, err := strconv.Atoi(tok)
		if err != nil || k < 0 {
			return nil, fmt.Errorf("bench: bad -scale entry %q (want comma-separated shard counts ≥ 0)", tok)
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("bench: -scale list is empty")
	}
	if !seen[0] {
		return nil, fmt.Errorf("bench: -scale list must include 0 (the single-engine reference point)")
	}
	return ks, nil
}

// runBenchScale replays the identical synthetic workload once per requested
// point — the single engine for count 0, the sharded engine in both scoped
// and mirror delivery for each count > 0 — printing one line per point and
// emitting the whole curve in the JSON Scaling block. With batched set every
// point is driven through epoch coalescing (ProcessBatch / whole-epoch shard
// shipping) instead of per-update delivery. The event counters of every
// point must agree (the delivery policy is an optimization, not an
// approximation); a mismatch fails the run.
func runBenchScale(ctx context.Context, ks []int, synthCfg stream.SynthConfig, engCfg core.Config, readBatch int, batched bool, jsonOut string) error {
	// A signal drains the current point to its next batch boundary and abandons
	// the curve — a partial curve never reaches the JSON output.
	stopHook := func() error {
		if ctx.Err() != nil {
			return stream.ErrStopped
		}
		return nil
	}
	runPoint := func(k int, overlap shard.Overlap) (scaleEntry, core.Stats, error) {
		e := scaleEntry{Shards: k, Batched: batched}
		src, err := stream.NewSynthetic(synthCfg)
		if err != nil {
			return e, core.Stats{}, err
		}
		sink := &core.CountingSink{}
		if k == 0 {
			eng, err := core.New(engCfg)
			if err != nil {
				return e, core.Stats{}, err
			}
			r := stream.NewReplay(src, eng, sink)
			r.SetBoundaryHook(stopHook)
			var st stream.ReplayStats
			if batched {
				st, err = r.RunBatches(readBatch, true)
			} else {
				st, err = r.Run(readBatch)
			}
			if err != nil {
				return e, core.Stats{}, err
			}
			e.UpdatesPerSecond = st.UpdatesPerSecond()
			e.ElapsedNs = st.Elapsed.Nanoseconds()
			e.Became, e.Ceased, e.NetOutputDense = sink.Became, sink.Ceased, eng.OutputDenseCount()
			return e, eng.Stats(), nil
		}
		e.Overlap = overlap.String()
		se, err := shard.New(shard.Config{Shards: k, Engine: engCfg, Overlap: overlap})
		if err != nil {
			return e, core.Stats{}, err
		}
		defer se.Close()
		r := stream.NewShardReplay(src, se, sink)
		r.SetBoundaryHook(stopHook)
		var st stream.ShardReplayStats
		if batched {
			st, err = r.RunBatches(readBatch, true)
		} else {
			st, err = r.Run(readBatch)
		}
		if err != nil {
			return e, core.Stats{}, err
		}
		stats := se.Stats()
		e.UpdatesPerSecond = st.UpdatesPerSecond()
		e.ElapsedNs = st.Wall.Nanoseconds()
		e.MeanDeliveryFraction = st.MeanDeliveryFraction()
		e.ParallelEfficiency = st.ParallelEfficiency()
		for _, load := range stats.Loads {
			e.PerShardBusyNs = append(e.PerShardBusyNs, load.Busy.Nanoseconds())
			e.PerShardDelivered = append(e.PerShardDelivered, load.Delivered)
			e.PerShardApplied = append(e.PerShardApplied, load.Applied)
		}
		e.Became, e.Ceased, e.NetOutputDense = sink.Became, sink.Ceased, se.OutputDenseCount()
		return e, stats.Aggregate, nil
	}

	mode := "sequential"
	if batched {
		mode = "batched"
	}
	fmt.Printf("bench -scale: %d vertices, %d updates (seed=%d skew=%g neg=%g mean=%g) | T=%g Nmax=%d batch=%d mode=%s\n",
		synthCfg.Vertices, synthCfg.Updates, synthCfg.Seed, synthCfg.Skew, synthCfg.NegativeFraction, synthCfg.MeanDelta,
		engCfg.WithDefaults().T, engCfg.WithDefaults().Nmax, readBatch, mode)

	var sc scalingResult
	var single *scaleEntry
	var singleStats core.Stats
	for _, k := range ks {
		overlaps := []shard.Overlap{shard.OverlapScoped}
		if k > 0 {
			overlaps = []shard.Overlap{shard.OverlapScoped, shard.OverlapMirror}
		}
		for _, ov := range overlaps {
			e, stats, err := runPoint(k, ov)
			if errors.Is(err, stream.ErrStopped) {
				fmt.Println("bench: interrupted — partial scaling curve, JSON omitted")
				return nil
			}
			if err != nil {
				return err
			}
			label := "single"
			if k > 0 {
				label = fmt.Sprintf("K=%d %s", k, ov)
			}
			if k == 0 {
				fmt.Printf("%-12s %10.0f upd/s  became=%d ceased=%d net=%d\n",
					label, e.UpdatesPerSecond, e.Became, e.Ceased, e.NetOutputDense)
				singleStats = stats
			} else {
				fmt.Printf("%-12s %10.0f upd/s  delivery=%.2f eff=%.0f%%  became=%d ceased=%d net=%d\n",
					label, e.UpdatesPerSecond, e.MeanDeliveryFraction, 100*e.ParallelEfficiency,
					e.Became, e.Ceased, e.NetOutputDense)
			}
			sc.Entries = append(sc.Entries, e)
			if k == 0 {
				point := e
				single = &point
			}
			first := sc.Entries[0]
			if e.Became != first.Became || e.Ceased != first.Ceased || e.NetOutputDense != first.NetOutputDense {
				return fmt.Errorf("bench: scale point %s diverged from %d/%d/%d (became/ceased/net) — delivery policies must be output-identical",
					label, first.Became, first.Ceased, first.NetOutputDense)
			}
		}
	}

	find := func(k int, ov string) *scaleEntry {
		for i := range sc.Entries {
			if sc.Entries[i].Shards == k && sc.Entries[i].Overlap == ov {
				return &sc.Entries[i]
			}
		}
		return nil
	}
	if s4 := find(4, "scoped"); s4 != nil {
		if m4 := find(4, "mirror"); m4 != nil {
			sc.ScopedK4VsMirrorK4 = speedup(s4.UpdatesPerSecond, m4.UpdatesPerSecond)
			fmt.Printf("scoped K=4 vs mirror K=4: %.2fx\n", sc.ScopedK4VsMirrorK4)
		}
		if single != nil {
			sc.ScopedK4VsSingle = speedup(s4.UpdatesPerSecond, single.UpdatesPerSecond)
			fmt.Printf("scoped K=4 vs single:     %.2fx\n", sc.ScopedK4VsSingle)
		}
	}

	if jsonOut == "" {
		return nil
	}
	var result benchResult
	result.fillCommon(synthCfg, engCfg.WithDefaults(), 0, readBatch)
	result.Batched = batched
	result.fillThroughput(synthCfg.Updates, time.Duration(single.ElapsedNs))
	result.fillEngineStats(singleStats)
	result.Events.Became = single.Became
	result.Events.Ceased = single.Ceased
	result.Events.NetOutputDense = single.NetOutputDense
	result.Scaling = &sc
	return result.writeJSON(jsonOut)
}

// printDocBenchSummary prints the -docs mode aggregation and story counters.
func printDocBenchSummary(agg docFrontEnd, tracker *story.Tracker) {
	fmt.Println(agg.Stats())
	st := tracker.Stats()
	fmt.Printf("story:  born=%d split=%d updated=%d merged=%d died=%d | live=%d fading=%d\n",
		st.Born, st.Split, st.Updated, st.Merged, st.Died, st.Live, st.Fading)
}
