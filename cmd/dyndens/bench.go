package main

import (
	"flag"
	"fmt"

	"dyndens/internal/core"
	"dyndens/internal/stream"
)

// cmdBench replays a seeded synthetic stream end-to-end (generator → replay →
// engine → counting sink) and prints the throughput/latency summary that
// serves as the repo's performance baseline.
//
// Note the threshold/workload interplay: weights accumulate for the whole
// run, so a threshold far below the weight of the hottest edges (high -skew
// or long streams with low -T) makes a combinatorial number of subgraphs
// dense — that is a property of the Engagement problem, not a bug. The
// defaults (uniform endpoints, T=3) keep the index sparse at any length.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("dyndens bench", flag.ExitOnError)
	newSynth := synthFlags(fs)
	batch := fs.Int("batch", 256, "micro-batch size for the replay driver")
	newEngine := engineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	synthCfg, err := newSynth()
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}

	src, err := stream.NewSynthetic(synthCfg)
	if err != nil {
		return err
	}
	eng, err := newEngine()
	if err != nil {
		return err
	}

	sink := &core.CountingSink{}
	st, err := stream.NewReplay(src, eng, sink).Run(*batch)
	if err != nil {
		return err
	}
	cfg := eng.Config()
	fmt.Printf("bench: %d vertices, %d updates (seed=%d skew=%g neg=%g mean=%g) | %s T=%g Nmax=%d δit=%.4g batch=%d\n",
		synthCfg.Vertices, synthCfg.Updates, synthCfg.Seed, synthCfg.Skew, synthCfg.NegativeFraction, synthCfg.MeanDelta,
		cfg.Measure.Name(), cfg.T, cfg.Nmax, cfg.DeltaIt, *batch)
	fmt.Println(st)
	fmt.Printf("sink:   became=%d ceased=%d (net output-dense=%d)\n",
		sink.Became, sink.Ceased, eng.OutputDenseCount())
	fmt.Println(engineSummary(eng))
	return nil
}
