package main

import (
	"flag"
	"fmt"

	"dyndens/internal/core"
	"dyndens/internal/shard"
	"dyndens/internal/stream"
)

// cmdBench replays a seeded synthetic stream end-to-end (generator → replay →
// engine → counting sink) and prints the throughput/latency summary that
// serves as the repo's performance baseline. With -shards K the stream is
// driven through the sharded engine instead, reporting aggregate wall-clock
// throughput plus per-shard busy time, so the single-threaded (K=0) and
// sharded paths can be benchmarked side by side.
//
// Note the threshold/workload interplay: weights accumulate for the whole
// run, so a threshold far below the weight of the hottest edges (high -skew
// or long streams with low -T) makes a combinatorial number of subgraphs
// dense — that is a property of the Engagement problem, not a bug. The
// defaults (uniform endpoints, T=3) keep the index sparse at any length.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("dyndens bench", flag.ExitOnError)
	newSynth := synthFlags(fs)
	batch := fs.Int("batch", 256, "micro-batch size for the replay driver")
	shards := fs.Int("shards", 0, "partition the engine across K workers (0 = single-threaded)")
	newEngineCfg := engineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	synthCfg, err := newSynth()
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}

	src, err := stream.NewSynthetic(synthCfg)
	if err != nil {
		return err
	}
	engCfg, err := newEngineCfg()
	if err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("bench: -shards must be ≥ 0, got %d", *shards)
	}

	sink := &core.CountingSink{}
	header := func(cfg core.Config, extra string) {
		fmt.Printf("bench: %d vertices, %d updates (seed=%d skew=%g neg=%g mean=%g) | %s T=%g Nmax=%d δit=%.4g batch=%d%s\n",
			synthCfg.Vertices, synthCfg.Updates, synthCfg.Seed, synthCfg.Skew, synthCfg.NegativeFraction, synthCfg.MeanDelta,
			cfg.Measure.Name(), cfg.T, cfg.Nmax, cfg.DeltaIt, *batch, extra)
	}

	if *shards > 0 {
		se, err := shard.New(shard.Config{Shards: *shards, Engine: engCfg})
		if err != nil {
			return err
		}
		defer se.Close()
		st, err := stream.NewShardReplay(src, se, sink).Run(*batch)
		if err != nil {
			return err
		}
		stats := se.Stats()
		header(se.Config().Engine.WithDefaults(), fmt.Sprintf(" shards=%d", *shards))
		fmt.Println(st)
		fmt.Printf("sink:   became=%d ceased=%d (net output-dense=%d, deduped=%d)\n",
			sink.Became, sink.Ceased, se.OutputDenseCount(), stats.DedupedEvents)
		fmt.Println(shardedSummary(stats))
		return nil
	}

	eng, err := core.New(engCfg)
	if err != nil {
		return err
	}
	st, err := stream.NewReplay(src, eng, sink).Run(*batch)
	if err != nil {
		return err
	}
	header(eng.Config(), "")
	fmt.Println(st)
	fmt.Printf("sink:   became=%d ceased=%d (net output-dense=%d)\n",
		sink.Became, sink.Ceased, eng.OutputDenseCount())
	fmt.Println(engineSummary(eng))
	return nil
}
