package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dyndens/internal/core"
	"dyndens/internal/shard"
	"dyndens/internal/story"
	"dyndens/internal/stream"
)

// benchResult is the machine-readable record one `dyndens bench -json` run
// emits. It is the unit of the repo's performance trajectory: committed
// snapshots (BENCH_PR3.json, ...) and CI jobs compare these fields across
// revisions, so additions are fine but renames are breaking.
type benchResult struct {
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	Workload struct {
		Vertices         int     `json:"vertices"`
		Updates          int     `json:"updates"`
		Seed             int64   `json:"seed"`
		Skew             float64 `json:"skew"`
		NegativeFraction float64 `json:"negative_fraction"`
		MeanDelta        float64 `json:"mean_delta"`
	} `json:"workload"`

	Config struct {
		Measure          string  `json:"measure"`
		T                float64 `json:"t"`
		Nmax             int     `json:"nmax"`
		DeltaIt          float64 `json:"delta_it"`
		MaxExplore       bool    `json:"max_explore"`
		DegreePrioritize bool    `json:"degree_prioritize"`
	} `json:"config"`

	Shards int `json:"shards"`
	Batch  int `json:"batch"`

	// Throughput of the engine processing itself (source I/O excluded for the
	// single-threaded path; wall-clock including merge for the sharded path).
	UpdatesPerSecond float64 `json:"updates_per_second"`
	NsPerUpdate      float64 `json:"ns_per_update"`
	ElapsedNs        int64   `json:"elapsed_ns"`

	// Whole-process allocation accounting over the replay (runtime.MemStats
	// deltas divided by the update count). For shards > 0 this includes the
	// batching/merge machinery, not just the engines.
	AllocsPerUpdate float64 `json:"allocs_per_update"`
	BytesPerUpdate  float64 `json:"bytes_per_update"`

	Events struct {
		Became         uint64 `json:"became"`
		Ceased         uint64 `json:"ceased"`
		NetOutputDense int    `json:"net_output_dense"`
		Deduped        uint64 `json:"deduped,omitempty"`
	} `json:"events"`

	Engine struct {
		Updates       uint64 `json:"updates"`
		Explorations  uint64 `json:"explorations"`
		CheapExplores uint64 `json:"cheap_explores"`
		Insertions    uint64 `json:"insertions"`
		Evictions     uint64 `json:"evictions"`
		IndexedDense  int    `json:"indexed_dense"`
		IndexedStars  int    `json:"indexed_stars"`
		IndexNodes    int    `json:"index_nodes"`
		MaxIndexNodes int    `json:"max_index_nodes"`
	} `json:"engine"`

	// PerShardBusyNs is the per-worker busy time for sharded runs (empty for
	// the single-threaded path).
	PerShardBusyNs []int64 `json:"per_shard_busy_ns,omitempty"`

	// DocPipeline is present for -docs runs: the document→story pipeline's
	// aggregation and story-lifecycle counters.
	DocPipeline *docPipelineResult `json:"doc_pipeline,omitempty"`
}

// docPipelineResult is the -docs mode extension of benchResult. The config
// fields make the snapshot self-describing: together with the shared
// workload/config blocks they are exactly the flags that reproduce the run
// (in -docs mode the workload block's negative_fraction/mean_delta are
// zeroed — the document generator has no such knobs).
type docPipelineResult struct {
	Stories     int     `json:"stories"`
	StorySize   int     `json:"story_size"`
	EpochLength int64   `json:"epoch_length"`
	Decay       float64 `json:"decay"`

	Docs         int   `json:"docs"`
	PairUpdates  int   `json:"pair_updates"`
	DecayUpdates int   `json:"decay_updates"`
	RetiredPairs int   `json:"retired_pairs"`
	Epochs       int64 `json:"epochs"`
	TrackedPairs int   `json:"tracked_pairs"`

	StoriesBorn   int `json:"stories_born"`
	StoriesSplit  int `json:"stories_split"`
	StoriesMerged int `json:"stories_merged"`
	StoriesDied   int `json:"stories_died"`
	StoriesLive   int `json:"stories_live"`
	StoriesFading int `json:"stories_fading"`
	Records       int `json:"records"`
}

func newDocPipelineResult(stories, storySize int, aggCfg stream.AggregatorConfig, aggStats stream.AggregatorStats, tracker *story.Tracker) *docPipelineResult {
	st := tracker.Stats()
	return &docPipelineResult{
		Stories:       stories,
		StorySize:     storySize,
		EpochLength:   aggCfg.EpochLength,
		Decay:         aggCfg.Decay,
		Docs:          aggStats.Docs,
		PairUpdates:   aggStats.PairUpdates,
		DecayUpdates:  aggStats.DecayUpdates,
		RetiredPairs:  aggStats.Retired,
		Epochs:        aggStats.Epochs,
		TrackedPairs:  aggStats.TrackedPairs,
		StoriesBorn:   st.Born,
		StoriesSplit:  st.Split,
		StoriesMerged: st.Merged,
		StoriesDied:   st.Died,
		StoriesLive:   st.Live,
		StoriesFading: st.Fading,
		Records:       len(tracker.Records()),
	}
}

func (r *benchResult) fillCommon(synthCfg stream.SynthConfig, engCfg core.Config, shards, batch int) {
	r.Timestamp = time.Now().UTC().Format(time.RFC3339)
	r.GoVersion = runtime.Version()
	r.GOOS = runtime.GOOS
	r.GOARCH = runtime.GOARCH
	r.Workload.Vertices = synthCfg.Vertices
	r.Workload.Updates = synthCfg.Updates
	r.Workload.Seed = synthCfg.Seed
	r.Workload.Skew = synthCfg.Skew
	r.Workload.NegativeFraction = synthCfg.NegativeFraction
	r.Workload.MeanDelta = synthCfg.MeanDelta
	r.Config.Measure = engCfg.Measure.Name()
	r.Config.T = engCfg.T
	r.Config.Nmax = engCfg.Nmax
	r.Config.DeltaIt = engCfg.DeltaIt
	r.Config.MaxExplore = engCfg.EnableMaxExplore
	r.Config.DegreePrioritize = engCfg.EnableDegreePrioritize
	r.Shards = shards
	r.Batch = batch
}

// fillThroughput derives the rate fields from an (updates, elapsed) pair —
// engine time for the single-threaded path, wall clock for the sharded one.
func (r *benchResult) fillThroughput(updates int, elapsed time.Duration) {
	r.ElapsedNs = elapsed.Nanoseconds()
	if updates > 0 && elapsed > 0 {
		r.UpdatesPerSecond = float64(updates) / elapsed.Seconds()
		r.NsPerUpdate = float64(elapsed.Nanoseconds()) / float64(updates)
	}
}

func (r *benchResult) fillEngineStats(s core.Stats) {
	r.Engine.Updates = s.Updates
	r.Engine.Explorations = s.Explorations
	r.Engine.CheapExplores = s.CheapExplores
	r.Engine.Insertions = s.Insertions
	r.Engine.Evictions = s.Evictions
	r.Engine.IndexedDense = s.IndexedDense
	r.Engine.IndexedStars = s.IndexedStars
	r.Engine.IndexNodes = s.IndexNodes
	r.Engine.MaxIndexNodes = s.MaxIndexNodes
}

// writeJSON writes the result to path ("-" for stdout).
func (r *benchResult) writeJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// memSnapshot captures the allocation counters relevant to per-update
// accounting. GC is forced first so the deltas measure the replay, not
// leftover garbage churn.
type memSnapshot struct {
	mallocs    uint64
	totalAlloc uint64
}

func takeMemSnapshot() memSnapshot {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return memSnapshot{mallocs: ms.Mallocs, totalAlloc: ms.TotalAlloc}
}

func (m memSnapshot) perUpdate(updates int) (allocs, bytes float64) {
	if updates <= 0 {
		return 0, 0
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.Mallocs-m.mallocs) / float64(updates),
		float64(ms.TotalAlloc-m.totalAlloc) / float64(updates)
}

// cmdBench replays a seeded synthetic stream end-to-end (generator → replay →
// engine → counting sink) and prints the throughput/latency summary that
// serves as the repo's performance baseline. With -shards K the stream is
// driven through the sharded engine instead, reporting aggregate wall-clock
// throughput plus per-shard busy time, so the single-threaded (K=0) and
// sharded paths can be benchmarked side by side. With -json path the run
// additionally emits a machine-readable benchResult (path "-" for stdout),
// the format the repo's committed perf trajectory (BENCH_PR3.json, ...) and
// CI regression tooling consume.
//
// Note the threshold/workload interplay: weights accumulate for the whole
// run, so a threshold far below the weight of the hottest edges (high -skew
// or long streams with low -T) makes a combinatorial number of subgraphs
// dense — that is a property of the Engagement problem, not a bug. The
// defaults (uniform endpoints, T=3) keep the index sparse at any length.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("dyndens bench", flag.ExitOnError)
	newSynth := synthFlags(fs)
	batch := fs.Int("batch", 256, "micro-batch size for the replay driver")
	shards := fs.Int("shards", 0, "partition the engine across K workers (0 = single-threaded)")
	jsonOut := fs.String("json", "", "also write a machine-readable result to this `path` (- for stdout)")
	docsMode := fs.Bool("docs", false, "bench the document→story pipeline: -vertices are background entities, -updates documents, -skew the background Zipf exponent (-neg/-mean unused)")
	docStories := fs.Int("doc-stories", 3, "planted stories (with -docs)")
	docStorySize := fs.Int("doc-story-size", 4, "entities per planted story (with -docs)")
	epoch := fs.Int64("epoch", 25, "fading epoch length in document time units (with -docs)")
	decay := fs.Float64("decay", 0.7, "per-epoch fading factor (with -docs)")
	newEngineCfg := engineFlags(fs, 3, 5)
	if err := fs.Parse(args); err != nil {
		return err
	}
	synthCfg, err := newSynth()
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}

	// The -docs pipeline replays aggregated co-occurrence updates into the
	// engine with the story tracker attached, so the measured cost is the
	// full documents-in → stories-out path; the default mode replays raw
	// synthetic edge deltas into a counting sink.
	var src stream.UpdateSource
	var agg *stream.Aggregator
	var tracker *story.Tracker
	if *docsMode {
		if err := checkDecay(*decay); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		gen, err := stream.NewDocSynthetic(stream.DocSynthConfig{
			BackgroundEntities: synthCfg.Vertices,
			Stories:            *docStories,
			StorySize:          *docStorySize,
			Docs:               synthCfg.Updates,
			Seed:               synthCfg.Seed,
			BackgroundSkew:     synthCfg.Skew,
		})
		if err != nil {
			return err
		}
		if agg, err = stream.NewAggregator(gen, stream.AggregatorConfig{EpochLength: *epoch, Decay: *decay}); err != nil {
			return err
		}
		if tracker, err = story.NewTracker(story.Config{MinCardinality: 3, Grace: 350}); err != nil {
			return err
		}
		src = agg
	} else {
		if src, err = stream.NewSynthetic(synthCfg); err != nil {
			return err
		}
	}
	engCfg, err := newEngineCfg()
	if err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("bench: -shards must be ≥ 0, got %d", *shards)
	}

	sink := &core.CountingSink{}
	header := func(cfg core.Config, extra string) {
		fmt.Printf("bench: %d vertices, %d updates (seed=%d skew=%g neg=%g mean=%g) | %s T=%g Nmax=%d δit=%.4g batch=%d%s\n",
			synthCfg.Vertices, synthCfg.Updates, synthCfg.Seed, synthCfg.Skew, synthCfg.NegativeFraction, synthCfg.MeanDelta,
			cfg.Measure.Name(), cfg.T, cfg.Nmax, cfg.DeltaIt, *batch, extra)
	}

	var result benchResult

	if *shards > 0 {
		se, err := shard.New(shard.Config{Shards: *shards, Engine: engCfg})
		if err != nil {
			return err
		}
		defer se.Close()
		if tracker != nil {
			se.SetSeqSink(tracker)
		}
		mem := takeMemSnapshot()
		st, err := stream.NewShardReplay(src, se, sink).Run(*batch)
		if err != nil {
			return err
		}
		stats := se.Stats()
		allocs, bytes := mem.perUpdate(st.Updates)
		header(se.Config().Engine.WithDefaults(), fmt.Sprintf(" shards=%d", *shards))
		fmt.Println(st)
		fmt.Printf("sink:   became=%d ceased=%d (net output-dense=%d, deduped=%d)\n",
			sink.Became, sink.Ceased, se.OutputDenseCount(), stats.DedupedEvents)
		if tracker != nil {
			tracker.Close(uint64(st.Updates))
			printDocBenchSummary(agg, tracker)
		}
		fmt.Println(shardedSummary(stats))
		if *jsonOut != "" {
			result.fillCommon(synthCfg, se.Config().Engine.WithDefaults(), *shards, *batch)
			result.fillThroughput(st.Updates, st.Wall)
			result.fillEngineStats(stats.Aggregate)
			result.AllocsPerUpdate, result.BytesPerUpdate = allocs, bytes
			result.Events.Became = sink.Became
			result.Events.Ceased = sink.Ceased
			result.Events.NetOutputDense = se.OutputDenseCount()
			result.Events.Deduped = stats.DedupedEvents
			for _, load := range stats.Loads {
				result.PerShardBusyNs = append(result.PerShardBusyNs, load.Busy.Nanoseconds())
			}
			if tracker != nil {
				result.DocPipeline = newDocPipelineResult(*docStories, *docStorySize, agg.Config(), agg.Stats(), tracker)
				result.Workload.NegativeFraction, result.Workload.MeanDelta = 0, 0
			}
			return result.writeJSON(*jsonOut)
		}
		return nil
	}

	eng, err := core.New(engCfg)
	if err != nil {
		return err
	}
	engSink := core.EventSink(sink)
	if tracker != nil {
		engSink = core.MultiSink{sink, tracker}
	}
	mem := takeMemSnapshot()
	st, err := stream.NewReplay(src, eng, engSink).Run(*batch)
	if err != nil {
		return err
	}
	allocs, bytes := mem.perUpdate(st.Updates)
	header(eng.Config(), "")
	fmt.Println(st)
	fmt.Printf("sink:   became=%d ceased=%d (net output-dense=%d)\n",
		sink.Became, sink.Ceased, eng.OutputDenseCount())
	if tracker != nil {
		tracker.Close(uint64(st.Updates))
		printDocBenchSummary(agg, tracker)
	}
	fmt.Println(engineSummary(eng))
	if *jsonOut != "" {
		result.fillCommon(synthCfg, eng.Config(), 0, *batch)
		result.fillThroughput(st.Updates, st.Elapsed)
		result.fillEngineStats(eng.Stats())
		result.AllocsPerUpdate, result.BytesPerUpdate = allocs, bytes
		result.Events.Became = sink.Became
		result.Events.Ceased = sink.Ceased
		result.Events.NetOutputDense = eng.OutputDenseCount()
		if tracker != nil {
			result.DocPipeline = newDocPipelineResult(*docStories, *docStorySize, agg.Config(), agg.Stats(), tracker)
			result.Workload.NegativeFraction, result.Workload.MeanDelta = 0, 0
		}
		return result.writeJSON(*jsonOut)
	}
	return nil
}

// printDocBenchSummary prints the -docs mode aggregation and story counters.
func printDocBenchSummary(agg *stream.Aggregator, tracker *story.Tracker) {
	fmt.Println(agg.Stats())
	st := tracker.Stats()
	fmt.Printf("story:  born=%d split=%d updated=%d merged=%d died=%d | live=%d fading=%d\n",
		st.Born, st.Split, st.Updated, st.Merged, st.Died, st.Live, st.Fading)
}
