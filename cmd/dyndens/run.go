package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"dyndens/internal/core"
	"dyndens/internal/persist"
	"dyndens/internal/shard"
	"dyndens/internal/stream"
	"dyndens/internal/vset"
)

// cmdRun replays a recorded update stream (file or stdin) through the engine
// — single-threaded by default, sharded across K workers with -shards K —
// streaming the output-dense changes that pass the configured filter to
// stdout, and prints the throughput and engine summary at the end. With
// -batch the stream is replayed in coalesced batches (Engine.ProcessBatch):
// "%%" marker lines in the input delimit the batches (a file without markers
// is one batch), each batch is one logical tick, and the reported events are
// the net transitions per batch.
func cmdRun(args []string) error {
	fs := flag.NewFlagSet("dyndens run", flag.ExitOnError)
	input := fs.String("input", "-", "update stream path (- for stdin), edge-list `a b delta` lines")
	batch := fs.Int("read-batch", 256, "micro-batch size for the replay driver (with -batch: also the maximum coalesced batch size)")
	batchMode := fs.Bool("batch", false, "coalesce batches through Engine.ProcessBatch (batches delimited by `%%` lines, split at -read-batch; net events per batch)")
	shards := fs.Int("shards", 0, "partition the engine across K workers (0 = single-threaded)")
	newOverlap := overlapFlag(fs)
	newAggWorkers := aggWorkersFlag(fs)
	quiet := fs.Bool("quiet", false, "suppress per-event output, print only the summary")
	minCard := fs.Int("min-card", 0, "only report subgraphs with at least this many vertices")
	watch := fs.String("watch", "", "comma-separated vertex watchlist; only report subgraphs containing one")
	newEngineCfg := engineFlags(fs, 3, 5)
	newWAL := walFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rejectPositionalArgs(fs, "dyndens run"); err != nil {
		return err
	}

	engCfg, err := newEngineCfg()
	if err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("run: -shards must be ≥ 0, got %d", *shards)
	}
	// Validate even for the single-threaded path, where the value is unused —
	// a typo'd -overlap should fail loudly regardless of -shards.
	if _, err := newOverlap(); err != nil {
		return err
	}
	aggWorkers, err := newAggWorkers()
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	walOpts, err := newWAL()
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if walOpts.enabled() && aggWorkers > 0 {
		return fmt.Errorf("run: -wal is incompatible with -agg-workers (the WAL logs units on the replay goroutine; a pipelined producer would race it)")
	}
	watchSet, err := parseWatchlist(*watch)
	if err != nil {
		return err
	}

	var src stream.UpdateSource
	var fileSrc *stream.FileSource
	if *input == "-" {
		fileSrc = stream.NewReaderSource("stdin", os.Stdin)
	} else {
		f, err := stream.OpenFile(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		fileSrc = f
	}
	if *batchMode || aggWorkers > 0 || walOpts.enabled() {
		// Memory guard for coalesced replay: a marker-less stream is one
		// whole-stream batch, so cap batches at the read size — runs longer
		// than -read-batch split into their own ticks. SetMaxBatch treats
		// n ≤ 0 as "no cap", which would silently disable the guard; reject
		// it here like the sequential driver does. The pipelined front-end
		// needs the same cap: its handoff unit is the source batch, and an
		// unbounded batch would buffer the whole stream in one queue entry.
		// The WAL needs it too: its frame unit is the source batch, and the
		// cap makes the framing a deterministic function of -read-batch.
		if *batch <= 0 {
			return fmt.Errorf("run: -read-batch must be positive, got %d", *batch)
		}
		fileSrc.SetMaxBatch(*batch)
	}
	src = fileSrc
	if aggWorkers > 0 {
		// Edge streams have no expansion stage, so N > 0 just moves reading
		// and parsing onto a producer goroutine that runs ahead of the engine
		// behind a bounded handoff queue; the batch sequence is unchanged.
		pipe := stream.NewPipelinedBatchSource(fileSrc, *batch, stream.PipelineConfig{})
		defer pipe.Close()
		src = pipe
	}

	// Durability: log every source batch to the WAL and recover past state at
	// open. The fingerprint binds the directory to everything that shapes the
	// persisted state or the batch framing — input identity, framing knobs,
	// shard layout, delivery policy, and the engine configuration.
	var pst *persist.Store
	var restored *persist.PipelineState
	if walOpts.enabled() {
		overlap, err := newOverlap()
		if err != nil {
			return err
		}
		fp := fmt.Sprintf("run:v1:input=%s,read-batch=%d,batch=%v,shards=%d,overlap=%s,%s",
			*input, *batch, *batchMode, *shards, overlap, engineFingerprint(engCfg))
		if pst, err = openWAL(walOpts, fp, *input == "-"); err != nil {
			return err
		}
		restored = pst.Restored()
		src = pst.Batches(fileSrc).(stream.UpdateSource)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// Sink chain: filter → counter (+ printer unless -quiet).
	counter := &core.CountingSink{}
	inner := core.EventSink(counter)
	if !*quiet {
		printer := core.EventSinkFunc(func(ev core.Event) {
			fmt.Printf("%-20s %v score=%.4g dens=%.4g\n", ev.Kind, ev.Set, ev.Score, ev.Density)
		})
		inner = core.MultiSink{counter, printer}
	}
	filter := &core.FilterSink{Next: inner, MinCardinality: *minCard, Watch: watchSet}

	// runHook is the per-batch boundary hook: stop cleanly on a signal
	// (cutting a final checkpoint first when persisting), cut a periodic
	// background snapshot otherwise. Edge streams have no aggregator, so
	// every batch boundary is a consistent snapshot point.
	runHook := func(capture func() (*persist.PipelineState, error)) func() error {
		return func() error {
			if ctx.Err() != nil {
				if pst != nil {
					if err := pst.Checkpoint(capture); err != nil {
						return err
					}
				}
				return stream.ErrStopped
			}
			if pst != nil {
				return pst.MaybeSnapshot(capture)
			}
			return nil
		}
	}
	finishWAL := func(interrupted bool, capture func() (*persist.PipelineState, error)) error {
		if err := checkpointWAL(pst, interrupted, capture); err != nil {
			return err
		}
		return closeWALStore(pst, walOpts, interrupted)
	}
	baseTicks := uint64(0)
	if pst != nil {
		baseTicks = pst.BaseTicks()
	}

	if *shards > 0 {
		overlap, err := newOverlap()
		if err != nil {
			return err
		}
		se, err := persist.RestoreSharded(shard.Config{Shards: *shards, Engine: engCfg, Overlap: overlap}, restored)
		if err != nil {
			return err
		}
		defer se.Close()
		r := stream.NewShardReplay(src, se, filter)
		capture := func() (*persist.PipelineState, error) {
			ps, err := persist.CaptureSharded(se, nil, nil)
			if err != nil {
				return nil, err
			}
			ps.Ticks = baseTicks + uint64(r.Stats().Ticks)
			return ps, nil
		}
		r.SetBoundaryHook(runHook(capture))
		var st stream.ShardReplayStats
		if *batchMode || pst != nil {
			// The WAL frame unit is the source batch, so persisted runs go
			// through the batch driver even when not coalescing — snapshots
			// then land exactly on frame boundaries.
			st, err = r.RunBatches(*batch, *batchMode)
		} else {
			st, err = r.Run(*batch)
		}
		interrupted := errors.Is(err, stream.ErrStopped)
		if err != nil && !interrupted {
			return err
		}
		fmt.Println(st)
		fmt.Printf("sink:   reported=%d (became=%d ceased=%d) filtered-out=%d net-output-dense=%d\n",
			filter.Passed, counter.Became, counter.Ceased, filter.Dropped, se.OutputDenseCount())
		fmt.Println(shardedSummary(se.Stats()))
		return finishWAL(interrupted, capture)
	}

	eng, err := persist.RestoreEngine(engCfg, restored)
	if err != nil {
		return err
	}
	r := stream.NewReplay(src, eng, filter)
	capture := func() (*persist.PipelineState, error) {
		ps, err := persist.CaptureSingle(eng, nil, nil)
		if err != nil {
			return nil, err
		}
		ps.Ticks = baseTicks + uint64(r.Stats().Ticks)
		return ps, nil
	}
	r.SetBoundaryHook(runHook(capture))
	var st stream.ReplayStats
	if *batchMode || pst != nil {
		// See the sharded path: persisted runs use the batch driver so
		// snapshots land on WAL frame boundaries.
		st, err = r.RunBatches(*batch, *batchMode)
	} else {
		st, err = r.Run(*batch)
	}
	interrupted := errors.Is(err, stream.ErrStopped)
	if err != nil && !interrupted {
		return err
	}
	fmt.Println(st)
	fmt.Printf("sink:   reported=%d (became=%d ceased=%d) filtered-out=%d\n",
		filter.Passed, counter.Became, counter.Ceased, filter.Dropped)
	fmt.Println(engineSummary(eng))
	return finishWAL(interrupted, capture)
}

func parseWatchlist(s string) (vset.Set, error) {
	if s == "" {
		return nil, nil
	}
	var vs []vset.Vertex
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.ParseInt(tok, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("run: bad watchlist vertex %q: %w", tok, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("run: watchlist vertex %q is negative; vertices are non-negative", tok)
		}
		vs = append(vs, vset.Vertex(v))
	}
	return vset.New(vs...), nil
}
