package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServeCommandSmoke boots the full serve pipeline on an ephemeral port,
// queries every read endpoint while the server is live, and shuts it down
// through the test hook. The ingest is tiny, so by the time the listener
// address is delivered the table is (or is about to be) final; snapshot
// consistency under a concurrently-writing ingest is pinned much harder by
// internal/serve's race test.
func TestServeCommandSmoke(t *testing.T) {
	for _, shards := range []string{"0", "2"} {
		t.Run("shards="+shards, func(t *testing.T) {
			addrCh := make(chan net.Addr, 1)
			serveListenerReady = func(a net.Addr) { addrCh <- a }
			serveShutdown = make(chan struct{})
			defer func() { serveListenerReady, serveShutdown = nil, nil }()

			done := make(chan error, 1)
			var out string
			go func() {
				var err error
				out = captureStdout(t, func() error {
					err = cmdServe([]string{"-addr", "127.0.0.1:0", "-docs", "120", "-quiet", "-shards", shards})
					return nil
				})
				done <- err
			}()

			var addr net.Addr
			select {
			case addr = <-addrCh:
			case <-time.After(10 * time.Second):
				t.Fatal("server never bound a listener")
			}
			base := "http://" + addr.String()

			// The writer runs concurrently; wait until it reports completion
			// so the endpoint assertions see the final table.
			deadline := time.Now().Add(10 * time.Second)
			for {
				var stats struct {
					Stories int `json:"stories"`
					Writer  struct {
						Complete bool `json:"complete"`
						Updates  int  `json:"updates"`
					} `json:"writer"`
				}
				httpGetJSON(t, base+"/stats", &stats)
				if stats.Writer.Complete {
					if stats.Writer.Updates == 0 {
						t.Error("writer reported 0 updates ingested")
					}
					if stats.Stories == 0 {
						t.Error("no stories in the served table")
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("ingestion never completed")
				}
				time.Sleep(5 * time.Millisecond)
			}

			var top struct {
				Ranked  int `json:"ranked"`
				Stories []struct {
					ID      int     `json:"id"`
					Density float64 `json:"density"`
				} `json:"stories"`
			}
			httpGetJSON(t, base+"/stories/top?k=3", &top)
			if len(top.Stories) == 0 {
				t.Fatal("top-k returned no stories")
			}
			for i := 1; i < len(top.Stories); i++ {
				if top.Stories[i].Density > top.Stories[i-1].Density {
					t.Fatalf("top-k unordered: %+v", top.Stories)
				}
			}

			var one struct {
				Story struct {
					ID       int     `json:"id"`
					Entities []int32 `json:"entities"`
				} `json:"story"`
			}
			httpGetJSON(t, fmt.Sprintf("%s/stories/%d", base, top.Stories[0].ID), &one)
			if one.Story.ID != top.Stories[0].ID || len(one.Story.Entities) == 0 {
				t.Fatalf("story detail: %+v", one.Story)
			}
			var ent struct {
				Stories []struct {
					ID int `json:"id"`
				} `json:"stories"`
			}
			httpGetJSON(t, fmt.Sprintf("%s/entities/%d", base, one.Story.Entities[0]), &ent)
			found := false
			for _, s := range ent.Stories {
				found = found || s.ID == one.Story.ID
			}
			if !found {
				t.Fatalf("entity %d postings %v missing story %d", one.Story.Entities[0], ent, one.Story.ID)
			}

			resp, err := http.Get(base + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("/healthz: %d", resp.StatusCode)
			}

			close(serveShutdown)
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("cmdServe: %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("cmdServe did not shut down")
			}
			if !strings.Contains(out, "serving on http://") {
				t.Errorf("missing listener banner in output:\n%s", out)
			}
			if !strings.Contains(out, "stories: born=") {
				t.Errorf("missing final story summary in output:\n%s", out)
			}
		})
	}
}

func httpGetJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestBenchServeBlock pins the -serve-readers integration: the JSON output
// gains a serve block with live read counters, in both the single-threaded
// and sharded drivers, for both -docs and raw workloads.
func TestBenchServeBlock(t *testing.T) {
	for _, args := range [][]string{
		{"-docs", "-vertices", "30", "-updates", "150", "-T", "6.5", "-nmax", "4"},
		{"-vertices", "40", "-updates", "300"},
		{"-vertices", "40", "-updates", "300", "-shards", "2"},
	} {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bench.json")
			out := captureStdout(t, func() error {
				return cmdBench(append(args, "-serve-readers", "2", "-serve-k", "3", "-json", path))
			})
			if !strings.Contains(out, "serve:  readers=2 k=3") {
				t.Errorf("missing serve summary line in output:\n%s", out)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var got struct {
				Serve *struct {
					Readers int     `json:"readers"`
					TopK    int     `json:"top_k"`
					Reads   uint64  `json:"reads"`
					ReadQPS float64 `json:"read_qps"`
					P50Ns   int64   `json:"p50_ns"`
					P99Ns   int64   `json:"p99_ns"`
					Epochs  uint64  `json:"epochs_published"`
				} `json:"serve"`
			}
			if err := json.Unmarshal(raw, &got); err != nil {
				t.Fatal(err)
			}
			if got.Serve == nil {
				t.Fatal("no serve block in bench JSON")
			}
			s := got.Serve
			if s.Readers != 2 || s.TopK != 3 {
				t.Errorf("serve config not echoed: %+v", s)
			}
			if s.Reads == 0 || s.ReadQPS <= 0 {
				t.Errorf("serve readers did no work: %+v", s)
			}
			if s.P50Ns <= 0 || s.P50Ns > s.P99Ns {
				t.Errorf("serve percentiles implausible: %+v", s)
			}
			if s.Epochs == 0 {
				t.Errorf("view never published an epoch: %+v", s)
			}
		})
	}
	if err := cmdBench([]string{"-serve-readers", "1", "-scale", "0,2"}); err == nil ||
		!strings.Contains(err.Error(), "-scale is incompatible") {
		t.Fatalf("want -scale incompatibility error, got %v", err)
	}
}
