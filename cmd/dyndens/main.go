// Command dyndens is the streaming driver for the DynDens engine: it wires an
// update source (recorded file, stdin, or the synthetic generator) through
// the incremental dense-subgraph engine into an event sink, exposing the
// paper's algorithm as a runnable pipeline.
//
// Subcommands:
//
//	gen      generate a seeded synthetic update stream as an edge-list file
//	run      replay an update stream from a file or stdin, printing events
//	bench    replay a synthetic stream end-to-end and print a perf summary
//	stories  the document pipeline: generate document streams (gen-docs) and
//	         run documents → co-occurrence updates → engine → story tracker,
//	         printing the story lifecycle log and the final story table (run)
//	serve    ingest a document stream while serving the live story table over
//	         HTTP: snapshot reads, ranked top-k, per-entity lookup, and an
//	         SSE lifecycle stream, all concurrent with the writer
//
// Run `dyndens <subcommand> -h` for the flags of each subcommand.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dyndens/internal/core"
	"dyndens/internal/density"
	"dyndens/internal/shard"
	"dyndens/internal/stream"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "stories":
		err = cmdStories(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dyndens: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dyndens:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: dyndens <subcommand> [flags]

subcommands:
  gen      generate a seeded synthetic update stream (edge-list format)
  run      replay an update stream from a file or stdin, printing events
  bench    replay a synthetic stream end-to-end and print a perf summary
  stories  document pipeline: gen-docs / run (documents in, stories out)
  serve    ingest a document stream while serving the live story table,
           ranked top-k queries and a lifecycle event stream over HTTP
`)
}

// engineFlags registers the engine configuration flags shared by run, bench
// and stories and returns a constructor that builds the configuration after
// parsing. defT and defNmax are the per-subcommand defaults (the story
// pipeline wants a threshold matched to document co-occurrence weights, the
// raw update commands the historical T=3/Nmax=5). The configuration feeds
// either a single core.Engine or the per-worker engines of a sharded
// deployment (-shards).
func engineFlags(fs *flag.FlagSet, defT float64, defNmax int) func() (core.Config, error) {
	t := fs.Float64("T", defT, "output-density threshold T")
	nmax := fs.Int("nmax", defNmax, "maximum subgraph cardinality Nmax")
	deltaItFrac := fs.Float64("deltait-frac", 0.01, "δ_it as a fraction of its maximum valid value")
	measure := fs.String("measure", "avgweight", "density measure: avgweight, avgdegree, or sqrt")
	maxExplore := fs.Bool("maxexplore", true, "enable the MaxExplore heuristic (Section 7.1)")
	degreePrioritize := fs.Bool("degree-prioritize", false, "enable the DegreePrioritize heuristic (Section 7.2)")
	return func() (core.Config, error) {
		m, err := measureByName(*measure)
		if err != nil {
			return core.Config{}, err
		}
		// Config.withDefaults silently falls back to 0.01 for out-of-range
		// fractions; an explicitly set flag should fail loudly instead.
		if *deltaItFrac <= 0 || *deltaItFrac >= 1 {
			return core.Config{}, fmt.Errorf("-deltait-frac must be in (0, 1), got %g", *deltaItFrac)
		}
		return core.Config{
			Measure:                m,
			T:                      *t,
			Nmax:                   *nmax,
			DeltaItFraction:        *deltaItFrac,
			EnableMaxExplore:       *maxExplore,
			EnableDegreePrioritize: *degreePrioritize,
		}, nil
	}
}

// overlapFlag registers the sharded delivery-policy flag shared by run, bench
// and stories and returns a constructor that parses it. It only matters with
// -shards > 0: scoped (the default) delivers each update for full processing
// only to interested workers, mirror broadcasts to all of them; both produce
// identical output.
func overlapFlag(fs *flag.FlagSet) func() (shard.Overlap, error) {
	overlap := fs.String("overlap", "scoped", "sharded delivery policy: scoped (interest-tracked) or mirror (full broadcast)")
	return func() (shard.Overlap, error) {
		return shard.ParseOverlap(*overlap)
	}
}

// synthFlags registers the synthetic-generator flags shared by gen and bench
// and returns a constructor that builds the configuration after parsing.
func synthFlags(fs *flag.FlagSet) func() (stream.SynthConfig, error) {
	vertices := fs.Int("vertices", 500, "vertex universe size")
	updates := fs.Int("updates", 10000, "number of updates to generate")
	seed := fs.Int64("seed", 1, "generator seed")
	skew := fs.Float64("skew", 0, "Zipf exponent for endpoint popularity (≤ 1 = uniform)")
	neg := fs.Float64("neg", 0.1, "fraction of negative (decay) updates")
	mean := fs.Float64("mean", 1, "mean update magnitude")
	return func() (stream.SynthConfig, error) {
		if *updates <= 0 {
			return stream.SynthConfig{}, fmt.Errorf("-updates must be positive, got %d", *updates)
		}
		return stream.SynthConfig{
			Vertices:         *vertices,
			Updates:          *updates,
			Seed:             *seed,
			Skew:             *skew,
			NegativeFraction: *neg,
			MeanDelta:        *mean,
		}, nil
	}
}

// rejectPositionalArgs fails when anything is left after flag parsing. The
// subcommands take no positional arguments, and Go's flag package stops at
// the first non-flag token — without this check a stray value (for example a
// pre-PR-5 `-batch 512`, when -batch was the micro-batch size rather than
// the coalescing switch) would silently discard every argument after it and
// run a completely different configuration.
func rejectPositionalArgs(fs *flag.FlagSet, cmd string) error {
	if fs.NArg() > 0 {
		return fmt.Errorf("%s: unexpected argument %q (flags must precede it; note -batch is a boolean switch, the micro-batch size is -read-batch)", cmd, fs.Arg(0))
	}
	return nil
}

func measureByName(name string) (density.Measure, error) {
	switch name {
	case "avgweight":
		return density.AvgWeight, nil
	case "avgdegree":
		return density.AvgDegree, nil
	case "sqrt":
		return density.SqrtDens, nil
	default:
		return nil, fmt.Errorf("unknown measure %q (want avgweight, avgdegree, or sqrt)", name)
	}
}

// createOutput opens the destination for a generated stream: stdout for "-",
// a plain file otherwise, gzip-compressed when the path ends in ".gz" (the
// sources sniff the magic number, so compressed streams read back with no
// flag). close must be called on success; it reports flush/close errors that
// would otherwise silently truncate the file.
func createOutput(path string) (w io.Writer, close func() error, err error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, f.Close, nil
	}
	zw := gzip.NewWriter(f)
	return zw, func() error {
		if err := zw.Close(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

// engineSummary formats the engine-side work counters for the end-of-run
// report.
func engineSummary(eng *core.Engine) string {
	return statsSummary(eng.Stats())
}

func statsSummary(s core.Stats) string {
	return fmt.Sprintf(
		"engine: updates=%d (+%d/-%d) events=%d dense=%d stars=%d index-nodes=%d (max %d)\n"+
			"work:   explorations=%d cheap-explores=%d insertions=%d evictions=%d maxexplore-skips=%d",
		s.Updates, s.PositiveUpdates, s.NegativeUpdates, s.Events,
		s.IndexedDense, s.IndexedStars, s.IndexNodes, s.MaxIndexNodes,
		s.Explorations, s.CheapExplores, s.Insertions, s.Evictions, s.MaxExploreSkips)
}

// shardedSummary formats the aggregate + per-shard work counters of a sharded
// deployment. The aggregate sums the per-worker engines: under mirror
// delivery updates count every (update, shard) application, under scoped
// delivery each worker counts only the updates delivered to it (the rest
// appear in its load's applied column).
func shardedSummary(st shard.Stats) string {
	var b strings.Builder
	b.WriteString(statsSummary(st.Aggregate))
	fmt.Fprintf(&b, "\nmerge:  overlap=%s merged-events=%d deduped=%d mean-delivery=%.2f",
		st.Overlap, st.MergedEvents, st.DedupedEvents, st.MeanDeliveryFraction())
	for i, ps := range st.PerShard {
		l := st.Loads[i]
		fmt.Fprintf(&b, "\nshard %d: delivered=%d applied=%d (fraction=%.2f) events=%d dense=%d explorations=%d insertions=%d evictions=%d",
			i, l.Delivered, l.Applied, l.DeliveryFraction(), ps.Events, ps.IndexedDense, ps.Explorations, ps.Insertions, ps.Evictions)
	}
	return b.String()
}
