package main

import (
	"flag"
	"fmt"
	"os"

	"dyndens/internal/stream"
)

// cmdGen generates a seeded synthetic update stream in the edge-list format
// `a b delta` that `dyndens run` (and stream.FileSource) reads back. An -out
// path ending in .gz is written gzip-compressed; the readers decompress
// transparently.
func cmdGen(args []string) error {
	fs := flag.NewFlagSet("dyndens gen", flag.ExitOnError)
	newSynth := synthFlags(fs)
	out := fs.String("out", "-", "output path (- for stdout, .gz compresses)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rejectPositionalArgs(fs, "dyndens gen"); err != nil {
		return err
	}
	cfg, err := newSynth()
	if err != nil {
		return fmt.Errorf("gen: %w", err)
	}

	src, err := stream.NewSynthetic(cfg)
	if err != nil {
		return err
	}
	all, err := stream.Drain(src)
	if err != nil {
		return err
	}

	w, closeOut, err := createOutput(*out)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# dyndens gen -vertices %d -updates %d -seed %d -skew %g -neg %g -mean %g\n",
		cfg.Vertices, cfg.Updates, cfg.Seed, cfg.Skew, cfg.NegativeFraction, cfg.MeanDelta); err != nil {
		closeOut()
		return err
	}
	n, err := stream.WriteUpdates(w, all)
	if err != nil {
		closeOut()
		return err
	}
	// A failed close can lose buffered or compressed trailing bytes; report
	// it rather than claim success over a truncated file.
	if err := closeOut(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d updates to %s\n", n, *out)
	return nil
}
