package main

import (
	"flag"
	"fmt"
	"os"

	"dyndens/internal/stream"
)

// cmdGen generates a seeded synthetic update stream in the edge-list format
// `a b delta` that `dyndens run` (and stream.FileSource) reads back.
func cmdGen(args []string) error {
	fs := flag.NewFlagSet("dyndens gen", flag.ExitOnError)
	newSynth := synthFlags(fs)
	out := fs.String("out", "-", "output path (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := newSynth()
	if err != nil {
		return fmt.Errorf("gen: %w", err)
	}

	src, err := stream.NewSynthetic(cfg)
	if err != nil {
		return err
	}
	all, err := stream.Drain(src)
	if err != nil {
		return err
	}

	w := os.Stdout
	var f *os.File
	if *out != "-" {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close() // cleanup on error paths; success path closes explicitly
		w = f
	}
	if _, err := fmt.Fprintf(w, "# dyndens gen -vertices %d -updates %d -seed %d -skew %g -neg %g -mean %g\n",
		cfg.Vertices, cfg.Updates, cfg.Seed, cfg.Skew, cfg.NegativeFraction, cfg.MeanDelta); err != nil {
		return err
	}
	n, err := stream.WriteUpdates(w, all)
	if err != nil {
		return err
	}
	// A failed Close can lose buffered writes; report it rather than claim
	// success over a truncated file.
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d updates to %s\n", n, *out)
	return nil
}
