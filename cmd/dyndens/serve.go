package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"dyndens/internal/core"
	"dyndens/internal/serve"
	"dyndens/internal/shard"
	"dyndens/internal/story"
	"dyndens/internal/stream"
)

// serveTestHooks lets the CLI tests observe the bound address and trigger a
// shutdown without signals. Both are nil outside tests.
var (
	serveListenerReady func(addr net.Addr)
	serveShutdown      chan struct{}
)

// cmdServe is the long-lived story service: it ingests a document stream
// (file, stdin, or the synthetic generator) through the aggregation → engine
// → story-tracking pipeline while serving the current story table over HTTP
// the whole time. The writer publishes an immutable snapshot of the table at
// every update boundary that changes it, so concurrent readers always see an
// internally consistent state and never block ingestion.
//
// Endpoints: /healthz, /stats, /stories/top?k=, /stories/{id},
// /entities/{e}, and /events (SSE lifecycle stream). By default the server
// keeps serving the final table after the input is exhausted; -exit-after-ingest
// shuts down once ingestion (plus -linger) completes, for scripted runs.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("dyndens serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address (host:port; port 0 picks a free one)")
	input := fs.String("input", "", "document stream path (- for stdin); empty = generate with -synth flags")
	batch := fs.Int("read-batch", 256, "micro-batch size for the replay driver (unused with -batch: the aggregator's own epoch/document batches are never split)")
	batchMode := fs.Bool("batch", false, "epoch coalescing: ship each decay burst and each document's deltas whole as one Engine.ProcessBatch (story grace then counts batch ticks)")
	shards := fs.Int("shards", 0, "partition the engine across K workers (0 = single-threaded)")
	newOverlap := overlapFlag(fs)
	newAggWorkers := aggWorkersFlag(fs)
	quiet := fs.Bool("quiet", false, "suppress the streaming lifecycle log on stdout")
	exitAfter := fs.Bool("exit-after-ingest", false, "shut down once the input is exhausted instead of serving the final table indefinitely")
	linger := fs.Duration("linger", 0, "with -exit-after-ingest: keep serving this long after ingestion completes")
	newSynthCfg := docSynthFlags(fs)
	newAggCfg := aggregatorFlags(fs)
	newTrkCfg := trackerFlags(fs)
	newEngineCfg := engineFlags(fs, 6.5, 4)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rejectPositionalArgs(fs, "dyndens serve"); err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("serve: -shards must be ≥ 0, got %d", *shards)
	}
	if _, err := newOverlap(); err != nil {
		return err
	}
	aggWorkers, err := newAggWorkers()
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	engCfg, err := newEngineCfg()
	if err != nil {
		return err
	}
	aggCfg, err := newAggCfg()
	if err != nil {
		return err
	}
	trkCfg, err := newTrkCfg()
	if err != nil {
		return err
	}

	var docs stream.DocumentSource
	switch {
	case *input == "":
		cfg, err := newSynthCfg()
		if err != nil {
			return err
		}
		gen, err := stream.NewDocSynthetic(cfg)
		if err != nil {
			return err
		}
		docs = gen
	case *input == "-":
		docs = stream.NewDocReaderSource("stdin", os.Stdin)
	default:
		f, err := stream.OpenDocFile(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		docs = f
	}

	front, closeFront, err := newDocFrontEnd(docs, aggCfg, aggWorkers)
	if err != nil {
		return err
	}
	defer closeFront()
	tracker, err := story.NewTracker(trkCfg)
	if err != nil {
		return err
	}
	bld := serve.NewBuilder(tracker)
	hub := serve.NewHub()
	if *quiet {
		bld.SetRecordSink(hub.Publish)
	} else {
		bld.SetRecordSink(func(r story.Record) {
			fmt.Println(r)
			hub.Publish(r)
		})
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving on http://%s\n", ln.Addr())
	if serveListenerReady != nil {
		serveListenerReady(ln.Addr())
	}

	// ingestState feeds the /stats "writer" block; the final summary is
	// attached once ingestion completes.
	type ingestSummary struct {
		Complete         bool    `json:"complete"`
		Updates          int     `json:"updates,omitempty"`
		Ticks            int     `json:"ticks,omitempty"`
		UpdatesPerSecond float64 `json:"updates_per_second,omitempty"`
	}
	var ingestState atomic.Pointer[ingestSummary]
	ingestState.Store(&ingestSummary{})

	srv := serve.NewServer(bld.View(), hub)
	srv.Extra = func() any { return ingestState.Load() }
	httpSrv := &http.Server{Handler: srv.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.Serve(ln) }()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// The writer goroutine owns the whole ingestion pipeline; the builder
	// publishes snapshots at update boundaries, so the HTTP readers and the
	// SSE hub observe the stream live.
	ingestDone := make(chan error, 1)
	go func() {
		var summarize func()
		var err error
		if *shards > 0 {
			overlap, oerr := newOverlap()
			if oerr != nil {
				ingestDone <- oerr
				return
			}
			se, serr := shard.New(shard.Config{Shards: *shards, Engine: engCfg, Overlap: overlap})
			if serr != nil {
				ingestDone <- serr
				return
			}
			defer se.Close()
			se.SetSeqSink(bld)
			r := stream.NewShardReplay(front, se, nil)
			var st stream.ShardReplayStats
			switch {
			case *batchMode:
				st, err = r.RunBatches(*batch, true)
			case aggCfg.DecayMode == stream.DecayRescale:
				// Rescaled decay is batch-structured (threshold epoch units),
				// so the non-coalescing replay still runs through the batch
				// driver; see cmdStoriesRun.
				st, err = r.RunBatches(*batch, false)
			default:
				st, err = r.Run(*batch)
			}
			if err == nil {
				bld.Close(uint64(st.Ticks))
				ingestState.Store(&ingestSummary{Complete: true, Updates: st.Updates, Ticks: st.Ticks, UpdatesPerSecond: st.UpdatesPerSecond()})
				summarize = func() {
					fmt.Println(st)
					fmt.Println(front.Stats())
					printStoryTable(tracker)
					fmt.Println(shardedSummary(se.Stats()))
				}
			}
		} else {
			eng, cerr := core.New(engCfg)
			if cerr != nil {
				ingestDone <- cerr
				return
			}
			r := stream.NewReplay(front, eng, bld)
			var st stream.ReplayStats
			switch {
			case *batchMode:
				st, err = r.RunBatches(*batch, true)
			case aggCfg.DecayMode == stream.DecayRescale:
				st, err = r.RunBatches(*batch, false)
			default:
				st, err = r.Run(*batch)
			}
			if err == nil {
				bld.Close(uint64(st.Ticks))
				ingestState.Store(&ingestSummary{Complete: true, Updates: st.Updates, Ticks: st.Ticks, UpdatesPerSecond: st.UpdatesPerSecond()})
				summarize = func() {
					fmt.Println(st)
					fmt.Println(front.Stats())
					printStoryTable(tracker)
					fmt.Println(engineSummary(eng))
				}
			}
		}
		if err != nil {
			ingestDone <- err
			return
		}
		if summarize != nil {
			summarize()
		}
		ingestDone <- nil
	}()

	shutdown := func() error {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(sctx)
	}

	var ingestErr error
	select {
	case <-ctx.Done():
		// Interrupted mid-ingest: stop serving; the writer goroutine is
		// abandoned with the process.
		return shutdown()
	case <-serveShutdown:
		return shutdown()
	case ingestErr = <-ingestDone:
		if ingestErr != nil {
			shutdown()
			return ingestErr
		}
	}

	if *exitAfter {
		if *linger > 0 {
			select {
			case <-time.After(*linger):
			case <-ctx.Done():
			}
		}
		return shutdown()
	}
	fmt.Println("ingestion complete; serving the final table (interrupt to stop)")
	select {
	case <-ctx.Done():
	case <-serveShutdown:
	case err := <-httpDone:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	return shutdown()
}
