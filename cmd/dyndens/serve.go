package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"dyndens/internal/core"
	"dyndens/internal/persist"
	"dyndens/internal/serve"
	"dyndens/internal/shard"
	"dyndens/internal/story"
	"dyndens/internal/stream"
)

// serveTestHooks lets the CLI tests observe the bound address and trigger a
// shutdown without signals. Both are nil outside tests.
var (
	serveListenerReady func(addr net.Addr)
	serveShutdown      chan struct{}
)

// cmdServe is the long-lived story service: it ingests a document stream
// (file, stdin, or the synthetic generator) through the aggregation → engine
// → story-tracking pipeline while serving the current story table over HTTP
// the whole time. The writer publishes an immutable snapshot of the table at
// every update boundary that changes it, so concurrent readers always see an
// internally consistent state and never block ingestion.
//
// Endpoints: /healthz, /stats, /stories/top?k=, /stories/{id},
// /entities/{e}, and /events (SSE lifecycle stream). By default the server
// keeps serving the final table after the input is exhausted; -exit-after-ingest
// shuts down once ingestion (plus -linger) completes, for scripted runs.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("dyndens serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address (host:port; port 0 picks a free one)")
	input := fs.String("input", "", "document stream path (- for stdin); empty = generate with -synth flags")
	batch := fs.Int("read-batch", 256, "micro-batch size for the replay driver (unused with -batch: the aggregator's own epoch/document batches are never split)")
	batchMode := fs.Bool("batch", false, "epoch coalescing: ship each decay burst and each document's deltas whole as one Engine.ProcessBatch (story grace then counts batch ticks)")
	shards := fs.Int("shards", 0, "partition the engine across K workers (0 = single-threaded)")
	newOverlap := overlapFlag(fs)
	newAggWorkers := aggWorkersFlag(fs)
	quiet := fs.Bool("quiet", false, "suppress the streaming lifecycle log on stdout")
	exitAfter := fs.Bool("exit-after-ingest", false, "shut down once the input is exhausted instead of serving the final table indefinitely")
	linger := fs.Duration("linger", 0, "with -exit-after-ingest: keep serving this long after ingestion completes")
	newSynthCfg := docSynthFlags(fs)
	newAggCfg := aggregatorFlags(fs)
	newTrkCfg := trackerFlags(fs)
	newEngineCfg := engineFlags(fs, 6.5, 4)
	newWAL := walFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := rejectPositionalArgs(fs, "dyndens serve"); err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("serve: -shards must be ≥ 0, got %d", *shards)
	}
	if _, err := newOverlap(); err != nil {
		return err
	}
	aggWorkers, err := newAggWorkers()
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	walOpts, err := newWAL()
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if walOpts.enabled() && aggWorkers > 0 {
		return fmt.Errorf("serve: -wal is incompatible with -agg-workers (the WAL logs documents on the replay goroutine; a pipelined producer would race it)")
	}
	engCfg, err := newEngineCfg()
	if err != nil {
		return err
	}
	aggCfg, err := newAggCfg()
	if err != nil {
		return err
	}
	trkCfg, err := newTrkCfg()
	if err != nil {
		return err
	}

	var docs stream.DocumentSource
	inputID := *input // the fingerprint's input-identity component
	liveTail := false
	switch {
	case *input == "":
		cfg, err := newSynthCfg()
		if err != nil {
			return err
		}
		gen, err := stream.NewDocSynthetic(cfg)
		if err != nil {
			return err
		}
		docs = gen
		inputID = fmt.Sprintf("synth:%+v", gen.Config())
	case *input == "-":
		docs = stream.NewDocReaderSource("stdin", os.Stdin)
		liveTail = true // stdin continues at the crash point, it cannot re-read
	default:
		f, err := stream.OpenDocFile(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		docs = f
	}

	// Durability: identical to stories run — documents are the WAL unit, the
	// fingerprint binds everything shaping the derived stream, and recovery
	// resumes serving with story identities intact.
	var pst *persist.Store
	var restored *persist.PipelineState
	if walOpts.enabled() {
		overlap, err := newOverlap()
		if err != nil {
			return err
		}
		fp := fmt.Sprintf("serve:v1:input=%s,batch=%v,shards=%d,overlap=%s,%s,%s,%s",
			inputID, *batchMode, *shards, overlap,
			aggFingerprint(aggCfg), trackerFingerprint(trkCfg), engineFingerprint(engCfg))
		if pst, err = openWAL(walOpts, fp, liveTail); err != nil {
			return err
		}
		restored = pst.Restored()
		docs = pst.Docs(docs)
	}

	var front docFrontEnd
	var agg *stream.Aggregator
	closeFront := func() {}
	if pst != nil {
		// The persisted path pins the serial in-line aggregator; see
		// cmdStoriesRun.
		if agg, err = persist.RestoreAggregator(docs, aggCfg, restored); err != nil {
			return err
		}
		front = agg
	} else if front, closeFront, err = newDocFrontEnd(docs, aggCfg, aggWorkers); err != nil {
		return err
	}
	defer closeFront()
	tracker, err := persist.RestoreTracker(trkCfg, restored)
	if err != nil {
		return err
	}
	baseTicks := uint64(0)
	if pst != nil {
		baseTicks = pst.BaseTicks()
	}

	// The engines are built (and restored) up front: a recovered serving table
	// needs the restored engine's output densities before the first snapshot
	// publishes.
	var eng *core.Engine
	var se *shard.ShardedEngine
	if *shards > 0 {
		overlap, err := newOverlap()
		if err != nil {
			return err
		}
		if se, err = persist.RestoreSharded(shard.Config{Shards: *shards, Engine: engCfg, Overlap: overlap}, restored); err != nil {
			return err
		}
		defer se.Close()
	} else if eng, err = persist.RestoreEngine(engCfg, restored); err != nil {
		return err
	}

	var bld *serve.Builder
	if restored != nil && restored.Tracker != nil {
		densities := make(map[string]float64)
		var subs []core.Subgraph
		if se != nil {
			subs = se.OutputDense()
		} else {
			subs = eng.OutputDense()
		}
		for _, sg := range subs {
			densities[sg.Set.Key()] = sg.Density
		}
		bld = serve.NewBuilderFromState(tracker, *restored.Tracker, densities)
	} else {
		bld = serve.NewBuilder(tracker)
	}
	if se != nil {
		se.SetSeqSink(bld)
	}
	hub := serve.NewHub()
	if *quiet {
		bld.SetRecordSink(hub.Publish)
	} else {
		bld.SetRecordSink(func(r story.Record) {
			fmt.Println(r)
			hub.Publish(r)
		})
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving on http://%s\n", ln.Addr())
	if serveListenerReady != nil {
		serveListenerReady(ln.Addr())
	}

	// ingestState feeds the /stats "writer" block; the final summary is
	// attached once ingestion completes.
	type ingestSummary struct {
		Complete         bool    `json:"complete"`
		Updates          int     `json:"updates,omitempty"`
		Ticks            int     `json:"ticks,omitempty"`
		UpdatesPerSecond float64 `json:"updates_per_second,omitempty"`
	}
	var ingestState atomic.Pointer[ingestSummary]
	ingestState.Store(&ingestSummary{})

	srv := serve.NewServer(bld.View(), hub)
	srv.Extra = func() any { return ingestState.Load() }
	httpSrv := &http.Server{Handler: srv.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.Serve(ln) }()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// serveHook is the per-batch boundary hook (see cmdStoriesRun): graceful
	// stop on a signal, periodic background snapshots — both only at drained
	// boundaries, with the builder synced so the serving view and the captured
	// tracker fold the same boundary.
	serveHook := func(capture func() (*persist.PipelineState, error)) func() error {
		return func() error {
			if ctx.Err() != nil {
				if pst == nil {
					return stream.ErrStopped
				}
				if !agg.Drained() {
					return nil // run on to the next drained boundary first
				}
				if err := pst.Checkpoint(capture); err != nil {
					return err
				}
				return stream.ErrStopped
			}
			if pst != nil && agg.Drained() {
				return pst.MaybeSnapshot(capture)
			}
			return nil
		}
	}

	// The writer goroutine owns the whole ingestion pipeline (and the WAL
	// store — Close must happen on the producer goroutine); the builder
	// publishes snapshots at update boundaries, so the HTTP readers and the
	// SSE hub observe the stream live.
	ingestDone := make(chan error, 1)
	go func() {
		var summarize func()
		var err error
		var interrupted bool
		if se != nil {
			r := stream.NewShardReplay(front, se, nil)
			capture := func() (*persist.PipelineState, error) {
				bld.Sync()
				ps, cerr := persist.CaptureSharded(se, agg, tracker)
				if cerr != nil {
					return nil, cerr
				}
				ps.Ticks = baseTicks + uint64(r.Stats().Ticks)
				return ps, nil
			}
			r.SetBoundaryHook(serveHook(capture))
			var st stream.ShardReplayStats
			switch {
			case *batchMode:
				st, err = r.RunBatches(*batch, true)
			case aggCfg.DecayMode == stream.DecayRescale || pst != nil:
				// Rescaled decay is batch-structured (threshold epoch units),
				// so the non-coalescing replay still runs through the batch
				// driver; persisted runs need frame-aligned boundaries. See
				// cmdStoriesRun.
				st, err = r.RunBatches(*batch, false)
			default:
				st, err = r.Run(*batch)
			}
			interrupted = errors.Is(err, stream.ErrStopped)
			if err == nil {
				// Checkpoint before Builder.Close: Close resolves grace
				// windows for the final table, which must not leak into
				// resumable state.
				if cerr := checkpointWAL(pst, interrupted, capture); cerr != nil {
					ingestDone <- cerr
					return
				}
				bld.Close(baseTicks + uint64(st.Ticks))
				ingestState.Store(&ingestSummary{Complete: true, Updates: st.Updates, Ticks: st.Ticks, UpdatesPerSecond: st.UpdatesPerSecond()})
				summarize = func() {
					fmt.Println(st)
					fmt.Println(front.Stats())
					printStoryTable(tracker)
					fmt.Println(shardedSummary(se.Stats()))
				}
			}
		} else {
			r := stream.NewReplay(front, eng, bld)
			capture := func() (*persist.PipelineState, error) {
				bld.Sync()
				ps, cerr := persist.CaptureSingle(eng, agg, tracker)
				if cerr != nil {
					return nil, cerr
				}
				ps.Ticks = baseTicks + uint64(r.Stats().Ticks)
				return ps, nil
			}
			r.SetBoundaryHook(serveHook(capture))
			var st stream.ReplayStats
			switch {
			case *batchMode:
				st, err = r.RunBatches(*batch, true)
			case aggCfg.DecayMode == stream.DecayRescale || pst != nil:
				st, err = r.RunBatches(*batch, false)
			default:
				st, err = r.Run(*batch)
			}
			interrupted = errors.Is(err, stream.ErrStopped)
			if err == nil {
				// See the sharded path: checkpoint precedes Builder.Close.
				if cerr := checkpointWAL(pst, interrupted, capture); cerr != nil {
					ingestDone <- cerr
					return
				}
				bld.Close(baseTicks + uint64(st.Ticks))
				ingestState.Store(&ingestSummary{Complete: true, Updates: st.Updates, Ticks: st.Ticks, UpdatesPerSecond: st.UpdatesPerSecond()})
				summarize = func() {
					fmt.Println(st)
					fmt.Println(front.Stats())
					printStoryTable(tracker)
					fmt.Println(engineSummary(eng))
				}
			}
		}
		if err != nil && !interrupted {
			ingestDone <- err
			return
		}
		if summarize != nil {
			summarize()
		}
		ingestDone <- closeWALStore(pst, walOpts, interrupted)
	}()

	shutdown := func() error {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(sctx)
	}

	var ingestErr error
	select {
	case <-ctx.Done():
		// Interrupted mid-ingest: the boundary hook stops the writer at the
		// next drained boundary (cutting a final checkpoint when persisting).
		// Wait for it — bounded, in case the input stalls — then stop serving.
		select {
		case ingestErr = <-ingestDone:
		case <-time.After(5 * time.Second):
			fmt.Fprintln(os.Stderr, "serve: writer did not reach a stop boundary within 5s; shutting down without it")
		}
		if err := shutdown(); err != nil {
			return err
		}
		return ingestErr
	case <-serveShutdown:
		return shutdown()
	case ingestErr = <-ingestDone:
		if ingestErr != nil {
			shutdown()
			return ingestErr
		}
	}

	if *exitAfter {
		if *linger > 0 {
			select {
			case <-time.After(*linger):
			case <-ctx.Done():
			}
		}
		return shutdown()
	}
	fmt.Println("ingestion complete; serving the final table (interrupt to stop)")
	select {
	case <-ctx.Done():
	case <-serveShutdown:
	case err := <-httpDone:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	return shutdown()
}
