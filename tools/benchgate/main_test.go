package main

import (
	"errors"
	"strings"
	"testing"
)

func isGateFail(err error) bool {
	var ge gateError
	return errors.As(err, &ge)
}

func TestParseReader(t *testing.T) {
	input := `goos: linux
BenchmarkProcessMixed-8   	    2868	    450652 ns/op	      62 B/op	       0 allocs/op
BenchmarkProcessMixed-8   	    3000	    440000 ns/op
BenchmarkOther            	     100	  12345.5 ns/op
some unrelated line
PASS
`
	got, err := parseReader("test", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got["BenchmarkProcessMixed"]) != 2 || got["BenchmarkProcessMixed"][1] != 440000 {
		t.Fatalf("ProcessMixed samples = %v", got["BenchmarkProcessMixed"])
	}
	if len(got["BenchmarkOther"]) != 1 || got["BenchmarkOther"][0] != 12345.5 {
		t.Fatalf("Other samples = %v", got["BenchmarkOther"])
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
}

func TestGateCompare(t *testing.T) {
	base := map[string][]float64{"BenchmarkA": {100}, "BenchmarkB": {100}, "BenchmarkOnlyBase": {5}}
	var out strings.Builder

	// Within threshold passes.
	head := map[string][]float64{"BenchmarkA": {110}, "BenchmarkB": {90}}
	if err := gateCompare(base, head, 0.15, &out); err != nil {
		t.Fatalf("within-threshold compare failed: %v", err)
	}

	// Beyond threshold is a gate failure, not a hard error.
	head = map[string][]float64{"BenchmarkA": {120}}
	err := gateCompare(base, head, 0.15, &out)
	if err == nil || !isGateFail(err) {
		t.Fatalf("regression should gate-fail, got %v", err)
	}

	// Disjoint benchmark sets are a usage error, not a gate failure.
	err = gateCompare(base, map[string][]float64{"BenchmarkZ": {1}}, 0.15, &out)
	if err == nil || isGateFail(err) {
		t.Fatalf("disjoint sets should hard-fail, got %v", err)
	}
}

// TestGateCompareZeroBase pins the division guard: a zero base median (a
// truncated or garbage bench line) must be reported and skipped, never
// divided — before the guard it produced a ±Inf delta.
func TestGateCompareZeroBase(t *testing.T) {
	base := map[string][]float64{"BenchmarkZero": {0}, "BenchmarkA": {100}}
	head := map[string][]float64{"BenchmarkZero": {500}, "BenchmarkA": {100}}
	var out strings.Builder
	if err := gateCompare(base, head, 0.15, &out); err != nil {
		t.Fatalf("zero base should be skipped, got %v", err)
	}
	if !strings.Contains(out.String(), "skipped (zero base)") {
		t.Fatalf("missing skip marker in report:\n%s", out.String())
	}
	if strings.Contains(out.String(), "Inf") || strings.Contains(out.String(), "NaN") {
		t.Fatalf("non-finite delta leaked into report:\n%s", out.String())
	}
}

func TestGateSnapshotSelection(t *testing.T) {
	var out strings.Builder
	cases := []struct {
		name     string
		json     string
		gates    snapshotGates
		wantErr  string // empty = pass
		gateFail bool
	}{
		{
			name:  "batch block passes its floor",
			json:  `{"batched": true, "batch_compare": {"decay_speedup": 3.0, "overall_speedup": 1.4}}`,
			gates: snapshotGates{MinDecaySpeedup: 2.0},
		},
		{
			name:     "batch block below floor",
			json:     `{"batched": true, "batch_compare": {"decay_speedup": 1.5}}`,
			gates:    snapshotGates{MinDecaySpeedup: 2.0},
			wantErr:  "below the 2.00x floor",
			gateFail: true,
		},
		{
			name:     "explicit decay flag with missing block",
			json:     `{"scaling": {"scoped_k4_vs_mirror_k4": 2.0}}`,
			gates:    snapshotGates{MinDecaySpeedup: 2.0, DecaySet: true, MinScopedSpeedup: 1.5},
			wantErr:  "no batch_compare block",
			gateFail: true,
		},
		{
			name:  "scaling block passes",
			json:  `{"scaling": {"scoped_k4_vs_mirror_k4": 2.1, "scoped_k4_vs_single": 0.9}}`,
			gates: snapshotGates{MinScopedSpeedup: 1.5},
		},
		{
			name:  "serve block passes its floor",
			json:  `{"serve": {"readers": 4, "read_qps": 120000, "p99_ns": 900}}`,
			gates: snapshotGates{MinReadQPS: 50_000},
		},
		{
			name:     "serve block below floor",
			json:     `{"serve": {"readers": 4, "read_qps": 12000}}`,
			gates:    snapshotGates{MinReadQPS: 50_000},
			wantErr:  "below the 50000 floor",
			gateFail: true,
		},
		{
			name:     "explicit qps flag with missing serve block",
			json:     `{"batched": true, "batch_compare": {"decay_speedup": 3.0}}`,
			gates:    snapshotGates{MinDecaySpeedup: 2.0, MinReadQPS: 50_000, ReadQPSSet: true},
			wantErr:  "no serve block",
			gateFail: true,
		},
		{
			name:  "decay-mode block passes its floor",
			json:  `{"decay_mode_compare": {"decay_segment_speedup": 12.5, "overall_speedup": 2.1}}`,
			gates: snapshotGates{MinRescale: 5.0},
		},
		{
			name:     "decay-mode block below floor",
			json:     `{"decay_mode_compare": {"decay_segment_speedup": 3.2}}`,
			gates:    snapshotGates{MinRescale: 5.0},
			wantErr:  "rescale-vs-exact decay-segment speedup 3.20x below the 5.00x floor",
			gateFail: true,
		},
		{
			name:     "explicit rescale flag with missing block",
			json:     `{"serve": {"readers": 4, "read_qps": 120000}}`,
			gates:    snapshotGates{MinReadQPS: 50_000, MinRescale: 5.0, RescaleSet: true},
			wantErr:  "no decay_mode_compare block",
			gateFail: true,
		},
		{
			name:  "ingest block passes its floor",
			json:  `{"gomaxprocs": 8, "ingest_pipeline": {"workers": 8, "speedup": 2.4}}`,
			gates: snapshotGates{MinIngest: 1.3},
		},
		{
			name:     "ingest block below floor",
			json:     `{"gomaxprocs": 8, "ingest_pipeline": {"workers": 8, "speedup": 1.1}}`,
			gates:    snapshotGates{MinIngest: 1.3},
			wantErr:  "ingest-pipeline speedup 1.10x below the 1.30x floor",
			gateFail: true,
		},
		{
			name:  "ingest block skipped on a single-core snapshot",
			json:  `{"gomaxprocs": 1, "ingest_pipeline": {"workers": 4, "speedup": 0.9}}`,
			gates: snapshotGates{MinIngest: 1.3},
		},
		{
			name:  "ingest skip on a legacy snapshot without gomaxprocs",
			json:  `{"ingest_pipeline": {"workers": 4, "speedup": 0.9}}`,
			gates: snapshotGates{MinIngest: 1.3},
		},
		{
			name:     "explicit ingest flag with missing block",
			json:     `{"serve": {"readers": 4, "read_qps": 120000}}`,
			gates:    snapshotGates{MinReadQPS: 50_000, MinIngest: 1.3, IngestSet: true},
			wantErr:  "no ingest_pipeline block",
			gateFail: true,
		},
		{
			name:  "wal block passes its floor",
			json:  `{"wal_overhead": {"ratio": 0.93, "frames": 20000, "snapshots": 4}}`,
			gates: snapshotGates{MinWALRatio: 0.7},
		},
		{
			name:     "wal block below floor",
			json:     `{"wal_overhead": {"ratio": 0.41, "frames": 20000}}`,
			gates:    snapshotGates{MinWALRatio: 0.7},
			wantErr:  "WAL-on throughput ratio 0.41x below the 0.70x floor",
			gateFail: true,
		},
		{
			name:     "explicit wal flag with missing block",
			json:     `{"serve": {"readers": 4, "read_qps": 120000}}`,
			gates:    snapshotGates{MinReadQPS: 50_000, MinWALRatio: 0.7, WALSet: true},
			wantErr:  "no wal_overhead block",
			gateFail: true,
		},
		{
			name:     "no gateable block",
			json:     `{"updates_per_second": 12345}`,
			gates:    snapshotGates{},
			wantErr:  "no gateable block",
			gateFail: true,
		},
		{
			name:    "malformed JSON is a hard error",
			json:    `{"batched": tru`,
			gates:   snapshotGates{},
			wantErr: "invalid character",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := gateSnapshot("snap.json", []byte(c.json), c.gates, &out)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("want pass, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("want error containing %q, got %v", c.wantErr, err)
			}
			if isGateFail(err) != c.gateFail {
				t.Fatalf("gateFail = %v, want %v (err %v)", isGateFail(err), c.gateFail, err)
			}
		})
	}
}

// TestGateSnapshotIngestSkipReported pins that the single-core skip is a
// reported decision, not a silent pass: the gate succeeds (the block counts
// as gated, so an ingest-only snapshot does not hit the no-gateable-block
// failure) and the report names the skip and the recorded gomaxprocs.
func TestGateSnapshotIngestSkipReported(t *testing.T) {
	var out strings.Builder
	j := `{"gomaxprocs": 1, "ingest_pipeline": {"workers": 4, "speedup": 0.9}}`
	if err := gateSnapshot("snap.json", []byte(j), snapshotGates{MinIngest: 1.3}, &out); err != nil {
		t.Fatalf("single-core snapshot should pass via skip, got %v", err)
	}
	if !strings.Contains(out.String(), "skipped") || !strings.Contains(out.String(), "gomaxprocs=1") {
		t.Fatalf("skip not reported:\n%s", out.String())
	}
}

// TestGateSnapshotMultipleBlocks checks every present block is gated: a
// snapshot passing one gate but failing another fails overall.
func TestGateSnapshotMultipleBlocks(t *testing.T) {
	var out strings.Builder
	j := `{"batched": true,
	      "batch_compare": {"decay_speedup": 5.0},
	      "serve": {"readers": 2, "read_qps": 100}}`
	err := gateSnapshot("snap.json", []byte(j), snapshotGates{MinDecaySpeedup: 2.0, MinReadQPS: 50_000}, &out)
	if err == nil || !isGateFail(err) || !strings.Contains(err.Error(), "read throughput") {
		t.Fatalf("serve floor should fail the combined snapshot, got %v", err)
	}
}
