// Command benchgate is the CI benchmark regression gate: it parses two `go
// test -bench` output files (base and head), compares the median ns/op of
// every benchmark present in both, and exits non-zero if any regresses by
// more than the allowed fraction.
//
// benchstat produces the human-readable statistical report in the same CI
// job; benchgate exists because a gate needs a stable exit code, not a
// formatted table. It deliberately parses the raw `go test -bench` line
// format (stable since Go 1.x) rather than benchstat's output.
//
// Usage:
//
//	benchgate -base base.txt -head head.txt [-max-regress 0.15]
//	benchgate -snapshot BENCH_PR5.json [-min-decay-speedup 2.0]
//	benchgate -snapshot BENCH_PR6.json [-min-scoped-speedup 1.5]
//	benchgate -snapshot BENCH_PR7.json [-min-read-qps 50000]
//	benchgate -snapshot BENCH_PR8.json [-min-decay-rescale-speedup 5.0]
//	benchgate -snapshot BENCH_PR9.json [-min-ingest-speedup 1.3]
//	benchgate -snapshot BENCH_PR10.json [-min-wal-ratio 0.7]
//
// The -snapshot form validates a committed `dyndens bench -json`
// perf-trajectory snapshot instead of comparing two live runs, so a
// regenerated snapshot that no longer meets the repo's claims fails CI
// deterministically (no benchmark noise involved). Which gates apply follows
// the snapshot's blocks: a batch_compare block must record at least the
// given epoch-coalescing speedup on the decay-burst segment; a scaling
// block (from `dyndens bench -scale`) must record at least the given
// scoped-vs-mirror speedup at K=4 — the delivery-policy win at equal
// parallelism, the core-count-independent headline of scoped shard routing;
// and a serve block (from `dyndens bench -serve-readers`) must record at
// least the given closed-loop read throughput against the live story view;
// and a decay_mode_compare block (from `dyndens bench -decay-compare`) must
// record at least the given rescale-vs-exact elapsed-time speedup on the
// decay-burst segment — the O(1)-epoch-decay win of normalized weights over
// the paper-literal per-pair fade sweep; and an ingest_pipeline block (from
// `dyndens bench -ingest-compare`) must record at least the given
// pipelined-vs-serial wall-clock ingestion speedup — unless the snapshot
// records gomaxprocs 1, where a parallel front-end cannot beat serial by
// construction and the gate reports a skip instead of a verdict; and a
// wal_overhead block (from `dyndens bench -wal-compare`) must record at
// least the given fraction of durability-off throughput retained with the
// document WAL and background snapshotting on (ratio = off wall time / on
// wall time over the identical workload).
// Explicitly passing a gate's flag makes its block mandatory; a snapshot
// carrying no gateable block always fails.
//
// Exit codes: 0 pass, 1 gate failure, 2 usage/IO/parse error.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// gateError marks a failed gate (exit 1) as opposed to an unreadable or
// malformed input (exit 2).
type gateError struct{ msg string }

func (e gateError) Error() string { return e.msg }

func gateFailf(format string, args ...any) error {
	return gateError{msg: fmt.Sprintf(format, args...)}
}

// benchLine matches e.g.
//
//	BenchmarkProcessMixed-8   2868   450652 ns/op   62 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parse returns benchmark name → observed ns/op samples.
func parse(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseReader(path, f)
}

func parseReader(path string, f io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad ns/op in %q: %v", path, sc.Text(), err)
		}
		out[m[1]] = append(out[m[1]], v)
	}
	return out, sc.Err()
}

// median is used instead of the mean so one noisy CI sample cannot flip the
// gate in either direction.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// gateCompare applies the regression gate to two parsed bench runs, writing
// the per-benchmark report to w.
func gateCompare(base, head map[string][]float64, maxRegress float64, w io.Writer) error {
	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := head[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return errors.New("no common benchmarks between base and head")
	}

	failed := false
	for _, name := range names {
		b, h := median(base[name]), median(head[name])
		// A zero base median is measurement garbage (a broken or truncated
		// bench line), not a real 0 ns/op baseline; dividing by it would turn
		// the delta into ±Inf and poison the report, so the pair is reported
		// but not gated.
		if b == 0 {
			fmt.Fprintf(w, "%-40s base=%12.0f ns/op  head=%12.0f ns/op  delta=   n/a  skipped (zero base)\n",
				strings.TrimPrefix(name, "Benchmark"), b, h)
			continue
		}
		delta := (h - b) / b
		status := "ok"
		if delta > maxRegress {
			status = "REGRESSION"
			failed = true
		}
		fmt.Fprintf(w, "%-40s base=%12.0f ns/op  head=%12.0f ns/op  delta=%+6.1f%%  %s\n",
			strings.TrimPrefix(name, "Benchmark"), b, h, 100*delta, status)
	}
	if failed {
		return gateFailf("ns/op regressed by more than %.0f%% on at least one benchmark", 100*maxRegress)
	}
	return nil
}

// snapshot is the subset of the `dyndens bench -json` format the gate reads.
type snapshot struct {
	Batched bool `json:"batched"`
	// GOMAXPROCS is the recording machine's usable parallelism; gates on
	// parallel speedups are skipped (reported, not failed) when it is ≤ 1.
	GOMAXPROCS   int `json:"gomaxprocs"`
	BatchCompare *struct {
		DecaySpeedup   float64 `json:"decay_speedup"`
		OverallSpeedup float64 `json:"overall_speedup"`
	} `json:"batch_compare"`
	Scaling *struct {
		ScopedK4VsMirrorK4 float64 `json:"scoped_k4_vs_mirror_k4"`
		ScopedK4VsSingle   float64 `json:"scoped_k4_vs_single"`
	} `json:"scaling"`
	Serve *struct {
		Readers int     `json:"readers"`
		ReadQPS float64 `json:"read_qps"`
		P99Ns   int64   `json:"p99_ns"`
	} `json:"serve"`
	DecayModeCompare *struct {
		DecaySegmentSpeedup float64 `json:"decay_segment_speedup"`
		OverallSpeedup      float64 `json:"overall_speedup"`
	} `json:"decay_mode_compare"`
	IngestPipeline *struct {
		Workers int     `json:"workers"`
		Speedup float64 `json:"speedup"`
	} `json:"ingest_pipeline"`
	WALOverhead *struct {
		Ratio     float64 `json:"ratio"`
		Fsync     bool    `json:"fsync"`
		Frames    uint64  `json:"frames"`
		Snapshots uint64  `json:"snapshots"`
	} `json:"wal_overhead"`
}

// snapshotGates carries each snapshot gate's floor and whether its flag was
// set explicitly (making the corresponding block mandatory).
type snapshotGates struct {
	MinDecaySpeedup  float64
	DecaySet         bool
	MinScopedSpeedup float64
	ScopedSet        bool
	MinReadQPS       float64
	ReadQPSSet       bool
	MinRescale       float64
	RescaleSet       bool
	MinIngest        float64
	IngestSet        bool
	MinWALRatio      float64
	WALSet           bool
}

// gateSnapshot validates a committed bench snapshot, writing the per-gate
// report to w. Each gate applies when its block is present in the snapshot
// or its floor flag was set explicitly (in which case a missing block is
// itself a failure); a snapshot with no gateable block fails — committing an
// ungated snapshot is always a mistake.
func gateSnapshot(path string, data []byte, g snapshotGates, w io.Writer) error {
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	gated := false
	if s.BatchCompare != nil || g.DecaySet {
		if !s.Batched || s.BatchCompare == nil {
			return gateFailf("%s carries no batch_compare block (not a -batch snapshot)", path)
		}
		fmt.Fprintf(w, "%s: decay-segment speedup %.2fx (overall %.2fx), floor %.2fx\n",
			path, s.BatchCompare.DecaySpeedup, s.BatchCompare.OverallSpeedup, g.MinDecaySpeedup)
		if s.BatchCompare.DecaySpeedup < g.MinDecaySpeedup {
			return gateFailf("decay-segment speedup %.2fx below the %.2fx floor",
				s.BatchCompare.DecaySpeedup, g.MinDecaySpeedup)
		}
		gated = true
	}
	if s.Scaling != nil || g.ScopedSet {
		if s.Scaling == nil || s.Scaling.ScopedK4VsMirrorK4 == 0 {
			return gateFailf("%s carries no scaling block with a scoped/mirror K=4 ratio (not a -scale 0,...,4 snapshot)", path)
		}
		fmt.Fprintf(w, "%s: scoped-vs-mirror K=4 speedup %.2fx (vs single %.2fx), floor %.2fx\n",
			path, s.Scaling.ScopedK4VsMirrorK4, s.Scaling.ScopedK4VsSingle, g.MinScopedSpeedup)
		if s.Scaling.ScopedK4VsMirrorK4 < g.MinScopedSpeedup {
			return gateFailf("scoped-vs-mirror K=4 speedup %.2fx below the %.2fx floor",
				s.Scaling.ScopedK4VsMirrorK4, g.MinScopedSpeedup)
		}
		gated = true
	}
	if s.Serve != nil || g.ReadQPSSet {
		if s.Serve == nil {
			return gateFailf("%s carries no serve block (not a -serve-readers snapshot)", path)
		}
		fmt.Fprintf(w, "%s: serve read throughput %.0f reads/s across %d readers (p99 %dns), floor %.0f\n",
			path, s.Serve.ReadQPS, s.Serve.Readers, s.Serve.P99Ns, g.MinReadQPS)
		if s.Serve.ReadQPS < g.MinReadQPS {
			return gateFailf("serve read throughput %.0f reads/s below the %.0f floor",
				s.Serve.ReadQPS, g.MinReadQPS)
		}
		gated = true
	}
	if s.DecayModeCompare != nil || g.RescaleSet {
		if s.DecayModeCompare == nil {
			return gateFailf("%s carries no decay_mode_compare block (not a -decay-compare snapshot)", path)
		}
		fmt.Fprintf(w, "%s: rescale-vs-exact decay-segment speedup %.2fx (overall %.2fx), floor %.2fx\n",
			path, s.DecayModeCompare.DecaySegmentSpeedup, s.DecayModeCompare.OverallSpeedup, g.MinRescale)
		if s.DecayModeCompare.DecaySegmentSpeedup < g.MinRescale {
			return gateFailf("rescale-vs-exact decay-segment speedup %.2fx below the %.2fx floor",
				s.DecayModeCompare.DecaySegmentSpeedup, g.MinRescale)
		}
		gated = true
	}
	if s.IngestPipeline != nil || g.IngestSet {
		if s.IngestPipeline == nil {
			return gateFailf("%s carries no ingest_pipeline block (not an -ingest-compare snapshot)", path)
		}
		if s.GOMAXPROCS <= 1 {
			// A parallel front-end cannot beat the serial one on a single
			// core by construction, so the floor would only measure the
			// recording machine. The skip is reported, never silent, and the
			// block still counts as gated: committing it was deliberate.
			fmt.Fprintf(w, "%s: ingest-pipeline speedup gate skipped (snapshot records gomaxprocs=%d; parallel speedup is unmeasurable on one core)\n",
				path, s.GOMAXPROCS)
		} else {
			fmt.Fprintf(w, "%s: ingest-pipeline wall-clock speedup %.2fx across %d workers, floor %.2fx\n",
				path, s.IngestPipeline.Speedup, s.IngestPipeline.Workers, g.MinIngest)
			if s.IngestPipeline.Speedup < g.MinIngest {
				return gateFailf("ingest-pipeline speedup %.2fx below the %.2fx floor",
					s.IngestPipeline.Speedup, g.MinIngest)
			}
		}
		gated = true
	}
	if s.WALOverhead != nil || g.WALSet {
		if s.WALOverhead == nil {
			return gateFailf("%s carries no wal_overhead block (not a -wal-compare snapshot)", path)
		}
		fmt.Fprintf(w, "%s: WAL-on retains %.2fx of durability-off throughput (%d frames, %d snapshots, fsync=%v), floor %.2fx\n",
			path, s.WALOverhead.Ratio, s.WALOverhead.Frames, s.WALOverhead.Snapshots, s.WALOverhead.Fsync, g.MinWALRatio)
		if s.WALOverhead.Ratio < g.MinWALRatio {
			return gateFailf("WAL-on throughput ratio %.2fx below the %.2fx floor",
				s.WALOverhead.Ratio, g.MinWALRatio)
		}
		gated = true
	}
	if !gated {
		return gateFailf("%s carries no gateable block (want batch_compare, scaling, serve, decay_mode_compare, or ingest_pipeline)", path)
	}
	return nil
}

func main() {
	basePath := flag.String("base", "", "bench output of the base revision")
	headPath := flag.String("head", "", "bench output of the head revision")
	maxRegress := flag.Float64("max-regress", 0.15, "maximum allowed ns/op regression as a fraction (0.15 = +15%)")
	snapshotPath := flag.String("snapshot", "", "validate a committed `dyndens bench -json` snapshot instead of comparing two bench runs")
	g := snapshotGates{}
	flag.Float64Var(&g.MinDecaySpeedup, "min-decay-speedup", 2.0, "with -snapshot: minimum required batched-vs-sequential speedup on the decay segment")
	flag.Float64Var(&g.MinScopedSpeedup, "min-scoped-speedup", 1.5, "with -snapshot: minimum required scoped-vs-mirror delivery speedup at K=4 in the scaling block")
	flag.Float64Var(&g.MinReadQPS, "min-read-qps", 50_000, "with -snapshot: minimum required closed-loop read throughput in the serve block")
	flag.Float64Var(&g.MinRescale, "min-decay-rescale-speedup", 5.0, "with -snapshot: minimum required rescale-vs-exact elapsed-time speedup on the decay segment in the decay_mode_compare block")
	flag.Float64Var(&g.MinIngest, "min-ingest-speedup", 1.3, "with -snapshot: minimum required pipelined-vs-serial wall-clock ingestion speedup in the ingest_pipeline block (skipped when the snapshot records gomaxprocs 1)")
	flag.Float64Var(&g.MinWALRatio, "min-wal-ratio", 0.7, "with -snapshot: minimum fraction of durability-off throughput the WAL-on pass must retain in the wal_overhead block")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "min-decay-speedup":
			g.DecaySet = true
		case "min-scoped-speedup":
			g.ScopedSet = true
		case "min-read-qps":
			g.ReadQPSSet = true
		case "min-decay-rescale-speedup":
			g.RescaleSet = true
		case "min-ingest-speedup":
			g.IngestSet = true
		case "min-wal-ratio":
			g.WALSet = true
		}
	})

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		var ge gateError
		if errors.As(err, &ge) {
			os.Exit(1)
		}
		os.Exit(2)
	}

	if *snapshotPath != "" {
		data, err := os.ReadFile(*snapshotPath)
		if err != nil {
			fail(err)
		}
		if err := gateSnapshot(*snapshotPath, data, g, os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	if *basePath == "" || *headPath == "" {
		fail(errors.New("-base and -head are required"))
	}
	base, err := parse(*basePath)
	if err != nil {
		fail(err)
	}
	head, err := parse(*headPath)
	if err != nil {
		fail(err)
	}
	if err := gateCompare(base, head, *maxRegress, os.Stdout); err != nil {
		fail(err)
	}
}
