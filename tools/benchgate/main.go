// Command benchgate is the CI benchmark regression gate: it parses two `go
// test -bench` output files (base and head), compares the median ns/op of
// every benchmark present in both, and exits non-zero if any regresses by
// more than the allowed fraction.
//
// benchstat produces the human-readable statistical report in the same CI
// job; benchgate exists because a gate needs a stable exit code, not a
// formatted table. It deliberately parses the raw `go test -bench` line
// format (stable since Go 1.x) rather than benchstat's output.
//
// Usage:
//
//	benchgate -base base.txt -head head.txt [-max-regress 0.15]
//	benchgate -snapshot BENCH_PR5.json [-min-decay-speedup 2.0]
//	benchgate -snapshot BENCH_PR6.json [-min-scoped-speedup 1.5]
//
// The -snapshot form validates a committed `dyndens bench -json`
// perf-trajectory snapshot instead of comparing two live runs, so a
// regenerated snapshot that no longer meets the repo's claims fails CI
// deterministically (no benchmark noise involved). Which gates apply follows
// the snapshot's blocks: a batch_compare block must record at least the
// given epoch-coalescing speedup on the decay-burst segment, and a scaling
// block (from `dyndens bench -scale`) must record at least the given
// scoped-vs-mirror speedup at K=4 — the delivery-policy win at equal
// parallelism, the core-count-independent headline of scoped shard routing.
// Explicitly passing a gate's flag makes its block mandatory; a snapshot
// carrying no gateable block always fails.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches e.g.
//
//	BenchmarkProcessMixed-8   2868   450652 ns/op   62 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parse returns benchmark name → observed ns/op samples.
func parse(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad ns/op in %q: %v", path, sc.Text(), err)
		}
		out[m[1]] = append(out[m[1]], v)
	}
	return out, sc.Err()
}

// median is used instead of the mean so one noisy CI sample cannot flip the
// gate in either direction.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// snapshot is the subset of the `dyndens bench -json` format the gate reads.
type snapshot struct {
	Batched      bool `json:"batched"`
	BatchCompare *struct {
		DecaySpeedup   float64 `json:"decay_speedup"`
		OverallSpeedup float64 `json:"overall_speedup"`
	} `json:"batch_compare"`
	Scaling *struct {
		ScopedK4VsMirrorK4 float64 `json:"scoped_k4_vs_mirror_k4"`
		ScopedK4VsSingle   float64 `json:"scoped_k4_vs_single"`
	} `json:"scaling"`
}

// gateSnapshot validates a committed bench snapshot. Each gate applies when
// its block is present in the snapshot or its floor flag was set explicitly
// (in which case a missing block is itself a failure); a snapshot with no
// gateable block fails — committing an ungated snapshot is always a mistake.
func gateSnapshot(path string, minDecaySpeedup, minScopedSpeedup float64, decaySet, scopedSet bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
		os.Exit(2)
	}
	gated := false
	if s.BatchCompare != nil || decaySet {
		if !s.Batched || s.BatchCompare == nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s carries no batch_compare block (not a -batch snapshot)\n", path)
			os.Exit(1)
		}
		fmt.Printf("%s: decay-segment speedup %.2fx (overall %.2fx), floor %.2fx\n",
			path, s.BatchCompare.DecaySpeedup, s.BatchCompare.OverallSpeedup, minDecaySpeedup)
		if s.BatchCompare.DecaySpeedup < minDecaySpeedup {
			fmt.Fprintf(os.Stderr, "benchgate: decay-segment speedup %.2fx below the %.2fx floor\n",
				s.BatchCompare.DecaySpeedup, minDecaySpeedup)
			os.Exit(1)
		}
		gated = true
	}
	if s.Scaling != nil || scopedSet {
		if s.Scaling == nil || s.Scaling.ScopedK4VsMirrorK4 == 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %s carries no scaling block with a scoped/mirror K=4 ratio (not a -scale 0,...,4 snapshot)\n", path)
			os.Exit(1)
		}
		fmt.Printf("%s: scoped-vs-mirror K=4 speedup %.2fx (vs single %.2fx), floor %.2fx\n",
			path, s.Scaling.ScopedK4VsMirrorK4, s.Scaling.ScopedK4VsSingle, minScopedSpeedup)
		if s.Scaling.ScopedK4VsMirrorK4 < minScopedSpeedup {
			fmt.Fprintf(os.Stderr, "benchgate: scoped-vs-mirror K=4 speedup %.2fx below the %.2fx floor\n",
				s.Scaling.ScopedK4VsMirrorK4, minScopedSpeedup)
			os.Exit(1)
		}
		gated = true
	}
	if !gated {
		fmt.Fprintf(os.Stderr, "benchgate: %s carries no gateable block (want batch_compare or scaling)\n", path)
		os.Exit(1)
	}
}

func main() {
	basePath := flag.String("base", "", "bench output of the base revision")
	headPath := flag.String("head", "", "bench output of the head revision")
	maxRegress := flag.Float64("max-regress", 0.15, "maximum allowed ns/op regression as a fraction (0.15 = +15%)")
	snapshotPath := flag.String("snapshot", "", "validate a committed `dyndens bench -json` snapshot instead of comparing two bench runs")
	minDecaySpeedup := flag.Float64("min-decay-speedup", 2.0, "with -snapshot: minimum required batched-vs-sequential speedup on the decay segment")
	minScopedSpeedup := flag.Float64("min-scoped-speedup", 1.5, "with -snapshot: minimum required scoped-vs-mirror delivery speedup at K=4 in the scaling block")
	flag.Parse()
	decaySet, scopedSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "min-decay-speedup":
			decaySet = true
		case "min-scoped-speedup":
			scopedSet = true
		}
	})
	if *snapshotPath != "" {
		gateSnapshot(*snapshotPath, *minDecaySpeedup, *minScopedSpeedup, decaySet, scopedSet)
		return
	}
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		os.Exit(2)
	}
	base, err := parse(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	head, err := parse(*headPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := head[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no common benchmarks between base and head")
		os.Exit(2)
	}

	failed := false
	for _, name := range names {
		b, h := median(base[name]), median(head[name])
		delta := (h - b) / b
		status := "ok"
		if delta > *maxRegress {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-40s base=%12.0f ns/op  head=%12.0f ns/op  delta=%+6.1f%%  %s\n",
			strings.TrimPrefix(name, "Benchmark"), b, h, 100*delta, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: ns/op regressed by more than %.0f%% on at least one benchmark\n", 100**maxRegress)
		os.Exit(1)
	}
}
